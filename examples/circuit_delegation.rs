//! Delegating general circuit computations with streaming GKR (Theorem 3).
//!
//! The specialised protocols of Sections 3–4 cover specific queries; for
//! anything expressible as a low-depth arithmetic circuit, the streaming
//! GKR protocol verifies the computation with a polylog-space verifier.
//! Here the client delegates F₂, F₄ and an inner product over the same
//! stream, then compares GKR's costs against the specialised F₂ protocol —
//! the quadratic gap the paper quantifies after Theorem 4.
//!
//! Run with: `cargo run --release --example circuit_delegation`

use rand::rngs::StdRng;
use rand::SeedableRng;
use sip::core::channel::CostReport;
use sip::core::sumcheck::f2::run_f2;
use sip::gkr::builders;
use sip::gkr::run_streaming_gkr;
use sip::gkr::streaming::StreamingGkrReport;
use sip::streaming::workloads;
use sip::DefaultField;

/// GKR keeps its own report type (the crate has no dependency on the
/// channel layer); reshape it so both protocols print the one canonical
/// cost block.
fn gkr_cost(r: &StreamingGkrReport) -> CostReport {
    CostReport {
        rounds: r.rounds,
        p_to_v_words: r.p_to_v_words,
        v_to_p_words: r.v_to_p_words,
        verifier_space_words: r.verifier_space_words,
    }
}

fn main() {
    let log_n = 12;
    let stream = workloads::uniform(4_000, 1 << log_n, 100, 3);
    let mut rng = StdRng::seed_from_u64(21);

    println!("delegating circuits over a stream of 4_000 updates (u = 2^{log_n}):\n");

    // F2 via GKR.
    let circuit = builders::f2_circuit(log_n);
    let (outputs, report) =
        run_streaming_gkr::<DefaultField, _>(&circuit, &stream, &mut rng).expect("verified");
    println!(
        "GKR F2 circuit   (depth {:>2}, {:>6} gates): F2 = {}",
        circuit.depth(),
        circuit.size(),
        outputs[0]
    );
    println!("    {}", gkr_cost(&report));

    // The same answer via the specialised Section 3 protocol.
    let specialised = run_f2::<DefaultField, _>(log_n, &stream, &mut rng).expect("verified");
    assert_eq!(outputs[0], specialised.value);
    println!(
        "specialised F2 protocol:                    F2 = {}",
        specialised.value
    );
    println!("    {}", specialised.report);
    println!("    → the quadratic-improvement gap of Theorem 4\n");

    // F4 via GKR (no specialised protocol needed — just a deeper circuit).
    let circuit = builders::f4_circuit(log_n);
    let (outputs, _) =
        run_streaming_gkr::<DefaultField, _>(&circuit, &stream, &mut rng).expect("verified");
    println!(
        "GKR F4 circuit   (depth {:>2}): F4 = {}",
        circuit.depth(),
        outputs[0]
    );

    // Inner product of the stream's first and second halves as two vectors.
    let circuit = builders::inner_product_circuit(log_n);
    let mut ip_stream = stream.clone();
    // Second operand: shift indices into the second half of the input.
    ip_stream.extend(
        stream
            .iter()
            .map(|u| sip::streaming::Update::new(u.index + (1 << log_n), u.delta)),
    );
    let (outputs, _) =
        run_streaming_gkr::<DefaultField, _>(&circuit, &ip_stream, &mut rng).expect("verified");
    println!(
        "GKR a·a inner-product circuit: ⟨a,a⟩ = {} (equals F2 ✓)",
        outputs[0]
    );
    assert_eq!(outputs[0], specialised.value);
}

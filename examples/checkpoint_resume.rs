//! Crash-recoverable verification: checkpoint mid-stream, lose everything
//! in memory, restore on a "fresh machine", and finish — with answers
//! identical to never having stopped.
//!
//! The paper's asymmetry makes this nearly free: the *prover* holds the
//! data, the *verifier* holds `O(log u)` words — so a verifier checkpoint
//! is a few hundred bytes, and the server persists its datasets under
//! `--data-dir` with atomic writes. This example:
//!
//! 1. starts a durable prover and uploads half a stream, feeding client
//!    digests;
//! 2. checkpoints the digests to a *file* and asks the server to persist
//!    its session (`SaveState`), then drops every in-memory object and
//!    kills the server — a simulated crash of both sides;
//! 3. restarts the server from the same data dir, restores the digests
//!    from the file in a fresh client (as a new process would), resumes
//!    the server-side checkpoint, finishes the stream, and runs verified
//!    F₂ + RANGE-SUM queries.
//!
//! Run with: `cargo run --release --example checkpoint_resume`

use rand::rngs::StdRng;
use rand::SeedableRng;
use sip::core::sumcheck::f2::F2Verifier;
use sip::core::sumcheck::range_sum::RangeSumVerifier;
use sip::durable::{load_snapshot, save_snapshot, snapshot_to_bytes};
use sip::field::PrimeField;
use sip::server::client::RawClient;
use sip::server::{spawn, ServerConfig};
use sip::streaming::workloads;
use sip::DefaultField as F;

fn main() {
    let log_u = 16;
    let u = 1u64 << log_u;
    let stream = workloads::with_deletions(200_000, u, 0.1, 2026);
    let cut = stream.len() / 2;

    let work_dir = std::env::temp_dir().join("sip-checkpoint-resume-example");
    let _ = std::fs::remove_dir_all(&work_dir);
    let data_dir = work_dir.join("prover-data");
    let f2_file = work_dir.join("f2-digest.sipd");
    let rs_file = work_dir.join("range-sum-digest.sipd");
    std::fs::create_dir_all(&work_dir).unwrap();

    // ---- 1. durable prover + first half of the stream ----------------
    let config = ServerConfig {
        data_dir: Some(data_dir.clone()),
        ..ServerConfig::default()
    };
    let server = spawn::<F, _>("127.0.0.1:0", config.clone()).expect("bind server");
    println!(
        "prover serving on {} (data dir {})",
        server.local_addr(),
        data_dir.display()
    );

    let mut client: RawClient<F, _> = RawClient::connect(server.local_addr(), log_u).unwrap();
    let mut rng = StdRng::seed_from_u64(7);
    let mut f2 = F2Verifier::<F>::new(log_u, &mut rng);
    let mut rs = RangeSumVerifier::<F>::new(log_u, &mut rng);
    f2.update_batch(&stream[..cut]);
    rs.update_batch(&stream[..cut]);
    client.send_batch(&stream[..cut]);
    println!("uploaded {cut} of {} updates", stream.len());

    // ---- 2. checkpoint both sides, then crash -------------------------
    save_snapshot(&f2_file, &f2).unwrap();
    save_snapshot(&rs_file, &rs).unwrap();
    let durable = client.save_state("nightly").unwrap();
    println!(
        "checkpointed: F2 digest {} bytes, RANGE-SUM digest {} bytes (log_u = {log_u}), \
         server persisted {durable:?}",
        snapshot_to_bytes(&f2).len(),
        snapshot_to_bytes(&rs).len(),
    );
    drop(client);
    drop((f2, rs)); // everything in memory is gone
    server.shutdown();
    println!("-- crash: server killed, client state dropped --\n");

    // ---- 3. fresh process: restore, resume, finish, verify ------------
    let server = spawn::<F, _>("127.0.0.1:0", config).expect("rebind server");
    println!("prover restarted on {}", server.local_addr());
    let mut client: RawClient<F, _> = RawClient::connect(server.local_addr(), log_u).unwrap();
    client.resume("nightly").expect("server-side state resumes");
    let mut f2: F2Verifier<F> = load_snapshot(&f2_file).expect("digest file restores");
    let mut rs: RangeSumVerifier<F> = load_snapshot(&rs_file).expect("digest file restores");
    println!(
        "restored digests from {} ({} updates already absorbed)",
        work_dir.display(),
        f2.evaluator().updates()
    );

    f2.update_batch(&stream[cut..]);
    rs.update_batch(&stream[cut..]);
    client.send_batch(&stream[cut..]);

    let truth = sip::streaming::FrequencyVector::from_stream(u, &stream);
    let verified = client.verify_f2(f2).expect("honest prover accepted");
    assert_eq!(verified.value, F::from_u128(truth.self_join_size() as u128));
    println!(
        "\nverified F2 after resume = {} ({})",
        verified.value, verified.report
    );
    let (q_l, q_r) = (u / 4, u / 2);
    let verified = client.verify_range_sum(rs, q_l, q_r).unwrap();
    assert_eq!(
        verified.value,
        F::from_i64(truth.range_sum(q_l, q_r) as i64)
    );
    println!(
        "verified RANGE-SUM[{q_l}, {q_r}] after resume = {}",
        verified.value
    );
    println!("\nboth answers match the ground truth over the FULL stream —");
    println!("the crash is invisible in the results.");

    client.bye().unwrap();
    server.shutdown();
    let _ = std::fs::remove_dir_all(&work_dir);
}

//! Verified range analytics over an age-indexed database.
//!
//! Section 1.1's motivating scenario for reporting queries: "a typical
//! range query may ask for all people in a given age range, where the range
//! of interest is not known until after the database is instantiated." The
//! stream is a payroll table keyed by (age, person) and the analyst asks
//! range questions chosen *after* seeing other results — the protocols
//! support that because the verifier's digest is query-independent.
//!
//! Run with: `cargo run --release --example range_aggregates`

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use sip::core::reporting::run_range_query;
use sip::core::sumcheck::range_sum::run_range_sum;
use sip::field::PrimeField;
use sip::streaming::Update;
use sip::DefaultField;

fn main() {
    // Key layout: age (0..128) × slot (0..512) — universe 2^16.
    let log_u = 16;
    let slots_per_age = 512u64;
    let mut rng = StdRng::seed_from_u64(77);

    // 20k employees with ages ~ 18..65, salaries 30k..200k (in thousands).
    let mut stream = Vec::new();
    let mut used = std::collections::HashSet::new();
    while stream.len() < 20_000 {
        let age = rng.random_range(18u64..65);
        let slot = rng.random_range(0..slots_per_age);
        let key = age * slots_per_age + slot;
        if used.insert(key) {
            stream.push(Update::new(key, rng.random_range(30..200)));
        }
    }

    let age_range = |lo: u64, hi: u64| (lo * slots_per_age, (hi + 1) * slots_per_age - 1);

    // Q1: total salary mass for ages 30–39 (verified RANGE-SUM).
    let (q_l, q_r) = age_range(30, 39);
    let sum =
        run_range_sum::<DefaultField, _>(log_u, &stream, q_l, q_r, &mut rng).expect("verified");
    println!(
        "Σ salaries, ages 30–39  = {}k  [{} words of proof, {} rounds]",
        sum.value,
        sum.report.total_words(),
        sum.report.rounds
    );

    // Q2 depends on Q1's answer: drill into ages 35–37 (verified report).
    let (q_l, q_r) = age_range(35, 37);
    let rows =
        run_range_query::<DefaultField, _>(log_u, &stream, q_l, q_r, &mut rng).expect("verified");
    println!(
        "employees aged 35–37    = {} verified rows  [{} words of proof]",
        rows.entries.len(),
        rows.report.total_words()
    );
    let top = rows
        .entries
        .iter()
        .max_by_key(|&&(_, v)| v.to_u128())
        .expect("nonempty");
    println!(
        "    top earner: key {} at {}k (age {})",
        top.0,
        top.1,
        top.0 / slots_per_age
    );

    // Q3: the exact verified payroll for one age.
    let (q_l, q_r) = age_range(40, 40);
    let sum40 =
        run_range_sum::<DefaultField, _>(log_u, &stream, q_l, q_r, &mut rng).expect("verified");
    println!("Σ salaries, age 40      = {}k", sum40.value);

    println!("\neach query used an independent digest (Section 7, multiple queries)");
}

//! The paper's outsourcing scenario end to end over a real socket: a cloud
//! key-value prover serving TCP, and a thin client that uploads data it
//! never stores, then gets *proofs* with its answers.
//!
//! Everything here also works across two machines — replace the loopback
//! address with a real one.
//!
//! Run with: `cargo run --release --example verified_kv_server`

use rand::rngs::StdRng;
use rand::SeedableRng;
use sip::kvstore::{Client, QueryBudget};
use sip::server::client::RemoteStore;
use sip::server::{spawn, ServerConfig};
use sip::streaming::workloads;
use sip::DefaultField;

fn main() {
    let log_u = 16; // key space: 2^16 possible keys

    // ----- the cloud side: a prover service ---------------------------
    let server =
        spawn::<DefaultField, _>("127.0.0.1:0", ServerConfig::default()).expect("bind server");
    let addr = server.local_addr();
    println!("prover serving on {addr}\n");

    // ----- the data-owner side: a verifier behind a socket ------------
    let mut rng = StdRng::seed_from_u64(99);
    let mut client = Client::<DefaultField>::new(log_u, QueryBudget::default(), &mut rng);
    let mut cloud: RemoteStore<DefaultField, _> =
        RemoteStore::connect(addr, log_u).expect("connect to prover");

    println!("uploading 5_000 records over TCP …");
    let records = workloads::distinct_key_values(5_000, 1 << log_u, 10_000, 5);
    for up in &records {
        client.put(up.index, up.delta as u64, &mut cloud);
    }
    println!(
        "client retains {} words across all digests — the data lives on the server\n",
        client.space_words()
    );

    let probe = records[17].index;
    let got = client.get(probe, &cloud).expect("verified get");
    println!(
        "get({probe})            = {:?}  [{} words over {} rounds]",
        got.value,
        got.report.total_words(),
        got.report.rounds
    );

    let sum = client
        .range_sum(0, (1 << log_u) - 1, &cloud)
        .expect("verified range sum");
    println!(
        "range_sum(all)       = {}  [{} words over {} rounds]",
        sum.value,
        sum.report.total_words(),
        sum.report.rounds
    );

    let f2 = client.self_join_size(&cloud).expect("verified self-join");
    println!(
        "self_join_size       = {}  [{} words over {} rounds]",
        f2.value,
        f2.report.total_words(),
        f2.report.rounds
    );

    let whales = client
        .heavy_keys(9_901, &cloud)
        .expect("verified heavy keys");
    println!(
        "values ≥ 9900        = {} verified heavy keys  [{} words]",
        whales.value.len(),
        whales.report.total_words()
    );

    let stats = cloud.stats();
    println!(
        "\nwire traffic: {} B sent / {} B received over {} frames",
        stats.bytes_sent,
        stats.bytes_received,
        stats.frames_sent + stats.frames_received
    );
    println!(
        "every answer above is *proved* against digests the client computed \
         while uploading;\na lying server (or network) would be rejected with \
         probability 1 − ~1e-16."
    );

    if let Ok(served) = cloud.bye() {
        println!(
            "server's own accounting: {} words served over {} rounds",
            served.total_words(),
            served.rounds
        );
    }
    server.shutdown();
}

//! Network monitoring with verified streaming analytics.
//!
//! Section 1.1: "tracking the heavy hitters over network data corresponds
//! to the heaviest users or destinations". A router streams flow records to
//! an analytics provider; the operator keeps O(log u) state and later gets
//! *verified* answers: the heavy destinations, the number of distinct
//! destinations (F₀), the hottest flow size (F_max), and inverse
//! distribution queries ("how many destinations received exactly k
//! packets?").
//!
//! Run with: `cargo run --release --example network_monitor`

use rand::rngs::StdRng;
use rand::SeedableRng;
use sip::core::frequency_fn::{run_f0, run_fmax, run_inverse_distribution};
use sip::core::heavy_hitters::run_heavy_hitters;
use sip::field::PrimeField;
use sip::streaming::workloads;
use sip::DefaultField;

fn main() {
    let log_u = 16; // 2^16 destination addresses
    let packets = 200_000;
    println!("streaming {packets} packets over 2^{log_u} destinations (zipf-skewed) …\n");
    let stream = workloads::zipf(packets, 1 << log_u, 1.15, 4);
    let n: u64 = stream.iter().map(|u| u.delta as u64).sum();

    let mut rng = StdRng::seed_from_u64(1);

    // Heavy hitters: destinations receiving ≥ 0.5% of all traffic.
    let threshold = n / 200;
    let hh = run_heavy_hitters::<DefaultField, _>(log_u, &stream, threshold, &mut rng)
        .expect("verified");
    println!("destinations with ≥ {threshold} packets (verified, incl. completeness):");
    for &(dest, count) in hh.items.iter().take(8) {
        println!("    dest {dest:>6}: {count:>7} packets");
    }
    if hh.items.len() > 8 {
        println!("    … and {} more", hh.items.len() - 8);
    }
    println!(
        "  proof: {} words over {} rounds\n",
        hh.report.total_words(),
        hh.report.rounds
    );

    // F0: distinct destinations (Theorem 6 protocol).
    let f0 = run_f0::<DefaultField, _>(log_u, &stream, 64, &mut rng).expect("verified");
    println!(
        "distinct destinations (F0)     = {}   [{} words]",
        f0.value,
        f0.report.total_words()
    );

    // F_max: the hottest destination's packet count.
    let fmax = run_fmax::<DefaultField, _>(log_u, &stream, 64, &mut rng).expect("verified");
    println!("hottest destination (F_max)    = {} packets", fmax.value);

    // Inverse distribution: one-packet destinations (port scans?).
    let inv = run_inverse_distribution::<DefaultField, _>(log_u, &stream, 1, 64, &mut rng)
        .expect("verified");
    println!("destinations with exactly 1 pkt = {}", inv.value);

    println!(
        "\nall answers exact and verified; fooling probability ≈ {:.1e} per query",
        4.0 * 61.0 / 2.0f64.powi(61)
    );
    let _ = DefaultField::BITS;
}

//! A sharded prover fleet in action: four `sip-prover`-style shard servers
//! behind one aggregating verifier, then a lying shard getting blamed.
//!
//! ```text
//! cargo run --release --example cluster_demo
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use sip::cluster::{
    boxed_kv_fleet, connect_kv_fleet, spawn_local_fleet, ClusterClient, ClusterF2Verifier,
    ClusterRangeSumVerifier,
};
use sip::field::{Fp61, PrimeField};
use sip::kvstore::{Attack, CloudStore, KvServer, MaliciousStore, QueryBudget, ShardedClient};
use sip::server::ServerHandle;
use sip::streaming::{workloads, FrequencyVector, ShardPlan};

const LOG_U: u32 = 12;
const SHARDS: u32 = 4;

fn spawn_fleet() -> (Vec<ServerHandle>, Vec<std::net::SocketAddr>) {
    spawn_local_fleet::<Fp61>(SHARDS, LOG_U).expect("bind shard servers")
}

fn main() {
    // Trace the whole demo: every fleet query below becomes a causal span
    // tree (the same data `sip-prover --trace` serves at `/trace`).
    sip::obs::trace::set_tracing(true);
    let plan = ShardPlan::new(LOG_U, SHARDS);
    println!("== fleet of {SHARDS} shard provers over a universe of 2^{LOG_U} keys ==");
    for s in 0..SHARDS {
        let (lo, hi) = plan.range(s);
        println!("  shard {s}: keys [{lo}, {hi}]");
    }

    // ----- raw aggregate queries over TCP ---------------------------------
    let (handles, addrs) = spawn_fleet();
    let mut client: ClusterClient<Fp61, _> = ClusterClient::connect(&addrs, LOG_U).unwrap();
    let stream = workloads::uniform(20_000, 1u64 << LOG_U, 500, 7);
    let truth = FrequencyVector::from_stream(1u64 << LOG_U, &stream);

    let mut rng = StdRng::seed_from_u64(1);
    let mut f2 = ClusterF2Verifier::<Fp61>::new(plan, &mut rng);
    let mut rs = ClusterRangeSumVerifier::<Fp61>::new(plan, &mut rng);
    f2.update_batch(&stream);
    rs.update_batch(&stream);
    client.send_stream(&stream);
    client.end_stream().unwrap();

    let got = client.verify_f2(f2).unwrap();
    assert_eq!(got.value, Fp61::from_u128(truth.self_join_size() as u128));
    println!(
        "\nverified F2 = {} across {} shards (ground truth agrees)",
        got.value.to_u128(),
        got.report.shards()
    );
    for (s, r) in got.report.per_shard.iter().enumerate() {
        println!("  shard {s}: {r}");
    }
    println!("  total: {}", got.report.total());

    let (q_l, q_r) = (100u64, 3_000u64);
    let got = client.verify_range_sum(rs, q_l, q_r).unwrap();
    assert_eq!(got.value, Fp61::from_i64(truth.range_sum(q_l, q_r) as i64));
    println!(
        "verified RANGE-SUM[{q_l}, {q_r}] = {} ({} total words)",
        got.value.to_u128(),
        got.report.total().total_words()
    );
    client.bye().unwrap();

    // ----- the kv-store surface over the same fleet -----------------------
    let (kv_handles, kv_addrs) = spawn_fleet();
    let stores = connect_kv_fleet::<Fp61, _>(&kv_addrs, LOG_U).unwrap();
    let mut servers = boxed_kv_fleet(&stores);
    let mut rng = StdRng::seed_from_u64(2);
    let mut kv =
        ShardedClient::<Fp61>::new(LOG_U, SHARDS, QueryBudget::default(), &mut rng).unwrap();
    for (k, v) in [(17u64, 40u64), (1_200, 7), (2_300, 999), (3_900, 55)] {
        kv.put(k, v, &mut servers).unwrap();
    }
    println!(
        "\nkv fleet: get(2300) = {:?}",
        kv.get(2300, &servers).unwrap().value
    );
    println!(
        "kv fleet: range_sum(0, 4095) = {}",
        kv.range_sum(0, 4095, &servers).unwrap().value
    );
    println!(
        "kv fleet: predecessor(2299) = {:?} (walked the fleet)",
        kv.predecessor(2299, &servers).unwrap().value
    );
    for store in &stores {
        store.bye().ok();
    }
    for h in kv_handles {
        h.shutdown();
    }
    for h in handles {
        h.shutdown();
    }

    // ----- a lying shard is blamed, not the fleet -------------------------
    let mut rng = StdRng::seed_from_u64(3);
    let mut kv =
        ShardedClient::<Fp61>::new(LOG_U, SHARDS, QueryBudget::default(), &mut rng).unwrap();
    let guilty = 2u32;
    let mut servers: Vec<Box<dyn KvServer<Fp61>>> = (0..SHARDS)
        .map(|s| {
            let store = CloudStore::<Fp61>::new(LOG_U);
            if s == guilty {
                Box::new(MaliciousStore::new(store, Attack::SkewAggregates))
                    as Box<dyn KvServer<Fp61>>
            } else {
                Box::new(store) as Box<dyn KvServer<Fp61>>
            }
        })
        .collect();
    for (k, v) in [(17u64, 40u64), (1_200, 7), (2_300, 999), (3_900, 55)] {
        kv.put(k, v, &mut servers).unwrap();
    }
    let err = kv.self_join_size(&servers).unwrap_err();
    println!("\nshard {guilty} lies about aggregates → {err}");
    assert_eq!(err.blamed_shard(), Some(guilty));
    println!("eviction target: shard {guilty} — the other three stay in service");

    // ----- where did the time go? -----------------------------------------
    // Every query above left spans in the collector; write the Perfetto-
    // loadable trace next to the binary's working directory.
    let spans = sip::obs::trace::take_spans();
    let waits = spans.iter().filter(|s| s.name == "shard_wait").count();
    let queries = spans.iter().filter(|s| s.name == "cluster_query").count();
    std::fs::write(
        "cluster_demo.trace.json",
        sip::obs::trace::chrome_trace_json(&spans),
    )
    .ok();
    println!(
        "\ntraced {} spans ({queries} fleet queries, {waits} shard waits) → \
         cluster_demo.trace.json (load it in Perfetto)",
        spans.len()
    );
}

//! The paper's motivating example: a Dynamo-style outsourced key-value
//! store with verified gets, range scans, neighbour lookups and aggregates.
//!
//! The client uploads (key, value) pairs to the cloud as a stream — it
//! never holds the dataset — and afterwards issues queries whose answers
//! are *proved* correct, not just returned.
//!
//! Run with: `cargo run --release --example kv_store`

use rand::rngs::StdRng;
use rand::SeedableRng;
use sip::kvstore::{Client, CloudStore, QueryBudget};
use sip::streaming::workloads;
use sip::DefaultField;

fn main() {
    let log_u = 20; // key space: 2^20 possible keys
    let mut rng = StdRng::seed_from_u64(99);
    let mut client = Client::<DefaultField>::new(log_u, QueryBudget::default(), &mut rng);
    let mut cloud = CloudStore::<DefaultField>::new(log_u);

    // Upload 50k user records (user-id → account balance).
    println!("uploading 50_000 records to the cloud …");
    let records = workloads::distinct_key_values(50_000, 1 << log_u, 10_000, 5);
    for up in &records {
        client.put(up.index, up.delta as u64, &mut cloud);
    }
    println!(
        "client retains {} words across all digests (~{} KiB) — the data lives in the cloud\n",
        client.space_words(),
        client.space_words() * 8 / 1024
    );

    // Point lookup.
    let probe = records[123].index;
    let got = client.get(probe, &cloud).expect("proof verified");
    println!(
        "get({probe})            = {:?}   [{} words of proof]",
        got.value,
        got.report.total_words()
    );

    // A key that was never written.
    let missing = (0..1u64 << log_u)
        .find(|k| !records.iter().any(|r| r.index == *k))
        .unwrap();
    let got = client.get(missing, &cloud).unwrap();
    println!(
        "get({missing})                = {:?}      [verified NOT FOUND]",
        got.value
    );

    // Range scan: "all accounts with ids in [1000, 3000]".
    let scan = client.range(1000, 3000, &cloud).unwrap();
    println!(
        "range(1000, 3000)     = {} records  [{} words of proof]",
        scan.value.len(),
        scan.report.total_words()
    );

    // Next/previous key — Section 1.1's PREDECESSOR/SUCCESSOR.
    let pred = client.predecessor(probe.saturating_sub(1), &cloud).unwrap();
    let succ = client.successor(probe + 1, &cloud).unwrap();
    println!("predecessor({})  = {:?}", probe - 1, pred.value);
    println!("successor({})    = {:?}", probe + 1, succ.value);

    // Aggregates.
    let sum = client.range_sum(0, (1 << log_u) - 1, &cloud).unwrap();
    println!(
        "Σ balances            = {}   [{} words of proof]",
        sum.value,
        sum.report.total_words()
    );
    let f2 = client.self_join_size(&cloud).unwrap();
    println!("Σ balances²           = {}", f2.value);

    // The whales: accounts with balance ≥ 9900.
    let whales = client.heavy_keys(9901, &cloud).unwrap();
    println!(
        "accounts ≥ 9900       = {} verified heavy keys  [{} words]",
        whales.value.len(),
        whales.report.total_words()
    );

    let (rep, agg, heavy) = client.remaining_budget();
    println!("\nremaining query budget: {rep} reporting / {agg} aggregate / {heavy} heavy");
}

//! What happens when the cloud cheats.
//!
//! Reproduces the paper's tamper study ("we also tried modifying the
//! prover's messages, by changing some pieces of the proof, or computing
//! the proof for a slightly modified stream. In all cases, the protocols
//! caught the error") interactively: a malicious key-value server mounts
//! five different attacks; every one is detected.
//!
//! Run with: `cargo run --release --example dishonest_prover`

use rand::rngs::StdRng;
use rand::SeedableRng;
use sip::kvstore::{Attack, Client, CloudStore, MaliciousStore, QueryBudget};
use sip::streaming::workloads;
use sip::DefaultField;

fn main() {
    let log_u = 14;
    let records = workloads::distinct_key_values(5_000, 1 << log_u, 1_000, 7);

    for attack in [
        Attack::CorruptValues,
        Attack::DropFirstEntry,
        Attack::SkewAggregates,
        Attack::UnderstateCounts,
        Attack::LieAboutPredecessor,
    ] {
        let mut rng = StdRng::seed_from_u64(13);
        let mut client = Client::<DefaultField>::new(log_u, QueryBudget::default(), &mut rng);
        let mut server = MaliciousStore::new(CloudStore::new(log_u), attack);
        for up in &records {
            client.put(up.index, up.delta as u64, &mut server);
        }

        let outcome = match attack {
            Attack::CorruptValues | Attack::DropFirstEntry => client
                .range(0, (1 << log_u) - 1, &server)
                .map(|_| ())
                .map_err(|e| e.to_string()),
            Attack::SkewAggregates => client
                .range_sum(0, (1 << log_u) - 1, &server)
                .map(|_| ())
                .map_err(|e| e.to_string()),
            Attack::UnderstateCounts => client
                .heavy_keys(900, &server)
                .map(|_| ())
                .map_err(|e| e.to_string()),
            Attack::LieAboutPredecessor => client
                .predecessor(1 << (log_u - 1), &server)
                .map(|_| ())
                .map_err(|e| e.to_string()),
        };

        match outcome {
            Ok(()) => println!("{attack:?}: NOT DETECTED — this should never happen!"),
            Err(reason) => println!("{attack:?}: caught ✓  ({reason})"),
        }
    }

    println!("\nand with an honest server the very same queries all verify:");
    let mut rng = StdRng::seed_from_u64(13);
    let mut client = Client::<DefaultField>::new(log_u, QueryBudget::default(), &mut rng);
    let mut server = CloudStore::<DefaultField>::new(log_u);
    for up in &records {
        client.put(up.index, up.delta as u64, &mut server);
    }
    assert!(client.range(0, (1 << log_u) - 1, &server).is_ok());
    assert!(client.range_sum(0, (1 << log_u) - 1, &server).is_ok());
    assert!(client.heavy_keys(900, &server).is_ok());
    assert!(client.predecessor(1 << (log_u - 1), &server).is_ok());
    println!("honest server: all queries accepted ✓");
}

//! Quickstart: verify a self-join size over a stream you never store.
//!
//! A data owner streams one million updates to an untrusted worker, keeping
//! only ~17 machine words. Afterwards the worker proves the exact self-join
//! size (second frequency moment) — a query that provably needs linear
//! memory without a prover.
//!
//! Run with: `cargo run --release --example quickstart`

use rand::rngs::StdRng;
use rand::SeedableRng;
use sip::core::sumcheck::f2::run_f2;
use sip::field::PrimeField;
use sip::streaming::{workloads, FrequencyVector};
use sip::DefaultField;

fn main() {
    let log_u = 20; // universe of 2^20 ≈ 1M keys, one update each
    let u = 1u64 << log_u;
    println!("generating the paper's synthetic workload: u = n = {u} …");
    let stream = workloads::paper_f2(u, 2011);

    let mut rng = StdRng::seed_from_u64(7);
    let start = std::time::Instant::now();
    let verified = run_f2::<DefaultField, _>(log_u, &stream, &mut rng).expect("honest prover");
    let elapsed = start.elapsed();

    // Cross-check against direct computation (the thing the verifier could
    // NOT have done in log space).
    let truth = FrequencyVector::from_stream(u, &stream).self_join_size();
    assert_eq!(verified.value, DefaultField::from_u128(truth as u128));

    println!("verified F2          = {}", verified.value);
    println!("ground truth         = {truth}");
    println!("cost                 = {}", verified.report);
    println!(
        "in bytes             = {} comm, {} verifier space",
        verified.report.comm_bytes(DefaultField::BITS),
        verified.report.space_bytes(DefaultField::BITS)
    );
    println!("total wall time      = {elapsed:?} (stream + proof + check)");
    println!();
    println!(
        "a cheating prover would be caught with probability ≥ 1 − {:.1e}",
        4.0 * 61.0 / 2.0f64.powi(61)
    );
}

//! Multi-tenant serving: one ingest, eight concurrent verifiers.
//!
//! The paper's economics are one heavily-resourced prover amortised over
//! many weak verifiers. This example makes that concrete: a data owner
//! uploads a key-value dataset **once** and publishes it; eight verifier
//! sessions then attach concurrently — each with its own secret
//! randomness, each running a different verified query mix (F₂ self-join
//! size, range sums, kv point/range lookups) — and the server serves them
//! all from the same frozen snapshot. No re-ingest, no trust in the
//! registry: every verifier's digests observed the put stream themselves.
//!
//! Run with: `cargo run --release --example multi_tenant`

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;
use sip::core::CostReport;
use sip::kvstore::{Client, QueryBudget};
use sip::server::client::RemoteStore;
use sip::server::{spawn, ServerConfig};
use sip::streaming::workloads;
use sip::DefaultField;

const DATASET: &str = "orders-2026-07";
const VERIFIERS: usize = 8;

fn main() {
    let log_u = 14;

    // ----- the cloud side: one prover service, 2 worker threads -------
    let server = spawn::<DefaultField, _>(
        "127.0.0.1:0",
        ServerConfig {
            threads: 2,
            ..ServerConfig::default()
        },
    )
    .expect("bind server");
    let addr = server.local_addr();
    println!("prover serving on {addr}");

    // ----- the data owner: ingest once, publish -----------------------
    let records = workloads::distinct_key_values(3_000, 1 << log_u, 10_000, 5);
    let puts: Vec<(u64, u64)> = records
        .iter()
        .map(|up| (up.index, up.delta as u64))
        .collect();

    let mut rng = StdRng::seed_from_u64(99);
    let mut owner = Client::<DefaultField>::new(log_u, QueryBudget::default(), &mut rng);
    let mut cloud: RemoteStore<DefaultField, _> =
        RemoteStore::connect(addr, log_u).expect("connect");
    let upload = Instant::now();
    owner.put_batch(&puts, &mut cloud);
    cloud.publish(DATASET).expect("publish");
    println!(
        "owner uploaded {} records once and published {DATASET:?} ({:.1} ms)\n",
        puts.len(),
        upload.elapsed().as_secs_f64() * 1e3
    );

    // ----- eight tenants: observe the stream, attach, verify ----------
    let started = Instant::now();
    let reports: Vec<(usize, &'static str, CostReport)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..VERIFIERS)
            .map(|i| {
                let puts = &puts;
                scope.spawn(move || {
                    // Independent randomness per verifier; digests built by
                    // observing the owner's put stream (no re-upload).
                    let mut rng = StdRng::seed_from_u64(1_000 + i as u64);
                    let mut tenant =
                        Client::<DefaultField>::new(log_u, QueryBudget::default(), &mut rng);
                    tenant.observe_batch(puts);
                    let store: RemoteStore<DefaultField, _> =
                        RemoteStore::connect(addr, log_u).expect("connect");
                    store.attach(DATASET).expect("attach");

                    let truth_sum: u64 = puts.iter().map(|&(_, v)| v).sum();
                    let (what, report) = match i % 3 {
                        0 => {
                            let got = tenant.self_join_size(&store).expect("verified F2");
                            let expect: u64 = puts.iter().map(|&(_, v)| v * v).sum();
                            assert_eq!(got.value, expect);
                            ("self-join size", got.report)
                        }
                        1 => {
                            let got = tenant
                                .range_sum(0, (1 << log_u) - 1, &store)
                                .expect("verified range sum");
                            assert_eq!(got.value, truth_sum);
                            ("range sum     ", got.report)
                        }
                        _ => {
                            let (k, v) = puts[37 * (i + 1) % puts.len()];
                            let got = tenant.get(k, &store).expect("verified get");
                            assert_eq!(got.value, Some(v));
                            ("kv get        ", got.report)
                        }
                    };
                    store.bye().ok();
                    (i, what, report)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    println!(
        "{VERIFIERS} verifiers attached and verified concurrently in {:.1} ms:",
        started.elapsed().as_secs_f64() * 1e3
    );

    let mut aggregate = CostReport::default();
    let mut max_space = 0;
    for (i, what, report) in &reports {
        println!("  tenant {i}: {what}  [{report}]");
        aggregate.absorb(report);
        max_space = max_space.max(report.verifier_space_words);
    }
    // Concurrent tenants each hold their own digests, so the fleet-wide
    // space figure is the max, not `absorb`'s sum.
    aggregate.verifier_space_words = max_space;
    println!(
        "\naggregate: {} words over {} rounds across all tenants; \
         max verifier space {} words — one ingest served them all",
        aggregate.total_words(),
        aggregate.rounds,
        aggregate.verifier_space_words
    );

    cloud.bye().ok();
    server.shutdown();
}

//! # Streaming Interactive Proofs
//!
//! A complete Rust implementation of *“Verifying Computations with
//! Streaming Interactive Proofs”* (Cormode, Thaler, Yi — PVLDB 5(1), 2011):
//! protocols that let a verifier with **O(log u) memory and one pass over a
//! data stream** obtain *exact*, *verified* answers to queries that
//! provably need linear memory without a prover — self-join size, frequency
//! moments, inner products, range queries and sums, dictionary and
//! predecessor lookups, heavy hitters, `F₀`, `F_max` and more.
//!
//! The guarantee is statistical: an honest prover is always accepted; a
//! cheating prover — no matter how powerful — is caught except with
//! probability ≈ `4·log u / p` (about `10⁻¹⁶` over the default field
//! `Z_{2^61−1}`, below `10⁻³⁵` over `Z_{2^127−1}`).
//!
//! ## Quickstart
//!
//! ```
//! use rand::SeedableRng;
//! use sip::field::Fp61;
//! use sip::core::sumcheck::f2::run_f2;
//! use sip::streaming::workloads;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! // A stream of (index, delta) updates over a universe of 2^16 keys.
//! let stream = workloads::paper_f2(1 << 16, 42);
//! // Verifier streams once in O(log u) space; prover proves F2 exactly.
//! let verified = run_f2::<Fp61, _>(16, &stream, &mut rng).expect("honest prover accepted");
//! println!("verified self-join size = {}", verified.value);
//! println!("communication: {} words over {} rounds",
//!          verified.report.total_words(), verified.report.rounds);
//! ```
//!
//! ## Crate map
//!
//! | Module | Contents |
//! |---|---|
//! | [`field`] | Mersenne fields `Z_{2^61−1}`, `Z_{2^127−1}`, polynomials, Lagrange |
//! | [`streaming`] | the update-stream input model, workloads, ground truth |
//! | [`lde`] | Theorem 1: streaming low-degree-extension evaluation |
//! | [`core`] | the paper's protocols (§3 aggregation, §4 reporting, §6 extensions, one-round baseline), cost accounting, [`core::channel::Transport`] |
//! | [`gkr`] | Theorem 3: streaming GKR over layered arithmetic circuits |
//! | [`kvstore`] | the motivating application: a verified outsourced KV store |
//! | [`wire`] | the versioned binary wire format (framed messages, handshake) |
//! | [`obs`] | observability: metrics registry, structured events, the ops listener |
//! | [`durable`] | checkpoint/restore: canonical snapshots of every verifier digest |
//! | [`server`] | the prover as a concurrent TCP service + the remote verifier client |
//! | [`cluster`] | sharded prover fleet: stream router, aggregating verifier, per-shard blame |
//! | [`fleetobs`] | fleet observability: the scraper/aggregator, health model, SLO burn alerts, `sip-top` |
//!
//! See `DESIGN.md` for the paper-to-module inventory and `EXPERIMENTS.md`
//! for the reproduction of the paper's experimental study (Figures 2–3).

pub use sip_cluster as cluster;
pub use sip_core as core;
pub use sip_durable as durable;
pub use sip_field as field;
pub use sip_fleetobs as fleetobs;
pub use sip_gkr as gkr;
pub use sip_kvstore as kvstore;
pub use sip_lde as lde;
pub use sip_obs as obs;
pub use sip_server as server;
pub use sip_streaming as streaming;
pub use sip_wire as wire;

/// The paper's default field: `Z_p` with `p = 2^61 − 1`.
pub type DefaultField = sip_field::Fp61;

/// The high-soundness field: `Z_p` with `p = 2^127 − 1`.
pub type WideField = sip_field::Fp127;

//! Structured events: levelled, targeted, key=value records dispatched to
//! pluggable [`Sink`]s.
//!
//! With no sink installed, `Warn`/`Error` events fall back to stderr (so a
//! bare library user still sees problems) and lower levels are dropped —
//! emitting an event that nobody listens to costs one atomic load and one
//! branch.

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::fs::OpenOptions;
use std::io::Write as _;
use std::path::Path;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Instant, SystemTime, UNIX_EPOCH};

use crate::metrics::json_escape;

/// Event severity.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Per-operation detail (span timings, per-frame notes).
    Debug = 0,
    /// Normal lifecycle (session served, dataset published).
    Info = 1,
    /// Something was skipped or refused but the process continues.
    Warn = 2,
    /// An operation failed.
    Error = 3,
}

impl Level {
    /// Lower-case name, as rendered in lines and JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
        }
    }
}

impl std::fmt::Display for Level {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One structured event record.
#[derive(Clone, Debug)]
pub struct Event {
    /// Milliseconds since the Unix epoch at emission.
    pub ts_ms: u64,
    /// Severity.
    pub level: Level,
    /// Dotted subsystem name, e.g. `sip.server`.
    pub target: &'static str,
    /// Human-readable message.
    pub message: String,
    /// Ordered key=value fields.
    pub fields: Vec<(&'static str, String)>,
}

impl Event {
    /// The stderr line format:
    /// `[1722430000.123] warn sip.server: message key=value …`.
    /// Values containing spaces or quotes are double-quoted.
    pub fn line(&self) -> String {
        let mut out = format!(
            "[{}.{:03}] {} {}: {}",
            self.ts_ms / 1000,
            self.ts_ms % 1000,
            self.level,
            self.target,
            self.message
        );
        for (k, v) in &self.fields {
            if v.contains([' ', '"', '=']) {
                let _ = write!(out, " {k}=\"{}\"", v.replace('"', "\\\""));
            } else {
                let _ = write!(out, " {k}={v}");
            }
        }
        out
    }

    /// The JSONL format: one flat object per event.
    pub fn json(&self) -> String {
        let mut out = format!(
            "{{\"ts_ms\": {}, \"level\": \"{}\", \"target\": \"{}\", \"msg\": \"{}\"",
            self.ts_ms,
            self.level,
            json_escape(self.target),
            json_escape(&self.message)
        );
        for (k, v) in &self.fields {
            let _ = write!(out, ", \"{}\": \"{}\"", json_escape(k), json_escape(v));
        }
        out.push('}');
        out
    }

    /// The value of field `key`, if present.
    pub fn field(&self, key: &str) -> Option<&str> {
        self.fields
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// An event consumer. Sinks must be cheap and must never panic — they run
/// inline on whatever thread emitted the event.
pub trait Sink: Send + Sync {
    /// Consumes one event.
    fn record(&self, event: &Event);
}

static SINKS: RwLock<Vec<Arc<dyn Sink>>> = RwLock::new(Vec::new());
static MIN_LEVEL: AtomicU8 = AtomicU8::new(Level::Info as u8);

/// Installs an additional sink (events fan out to every installed sink).
pub fn add_sink(sink: Arc<dyn Sink>) {
    SINKS
        .write()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .push(sink);
}

/// Removes every installed sink (tests; restores the stderr fallback).
pub fn clear_sinks() {
    SINKS
        .write()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .clear();
}

/// Sets the global minimum level; events below it are dropped at the
/// emission site.
pub fn set_min_level(level: Level) {
    MIN_LEVEL.store(level as u8, Ordering::Relaxed);
}

/// Whether an event at `level` would currently be dispatched — the cheap
/// pre-check the [`crate::event!`] macro uses before formatting anything.
pub fn event_would_log(level: Level) -> bool {
    crate::enabled() && level as u8 >= MIN_LEVEL.load(Ordering::Relaxed)
}

/// Dispatches one event to the installed sinks (or the stderr fallback for
/// `Warn`+ when none is installed). Prefer the [`crate::event!`] macro.
pub fn emit(
    level: Level,
    target: &'static str,
    message: &str,
    mut fields: Vec<(&'static str, String)>,
) {
    if !event_would_log(level) {
        return;
    }
    // Correlate logs with exported traces: an event emitted inside an
    // open span carries that span's identity (no-op unless tracing is on).
    if let Some(ctx) = crate::trace::current_context() {
        fields.push(("trace_id", format!("{:016x}", ctx.trace_id)));
        fields.push(("span_id", format!("{:016x}", ctx.span_id)));
    }
    let ts_ms = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX))
        .unwrap_or(0);
    let event = Event {
        ts_ms,
        level,
        target,
        message: message.to_string(),
        fields,
    };
    let sinks = SINKS
        .read()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    if sinks.is_empty() {
        if level >= Level::Warn {
            eprintln!("{}", event.line());
        }
        return;
    }
    for sink in sinks.iter() {
        sink.record(&event);
    }
}

/// Writes `event.line()` to stderr for events at or above a threshold.
pub struct StderrSink {
    min: Level,
}

impl StderrSink {
    /// A stderr sink passing events at `min` and above.
    pub fn new(min: Level) -> Self {
        StderrSink { min }
    }
}

impl Sink for StderrSink {
    fn record(&self, event: &Event) {
        if event.level >= self.min {
            eprintln!("{}", event.line());
        }
    }
}

/// Appends `event.json()` lines to a file (the `--log-json` sink).
pub struct JsonlSink {
    file: Mutex<std::fs::File>,
}

impl JsonlSink {
    /// Opens (creating or appending) the JSONL file at `path`.
    pub fn create(path: &Path) -> std::io::Result<Self> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(JsonlSink {
            file: Mutex::new(file),
        })
    }
}

impl Sink for JsonlSink {
    fn record(&self, event: &Event) {
        let mut file = self
            .file
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        // Best effort: a full disk must not take the prover down.
        let _ = writeln!(file, "{}", event.json());
    }
}

/// Keeps the most recent `cap` events in memory (tests and debugging).
pub struct RingSink {
    cap: usize,
    buf: Mutex<VecDeque<Event>>,
}

impl RingSink {
    /// A ring holding at most `cap` events (older ones are evicted).
    pub fn new(cap: usize) -> Self {
        RingSink {
            cap: cap.max(1),
            buf: Mutex::new(VecDeque::new()),
        }
    }

    /// A copy of the buffered events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        self.buf
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .iter()
            .cloned()
            .collect()
    }

    /// Drains and returns the buffered events, oldest first.
    pub fn take(&self) -> Vec<Event> {
        self.buf
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .drain(..)
            .collect()
    }
}

impl Sink for RingSink {
    fn record(&self, event: &Event) {
        let mut buf = self
            .buf
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if buf.len() == self.cap {
            buf.pop_front();
        }
        buf.push_back(event.clone());
    }
}

/// An RAII timing scope: emits a `Debug` event with an `elapsed_us` field
/// when dropped. Build one with the [`crate::span!`] macro.
pub struct Span {
    target: &'static str,
    name: &'static str,
    start: Instant,
    fields: Vec<(&'static str, String)>,
}

impl Span {
    /// Opens a span; the clock starts now.
    pub fn new(target: &'static str, name: &'static str) -> Self {
        Span {
            target,
            name,
            start: Instant::now(),
            fields: Vec::new(),
        }
    }

    /// Attaches a key=value field (builder style, used by [`crate::span!`]).
    pub fn field(mut self, key: &'static str, value: &dyn std::fmt::Display) -> Self {
        self.fields.push((key, value.to_string()));
        self
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if !event_would_log(Level::Debug) {
            return;
        }
        let elapsed_us = u64::try_from(self.start.elapsed().as_micros()).unwrap_or(u64::MAX);
        let mut fields = std::mem::take(&mut self.fields);
        fields.push(("elapsed_us", elapsed_us.to_string()));
        emit(Level::Debug, self.target, self.name, fields);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_and_json_formats() {
        let event = Event {
            ts_ms: 1_722_430_000_123,
            level: Level::Warn,
            target: "sip.test",
            message: "snapshot skipped".into(),
            fields: vec![("file", "a.sipd".into()), ("reason", "bad checksum".into())],
        };
        assert_eq!(
            event.line(),
            "[1722430000.123] warn sip.test: snapshot skipped file=a.sipd reason=\"bad checksum\""
        );
        assert_eq!(
            event.json(),
            "{\"ts_ms\": 1722430000123, \"level\": \"warn\", \"target\": \"sip.test\", \
             \"msg\": \"snapshot skipped\", \"file\": \"a.sipd\", \"reason\": \"bad checksum\"}"
        );
        assert_eq!(event.field("file"), Some("a.sipd"));
        assert_eq!(event.field("nope"), None);
    }

    #[test]
    fn ring_sink_caps_and_orders() {
        let ring = RingSink::new(2);
        for i in 0..3u32 {
            ring.record(&Event {
                ts_ms: i as u64,
                level: Level::Info,
                target: "sip.test",
                message: format!("e{i}"),
                fields: vec![],
            });
        }
        let events: Vec<String> = ring.events().iter().map(|e| e.message.clone()).collect();
        assert_eq!(events, vec!["e1", "e2"]);
        assert_eq!(ring.take().len(), 2);
        assert!(ring.events().is_empty());
    }
}

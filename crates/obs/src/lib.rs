//! `sip-obs`: observability for the prover fleet — metrics, structured
//! events, and a read-only ops surface — with **zero dependencies** (the
//! build container is offline; everything here is `std`).
//!
//! The paper's thesis is that verification is cheap enough to *meter*:
//! `CostReport`-style accounting treats per-query cost as a first-class
//! output. This crate extends that discipline to the running
//! system, under a strict overhead budget (< 2 % on the ingest and fold
//! hot paths, enforced by `bench_obs` in CI):
//!
//! * **Metrics** ([`metrics`]): atomic counters, gauges, and fixed-bucket
//!   histograms in a process-global [`Registry`]. A handle is an `Arc`'d
//!   atomic — resolve once, then every operation is one relaxed atomic
//!   instruction. Rendered as a Prometheus text dump
//!   ([`Registry::render_prometheus`]) or a JSON snapshot
//!   ([`Registry::snapshot_json`]).
//! * **Events** ([`mod@event`]): levelled `key=value` records dispatched to
//!   pluggable sinks — stderr lines ([`StderrSink`]), JSONL files
//!   ([`JsonlSink`], the server's `--log-json`), or an in-memory ring for
//!   tests ([`RingSink`]). With no sink installed, `Warn`+ falls back to
//!   stderr. [`span!`] scopes time themselves and emit on drop.
//! * **Ops surface** ([`ops`]): `serve_ops` binds a bounded, timeout-read,
//!   panic-free HTTP responder exposing `/metrics` and `/stats`
//!   (`sip-prover --metrics-addr`).
//!
//! The global [`enabled`] switch (default on) gates every event and every
//! guarded hot-path site; `bench_obs` measures instrumented vs.
//! uninstrumented throughput by flipping it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod metrics;
pub mod ops;
pub mod recorder;
pub mod trace;

pub use event::{
    add_sink, clear_sinks, emit, event_would_log, set_min_level, Event, JsonlSink, Level, RingSink,
    Sink, Span, StderrSink,
};
pub use metrics::{
    counter, counter_with, gauge, gauge_with, histogram, histogram_with, metric_key, registry,
    Counter, Gauge, GaugeGuard, Histogram, Registry, Timer, HISTOGRAM_BUCKETS,
};
pub use metrics::{help_for, quantile_from_buckets, METRIC_HELP};
pub use ops::{advertised_ops_addr, serve_ops, serve_ops_with, OpsHandle, OpsResponse, OpsRoutes};
pub use recorder::{FlightEntry, FlightRecorder};
pub use trace::{SpanGuard, SpanRecord, TraceContext};

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

static ENABLED: AtomicBool = AtomicBool::new(true);

/// Hot-path timer sampling rate: the engine's per-call latency timers run
/// on roughly 1 in `timer_sample()` calls. Counters stay exact at any
/// setting — only the latency histograms are sampled.
static TIMER_SAMPLE: AtomicU64 = AtomicU64::new(16);

/// The current hot-path timer sampling rate (default 16). `0` means the
/// sampled timers are off entirely.
pub fn timer_sample() -> u64 {
    TIMER_SAMPLE.load(Ordering::Relaxed)
}

/// Sets the hot-path timer sampling rate (`ServerConfig::obs_sample` /
/// `sip-prover --obs-sample`). Lower rates buy histogram resolution with
/// clock-read overhead: `1` times every call (worst case, still bounded
/// by the 2 % CI budget on folds), `16` (the default) keeps the cost
/// unmeasurable, `0` disables the timers.
pub fn set_timer_sample(rate: u64) {
    TIMER_SAMPLE.store(rate, Ordering::Relaxed);
}

/// The `/stats` and `Msg::StatsReply` body: the metrics registry snapshot
/// ([`Registry::snapshot_json`]) with a `"tracing"` status block
/// ([`trace::status_json`]) and an `"ops"` block (the actually-bound
/// metrics port, so a scraper that learned of this prover in-protocol can
/// enumerate its ops surface without racing on a fixed port) spliced in
/// as two more top-level keys.
pub fn stats_json() -> String {
    let mut out = registry().snapshot_json();
    // snapshot_json always ends with the object's closing brace; reopen
    // it to append the tracing block so the document stays one object.
    let tail = out.rfind('}').expect("snapshot is a JSON object");
    out.truncate(tail);
    let ops = match ops::advertised_ops_addr() {
        Some(addr) => format!("{{\"metrics_addr\": \"{addr}\"}}"),
        None => "{\"metrics_addr\": null}".to_string(),
    };
    out.push_str(&format!(
        ",\n  \"ops\": {ops},\n  \"tracing\": {}\n}}\n",
        trace::status_json()
    ));
    out
}

/// Whether instrumentation is live. One relaxed load — hot paths check
/// this and skip their metric updates entirely when it is off.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns instrumentation on or off process-wide (benchmark baselines).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Emits one structured event:
/// `event!(Level::Warn, "sip.server", "snapshot skipped", "file" => name)`.
///
/// Field keys are `&'static str`, values anything `ToString`. Nothing is
/// formatted unless the level currently passes [`event_would_log`].
#[macro_export]
macro_rules! event {
    ($level:expr, $target:expr, $msg:expr $(, $k:expr => $v:expr)* $(,)?) => {
        if $crate::event_would_log($level) {
            $crate::emit(
                $level,
                $target,
                &::std::string::ToString::to_string(&$msg),
                ::std::vec![$(($k, ::std::string::ToString::to_string(&$v))),*],
            );
        }
    };
}

/// Opens a timing scope that emits a `Debug` event with `elapsed_us` when
/// dropped: `let _span = span!("sip.server", "handle_frame", "msg" => name);`
#[macro_export]
macro_rules! span {
    ($target:expr, $name:expr $(, $k:expr => $v:expr)* $(,)?) => {
        $crate::Span::new($target, $name)$(.field($k, &$v))*
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enable_switch_gates_events() {
        // Uses only would-log (no global sink state) to stay independent
        // of concurrently running tests.
        set_enabled(true);
        assert!(event_would_log(Level::Error));
        set_enabled(false);
        assert!(!event_would_log(Level::Error));
        set_enabled(true);
    }

    #[test]
    fn stats_json_is_one_object_with_tracing_block() {
        counter("sip_obs_stats_test_counter").inc();
        let json = stats_json();
        let trimmed = json.trim();
        assert!(trimmed.starts_with('{') && trimmed.ends_with('}'), "{json}");
        assert!(json.contains("\"counters\""), "{json}");
        assert!(json.contains("\"tracing\": {"), "{json}");
        assert!(json.contains("\"spans_recorded\""), "{json}");
        assert!(json.contains("\"ops\": {\"metrics_addr\": "), "{json}");
        // The splice reopens the outer object: braces must still balance.
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes, "{json}");
    }

    #[test]
    fn timer_sample_knob_round_trips() {
        let prev = timer_sample();
        set_timer_sample(0);
        assert_eq!(timer_sample(), 0);
        set_timer_sample(4);
        assert_eq!(timer_sample(), 4);
        set_timer_sample(prev);
    }

    #[test]
    fn macros_compile_and_run() {
        let n = 3u32;
        event!(Level::Debug, "sip.obs", "macro smoke", "n" => n, "s" => "x");
        let _span = span!("sip.obs", "macro_span", "n" => n);
    }
}

//! `sip-obs`: observability for the prover fleet — metrics, structured
//! events, and a read-only ops surface — with **zero dependencies** (the
//! build container is offline; everything here is `std`).
//!
//! The paper's thesis is that verification is cheap enough to *meter*:
//! `CostReport`-style accounting treats per-query cost as a first-class
//! output. This crate extends that discipline to the running
//! system, under a strict overhead budget (< 2 % on the ingest and fold
//! hot paths, enforced by `bench_obs` in CI):
//!
//! * **Metrics** ([`metrics`]): atomic counters, gauges, and fixed-bucket
//!   histograms in a process-global [`Registry`]. A handle is an `Arc`'d
//!   atomic — resolve once, then every operation is one relaxed atomic
//!   instruction. Rendered as a Prometheus text dump
//!   ([`Registry::render_prometheus`]) or a JSON snapshot
//!   ([`Registry::snapshot_json`]).
//! * **Events** ([`mod@event`]): levelled `key=value` records dispatched to
//!   pluggable sinks — stderr lines ([`StderrSink`]), JSONL files
//!   ([`JsonlSink`], the server's `--log-json`), or an in-memory ring for
//!   tests ([`RingSink`]). With no sink installed, `Warn`+ falls back to
//!   stderr. [`span!`] scopes time themselves and emit on drop.
//! * **Ops surface** ([`ops`]): `serve_ops` binds a bounded, timeout-read,
//!   panic-free HTTP responder exposing `/metrics` and `/stats`
//!   (`sip-prover --metrics-addr`).
//!
//! The global [`enabled`] switch (default on) gates every event and every
//! guarded hot-path site; `bench_obs` measures instrumented vs.
//! uninstrumented throughput by flipping it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod metrics;
pub mod ops;

pub use event::{
    add_sink, clear_sinks, emit, event_would_log, set_min_level, Event, JsonlSink, Level, RingSink,
    Sink, Span, StderrSink,
};
pub use metrics::{
    counter, counter_with, gauge, gauge_with, histogram, histogram_with, metric_key, registry,
    Counter, Gauge, GaugeGuard, Histogram, Registry, Timer, HISTOGRAM_BUCKETS,
};
pub use ops::{serve_ops, OpsHandle};

use std::sync::atomic::{AtomicBool, Ordering};

static ENABLED: AtomicBool = AtomicBool::new(true);

/// Whether instrumentation is live. One relaxed load — hot paths check
/// this and skip their metric updates entirely when it is off.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns instrumentation on or off process-wide (benchmark baselines).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Emits one structured event:
/// `event!(Level::Warn, "sip.server", "snapshot skipped", "file" => name)`.
///
/// Field keys are `&'static str`, values anything `ToString`. Nothing is
/// formatted unless the level currently passes [`event_would_log`].
#[macro_export]
macro_rules! event {
    ($level:expr, $target:expr, $msg:expr $(, $k:expr => $v:expr)* $(,)?) => {
        if $crate::event_would_log($level) {
            $crate::emit(
                $level,
                $target,
                &::std::string::ToString::to_string(&$msg),
                ::std::vec![$(($k, ::std::string::ToString::to_string(&$v))),*],
            );
        }
    };
}

/// Opens a timing scope that emits a `Debug` event with `elapsed_us` when
/// dropped: `let _span = span!("sip.server", "handle_frame", "msg" => name);`
#[macro_export]
macro_rules! span {
    ($target:expr, $name:expr $(, $k:expr => $v:expr)* $(,)?) => {
        $crate::Span::new($target, $name)$(.field($k, &$v))*
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enable_switch_gates_events() {
        // Uses only would-log (no global sink state) to stay independent
        // of concurrently running tests.
        set_enabled(true);
        assert!(event_would_log(Level::Error));
        set_enabled(false);
        assert!(!event_would_log(Level::Error));
        set_enabled(true);
    }

    #[test]
    fn macros_compile_and_run() {
        let n = 3u32;
        event!(Level::Debug, "sip.obs", "macro smoke", "n" => n, "s" => "x");
        let _span = span!("sip.obs", "macro_span", "n" => n);
    }
}

//! The flight recorder: a bounded ring of recent protocol frames and
//! notes kept per session (server side) or per cluster client, dumped as
//! one self-contained JSON post-mortem when something ends in Rejection
//! or Blame — every indictment arrives with the evidence that led to it.
//!
//! A dump is itself Perfetto-loadable: its `traceEvents` array carries the
//! spans of any trace ids bound to the recorder ([`FlightRecorder::bind_trace`])
//! plus the recorded frames as instant events, so the post-mortem opens in
//! the same tooling as a live `/trace` export.

use std::collections::VecDeque;
use std::fmt::Write as _;

use crate::metrics::json_escape;
use crate::trace;

/// One recorded moment: a frame in (`"in"`), a frame out (`"out"`), or a
/// free-form note (`"note"`).
#[derive(Clone, Debug)]
pub struct FlightEntry {
    /// When, on the process trace clock ([`trace::now_us`]).
    pub at_us: u64,
    /// `"in"`, `"out"`, or `"note"`.
    pub kind: &'static str,
    /// What — typically a message name, optionally prefixed with a shard.
    pub detail: String,
}

/// A bounded ring of recent [`FlightEntry`] values plus the trace ids
/// whose spans a dump should include. Owned by one session or client
/// (`&mut self` throughout — no lock).
#[derive(Debug)]
pub struct FlightRecorder {
    cap: usize,
    entries: VecDeque<FlightEntry>,
    dropped: u64,
    traces: Vec<u64>,
}

/// Bound on distinct trace ids a recorder remembers (a session only ever
/// serves a handful of concurrently interesting traces).
const MAX_BOUND_TRACES: usize = 8;

impl FlightRecorder {
    /// A recorder keeping the most recent `cap` entries (at least one).
    pub fn new(cap: usize) -> Self {
        FlightRecorder {
            cap: cap.max(1),
            entries: VecDeque::new(),
            dropped: 0,
            traces: Vec::new(),
        }
    }

    /// Records one moment, evicting the oldest entry when full. Callers
    /// on hot paths should gate on [`crate::enabled`] before formatting
    /// `detail`; this method also no-ops when instrumentation is off.
    pub fn record(&mut self, kind: &'static str, detail: impl Into<String>) {
        if !crate::enabled() {
            return;
        }
        if self.entries.len() >= self.cap {
            self.entries.pop_front();
            self.dropped += 1;
        }
        self.entries.push_back(FlightEntry {
            at_us: trace::now_us(),
            kind,
            detail: detail.into(),
        });
    }

    /// Marks a trace as belonging to this recorder: a later dump includes
    /// that trace's spans from the global buffers.
    pub fn bind_trace(&mut self, trace_id: u64) {
        if trace_id != 0 && !self.traces.contains(&trace_id) && self.traces.len() < MAX_BOUND_TRACES
        {
            self.traces.push(trace_id);
        }
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing has been recorded (or everything was evicted).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entries evicted so far (how much history the ring has forgotten).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The bound trace ids, oldest first.
    pub fn traces(&self) -> &[u64] {
        &self.traces
    }

    /// Renders the post-mortem: `reason` and `extra` key/values up front,
    /// then the frame ring verbatim, then a Perfetto-loadable
    /// `traceEvents` array (bound traces' spans as complete events, the
    /// frames as instant events).
    pub fn dump_json(&self, reason: &str, extra: &[(&str, String)]) -> String {
        let mut out = format!("{{\n  \"reason\": \"{}\"", json_escape(reason));
        for (k, v) in extra {
            let _ = write!(out, ",\n  \"{}\": \"{}\"", json_escape(k), json_escape(v));
        }
        let _ = write!(
            out,
            ",\n  \"epoch_unix_us\": \"{}\"",
            trace::epoch_unix_us()
        );
        let _ = write!(out, ",\n  \"dropped_frames\": {}", self.dropped);
        out.push_str(",\n  \"frames\": [");
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"at_us\": {}, \"kind\": \"{}\", \"detail\": \"{}\"}}",
                e.at_us,
                e.kind,
                json_escape(&e.detail)
            );
        }
        out.push_str("\n  ],\n  \"traceEvents\": [");
        let mut first = true;
        let mut spans = trace::snapshot_spans();
        spans.sort_by_key(|s| s.start_us);
        for s in &spans {
            if !self.traces.contains(&s.trace_id) {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str("\n    ");
            out.push_str(&trace::chrome_event_json(s));
        }
        for e in &self.entries {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "\n    {{\"ph\":\"i\",\"pid\":1,\"tid\":0,\"ts\":{},\"s\":\"p\",\
                 \"name\":\"{} {}\"}}",
                e.at_us,
                e.kind,
                json_escape(&e.detail)
            );
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_is_bounded_and_counts_evictions() {
        crate::set_enabled(true);
        let mut rec = FlightRecorder::new(3);
        for i in 0..5 {
            rec.record("in", format!("frame {i}"));
        }
        assert_eq!(rec.len(), 3);
        assert_eq!(rec.dropped(), 2);
        let dump = rec.dump_json("test", &[]);
        // The two oldest frames were evicted; the newest three survive.
        assert!(!dump.contains("frame 0"), "{dump}");
        assert!(!dump.contains("frame 1"), "{dump}");
        assert!(dump.contains("frame 2"), "{dump}");
        assert!(dump.contains("frame 4"), "{dump}");
        assert!(dump.contains("\"dropped_frames\": 2"), "{dump}");
    }

    #[test]
    fn dump_carries_reason_extras_and_instants() {
        crate::set_enabled(true);
        let mut rec = FlightRecorder::new(8);
        rec.record("out", "query");
        rec.record("in", "round-poly");
        let dump = rec.dump_json(
            "cluster query ended in blame",
            &[("blamed_shard", "2".to_string())],
        );
        assert!(
            dump.contains("\"reason\": \"cluster query ended in blame\""),
            "{dump}"
        );
        assert!(dump.contains("\"blamed_shard\": \"2\""), "{dump}");
        assert!(dump.contains("\"traceEvents\": ["), "{dump}");
        assert!(dump.contains("\"ph\":\"i\""), "{dump}");
        assert!(dump.contains("in round-poly"), "{dump}");
    }

    #[test]
    fn bound_traces_dedup_and_cap() {
        let mut rec = FlightRecorder::new(4);
        rec.bind_trace(7);
        rec.bind_trace(7);
        rec.bind_trace(0);
        assert_eq!(rec.traces(), &[7]);
        for id in 1..32u64 {
            rec.bind_trace(id);
        }
        assert!(rec.traces().len() <= MAX_BOUND_TRACES);
    }
}

//! The metrics half of the crate: lock-cheap atomic instruments in a
//! process-global [`Registry`], rendered as a Prometheus-style text dump or
//! a JSON snapshot.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are `Arc`-shared
//! atomics: resolving one takes a short mutex-guarded name lookup, after
//! which every operation is a single relaxed atomic instruction. Hot paths
//! resolve their handles once (e.g. in a `OnceLock`) and then pay only the
//! atomics.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Number of histogram buckets: powers of two `2^0 .. 2^22` plus a final
/// overflow bucket (rendered as `+Inf`). Values are unit-agnostic `u64`s —
/// the convention in this workspace is microseconds for latencies and raw
/// counts for sizes.
pub const HISTOGRAM_BUCKETS: usize = 24;

/// A monotonically increasing counter. Cloning shares the underlying
/// atomic.
#[derive(Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed gauge (current level of something: sessions, datasets, bytes).
#[derive(Clone)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Sets the gauge to `v`.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative).
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// RAII increment: bumps a gauge on construction and undoes it on drop —
/// the level can never leak, whatever path unwinds the scope.
pub struct GaugeGuard(Gauge);

impl GaugeGuard {
    /// Increments `gauge` and returns the guard that will decrement it.
    pub fn new(gauge: Gauge) -> Self {
        gauge.add(1);
        GaugeGuard(gauge)
    }
}

impl Drop for GaugeGuard {
    fn drop(&mut self) {
        self.0.add(-1);
    }
}

struct HistogramCore {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
    count: AtomicU64,
}

impl HistogramCore {
    fn new() -> Self {
        HistogramCore {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }
}

/// A fixed-bucket histogram over power-of-two bounds: bucket `i` covers
/// `(2^(i-1), 2^i]`, the last bucket overflows to `+Inf`.
#[derive(Clone)]
pub struct Histogram(Arc<HistogramCore>);

impl Histogram {
    /// Records one observation.
    pub fn observe(&self, v: u64) {
        let idx = if v <= 1 {
            0
        } else {
            (64 - (v - 1).leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1)
        };
        self.0.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(v, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Records the elapsed time of `timer` in microseconds.
    pub fn observe_timer(&self, timer: Timer) {
        self.observe(timer.elapsed_us());
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// A snapshot of the per-bucket counts (bucket `i` covers
    /// `(2^(i-1), 2^i]`, the last bucket overflows to `+Inf`).
    pub fn bucket_counts(&self) -> [u64; HISTOGRAM_BUCKETS] {
        std::array::from_fn(|i| self.0.buckets[i].load(Ordering::Relaxed))
    }

    /// Estimates the `q`-quantile (`0.0 ..= 1.0`) of the observed
    /// distribution from the log₂ buckets — see [`quantile_from_buckets`]
    /// for the estimator and its error bound.
    pub fn quantile(&self, q: f64) -> f64 {
        quantile_from_buckets(&self.bucket_counts(), q)
    }
}

/// Estimates the `q`-quantile of a log₂-bucketed histogram by linear
/// interpolation inside the bucket holding the target rank.
///
/// Bucket `i` covers `(2^(i-1), 2^i]` (bucket 0 is `[0, 1]`), so the
/// estimate is exact at bucket boundaries and off by at most the bucket's
/// width inside — a relative error bounded by 2×, which is plenty for
/// dashboards and SLO gates over µs latencies. The overflow bucket has no
/// upper bound; ranks landing there answer its lower bound (a conservative
/// *under*-estimate, so an SLO on the result never fires spuriously).
/// Shorter-than-standard slices are accepted (a scraped exposition may be
/// truncated); an empty or all-zero histogram answers `0.0`.
pub fn quantile_from_buckets(buckets: &[u64], q: f64) -> f64 {
    let total: u64 = buckets.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let q = q.clamp(0.0, 1.0);
    // Rank of the target observation, 1-based: ceil(q * total), at least 1.
    let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
    let mut cumulative = 0u64;
    for (i, &n) in buckets.iter().enumerate() {
        if n == 0 {
            continue;
        }
        if cumulative + n >= rank {
            // Clamp the exponent so a hostile, overlong bucket list cannot
            // overflow the shift; everything at or past the overflow
            // bucket answers its lower bound.
            let i = i.min(HISTOGRAM_BUCKETS - 1);
            let lo = if i == 0 {
                0.0
            } else {
                (1u64 << (i - 1)) as f64
            };
            if i == HISTOGRAM_BUCKETS - 1 {
                // Overflow bucket: no upper bound to interpolate toward.
                return lo;
            }
            let hi = (1u64 << i) as f64;
            let into = (rank - cumulative) as f64 / n as f64;
            return lo + into * (hi - lo);
        }
        cumulative += n;
    }
    // Unreachable with a consistent slice (total > 0 means some bucket
    // crosses the rank), but a hostile scrape target is not consistent.
    0.0
}

/// A started wall-clock measurement (a thin [`Instant`]), consumed by
/// [`Histogram::observe_timer`].
pub struct Timer(Instant);

impl Timer {
    /// Starts the clock.
    pub fn start() -> Self {
        Timer(Instant::now())
    }

    /// Microseconds since [`Timer::start`], saturating.
    pub fn elapsed_us(&self) -> u64 {
        u64::try_from(self.0.elapsed().as_micros()).unwrap_or(u64::MAX)
    }
}

/// The name-to-instrument map. One process-global instance lives behind
/// [`registry`]; tests may build private ones.
///
/// Keys are full metric identities including labels, e.g.
/// `sip_server_msg_total{msg="ingest"}`. Base names should already be
/// Prometheus-safe (`[a-z0-9_]`).
#[derive(Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Builds the full metric key `name{k="v",...}` for a labelled instrument.
pub fn metric_key(name: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return name.to_string();
    }
    let mut key = String::with_capacity(name.len() + 16 * labels.len());
    key.push_str(name);
    key.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            key.push(',');
        }
        let _ = write!(
            key,
            "{k}=\"{}\"",
            v.replace('\\', "\\\\").replace('"', "\\\"")
        );
    }
    key.push('}');
    key
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Resolves (creating on first use) the counter `name`.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = lock(&self.counters);
        map.entry(name.to_string())
            .or_insert_with(|| Counter(Arc::new(AtomicU64::new(0))))
            .clone()
    }

    /// Resolves the labelled counter `name{labels}`.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        self.counter(&metric_key(name, labels))
    }

    /// Resolves (creating on first use) the gauge `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = lock(&self.gauges);
        map.entry(name.to_string())
            .or_insert_with(|| Gauge(Arc::new(AtomicI64::new(0))))
            .clone()
    }

    /// Resolves the labelled gauge `name{labels}`.
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        self.gauge(&metric_key(name, labels))
    }

    /// Resolves (creating on first use) the histogram `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut map = lock(&self.histograms);
        map.entry(name.to_string())
            .or_insert_with(|| Histogram(Arc::new(HistogramCore::new())))
            .clone()
    }

    /// Resolves the labelled histogram `name{labels}`.
    pub fn histogram_with(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        self.histogram(&metric_key(name, labels))
    }

    /// Renders every instrument in Prometheus text exposition format
    /// (counters, gauges, and cumulative-`le` histograms), sorted by name.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let counters = lock(&self.counters).clone();
        let mut last_base = String::new();
        for (key, c) in &counters {
            type_line(&mut out, key, "counter", &mut last_base);
            let _ = writeln!(out, "{key} {}", c.get());
        }
        let gauges = lock(&self.gauges).clone();
        last_base.clear();
        for (key, g) in &gauges {
            type_line(&mut out, key, "gauge", &mut last_base);
            let _ = writeln!(out, "{key} {}", g.get());
        }
        let histograms = lock(&self.histograms).clone();
        last_base.clear();
        for (key, h) in &histograms {
            let (base, labels) = split_key(key);
            type_line(&mut out, key, "histogram", &mut last_base);
            let counts = h.bucket_counts();
            let mut cumulative = 0u64;
            for (i, n) in counts.iter().enumerate() {
                cumulative += n;
                let le = if i + 1 == HISTOGRAM_BUCKETS {
                    "+Inf".to_string()
                } else {
                    (1u64 << i).to_string()
                };
                let sep = if labels.is_empty() { "" } else { "," };
                let _ = writeln!(
                    out,
                    "{base}_bucket{{{labels}{sep}le=\"{le}\"}} {cumulative}"
                );
            }
            let lbl = if labels.is_empty() {
                String::new()
            } else {
                format!("{{{labels}}}")
            };
            let _ = writeln!(out, "{base}_sum{lbl} {}", h.sum());
            let _ = writeln!(out, "{base}_count{lbl} {}", h.count());
        }
        out
    }

    /// Renders every instrument as one JSON object:
    /// `{"counters": {...}, "gauges": {...}, "histograms": {...}}` with
    /// deterministic (sorted) key order.
    pub fn snapshot_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        let counters = lock(&self.counters).clone();
        for (i, (key, c)) in counters.iter().enumerate() {
            let comma = if i > 0 { "," } else { "" };
            let _ = write!(out, "{comma}\n    \"{}\": {}", json_escape(key), c.get());
        }
        out.push_str("\n  },\n  \"gauges\": {");
        let gauges = lock(&self.gauges).clone();
        for (i, (key, g)) in gauges.iter().enumerate() {
            let comma = if i > 0 { "," } else { "" };
            let _ = write!(out, "{comma}\n    \"{}\": {}", json_escape(key), g.get());
        }
        out.push_str("\n  },\n  \"histograms\": {");
        let histograms = lock(&self.histograms).clone();
        for (i, (key, h)) in histograms.iter().enumerate() {
            let comma = if i > 0 { "," } else { "" };
            let counts = h.bucket_counts();
            let _ = write!(
                out,
                "{comma}\n    \"{}\": {{\"count\": {}, \"sum\": {}, \
                 \"p50\": {:.1}, \"p90\": {:.1}, \"p99\": {:.1}, \"buckets\": [",
                json_escape(key),
                h.count(),
                h.sum(),
                quantile_from_buckets(&counts, 0.50),
                quantile_from_buckets(&counts, 0.90),
                quantile_from_buckets(&counts, 0.99),
            );
            for (j, n) in counts.iter().enumerate() {
                let comma = if j > 0 { ", " } else { "" };
                let _ = write!(out, "{comma}{n}");
            }
            out.push_str("]}");
        }
        out.push_str("\n  }\n}\n");
        out
    }
}

/// Every metric name this workspace exports, with its `# HELP` text.
///
/// This table is the **stability contract** for the scrape surface:
/// `tests/metrics_golden.rs` (workspace root) asserts every name
/// registered during a full serving session appears here, and the pinned
/// unit test below asserts this list itself never changes silently — so
/// renaming or dropping a metric is a conscious, reviewed choice, not a
/// side effect of a refactor. Keep it sorted by name.
pub const METRIC_HELP: &[(&str, &str)] = &[
    (
        "sip_client_oneshot_deferred_check_us",
        "Client-side latency of the RLC-batched deferred round checks on a one-shot proof",
    ),
    (
        "sip_client_oneshot_proof_words",
        "Field words in each received one-shot proof body",
    ),
    (
        "sip_client_oneshot_queries_total",
        "One-shot queries driven by this client process",
    ),
    (
        "sip_cluster_blame_total",
        "Per-shard soundness indictments (Rejection::Blame) booked by the fleet verifier",
    ),
    (
        "sip_cluster_failovers_total",
        "Replica failovers after an I/O fault on the sampled replica",
    ),
    (
        "sip_cluster_indictments_total",
        "Replica-divergence indictments (cross-examined liar caught)",
    ),
    (
        "sip_cluster_oneshot_deferred_check_us",
        "Fleet-side latency of deferred checks across per-shard one-shot proofs",
    ),
    (
        "sip_cluster_oneshot_proof_words",
        "Field words in per-shard one-shot proof bodies",
    ),
    (
        "sip_cluster_retries_total",
        "Transient-fault redials by the fleet driver, labelled by shard and cause",
    ),
    (
        "sip_cluster_shard_wait_us",
        "Wall-clock the aggregating verifier spent waiting on each shard",
    ),
    ("sip_durable_load_us", "Snapshot decode+restore latency"),
    ("sip_durable_loads_total", "Snapshots restored from disk"),
    ("sip_durable_save_us", "Snapshot encode+fsync latency"),
    ("sip_durable_saves_total", "Snapshots persisted to disk"),
    (
        "sip_durable_snapshot_bytes",
        "Size of each persisted snapshot",
    ),
    (
        "sip_fleet_replica_health",
        "Scraped replica health (3=up 2=degraded 1=stale 0=down), labelled shard/replica/prover",
    ),
    (
        "sip_fleet_replica_staleness_us",
        "Age of each replica's last successful scrape",
    ),
    (
        "sip_fleet_scrape_us",
        "Latency of one full scrape of one target",
    ),
    (
        "sip_fleet_scrapes_total",
        "Scrape attempts by the fleet aggregator, labelled by outcome",
    ),
    (
        "sip_fleet_shard_health",
        "Per-shard quorum health (2=full 1=degraded 0=unavailable)",
    ),
    (
        "sip_fleet_slo_burn",
        "Current short-window burn rate of each SLO (milli-burns: 1000 = budget-rate burn)",
    ),
    (
        "sip_fleet_slo_firing",
        "Whether each declared SLO's multi-window burn-rate alert is firing (0/1)",
    ),
    (
        "sip_fleet_targets",
        "Scrape targets the fleet aggregator is polling",
    ),
    ("sip_fleet_up_replicas", "Replicas currently scraping as Up"),
    (
        "sip_fold_blocks_total",
        "Fold-kernel blocks walked by the prover engine",
    ),
    (
        "sip_fold_message_us",
        "Latency of one round-message fold pass (sampled)",
    ),
    (
        "sip_fold_messages_total",
        "Round messages folded by the prover engine",
    ),
    (
        "sip_ingest_batch_us",
        "Latency of one multi-point ingest batch (sampled)",
    ),
    (
        "sip_ingest_updates_total",
        "Stream updates absorbed through the batched ingest path",
    ),
    (
        "sip_registry_attach_total",
        "Sessions attached to a published dataset",
    ),
    (
        "sip_registry_checkpoint_total",
        "Named checkpoints saved via Msg::SaveState",
    ),
    (
        "sip_registry_load_errors",
        "Snapshots skipped while reloading the data dir at startup",
    ),
    (
        "sip_registry_publish_total",
        "Datasets published into the server registry",
    ),
    (
        "sip_registry_restore_total",
        "Checkpoints thawed via Msg::Resume",
    ),
    (
        "sip_server_active_sessions",
        "Sessions currently being served",
    ),
    (
        "sip_server_attached_sessions",
        "Sessions currently attached to a published dataset",
    ),
    ("sip_server_decode_us", "Wire-frame decode latency"),
    (
        "sip_server_frames_total",
        "Wire frames received across all sessions",
    ),
    ("sip_server_handle_us", "Per-frame handling latency"),
    (
        "sip_server_ingest_updates_total",
        "Stream updates ingested by server sessions",
    ),
    (
        "sip_server_last_cost_p_to_v_words",
        "Prover-to-verifier words of the last completed session's CostReport",
    ),
    (
        "sip_server_last_cost_rounds",
        "Interaction rounds of the last completed session's CostReport",
    ),
    (
        "sip_server_last_cost_total_words",
        "Total words of the last completed session's CostReport",
    ),
    (
        "sip_server_last_cost_v_to_p_words",
        "Verifier-to-prover words of the last completed session's CostReport",
    ),
    (
        "sip_server_last_cost_verifier_space_words",
        "Verifier space words of the last completed session's CostReport",
    ),
    (
        "sip_server_msg_total",
        "Frames received, labelled by message kind",
    ),
    (
        "sip_server_protocol_errors_total",
        "Frames refused as protocol errors",
    ),
    (
        "sip_server_rejections_total",
        "Soundness rejections served to verifiers",
    ),
    (
        "sip_server_wire_faults_total",
        "Connections dropped on wire faults",
    ),
];

/// The `# HELP` text for a base metric name, when it is part of the
/// workspace's pinned scrape surface ([`METRIC_HELP`]).
pub fn help_for(base: &str) -> Option<&'static str> {
    METRIC_HELP
        .binary_search_by(|(name, _)| name.cmp(&base))
        .ok()
        .map(|i| METRIC_HELP[i].1)
}

/// Splits a full key into `(base_name, label_body)` — the label body is the
/// text between the braces, empty when unlabelled.
fn split_key(key: &str) -> (&str, &str) {
    match key.split_once('{') {
        Some((base, rest)) => (base, rest.strip_suffix('}').unwrap_or(rest)),
        None => (key, ""),
    }
}

/// Emits one `# HELP` (when the name is in [`METRIC_HELP`]) and one
/// `# TYPE` header per base name (keys are sorted, so equal bases are
/// adjacent).
fn type_line(out: &mut String, key: &str, kind: &str, last_base: &mut String) {
    let (base, _) = split_key(key);
    if base != last_base {
        if let Some(help) = help_for(base) {
            let _ = writeln!(out, "# HELP {base} {help}");
        }
        let _ = writeln!(out, "# TYPE {base} {kind}");
        last_base.clear();
        last_base.push_str(base);
    }
}

/// Escapes a string for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

static GLOBAL: OnceLock<Registry> = OnceLock::new();

/// The process-global registry every instrumented crate reports into.
pub fn registry() -> &'static Registry {
    GLOBAL.get_or_init(Registry::new)
}

/// [`Registry::counter`] on the global registry.
pub fn counter(name: &str) -> Counter {
    registry().counter(name)
}

/// [`Registry::counter_with`] on the global registry.
pub fn counter_with(name: &str, labels: &[(&str, &str)]) -> Counter {
    registry().counter_with(name, labels)
}

/// [`Registry::gauge`] on the global registry.
pub fn gauge(name: &str) -> Gauge {
    registry().gauge(name)
}

/// [`Registry::gauge_with`] on the global registry.
pub fn gauge_with(name: &str, labels: &[(&str, &str)]) -> Gauge {
    registry().gauge_with(name, labels)
}

/// [`Registry::histogram`] on the global registry.
pub fn histogram(name: &str) -> Histogram {
    registry().histogram(name)
}

/// [`Registry::histogram_with`] on the global registry.
pub fn histogram_with(name: &str, labels: &[(&str, &str)]) -> Histogram {
    registry().histogram_with(name, labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let reg = Registry::new();
        let c = reg.counter("t_total");
        c.inc();
        c.add(4);
        assert_eq!(reg.counter("t_total").get(), 5);
        let g = reg.gauge("t_level");
        g.set(7);
        g.add(-3);
        assert_eq!(reg.gauge("t_level").get(), 4);
    }

    #[test]
    fn gauge_guard_restores_on_drop() {
        let reg = Registry::new();
        let g = reg.gauge("t_sessions");
        {
            let _a = GaugeGuard::new(g.clone());
            let _b = GaugeGuard::new(g.clone());
            assert_eq!(g.get(), 2);
        }
        assert_eq!(g.get(), 0);
    }

    #[test]
    fn histogram_buckets_are_powers_of_two() {
        let reg = Registry::new();
        let h = reg.histogram("t_us");
        for v in [0, 1, 2, 3, 4, 1000, u64::MAX] {
            h.observe(v);
        }
        assert_eq!(h.count(), 7);
        let counts = h.bucket_counts();
        assert_eq!(counts[0], 2); // 0 and 1
        assert_eq!(counts[1], 1); // 2
        assert_eq!(counts[2], 2); // 3, 4
        assert_eq!(counts[10], 1); // 1000 ≤ 1024
        assert_eq!(counts[HISTOGRAM_BUCKETS - 1], 1); // overflow
    }

    #[test]
    fn labels_build_distinct_instruments() {
        let reg = Registry::new();
        reg.counter_with("t_msg_total", &[("msg", "ingest")]).inc();
        reg.counter_with("t_msg_total", &[("msg", "bye")]).add(2);
        assert_eq!(
            reg.counter_with("t_msg_total", &[("msg", "ingest")]).get(),
            1
        );
        assert_eq!(reg.counter_with("t_msg_total", &[("msg", "bye")]).get(), 2);
    }

    #[test]
    fn prometheus_render_shape() {
        let reg = Registry::new();
        reg.counter_with("t_msg_total", &[("msg", "ingest")]).add(3);
        reg.counter_with("t_msg_total", &[("msg", "bye")]).inc();
        reg.gauge("t_active").set(2);
        reg.histogram_with("t_us", &[("shard", "0")]).observe(5);
        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE t_msg_total counter"));
        assert_eq!(text.matches("# TYPE t_msg_total counter").count(), 1);
        assert!(text.contains("t_msg_total{msg=\"ingest\"} 3"));
        assert!(text.contains("t_msg_total{msg=\"bye\"} 1"));
        assert!(text.contains("# TYPE t_active gauge"));
        assert!(text.contains("t_active 2"));
        assert!(text.contains("# TYPE t_us histogram"));
        assert!(text.contains("t_us_bucket{shard=\"0\",le=\"8\"} 1"));
        assert!(text.contains("t_us_bucket{shard=\"0\",le=\"+Inf\"} 1"));
        assert!(text.contains("t_us_sum{shard=\"0\"} 5"));
        assert!(text.contains("t_us_count{shard=\"0\"} 1"));
    }

    #[test]
    fn quantiles_on_pinned_distributions() {
        // Uniform 1..=1024 fills each log₂ bucket to its width, so the
        // interpolated estimate is *exact* at every rank that lands on a
        // boundary-aligned fraction.
        let reg = Registry::new();
        let h = reg.histogram("t_q");
        for v in 1..=1024u64 {
            h.observe(v);
        }
        assert_eq!(h.quantile(0.50), 512.0);
        assert_eq!(h.quantile(0.99), 1014.0);
        assert_eq!(h.quantile(1.0), 1024.0);
        assert_eq!(h.quantile(0.0), 1.0); // rank clamps to the 1st obs

        // A point mass at 100 lands in (64, 128]; the estimate stays
        // inside the bucket (≤2× relative error by construction).
        let p = reg.histogram("t_point");
        for _ in 0..1000 {
            p.observe(100);
        }
        assert_eq!(p.quantile(0.5), 96.0);
        assert!(p.quantile(0.99) > 64.0 && p.quantile(0.99) <= 128.0);

        // Bimodal 90×1 + 10×1000: the p50 sits in the first bucket, the
        // p99 in 1000's bucket.
        let b = reg.histogram("t_bimodal");
        for _ in 0..90 {
            b.observe(1);
        }
        for _ in 0..10 {
            b.observe(1000);
        }
        assert!(b.quantile(0.5) <= 1.0);
        let p99 = b.quantile(0.99);
        assert!((972.8 - p99).abs() < 1e-9, "{p99}");

        // Overflow bucket answers its lower bound; empty answers 0.
        let o = reg.histogram("t_overflow");
        o.observe(u64::MAX);
        assert_eq!(o.quantile(0.99), (1u64 << 22) as f64);
        assert_eq!(reg.histogram("t_empty").quantile(0.5), 0.0);

        // Hostile bucket lists: overlong and truncated slices stay finite.
        let long = vec![1u64; 4096];
        assert!(quantile_from_buckets(&long, 0.99).is_finite());
        assert!(quantile_from_buckets(&[0, 3], 0.5) <= 2.0);
    }

    #[test]
    fn help_table_is_sorted_unique_and_resolvable() {
        for pair in METRIC_HELP.windows(2) {
            assert!(
                pair[0].0 < pair[1].0,
                "METRIC_HELP must stay sorted and duplicate-free: {} vs {}",
                pair[0].0,
                pair[1].0
            );
        }
        for (name, help) in METRIC_HELP {
            assert!(
                name.chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'),
                "{name} is not a Prometheus-safe base name"
            );
            assert!(!help.is_empty() && !help.contains('\n'));
            assert_eq!(help_for(name), Some(*help));
        }
        assert_eq!(help_for("sip_not_a_metric"), None);
    }

    #[test]
    fn prometheus_render_emits_help_for_pinned_names() {
        let reg = Registry::new();
        reg.counter("sip_server_frames_total").add(2);
        reg.counter("t_unpinned_total").inc();
        let text = reg.render_prometheus();
        assert!(
            text.contains("# HELP sip_server_frames_total Wire frames received"),
            "{text}"
        );
        assert!(text.contains("# TYPE sip_server_frames_total counter"));
        // Unpinned names still render, just without HELP.
        assert!(!text.contains("# HELP t_unpinned_total"));
        assert!(text.contains("t_unpinned_total 1"));
    }

    #[test]
    fn json_snapshot_carries_quantiles() {
        let reg = Registry::new();
        let h = reg.histogram("t_h");
        for v in 1..=1024u64 {
            h.observe(v);
        }
        let json = reg.snapshot_json();
        assert!(json.contains("\"p50\": 512.0"), "{json}");
        assert!(json.contains("\"p90\": "), "{json}");
        assert!(json.contains("\"p99\": 1014.0"), "{json}");
    }

    #[test]
    fn json_snapshot_is_escaped_and_deterministic() {
        let reg = Registry::new();
        reg.counter_with("t_total", &[("msg", "a\"b")]).inc();
        reg.gauge("t_g").set(-4);
        reg.histogram("t_h").observe(3);
        let a = reg.snapshot_json();
        let b = reg.snapshot_json();
        assert_eq!(a, b);
        assert!(a.contains("t_total{msg=\\\"a\\\\\\\"b\\\"}"), "{a}");
        assert!(a.contains("\"t_g\": -4"));
        assert!(a.contains("\"count\": 1, \"sum\": 3"));
    }
}

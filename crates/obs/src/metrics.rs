//! The metrics half of the crate: lock-cheap atomic instruments in a
//! process-global [`Registry`], rendered as a Prometheus-style text dump or
//! a JSON snapshot.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are `Arc`-shared
//! atomics: resolving one takes a short mutex-guarded name lookup, after
//! which every operation is a single relaxed atomic instruction. Hot paths
//! resolve their handles once (e.g. in a `OnceLock`) and then pay only the
//! atomics.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Number of histogram buckets: powers of two `2^0 .. 2^22` plus a final
/// overflow bucket (rendered as `+Inf`). Values are unit-agnostic `u64`s —
/// the convention in this workspace is microseconds for latencies and raw
/// counts for sizes.
pub const HISTOGRAM_BUCKETS: usize = 24;

/// A monotonically increasing counter. Cloning shares the underlying
/// atomic.
#[derive(Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed gauge (current level of something: sessions, datasets, bytes).
#[derive(Clone)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Sets the gauge to `v`.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative).
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// RAII increment: bumps a gauge on construction and undoes it on drop —
/// the level can never leak, whatever path unwinds the scope.
pub struct GaugeGuard(Gauge);

impl GaugeGuard {
    /// Increments `gauge` and returns the guard that will decrement it.
    pub fn new(gauge: Gauge) -> Self {
        gauge.add(1);
        GaugeGuard(gauge)
    }
}

impl Drop for GaugeGuard {
    fn drop(&mut self) {
        self.0.add(-1);
    }
}

struct HistogramCore {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
    count: AtomicU64,
}

impl HistogramCore {
    fn new() -> Self {
        HistogramCore {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }
}

/// A fixed-bucket histogram over power-of-two bounds: bucket `i` covers
/// `(2^(i-1), 2^i]`, the last bucket overflows to `+Inf`.
#[derive(Clone)]
pub struct Histogram(Arc<HistogramCore>);

impl Histogram {
    /// Records one observation.
    pub fn observe(&self, v: u64) {
        let idx = if v <= 1 {
            0
        } else {
            (64 - (v - 1).leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1)
        };
        self.0.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(v, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Records the elapsed time of `timer` in microseconds.
    pub fn observe_timer(&self, timer: Timer) {
        self.observe(timer.elapsed_us());
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    fn bucket_counts(&self) -> [u64; HISTOGRAM_BUCKETS] {
        std::array::from_fn(|i| self.0.buckets[i].load(Ordering::Relaxed))
    }
}

/// A started wall-clock measurement (a thin [`Instant`]), consumed by
/// [`Histogram::observe_timer`].
pub struct Timer(Instant);

impl Timer {
    /// Starts the clock.
    pub fn start() -> Self {
        Timer(Instant::now())
    }

    /// Microseconds since [`Timer::start`], saturating.
    pub fn elapsed_us(&self) -> u64 {
        u64::try_from(self.0.elapsed().as_micros()).unwrap_or(u64::MAX)
    }
}

/// The name-to-instrument map. One process-global instance lives behind
/// [`registry`]; tests may build private ones.
///
/// Keys are full metric identities including labels, e.g.
/// `sip_server_msg_total{msg="ingest"}`. Base names should already be
/// Prometheus-safe (`[a-z0-9_]`).
#[derive(Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Builds the full metric key `name{k="v",...}` for a labelled instrument.
pub fn metric_key(name: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return name.to_string();
    }
    let mut key = String::with_capacity(name.len() + 16 * labels.len());
    key.push_str(name);
    key.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            key.push(',');
        }
        let _ = write!(
            key,
            "{k}=\"{}\"",
            v.replace('\\', "\\\\").replace('"', "\\\"")
        );
    }
    key.push('}');
    key
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Resolves (creating on first use) the counter `name`.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = lock(&self.counters);
        map.entry(name.to_string())
            .or_insert_with(|| Counter(Arc::new(AtomicU64::new(0))))
            .clone()
    }

    /// Resolves the labelled counter `name{labels}`.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        self.counter(&metric_key(name, labels))
    }

    /// Resolves (creating on first use) the gauge `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = lock(&self.gauges);
        map.entry(name.to_string())
            .or_insert_with(|| Gauge(Arc::new(AtomicI64::new(0))))
            .clone()
    }

    /// Resolves the labelled gauge `name{labels}`.
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        self.gauge(&metric_key(name, labels))
    }

    /// Resolves (creating on first use) the histogram `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut map = lock(&self.histograms);
        map.entry(name.to_string())
            .or_insert_with(|| Histogram(Arc::new(HistogramCore::new())))
            .clone()
    }

    /// Resolves the labelled histogram `name{labels}`.
    pub fn histogram_with(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        self.histogram(&metric_key(name, labels))
    }

    /// Renders every instrument in Prometheus text exposition format
    /// (counters, gauges, and cumulative-`le` histograms), sorted by name.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let counters = lock(&self.counters).clone();
        let mut last_base = String::new();
        for (key, c) in &counters {
            type_line(&mut out, key, "counter", &mut last_base);
            let _ = writeln!(out, "{key} {}", c.get());
        }
        let gauges = lock(&self.gauges).clone();
        last_base.clear();
        for (key, g) in &gauges {
            type_line(&mut out, key, "gauge", &mut last_base);
            let _ = writeln!(out, "{key} {}", g.get());
        }
        let histograms = lock(&self.histograms).clone();
        last_base.clear();
        for (key, h) in &histograms {
            let (base, labels) = split_key(key);
            type_line(&mut out, key, "histogram", &mut last_base);
            let counts = h.bucket_counts();
            let mut cumulative = 0u64;
            for (i, n) in counts.iter().enumerate() {
                cumulative += n;
                let le = if i + 1 == HISTOGRAM_BUCKETS {
                    "+Inf".to_string()
                } else {
                    (1u64 << i).to_string()
                };
                let sep = if labels.is_empty() { "" } else { "," };
                let _ = writeln!(
                    out,
                    "{base}_bucket{{{labels}{sep}le=\"{le}\"}} {cumulative}"
                );
            }
            let lbl = if labels.is_empty() {
                String::new()
            } else {
                format!("{{{labels}}}")
            };
            let _ = writeln!(out, "{base}_sum{lbl} {}", h.sum());
            let _ = writeln!(out, "{base}_count{lbl} {}", h.count());
        }
        out
    }

    /// Renders every instrument as one JSON object:
    /// `{"counters": {...}, "gauges": {...}, "histograms": {...}}` with
    /// deterministic (sorted) key order.
    pub fn snapshot_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        let counters = lock(&self.counters).clone();
        for (i, (key, c)) in counters.iter().enumerate() {
            let comma = if i > 0 { "," } else { "" };
            let _ = write!(out, "{comma}\n    \"{}\": {}", json_escape(key), c.get());
        }
        out.push_str("\n  },\n  \"gauges\": {");
        let gauges = lock(&self.gauges).clone();
        for (i, (key, g)) in gauges.iter().enumerate() {
            let comma = if i > 0 { "," } else { "" };
            let _ = write!(out, "{comma}\n    \"{}\": {}", json_escape(key), g.get());
        }
        out.push_str("\n  },\n  \"histograms\": {");
        let histograms = lock(&self.histograms).clone();
        for (i, (key, h)) in histograms.iter().enumerate() {
            let comma = if i > 0 { "," } else { "" };
            let _ = write!(
                out,
                "{comma}\n    \"{}\": {{\"count\": {}, \"sum\": {}, \"buckets\": [",
                json_escape(key),
                h.count(),
                h.sum()
            );
            for (j, n) in h.bucket_counts().iter().enumerate() {
                let comma = if j > 0 { ", " } else { "" };
                let _ = write!(out, "{comma}{n}");
            }
            out.push_str("]}");
        }
        out.push_str("\n  }\n}\n");
        out
    }
}

/// Splits a full key into `(base_name, label_body)` — the label body is the
/// text between the braces, empty when unlabelled.
fn split_key(key: &str) -> (&str, &str) {
    match key.split_once('{') {
        Some((base, rest)) => (base, rest.strip_suffix('}').unwrap_or(rest)),
        None => (key, ""),
    }
}

/// Emits one `# TYPE` header per base name (keys are sorted, so equal bases
/// are adjacent).
fn type_line(out: &mut String, key: &str, kind: &str, last_base: &mut String) {
    let (base, _) = split_key(key);
    if base != last_base {
        let _ = writeln!(out, "# TYPE {base} {kind}");
        last_base.clear();
        last_base.push_str(base);
    }
}

/// Escapes a string for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

static GLOBAL: OnceLock<Registry> = OnceLock::new();

/// The process-global registry every instrumented crate reports into.
pub fn registry() -> &'static Registry {
    GLOBAL.get_or_init(Registry::new)
}

/// [`Registry::counter`] on the global registry.
pub fn counter(name: &str) -> Counter {
    registry().counter(name)
}

/// [`Registry::counter_with`] on the global registry.
pub fn counter_with(name: &str, labels: &[(&str, &str)]) -> Counter {
    registry().counter_with(name, labels)
}

/// [`Registry::gauge`] on the global registry.
pub fn gauge(name: &str) -> Gauge {
    registry().gauge(name)
}

/// [`Registry::gauge_with`] on the global registry.
pub fn gauge_with(name: &str, labels: &[(&str, &str)]) -> Gauge {
    registry().gauge_with(name, labels)
}

/// [`Registry::histogram`] on the global registry.
pub fn histogram(name: &str) -> Histogram {
    registry().histogram(name)
}

/// [`Registry::histogram_with`] on the global registry.
pub fn histogram_with(name: &str, labels: &[(&str, &str)]) -> Histogram {
    registry().histogram_with(name, labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let reg = Registry::new();
        let c = reg.counter("t_total");
        c.inc();
        c.add(4);
        assert_eq!(reg.counter("t_total").get(), 5);
        let g = reg.gauge("t_level");
        g.set(7);
        g.add(-3);
        assert_eq!(reg.gauge("t_level").get(), 4);
    }

    #[test]
    fn gauge_guard_restores_on_drop() {
        let reg = Registry::new();
        let g = reg.gauge("t_sessions");
        {
            let _a = GaugeGuard::new(g.clone());
            let _b = GaugeGuard::new(g.clone());
            assert_eq!(g.get(), 2);
        }
        assert_eq!(g.get(), 0);
    }

    #[test]
    fn histogram_buckets_are_powers_of_two() {
        let reg = Registry::new();
        let h = reg.histogram("t_us");
        for v in [0, 1, 2, 3, 4, 1000, u64::MAX] {
            h.observe(v);
        }
        assert_eq!(h.count(), 7);
        let counts = h.bucket_counts();
        assert_eq!(counts[0], 2); // 0 and 1
        assert_eq!(counts[1], 1); // 2
        assert_eq!(counts[2], 2); // 3, 4
        assert_eq!(counts[10], 1); // 1000 ≤ 1024
        assert_eq!(counts[HISTOGRAM_BUCKETS - 1], 1); // overflow
    }

    #[test]
    fn labels_build_distinct_instruments() {
        let reg = Registry::new();
        reg.counter_with("t_msg_total", &[("msg", "ingest")]).inc();
        reg.counter_with("t_msg_total", &[("msg", "bye")]).add(2);
        assert_eq!(
            reg.counter_with("t_msg_total", &[("msg", "ingest")]).get(),
            1
        );
        assert_eq!(reg.counter_with("t_msg_total", &[("msg", "bye")]).get(), 2);
    }

    #[test]
    fn prometheus_render_shape() {
        let reg = Registry::new();
        reg.counter_with("t_msg_total", &[("msg", "ingest")]).add(3);
        reg.counter_with("t_msg_total", &[("msg", "bye")]).inc();
        reg.gauge("t_active").set(2);
        reg.histogram_with("t_us", &[("shard", "0")]).observe(5);
        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE t_msg_total counter"));
        assert_eq!(text.matches("# TYPE t_msg_total counter").count(), 1);
        assert!(text.contains("t_msg_total{msg=\"ingest\"} 3"));
        assert!(text.contains("t_msg_total{msg=\"bye\"} 1"));
        assert!(text.contains("# TYPE t_active gauge"));
        assert!(text.contains("t_active 2"));
        assert!(text.contains("# TYPE t_us histogram"));
        assert!(text.contains("t_us_bucket{shard=\"0\",le=\"8\"} 1"));
        assert!(text.contains("t_us_bucket{shard=\"0\",le=\"+Inf\"} 1"));
        assert!(text.contains("t_us_sum{shard=\"0\"} 5"));
        assert!(text.contains("t_us_count{shard=\"0\"} 1"));
    }

    #[test]
    fn json_snapshot_is_escaped_and_deterministic() {
        let reg = Registry::new();
        reg.counter_with("t_total", &[("msg", "a\"b")]).inc();
        reg.gauge("t_g").set(-4);
        reg.histogram("t_h").observe(3);
        let a = reg.snapshot_json();
        let b = reg.snapshot_json();
        assert_eq!(a, b);
        assert!(a.contains("t_total{msg=\\\"a\\\\\\\"b\\\"}"), "{a}");
        assert!(a.contains("\"t_g\": -4"));
        assert!(a.contains("\"count\": 1, \"sum\": 3"));
    }
}

//! The read-only ops listener: a minimal HTTP/1.0 responder serving the
//! global registry as `/metrics` (Prometheus text) and `/stats` (JSON).
//!
//! Hostile-input discipline matches the rest of the stack: requests are
//! read under a timeout into a bounded buffer, anything unparseable gets a
//! `400` and a closed connection, and nothing here can panic or touch a
//! serving session — the listener runs on its own thread and only ever
//! *reads* the metrics atomics.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::metrics::registry;

/// One routed answer: `(status line, content type, body)`.
pub type OpsResponse = (&'static str, &'static str, String);

/// Extra GET routes layered over the built-in ones. Consulted first for
/// every request path; answering `None` falls through to the defaults
/// (`/metrics`, `/stats`, `/trace`, `/`), so an extension listener (e.g.
/// the fleet aggregator's `/fleet/*`) still serves its own process
/// registry. Must never panic and never block — it runs on the listener
/// thread under the same IO bounds as everything else here.
pub type OpsRoutes = Arc<dyn Fn(&str) -> Option<OpsResponse> + Send + Sync>;

static ADVERTISED: OnceLock<Mutex<Option<SocketAddr>>> = OnceLock::new();

fn advertised_slot() -> &'static Mutex<Option<SocketAddr>> {
    ADVERTISED.get_or_init(|| Mutex::new(None))
}

/// The bound address of this process's most recently started ops
/// listener — the *actual* port, so `--metrics-addr 127.0.0.1:0` is
/// discoverable by scrapers through `/stats` and `Msg::StatsReply`
/// instead of racing on a fixed port.
///
/// This is a single process-wide slot with **last-wins** semantics: every
/// [`serve_ops`]/[`serve_ops_with`] call overwrites it. A prover process
/// runs exactly one ops listener, so last-wins is also only-wins there;
/// anything hosting several listeners in one process (tests, the fleet
/// aggregator colocated with a prover) must take the per-listener address
/// from [`OpsHandle::local_addr`] instead of this global.
pub fn advertised_ops_addr() -> Option<SocketAddr> {
    *advertised_slot()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Cap on one ops request (method + path + headers). Anything longer is
/// answered `400` from what was read.
pub const MAX_OPS_REQUEST_BYTES: usize = 4096;

/// Per-socket read/write timeout: a client that stalls is cut off, it
/// cannot hold the listener hostage for longer than this.
pub const OPS_IO_TIMEOUT: Duration = Duration::from_secs(1);

/// A running ops listener; stop it with [`OpsHandle::shutdown`].
pub struct OpsHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl OpsHandle {
    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting and joins the listener thread.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock `accept` with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// Binds `addr` and serves the global registry until shut down.
///
/// The bound address (useful with port 0) is advertised process-wide
/// ([`advertised_ops_addr`], spliced into `/stats`) and logged as an
/// `Info` event, so nothing ever needs to race on a fixed port.
pub fn serve_ops<A: ToSocketAddrs>(addr: A) -> std::io::Result<OpsHandle> {
    serve_ops_with(addr, Arc::new(|_| None))
}

/// [`serve_ops`] with extra routes consulted before the built-in ones —
/// how the fleet aggregator mounts `/fleet/*` next to its own `/metrics`.
pub fn serve_ops_with<A: ToSocketAddrs>(addr: A, routes: OpsRoutes) -> std::io::Result<OpsHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    *advertised_slot()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(addr);
    crate::event!(
        crate::Level::Info,
        "sip.obs.ops",
        "ops listener bound",
        "addr" => addr,
    );
    let stop = Arc::new(AtomicBool::new(false));
    let accept_stop = Arc::clone(&stop);
    let thread = std::thread::Builder::new()
        .name("sip-obs-ops".into())
        .spawn(move || {
            for incoming in listener.incoming() {
                if accept_stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = incoming else { continue };
                // Handled inline: every request is bounded in bytes and
                // time, so one connection delays the next scrape by at
                // most the IO timeout — and never touches a session.
                handle_request(stream, &routes);
            }
        })?;
    Ok(OpsHandle {
        addr,
        stop,
        thread: Some(thread),
    })
}

/// Reads one bounded request and answers it. All errors end the
/// connection silently — there is nobody trustworthy to report them to.
fn handle_request(mut stream: TcpStream, routes: &OpsRoutes) {
    let _ = stream.set_read_timeout(Some(OPS_IO_TIMEOUT));
    let _ = stream.set_write_timeout(Some(OPS_IO_TIMEOUT));
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    loop {
        if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.len() >= MAX_OPS_REQUEST_BYTES {
            break;
        }
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(_) => break, // timeout or reset: respond to what we have
        }
    }
    let (status, content_type, body) = route(&buf, routes);
    let response = format!(
        "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let _ = stream.write_all(response.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}

/// Maps raw request bytes to `(status line, content type, body)`.
fn route(request: &[u8], routes: &OpsRoutes) -> OpsResponse {
    // Only the request line matters; headers are read solely to drain the
    // socket politely. Parse defensively: the bytes are untrusted.
    let mut first_line = request.split(|&b| b == b'\n').next().unwrap_or(&[]);
    if let Some(stripped) = first_line.strip_suffix(b"\r") {
        first_line = stripped;
    }
    let Ok(line) = std::str::from_utf8(first_line) else {
        return ("400 Bad Request", "text/plain", "bad request\n".into());
    };
    let mut parts = line.split_whitespace();
    let (Some(method), Some(path)) = (parts.next(), parts.next()) else {
        return ("400 Bad Request", "text/plain", "bad request\n".into());
    };
    if method != "GET" {
        return (
            "405 Method Not Allowed",
            "text/plain",
            "only GET is served here\n".into(),
        );
    }
    // Ignore any query string: scrapers sometimes append cache busters.
    let path = path.split('?').next().unwrap_or(path);
    if let Some(answer) = routes(path) {
        return answer;
    }
    match path {
        "/metrics" => (
            "200 OK",
            "text/plain; version=0.0.4",
            registry().render_prometheus(),
        ),
        "/stats" | "/stats.json" => ("200 OK", "application/json", crate::stats_json()),
        "/trace" | "/trace.json" => (
            "200 OK",
            "application/json",
            crate::trace::export_chrome_json(),
        ),
        "/" => (
            "200 OK",
            "text/plain",
            "sip ops endpoints: /metrics (Prometheus text), /stats (JSON), \
             /trace (Chrome trace-event JSON)\n"
                .into(),
        ),
        _ => ("404 Not Found", "text/plain", "unknown path\n".into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(addr: SocketAddr, request: &[u8]) -> String {
        let mut s = TcpStream::connect(addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        // Ignore write errors: the server may legitimately stop reading an
        // oversized request and hang up mid-write.
        let _ = s.write_all(request);
        let _ = s.shutdown(std::net::Shutdown::Write);
        let mut out = String::new();
        let _ = s.read_to_string(&mut out);
        out
    }

    #[test]
    fn serves_metrics_and_stats() {
        crate::counter("t_ops_total").add(9);
        let handle = serve_ops("127.0.0.1:0").unwrap();
        let addr = handle.local_addr();
        let metrics = get(addr, b"GET /metrics HTTP/1.0\r\n\r\n");
        assert!(metrics.starts_with("HTTP/1.0 200 OK"), "{metrics}");
        assert!(metrics.contains("t_ops_total 9"), "{metrics}");
        let stats = get(addr, b"GET /stats HTTP/1.0\r\n\r\n");
        assert!(stats.contains("\"counters\""), "{stats}");
        assert!(stats.contains("\"tracing\""), "{stats}");
        let trace = get(addr, b"GET /trace HTTP/1.0\r\n\r\n");
        assert!(trace.starts_with("HTTP/1.0 200 OK"), "{trace}");
        assert!(trace.contains("\"traceEvents\""), "{trace}");
        assert!(get(addr, b"GET /nope HTTP/1.0\r\n\r\n").starts_with("HTTP/1.0 404"));
        assert!(get(addr, b"POST /metrics HTTP/1.0\r\n\r\n").starts_with("HTTP/1.0 405"));
        handle.shutdown();
    }

    #[test]
    fn custom_routes_layer_over_defaults_and_addr_is_advertised() {
        let handle = serve_ops_with(
            "127.0.0.1:0",
            Arc::new(|path| match path {
                "/fleet/health" => Some(("200 OK", "application/json", "{\"ok\":true}".into())),
                _ => None,
            }),
        )
        .unwrap();
        let addr = handle.local_addr();
        assert_eq!(advertised_ops_addr(), Some(addr));
        let fleet = get(addr, b"GET /fleet/health HTTP/1.0\r\n\r\n");
        assert!(fleet.contains("{\"ok\":true}"), "{fleet}");
        // Defaults still answer beneath the custom routes.
        assert!(get(addr, b"GET /metrics HTTP/1.0\r\n\r\n").starts_with("HTTP/1.0 200"));
        assert!(get(addr, b"GET /fleet/nope HTTP/1.0\r\n\r\n").starts_with("HTTP/1.0 404"));
        handle.shutdown();
    }

    #[test]
    fn garbage_requests_get_a_bounded_answer() {
        let handle = serve_ops("127.0.0.1:0").unwrap();
        let addr = handle.local_addr();
        // Non-UTF-8 garbage, an empty request, and an oversized one.
        assert!(get(addr, &[0xFF, 0xFE, 0x00, 0x41]).starts_with("HTTP/1.0 400"));
        assert!(get(addr, b"").starts_with("HTTP/1.0 400"));
        let huge = vec![b'A'; 3 * MAX_OPS_REQUEST_BYTES];
        let _ = get(addr, &huge); // bounded read; the reply may be lost to a reset
                                  // The listener is still alive afterwards.
        assert!(get(addr, b"GET / HTTP/1.0\r\n\r\n").starts_with("HTTP/1.0 200"));
        handle.shutdown();
    }
}

//! Causal tracing: RAII spans with monotonic timestamps, recorded into
//! per-thread buffers and exported as Chrome trace-event JSON
//! (Perfetto-loadable), with a `TraceContext` small enough to travel on
//! the wire (`Msg::TraceContext`) so one query against a sharded fleet
//! yields a single span tree across processes and threads.
//!
//! ## Model
//!
//! A *trace* is one causally-connected unit of work (one verified query),
//! identified by a random 64-bit `trace_id`. A *span* is one timed
//! operation within it, identified by a random 64-bit `span_id` and
//! pointing at its parent span (`0` = root). Opening a span makes it the
//! thread's *current* span; spans opened beneath it (same thread) become
//! its children automatically, and a context captured with
//! [`current_context`] can parent spans on another thread or another
//! process ([`span_under`]).
//!
//! ## Cost discipline
//!
//! Tracing has its own switch ([`set_tracing`], default **off**) beneath
//! the crate-wide [`crate::enabled`]: with it off, opening a span is one
//! relaxed atomic load and the guard holds nothing. With it on, a span
//! costs two monotonic clock reads and one short-lock push into a bounded
//! per-thread buffer ([`MAX_SPANS_PER_THREAD`]; overflow increments a drop
//! counter, never reallocates unboundedly). The `bench_obs` CI gate covers
//! the tracing-enabled hot paths.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Instant, SystemTime, UNIX_EPOCH};

use crate::metrics::json_escape;

/// Spans buffered per thread before new ones are dropped (and counted in
/// [`spans_dropped`]). 16 Ki spans ≈ a few MB worst case per thread — a
/// post-mortem window, not an unbounded log.
pub const MAX_SPANS_PER_THREAD: usize = 16_384;

static TRACING: AtomicBool = AtomicBool::new(false);
static RECORDED: AtomicU64 = AtomicU64::new(0);
static DROPPED: AtomicU64 = AtomicU64::new(0);
static NEXT_TID: AtomicU64 = AtomicU64::new(1);
static ID_COUNTER: AtomicU64 = AtomicU64::new(0);
static BUFFERS: Mutex<Vec<Arc<ThreadBuf>>> = Mutex::new(Vec::new());
static LAST_DUMP: Mutex<Option<String>> = Mutex::new(None);

/// Whether span recording is live: requires both the crate-wide
/// [`crate::enabled`] switch and the tracing switch.
pub fn tracing_on() -> bool {
    crate::enabled() && TRACING.load(Ordering::Relaxed)
}

/// Turns span recording on or off process-wide (default off — tracing is
/// opt-in on top of metrics/events).
pub fn set_tracing(on: bool) {
    TRACING.store(on, Ordering::Relaxed);
}

/// The identity a span tree hangs from: small enough to travel on the
/// wire, so a server can parent its spans under the querying verifier's.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct TraceContext {
    /// The 64-bit id of the whole causally-connected trace.
    pub trace_id: u64,
    /// The span new work should become a child of.
    pub span_id: u64,
}

/// One finished span, as recorded in the thread buffers.
#[derive(Clone, Debug)]
pub struct SpanRecord {
    /// Trace this span belongs to.
    pub trace_id: u64,
    /// This span's id.
    pub span_id: u64,
    /// Parent span id; `0` = a root span.
    pub parent_span: u64,
    /// Dotted subsystem name, e.g. `sip.cluster`.
    pub target: &'static str,
    /// Operation name, e.g. `round`.
    pub name: &'static str,
    /// Start, in microseconds on the process-wide monotonic clock
    /// ([`now_us`]).
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
    /// Small per-process thread number (not the OS thread id).
    pub tid: u64,
    /// Ordered key=value annotations.
    pub fields: Vec<(&'static str, String)>,
}

struct ThreadBuf {
    records: Mutex<Vec<SpanRecord>>,
}

thread_local! {
    /// The current span as `(trace_id, span_id)`; `(0, 0)` = none.
    static CURRENT: Cell<(u64, u64)> = const { Cell::new((0, 0)) };
    static LOCAL_BUF: OnceLock<(u64, Arc<ThreadBuf>)> = const { OnceLock::new() };
}

fn with_local_buf<R>(f: impl FnOnce(u64, &ThreadBuf) -> R) -> R {
    LOCAL_BUF.with(|cell| {
        let (tid, buf) = cell.get_or_init(|| {
            let tid = NEXT_TID.fetch_add(1, Ordering::Relaxed);
            let buf = Arc::new(ThreadBuf {
                records: Mutex::new(Vec::new()),
            });
            BUFFERS
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .push(Arc::clone(&buf));
            (tid, buf)
        });
        f(*tid, buf)
    })
}

/// The process-wide monotonic trace clock, in microseconds since the
/// first call (all spans and flight-recorder entries share it).
pub fn now_us() -> u64 {
    u64::try_from(epoch().0.elapsed().as_micros()).unwrap_or(u64::MAX)
}

/// The wall-clock anchor of the trace clock: Unix microseconds at trace
/// epoch, for aligning traces from different processes.
pub fn epoch_unix_us() -> u64 {
    epoch().1
}

fn epoch() -> &'static (Instant, u64) {
    static EPOCH: OnceLock<(Instant, u64)> = OnceLock::new();
    EPOCH.get_or_init(|| {
        let unix_us = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| u64::try_from(d.as_micros()).unwrap_or(u64::MAX))
            .unwrap_or(0);
        (Instant::now(), unix_us)
    })
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A fresh nonzero id: a process-unique counter mixed through splitmix64
/// over a boot-time seed (ids from concurrently tracing processes — a
/// verifier and its fleet — must not collide in one merged trace).
fn next_id() -> u64 {
    static SEED: OnceLock<u64> = OnceLock::new();
    let seed = *SEED.get_or_init(|| {
        SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| u64::try_from(d.as_nanos() & u128::from(u64::MAX)).unwrap_or(0))
            .unwrap_or(0)
            | 1
    });
    let id = splitmix64(seed ^ ID_COUNTER.fetch_add(1, Ordering::Relaxed));
    if id == 0 {
        1
    } else {
        id
    }
}

/// The calling thread's current trace context, if tracing is on and a
/// span is open. This is what travels in `Msg::TraceContext`.
pub fn current_context() -> Option<TraceContext> {
    if !tracing_on() {
        return None;
    }
    let (trace_id, span_id) = CURRENT.with(Cell::get);
    if trace_id == 0 {
        return None;
    }
    Some(TraceContext { trace_id, span_id })
}

struct SpanInner {
    trace_id: u64,
    span_id: u64,
    parent_span: u64,
    target: &'static str,
    name: &'static str,
    start_us: u64,
    started: Instant,
    prev: (u64, u64),
    fields: Vec<(&'static str, String)>,
}

/// An open span: closes (and records itself) on drop. Build one with
/// [`span`] or [`span_under`]. When tracing is off the guard is empty and
/// every method is a no-op.
pub struct SpanGuard {
    inner: Option<SpanInner>,
}

/// Opens a span under the thread's current span (or as a new root trace
/// if none is open).
pub fn span(target: &'static str, name: &'static str) -> SpanGuard {
    span_under(None, target, name)
}

/// Opens a span under an explicit parent context — the cross-thread /
/// cross-process form (`parent` typically arrived in a
/// `Msg::TraceContext`). `None` falls back to the thread's current span.
pub fn span_under(
    parent: Option<TraceContext>,
    target: &'static str,
    name: &'static str,
) -> SpanGuard {
    if !tracing_on() {
        return SpanGuard { inner: None };
    }
    let prev = CURRENT.with(Cell::get);
    let (trace_id, parent_span) = match parent {
        Some(ctx) => (ctx.trace_id, ctx.span_id),
        None if prev.0 != 0 => prev,
        None => (next_id(), 0),
    };
    let span_id = next_id();
    CURRENT.with(|c| c.set((trace_id, span_id)));
    SpanGuard {
        inner: Some(SpanInner {
            trace_id,
            span_id,
            parent_span,
            target,
            name,
            start_us: now_us(),
            started: Instant::now(),
            prev,
            fields: Vec::new(),
        }),
    }
}

impl SpanGuard {
    /// Attaches a key=value annotation. The value is only formatted when
    /// the span is live.
    pub fn field(&mut self, key: &'static str, value: impl std::fmt::Display) {
        if let Some(inner) = &mut self.inner {
            inner.fields.push((key, value.to_string()));
        }
    }

    /// This span's context (what children on other threads or peers
    /// should parent under), if the span is live.
    pub fn context(&self) -> Option<TraceContext> {
        self.inner.as_ref().map(|i| TraceContext {
            trace_id: i.trace_id,
            span_id: i.span_id,
        })
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(inner) = self.inner.take() else {
            return;
        };
        CURRENT.with(|c| c.set(inner.prev));
        let record = SpanRecord {
            trace_id: inner.trace_id,
            span_id: inner.span_id,
            parent_span: inner.parent_span,
            target: inner.target,
            name: inner.name,
            start_us: inner.start_us,
            dur_us: u64::try_from(inner.started.elapsed().as_micros()).unwrap_or(u64::MAX),
            tid: 0,
            fields: inner.fields,
        };
        with_local_buf(|tid, buf| {
            let mut records = buf
                .records
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            if records.len() >= MAX_SPANS_PER_THREAD {
                DROPPED.fetch_add(1, Ordering::Relaxed);
                return;
            }
            records.push(SpanRecord { tid, ..record });
            RECORDED.fetch_add(1, Ordering::Relaxed);
        });
    }
}

/// A copy of every buffered span, across all threads that ever recorded
/// one, in no particular global order (sort by `start_us` if needed).
pub fn snapshot_spans() -> Vec<SpanRecord> {
    let buffers = BUFFERS
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let mut out = Vec::new();
    for buf in buffers.iter() {
        out.extend_from_slice(
            &buf.records
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        );
    }
    out
}

/// Drains and returns every buffered span (benchmarks reset between
/// measurement points with this).
pub fn take_spans() -> Vec<SpanRecord> {
    let buffers = BUFFERS
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let mut out = Vec::new();
    for buf in buffers.iter() {
        out.append(
            &mut buf
                .records
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        );
    }
    out
}

/// Drops every buffered span.
pub fn clear_spans() {
    drop(take_spans());
}

/// Spans recorded since process start (cumulative; drops not included).
pub fn spans_recorded() -> u64 {
    RECORDED.load(Ordering::Relaxed)
}

/// Spans dropped at full thread buffers since process start.
pub fn spans_dropped() -> u64 {
    DROPPED.load(Ordering::Relaxed)
}

/// Remembers the path of the most recent on-disk flight-recorder dump
/// (reported in [`status_json`]).
pub fn set_last_dump(path: &str) {
    *LAST_DUMP
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(path.to_string());
}

/// The most recent on-disk flight-recorder dump path, if any.
pub fn last_dump() -> Option<String> {
    LAST_DUMP
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .clone()
}

/// One span as a Chrome trace-event JSON object (`"ph": "X"`, complete
/// event). Used by [`chrome_trace_json`] and the flight recorder.
pub fn chrome_event_json(s: &SpanRecord) -> String {
    use std::fmt::Write as _;
    let mut out = format!(
        "{{\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{},\"dur\":{},\"name\":\"{}\",\"cat\":\"{}\",\
         \"args\":{{\"trace_id\":\"{:016x}\",\"span_id\":\"{:016x}\",\"parent_span\":\"{:016x}\"",
        s.tid,
        s.start_us,
        s.dur_us,
        json_escape(s.name),
        json_escape(s.target),
        s.trace_id,
        s.span_id,
        s.parent_span,
    );
    for (k, v) in &s.fields {
        let _ = write!(out, ",\"{}\":\"{}\"", json_escape(k), json_escape(v));
    }
    out.push_str("}}");
    out
}

/// Renders spans as one Chrome trace-event JSON document — load it at
/// `chrome://tracing` or <https://ui.perfetto.dev>. `otherData` carries
/// the wall-clock anchor for aligning documents from different processes.
pub fn chrome_trace_json(spans: &[SpanRecord]) -> String {
    let mut out = format!(
        "{{\"displayTimeUnit\":\"ms\",\"otherData\":{{\"epoch_unix_us\":\"{}\"}},\"traceEvents\":[",
        epoch_unix_us()
    );
    for (i, s) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('\n');
        out.push_str(&chrome_event_json(s));
    }
    out.push_str("\n]}\n");
    out
}

/// Every currently buffered span as a Chrome trace document (the ops
/// listener's `/trace` body), sorted by start time.
pub fn export_chrome_json() -> String {
    let mut spans = snapshot_spans();
    spans.sort_by_key(|s| s.start_us);
    chrome_trace_json(&spans)
}

/// The tracing status block spliced into `/stats` and `Msg::StatsReply`
/// JSON: `{"enabled": …, "spans_recorded": …, "spans_dropped": …,
/// "last_dump": …}`.
pub fn status_json() -> String {
    let last = match last_dump() {
        Some(path) => format!("\"{}\"", json_escape(&path)),
        None => "null".to_string(),
    };
    format!(
        "{{\"enabled\": {}, \"spans_recorded\": {}, \"spans_dropped\": {}, \"last_dump\": {last}}}",
        tracing_on(),
        spans_recorded(),
        spans_dropped(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serialises the tests in this module that flip the global tracing
    /// switch (spans from other tests' threads land in other buffers and
    /// are filtered out by trace id).
    static GATE: Mutex<()> = Mutex::new(());

    #[test]
    fn spans_nest_on_one_thread_and_under_explicit_parents() {
        let _gate = GATE
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        crate::set_enabled(true);
        set_tracing(true);
        let (root_ctx, child_ctx, sibling_ctx);
        {
            let root = span("sip.test", "root");
            root_ctx = root.context().unwrap();
            {
                let mut child = span("sip.test", "child");
                child.field("k", 7);
                child_ctx = child.context().unwrap();
            }
            let sibling = span_under(Some(root_ctx), "sip.test", "sibling");
            sibling_ctx = sibling.context().unwrap();
        }
        set_tracing(false);
        let spans: Vec<SpanRecord> = snapshot_spans()
            .into_iter()
            .filter(|s| s.trace_id == root_ctx.trace_id)
            .collect();
        assert_eq!(spans.len(), 3);
        let by_id = |id: u64| spans.iter().find(|s| s.span_id == id).unwrap();
        assert_eq!(by_id(root_ctx.span_id).parent_span, 0);
        assert_eq!(by_id(child_ctx.span_id).parent_span, root_ctx.span_id);
        assert_eq!(by_id(sibling_ctx.span_id).parent_span, root_ctx.span_id);
        assert_eq!(
            by_id(child_ctx.span_id).fields,
            vec![("k", "7".to_string())]
        );
        // Current context is cleared once every span is closed.
        set_tracing(true);
        assert_eq!(current_context(), None);
        set_tracing(false);
    }

    #[test]
    fn disabled_tracing_records_nothing() {
        let _gate = GATE
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        set_tracing(false);
        let before = spans_recorded();
        {
            let mut s = span("sip.test", "ghost");
            s.field("k", 1);
            assert!(s.context().is_none());
        }
        assert_eq!(spans_recorded(), before);
        assert_eq!(current_context(), None);
    }

    #[test]
    fn chrome_export_is_wellformed() {
        let record = SpanRecord {
            trace_id: 0xABCD,
            span_id: 0x1234,
            parent_span: 0,
            target: "sip.test",
            name: "quoted \"name\"",
            start_us: 10,
            dur_us: 5,
            tid: 3,
            fields: vec![("msg", "a\nb".to_string())],
        };
        let doc = chrome_trace_json(&[record]);
        assert!(
            doc.starts_with('{') && doc.trim_end().ends_with('}'),
            "{doc}"
        );
        assert!(doc.contains("\"traceEvents\":["), "{doc}");
        assert!(doc.contains("\"ph\":\"X\""), "{doc}");
        assert!(doc.contains("quoted \\\"name\\\""), "{doc}");
        assert!(doc.contains("\"msg\":\"a\\nb\""), "{doc}");
        assert!(doc.contains("\"span_id\":\"0000000000001234\""), "{doc}");
    }

    #[test]
    fn status_json_shape() {
        let s = status_json();
        assert!(s.starts_with('{') && s.ends_with('}'), "{s}");
        for key in ["enabled", "spans_recorded", "spans_dropped", "last_dump"] {
            assert!(s.contains(&format!("\"{key}\"")), "{s}");
        }
    }

    #[test]
    fn ids_are_nonzero_and_distinct() {
        let a = next_id();
        let b = next_id();
        assert_ne!(a, 0);
        assert_ne!(b, 0);
        assert_ne!(a, b);
    }
}

//! Fleet observability end-to-end: a real 2-shard × 2-replica fleet of
//! live servers, scraped over real sockets — plus the chaos battery the
//! ISSUE demands (dead target, stalled socket, garbage body, oversized
//! body, mid-scrape death), all landing as typed staleness and health
//! transitions, never a panic.
//!
//! The metrics registry is process-global and every in-process server
//! shares it, so these tests assert on *health topology* (which is
//! per-target in the aggregator) and deltas, never absolute counter
//! values. Tests that need exclusive SLO/event state take `FLEET_LOCK`.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::process::Command;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

use sip_fleetobs::{
    http_get, serve_fleet_ops, DashModel, FaultClass, FleetConfig, FleetScraper, HealthPolicy,
    Json, ReplicaState, ScrapeOutcome, ShardState, Target,
};
use sip_server::{spawn, ServerConfig, ServerHandle};

fn fleet_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(Mutex::default)
        .lock()
        .unwrap_or_else(|p| p.into_inner())
}

/// Spawns a live 2×2 fleet (in-process servers, real TCP ops ports) and
/// the shard-major target list for it.
fn spawn_fleet_2x2() -> (Vec<ServerHandle>, Vec<Target>) {
    let mut handles = Vec::new();
    let mut targets = Vec::new();
    for shard in 0..2u32 {
        for replica in 0..2u32 {
            let server = spawn::<sip_field::Fp61, _>(
                "127.0.0.1:0",
                ServerConfig {
                    metrics_addr: Some("127.0.0.1:0".into()),
                    ..ServerConfig::default()
                },
            )
            .expect("spawn server");
            let ops = server.ops_addr().expect("ops listener");
            targets.push(Target {
                shard,
                replica,
                addr: ops.to_string(),
            });
            handles.push(server);
        }
    }
    (handles, targets)
}

/// A quick scraper config: tight timeouts so chaos rounds stay fast.
fn quick_config() -> FleetConfig {
    let mut config = FleetConfig {
        interval: Duration::from_millis(200),
        policy: HealthPolicy {
            stale_after_us: 2_000_000,
            down_after_misses: 1,
        },
        ..FleetConfig::default()
    };
    config.retry.attempts = 2;
    config.retry.base = Duration::from_millis(5);
    config.retry.cap = Duration::from_millis(20);
    config.retry.op_deadline = Duration::from_millis(400);
    config
}

/// Streams a few updates through one server so the shared registry has
/// real `sip_server_*` traffic series for the scraper to pick up.
fn drive_load(addr: std::net::SocketAddr) {
    let log_u = 4u32;
    let mut client: sip_server::client::RawClient<sip_field::Fp61, _> =
        sip_server::client::RawClient::connect(addr, log_u).unwrap();
    for up in sip_streaming::workloads::paper_f2(1 << log_u, 42) {
        client.send_update(up);
    }
    client.end_stream().unwrap();
    client.bye().unwrap();
}

#[test]
fn live_fleet_scrapes_up_and_serves_the_fleet_view() {
    let _guard = fleet_lock();
    let (handles, targets) = spawn_fleet_2x2();
    drive_load(handles[0].local_addr());
    let scraper = FleetScraper::new(quick_config(), targets.clone());
    scraper.scrape_once();
    std::thread::sleep(Duration::from_millis(120));
    scraper.scrape_once();
    {
        let state = scraper.state();
        assert_eq!(state.rounds(), 2);
        for t in state.targets() {
            assert_eq!(
                t.health.state(),
                ReplicaState::Up,
                "{}/{} at {}: {:?}",
                t.target.shard,
                t.target.replica,
                t.target.addr,
                t.health.last_error()
            );
            assert!(!t.samples.is_empty());
        }
        assert!(state
            .shard_states()
            .iter()
            .all(|(_, s)| *s == ShardState::Full));
    }

    // The fleet ops surface serves all three endpoints over real HTTP.
    let ops = serve_fleet_ops("127.0.0.1:0", &scraper).unwrap();
    let addr = ops.local_addr().to_string();
    let health_body = http_get(&addr, "/fleet/health", Duration::from_secs(2)).unwrap();
    let health = Json::parse(&health_body).expect("health is valid JSON");
    let shards = health.get("shards").and_then(Json::as_arr).unwrap();
    assert_eq!(shards.len(), 2);
    for shard in shards {
        assert_eq!(shard.get("state").and_then(Json::as_str), Some("full"));
        let replicas = shard.get("replicas").and_then(Json::as_arr).unwrap();
        assert_eq!(replicas.len(), 2);
        for r in replicas {
            assert_eq!(r.get("state").and_then(Json::as_str), Some("up"));
        }
    }
    let slo_body = http_get(&addr, "/fleet/slo", Duration::from_secs(2)).unwrap();
    assert!(Json::parse(&slo_body).is_some(), "{slo_body}");
    let metrics = http_get(&addr, "/fleet/metrics", Duration::from_secs(2)).unwrap();
    assert!(metrics.contains("sip_fleet_replica_health{"), "{metrics}");
    assert!(
        metrics.contains("sip_server_frames_total{shard=\"1\",replica=\"1\","),
        "{metrics}"
    );
    // The merged exposition round-trips through our own strict parser.
    assert!(sip_fleetobs::parse_prometheus(&metrics).is_ok());

    ops.shutdown();
    for h in handles {
        h.shutdown();
    }
}

#[test]
fn killing_a_replica_flips_down_within_one_round_and_fires_the_slo() {
    let _guard = fleet_lock();
    let ring = Arc::new(sip_obs::RingSink::new(256));
    sip_obs::add_sink(ring.clone());
    let (mut handles, targets) = spawn_fleet_2x2();
    let scraper = FleetScraper::new(quick_config(), targets.clone());
    // Two healthy rounds to establish Up everywhere.
    scraper.scrape_once();
    std::thread::sleep(Duration::from_millis(60));
    scraper.scrape_once();
    assert!(scraper
        .state()
        .targets()
        .iter()
        .all(|t| t.health.state() == ReplicaState::Up));

    // Kill shard 1 / replica 0 (slot 2) — its ops port closes with it.
    handles.remove(2).shutdown();
    ring.take();
    scraper.scrape_once();
    {
        let state = scraper.state();
        let dead = &state.targets()[2];
        assert_eq!(dead.target.shard, 1);
        assert_eq!(dead.health.state(), ReplicaState::Down, "{:?}", dead.health);
        assert_eq!(
            dead.health.last_error().unwrap().class(),
            FaultClass::Unreachable
        );
        // The shard degrades; its sibling keeps serving.
        let shard_states = state.shard_states();
        assert_eq!(shard_states[1].1, ShardState::Degraded);
        assert_eq!(shard_states[0].1, ShardState::Full);
        // Availability SLO: 1 dead of 4 is a 250× burn — firing now.
        let health = state.health_json(scraper.now_us());
        assert!(
            health.contains("\"name\": \"availability\", \"firing\": true"),
            "{health}"
        );
    }
    let events = ring.take();
    let down = events
        .iter()
        .find(|e| e.message == "replica state changed" && e.field("to") == Some("down"))
        .expect("down transition event");
    assert_eq!(down.field("shard"), Some("1"));
    assert_eq!(down.field("replica"), Some("0"));
    assert_eq!(down.level, sip_obs::Level::Error);
    let fired = events
        .iter()
        .find(|e| e.message == "slo burn alert firing")
        .expect("availability alert event");
    assert_eq!(fired.field("slo"), Some("availability"));

    sip_obs::clear_sinks();
    for h in handles {
        h.shutdown();
    }
}

/// A TCP listener that accepts and then never writes a byte.
fn stalled_listener() -> (String, Arc<AtomicBool>, std::thread::JoinHandle<()>) {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let stop = Arc::new(AtomicBool::new(false));
    let thread_stop = Arc::clone(&stop);
    let thread = std::thread::spawn(move || {
        let mut held = Vec::new();
        listener.set_nonblocking(true).unwrap();
        while !thread_stop.load(Ordering::SeqCst) {
            if let Ok((sock, _)) = listener.accept() {
                held.push(sock); // hold it open, say nothing
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    });
    (addr, stop, thread)
}

/// A listener answering every request with `body` and closing.
fn canned_listener(body: Vec<u8>) -> (String, Arc<AtomicBool>, std::thread::JoinHandle<()>) {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let stop = Arc::new(AtomicBool::new(false));
    let thread_stop = Arc::clone(&stop);
    let thread = std::thread::spawn(move || {
        listener.set_nonblocking(true).unwrap();
        while !thread_stop.load(Ordering::SeqCst) {
            if let Ok((mut sock, _)) = listener.accept() {
                let mut sink = [0u8; 512];
                let _ = sock.set_read_timeout(Some(Duration::from_millis(100)));
                let _ = sock.read(&mut sink);
                let _ = sock.write_all(&body);
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    });
    (addr, stop, thread)
}

#[test]
fn chaos_targets_degrade_to_typed_staleness_never_panic() {
    let _guard = fleet_lock();
    // Target 0: dead port (bind-then-drop).
    let dead_addr = {
        let l = TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap().to_string()
    };
    // Target 1: accepts, never answers.
    let (stall_addr, stall_stop, stall_thread) = stalled_listener();
    // Target 2: answers HTTP 200 with a garbage body.
    let (garbage_addr, garbage_stop, garbage_thread) = canned_listener(
        b"HTTP/1.0 200 OK\r\nContent-Type: text/plain\r\n\r\n\x00\xff{{{not metrics}}}\n".to_vec(),
    );
    // Target 3: answers far more than the scraper will read.
    let mut huge = b"HTTP/1.0 200 OK\r\n\r\n".to_vec();
    huge.resize(sip_fleetobs::MAX_SCRAPE_BODY_BYTES + 4096, b'a');
    let (huge_addr, huge_stop, huge_thread) = canned_listener(huge);

    let targets = vec![
        Target {
            shard: 0,
            replica: 0,
            addr: dead_addr,
        },
        Target {
            shard: 0,
            replica: 1,
            addr: stall_addr,
        },
        Target {
            shard: 1,
            replica: 0,
            addr: garbage_addr,
        },
        Target {
            shard: 1,
            replica: 1,
            addr: huge_addr,
        },
    ];
    let scraper = FleetScraper::new(quick_config(), targets);
    scraper.scrape_once();
    {
        let state = scraper.state();
        let classes: Vec<_> = state
            .targets()
            .iter()
            .map(|t| {
                (
                    t.health.state(),
                    t.health.last_error().map(sip_fleetobs::ScrapeError::class),
                )
            })
            .collect();
        assert_eq!(
            classes[0],
            (ReplicaState::Down, Some(FaultClass::Unreachable)),
            "dead port"
        );
        assert_eq!(
            classes[1],
            (ReplicaState::Stale, Some(FaultClass::Stalled)),
            "stalled socket (never scraped: straight to stale)"
        );
        assert_eq!(
            classes[2],
            (ReplicaState::Stale, Some(FaultClass::Garbage)),
            "garbage body"
        );
        assert_eq!(
            classes[3],
            (ReplicaState::Stale, Some(FaultClass::Garbage)),
            "oversized body"
        );
        // Every shard is unavailable: nothing serves.
        assert!(state
            .shard_states()
            .iter()
            .all(|(_, s)| *s == ShardState::Unavailable));
    }
    // The fleet surface stays panic-free while everything burns.
    let ops = serve_fleet_ops("127.0.0.1:0", &scraper).unwrap();
    let addr = ops.local_addr().to_string();
    let health = http_get(&addr, "/fleet/health", Duration::from_secs(2)).unwrap();
    assert!(Json::parse(&health).is_some(), "{health}");
    assert!(health.contains("\"state\": \"down\""), "{health}");

    // Hostile clients against /fleet/* get bounded answers and the
    // listener survives them.
    let sock_addr: std::net::SocketAddr = addr.parse().unwrap();
    for raw in [
        b"\xff\xfe\x00garbage".to_vec(),
        b"GET /fleet/health".to_vec(), // no HTTP version, no CRLF
        vec![b'A'; 64 * 1024],
        b"POST /fleet/health HTTP/1.0\r\n\r\n".to_vec(),
    ] {
        let mut s = TcpStream::connect(sock_addr).unwrap();
        let _ = s.write_all(&raw);
        let _ = s.shutdown(std::net::Shutdown::Write);
        let mut out = String::new();
        let _ = s
            .set_read_timeout(Some(Duration::from_secs(2)))
            .and_then(|()| s.read_to_string(&mut out).map(|_| ()));
    }
    let still = http_get(&addr, "/fleet/health", Duration::from_secs(2)).unwrap();
    assert!(Json::parse(&still).is_some());

    ops.shutdown();
    stall_stop.store(true, Ordering::SeqCst);
    garbage_stop.store(true, Ordering::SeqCst);
    huge_stop.store(true, Ordering::SeqCst);
    let _ = stall_thread.join();
    let _ = garbage_thread.join();
    let _ = huge_thread.join();
}

#[test]
fn recovery_after_chaos_returns_to_up() {
    let _guard = fleet_lock();
    // One real server, scraped under an address that first points at a
    // dead port, then at the live server — modelling a restart.
    let server = spawn::<sip_field::Fp61, _>(
        "127.0.0.1:0",
        ServerConfig {
            metrics_addr: Some("127.0.0.1:0".into()),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let live = server.ops_addr().unwrap().to_string();
    let dead = {
        let l = TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap().to_string()
    };
    let mut config = quick_config();
    config.policy.down_after_misses = 1;
    let scraper = FleetScraper::new(
        config,
        vec![Target {
            shard: 0,
            replica: 0,
            addr: dead,
        }],
    );
    scraper.scrape_once();
    assert_eq!(
        scraper.state().targets()[0].health.state(),
        ReplicaState::Down
    );
    // "Restart": swap in the live address via a fresh scraper sharing no
    // state — then verify a Down replica observed Up again recovers.
    let result = sip_fleetobs::scrape_target(&live, &scraper.state().config.retry);
    assert!(matches!(result.outcome, ScrapeOutcome::Full), "{result:?}");
    {
        let mut state = scraper.state();
        state.ingest(0, result, 500, scraper.now_us());
        state.finish_round(scraper.now_us());
        assert_eq!(state.targets()[0].health.state(), ReplicaState::Up);
    }
    server.shutdown();
}

#[test]
fn sip_top_once_renders_a_live_fleet() {
    let _guard = fleet_lock();
    let (handles, targets) = spawn_fleet_2x2();
    let list = targets
        .iter()
        .map(|t| format!("{}/{}@{}", t.shard, t.replica, t.addr))
        .collect::<Vec<_>>()
        .join(",");

    let out = Command::new(env!("CARGO_BIN_EXE_sip-top"))
        .args(["--targets", &list, "--once", "--no-color"])
        .output()
        .expect("run sip-top");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "sip-top failed: {stdout}\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    // Every slot renders, and every live replica shows as up.
    for slot in ["0/0", "0/1", "1/0", "1/1"] {
        assert!(stdout.contains(slot), "missing {slot}:\n{stdout}");
    }
    assert_eq!(stdout.matches(" up ").count(), 4, "{stdout}");
    assert!(stdout.contains("#0 full"), "{stdout}");
    assert!(stdout.contains("#1 full"), "{stdout}");
    assert!(stdout.contains("availability"), "{stdout}");
    assert!(
        !stdout.contains('\x1b'),
        "--no-color must strip ANSI:\n{stdout}"
    );

    // --fleet mode renders the same view through a running aggregator.
    let scraper = FleetScraper::new(quick_config(), targets.clone());
    scraper.scrape_once();
    let ops = serve_fleet_ops("127.0.0.1:0", &scraper).unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_sip-top"))
        .args([
            "--fleet",
            &ops.local_addr().to_string(),
            "--once",
            "--no-color",
        ])
        .output()
        .expect("run sip-top --fleet");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    for slot in ["0/0", "0/1", "1/0", "1/1"] {
        assert!(stdout.contains(slot), "missing {slot}:\n{stdout}");
    }
    // The two modes draw from the same model: a DashModel built directly
    // from the aggregator's health document matches what --fleet printed.
    let health = http_get(
        &ops.local_addr().to_string(),
        "/fleet/health",
        Duration::from_secs(2),
    )
    .unwrap();
    let model = DashModel::from_health_json(&Json::parse(&health).unwrap());
    assert_eq!(model.rows.len(), 4);

    ops.shutdown();
    for h in handles {
        h.shutdown();
    }
}

#[test]
fn sip_fleetobs_daemon_serves_and_dies_cleanly() {
    let _guard = fleet_lock();
    let (handles, targets) = spawn_fleet_2x2();
    let list = targets
        .iter()
        .map(|t| format!("{}/{}@{}", t.shard, t.replica, t.addr))
        .collect::<Vec<_>>()
        .join(",");
    let mut child = Command::new(env!("CARGO_BIN_EXE_sip-fleetobs"))
        .args([
            "--targets",
            &list,
            "--listen",
            "127.0.0.1:0",
            "--interval",
            "150",
        ])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("spawn sip-fleetobs");
    // Parse the advertised fleet ops address off stdout.
    let stdout = child.stdout.take().unwrap();
    let mut reader = std::io::BufReader::new(stdout);
    let mut line = String::new();
    std::io::BufRead::read_line(&mut reader, &mut line).unwrap();
    let addr = line
        .split("http://")
        .nth(1)
        .and_then(|rest| rest.split("/fleet/health").next())
        .expect("ops addr in banner")
        .to_string();
    // Give it a couple of scrape rounds, then read the fleet view.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    let health = loop {
        std::thread::sleep(Duration::from_millis(200));
        let body = http_get(&addr, "/fleet/health", Duration::from_secs(2)).unwrap();
        let doc = Json::parse(&body).expect("daemon health parses");
        let rounds = doc.get("rounds").and_then(Json::as_u64).unwrap_or(0);
        if rounds >= 2 {
            break doc;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "daemon never completed two rounds: {body}"
        );
    };
    let shards = health.get("shards").and_then(Json::as_arr).unwrap();
    assert_eq!(shards.len(), 2);
    for shard in shards {
        assert_eq!(shard.get("state").and_then(Json::as_str), Some("full"));
    }
    child.kill().unwrap();
    let _ = child.wait();
    for h in handles {
        h.shutdown();
    }
}

//! A minimal recursive-descent JSON reader for scraped `/stats` bodies.
//!
//! The input comes from an untrusted process, so the parser is bounded:
//! nesting past [`MAX_DEPTH`] or any syntax error returns `None` — a
//! prover answering broken JSON is a *degraded* target, not a crash in
//! the aggregator. Only what the fleet model needs is supported: no
//! serialization, no number fidelity beyond `f64`.

use std::collections::BTreeMap;

/// Nesting cap; a hostile body of `[[[[…` stops here instead of
/// overflowing the stack.
pub const MAX_DEPTH: usize = 64;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number, widened to `f64`.
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; key order is not preserved.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Parses `text` into a value, or `None` on any syntax error, trailing
    /// garbage, or nesting past [`MAX_DEPTH`].
    pub fn parse(text: &str) -> Option<Json> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos, 0)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return None;
        }
        Some(value)
    }

    /// Member `key` of an object, if this is an object and has it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// Walks a path of object keys.
    pub fn path(&self, keys: &[&str]) -> Option<&Json> {
        keys.iter().try_fold(self, |v, k| v.get(k))
    }

    /// This value as a number (numbers only — no coercion).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// This value as a non-negative integer, truncated.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// This value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// This value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The object map, if this is an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn eat(bytes: &[u8], pos: &mut usize, expected: u8) -> Option<()> {
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&expected) {
        *pos += 1;
        Some(())
    } else {
        None
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Option<Json> {
    if depth > MAX_DEPTH {
        return None;
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos)? {
        b'{' => parse_obj(bytes, pos, depth),
        b'[' => parse_arr(bytes, pos, depth),
        b'"' => parse_str(bytes, pos).map(Json::Str),
        b't' => parse_lit(bytes, pos, b"true", Json::Bool(true)),
        b'f' => parse_lit(bytes, pos, b"false", Json::Bool(false)),
        b'n' => parse_lit(bytes, pos, b"null", Json::Null),
        _ => parse_num(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &[u8], value: Json) -> Option<Json> {
    if bytes[*pos..].starts_with(lit) {
        *pos += lit.len();
        Some(value)
    } else {
        None
    }
}

fn parse_num(bytes: &[u8], pos: &mut usize) -> Option<Json> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()?
        .parse()
        .ok()
        .map(Json::Num)
}

fn parse_str(bytes: &[u8], pos: &mut usize) -> Option<String> {
    eat(bytes, pos, b'"')?;
    let mut out = Vec::new();
    loop {
        match bytes.get(*pos)? {
            b'"' => {
                *pos += 1;
                return String::from_utf8(out).ok();
            }
            b'\\' => {
                *pos += 1;
                let esc = bytes.get(*pos)?;
                *pos += 1;
                match esc {
                    b'n' => out.push(b'\n'),
                    b't' => out.push(b'\t'),
                    b'r' => out.push(b'\r'),
                    b'u' => {
                        // Keep the aggregator simple: decode BMP escapes,
                        // map surrogates to U+FFFD rather than erroring.
                        let hex = bytes.get(*pos..*pos + 4)?;
                        *pos += 4;
                        let code = u32::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?;
                        let ch = char::from_u32(code).unwrap_or('\u{FFFD}');
                        let mut buf = [0u8; 4];
                        out.extend_from_slice(ch.encode_utf8(&mut buf).as_bytes());
                    }
                    other => out.push(*other),
                }
            }
            &b => {
                *pos += 1;
                out.push(b);
            }
        }
    }
}

fn parse_arr(bytes: &[u8], pos: &mut usize, depth: usize) -> Option<Json> {
    eat(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Some(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos, depth + 1)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos)? {
            b',' => *pos += 1,
            b']' => {
                *pos += 1;
                return Some(Json::Arr(items));
            }
            _ => return None,
        }
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize, depth: usize) -> Option<Json> {
    eat(bytes, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Some(Json::Obj(map));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_str(bytes, pos)?;
        eat(bytes, pos, b':')?;
        map.insert(key, parse_value(bytes, pos, depth + 1)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos)? {
            b',' => *pos += 1,
            b'}' => {
                *pos += 1;
                return Some(Json::Obj(map));
            }
            _ => return None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_stats_shaped_document() {
        let doc = r#"{
            "counters": {"sip_server_frames_total": 12, "labelled{msg=\"ingest\"}": 3},
            "histograms": {"t_us": {"count": 5, "sum": 900.5, "p50": 128.0, "buckets": [1, 2, 2]}},
            "ops": {"metrics_addr": "127.0.0.1:4567"},
            "nested": [1, -2.5, 1e3, true, false, null, "s\u0041"]
        }"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(
            v.path(&["counters", "sip_server_frames_total"])
                .and_then(Json::as_u64),
            Some(12)
        );
        assert_eq!(
            v.path(&["histograms", "t_us", "sum"])
                .and_then(Json::as_f64),
            Some(900.5)
        );
        assert_eq!(
            v.path(&["ops", "metrics_addr"]).and_then(Json::as_str),
            Some("127.0.0.1:4567")
        );
        let arr = v.get("nested").and_then(Json::as_arr).unwrap();
        assert_eq!(arr.len(), 7);
        assert_eq!(arr[2], Json::Num(1000.0));
        assert_eq!(arr[6], Json::Str("sA".into()));
    }

    #[test]
    fn hostile_documents_return_none_never_panic() {
        for bad in [
            "",
            "{",
            "}",
            "{\"a\": }",
            "{\"a\": 1,}",
            "[1, 2",
            "\"unterminated",
            "12 34",
            "{\"a\": 1} trailing",
            "nul",
            "\"\\u12\"",  // truncated unicode escape
            "\u{0}\u{1}", // binary
        ] {
            assert!(Json::parse(bad).is_none(), "{bad:?}");
        }
        // Surrogate escapes degrade to U+FFFD rather than failing the doc.
        assert_eq!(
            Json::parse("\"\\uD800\"").unwrap(),
            Json::Str("\u{FFFD}".into())
        );
    }

    #[test]
    fn depth_cap_stops_nesting_bombs() {
        let bomb = "[".repeat(MAX_DEPTH * 4);
        assert!(Json::parse(&bomb).is_none());
        let deep_ok = format!("{}1{}", "[".repeat(10), "]".repeat(10));
        assert!(Json::parse(&deep_ok).is_some());
    }

    #[test]
    fn empty_containers_and_whitespace() {
        assert_eq!(Json::parse(" { } ").unwrap(), Json::Obj(BTreeMap::new()));
        assert_eq!(Json::parse("[]").unwrap(), Json::Arr(vec![]));
        assert_eq!(Json::parse(" -0.5 ").unwrap(), Json::Num(-0.5));
    }
}

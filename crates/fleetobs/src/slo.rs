//! Declarative SLOs over the fleet series, with multi-window burn-rate
//! alerting.
//!
//! Every objective reduces to a **bad-fraction over a window**: the
//! tracker stores cumulative `(t_us, bad, total)` samples per round and
//! differences them across two sliding windows. The *burn rate* is the
//! observed bad-fraction divided by the error budget; an alert fires only
//! when **both** the long and the short window exceed the threshold — the
//! long window proves the problem is sustained, the short window proves
//! it is still happening (so alerts resolve promptly once the cause is
//! fixed). This is the standard multi-window multi-burn-rate scheme, with
//! the windows scaled down from hours to seconds to match a scrape loop
//! that ticks every second.

use crate::health::ReplicaState;
use sip_obs::{event, gauge_with, Level};

/// What an objective measures.
#[derive(Clone, Debug)]
pub enum SloKind {
    /// Fraction of scraped replicas not serving (Down or Stale). `bad` =
    /// non-serving replica-rounds, `total` = replica-rounds.
    Availability,
    /// Fraction of observations of histogram `histogram` above `max_us`.
    /// Computed from the scraped cumulative bucket counts: `total` =
    /// `_count`, `bad` = observations in buckets whose lower bound is ≥
    /// `max_us` (rounded to the covering power of two).
    LatencyAbove {
        /// Histogram base name in the scraped exposition.
        histogram: String,
        /// Threshold in microseconds.
        max_us: u64,
    },
    /// Generic ratio of two counters: `bad / total`.
    Ratio {
        /// Numerator counter name.
        bad: String,
        /// Denominator counter name.
        total: String,
    },
}

/// One declared objective.
#[derive(Clone, Debug)]
pub struct SloSpec {
    /// Name, used in events, gauges (`slo` label), JSON, and the dashboard.
    pub name: String,
    /// What is measured.
    pub kind: SloKind,
    /// Error budget: the acceptable bad-fraction (e.g. `0.001` = 99.9 %).
    pub budget: f64,
    /// Long (sustained) window.
    pub long_window_us: u64,
    /// Short (still-happening) window.
    pub short_window_us: u64,
    /// Fire when both windows burn at ≥ this multiple of budget.
    pub burn_threshold: f64,
}

impl SloSpec {
    /// The default fleet SLOs:
    ///
    /// * `availability` — 99.9 % of replica-rounds serving; burn ≥ 10×
    ///   over 60 s/10 s windows fires. With budget 0.001, a single dead
    ///   replica out of four burns at 250×, so the alert fires on the
    ///   first short window that sees it — within one scrape interval.
    /// * `frame-latency-p99` — ≤ 1 % of per-frame handling above ~64 ms.
    /// * `rejections` — ≤ 0.1 % of frames rejected.
    pub fn defaults() -> Vec<SloSpec> {
        vec![
            SloSpec {
                name: "availability".into(),
                kind: SloKind::Availability,
                budget: 0.001,
                long_window_us: 60_000_000,
                short_window_us: 10_000_000,
                burn_threshold: 10.0,
            },
            SloSpec {
                name: "frame-latency-p99".into(),
                kind: SloKind::LatencyAbove {
                    histogram: "sip_server_handle_us".into(),
                    max_us: 65_536,
                },
                budget: 0.01,
                long_window_us: 300_000_000,
                short_window_us: 30_000_000,
                burn_threshold: 10.0,
            },
            SloSpec {
                name: "rejections".into(),
                kind: SloKind::Ratio {
                    bad: "sip_server_rejections_total".into(),
                    total: "sip_server_frames_total".into(),
                },
                budget: 0.001,
                long_window_us: 300_000_000,
                short_window_us: 30_000_000,
                burn_threshold: 10.0,
            },
        ]
    }
}

/// One cumulative observation: totals as of `t_us`.
#[derive(Copy, Clone, Debug)]
struct CumSample {
    t_us: u64,
    bad: f64,
    total: f64,
}

/// Burn rates over the two windows, plus firing state.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct SloStatus {
    /// Burn over the long window (NaN-free; 0 when the window is empty).
    pub burn_long: f64,
    /// Burn over the short window.
    pub burn_short: f64,
    /// Whether the alert is currently firing.
    pub firing: bool,
}

/// Sliding-window burn tracker for one [`SloSpec`].
#[derive(Clone, Debug)]
pub struct SloTracker {
    /// The objective being tracked.
    pub spec: SloSpec,
    samples: Vec<CumSample>,
    firing: bool,
}

impl SloTracker {
    /// A tracker with no history.
    pub fn new(spec: SloSpec) -> Self {
        SloTracker {
            spec,
            samples: Vec::new(),
            firing: false,
        }
    }

    /// Records this round's **cumulative** `(bad, total)` and returns the
    /// updated status, emitting events and gauges on transitions.
    ///
    /// Cumulative counters from scraped processes can move backwards when
    /// a replica restarts; the differencing clamps at zero, so a restart
    /// reads as "no bad events in the gap", never as a negative burn.
    pub fn observe(&mut self, now_us: u64, bad: f64, total: f64) -> SloStatus {
        let bad = if bad.is_finite() { bad } else { 0.0 };
        let total = if total.is_finite() { total } else { 0.0 };
        self.samples.push(CumSample {
            t_us: now_us,
            bad,
            total,
        });
        // Keep one sample older than the long window as the subtrahend.
        let horizon = now_us.saturating_sub(self.spec.long_window_us);
        while self.samples.len() > 1 && self.samples[1].t_us <= horizon {
            self.samples.remove(0);
        }
        let burn_long = self.burn(now_us, self.spec.long_window_us);
        let burn_short = self.burn(now_us, self.spec.short_window_us);
        let was_firing = self.firing;
        self.firing =
            burn_long >= self.spec.burn_threshold && burn_short >= self.spec.burn_threshold;
        let status = SloStatus {
            burn_long,
            burn_short,
            firing: self.firing,
        };
        self.publish(was_firing, status);
        status
    }

    /// Bad-fraction over the trailing `window_us`, divided by budget.
    fn burn(&self, now_us: u64, window_us: u64) -> f64 {
        let newest = match self.samples.last() {
            Some(s) => *s,
            None => return 0.0,
        };
        let horizon = now_us.saturating_sub(window_us);
        // Oldest sample still inside the window's reach: the last one at
        // or before the horizon if any, else the first we have.
        let oldest = self
            .samples
            .iter()
            .rev()
            .find(|s| s.t_us <= horizon)
            .copied()
            .unwrap_or(self.samples[0]);
        let d_total = (newest.total - oldest.total).max(0.0);
        let d_bad = (newest.bad - oldest.bad).max(0.0).min(d_total);
        if d_total <= 0.0 || self.spec.budget <= 0.0 {
            return 0.0;
        }
        (d_bad / d_total) / self.spec.budget
    }

    /// Current status without recording anything new.
    pub fn status(&self, now_us: u64) -> SloStatus {
        SloStatus {
            burn_long: self.burn(now_us, self.spec.long_window_us),
            burn_short: self.burn(now_us, self.spec.short_window_us),
            firing: self.firing,
        }
    }

    /// Pushes gauges every round and events on fire/resolve transitions.
    fn publish(&self, was_firing: bool, status: SloStatus) {
        let labels: &[(&str, &str)] = &[("slo", &self.spec.name)];
        gauge_with("sip_fleet_slo_firing", labels).set(status.firing as i64);
        // Milli-burns: integer gauges, so scale; 2500 = 2.5× budget.
        gauge_with("sip_fleet_slo_burn", labels).set((status.burn_short.min(1e15) * 1000.0) as i64);
        if status.firing && !was_firing {
            // A short-window burn at 2× the alerting threshold means the
            // budget is vanishing fast: escalate to Error.
            let level = if status.burn_short >= 2.0 * self.spec.burn_threshold {
                Level::Error
            } else {
                Level::Warn
            };
            event!(
                level,
                "sip.fleetobs.slo",
                "slo burn alert firing",
                "slo" => self.spec.name,
                "burn_long" => format!("{:.1}", status.burn_long),
                "burn_short" => format!("{:.1}", status.burn_short),
                "threshold" => self.spec.burn_threshold,
            );
        } else if !status.firing && was_firing {
            event!(
                Level::Info,
                "sip.fleetobs.slo",
                "slo burn alert resolved",
                "slo" => self.spec.name,
                "burn_long" => format!("{:.1}", status.burn_long),
                "burn_short" => format!("{:.1}", status.burn_short),
            );
        }
    }
}

/// Counts `(bad, total)` replica-rounds for the availability SLO.
pub fn availability_sample(states: impl IntoIterator<Item = ReplicaState>) -> (f64, f64) {
    let mut bad = 0.0;
    let mut total = 0.0;
    for s in states {
        total += 1.0;
        if !s.serving() {
            bad += 1.0;
        }
    }
    (bad, total)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(budget: f64, threshold: f64) -> SloSpec {
        SloSpec {
            name: "t".into(),
            kind: SloKind::Availability,
            budget,
            long_window_us: 60_000_000,
            short_window_us: 10_000_000,
            burn_threshold: threshold,
        }
    }

    #[test]
    fn steady_errors_fire_and_recovery_resolves() {
        let mut t = SloTracker::new(spec(0.001, 10.0));
        // 1 bad in 4 per second: bad-fraction 0.25, burn 250×.
        let mut bad = 0.0;
        let mut total = 0.0;
        let mut fired_at = None;
        for sec in 0..20u64 {
            bad += 1.0;
            total += 4.0;
            let s = t.observe(sec * 1_000_000, bad, total);
            if s.firing && fired_at.is_none() {
                fired_at = Some(sec);
            }
        }
        // One cumulative point has no window to difference; the second
        // sample already sees 250× in both windows and fires.
        assert_eq!(fired_at, Some(1));
        // Now a clean stretch long enough to drain the short window.
        let mut last = t.status(20_000_000);
        assert!(last.firing);
        for sec in 20..40u64 {
            total += 4.0; // no new bad
            last = t.observe(sec * 1_000_000, bad, total);
        }
        assert!(!last.firing, "short window should have drained: {last:?}");
    }

    #[test]
    fn burn_below_threshold_never_fires() {
        let mut t = SloTracker::new(spec(0.1, 10.0));
        // bad fraction 0.25, budget 0.1 → burn 2.5 < 10.
        let mut st = SloStatus {
            burn_long: 0.0,
            burn_short: 0.0,
            firing: true,
        };
        for sec in 0..30u64 {
            st = t.observe(sec * 1_000_000, (sec + 1) as f64, 4.0 * (sec + 1) as f64);
        }
        assert!(!st.firing);
        assert!((st.burn_short - 2.5).abs() < 0.2, "{st:?}");
    }

    #[test]
    fn counter_reset_reads_as_zero_not_negative() {
        let mut t = SloTracker::new(spec(0.001, 10.0));
        t.observe(0, 50.0, 1000.0);
        // Replica restarted: cumulative counters fell.
        let s = t.observe(1_000_000, 0.0, 10.0);
        assert!(s.burn_long >= 0.0 && s.burn_short >= 0.0, "{s:?}");
        assert!(!s.burn_long.is_nan());
    }

    #[test]
    fn hostile_inputs_cannot_poison_the_tracker() {
        let mut t = SloTracker::new(spec(0.001, 10.0));
        for (bad, total) in [
            (f64::NAN, 10.0),
            (5.0, f64::INFINITY),
            (f64::NEG_INFINITY, f64::NAN),
            (-7.0, -3.0),
            (1e300, 1e300),
        ] {
            let s = t.observe(1_000, bad, total);
            assert!(!s.burn_long.is_nan() && !s.burn_short.is_nan(), "{s:?}");
            assert!(s.burn_long.is_finite() && s.burn_short.is_finite());
        }
        // Zero budget: defined (0), not a division blow-up.
        let mut z = SloTracker::new(spec(0.0, 10.0));
        let s = z.observe(0, 1.0, 2.0);
        assert_eq!(s.burn_long, 0.0);
    }

    #[test]
    fn window_pruning_keeps_one_subtrahend() {
        let mut t = SloTracker::new(spec(0.001, 10.0));
        for sec in 0..500u64 {
            t.observe(sec * 1_000_000, 0.0, sec as f64);
        }
        // 60 s window at 1 sample/s: ~61 retained, not 500.
        assert!(t.samples.len() <= 63, "{}", t.samples.len());
        // Burn still computable over the full long window.
        let s = t.status(499_000_000);
        assert_eq!(s.burn_long, 0.0);
    }

    #[test]
    fn availability_counts_non_serving() {
        use ReplicaState::*;
        let (bad, total) = availability_sample([Up, Degraded, Stale, Down]);
        assert_eq!((bad, total), (2.0, 4.0));
    }
}

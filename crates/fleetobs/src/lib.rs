//! `sip-fleetobs`: fleet-wide observability for the prover fleet — a
//! scraper that polls every prover's ops port, a health model over the
//! replica plan, SLO burn-rate alerting, and the `sip-top` dashboard.
//!
//! PR 6 gave each prover a per-process ops surface (`sip-obs`); PR 9
//! replicated the fleet. This crate closes the loop at the fleet level,
//! and the paper's trust model shapes every piece of it: **provers are
//! untrusted**, so their telemetry is untrusted too. The scraper treats
//! each target as potentially dead, stalled, or hostile — every fetch is
//! bounded in bytes and time, every parse failure is a *typed* staleness
//! fed to the health model, and nothing a scraped process says can panic
//! the aggregator or poison another replica's series. (Telemetry informs
//! operations; *correctness* still rests solely on the verifier's
//! algebraic checks — a lying `/metrics` can at worst waste an
//! operator's attention.)
//!
//! The pipeline, module by module:
//!
//! * [`scrape`] — bounded HTTP fetch + strict Prometheus text parser,
//!   with [`ScrapeError`] classifying every failure (unreachable /
//!   stalled / garbage) and mapping onto [`sip_core`]'s `Rejection` so
//!   the fleet's [`RetryPolicy`](sip_core::channel::RetryPolicy) drives
//!   redials with the same transient-only discipline as the verifier.
//! * [`json`] — a bounded JSON reader for `/stats` bodies.
//! * [`health`] — the per-replica Up/Degraded/Stale/Down state machine
//!   and per-shard quorum states, all driven by injected time.
//! * [`slo`] — declarative objectives reduced to bad-fractions over
//!   sliding windows, with multi-window burn-rate alerting.
//! * [`fleet`] — [`FleetScraper`]: the jittered scrape loop, series
//!   merging keyed `{shard, replica, prover}`, and the fleet rollup.
//! * [`ops`] — [`serve_fleet_ops`]: `/fleet/metrics`, `/fleet/health`,
//!   `/fleet/slo` mounted over the standard `sip-obs` listener.
//! * [`render`] — the [`DashModel`] both `sip-top` modes render.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fleet;
pub mod health;
pub mod json;
pub mod ops;
pub mod render;
pub mod scrape;
pub mod slo;

pub use fleet::{
    scrape_target, FleetConfig, FleetLoopHandle, FleetScraper, FleetState, Rollup, ScrapeResult,
    Target, TargetStatus,
};
pub use health::{HealthPolicy, ReplicaHealth, ReplicaState, ScrapeOutcome, ShardState};
pub use json::Json;
pub use ops::serve_fleet_ops;
pub use render::{DashModel, DashRollup, DashRow, DashShard, DashSlo};
pub use scrape::{
    http_get, parse_prometheus, FaultClass, Sample, ScrapeError, MAX_SCRAPE_BODY_BYTES,
};
pub use slo::{SloKind, SloSpec, SloStatus, SloTracker};

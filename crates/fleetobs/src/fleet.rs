//! The fleet aggregator: scrape every prover's ops port, merge the
//! per-prover series into fleet series keyed `{shard, replica, prover}`,
//! drive the health state machine, and feed the SLO trackers.
//!
//! Scrapes run under the same [`RetryPolicy`] discipline as the fleet
//! verifier's dials (PR 9): dial and deadline faults redial with
//! decorrelated jitter, garbage does not. IO never happens under the
//! state lock — a stalled target can delay one round, never wedge the
//! ops surface reading the state.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use sip_core::channel::RetryPolicy;
use sip_obs::metrics::json_escape;
use sip_obs::{counter_with, event, gauge, gauge_with, histogram, quantile_from_buckets, Level};

use crate::health::{HealthPolicy, ReplicaHealth, ReplicaState, ScrapeOutcome, ShardState};
use crate::json::Json;
use crate::scrape::{
    histogram_buckets, http_get, parse_prometheus, sum_by_name, Sample, ScrapeError,
};
use crate::slo::{availability_sample, SloKind, SloSpec, SloTracker};

/// One scrape target: a replica slot plus the address of its ops port.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Target {
    /// Shard index the prover serves.
    pub shard: u32,
    /// Replica index within the shard.
    pub replica: u32,
    /// `host:port` of the prover's ops listener.
    pub addr: String,
}

impl Target {
    /// Parses the CLI form `SHARD/REPLICA@HOST:PORT` (e.g. `1/0@10.0.0.7:9100`).
    pub fn parse(spec: &str) -> Result<Target, String> {
        let err = || format!("bad target {spec:?}: want SHARD/REPLICA@HOST:PORT");
        let (slot, addr) = spec.split_once('@').ok_or_else(err)?;
        let (shard, replica) = slot.split_once('/').ok_or_else(err)?;
        if addr.is_empty() {
            return Err(err());
        }
        Ok(Target {
            shard: shard.trim().parse().map_err(|_| err())?,
            replica: replica.trim().parse().map_err(|_| err())?,
            addr: addr.to_string(),
        })
    }

    /// Parses a comma- or whitespace-separated list of target specs.
    pub fn parse_list(list: &str) -> Result<Vec<Target>, String> {
        let targets: Vec<Target> = list
            .split(|c: char| c == ',' || c.is_whitespace())
            .filter(|s| !s.is_empty())
            .map(Target::parse)
            .collect::<Result<_, _>>()?;
        if targets.is_empty() {
            return Err("no targets given".into());
        }
        Ok(targets)
    }
}

/// Aggregator configuration.
#[derive(Clone, Debug)]
pub struct FleetConfig {
    /// Nominal scrape interval (jittered ±10 % per round).
    pub interval: Duration,
    /// Health state-machine thresholds.
    pub policy: HealthPolicy,
    /// Redial policy per target per round; the per-attempt deadline is
    /// also the connect/read timeout of each HTTP fetch.
    pub retry: RetryPolicy,
    /// Declared objectives.
    pub slos: Vec<SloSpec>,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            interval: Duration::from_secs(1),
            policy: HealthPolicy::default(),
            // Two quick attempts per round: a refused dial fails fast and
            // the round budget stays well under the interval even when
            // half the fleet is stalled.
            retry: RetryPolicy {
                attempts: 2,
                base: Duration::from_millis(25),
                cap: Duration::from_millis(250),
                op_deadline: Duration::from_millis(500),
                seed: 0xf1ee7,
            },
            slos: SloSpec::defaults(),
        }
    }
}

/// What one round produced for one target.
#[derive(Clone, Debug)]
pub struct ScrapeResult {
    /// The health-model outcome.
    pub outcome: ScrapeOutcome,
    /// Parsed `/metrics` samples, when the exposition parsed.
    pub samples: Option<Vec<Sample>>,
    /// Parsed `/stats` JSON, when it round-tripped.
    pub stats: Option<Json>,
}

/// Fetches and parses one target's ops surface: `/metrics` under the
/// retry policy (its result decides the outcome), then `/stats`
/// best-effort (its failure only demotes Full to Partial).
pub fn scrape_target(addr: &str, retry: &RetryPolicy) -> ScrapeResult {
    let timeout = retry.op_deadline;
    // RetryPolicy speaks Rejection; carry the typed ScrapeError out of
    // the attempt loop by side channel so the health model keeps the
    // richer classification.
    let mut last_err: Option<ScrapeError> = None;
    let fetched = retry.run(|_attempt| {
        http_get(addr, "/metrics", timeout).map_err(|e| {
            let rejection = e.rejection();
            last_err = Some(e);
            rejection
        })
    });
    let text = match fetched {
        Ok(t) => t,
        Err(_) => {
            let err = last_err.unwrap_or(ScrapeError::Stalled {
                detail: format!("{addr}: retry loop ended without an error"),
            });
            return ScrapeResult {
                outcome: ScrapeOutcome::Failed(err),
                samples: None,
                stats: None,
            };
        }
    };
    let samples = match parse_prometheus(&text) {
        Ok(s) => s,
        Err(e) => {
            return ScrapeResult {
                outcome: ScrapeOutcome::Failed(e),
                samples: None,
                stats: None,
            }
        }
    };
    // Metrics landed; /stats is enrichment. One attempt, no retries.
    let (stats, outcome) = match http_get(addr, "/stats", timeout) {
        Ok(body) => match Json::parse(&body) {
            Some(json) => (Some(json), ScrapeOutcome::Full),
            None => (
                None,
                ScrapeOutcome::Partial(ScrapeError::Garbage {
                    detail: format!("{addr}: /stats is not JSON"),
                }),
            ),
        },
        Err(e) => (None, ScrapeOutcome::Partial(e)),
    };
    ScrapeResult {
        outcome,
        samples: Some(samples),
        stats,
    }
}

/// Rolling per-target state.
#[derive(Clone, Debug)]
pub struct TargetStatus {
    /// The slot and address being scraped.
    pub target: Target,
    /// Health state machine.
    pub health: ReplicaHealth,
    /// Last parsed `/metrics` samples (kept through failures until the
    /// data goes Stale — a Degraded replica still shows its last truth).
    pub samples: Vec<Sample>,
    /// Frames per second, from the `sip_server_frames_total` delta
    /// between the last two successful scrapes.
    pub qps: f64,
    prev_frames: Option<(u64, f64)>,
}

impl TargetStatus {
    fn new(target: Target) -> Self {
        TargetStatus {
            target,
            health: ReplicaHealth::default(),
            samples: Vec::new(),
            qps: 0.0,
            prev_frames: None,
        }
    }

    /// `(p50, p99)` of this replica's per-frame handling latency, from
    /// its scraped `sip_server_handle_us` buckets.
    pub fn latency_quantiles(&self) -> Option<(f64, f64)> {
        let (buckets, _, _) = histogram_buckets(&self.samples, "sip_server_handle_us")?;
        Some((
            quantile_from_buckets(&buckets, 0.50),
            quantile_from_buckets(&buckets, 0.99),
        ))
    }

    /// Total wire frames this replica has served, per its last scrape.
    pub fn frames(&self) -> f64 {
        sum_by_name(&self.samples, "sip_server_frames_total")
    }
}

/// Fleet-wide counter rollup: protocol outcomes summed across every
/// target's last scrape (provers carry the `sip_server_*` series; a
/// scraped verifier contributes the `sip_cluster_*` fault-attribution
/// counters from PR 8/9).
#[derive(Copy, Clone, Debug, Default, PartialEq)]
pub struct Rollup {
    /// Σ `sip_server_frames_total`.
    pub frames: f64,
    /// Σ `sip_server_rejections_total`.
    pub rejections: f64,
    /// Σ `sip_cluster_indictments_total`.
    pub indictments: f64,
    /// Σ `sip_cluster_blame_total`.
    pub blame: f64,
    /// Σ `sip_cluster_retries_total`.
    pub retries: f64,
    /// Σ `sip_cluster_failovers_total`.
    pub failovers: f64,
}

/// The aggregator's full mutable state: targets, health, SLO trackers.
#[derive(Debug)]
pub struct FleetState {
    /// The configuration the state was built with.
    pub config: FleetConfig,
    targets: Vec<TargetStatus>,
    trackers: Vec<SloTracker>,
    rounds: u64,
    // Cumulative availability replica-rounds, fed to the availability SLO.
    avail_bad: f64,
    avail_total: f64,
}

impl FleetState {
    /// A fresh state for `targets` (all replicas start Stale: unobserved).
    pub fn new(config: FleetConfig, targets: Vec<Target>) -> Self {
        let trackers = config.slos.iter().cloned().map(SloTracker::new).collect();
        FleetState {
            config,
            targets: targets.into_iter().map(TargetStatus::new).collect(),
            trackers,
            rounds: 0,
            avail_bad: 0.0,
            avail_total: 0.0,
        }
    }

    /// Per-target rolling state, in construction order.
    pub fn targets(&self) -> &[TargetStatus] {
        &self.targets
    }

    /// Completed scrape rounds.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Folds one target's scrape result into its health and series.
    /// `elapsed_us` is the wall-clock of the scrape itself.
    pub fn ingest(&mut self, index: usize, result: ScrapeResult, elapsed_us: u64, now_us: u64) {
        let policy = self.config.policy;
        let Some(t) = self.targets.get_mut(index) else {
            return;
        };
        let before = t.health.state();
        let after = t.health.on_scrape(&result.outcome, now_us, &policy);
        let outcome_label = match &result.outcome {
            ScrapeOutcome::Full => "full",
            ScrapeOutcome::Partial(_) => "partial",
            ScrapeOutcome::Failed(e) => e.label(),
        };
        counter_with("sip_fleet_scrapes_total", &[("outcome", outcome_label)]).inc();
        histogram("sip_fleet_scrape_us").observe(elapsed_us);
        if let Some(mut samples) = result.samples {
            // ±Inf/NaN sample values are Prometheus-legal but poison here:
            // they would ride into qps, saturate the rollup casts, and
            // render as bare `inf` tokens in both JSON documents and the
            // merged exposition. Finite-only past this point.
            samples.retain(|s| s.value.is_finite());
            let frames = sum_by_name(&samples, "sip_server_frames_total");
            if let Some((prev_us, prev_frames)) = t.prev_frames {
                let dt = now_us.saturating_sub(prev_us) as f64 / 1e6;
                if dt > 0.0 {
                    let qps = ((frames - prev_frames) / dt).max(0.0);
                    t.qps = if qps.is_finite() { qps } else { 0.0 };
                }
            }
            t.prev_frames = Some((now_us, frames));
            t.samples = samples;
        } else if after == ReplicaState::Stale || after == ReplicaState::Down {
            // The cached series no longer describes the present.
            t.samples.clear();
            t.qps = 0.0;
            t.prev_frames = None;
        }
        if before != after {
            let level = match after {
                ReplicaState::Up => Level::Info,
                ReplicaState::Degraded | ReplicaState::Stale => Level::Warn,
                ReplicaState::Down => Level::Error,
            };
            event!(
                level,
                "sip.fleetobs.health",
                "replica state changed",
                "shard" => t.target.shard,
                "replica" => t.target.replica,
                "prover" => t.target.addr,
                "from" => before.label(),
                "to" => after.label(),
                "error" => t.health.last_error().map(|e| e.to_string()).unwrap_or_default(),
            );
        }
    }

    /// Closes one round: publishes the fleet gauges and feeds the SLO
    /// trackers from the merged series.
    pub fn finish_round(&mut self, now_us: u64) {
        self.rounds += 1;
        gauge("sip_fleet_targets").set(self.targets.len() as i64);
        let up = self
            .targets
            .iter()
            .filter(|t| t.health.state() == ReplicaState::Up)
            .count();
        gauge("sip_fleet_up_replicas").set(up as i64);
        for t in &self.targets {
            let shard = t.target.shard.to_string();
            let replica = t.target.replica.to_string();
            let labels: &[(&str, &str)] = &[
                ("shard", &shard),
                ("replica", &replica),
                ("prover", &t.target.addr),
            ];
            gauge_with("sip_fleet_replica_health", labels).set(t.health.state().gauge());
            gauge_with("sip_fleet_replica_staleness_us", labels).set(
                t.health
                    .staleness_us(now_us)
                    .map_or(i64::MAX, |v| v.min(i64::MAX as u64) as i64),
            );
        }
        for (shard, state) in self.shard_states() {
            let shard = shard.to_string();
            gauge_with("sip_fleet_shard_health", &[("shard", &shard)]).set(state.gauge());
        }
        // Availability accumulates replica-rounds; the other SLO kinds
        // read cumulative counters straight off the merged series.
        let (bad, total) = availability_sample(self.targets.iter().map(|t| t.health.state()));
        self.avail_bad += bad;
        self.avail_total += total;
        let inputs: Vec<(f64, f64)> = self
            .trackers
            .iter()
            .map(|tracker| match &tracker.spec.kind {
                SloKind::Availability => (self.avail_bad, self.avail_total),
                SloKind::Ratio { bad, total } => {
                    (self.sum_across_targets(bad), self.sum_across_targets(total))
                }
                SloKind::LatencyAbove { histogram, max_us } => {
                    let mut bad = 0u64;
                    let mut total = 0u64;
                    for t in &self.targets {
                        if let Some((buckets, count, _)) = histogram_buckets(&t.samples, histogram)
                        {
                            total += count;
                            for (i, &n) in buckets.iter().enumerate() {
                                let lower = if i == 0 { 0u64 } else { 1u64 << (i - 1) };
                                if lower >= *max_us {
                                    bad += n;
                                }
                            }
                        }
                    }
                    (bad as f64, total as f64)
                }
            })
            .collect();
        for (tracker, (bad, total)) in self.trackers.iter_mut().zip(inputs) {
            tracker.observe(now_us, bad, total);
        }
    }

    fn sum_across_targets(&self, name: &str) -> f64 {
        self.targets
            .iter()
            .map(|t| sum_by_name(&t.samples, name))
            .sum()
    }

    /// Shard indices (ascending) with their quorum states.
    pub fn shard_states(&self) -> Vec<(u32, ShardState)> {
        let mut shards: Vec<u32> = self.targets.iter().map(|t| t.target.shard).collect();
        shards.sort_unstable();
        shards.dedup();
        shards
            .into_iter()
            .map(|s| {
                (
                    s,
                    ShardState::from_replicas(
                        self.targets
                            .iter()
                            .filter(|t| t.target.shard == s)
                            .map(|t| t.health.state()),
                    ),
                )
            })
            .collect()
    }

    /// The fleet-wide counter rollup.
    pub fn rollup(&self) -> Rollup {
        Rollup {
            frames: self.sum_across_targets("sip_server_frames_total"),
            rejections: self.sum_across_targets("sip_server_rejections_total"),
            indictments: self.sum_across_targets("sip_cluster_indictments_total"),
            blame: self.sum_across_targets("sip_cluster_blame_total"),
            retries: self.sum_across_targets("sip_cluster_retries_total"),
            failovers: self.sum_across_targets("sip_cluster_failovers_total"),
        }
    }

    /// `/fleet/metrics`: the aggregator's own registry (which carries the
    /// `sip_fleet_*` series) followed by every target's last scraped
    /// samples re-labelled with `{shard, replica, prover}` — the merged
    /// fleet exposition a single Prometheus scrape can collect.
    pub fn render_fleet_metrics(&self) -> String {
        let mut out = sip_obs::registry().render_prometheus();
        out.push_str("# Merged per-prover series (last scrape, relabelled by slot):\n");
        for t in &self.targets {
            if t.samples.is_empty() {
                continue;
            }
            for s in &t.samples {
                out.push_str(&s.name);
                out.push('{');
                out.push_str(&format!(
                    "shard=\"{}\",replica=\"{}\",prover=\"{}\"",
                    t.target.shard, t.target.replica, t.target.addr
                ));
                for (k, v) in &s.labels {
                    // The slot labels win a collision: the re-labelled
                    // series must stay keyed by slot.
                    if k != "shard" && k != "replica" && k != "prover" {
                        out.push_str(&format!(
                            ",{k}=\"{}\"",
                            v.replace('\\', "\\\\").replace('"', "\\\"")
                        ));
                    }
                }
                out.push_str(&format!("}} {}\n", prom_value(s.value)));
            }
        }
        out
    }

    /// `/fleet/health`: the whole model as one JSON document — shards,
    /// replicas, rollup, SLO status. This is also exactly what `sip-top`
    /// renders, in both its modes.
    pub fn health_json(&self, now_us: u64) -> String {
        let mut out = String::with_capacity(2048);
        out.push_str(&format!(
            "{{\n  \"rounds\": {},\n  \"interval_ms\": {},\n  \"shards\": [",
            self.rounds,
            self.config.interval.as_millis()
        ));
        let shard_states = self.shard_states();
        for (i, (shard, state)) in shard_states.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"shard\": {shard}, \"state\": \"{}\", \"replicas\": [",
                state.label()
            ));
            let mut first = true;
            for t in self.targets.iter().filter(|t| t.target.shard == *shard) {
                if !first {
                    out.push(',');
                }
                first = false;
                let (p50, p99) = t.latency_quantiles().unwrap_or((0.0, 0.0));
                let staleness = t
                    .health
                    .staleness_us(now_us)
                    .map(|v| v.to_string())
                    .unwrap_or_else(|| "null".into());
                let last_error = match t.health.last_error() {
                    Some(e) => format!("\"{}\"", json_escape(&e.to_string())),
                    None => "null".into(),
                };
                out.push_str(&format!(
                    "\n      {{\"replica\": {}, \"prover\": \"{}\", \"state\": \"{}\", \
                     \"staleness_us\": {staleness}, \"qps\": {:.1}, \"p50_us\": {:.1}, \
                     \"p99_us\": {:.1}, \"frames\": {}, \"last_error\": {last_error}}}",
                    t.target.replica,
                    json_escape(&t.target.addr),
                    t.health.state().label(),
                    finite(t.qps),
                    finite(p50),
                    finite(p99),
                    finite(t.frames()) as u64,
                ));
            }
            out.push_str("\n    ]}");
        }
        let r = self.rollup();
        out.push_str(&format!(
            "\n  ],\n  \"rollup\": {{\"frames\": {}, \"rejections\": {}, \"indictments\": {}, \
             \"blame\": {}, \"retries\": {}, \"failovers\": {}}},\n  \"slos\": [",
            finite(r.frames) as u64,
            finite(r.rejections) as u64,
            finite(r.indictments) as u64,
            finite(r.blame) as u64,
            finite(r.retries) as u64,
            finite(r.failovers) as u64,
        ));
        for (i, tr) in self.trackers.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let s = tr.status(now_us);
            out.push_str(&format!(
                "\n    {{\"name\": \"{}\", \"firing\": {}, \"burn_long\": {:.2}, \
                 \"burn_short\": {:.2}, \"threshold\": {:.1}, \"budget\": {}}}",
                json_escape(&tr.spec.name),
                s.firing,
                finite(s.burn_long).min(1e12),
                finite(s.burn_short).min(1e12),
                tr.spec.burn_threshold,
                tr.spec.budget,
            ));
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// `/fleet/slo`: just the SLO block.
    pub fn slo_json(&self, now_us: u64) -> String {
        let mut out = String::from("{\n  \"slos\": [");
        for (i, tr) in self.trackers.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let s = tr.status(now_us);
            out.push_str(&format!(
                "\n    {{\"name\": \"{}\", \"firing\": {}, \"burn_long\": {:.2}, \
                 \"burn_short\": {:.2}, \"threshold\": {:.1}, \"budget\": {}}}",
                json_escape(&tr.spec.name),
                s.firing,
                finite(s.burn_long).min(1e12),
                finite(s.burn_short).min(1e12),
                tr.spec.burn_threshold,
                tr.spec.budget,
            ));
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

/// A sample value in Prometheus exposition form: `{}` Display would print
/// `inf`, which neither Prometheus nor our own strict parser accepts.
/// Stored samples are finite (non-finite values are dropped at ingest),
/// so the non-finite arms are defence in depth.
fn prom_value(v: f64) -> String {
    if v == f64::INFINITY {
        "+Inf".into()
    } else if v == f64::NEG_INFINITY {
        "-Inf".into()
    } else if v.is_nan() {
        "NaN".into()
    } else {
        format!("{v}")
    }
}

/// Clamps to a finite value for JSON embedding: `{:.1}` renders ±Inf/NaN
/// as bare `inf`/`NaN` tokens, which are not JSON, and one such token
/// breaks every consumer of the whole document.
fn finite(v: f64) -> f64 {
    if v.is_finite() {
        v
    } else {
        0.0
    }
}

/// A handle on the scrape loop thread; stop it with
/// [`FleetLoopHandle::shutdown`].
pub struct FleetLoopHandle {
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl FleetLoopHandle {
    /// Signals the loop and joins it.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// The live scraper: shared state plus a monotonic epoch, cloneable into
/// the loop thread and the ops routes.
#[derive(Clone)]
pub struct FleetScraper {
    state: Arc<Mutex<FleetState>>,
    epoch: Instant,
}

impl FleetScraper {
    /// Builds the scraper (nothing is polled until [`Self::scrape_once`]
    /// or [`Self::start`]).
    pub fn new(config: FleetConfig, targets: Vec<Target>) -> Self {
        FleetScraper {
            state: Arc::new(Mutex::new(FleetState::new(config, targets))),
            epoch: Instant::now(),
        }
    }

    /// Microseconds since this scraper was built — the `now_us` injected
    /// into the health model and SLO windows.
    pub fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Locks the state (poison-safe: a panicked writer cannot wedge the
    /// ops surface, the lock recovers to the last consistent view).
    pub fn state(&self) -> MutexGuard<'_, FleetState> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// One full round: scrape every target concurrently (no lock held
    /// during IO), then fold the results in and close the round.
    pub fn scrape_once(&self) {
        let (targets, retry): (Vec<(usize, String)>, RetryPolicy) = {
            let state = self.state();
            (
                state
                    .targets
                    .iter()
                    .enumerate()
                    .map(|(i, t)| (i, t.target.addr.clone()))
                    .collect(),
                state.config.retry,
            )
        };
        // One thread per target per round: the round's wall-clock is the
        // slowest target, not the sum — a stalled replica cannot starve
        // the others' freshness. Fleet sizes are tens, not thousands.
        let results: Vec<(usize, ScrapeResult, u64)> = std::thread::scope(|scope| {
            let handles: Vec<_> = targets
                .iter()
                .map(|(i, addr)| {
                    let retry = retry.with_seed(retry.seed ^ (*i as u64).wrapping_mul(0x9E37));
                    let start = Instant::now();
                    scope.spawn(move || {
                        let result = scrape_target(addr, &retry);
                        (*i, result, start.elapsed().as_micros() as u64)
                    })
                })
                .collect();
            handles
                .into_iter()
                .zip(&targets)
                .map(|(h, (i, _))| {
                    // A panicked scrape thread must not vanish: without an
                    // outcome the slot's health would freeze at its last
                    // state. Treat the panic as garbage-class so the state
                    // machine degrades and the round still counts it.
                    h.join().unwrap_or_else(|_| {
                        (
                            *i,
                            ScrapeResult {
                                outcome: ScrapeOutcome::Failed(ScrapeError::Garbage {
                                    detail: "scrape thread panicked".into(),
                                }),
                                samples: None,
                                stats: None,
                            },
                            0,
                        )
                    })
                })
                .collect()
        });
        let now = self.now_us();
        let mut state = self.state();
        for (i, result, elapsed_us) in results {
            state.ingest(i, result, elapsed_us, now);
        }
        state.finish_round(now);
    }

    /// Spawns the scrape loop: one round per interval, jittered ±10 % so
    /// a fleet of aggregators does not scrape in lockstep.
    pub fn start(&self) -> FleetLoopHandle {
        let stop = Arc::new(AtomicBool::new(false));
        let loop_stop = Arc::clone(&stop);
        let scraper = self.clone();
        let thread = std::thread::Builder::new()
            .name("sip-fleet-scrape".into())
            .spawn(move || {
                let interval = scraper.state().config.interval;
                let mut jitter_state = 0x5ca1ab1eu64;
                while !loop_stop.load(Ordering::SeqCst) {
                    let round_start = Instant::now();
                    scraper.scrape_once();
                    // xorshift64*-jittered sleep in [0.9, 1.1]·interval,
                    // minus the time the round itself took.
                    let mut x = jitter_state;
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    jitter_state = x;
                    let base_us = interval.as_micros() as u64;
                    let draw = x.wrapping_mul(0x2545_F491_4F6C_DD1D) % (base_us / 5 + 1);
                    let delta = draw as i64 - (base_us / 10) as i64; // ± 10 %
                    let period = Duration::from_micros(base_us.saturating_add_signed(delta));
                    let sleep = period.saturating_sub(round_start.elapsed());
                    // Sleep in short slices so shutdown stays prompt.
                    let deadline = Instant::now() + sleep;
                    while Instant::now() < deadline && !loop_stop.load(Ordering::SeqCst) {
                        std::thread::sleep(
                            Duration::from_millis(20)
                                .min(deadline.saturating_duration_since(Instant::now())),
                        );
                    }
                }
            })
            .expect("spawn scrape loop");
        FleetLoopHandle {
            stop,
            thread: Some(thread),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::health::ScrapeOutcome;

    fn target(shard: u32, replica: u32) -> Target {
        Target {
            shard,
            replica,
            addr: format!("127.0.0.1:{}", 9000 + shard * 10 + replica),
        }
    }

    fn full_result(frames: f64) -> ScrapeResult {
        let text = format!(
            "sip_server_frames_total {frames}\n\
             sip_server_handle_us_bucket{{le=\"128\"}} 90\n\
             sip_server_handle_us_bucket{{le=\"+Inf\"}} 100\n\
             sip_server_handle_us_count 100\n\
             sip_server_handle_us_sum 20000\n"
        );
        ScrapeResult {
            outcome: ScrapeOutcome::Full,
            samples: Some(parse_prometheus(&text).unwrap()),
            stats: None,
        }
    }

    fn failed(err: ScrapeError) -> ScrapeResult {
        ScrapeResult {
            outcome: ScrapeOutcome::Failed(err),
            samples: None,
            stats: None,
        }
    }

    #[test]
    fn target_spec_parsing() {
        let t = Target::parse("1/0@10.0.0.7:9100").unwrap();
        assert_eq!(
            (t.shard, t.replica, t.addr.as_str()),
            (1, 0, "10.0.0.7:9100")
        );
        let list = Target::parse_list("0/0@a:1, 0/1@b:2 1/0@c:3").unwrap();
        assert_eq!(list.len(), 3);
        for bad in ["", "1@a:1", "1/0", "x/y@a:1", "1/0@"] {
            assert!(Target::parse(bad).is_err(), "{bad:?}");
        }
        assert!(Target::parse_list(" , ").is_err());
    }

    #[test]
    fn qps_comes_from_frame_deltas() {
        let mut state = FleetState::new(FleetConfig::default(), vec![target(0, 0)]);
        state.ingest(0, full_result(100.0), 500, 1_000_000);
        state.finish_round(1_000_000);
        assert_eq!(state.targets()[0].qps, 0.0); // one sample: no delta yet
        state.ingest(0, full_result(350.0), 500, 2_000_000);
        state.finish_round(2_000_000);
        let qps = state.targets()[0].qps;
        assert!((qps - 250.0).abs() < 1.0, "{qps}");
        // Counter reset (restart) clamps to zero, never negative.
        state.ingest(0, full_result(10.0), 500, 3_000_000);
        assert_eq!(state.targets()[0].qps, 0.0);
    }

    #[test]
    fn kill_flips_down_within_one_round_and_fires_availability() {
        let targets = vec![target(0, 0), target(0, 1), target(1, 0), target(1, 1)];
        let mut state = FleetState::new(FleetConfig::default(), targets);
        // Three healthy rounds.
        for round in 0..3u64 {
            let now = (round + 1) * 1_000_000;
            for i in 0..4 {
                state.ingest(i, full_result(100.0 * (round + 1) as f64), 400, now);
            }
            state.finish_round(now);
        }
        assert!(state
            .shard_states()
            .iter()
            .all(|(_, s)| *s == ShardState::Full));
        // Replica 0/1 dies: unreachable on the next round.
        let now = 4_000_000;
        state.ingest(0, full_result(500.0), 400, now);
        state.ingest(
            1,
            failed(ScrapeError::Unreachable {
                detail: "refused".into(),
            }),
            400,
            now,
        );
        state.ingest(2, full_result(500.0), 400, now);
        state.ingest(3, full_result(500.0), 400, now);
        state.finish_round(now);
        assert_eq!(state.targets()[1].health.state(), ReplicaState::Down);
        assert_eq!(state.shard_states()[0].1, ShardState::Degraded);
        assert_eq!(state.shard_states()[1].1, ShardState::Full);
        // The availability SLO fires on the very round that saw the death:
        // 1 bad in 16 replica-rounds ≫ 10× the 0.1 % budget.
        let health = state.health_json(now);
        assert!(
            health.contains("\"name\": \"availability\", \"firing\": true"),
            "{health}"
        );
    }

    #[test]
    fn health_json_is_parseable_and_complete() {
        let mut state = FleetState::new(
            FleetConfig::default(),
            vec![target(0, 0), target(0, 1), target(1, 0)],
        );
        state.ingest(0, full_result(100.0), 400, 1_000_000);
        state.ingest(
            1,
            failed(ScrapeError::Garbage {
                detail: "weird \"quotes\"".into(),
            }),
            400,
            1_000_000,
        );
        state.finish_round(1_000_000);
        let doc = Json::parse(&state.health_json(1_500_000)).expect("health_json parses");
        let shards = doc.get("shards").and_then(Json::as_arr).unwrap();
        assert_eq!(shards.len(), 2);
        let s0 = shards[0].get("replicas").and_then(Json::as_arr).unwrap();
        assert_eq!(s0.len(), 2);
        assert_eq!(s0[0].get("state").and_then(Json::as_str), Some("up"));
        // Replica 0/1 garbage before any full scrape: stale, error quoted.
        assert_eq!(s0[1].get("state").and_then(Json::as_str), Some("stale"));
        assert!(s0[1]
            .get("last_error")
            .and_then(Json::as_str)
            .unwrap()
            .contains("weird"));
        assert!(doc.path(&["rollup", "frames"]).is_some());
        assert!(!doc.get("slos").and_then(Json::as_arr).unwrap().is_empty());
        // slo_json is valid JSON too.
        assert!(Json::parse(&state.slo_json(1_500_000)).is_some());
    }

    #[test]
    fn non_finite_samples_cannot_poison_json_or_the_merged_exposition() {
        let mut state = FleetState::new(FleetConfig::default(), vec![target(0, 0)]);
        let hostile = "sip_server_frames_total +Inf\n\
                       evil_gauge NaN\n\
                       worse_gauge -Inf\n\
                       fine_total 3\n";
        let scrape = || ScrapeResult {
            outcome: ScrapeOutcome::Full,
            samples: Some(parse_prometheus(hostile).unwrap()),
            stats: None,
        };
        state.ingest(0, scrape(), 400, 1_000_000);
        state.finish_round(1_000_000);
        state.ingest(0, scrape(), 400, 2_000_000);
        state.finish_round(2_000_000);
        // The +Inf frame counter cannot drive qps to infinity…
        assert!(state.targets()[0].qps.is_finite());
        // …`/fleet/health` stays valid JSON…
        let health = state.health_json(2_500_000);
        assert!(Json::parse(&health).is_some(), "{health}");
        // …and the merged exposition stays parseable: the non-finite
        // samples are dropped, the finite one survives.
        let merged = state.render_fleet_metrics();
        assert!(parse_prometheus(&merged).is_ok(), "{merged}");
        assert!(merged.contains("fine_total"), "{merged}");
        assert!(!merged.contains("evil_gauge"), "{merged}");
    }

    #[test]
    fn prom_value_renders_exposition_form() {
        assert_eq!(prom_value(1.5), "1.5");
        assert_eq!(prom_value(f64::INFINITY), "+Inf");
        assert_eq!(prom_value(f64::NEG_INFINITY), "-Inf");
        assert_eq!(prom_value(f64::NAN), "NaN");
    }

    #[test]
    fn fleet_metrics_relabels_by_slot() {
        let mut state = FleetState::new(FleetConfig::default(), vec![target(2, 1)]);
        state.ingest(0, full_result(42.0), 400, 1_000_000);
        state.finish_round(1_000_000);
        let text = state.render_fleet_metrics();
        assert!(
            text.contains(
                "sip_server_frames_total{shard=\"2\",replica=\"1\",prover=\"127.0.0.1:9021\"} 42"
            ),
            "{text}"
        );
        // The aggregator's own fleet gauges are in the same document.
        assert!(text.contains("sip_fleet_targets 1"), "{text}");
        // And parseable by our own strict parser (modulo comments).
        assert!(parse_prometheus(&text).is_ok());
    }

    #[test]
    fn rollup_sums_cluster_counters_from_any_target() {
        let mut state = FleetState::new(FleetConfig::default(), vec![target(0, 0)]);
        let text = "sip_server_frames_total 7\n\
                    sip_server_rejections_total 1\n\
                    sip_cluster_blame_total{shard=\"0\"} 2\n\
                    sip_cluster_blame_total{shard=\"1\"} 3\n\
                    sip_cluster_indictments_total 1\n\
                    sip_cluster_retries_total{cause=\"timed_out\"} 4\n\
                    sip_cluster_failovers_total 5\n";
        state.ingest(
            0,
            ScrapeResult {
                outcome: ScrapeOutcome::Full,
                samples: Some(parse_prometheus(text).unwrap()),
                stats: None,
            },
            300,
            1_000_000,
        );
        state.finish_round(1_000_000);
        let r = state.rollup();
        assert_eq!(r.frames, 7.0);
        assert_eq!(r.rejections, 1.0);
        assert_eq!(r.blame, 5.0);
        assert_eq!(r.indictments, 1.0);
        assert_eq!(r.retries, 4.0);
        assert_eq!(r.failovers, 5.0);
    }
}

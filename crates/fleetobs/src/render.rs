//! The `sip-top` dashboard model and its plain-ANSI renderer.
//!
//! Both of `sip-top`'s modes feed the same [`DashModel`]: `--targets`
//! builds it from the in-process [`FleetState`](crate::FleetState) (via its own
//! `health_json`), `--fleet` builds it from a scraped `/fleet/health`
//! document. One model, one renderer — what the dashboard shows is
//! exactly what the HTTP surface serves, so the e2e tests assert on
//! either interchangeably.

use crate::json::Json;

/// One replica row.
#[derive(Clone, Debug, PartialEq)]
pub struct DashRow {
    /// Shard index.
    pub shard: u32,
    /// Replica index.
    pub replica: u32,
    /// Ops address.
    pub prover: String,
    /// Health label (`up`/`degraded`/`stale`/`down`).
    pub state: String,
    /// Microseconds since the last complete scrape, if ever.
    pub staleness_us: Option<u64>,
    /// Frames per second.
    pub qps: f64,
    /// Median per-frame handling latency (µs).
    pub p50_us: f64,
    /// Tail per-frame handling latency (µs).
    pub p99_us: f64,
    /// Total frames served.
    pub frames: u64,
    /// The error behind a non-up state.
    pub last_error: Option<String>,
}

/// One shard's quorum line.
#[derive(Clone, Debug, PartialEq)]
pub struct DashShard {
    /// Shard index.
    pub shard: u32,
    /// Quorum label (`full`/`degraded`/`unavailable`).
    pub state: String,
}

/// One SLO line.
#[derive(Clone, Debug, PartialEq)]
pub struct DashSlo {
    /// Objective name.
    pub name: String,
    /// Whether the burn alert is firing.
    pub firing: bool,
    /// Long-window burn.
    pub burn_long: f64,
    /// Short-window burn.
    pub burn_short: f64,
    /// The firing threshold.
    pub threshold: f64,
}

/// Fleet rollup counters for the footer.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DashRollup {
    /// Σ frames served.
    pub frames: u64,
    /// Σ soundness rejections.
    pub rejections: u64,
    /// Σ replica-divergence indictments.
    pub indictments: u64,
    /// Σ per-shard blame verdicts.
    pub blame: u64,
    /// Σ transient-fault redials.
    pub retries: u64,
    /// Σ replica failovers.
    pub failovers: u64,
}

/// Everything one frame of the dashboard needs.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DashModel {
    /// Replica rows, shard-major.
    pub rows: Vec<DashRow>,
    /// Shard quorum states, ascending.
    pub shards: Vec<DashShard>,
    /// Declared SLOs with live burn.
    pub slos: Vec<DashSlo>,
    /// Fleet counter rollup.
    pub rollup: DashRollup,
    /// Completed scrape rounds.
    pub rounds: u64,
    /// Scrape interval (ms), for the header.
    pub interval_ms: u64,
}

impl DashModel {
    /// Builds the model from a `/fleet/health` document. Missing or
    /// malformed members degrade to defaults — a dashboard pointed at a
    /// hostile aggregator shows blanks, it does not crash.
    pub fn from_health_json(doc: &Json) -> DashModel {
        let num = |v: Option<&Json>| v.and_then(Json::as_f64).unwrap_or(0.0);
        let mut model = DashModel {
            rounds: doc.get("rounds").and_then(Json::as_u64).unwrap_or(0),
            interval_ms: doc.get("interval_ms").and_then(Json::as_u64).unwrap_or(0),
            ..DashModel::default()
        };
        for shard in doc
            .get("shards")
            .and_then(Json::as_arr)
            .unwrap_or(&[])
            .iter()
        {
            let shard_idx = shard.get("shard").and_then(Json::as_u64).unwrap_or(0) as u32;
            model.shards.push(DashShard {
                shard: shard_idx,
                state: shard
                    .get("state")
                    .and_then(Json::as_str)
                    .unwrap_or("?")
                    .to_string(),
            });
            for r in shard
                .get("replicas")
                .and_then(Json::as_arr)
                .unwrap_or(&[])
                .iter()
            {
                model.rows.push(DashRow {
                    shard: shard_idx,
                    replica: r.get("replica").and_then(Json::as_u64).unwrap_or(0) as u32,
                    prover: r
                        .get("prover")
                        .and_then(Json::as_str)
                        .unwrap_or("?")
                        .to_string(),
                    state: r
                        .get("state")
                        .and_then(Json::as_str)
                        .unwrap_or("?")
                        .to_string(),
                    staleness_us: r.get("staleness_us").and_then(Json::as_u64),
                    qps: num(r.get("qps")),
                    p50_us: num(r.get("p50_us")),
                    p99_us: num(r.get("p99_us")),
                    frames: r.get("frames").and_then(Json::as_u64).unwrap_or(0),
                    last_error: r
                        .get("last_error")
                        .and_then(Json::as_str)
                        .map(str::to_string),
                });
            }
        }
        if let Some(r) = doc.get("rollup") {
            let field = |k: &str| r.get(k).and_then(Json::as_u64).unwrap_or(0);
            model.rollup = DashRollup {
                frames: field("frames"),
                rejections: field("rejections"),
                indictments: field("indictments"),
                blame: field("blame"),
                retries: field("retries"),
                failovers: field("failovers"),
            };
        }
        for s in doc.get("slos").and_then(Json::as_arr).unwrap_or(&[]).iter() {
            model.slos.push(DashSlo {
                name: s
                    .get("name")
                    .and_then(Json::as_str)
                    .unwrap_or("?")
                    .to_string(),
                firing: s.get("firing") == Some(&Json::Bool(true)),
                burn_long: num(s.get("burn_long")),
                burn_short: num(s.get("burn_short")),
                threshold: num(s.get("threshold")),
            });
        }
        model
    }

    /// Renders one frame. With `color`, health states get ANSI colors
    /// (green/yellow/red); without, the same text plain — the layout is
    /// identical either way, so tests assert on the no-color output.
    pub fn render(&self, color: bool) -> String {
        let paint = |text: &str, code: &str| {
            if color {
                format!("\x1b[{code}m{text}\x1b[0m")
            } else {
                text.to_string()
            }
        };
        let state_cell = |state: &str| {
            let code = match state {
                "up" | "full" => "32", // green
                "degraded" => "33",    // yellow
                _ => "31",             // red: stale/down/unavailable
            };
            paint(&format!("{state:<11}"), code)
        };
        let mut out = String::with_capacity(2048);
        out.push_str(&paint("sip-top — fleet health", "1"));
        out.push_str(&format!(
            "  (round {}, every {} ms)\n\n",
            self.rounds, self.interval_ms
        ));
        out.push_str(
            "  SHARD/REP  PROVER                 STATE        QPS      P50_US    P99_US    FRAMES     AGE\n",
        );
        for row in &self.rows {
            let age = match row.staleness_us {
                Some(us) if us < 1_000_000 => format!("{}ms", us / 1_000),
                Some(us) => format!("{:.1}s", us as f64 / 1e6),
                None => "never".into(),
            };
            out.push_str(&format!(
                "  {:<9}  {:<21}  {}  {:>7.1}  {:>8.0}  {:>8.0}  {:>8}  {:>6}\n",
                format!("{}/{}", row.shard, row.replica),
                truncate(&row.prover, 21),
                state_cell(&row.state),
                row.qps,
                row.p50_us,
                row.p99_us,
                row.frames,
                age,
            ));
            if let Some(err) = &row.last_error {
                out.push_str(&format!(
                    "             {}\n",
                    paint(&format!("└ {}", truncate(err, 80)), "2")
                ));
            }
        }
        out.push_str("\n  shards: ");
        for (i, s) in self.shards.iter().enumerate() {
            if i > 0 {
                out.push_str("   ");
            }
            out.push_str(&format!("#{} {}", s.shard, state_cell(&s.state)));
        }
        out.push('\n');
        if !self.slos.is_empty() {
            out.push_str("\n  SLO                    BURN(long/short)   STATUS\n");
            for slo in &self.slos {
                let status = if slo.firing {
                    paint("FIRING", "1;31")
                } else {
                    paint("ok", "32")
                };
                out.push_str(&format!(
                    "  {:<21}  {:>7.1} / {:<7.1}  {} (fires at {:.0}x)\n",
                    truncate(&slo.name, 21),
                    slo.burn_long,
                    slo.burn_short,
                    status,
                    slo.threshold,
                ));
            }
        }
        let r = &self.rollup;
        out.push_str(&format!(
            "\n  fleet: {} frames, {} rejections, {} indictments, {} blame, {} retries, {} failovers\n",
            r.frames, r.rejections, r.indictments, r.blame, r.retries, r.failovers,
        ));
        out
    }
}

fn truncate(s: &str, max: usize) -> String {
    if s.chars().count() <= max {
        s.to_string()
    } else {
        let cut: String = s.chars().take(max.saturating_sub(1)).collect();
        format!("{cut}…")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::{FleetConfig, FleetState, ScrapeResult, Target};
    use crate::health::ScrapeOutcome;
    use crate::scrape::{parse_prometheus, ScrapeError};

    fn sample_state() -> FleetState {
        let targets = vec![
            Target {
                shard: 0,
                replica: 0,
                addr: "127.0.0.1:9000".into(),
            },
            Target {
                shard: 0,
                replica: 1,
                addr: "127.0.0.1:9001".into(),
            },
            Target {
                shard: 1,
                replica: 0,
                addr: "127.0.0.1:9010".into(),
            },
            Target {
                shard: 1,
                replica: 1,
                addr: "127.0.0.1:9011".into(),
            },
        ];
        let mut state = FleetState::new(FleetConfig::default(), targets);
        let metrics = "sip_server_frames_total 120\n\
                       sip_server_handle_us_bucket{le=\"64\"} 50\n\
                       sip_server_handle_us_bucket{le=\"+Inf\"} 60\n\
                       sip_server_handle_us_count 60\n\
                       sip_server_handle_us_sum 4000\n";
        for round in 0..2u64 {
            let now = (round + 1) * 1_000_000;
            for i in 0..3 {
                state.ingest(
                    i,
                    ScrapeResult {
                        outcome: ScrapeOutcome::Full,
                        samples: Some(parse_prometheus(metrics).unwrap()),
                        stats: None,
                    },
                    300,
                    now,
                );
            }
            state.ingest(
                3,
                ScrapeResult {
                    outcome: ScrapeOutcome::Failed(ScrapeError::Unreachable {
                        detail: "connection refused".into(),
                    }),
                    samples: None,
                    stats: None,
                },
                300,
                now,
            );
            state.finish_round(now);
        }
        state
    }

    #[test]
    fn model_round_trips_through_health_json() {
        let state = sample_state();
        let doc = Json::parse(&state.health_json(2_500_000)).unwrap();
        let model = DashModel::from_health_json(&doc);
        assert_eq!(model.rows.len(), 4);
        assert_eq!(model.shards.len(), 2);
        assert_eq!(model.rounds, 2);
        let down = model
            .rows
            .iter()
            .find(|r| r.replica == 1 && r.shard == 1)
            .unwrap();
        assert_eq!(down.state, "down");
        assert!(down.last_error.as_deref().unwrap().contains("refused"));
        assert_eq!(model.shards[1].state, "degraded");
        assert_eq!(model.shards[0].state, "full");
        assert!(model.slos.iter().any(|s| s.name == "availability"));
    }

    #[test]
    fn render_shows_every_slot_and_slo() {
        let state = sample_state();
        let doc = Json::parse(&state.health_json(2_500_000)).unwrap();
        let model = DashModel::from_health_json(&doc);
        let plain = model.render(false);
        for slot in ["0/0", "0/1", "1/0", "1/1"] {
            assert!(plain.contains(slot), "{plain}");
        }
        assert!(plain.contains("down"), "{plain}");
        assert!(plain.contains("availability"), "{plain}");
        assert!(plain.contains("fleet: 360 frames"), "{plain}");
        assert!(!plain.contains('\x1b'), "no ANSI without color: {plain}");
        let colored = model.render(true);
        assert!(colored.contains("\x1b[31m"), "down is red: {colored}");
        assert!(colored.contains("\x1b[32m"), "up is green: {colored}");
    }

    #[test]
    fn hostile_health_documents_render_blank_not_panic() {
        for doc in [
            "{}",
            "[]",
            "17",
            "{\"shards\": 3}",
            "{\"shards\": [{}], \"slos\": [7]}",
        ] {
            let parsed = Json::parse(doc).unwrap();
            let model = DashModel::from_health_json(&parsed);
            let _ = model.render(false);
            let _ = model.render(true);
        }
    }
}

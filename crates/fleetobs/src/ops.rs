//! The aggregator's own ops surface: [`serve_fleet_ops`] mounts
//! `/fleet/metrics`, `/fleet/health`, and `/fleet/slo` on top of the
//! standard `sip-obs` listener, so one port serves both the aggregator's
//! process metrics (`/metrics`) and the merged fleet view (`/fleet/*`).
//!
//! The routes only ever *read* the shared [`FleetState`](crate::FleetState) under its
//! poison-safe lock — a hostile client hammering `/fleet/health` cannot
//! perturb the scrape loop, and a panicked scrape round cannot wedge the
//! ops surface.

use std::net::ToSocketAddrs;
use std::sync::Arc;

use sip_obs::{serve_ops_with, OpsHandle};

use crate::fleet::FleetScraper;

/// Binds `addr` and serves the fleet view alongside the standard ops
/// endpoints. The returned handle works like [`sip_obs::serve_ops`]'s:
/// the bound address is on it, and `shutdown` joins the listener.
pub fn serve_fleet_ops<A: ToSocketAddrs>(
    addr: A,
    scraper: &FleetScraper,
) -> std::io::Result<OpsHandle> {
    let scraper = scraper.clone();
    serve_ops_with(
        addr,
        Arc::new(move |path| match path {
            "/fleet/metrics" => Some((
                "200 OK",
                "text/plain; version=0.0.4",
                scraper.state().render_fleet_metrics(),
            )),
            "/fleet/health" | "/fleet/health.json" => Some((
                "200 OK",
                "application/json",
                scraper.state().health_json(scraper.now_us()),
            )),
            "/fleet/slo" | "/fleet/slo.json" => Some((
                "200 OK",
                "application/json",
                scraper.state().slo_json(scraper.now_us()),
            )),
            "/fleet" | "/fleet/" => Some((
                "200 OK",
                "text/plain",
                "sip fleet endpoints: /fleet/metrics (merged Prometheus text), \
                 /fleet/health (JSON), /fleet/slo (JSON)\n"
                    .into(),
            )),
            _ => None,
        }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::{FleetConfig, Target};
    use std::io::{Read, Write};
    use std::net::TcpStream;
    use std::time::Duration;

    fn get(addr: std::net::SocketAddr, path: &str) -> String {
        let mut s = TcpStream::connect(addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let _ = s.write_all(format!("GET {path} HTTP/1.0\r\n\r\n").as_bytes());
        let mut out = String::new();
        let _ = s.read_to_string(&mut out);
        out
    }

    #[test]
    fn fleet_routes_serve_alongside_defaults() {
        let scraper = FleetScraper::new(
            FleetConfig::default(),
            vec![Target {
                shard: 0,
                replica: 0,
                addr: "127.0.0.1:1".into(), // never scraped in this test
            }],
        );
        let handle = serve_fleet_ops("127.0.0.1:0", &scraper).unwrap();
        let addr = handle.local_addr();
        let health = get(addr, "/fleet/health");
        assert!(health.starts_with("HTTP/1.0 200"), "{health}");
        assert!(health.contains("\"shards\""), "{health}");
        let slo = get(addr, "/fleet/slo");
        assert!(slo.contains("\"slos\""), "{slo}");
        let metrics = get(addr, "/fleet/metrics");
        assert!(metrics.starts_with("HTTP/1.0 200"), "{metrics}");
        // The built-in endpoints still answer underneath.
        assert!(get(addr, "/metrics").starts_with("HTTP/1.0 200"));
        assert!(get(addr, "/stats").contains("\"counters\""));
        assert!(get(addr, "/fleet/nope").starts_with("HTTP/1.0 404"));
        handle.shutdown();
    }
}

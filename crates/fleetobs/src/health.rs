//! The fleet health model: a per-replica state machine driven by scrape
//! outcomes, and per-shard quorum states derived from the replica plan.
//!
//! Time is an explicit `now_us` parameter everywhere — the state machine
//! never reads a clock, so tests drive it deterministically and the
//! scrape loop injects its own monotonic epoch.
//!
//! The state semantics mirror the protocol's fault attribution (PR 8/9):
//! *Down* means nothing is listening — the replica has crashed and its
//! shard should fail over; *Degraded* means a process is there but
//! misbehaving (stalls, garbage) — the scraper keeps what it last
//! parsed; *Stale* means the misbehaviour has outlived
//! [`HealthPolicy::stale_after_us`] and the cached numbers can no longer
//! be trusted to describe the present.

use crate::scrape::{FaultClass, ScrapeError};

/// Observed state of one replica's ops surface.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ReplicaState {
    /// Last scrape round-tripped and parsed completely.
    Up,
    /// Recent scrapes failed or half-failed, but the last good data is
    /// younger than the staleness horizon.
    Degraded,
    /// No complete scrape within the staleness horizon (or never).
    Stale,
    /// The dial itself fails: nothing is listening at the target.
    Down,
}

impl ReplicaState {
    /// Stable lowercase label (metrics, JSON, dashboard).
    pub fn label(self) -> &'static str {
        match self {
            ReplicaState::Up => "up",
            ReplicaState::Degraded => "degraded",
            ReplicaState::Stale => "stale",
            ReplicaState::Down => "down",
        }
    }

    /// Gauge encoding for `sip_fleet_replica_health`: 3=Up, 2=Degraded,
    /// 1=Stale, 0=Down — ordered so "bigger is healthier" holds in
    /// dashboards.
    pub fn gauge(self) -> i64 {
        match self {
            ReplicaState::Up => 3,
            ReplicaState::Degraded => 2,
            ReplicaState::Stale => 1,
            ReplicaState::Down => 0,
        }
    }

    /// Whether the replica is presumed able to serve queries. Down and
    /// Stale are not: one is known-dead, the other unobservable — the
    /// quorum model treats both as absent.
    pub fn serving(self) -> bool {
        matches!(self, ReplicaState::Up | ReplicaState::Degraded)
    }
}

/// Thresholds for the replica state machine.
#[derive(Copy, Clone, Debug)]
pub struct HealthPolicy {
    /// How long the last complete scrape may age before a failing replica
    /// is demoted from Degraded to Stale.
    pub stale_after_us: u64,
    /// Consecutive unreachable dials before declaring Down. 1 is right
    /// for a LAN fleet where a refused dial means the process is gone;
    /// raise it on lossier networks.
    pub down_after_misses: u32,
}

impl Default for HealthPolicy {
    fn default() -> Self {
        HealthPolicy {
            stale_after_us: 10_000_000, // 10 s
            down_after_misses: 1,
        }
    }
}

/// What one scrape attempt (all retries exhausted) produced.
#[derive(Clone, Debug)]
pub enum ScrapeOutcome {
    /// Everything fetched and parsed.
    Full,
    /// `/metrics` parsed but a secondary fetch (e.g. `/stats`) failed —
    /// the replica answers, imperfectly.
    Partial(ScrapeError),
    /// Nothing usable came back.
    Failed(ScrapeError),
}

/// Rolling health for one replica.
#[derive(Clone, Debug)]
pub struct ReplicaHealth {
    state: ReplicaState,
    /// `now_us` of the last `Full` outcome; `None` until the first one.
    last_full_us: Option<u64>,
    /// Consecutive unreachable-class failures.
    unreachable_misses: u32,
    /// The error behind the current non-Up state, for display.
    last_error: Option<ScrapeError>,
}

impl Default for ReplicaHealth {
    fn default() -> Self {
        ReplicaHealth {
            // Never scraped: explicitly unobservable, not optimistically Up.
            state: ReplicaState::Stale,
            last_full_us: None,
            unreachable_misses: 0,
            last_error: None,
        }
    }
}

impl ReplicaHealth {
    /// Current state.
    pub fn state(&self) -> ReplicaState {
        self.state
    }

    /// Microseconds since the last complete scrape, or `None` if there
    /// has never been one.
    pub fn staleness_us(&self, now_us: u64) -> Option<u64> {
        self.last_full_us.map(|t| now_us.saturating_sub(t))
    }

    /// The error behind the current non-Up state.
    pub fn last_error(&self) -> Option<&ScrapeError> {
        self.last_error.as_ref()
    }

    /// Feeds one scrape outcome through the state machine and returns the
    /// new state.
    pub fn on_scrape(
        &mut self,
        outcome: &ScrapeOutcome,
        now_us: u64,
        policy: &HealthPolicy,
    ) -> ReplicaState {
        match outcome {
            ScrapeOutcome::Full => {
                self.state = ReplicaState::Up;
                self.last_full_us = Some(now_us);
                self.unreachable_misses = 0;
                self.last_error = None;
            }
            ScrapeOutcome::Partial(err) => {
                // Metrics landed, so the data plane is current even though
                // the replica is misbehaving: refresh the staleness clock.
                self.state = ReplicaState::Degraded;
                self.last_full_us = Some(now_us);
                self.unreachable_misses = 0;
                self.last_error = Some(err.clone());
            }
            ScrapeOutcome::Failed(err) => {
                if err.class() == FaultClass::Unreachable {
                    self.unreachable_misses += 1;
                } else {
                    self.unreachable_misses = 0;
                }
                self.last_error = Some(err.clone());
                self.state = if self.unreachable_misses >= policy.down_after_misses {
                    ReplicaState::Down
                } else {
                    let aged_out = match self.last_full_us {
                        None => true,
                        Some(t) => now_us.saturating_sub(t) > policy.stale_after_us,
                    };
                    if aged_out {
                        ReplicaState::Stale
                    } else {
                        ReplicaState::Degraded
                    }
                };
            }
        }
        self.state
    }
}

/// Quorum health of one shard, derived from its replicas.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ShardState {
    /// Every replica is Up.
    Full,
    /// At least one replica is serving, but not all are Up — failover
    /// capacity is reduced.
    Degraded,
    /// No replica is serving: queries against this shard will fail.
    Unavailable,
}

impl ShardState {
    /// Stable lowercase label.
    pub fn label(self) -> &'static str {
        match self {
            ShardState::Full => "full",
            ShardState::Degraded => "degraded",
            ShardState::Unavailable => "unavailable",
        }
    }

    /// Gauge encoding for `sip_fleet_shard_health`: 2=Full, 1=Degraded,
    /// 0=Unavailable.
    pub fn gauge(self) -> i64 {
        match self {
            ShardState::Full => 2,
            ShardState::Degraded => 1,
            ShardState::Unavailable => 0,
        }
    }

    /// Folds replica states into the shard's quorum state.
    pub fn from_replicas(states: impl IntoIterator<Item = ReplicaState>) -> ShardState {
        let mut any = false;
        let mut serving = 0usize;
        let mut up = 0usize;
        let mut total = 0usize;
        for s in states {
            any = true;
            total += 1;
            if s.serving() {
                serving += 1;
            }
            if s == ReplicaState::Up {
                up += 1;
            }
        }
        if !any || serving == 0 {
            ShardState::Unavailable
        } else if up == total {
            ShardState::Full
        } else {
            ShardState::Degraded
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scrape::ScrapeError;

    fn policy() -> HealthPolicy {
        HealthPolicy {
            stale_after_us: 1_000,
            down_after_misses: 1,
        }
    }

    fn garbage() -> ScrapeOutcome {
        ScrapeOutcome::Failed(ScrapeError::Garbage { detail: "x".into() })
    }

    fn unreachable() -> ScrapeOutcome {
        ScrapeOutcome::Failed(ScrapeError::Unreachable { detail: "x".into() })
    }

    #[test]
    fn starts_stale_until_first_full_scrape() {
        let h = ReplicaHealth::default();
        assert_eq!(h.state(), ReplicaState::Stale);
        assert_eq!(h.staleness_us(100), None);
        let mut h = ReplicaHealth::default();
        assert_eq!(
            h.on_scrape(&ScrapeOutcome::Full, 50, &policy()),
            ReplicaState::Up
        );
        assert_eq!(h.staleness_us(80), Some(30));
    }

    #[test]
    fn unreachable_goes_down_immediately_at_default_threshold() {
        let mut h = ReplicaHealth::default();
        h.on_scrape(&ScrapeOutcome::Full, 0, &policy());
        assert_eq!(
            h.on_scrape(&unreachable(), 10, &policy()),
            ReplicaState::Down
        );
        // Recovery: the process came back.
        assert_eq!(
            h.on_scrape(&ScrapeOutcome::Full, 20, &policy()),
            ReplicaState::Up
        );
    }

    #[test]
    fn down_needs_consecutive_misses_when_configured() {
        let p = HealthPolicy {
            down_after_misses: 3,
            ..policy()
        };
        let mut h = ReplicaHealth::default();
        h.on_scrape(&ScrapeOutcome::Full, 0, &p);
        assert_eq!(h.on_scrape(&unreachable(), 10, &p), ReplicaState::Degraded);
        assert_eq!(h.on_scrape(&unreachable(), 20, &p), ReplicaState::Degraded);
        assert_eq!(h.on_scrape(&unreachable(), 30, &p), ReplicaState::Down);
        // A garbage answer in between resets the consecutive-dial count:
        // something IS listening.
        let mut h = ReplicaHealth::default();
        h.on_scrape(&ScrapeOutcome::Full, 0, &p);
        h.on_scrape(&unreachable(), 10, &p);
        h.on_scrape(&unreachable(), 20, &p);
        assert_eq!(h.on_scrape(&garbage(), 30, &p), ReplicaState::Degraded);
        assert_eq!(h.on_scrape(&unreachable(), 40, &p), ReplicaState::Degraded);
    }

    #[test]
    fn garbage_degrades_then_ages_to_stale() {
        let mut h = ReplicaHealth::default();
        h.on_scrape(&ScrapeOutcome::Full, 0, &policy());
        // Within the staleness horizon: degraded, data still fresh-ish.
        assert_eq!(
            h.on_scrape(&garbage(), 500, &policy()),
            ReplicaState::Degraded
        );
        // Past it: stale.
        assert_eq!(
            h.on_scrape(&garbage(), 1_600, &policy()),
            ReplicaState::Stale
        );
        assert!(h.last_error().is_some());
    }

    #[test]
    fn partial_keeps_the_staleness_clock_fresh() {
        let mut h = ReplicaHealth::default();
        h.on_scrape(&ScrapeOutcome::Full, 0, &policy());
        let partial = ScrapeOutcome::Partial(ScrapeError::Http { status: 500 });
        assert_eq!(
            h.on_scrape(&partial, 900, &policy()),
            ReplicaState::Degraded
        );
        // The partial refreshed last_full: a failure shortly after is
        // still Degraded, not Stale.
        assert_eq!(
            h.on_scrape(&garbage(), 1_500, &policy()),
            ReplicaState::Degraded
        );
    }

    #[test]
    fn shard_quorum_states() {
        use ReplicaState::*;
        assert_eq!(ShardState::from_replicas([Up, Up]), ShardState::Full);
        assert_eq!(
            ShardState::from_replicas([Up, Degraded]),
            ShardState::Degraded
        );
        assert_eq!(ShardState::from_replicas([Up, Down]), ShardState::Degraded);
        assert_eq!(
            ShardState::from_replicas([Degraded, Degraded]),
            ShardState::Degraded
        );
        assert_eq!(
            ShardState::from_replicas([Down, Stale]),
            ShardState::Unavailable
        );
        assert_eq!(ShardState::from_replicas([]), ShardState::Unavailable);
        assert_eq!(ShardState::from_replicas([Up]), ShardState::Full);
        // Ordering sanity for the gauges.
        assert!(Up.gauge() > Degraded.gauge());
        assert!(Degraded.gauge() > Stale.gauge());
        assert!(Stale.gauge() > Down.gauge());
    }
}

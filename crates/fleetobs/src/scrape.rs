//! One scrape: a bounded HTTP/1.0 GET against a prover's ops port, and a
//! strict parser for the Prometheus text it answers.
//!
//! The target is **untrusted** — it may be dead, stalled, compromised, or
//! replaced by something hostile. Every failure mode therefore lands in a
//! typed [`ScrapeError`] the health model can reason about, never a panic
//! and never an unbounded read: bodies are capped at
//! [`MAX_SCRAPE_BODY_BYTES`], sockets run under a deadline, and a
//! response that fails to parse is *data about the target's health*, not
//! an exception.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use sip_core::error::{IoFault, Rejection};
use sip_obs::HISTOGRAM_BUCKETS;

/// Cap on one scraped response (headers + body). A prover's exposition is
/// a few KiB; anything near this limit is hostile or broken.
pub const MAX_SCRAPE_BODY_BYTES: usize = 4 << 20;

/// Cap on parsed samples per exposition, against a hostile target that
/// streams metric lines to balloon the aggregator's memory.
pub const MAX_SAMPLES: usize = 100_000;

/// How one scrape of one target failed — the typed staleness the health
/// model consumes. Grouped into three fault classes by [`Self::class`]:
/// *unreachable* (nothing listening — the process is gone), *stalled*
/// (listening but not answering in time), and *garbage* (answering, but
/// not with a metrics exposition).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ScrapeError {
    /// The dial failed outright: connection refused or the address does
    /// not resolve. Nothing is listening — the strongest down signal.
    Unreachable {
        /// The underlying error's message.
        detail: String,
    },
    /// Connected, but the target went silent past the IO deadline (or cut
    /// the connection before a full header arrived).
    Stalled {
        /// What was being waited on when the deadline hit.
        detail: String,
    },
    /// The target answered HTTP, but not `200`.
    Http {
        /// The status code it sent instead.
        status: u16,
    },
    /// The response exceeded [`MAX_SCRAPE_BODY_BYTES`] and was abandoned.
    Oversized {
        /// The cap that was hit.
        limit: usize,
    },
    /// The body arrived but failed to parse as what the endpoint is
    /// supposed to emit.
    Garbage {
        /// First offence, excerpted.
        detail: String,
    },
}

/// The three fault classes the health state machine distinguishes.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum FaultClass {
    /// No listener: the process (or its host) is gone.
    Unreachable,
    /// A listener that will not answer in time.
    Stalled,
    /// A listener answering the wrong thing.
    Garbage,
}

impl ScrapeError {
    /// Which fault class this error belongs to.
    pub fn class(&self) -> FaultClass {
        match self {
            ScrapeError::Unreachable { .. } => FaultClass::Unreachable,
            ScrapeError::Stalled { .. } => FaultClass::Stalled,
            ScrapeError::Http { .. }
            | ScrapeError::Oversized { .. }
            | ScrapeError::Garbage { .. } => FaultClass::Garbage,
        }
    }

    /// Stable lowercase label for metrics (`sip_fleet_scrapes_total{outcome=…}`).
    pub fn label(&self) -> &'static str {
        match self {
            ScrapeError::Unreachable { .. } => "unreachable",
            ScrapeError::Stalled { .. } => "stalled",
            ScrapeError::Http { .. } => "http",
            ScrapeError::Oversized { .. } => "oversized",
            ScrapeError::Garbage { .. } => "garbage",
        }
    }

    /// The equivalent [`Rejection`], so the scrape loop can run under the
    /// fleet's [`RetryPolicy`](sip_core::channel::RetryPolicy): dial and
    /// deadline faults are transient (redial with backoff), garbage is
    /// not — a process serving nonsense will serve nonsense again, and
    /// hammering it buys nothing.
    pub fn rejection(&self) -> Rejection {
        match self {
            ScrapeError::Unreachable { detail } => Rejection::Io {
                fault: IoFault::Refused,
                detail: detail.clone(),
            },
            ScrapeError::Stalled { detail } => Rejection::Io {
                fault: IoFault::TimedOut,
                detail: detail.clone(),
            },
            other => Rejection::MalformedAnswer {
                detail: other.to_string(),
            },
        }
    }
}

impl std::fmt::Display for ScrapeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScrapeError::Unreachable { detail } => write!(f, "unreachable: {detail}"),
            ScrapeError::Stalled { detail } => write!(f, "stalled: {detail}"),
            ScrapeError::Http { status } => write!(f, "http status {status}"),
            ScrapeError::Oversized { limit } => write!(f, "response exceeded {limit} bytes"),
            ScrapeError::Garbage { detail } => write!(f, "unparseable body: {detail}"),
        }
    }
}

/// Issues one bounded `GET path` against `addr` and returns the body.
///
/// HTTP/1.0, `Connection: close` semantics: the body ends when the peer
/// closes, which is exactly what [`sip_obs::serve_ops`] speaks. Reads and
/// writes run under `timeout`; the body is capped at
/// [`MAX_SCRAPE_BODY_BYTES`].
pub fn http_get(addr: &str, path: &str, timeout: Duration) -> Result<String, ScrapeError> {
    let sock_addr: SocketAddr = addr
        .to_socket_addrs()
        .map_err(|e| ScrapeError::Unreachable {
            detail: format!("{addr}: {e}"),
        })?
        .next()
        .ok_or_else(|| ScrapeError::Unreachable {
            detail: format!("{addr}: no address"),
        })?;
    let mut stream =
        TcpStream::connect_timeout(&sock_addr, timeout).map_err(|e| ScrapeError::Unreachable {
            detail: format!("{addr}: {e}"),
        })?;
    let stalled = |what: &str| ScrapeError::Stalled {
        detail: format!("{addr}: {what}"),
    };
    stream
        .set_read_timeout(Some(timeout))
        .and_then(|()| stream.set_write_timeout(Some(timeout)))
        .map_err(|_| stalled("socket options"))?;
    stream
        .write_all(format!("GET {path} HTTP/1.0\r\nHost: sip-fleetobs\r\n\r\n").as_bytes())
        .map_err(|_| stalled("request write"))?;
    let mut raw = Vec::with_capacity(4096);
    let mut chunk = [0u8; 4096];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                if raw.len() + n > MAX_SCRAPE_BODY_BYTES {
                    return Err(ScrapeError::Oversized {
                        limit: MAX_SCRAPE_BODY_BYTES,
                    });
                }
                raw.extend_from_slice(&chunk[..n]);
            }
            Err(_) => {
                // Timeout or reset mid-body. A complete header with a
                // truncated body is still garbage-class (the peer *was*
                // answering); no header at all is a stall.
                if !raw.windows(4).any(|w| w == b"\r\n\r\n") {
                    return Err(stalled("response read"));
                }
                return Err(ScrapeError::Garbage {
                    detail: format!("{addr}: body truncated by reset/timeout"),
                });
            }
        }
    }
    let text = String::from_utf8(raw).map_err(|_| ScrapeError::Garbage {
        detail: format!("{addr}: non-UTF-8 response"),
    })?;
    let Some((head, body)) = text.split_once("\r\n\r\n") else {
        if text.is_empty() {
            return Err(stalled("peer closed without answering"));
        }
        return Err(ScrapeError::Garbage {
            detail: format!("{addr}: no header/body separator"),
        });
    };
    let status_line = head.lines().next().unwrap_or("");
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| ScrapeError::Garbage {
            detail: format!("{addr}: bad status line {status_line:?}"),
        })?;
    if status != 200 {
        return Err(ScrapeError::Http { status });
    }
    Ok(body.to_string())
}

/// One parsed metric line: base name, label pairs, value.
#[derive(Clone, Debug, PartialEq)]
pub struct Sample {
    /// Metric name (for histograms, includes the `_bucket`/`_sum`/`_count`
    /// suffix exactly as exposed).
    pub name: String,
    /// Label pairs in exposition order.
    pub labels: Vec<(String, String)>,
    /// The sample value.
    pub value: f64,
}

impl Sample {
    /// The value of label `key`, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Parses a Prometheus text exposition **strictly**: every non-comment,
/// non-blank line must be a well-formed sample, or the whole document is
/// [`ScrapeError::Garbage`] — a half-parseable exposition from an
/// untrusted process is not worth aggregating, and silently dropping
/// lines would turn tampering into invisible gaps.
pub fn parse_prometheus(text: &str) -> Result<Vec<Sample>, ScrapeError> {
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if out.len() >= MAX_SAMPLES {
            return Err(ScrapeError::Oversized { limit: MAX_SAMPLES });
        }
        out.push(parse_sample(line).ok_or_else(|| ScrapeError::Garbage {
            detail: format!("bad metric line {:?}", excerpt(line, 80)),
        })?);
    }
    Ok(out)
}

/// At most `max` bytes of `line`, cut back to a char boundary — the line
/// is hostile input, and slicing a multibyte char in half would panic the
/// excerpting itself.
fn excerpt(line: &str, max: usize) -> &str {
    let mut n = line.len().min(max);
    while !line.is_char_boundary(n) {
        n -= 1;
    }
    &line[..n]
}

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        && !name.starts_with(|c: char| c.is_ascii_digit())
}

fn parse_sample(line: &str) -> Option<Sample> {
    let (name_and_labels, value) = match line.rfind('}') {
        Some(close) => (&line[..=close], line[close + 1..].trim()),
        None => {
            let sp = line.find(char::is_whitespace)?;
            (&line[..sp], line[sp..].trim())
        }
    };
    let value: f64 = match value {
        "+Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        "NaN" => f64::NAN,
        v => v.parse().ok()?,
    };
    let (name, labels) = match name_and_labels.split_once('{') {
        None => (name_and_labels.to_string(), Vec::new()),
        Some((name, rest)) => {
            let body = rest.strip_suffix('}')?;
            (name.to_string(), parse_labels(body)?)
        }
    };
    if !valid_name(&name) {
        return None;
    }
    Some(Sample {
        name,
        labels,
        value,
    })
}

/// Parses `k="v",k2="v2"` with `\\` and `\"` escapes in values.
fn parse_labels(body: &str) -> Option<Vec<(String, String)>> {
    let mut labels = Vec::new();
    let mut rest = body;
    while !rest.is_empty() {
        let eq = rest.find('=')?;
        let key = rest[..eq].trim().to_string();
        if !valid_name(&key) {
            return None;
        }
        rest = rest[eq + 1..].strip_prefix('"')?;
        let mut value = String::new();
        let mut chars = rest.char_indices();
        let after_quote = loop {
            let (i, c) = chars.next()?;
            match c {
                '\\' => {
                    let (_, esc) = chars.next()?;
                    value.push(match esc {
                        'n' => '\n',
                        other => other,
                    });
                }
                '"' => break i + 1,
                c => value.push(c),
            }
        };
        labels.push((key, value));
        rest = &rest[after_quote..];
        rest = match rest.strip_prefix(',') {
            Some(r) => r.trim_start(),
            None if rest.is_empty() => rest,
            None => return None,
        };
    }
    Some(labels)
}

/// Sums every sample named `name` (across all label sets).
pub fn sum_by_name(samples: &[Sample], name: &str) -> f64 {
    samples
        .iter()
        .filter(|s| s.name == name)
        .map(|s| s.value)
        .sum()
}

/// Reassembles a scraped histogram `base` into per-bucket (non-cumulative)
/// counts aligned to [`sip_obs::HISTOGRAM_BUCKETS`]' log₂ layout, plus
/// `(count, sum)`. Bucket series from different label sets (e.g. per-shard
/// wait histograms) are merged by summing per `le` bound. Unknown or
/// non-power-of-two bounds are folded into the covering log₂ bucket, so a
/// foreign exposition degrades to a coarser estimate instead of an error.
pub fn histogram_buckets(samples: &[Sample], base: &str) -> Option<(Vec<u64>, u64, f64)> {
    let bucket_name = format!("{base}_bucket");
    let mut cumulative: Vec<(f64, f64)> = Vec::new(); // (le, summed cumulative)
    for s in samples.iter().filter(|s| s.name == bucket_name) {
        let le = match s.label("le")? {
            "+Inf" => f64::INFINITY,
            v => v.parse().ok()?,
        };
        match cumulative.iter_mut().find(|(b, _)| *b == le) {
            Some((_, c)) => *c += s.value,
            None => cumulative.push((le, s.value)),
        }
    }
    if cumulative.is_empty() {
        return None;
    }
    cumulative.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
    let mut buckets = vec![0u64; HISTOGRAM_BUCKETS];
    let mut prev = 0.0f64;
    for (le, cum) in &cumulative {
        let in_bucket = (cum - prev).max(0.0) as u64;
        prev = *cum;
        let idx = if le.is_infinite() || *le >= (1u64 << (HISTOGRAM_BUCKETS - 2)) as f64 {
            HISTOGRAM_BUCKETS - 1
        } else if *le <= 1.0 {
            0
        } else {
            // Covering log₂ bucket: smallest i with 2^i ≥ le.
            (le.log2().ceil() as usize).min(HISTOGRAM_BUCKETS - 1)
        };
        buckets[idx] += in_bucket;
    }
    let count = sum_by_name(samples, &format!("{base}_count")) as u64;
    let sum = sum_by_name(samples, &format!("{base}_sum"));
    Some((buckets, count, sum))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_obs_exposition_shape() {
        let text = "\
# HELP sip_server_frames_total Wire frames received across all sessions\n\
# TYPE sip_server_frames_total counter\n\
sip_server_frames_total 42\n\
sip_server_msg_total{msg=\"ingest\"} 3\n\
sip_server_msg_total{msg=\"a\\\"b\\\\c\"} 1\n\
t_us_bucket{le=\"1\"} 2\n\
t_us_bucket{le=\"+Inf\"} 5\n\
t_us_sum 900\n\
t_us_count 5\n";
        let samples = parse_prometheus(text).unwrap();
        assert_eq!(samples.len(), 7);
        assert_eq!(sum_by_name(&samples, "sip_server_frames_total"), 42.0);
        assert_eq!(sum_by_name(&samples, "sip_server_msg_total"), 4.0);
        assert_eq!(samples[2].label("msg"), Some("a\"b\\c"));
        let (buckets, count, sum) = histogram_buckets(&samples, "t_us").unwrap();
        assert_eq!(buckets[0], 2);
        assert_eq!(buckets[HISTOGRAM_BUCKETS - 1], 3);
        assert_eq!(count, 5);
        assert_eq!(sum, 900.0);
    }

    #[test]
    fn garbage_lines_are_typed_errors_never_panics() {
        for bad in [
            "}{ not a metric",
            "name{unterminated=\"v} 1",
            "name{k=\"v\"} not_a_number",
            "1leading_digit 2",
            "name{k=v} 1",
            "name 1 extra trailing", // parses? "1 extra trailing" not a number
            "{\"json\": true}",
            "\u{0}binary\u{1}",
        ] {
            let res = parse_prometheus(bad);
            assert!(
                matches!(res, Err(ScrapeError::Garbage { .. })),
                "{bad:?} -> {res:?}"
            );
        }
        // Comments, blanks, and ±Inf/NaN are all fine.
        let ok = parse_prometheus("# ok\n\nx_total +Inf\ny_total NaN\n").unwrap();
        assert_eq!(ok.len(), 2);
        assert!(ok[0].value.is_infinite());
    }

    #[test]
    fn multibyte_garbage_excerpt_cannot_panic() {
        // A bad line whose 80th byte lands mid-char: the error excerpt
        // must cut back to a boundary, not panic the scrape thread.
        for pad in 77..=80 {
            let line = format!("{}é λ ü not a metric", "x".repeat(pad));
            let res = parse_prometheus(&line);
            assert!(
                matches!(res, Err(ScrapeError::Garbage { .. })),
                "pad {pad}: {res:?}"
            );
        }
        // And a short multibyte line is excerpted whole.
        let err = parse_prometheus("é{ nope").unwrap_err();
        assert!(err.to_string().contains('é'), "{err}");
    }

    #[test]
    fn sample_cap_is_enforced() {
        let mut huge = String::new();
        for i in 0..(MAX_SAMPLES + 2) {
            huge.push_str(&format!("m_{i} 1\n"));
        }
        assert!(matches!(
            parse_prometheus(&huge),
            Err(ScrapeError::Oversized { .. })
        ));
    }

    #[test]
    fn fault_classes_and_retry_mapping() {
        let unreachable = ScrapeError::Unreachable { detail: "x".into() };
        let stalled = ScrapeError::Stalled { detail: "x".into() };
        let garbage = ScrapeError::Garbage { detail: "x".into() };
        assert_eq!(unreachable.class(), FaultClass::Unreachable);
        assert_eq!(stalled.class(), FaultClass::Stalled);
        assert_eq!(garbage.class(), FaultClass::Garbage);
        assert_eq!(
            ScrapeError::Http { status: 500 }.class(),
            FaultClass::Garbage
        );
        // Dial/deadline faults retry; garbage does not.
        assert!(unreachable.rejection().is_transient());
        assert!(stalled.rejection().is_transient());
        assert!(!garbage.rejection().is_transient());
    }

    #[test]
    fn http_get_against_dead_port_is_unreachable() {
        // Bind-then-drop guarantees an unbound port.
        let port = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().port()
        };
        let err = http_get(
            &format!("127.0.0.1:{port}"),
            "/metrics",
            Duration::from_millis(300),
        )
        .unwrap_err();
        assert_eq!(err.class(), FaultClass::Unreachable, "{err}");
    }

    #[test]
    fn histogram_merge_across_label_sets() {
        let text = "\
w_us_bucket{shard=\"0\",le=\"2\"} 1\n\
w_us_bucket{shard=\"0\",le=\"+Inf\"} 2\n\
w_us_bucket{shard=\"1\",le=\"2\"} 3\n\
w_us_bucket{shard=\"1\",le=\"+Inf\"} 3\n\
w_us_count{shard=\"0\"} 2\n\
w_us_count{shard=\"1\"} 3\n\
w_us_sum{shard=\"0\"} 10\n\
w_us_sum{shard=\"1\"} 12\n";
        let samples = parse_prometheus(text).unwrap();
        let (buckets, count, sum) = histogram_buckets(&samples, "w_us").unwrap();
        assert_eq!(buckets[1], 4); // le=2 merged: 1 + 3
        assert_eq!(buckets[HISTOGRAM_BUCKETS - 1], 1); // only shard 0 overflowed
        assert_eq!(count, 5);
        assert_eq!(sum, 22.0);
    }
}

//! `sip-top` — a live terminal dashboard over the prover fleet.
//!
//! Two modes share one renderer:
//!
//! * `--targets 0/0@h:p,0/1@h:p,…` — scrape the provers directly and
//!   render the in-process fleet model.
//! * `--fleet HOST:PORT` — read a running `sip-fleetobs` aggregator's
//!   `/fleet/health` and render that (the dashboard stays this cheap: one
//!   small GET per frame).
//!
//! `--once` prints a single frame and exits (scripts, tests); otherwise
//! the screen redraws every `--interval` ms until interrupted. Plain
//! ANSI only: colors when stdout is a terminal (or `--color`), never
//! when piped.

use std::io::IsTerminal;
use std::time::Duration;

use sip_fleetobs::{http_get, DashModel, FleetConfig, FleetScraper, Json, Target};

const USAGE: &str = "\
usage: sip-top (--targets LIST | --fleet ADDR) [options]

modes:
  --targets LIST   comma-separated SHARD/REPLICA@HOST:PORT ops addresses
                   to scrape directly
  --fleet ADDR     read /fleet/health from a running sip-fleetobs

options:
  --interval MS    refresh/scrape interval (default 1000)
  --once           print one frame and exit
  --color          force ANSI colors on
  --no-color       force ANSI colors off
  -h, --help       this text
";

struct Args {
    targets: Option<Vec<Target>>,
    fleet: Option<String>,
    interval: Duration,
    once: bool,
    color: Option<bool>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        targets: None,
        fleet: None,
        interval: Duration::from_millis(1000),
        once: false,
        color: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match arg.as_str() {
            "--targets" => args.targets = Some(Target::parse_list(&value("--targets")?)?),
            "--fleet" => args.fleet = Some(value("--fleet")?),
            "--interval" => {
                let ms: u64 = value("--interval")?
                    .parse()
                    .map_err(|_| "--interval wants milliseconds".to_string())?;
                args.interval = Duration::from_millis(ms.max(50));
            }
            "--once" => args.once = true,
            "--color" => args.color = Some(true),
            "--no-color" => args.color = Some(false),
            "-h" | "--help" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    match (&args.targets, &args.fleet) {
        (Some(_), Some(_)) => Err("--targets and --fleet are mutually exclusive".into()),
        (None, None) => Err("one of --targets or --fleet is required".into()),
        _ => Ok(args),
    }
}

/// One frame's model, from whichever source this run uses.
fn frame(scraper: Option<&FleetScraper>, fleet: Option<&str>) -> DashModel {
    let doc = match (scraper, fleet) {
        (Some(s), _) => {
            s.scrape_once();
            let json = s.state().health_json(s.now_us());
            Json::parse(&json)
        }
        (None, Some(addr)) => match http_get(addr, "/fleet/health", Duration::from_secs(2)) {
            Ok(body) => Json::parse(&body),
            Err(e) => {
                eprintln!("sip-top: {addr}: {e}");
                None
            }
        },
        _ => None,
    };
    doc.as_ref()
        .map(DashModel::from_health_json)
        .unwrap_or_default()
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("sip-top: {e}\n\n{USAGE}");
            std::process::exit(2);
        }
    };
    // Keep the dashboard's own process out of the picture: no sampled
    // timers, no event noise on stderr below warnings.
    sip_obs::set_timer_sample(0);
    let color = args
        .color
        .unwrap_or_else(|| std::io::stdout().is_terminal());
    let scraper = args.targets.map(|targets| {
        let config = FleetConfig {
            interval: args.interval,
            ..FleetConfig::default()
        };
        FleetScraper::new(config, targets)
    });
    if args.once {
        // Two quick rounds so qps (a delta between scrapes) is real.
        if let Some(s) = &scraper {
            s.scrape_once();
            std::thread::sleep(Duration::from_millis(150));
        }
        print!(
            "{}",
            frame(scraper.as_ref(), args.fleet.as_deref()).render(color)
        );
        return;
    }
    loop {
        let model = frame(scraper.as_ref(), args.fleet.as_deref());
        // Clear screen, home cursor, draw.
        print!("\x1b[2J\x1b[H{}", model.render(color));
        use std::io::Write;
        let _ = std::io::stdout().flush();
        std::thread::sleep(args.interval);
    }
}

//! `sip-fleetobs` — the fleet aggregator daemon.
//!
//! Polls every configured prover's ops port on a jittered interval,
//! maintains the fleet health model and SLO burn trackers, and serves
//! the merged view on its own ops port:
//!
//! * `/fleet/metrics` — merged Prometheus text, per-prover series
//!   relabelled `{shard, replica, prover}`
//! * `/fleet/health` — the health model as JSON (what `sip-top` renders)
//! * `/fleet/slo` — burn-rate status per declared objective
//!
//! plus the standard `/metrics`·`/stats`·`/trace` for the aggregator's
//! own process. Runs until killed.

use std::time::Duration;

use sip_fleetobs::{serve_fleet_ops, FleetConfig, FleetScraper, HealthPolicy, Target};
use sip_obs::{JsonlSink, Level, StderrSink};

const USAGE: &str = "\
usage: sip-fleetobs --targets LIST [options]

  --targets LIST     comma-separated SHARD/REPLICA@HOST:PORT ops
                     addresses of the provers to scrape (required)
  --listen ADDR      fleet ops listener (default 127.0.0.1:9900; port 0
                     picks a free port and prints it)
  --interval MS      scrape interval, jittered ±10% (default 1000)
  --stale-after MS   demote a failing replica's cached data to stale
                     after this long (default 10000)
  --down-after N     consecutive refused dials before down (default 1)
  --log-json FILE    append events as JSONL to FILE
  --verbose          log info-level events to stderr
  -h, --help         this text
";

fn main() {
    let mut targets: Option<Vec<Target>> = None;
    let mut listen = "127.0.0.1:9900".to_string();
    let mut config = FleetConfig::default();
    let mut policy = HealthPolicy::default();
    let mut verbose = false;
    let mut log_json: Option<String> = None;

    let mut it = std::env::args().skip(1);
    let fail = |msg: &str| -> ! {
        eprintln!("sip-fleetobs: {msg}\n\n{USAGE}");
        std::process::exit(2);
    };
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| fail(&format!("{name} needs a value")))
        };
        match arg.as_str() {
            "--targets" => match Target::parse_list(&value("--targets")) {
                Ok(t) => targets = Some(t),
                Err(e) => fail(&e),
            },
            "--listen" => listen = value("--listen"),
            "--interval" => match value("--interval").parse::<u64>() {
                Ok(ms) => config.interval = Duration::from_millis(ms.max(50)),
                Err(_) => fail("--interval wants milliseconds"),
            },
            "--stale-after" => match value("--stale-after").parse::<u64>() {
                Ok(ms) => policy.stale_after_us = ms * 1000,
                Err(_) => fail("--stale-after wants milliseconds"),
            },
            "--down-after" => match value("--down-after").parse::<u32>() {
                Ok(n) => policy.down_after_misses = n.max(1),
                Err(_) => fail("--down-after wants a count"),
            },
            "--log-json" => log_json = Some(value("--log-json")),
            "--verbose" => verbose = true,
            "-h" | "--help" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => fail(&format!("unknown flag {other:?}")),
        }
    }
    let Some(targets) = targets else {
        fail("--targets is required");
    };
    config.policy = policy;
    if verbose {
        sip_obs::add_sink(std::sync::Arc::new(StderrSink::new(Level::Info)));
    }
    if let Some(path) = log_json {
        match JsonlSink::create(std::path::Path::new(&path)) {
            Ok(sink) => sip_obs::add_sink(std::sync::Arc::new(sink)),
            Err(e) => fail(&format!("--log-json {path}: {e}")),
        }
    }

    let scraper = FleetScraper::new(config, targets.clone());
    let ops = match serve_fleet_ops(&listen, &scraper) {
        Ok(h) => h,
        Err(e) => fail(&format!("cannot bind {listen}: {e}")),
    };
    // Stable stdout lines: tests and operators parse these.
    println!(
        "sip-fleetobs: fleet ops on http://{}/fleet/health ({} targets)",
        ops.local_addr(),
        targets.len()
    );
    println!(
        "sip-fleetobs: scraping every {} ms: {}",
        scraper.state().config.interval.as_millis(),
        targets
            .iter()
            .map(|t| format!("{}/{}@{}", t.shard, t.replica, t.addr))
            .collect::<Vec<_>>()
            .join(", ")
    );
    use std::io::Write;
    let _ = std::io::stdout().flush();

    let _handle = scraper.start();
    // The loop thread does all the work; park until killed. No graceful
    // shutdown path: the process dies with SIGTERM/SIGKILL and the OS
    // reclaims the sockets, which is exactly what the chaos tests do.
    loop {
        std::thread::park();
    }
}

//! The typed protocol messages: everything that crosses the wire after the
//! handshake, in both directions.

use sip_core::error::Rejection;
use sip_core::heavy_hitters::LevelDisclosure;
use sip_core::subvector::{RoundReply, RoundRequest, SubVectorAnswer};
use sip_core::CostReport;
use sip_field::PrimeField;
use sip_streaming::Update;

use crate::codec::{field_width, Reader, WireCodec, Writer};
use crate::error::WireError;

/// A query the verifier can open after the stream ends.
///
/// Ranges are inclusive `[l, r]`; `threshold` is the absolute heavy-hitter
/// cutoff (`⌈φ·n⌉` for a fraction φ).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Query {
    /// SELF-JOIN SIZE / F₂ over the session vector (§3.1).
    SelfJoin,
    /// RANGE-SUM over `[l, r]` (§3.2).
    RangeSum {
        /// Left end (inclusive).
        l: u64,
        /// Right end (inclusive).
        r: u64,
    },
    /// Range *count* over `[l, r]` (RANGE-SUM on the presence vector).
    RangeCount {
        /// Left end (inclusive).
        l: u64,
        /// Right end (inclusive).
        r: u64,
    },
    /// SUB-VECTOR reporting over `[l, r]` (§4.1).
    Report {
        /// Left end (inclusive).
        l: u64,
        /// Right end (inclusive).
        r: u64,
    },
    /// HEAVY HITTERS at an absolute threshold (§6.1).
    Heavy {
        /// Absolute cutoff (≥ 1).
        threshold: u64,
    },
    /// The claimed predecessor of `q` (kv-store sessions).
    Predecessor {
        /// The probe key.
        q: u64,
    },
    /// The claimed successor of `q` (kv-store sessions).
    Successor {
        /// The probe key.
        q: u64,
    },
}

impl Query {
    /// A short stable name, used in trace spans and logs.
    pub fn name(&self) -> &'static str {
        match self {
            Query::SelfJoin => "self-join",
            Query::RangeSum { .. } => "range-sum",
            Query::RangeCount { .. } => "range-count",
            Query::Report { .. } => "report",
            Query::Heavy { .. } => "heavy",
            Query::Predecessor { .. } => "predecessor",
            Query::Successor { .. } => "successor",
        }
    }

    fn tag(&self) -> u8 {
        match self {
            Query::SelfJoin => 0,
            Query::RangeSum { .. } => 1,
            Query::RangeCount { .. } => 2,
            Query::Report { .. } => 3,
            Query::Heavy { .. } => 4,
            Query::Predecessor { .. } => 5,
            Query::Successor { .. } => 6,
        }
    }
}

impl WireCodec for Query {
    fn encode(&self, w: &mut Writer) {
        w.u8(self.tag());
        match *self {
            Query::SelfJoin => {}
            Query::RangeSum { l, r } | Query::RangeCount { l, r } | Query::Report { l, r } => {
                w.u64(l).u64(r);
            }
            Query::Heavy { threshold } => {
                w.u64(threshold);
            }
            Query::Predecessor { q } | Query::Successor { q } => {
                w.u64(q);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(match r.u8()? {
            0 => Query::SelfJoin,
            1 => Query::RangeSum {
                l: r.u64()?,
                r: r.u64()?,
            },
            2 => Query::RangeCount {
                l: r.u64()?,
                r: r.u64()?,
            },
            3 => Query::Report {
                l: r.u64()?,
                r: r.u64()?,
            },
            4 => Query::Heavy {
                threshold: r.u64()?,
            },
            5 => Query::Predecessor { q: r.u64()? },
            6 => Query::Successor { q: r.u64()? },
            tag => {
                return Err(WireError::BadTag {
                    context: "query",
                    tag,
                })
            }
        })
    }
}

/// Declares which slice of the universe a sharded session serves: shard
/// `index` of a fleet of `count` provers under the deterministic
/// [`sip_streaming::ShardPlan`] split. Sent by the aggregating verifier
/// right after the handshake; the prover then refuses updates outside its
/// range.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct ShardSpec {
    /// This prover's shard id, `< count`.
    pub index: u32,
    /// Fleet size `S`.
    pub count: u32,
    /// Which replica of the shard this session claims to be (0 for an
    /// unreplicated fleet). The replica id names a *copy*, not a slice: it
    /// participates in the hello (so a pinned prover can refuse a
    /// mis-addressed client) but is deliberately excluded from query
    /// transcripts — honest replicas of one shard must produce identical
    /// proofs, which is what lets the verifier cross-examine them.
    pub replica: u32,
}

impl ShardSpec {
    /// Shard `index` of `count`, replica 0 (the unreplicated default).
    pub fn new(index: u32, count: u32) -> Self {
        ShardSpec {
            index,
            count,
            replica: 0,
        }
    }

    /// Shard `index` of `count`, replica `replica` of its replica set.
    pub fn with_replica(index: u32, count: u32, replica: u32) -> Self {
        ShardSpec {
            index,
            count,
            replica,
        }
    }

    /// Whether two specs name the same *slice* of the universe, ignoring
    /// the replica id — the compatibility notion for datasets and
    /// snapshots, which describe data, not copies.
    pub fn same_slice(&self, other: &ShardSpec) -> bool {
        self.index == other.index && self.count == other.count
    }
}

impl WireCodec for ShardSpec {
    fn encode(&self, w: &mut Writer) {
        w.u32(self.index).u32(self.count).u32(self.replica);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(ShardSpec {
            index: r.u32()?,
            count: r.u32()?,
            replica: r.u32()?,
        })
    }
}

/// One post-handshake protocol message.
///
/// Direction is by convention (the state machines enforce it): the verifier
/// sends `Ingest`/`EndStream`/`Query`/`Challenge`/`BroadcastChallenge`/
/// `ShardHello`/`SubVectorRound`/`HhKeys`/`Accept`/`Reject`/`Bye`; the
/// prover sends the rest.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Msg<F> {
    // ----- verifier → prover -----
    /// A batch of stream updates to ingest.
    Ingest(Vec<Update>),
    /// The stream is complete; queries follow.
    EndStream,
    /// Open a query session.
    Query(Query),
    /// A revealed sum-check challenge `r_j`.
    Challenge(F),
    /// A sub-vector round: the revealed level key plus sibling requests.
    SubVectorRound(RoundRequest<F>),
    /// Heavy hitters: reveal the level keys `(r_level, s_level)`.
    HhKeys {
        /// The level whose disclosure should come next.
        level: u32,
        /// The hash key `r_level`.
        r: F,
        /// The count key `s_level`.
        s: F,
    },
    /// This connection serves one shard of a fleet (v2): must precede any
    /// [`Msg::Ingest`] on a sharded session.
    ShardHello(ShardSpec),
    /// A sum-check challenge broadcast by an aggregating verifier to every
    /// shard of a fleet (v2). `round` is the 1-based index of the round
    /// polynomial the challenge answers — the prover checks it against its
    /// own round counter so a desynchronised fleet fails loudly instead of
    /// binding the wrong variable.
    BroadcastChallenge {
        /// Index of the round polynomial this challenge responds to.
        round: u32,
        /// The revealed randomness `r_round`.
        challenge: F,
    },
    /// Freeze this session's ingested data and publish it server-wide under
    /// `dataset_id` (v3): later sessions may [`Msg::Attach`] to it, and this
    /// session keeps querying the now-frozen snapshot. Answered with
    /// [`Msg::DatasetAck`].
    Publish {
        /// Registry name for the frozen dataset.
        dataset_id: String,
    },
    /// Serve this session's queries from the published dataset
    /// `dataset_id` instead of session-local ingest (v3): the session's
    /// handshake mode and `log_u` must match the dataset's. Answered with
    /// [`Msg::DatasetAck`].
    Attach {
        /// Registry name of the dataset to attach to.
        dataset_id: String,
    },
    /// Persist this session's current (session-private) data as a durable
    /// named checkpoint in the server's data directory (v4): the session
    /// keeps ingesting and querying, and after a server crash a fresh
    /// session can [`Msg::Resume`] the checkpoint. Re-saving under the
    /// same id overwrites (checkpoints progress). Answered with
    /// [`Msg::StateAck`] enumerating everything durable. Refused when the
    /// server has no data directory.
    SaveState {
        /// Durable name for the checkpoint.
        dataset_id: String,
    },
    /// Serve this session from the durable state saved under `dataset_id`
    /// (v4): a named checkpoint thaws into a session-private store (ingest
    /// continues where it stopped), a published dataset attaches frozen,
    /// exactly like [`Msg::Attach`]. Must precede any ingest; mode,
    /// `log_u`, and shard identity must agree with the saved state.
    /// Answered with [`Msg::StateAck`] naming the resumed id.
    Resume {
        /// Durable name of the checkpoint or published dataset.
        dataset_id: String,
    },
    /// Ask the server for its live metrics snapshot (ops, not protocol:
    /// the answer is advisory operator telemetry, never verified data).
    /// Answered with [`Msg::StatsReply`]. A v4-compatible extension — the
    /// tag is new but nothing existing changed encoding, so older peers
    /// refuse it explicitly as a bad tag instead of misparsing.
    Stats,
    /// Adopt this causal trace context for the session (ops, not
    /// protocol): subsequent server-side spans and flight-recorder dumps
    /// join trace `trace_id` as children of the verifier's `parent_span`,
    /// so one sharded query exports as a single span tree. Advisory
    /// telemetry with no reply; sent only when client-side tracing is on.
    /// A v4-compatible extension like [`Msg::Stats`] — the tag is new but
    /// nothing existing changed encoding, so older peers refuse it
    /// explicitly as a bad tag instead of misparsing.
    TraceContext {
        /// The verifier-minted 64-bit id of the whole trace.
        trace_id: u64,
        /// The verifier-side span the server's work nests under.
        parent_span: u64,
    },
    /// Open a query *and* reveal the sum-check challenge prefix
    /// `r_1, …, r_{d−1}` in one frame (v5): the prover walks every round
    /// locally and answers with a single [`Msg::Proof`], collapsing the
    /// `O(log u)` interactive round trips into one. The last coordinate
    /// `r_d` stays secret — the final check still evaluates `g_d` there
    /// against the verifier's streamed LDE value.
    QueryOneShot {
        /// Which aggregate query to answer (self-join, range-sum,
        /// range-count).
        query: Query,
        /// The revealed challenge prefix, length `log_u − 1`.
        challenges: Vec<F>,
    },
    /// The verifier accepted the current query's proof.
    Accept,
    /// The verifier rejected; the payload says why (the prover lost).
    Reject(Rejection),
    /// End of session; the prover may close the connection.
    Bye,

    // ----- prover → verifier -----
    /// The prover's claimed answer to an aggregate query, as a field
    /// element (the LDE-checked value the sum-check will bind).
    ClaimedValue(F),
    /// A sum-check round polynomial, as `degree + 1` evaluations.
    RoundPoly(Vec<F>),
    /// The claimed nonzero entries of a sub-vector query.
    SubVectorAnswer(SubVectorAnswer<F>),
    /// Sibling hashes answering a [`Msg::SubVectorRound`].
    SubVectorReply(RoundReply<F>),
    /// One level of the heavy-hitters skeleton.
    HhDisclosure(LevelDisclosure<F>),
    /// A claimed predecessor/successor key (`None` = no such key).
    KeyClaim(Option<u64>),
    /// Confirms a [`Msg::Publish`] or [`Msg::Attach`] (v3), echoing the
    /// dataset id the session is now bound to.
    DatasetAck {
        /// The dataset the session now serves.
        dataset_id: String,
    },
    /// Confirms a [`Msg::SaveState`] or [`Msg::Resume`] (v4), listing the
    /// durable dataset ids now on the server's disk (for `SaveState`: the
    /// full enumeration; for `Resume`: the one resumed id).
    StateAck {
        /// Durable dataset ids, sorted.
        dataset_ids: Vec<String>,
    },
    /// The server's metrics snapshot answering [`Msg::Stats`]: the same
    /// JSON document the `--metrics-addr` listener serves at `/stats`.
    /// Advisory and unauthenticated, like [`Msg::Cost`].
    StatsReply {
        /// JSON snapshot of the server's metrics registry.
        json: String,
    },
    /// The complete one-shot sum-check proof answering a
    /// [`Msg::QueryOneShot`] (v5): claimed output, every round polynomial,
    /// and the prover's transcript digest over the query context and proof
    /// body. The verifier replays the hash chain and runs all round checks
    /// deferred (see `sip_core::sumcheck::oneshot`).
    Proof {
        /// The claimed query output `Σ_{x∈[ℓ]} g_1(x)`.
        claimed: F,
        /// Round polynomials `g_1, …, g_d`, each as `degree + 1`
        /// evaluations.
        rounds: Vec<Vec<F>>,
        /// 32-byte transcript digest sealing the proof to its context.
        digest: [u8; 32],
    },
    /// The prover's own cumulative cost accounting for the connection,
    /// sent in reply to [`Msg::Bye`] (advisory; the verifier keeps its own
    /// books).
    Cost(CostReport),
    /// The prover cannot continue (bad state, internal error). Human
    /// readable; never trusted.
    Error(String),
}

impl<F> Msg<F> {
    /// A short stable name, used in `UnexpectedMessage` errors.
    pub fn name(&self) -> &'static str {
        match self {
            Msg::Ingest(_) => "ingest",
            Msg::EndStream => "end-stream",
            Msg::Query(_) => "query",
            Msg::Challenge(_) => "challenge",
            Msg::SubVectorRound(_) => "subvector-round",
            Msg::HhKeys { .. } => "hh-keys",
            Msg::ShardHello(_) => "shard-hello",
            Msg::BroadcastChallenge { .. } => "broadcast-challenge",
            Msg::Publish { .. } => "publish",
            Msg::Attach { .. } => "attach",
            Msg::SaveState { .. } => "save-state",
            Msg::Resume { .. } => "resume",
            Msg::DatasetAck { .. } => "dataset-ack",
            Msg::StateAck { .. } => "state-ack",
            Msg::Stats => "stats",
            Msg::TraceContext { .. } => "trace-context",
            Msg::StatsReply { .. } => "stats-reply",
            Msg::QueryOneShot { .. } => "query-oneshot",
            Msg::Proof { .. } => "proof",
            Msg::Accept => "accept",
            Msg::Reject(_) => "reject",
            Msg::Bye => "bye",
            Msg::ClaimedValue(_) => "claimed-value",
            Msg::RoundPoly(_) => "round-poly",
            Msg::SubVectorAnswer(_) => "subvector-answer",
            Msg::SubVectorReply(_) => "subvector-reply",
            Msg::HhDisclosure(_) => "hh-disclosure",
            Msg::KeyClaim(_) => "key-claim",
            Msg::Cost(_) => "cost",
            Msg::Error(_) => "error",
        }
    }
}

const TAG_INGEST: u8 = 0x01;
const TAG_END_STREAM: u8 = 0x02;
const TAG_QUERY: u8 = 0x03;
const TAG_CHALLENGE: u8 = 0x04;
const TAG_SUBVECTOR_ROUND: u8 = 0x05;
const TAG_HH_KEYS: u8 = 0x06;
const TAG_ACCEPT: u8 = 0x07;
const TAG_REJECT: u8 = 0x08;
const TAG_BYE: u8 = 0x09;
const TAG_SHARD_HELLO: u8 = 0x0A;
const TAG_BROADCAST_CHALLENGE: u8 = 0x0B;
const TAG_PUBLISH: u8 = 0x0C;
const TAG_ATTACH: u8 = 0x0D;
const TAG_SAVE_STATE: u8 = 0x0E;
const TAG_RESUME: u8 = 0x0F;
const TAG_STATS: u8 = 0x10;
const TAG_TRACE_CONTEXT: u8 = 0x11;
const TAG_QUERY_ONESHOT: u8 = 0x12;
const TAG_CLAIMED_VALUE: u8 = 0x81;
const TAG_ROUND_POLY: u8 = 0x82;
const TAG_SUBVECTOR_ANSWER: u8 = 0x83;
const TAG_SUBVECTOR_REPLY: u8 = 0x84;
const TAG_HH_DISCLOSURE: u8 = 0x85;
const TAG_KEY_CLAIM: u8 = 0x86;
const TAG_COST: u8 = 0x87;
const TAG_ERROR: u8 = 0x88;
const TAG_DATASET_ACK: u8 = 0x89;
const TAG_STATE_ACK: u8 = 0x8A;
const TAG_STATS_REPLY: u8 = 0x8B;
const TAG_PROOF: u8 = 0x8C;

/// Upper bound on the sum-check round count a decoder accepts in a
/// [`Msg::QueryOneShot`] challenge prefix or a [`Msg::Proof`] frame —
/// comfortably above the servers' `MAX_LOG_U` (40) yet small enough that a
/// forged count cannot drive a large allocation.
pub const MAX_PROOF_ROUNDS: usize = 64;

/// Refuses round counts beyond [`MAX_PROOF_ROUNDS`].
fn bounded_rounds(n: usize) -> Result<(), WireError> {
    if n > MAX_PROOF_ROUNDS {
        return Err(WireError::CountTooLarge {
            count: n,
            have: MAX_PROOF_ROUNDS,
        });
    }
    Ok(())
}

impl<F: PrimeField> WireCodec for Msg<F> {
    fn encode(&self, w: &mut Writer) {
        match self {
            Msg::Ingest(ups) => {
                w.u8(TAG_INGEST).count(ups.len());
                for up in ups {
                    up.encode(w);
                }
            }
            Msg::EndStream => {
                w.u8(TAG_END_STREAM);
            }
            Msg::Query(q) => {
                w.u8(TAG_QUERY);
                q.encode(w);
            }
            Msg::Challenge(x) => {
                w.u8(TAG_CHALLENGE).field(*x);
            }
            Msg::SubVectorRound(req) => {
                w.u8(TAG_SUBVECTOR_ROUND);
                req.encode(w);
            }
            Msg::HhKeys { level, r, s } => {
                w.u8(TAG_HH_KEYS).u32(*level).field(*r).field(*s);
            }
            Msg::ShardHello(spec) => {
                w.u8(TAG_SHARD_HELLO);
                spec.encode(w);
            }
            Msg::BroadcastChallenge { round, challenge } => {
                w.u8(TAG_BROADCAST_CHALLENGE).u32(*round).field(*challenge);
            }
            Msg::Publish { dataset_id } => {
                w.u8(TAG_PUBLISH).string(dataset_id);
            }
            Msg::Attach { dataset_id } => {
                w.u8(TAG_ATTACH).string(dataset_id);
            }
            Msg::SaveState { dataset_id } => {
                w.u8(TAG_SAVE_STATE).string(dataset_id);
            }
            Msg::Resume { dataset_id } => {
                w.u8(TAG_RESUME).string(dataset_id);
            }
            Msg::DatasetAck { dataset_id } => {
                w.u8(TAG_DATASET_ACK).string(dataset_id);
            }
            Msg::StateAck { dataset_ids } => {
                w.u8(TAG_STATE_ACK).count(dataset_ids.len());
                for id in dataset_ids {
                    w.string(id);
                }
            }
            Msg::Stats => {
                w.u8(TAG_STATS);
            }
            Msg::TraceContext {
                trace_id,
                parent_span,
            } => {
                w.u8(TAG_TRACE_CONTEXT).u64(*trace_id).u64(*parent_span);
            }
            Msg::StatsReply { json } => {
                w.u8(TAG_STATS_REPLY).string(json);
            }
            Msg::QueryOneShot { query, challenges } => {
                w.u8(TAG_QUERY_ONESHOT);
                query.encode(w);
                w.count(challenges.len());
                for &c in challenges {
                    w.field(c);
                }
            }
            Msg::Proof {
                claimed,
                rounds,
                digest,
            } => {
                w.u8(TAG_PROOF).field(*claimed).count(rounds.len());
                for g in rounds {
                    w.count(g.len());
                    for &e in g {
                        w.field(e);
                    }
                }
                w.raw(digest);
            }
            Msg::Accept => {
                w.u8(TAG_ACCEPT);
            }
            Msg::Reject(rej) => {
                w.u8(TAG_REJECT);
                rej.encode(w);
            }
            Msg::Bye => {
                w.u8(TAG_BYE);
            }
            Msg::ClaimedValue(x) => {
                w.u8(TAG_CLAIMED_VALUE).field(*x);
            }
            Msg::RoundPoly(evals) => {
                w.u8(TAG_ROUND_POLY).count(evals.len());
                for &e in evals {
                    w.field(e);
                }
            }
            Msg::SubVectorAnswer(ans) => {
                w.u8(TAG_SUBVECTOR_ANSWER);
                ans.encode(w);
            }
            Msg::SubVectorReply(rep) => {
                w.u8(TAG_SUBVECTOR_REPLY);
                rep.encode(w);
            }
            Msg::HhDisclosure(disc) => {
                w.u8(TAG_HH_DISCLOSURE);
                disc.encode(w);
            }
            Msg::KeyClaim(k) => {
                w.u8(TAG_KEY_CLAIM).option(*k, |w, v| {
                    w.u64(v);
                });
            }
            Msg::Cost(c) => {
                w.u8(TAG_COST);
                c.encode(w);
            }
            Msg::Error(e) => {
                w.u8(TAG_ERROR).string(e);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(match r.u8()? {
            TAG_INGEST => Msg::Ingest(r.seq(16, Update::decode)?),
            TAG_END_STREAM => Msg::EndStream,
            TAG_QUERY => Msg::Query(Query::decode(r)?),
            TAG_CHALLENGE => Msg::Challenge(r.field()?),
            TAG_SUBVECTOR_ROUND => Msg::SubVectorRound(RoundRequest::decode(r)?),
            TAG_HH_KEYS => Msg::HhKeys {
                level: r.u32()?,
                r: r.field()?,
                s: r.field()?,
            },
            TAG_SHARD_HELLO => Msg::ShardHello(ShardSpec::decode(r)?),
            TAG_BROADCAST_CHALLENGE => Msg::BroadcastChallenge {
                round: r.u32()?,
                challenge: r.field()?,
            },
            TAG_PUBLISH => Msg::Publish {
                dataset_id: r.string()?,
            },
            TAG_ATTACH => Msg::Attach {
                dataset_id: r.string()?,
            },
            TAG_SAVE_STATE => Msg::SaveState {
                dataset_id: r.string()?,
            },
            TAG_RESUME => Msg::Resume {
                dataset_id: r.string()?,
            },
            TAG_DATASET_ACK => Msg::DatasetAck {
                dataset_id: r.string()?,
            },
            TAG_STATE_ACK => Msg::StateAck {
                dataset_ids: r.seq(4, |r| r.string())?,
            },
            TAG_STATS => Msg::Stats,
            TAG_TRACE_CONTEXT => Msg::TraceContext {
                trace_id: r.u64()?,
                parent_span: r.u64()?,
            },
            TAG_STATS_REPLY => Msg::StatsReply { json: r.string()? },
            TAG_QUERY_ONESHOT => {
                let query = Query::decode(r)?;
                let challenges = r.seq(field_width::<F>(), |r| r.field())?;
                bounded_rounds(challenges.len())?;
                Msg::QueryOneShot { query, challenges }
            }
            TAG_PROOF => {
                let claimed = r.field()?;
                let n = r.count(4 + field_width::<F>())?;
                bounded_rounds(n)?;
                let mut rounds = Vec::with_capacity(n);
                for _ in 0..n {
                    rounds.push(r.seq(field_width::<F>(), |r| r.field())?);
                }
                let digest: [u8; 32] = r.raw(32)?.try_into().unwrap();
                Msg::Proof {
                    claimed,
                    rounds,
                    digest,
                }
            }
            TAG_ACCEPT => Msg::Accept,
            TAG_REJECT => Msg::Reject(Rejection::decode(r)?),
            TAG_BYE => Msg::Bye,
            TAG_CLAIMED_VALUE => Msg::ClaimedValue(r.field()?),
            TAG_ROUND_POLY => Msg::RoundPoly(r.seq(field_width::<F>(), |r| r.field())?),
            TAG_SUBVECTOR_ANSWER => Msg::SubVectorAnswer(SubVectorAnswer::decode(r)?),
            TAG_SUBVECTOR_REPLY => Msg::SubVectorReply(RoundReply::decode(r)?),
            TAG_HH_DISCLOSURE => Msg::HhDisclosure(LevelDisclosure::decode(r)?),
            TAG_KEY_CLAIM => Msg::KeyClaim(r.option(|r| r.u64())?),
            TAG_COST => Msg::Cost(CostReport::decode(r)?),
            TAG_ERROR => Msg::Error(r.string()?),
            tag => {
                return Err(WireError::BadTag {
                    context: "message",
                    tag,
                })
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sip_core::heavy_hitters::DisclosedNode;
    use sip_field::Fp61;

    fn f(x: u64) -> Fp61 {
        Fp61::from_u64(x)
    }

    fn roundtrip(msg: Msg<Fp61>) {
        let bytes = msg.to_bytes();
        assert_eq!(
            Msg::<Fp61>::from_bytes(&bytes).unwrap(),
            msg,
            "{}",
            msg.name()
        );
    }

    #[test]
    fn every_variant_roundtrips() {
        roundtrip(Msg::Ingest(vec![
            Update::new(0, 1),
            Update::new(u64::MAX, -5),
        ]));
        roundtrip(Msg::EndStream);
        roundtrip(Msg::Query(Query::SelfJoin));
        roundtrip(Msg::Query(Query::RangeSum { l: 3, r: 900 }));
        roundtrip(Msg::Query(Query::RangeCount { l: 0, r: 0 }));
        roundtrip(Msg::Query(Query::Report { l: 7, r: 8 }));
        roundtrip(Msg::Query(Query::Heavy { threshold: 42 }));
        roundtrip(Msg::Query(Query::Predecessor { q: 11 }));
        roundtrip(Msg::Query(Query::Successor { q: 12 }));
        roundtrip(Msg::Challenge(f(999)));
        roundtrip(Msg::SubVectorRound(RoundRequest {
            level: 3,
            challenge: f(17),
            left: Some(4),
            right: None,
        }));
        roundtrip(Msg::HhKeys {
            level: 2,
            r: f(5),
            s: f(6),
        });
        roundtrip(Msg::ShardHello(ShardSpec::new(3, 8)));
        roundtrip(Msg::BroadcastChallenge {
            round: 7,
            challenge: f(424242),
        });
        roundtrip(Msg::Publish {
            dataset_id: "trades-2026-07".into(),
        });
        roundtrip(Msg::Attach {
            dataset_id: String::new(),
        });
        roundtrip(Msg::SaveState {
            dataset_id: "checkpoint-α".into(),
        });
        roundtrip(Msg::Resume {
            dataset_id: "checkpoint-α".into(),
        });
        roundtrip(Msg::StateAck {
            dataset_ids: vec![],
        });
        roundtrip(Msg::StateAck {
            dataset_ids: vec!["a".into(), "trades-2026-07".into()],
        });
        roundtrip(Msg::DatasetAck {
            dataset_id: "δatasets-are-utf8 ✓".into(),
        });
        roundtrip(Msg::Stats);
        roundtrip(Msg::TraceContext {
            trace_id: 0xDEAD_BEEF_CAFE_F00D,
            parent_span: 7,
        });
        roundtrip(Msg::TraceContext {
            trace_id: 1,
            parent_span: 0,
        });
        roundtrip(Msg::StatsReply {
            json: "{\"counters\": {}}".into(),
        });
        roundtrip(Msg::StatsReply {
            json: String::new(),
        });
        roundtrip(Msg::QueryOneShot {
            query: Query::SelfJoin,
            challenges: vec![f(1), f(2), f(3)],
        });
        roundtrip(Msg::QueryOneShot {
            query: Query::RangeSum { l: 9, r: 200 },
            challenges: vec![],
        });
        roundtrip(Msg::Proof {
            claimed: f(55),
            rounds: vec![vec![f(1), f(2), f(3)], vec![f(4), f(5), f(6)]],
            digest: [7u8; 32],
        });
        roundtrip(Msg::Proof {
            claimed: f(0),
            rounds: vec![],
            digest: [0u8; 32],
        });
        roundtrip(Msg::Accept);
        roundtrip(Msg::Reject(Rejection::RootMismatch));
        roundtrip(Msg::Reject(Rejection::blame(
            5,
            Rejection::RoundSumMismatch { round: 3 },
        )));
        roundtrip(Msg::Bye);
        roundtrip(Msg::ClaimedValue(f(123)));
        roundtrip(Msg::RoundPoly(vec![f(1), f(2), f(3)]));
        roundtrip(Msg::RoundPoly(vec![]));
        roundtrip(Msg::SubVectorAnswer(SubVectorAnswer {
            entries: vec![(3, f(9)), (5, f(1))],
        }));
        roundtrip(Msg::SubVectorReply(RoundReply {
            left: None,
            right: Some(f(7)),
        }));
        roundtrip(Msg::HhDisclosure(LevelDisclosure {
            level: 1,
            nodes: vec![
                DisclosedNode {
                    index: 0,
                    count: 10,
                    hash: None,
                },
                DisclosedNode {
                    index: 9,
                    count: 1,
                    hash: Some(f(77)),
                },
            ],
        }));
        roundtrip(Msg::KeyClaim(None));
        roundtrip(Msg::KeyClaim(Some(31337)));
        roundtrip(Msg::Cost(CostReport {
            rounds: 1,
            p_to_v_words: 2,
            v_to_p_words: 3,
            verifier_space_words: 4,
        }));
        roundtrip(Msg::Error("session state does not allow this".into()));
    }

    #[test]
    fn unknown_tag_rejected() {
        assert!(matches!(
            Msg::<Fp61>::from_bytes(&[0x40]).unwrap_err(),
            WireError::BadTag {
                context: "message",
                tag: 0x40
            }
        ));
    }

    #[test]
    fn truncated_message_rejected() {
        let msg = Msg::RoundPoly(vec![f(1), f(2), f(3)]);
        let bytes = msg.to_bytes();
        for cut in 0..bytes.len() {
            let err = Msg::<Fp61>::from_bytes(&bytes[..cut]);
            assert!(err.is_err(), "cut at {cut} decoded");
        }
    }

    #[test]
    fn truncated_proof_rejected() {
        let msg = Msg::Proof {
            claimed: f(55),
            rounds: vec![vec![f(1), f(2), f(3)], vec![f(4), f(5), f(6)]],
            digest: [9u8; 32],
        };
        let bytes = msg.to_bytes();
        for cut in 0..bytes.len() {
            assert!(
                Msg::<Fp61>::from_bytes(&bytes[..cut]).is_err(),
                "cut at {cut} decoded"
            );
        }
    }

    #[test]
    fn proof_round_count_is_bounded() {
        // A frame claiming more rounds than MAX_PROOF_ROUNDS is refused
        // before any allocation, even if the byte budget would allow it.
        let inner = vec![f(0); 1];
        let rounds = vec![inner; MAX_PROOF_ROUNDS + 1];
        let msg = Msg::Proof {
            claimed: f(1),
            rounds,
            digest: [0u8; 32],
        };
        let bytes = msg.to_bytes();
        assert!(matches!(
            Msg::<Fp61>::from_bytes(&bytes).unwrap_err(),
            WireError::CountTooLarge { .. }
        ));
        let msg = Msg::QueryOneShot {
            query: Query::SelfJoin,
            challenges: vec![f(0); MAX_PROOF_ROUNDS + 1],
        };
        let bytes = msg.to_bytes();
        assert!(matches!(
            Msg::<Fp61>::from_bytes(&bytes).unwrap_err(),
            WireError::CountTooLarge { .. }
        ));
    }

    #[test]
    fn extended_message_rejected() {
        let mut bytes = Msg::Challenge(f(4)).to_bytes();
        bytes.push(0);
        assert_eq!(
            Msg::<Fp61>::from_bytes(&bytes).unwrap_err(),
            WireError::TrailingBytes { extra: 1 }
        );
    }
}

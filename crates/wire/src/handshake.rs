//! The connection-opening handshake: magic, version, field, session mode.
//!
//! The first frame on a connection is always a [`Hello`]; the server
//! answers with a [`HelloAck`] on agreement or an error frame (then closes)
//! on mismatch. Nothing field-typed crosses the wire before both sides have
//! agreed on [`crate::PROTOCOL_VERSION`] and the field.

use sip_core::channel::Transport;
use sip_field::PrimeField;

use crate::codec::{Reader, WireCodec, Writer};
use crate::error::WireError;
use crate::{FieldId, MAGIC, PROTOCOL_VERSION};

/// What kind of session the client wants.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum SessionMode {
    /// A raw update stream; queries run over the streamed frequency vector.
    RawStream,
    /// A key-value store session: updates are encoded puts
    /// (`δ = value + 1`), queries are the kv-store family.
    KvStore,
}

impl SessionMode {
    fn to_byte(self) -> u8 {
        match self {
            SessionMode::RawStream => 0,
            SessionMode::KvStore => 1,
        }
    }

    fn from_byte(b: u8) -> Result<Self, WireError> {
        match b {
            0 => Ok(SessionMode::RawStream),
            1 => Ok(SessionMode::KvStore),
            tag => Err(WireError::BadTag {
                context: "session mode",
                tag,
            }),
        }
    }
}

/// The client's opening frame.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Hello {
    /// Wire-format version the client speaks.
    pub version: u16,
    /// The field the session will run over.
    pub field: FieldId,
    /// Raw stream or kv-store semantics.
    pub mode: SessionMode,
    /// Universe size exponent: keys live in `[2^log_u]`.
    pub log_u: u32,
}

impl Hello {
    /// A hello for the current version over field `F`.
    pub fn new<F: PrimeField>(mode: SessionMode, log_u: u32) -> Self {
        Hello {
            version: PROTOCOL_VERSION,
            field: FieldId::of::<F>(),
            mode,
            log_u,
        }
    }
}

impl WireCodec for Hello {
    fn encode(&self, w: &mut Writer) {
        for b in MAGIC {
            w.u8(b);
        }
        w.u16(self.version)
            .u8(self.field.to_byte())
            .u8(self.mode.to_byte())
            .u32(self.log_u);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let mut magic = [0u8; 4];
        for b in &mut magic {
            *b = r.u8()?;
        }
        if magic != MAGIC {
            return Err(WireError::BadMagic);
        }
        // The version is checked by the *caller* (server_handshake), which
        // knows how to answer politely; decoding only parses.
        Ok(Hello {
            version: r.u16()?,
            field: FieldId::from_byte(r.u8()?)?,
            mode: SessionMode::from_byte(r.u8()?)?,
            log_u: r.u32()?,
        })
    }
}

/// The server's reply to an acceptable [`Hello`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct HelloAck {
    /// The version the server will speak (equal to the client's).
    pub version: u16,
}

impl WireCodec for HelloAck {
    fn encode(&self, w: &mut Writer) {
        for b in MAGIC {
            w.u8(b);
        }
        w.u16(self.version);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let mut magic = [0u8; 4];
        for b in &mut magic {
            *b = r.u8()?;
        }
        if magic != MAGIC {
            return Err(WireError::BadMagic);
        }
        Ok(HelloAck { version: r.u16()? })
    }
}

/// Parses the `magic ‖ version` prefix every handshake frame starts with,
/// *before* any exact-length decoding: a peer speaking a future wire
/// version may well send a longer frame, and the one diagnostic that must
/// survive cross-version contact is [`WireError::VersionMismatch`].
fn handshake_prefix(frame: &[u8]) -> Result<u16, WireError> {
    let mut r = Reader::new(frame);
    let mut magic = [0u8; 4];
    for b in &mut magic {
        *b = r.u8()?;
    }
    if magic != MAGIC {
        return Err(WireError::BadMagic);
    }
    r.u16()
}

/// Client side: sends `hello`, awaits the ack, verifies the version echo.
pub fn client_handshake<T: Transport>(
    transport: &mut T,
    hello: Hello,
) -> Result<HelloAck, WireError> {
    transport.send_frame(&hello.to_bytes())?;
    let frame = transport.recv_frame()?;
    let ack = match handshake_prefix(&frame) {
        Ok(version) if version != hello.version => {
            // Version skew beats every other diagnostic — a future-version
            // ack may be longer than ours and must not surface as a length
            // error.
            return Err(WireError::VersionMismatch {
                ours: hello.version,
                theirs: version,
            });
        }
        Ok(_) => HelloAck::from_bytes(&frame)?,
        Err(e) => {
            // A refusing server answers with an `Error` message instead of
            // an ack; surface its explanation rather than a parse error.
            // (The Error variant's encoding is field-independent, so any
            // field parameter decodes it.)
            if let Ok(crate::msg::Msg::Error(detail)) =
                crate::msg::Msg::<sip_field::Fp61>::from_bytes(&frame)
            {
                return Err(WireError::Refused { detail });
            }
            return Err(e);
        }
    };
    Ok(ack)
}

/// Server side: awaits a [`Hello`], enforces version and field agreement
/// for field `F`, acks on success.
///
/// On mismatch the offending detail is returned as the error **after** the
/// ack slot is filled with nothing — the caller should close the
/// connection; the client will observe the close as a transport error.
pub fn server_handshake<F: PrimeField, T: Transport>(
    transport: &mut T,
) -> Result<Hello, WireError> {
    let frame = transport.recv_frame()?;
    let version = handshake_prefix(&frame)?;
    if version != PROTOCOL_VERSION {
        // Checked on the prefix, before the exact-length decode: a newer
        // client's Hello may carry fields we do not know, and it deserves
        // a version mismatch, not a trailing-bytes parse error.
        return Err(WireError::VersionMismatch {
            ours: PROTOCOL_VERSION,
            theirs: version,
        });
    }
    let hello = Hello::from_bytes(&frame)?;
    let ours = FieldId::of::<F>();
    if hello.field != ours {
        return Err(WireError::FieldMismatch {
            ours: ours.to_byte(),
            theirs: hello.field.to_byte(),
        });
    }
    transport.send_frame(
        &HelloAck {
            version: hello.version,
        }
        .to_bytes(),
    )?;
    Ok(hello)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sip_core::channel::InMemoryTransport;
    use sip_field::{Fp127, Fp61};

    #[test]
    fn hello_roundtrip() {
        let hello = Hello::new::<Fp61>(SessionMode::KvStore, 20);
        assert_eq!(Hello::from_bytes(&hello.to_bytes()).unwrap(), hello);
        assert_eq!(hello.field, FieldId::Fp61);
        let hello = Hello::new::<Fp127>(SessionMode::RawStream, 8);
        assert_eq!(Hello::from_bytes(&hello.to_bytes()).unwrap(), hello);
        assert_eq!(hello.field, FieldId::Fp127);
    }

    #[test]
    fn happy_path() {
        let (mut client, mut server) = InMemoryTransport::pair();
        let hello = Hello::new::<Fp61>(SessionMode::RawStream, 10);
        let join = std::thread::spawn(move || {
            let got = server_handshake::<Fp61, _>(&mut server).unwrap();
            assert_eq!(got, hello);
        });
        let ack = client_handshake(&mut client, hello).unwrap();
        assert_eq!(ack.version, PROTOCOL_VERSION);
        join.join().unwrap();
    }

    #[test]
    fn version_mismatch_detected() {
        let (mut client, mut server) = InMemoryTransport::pair();
        let mut hello = Hello::new::<Fp61>(SessionMode::RawStream, 10);
        hello.version = PROTOCOL_VERSION + 1;
        client.send_frame(&hello.to_bytes()).unwrap();
        let err = server_handshake::<Fp61, _>(&mut server).unwrap_err();
        assert_eq!(
            err,
            WireError::VersionMismatch {
                ours: PROTOCOL_VERSION,
                theirs: PROTOCOL_VERSION + 1
            }
        );
    }

    #[test]
    fn longer_future_hello_still_gets_version_mismatch() {
        // A hypothetical v2 Hello carries extra fields this version does
        // not know; the refusal must name the version skew, not the length.
        let (mut client, mut server) = InMemoryTransport::pair();
        let mut hello = Hello::new::<Fp61>(SessionMode::RawStream, 10);
        hello.version = PROTOCOL_VERSION + 1;
        let mut frame = hello.to_bytes();
        frame.extend_from_slice(&[0xAA; 4]); // the imagined v2 extension
        client.send_frame(&frame).unwrap();
        let err = server_handshake::<Fp61, _>(&mut server).unwrap_err();
        assert_eq!(
            err,
            WireError::VersionMismatch {
                ours: PROTOCOL_VERSION,
                theirs: PROTOCOL_VERSION + 1
            }
        );
    }

    #[test]
    fn v3_client_gets_version_error_not_length_error() {
        // A pre-durability (v3) client sends a well-formed v3 Hello. The
        // v4 server must name the version skew before any parse
        // diagnostics.
        let (mut client, mut server) = InMemoryTransport::pair();
        let mut hello = Hello::new::<Fp61>(SessionMode::KvStore, 12);
        hello.version = 3;
        client.send_frame(&hello.to_bytes()).unwrap();
        let err = server_handshake::<Fp61, _>(&mut server).unwrap_err();
        assert_eq!(
            err,
            WireError::VersionMismatch {
                ours: PROTOCOL_VERSION,
                theirs: 3
            }
        );
    }

    #[test]
    fn v4_client_gets_version_error_not_length_error() {
        // A pre-one-shot (v4) client sends a well-formed v4 Hello. The v5
        // server must name the version skew before any parse diagnostics —
        // a v4 peer has no idea what a `QueryOneShot` frame is, so the
        // refusal has to happen here, explicitly.
        let (mut client, mut server) = InMemoryTransport::pair();
        let mut hello = Hello::new::<Fp61>(SessionMode::KvStore, 12);
        hello.version = 4;
        client.send_frame(&hello.to_bytes()).unwrap();
        let err = server_handshake::<Fp61, _>(&mut server).unwrap_err();
        assert_eq!(
            err,
            WireError::VersionMismatch {
                ours: PROTOCOL_VERSION,
                theirs: 4
            }
        );
    }

    #[test]
    fn v5_client_gets_version_error_not_length_error() {
        // A pre-replica (v5) client sends a well-formed v5 Hello. The v6
        // server must name the version skew before any parse diagnostics
        // — a v5 peer encodes `ShardSpec` without the replica word, so
        // anything later would surface as a confusing length error.
        let (mut client, mut server) = InMemoryTransport::pair();
        let mut hello = Hello::new::<Fp61>(SessionMode::KvStore, 12);
        hello.version = 5;
        client.send_frame(&hello.to_bytes()).unwrap();
        let err = server_handshake::<Fp61, _>(&mut server).unwrap_err();
        assert_eq!(
            err,
            WireError::VersionMismatch {
                ours: PROTOCOL_VERSION,
                theirs: 5
            }
        );
    }

    #[test]
    fn v1_client_gets_version_error_not_length_error() {
        // A pre-cluster (v1) client sends a well-formed v1 Hello. The v2
        // server must name the version skew — the one diagnostic that has
        // to survive cross-version contact — not whatever parse error the
        // old layout happens to trigger.
        let (mut client, mut server) = InMemoryTransport::pair();
        let mut hello = Hello::new::<Fp61>(SessionMode::RawStream, 10);
        hello.version = 1;
        client.send_frame(&hello.to_bytes()).unwrap();
        let err = server_handshake::<Fp61, _>(&mut server).unwrap_err();
        assert_eq!(
            err,
            WireError::VersionMismatch {
                ours: PROTOCOL_VERSION,
                theirs: 1
            }
        );
    }

    #[test]
    fn field_mismatch_detected() {
        let (mut client, mut server) = InMemoryTransport::pair();
        let hello = Hello::new::<Fp127>(SessionMode::RawStream, 10);
        client.send_frame(&hello.to_bytes()).unwrap();
        let err = server_handshake::<Fp61, _>(&mut server).unwrap_err();
        assert_eq!(
            err,
            WireError::FieldMismatch {
                ours: 61,
                theirs: 127
            }
        );
    }

    #[test]
    fn bad_magic_detected() {
        let (mut client, mut server) = InMemoryTransport::pair();
        client.send_frame(b"HTTP/1.1 GET /").unwrap();
        let err = server_handshake::<Fp61, _>(&mut server).unwrap_err();
        assert_eq!(err, WireError::BadMagic);
    }

    #[test]
    fn ack_version_echo_checked() {
        let (mut client, mut server) = InMemoryTransport::pair();
        server
            .send_frame(&HelloAck { version: 77 }.to_bytes())
            .unwrap();
        let err = client_handshake(&mut client, Hello::new::<Fp61>(SessionMode::RawStream, 4))
            .unwrap_err();
        assert_eq!(
            err,
            WireError::VersionMismatch {
                ours: PROTOCOL_VERSION,
                theirs: 77
            }
        );
    }
}

//! A typed message channel over any [`Transport`]: one [`Msg`] per frame.

use sip_core::channel::{Transport, TransportStats};
use sip_field::PrimeField;

use crate::codec::WireCodec;
use crate::error::WireError;
use crate::msg::Msg;

/// Sends and receives [`Msg`] frames over a transport.
///
/// Decoding failures are *receiver-side verdicts*: the peer's bytes did not
/// parse, which the protocol layer treats exactly like a false claim.
pub struct MsgChannel<T: Transport> {
    transport: T,
}

impl<T: Transport> MsgChannel<T> {
    /// Wraps a transport (typically right after the handshake).
    pub fn new(transport: T) -> Self {
        MsgChannel { transport }
    }

    /// The underlying transport, e.g. for handshakes or timeouts.
    pub fn transport_mut(&mut self) -> &mut T {
        &mut self.transport
    }

    /// Consumes the channel, returning the transport.
    pub fn into_transport(self) -> T {
        self.transport
    }

    /// Sends one message as one frame.
    pub fn send<F: PrimeField>(&mut self, msg: &Msg<F>) -> Result<(), WireError> {
        self.transport.send_frame(&msg.to_bytes())?;
        Ok(())
    }

    /// Receives and decodes the next frame.
    pub fn recv<F: PrimeField>(&mut self) -> Result<Msg<F>, WireError> {
        let frame = self.transport.recv_frame()?;
        Msg::from_bytes(&frame)
    }

    /// Traffic counters of the underlying transport.
    pub fn stats(&self) -> TransportStats {
        self.transport.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::Query;
    use sip_core::channel::InMemoryTransport;
    use sip_field::Fp61;

    #[test]
    fn typed_roundtrip_over_transport() {
        let (a, b) = InMemoryTransport::pair();
        let mut ca = MsgChannel::new(a);
        let mut cb = MsgChannel::new(b);
        ca.send(&Msg::Query::<Fp61>(Query::SelfJoin)).unwrap();
        ca.send(&Msg::Challenge(Fp61::from_u64(5))).unwrap();
        assert_eq!(cb.recv::<Fp61>().unwrap(), Msg::Query(Query::SelfJoin));
        assert_eq!(
            cb.recv::<Fp61>().unwrap(),
            Msg::Challenge(Fp61::from_u64(5))
        );
        assert_eq!(ca.stats().frames_sent, 2);
        assert!(cb.stats().bytes_received > 0);
    }

    #[test]
    fn garbage_frame_is_decode_error() {
        let (mut a, b) = InMemoryTransport::pair();
        a.send_frame(&[0xFF, 0xFF]).unwrap();
        let mut cb = MsgChannel::new(b);
        assert!(matches!(
            cb.recv::<Fp61>().unwrap_err(),
            WireError::BadTag { .. }
        ));
    }
}

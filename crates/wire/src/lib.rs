//! `sip-wire`: the versioned binary wire format of the outsourced setting.
//!
//! The paper's model is explicitly distributed — "the data owner sends
//! (key, value) pairs to the cloud to be stored" — so prover and verifier
//! need an agreed encoding of everything that crosses between them:
//! stream updates, queries, sum-check round polynomials, challenges,
//! sub-vector answers and sibling hashes, heavy-hitter disclosures, claimed
//! outputs, rejections, and cost reports.
//!
//! ## Format
//!
//! * Every message is one frame (see [`sip_core::channel::Transport`]):
//!   a 1-byte tag followed by the variant's fields.
//! * Integers are **little-endian fixed width** (`u32` lengths, `u64`
//!   indices, `i64` deltas, two's complement).
//! * Field elements are canonical residues in fixed `⌈BITS/8⌉`-byte
//!   little-endian form — 8 bytes for `Fp61`, 16 for `Fp127`. Decoding
//!   **rejects non-canonical encodings** (`x ≥ p`): a malicious prover must
//!   not have two byte strings for one field element, and the tamper suite
//!   relies on every flipped bit being either detected here or falsified by
//!   the protocol algebra.
//! * Sequences are a `u32` count followed by the items; decoders bound the
//!   count by the bytes actually present before allocating.
//! * A frame must be consumed exactly: trailing bytes are an error.
//!
//! ## Versioning
//!
//! Connections open with a [`handshake::Hello`] carrying magic bytes,
//! [`PROTOCOL_VERSION`], the field, and the session mode; the server answers
//! with [`handshake::HelloAck`] or closes. Any mismatch is an explicit
//! [`WireError::VersionMismatch`] / [`WireError::FieldMismatch`], never a
//! silent misparse.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channel;
pub mod codec;
pub mod error;
pub mod handshake;
pub mod msg;

pub use channel::MsgChannel;
pub use codec::{Reader, WireCodec};
pub use error::WireError;
pub use handshake::{client_handshake, server_handshake, Hello, HelloAck, SessionMode};
pub use msg::{Msg, Query, ShardSpec, MAX_PROOF_ROUNDS};

/// Version of the wire format this crate speaks. Bump on any change to the
/// encodings in [`msg`] or [`handshake`].
///
/// History: **v2** added the sharded-fleet messages ([`Msg::ShardHello`],
/// [`Msg::BroadcastChallenge`]) and the `Blame` rejection encoding; **v3**
/// added the multi-tenant dataset messages ([`Msg::Publish`],
/// [`Msg::Attach`], [`Msg::DatasetAck`]) so one ingested stream can serve
/// many verifier sessions; **v4** added the durability messages
/// ([`Msg::SaveState`], [`Msg::StateAck`], [`Msg::Resume`]) so a client can
/// ask the server to persist/enumerate datasets and a crashed session can
/// resume from disk. A v1–v3 peer is refused at the handshake with an
/// explicit [`WireError::VersionMismatch`] — the skew is named before any
/// length or parse diagnostics, never a misparse.
///
/// Still v4: the ops messages ([`Msg::Stats`], [`Msg::StatsReply`]) are a
/// compatible extension — new tags only, no existing encoding changed. An
/// older v4 peer that never sends `Stats` is unaffected; one that receives
/// it rejects the unknown tag explicitly rather than misparsing.
///
/// **v5** added the one-shot proof messages ([`Msg::QueryOneShot`],
/// [`Msg::Proof`]) and the `TranscriptMismatch` rejection encoding: a
/// verifier can reveal the sum-check challenge prefix with the query and
/// receive the whole proof — claimed output, every round polynomial, a
/// 32-byte transcript digest — in one frame instead of `O(log u)` round
/// trips. Unlike the ops tags this changes the query protocol itself
/// (servers must answer a new query form), so the version is bumped and a
/// v4 peer is refused at the handshake with an explicit
/// [`WireError::VersionMismatch`] — the skew is named before any length or
/// parse diagnostics.
///
/// **v6** added replica identity to [`ShardSpec`] (a third `u32` in the
/// shard hello) and the fault-tolerance rejections (`Io`,
/// `ReplicaDivergence`, `InvalidConfig`): a logical shard may be served by
/// N replica provers fed the identical sub-stream, the client names which
/// replica it believes it is addressing, and divergence between replicas
/// is indicted with a typed rejection. The `ShardSpec` encoding grew, so a
/// v5 peer is refused at the handshake with an explicit
/// [`WireError::VersionMismatch`].
pub const PROTOCOL_VERSION: u16 = 6;

/// The magic bytes opening every handshake frame.
pub const MAGIC: [u8; 4] = *b"SIPW";

/// Identifies the field a session runs over (checked at handshake; both
/// sides must agree before any field element crosses the wire).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum FieldId {
    /// `Z_p`, `p = 2^61 − 1` (8-byte elements).
    Fp61,
    /// `Z_p`, `p = 2^127 − 1` (16-byte elements).
    Fp127,
}

impl FieldId {
    /// The id for a concrete field type, decided by its modulus width.
    pub fn of<F: sip_field::PrimeField>() -> Self {
        if F::BITS <= 61 {
            FieldId::Fp61
        } else {
            FieldId::Fp127
        }
    }

    /// The id as its wire byte (also used by `sip-durable` snapshot
    /// envelopes, so one field has one id everywhere).
    pub fn to_byte(self) -> u8 {
        match self {
            FieldId::Fp61 => 61,
            FieldId::Fp127 => 127,
        }
    }

    /// Parses a wire byte back into an id.
    pub fn from_byte(b: u8) -> Result<Self, WireError> {
        match b {
            61 => Ok(FieldId::Fp61),
            127 => Ok(FieldId::Fp127),
            _ => Err(WireError::BadTag {
                context: "field id",
                tag: b,
            }),
        }
    }
}

//! Decoding and session-level wire errors.

use core::fmt;

use sip_core::channel::TransportError;

/// Why a frame failed to decode (or a handshake failed to complete).
///
/// Every variant is an *attributable* failure: malformed traffic from the
/// peer, a protocol-version disagreement, or a transport fault. The
/// verifier maps all of them to a [`sip_core::Rejection`] — a prover who
/// controls the bytes on the wire must never crash the verifier, only lose.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The frame ended before the announced content did.
    Truncated {
        /// Bytes the decoder needed next.
        needed: usize,
        /// Bytes remaining in the frame.
        have: usize,
    },
    /// The frame decoded completely but bytes were left over.
    TrailingBytes {
        /// Number of undecoded bytes at the end of the frame.
        extra: usize,
    },
    /// A field element encoding was `≥ p` (non-canonical).
    NonCanonicalField,
    /// An unknown enum tag.
    BadTag {
        /// What was being decoded.
        context: &'static str,
        /// The offending byte.
        tag: u8,
    },
    /// A declared count exceeds what the frame could possibly hold.
    CountTooLarge {
        /// The declared element count.
        count: usize,
        /// Bytes remaining in the frame.
        have: usize,
    },
    /// A string field was not valid UTF-8.
    InvalidUtf8,
    /// The handshake magic bytes were wrong (not a sip-wire peer).
    BadMagic,
    /// The peer speaks a different wire-format version.
    VersionMismatch {
        /// Our version.
        ours: u16,
        /// The peer's version.
        theirs: u16,
    },
    /// The peer runs the session over a different field.
    FieldMismatch {
        /// Our field id byte.
        ours: u8,
        /// The peer's field id byte.
        theirs: u8,
    },
    /// The peer answered the handshake with an explicit refusal.
    Refused {
        /// The peer's stated reason.
        detail: String,
    },
    /// A well-formed message arrived that the current protocol state does
    /// not allow (e.g. a round polynomial before any query).
    UnexpectedMessage {
        /// What the receiver was waiting for.
        expected: &'static str,
        /// A short name of what arrived.
        got: &'static str,
    },
    /// The underlying transport failed.
    Transport(TransportError),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { needed, have } => {
                write!(
                    f,
                    "truncated frame: needed {needed} more bytes, have {have}"
                )
            }
            WireError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after a complete message")
            }
            WireError::NonCanonicalField => {
                write!(f, "non-canonical field element (residue ≥ p)")
            }
            WireError::BadTag { context, tag } => {
                write!(f, "unknown tag {tag:#04x} while decoding {context}")
            }
            WireError::CountTooLarge { count, have } => {
                write!(
                    f,
                    "declared count {count} cannot fit in {have} remaining bytes"
                )
            }
            WireError::InvalidUtf8 => write!(f, "string field is not valid UTF-8"),
            WireError::BadMagic => write!(f, "bad handshake magic (not a sip-wire peer)"),
            WireError::VersionMismatch { ours, theirs } => {
                write!(
                    f,
                    "wire version mismatch: we speak {ours}, peer speaks {theirs}"
                )
            }
            WireError::FieldMismatch { ours, theirs } => {
                write!(f, "field mismatch: we use Fp{ours}, peer uses Fp{theirs}")
            }
            WireError::Refused { detail } => {
                write!(f, "peer refused the handshake: {detail}")
            }
            WireError::UnexpectedMessage { expected, got } => {
                write!(f, "unexpected message: wanted {expected}, got {got}")
            }
            WireError::Transport(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<TransportError> for WireError {
    fn from(e: TransportError) -> Self {
        WireError::Transport(e)
    }
}

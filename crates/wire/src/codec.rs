//! The primitive codec: little-endian integers, canonical field elements,
//! sequences, strings — and [`WireCodec`] impls for the shared protocol
//! data types ([`Update`], [`CostReport`], [`Rejection`], the sub-vector and
//! heavy-hitter message bodies).

use sip_core::error::{IoFault, Rejection};
use sip_core::heavy_hitters::{DisclosedNode, LevelDisclosure};
use sip_core::subvector::{RoundReply, RoundRequest, SubVectorAnswer};
use sip_core::CostReport;
use sip_field::PrimeField;
use sip_streaming::Update;

use crate::error::WireError;

/// Number of bytes one element of `F` occupies on the wire.
pub fn field_width<F: PrimeField>() -> usize {
    (F::BITS as usize).div_ceil(8)
}

/// A cursor over a received frame.
pub struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    /// Starts reading `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len()
    }

    /// Fails unless the frame was consumed exactly.
    pub fn finish(self) -> Result<(), WireError> {
        if self.buf.is_empty() {
            Ok(())
        } else {
            Err(WireError::TrailingBytes {
                extra: self.buf.len(),
            })
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.buf.len() < n {
            return Err(WireError::Truncated {
                needed: n,
                have: self.buf.len(),
            });
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head)
    }

    /// One byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// `u16` little-endian.
    pub fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// `u32` little-endian.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// `u64` little-endian.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// `i64` little-endian two's complement.
    pub fn i64(&mut self) -> Result<i64, WireError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// `u128` little-endian.
    pub fn u128(&mut self) -> Result<u128, WireError> {
        Ok(u128::from_le_bytes(self.take(16)?.try_into().unwrap()))
    }

    /// A canonical field element; rejects residues `≥ p`.
    pub fn field<F: PrimeField>(&mut self) -> Result<F, WireError> {
        let bytes = self.take(field_width::<F>())?;
        let mut wide = [0u8; 16];
        wide[..bytes.len()].copy_from_slice(bytes);
        let x = u128::from_le_bytes(wide);
        if x >= F::MODULUS {
            return Err(WireError::NonCanonicalField);
        }
        Ok(F::from_u128(x))
    }

    /// Exactly `n` raw bytes (fixed-width payloads such as digests).
    pub fn raw(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        self.take(n)
    }

    /// A `u32` count, validated against the bytes actually present so a
    /// forged count cannot trigger a huge allocation.
    pub fn count(&mut self, min_item_bytes: usize) -> Result<usize, WireError> {
        let n = self.u32()? as usize;
        let need = n.saturating_mul(min_item_bytes.max(1));
        if need > self.remaining() {
            return Err(WireError::CountTooLarge {
                count: n,
                have: self.remaining(),
            });
        }
        Ok(n)
    }

    /// A length-prefixed UTF-8 string.
    pub fn string(&mut self) -> Result<String, WireError> {
        let n = self.count(1)?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::InvalidUtf8)
    }

    /// A bool encoded as `0`/`1` (other bytes rejected).
    pub fn bool(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(WireError::BadTag {
                context: "bool",
                tag,
            }),
        }
    }

    /// `Option<T>` via a presence byte.
    pub fn option<T>(
        &mut self,
        read: impl FnOnce(&mut Self) -> Result<T, WireError>,
    ) -> Result<Option<T>, WireError> {
        if self.bool()? {
            Ok(Some(read(self)?))
        } else {
            Ok(None)
        }
    }

    /// A counted sequence.
    pub fn seq<T>(
        &mut self,
        min_item_bytes: usize,
        mut read: impl FnMut(&mut Self) -> Result<T, WireError>,
    ) -> Result<Vec<T>, WireError> {
        let n = self.count(min_item_bytes)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(read(self)?);
        }
        Ok(out)
    }
}

/// The frame builder (thin wrapper over `Vec<u8>` with symmetric methods).
#[derive(Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty frame.
    pub fn new() -> Self {
        Writer::default()
    }

    /// The finished frame.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// One byte.
    pub fn u8(&mut self, x: u8) -> &mut Self {
        self.buf.push(x);
        self
    }

    /// `u16` little-endian.
    pub fn u16(&mut self, x: u16) -> &mut Self {
        self.buf.extend_from_slice(&x.to_le_bytes());
        self
    }

    /// `u32` little-endian.
    pub fn u32(&mut self, x: u32) -> &mut Self {
        self.buf.extend_from_slice(&x.to_le_bytes());
        self
    }

    /// `u64` little-endian.
    pub fn u64(&mut self, x: u64) -> &mut Self {
        self.buf.extend_from_slice(&x.to_le_bytes());
        self
    }

    /// `i64` little-endian two's complement.
    pub fn i64(&mut self, x: i64) -> &mut Self {
        self.buf.extend_from_slice(&x.to_le_bytes());
        self
    }

    /// `u128` little-endian.
    pub fn u128(&mut self, x: u128) -> &mut Self {
        self.buf.extend_from_slice(&x.to_le_bytes());
        self
    }

    /// A canonical field element in `⌈BITS/8⌉` bytes.
    pub fn field<F: PrimeField>(&mut self, x: F) -> &mut Self {
        let bytes = x.to_u128().to_le_bytes();
        self.buf.extend_from_slice(&bytes[..field_width::<F>()]);
        self
    }

    /// Raw bytes, no length prefix (fixed-width payloads such as digests).
    pub fn raw(&mut self, bytes: &[u8]) -> &mut Self {
        self.buf.extend_from_slice(bytes);
        self
    }

    /// A sequence count.
    pub fn count(&mut self, n: usize) -> &mut Self {
        debug_assert!(n <= u32::MAX as usize);
        self.u32(n as u32)
    }

    /// A length-prefixed UTF-8 string.
    pub fn string(&mut self, s: &str) -> &mut Self {
        self.count(s.len());
        self.buf.extend_from_slice(s.as_bytes());
        self
    }

    /// A bool as `0`/`1`.
    pub fn bool(&mut self, b: bool) -> &mut Self {
        self.u8(b as u8)
    }

    /// `Option<T>` via a presence byte.
    pub fn option<T: Copy>(&mut self, x: Option<T>, write: impl FnOnce(&mut Self, T)) -> &mut Self {
        match x {
            Some(v) => {
                self.bool(true);
                write(self, v);
            }
            None => {
                self.bool(false);
            }
        }
        self
    }
}

/// Types with a self-contained wire encoding.
///
/// Field-element-bearing types are generic over `F`, so the same structure
/// serialises as 8-byte words over `Fp61` and 16-byte words over `Fp127`.
pub trait WireCodec: Sized {
    /// Appends the encoding of `self` to `w`.
    fn encode(&self, w: &mut Writer);

    /// Decodes one value from `r`.
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError>;

    /// Encodes `self` as a standalone byte string.
    fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        self.encode(&mut w);
        w.into_bytes()
    }

    /// Decodes a standalone byte string, requiring full consumption.
    fn from_bytes(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(bytes);
        let v = Self::decode(&mut r)?;
        r.finish()?;
        Ok(v)
    }
}

impl WireCodec for Update {
    fn encode(&self, w: &mut Writer) {
        w.u64(self.index).i64(self.delta);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Update {
            index: r.u64()?,
            delta: r.i64()?,
        })
    }
}

impl WireCodec for CostReport {
    fn encode(&self, w: &mut Writer) {
        w.u64(self.rounds as u64)
            .u64(self.p_to_v_words as u64)
            .u64(self.v_to_p_words as u64)
            .u64(self.verifier_space_words as u64);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(CostReport {
            rounds: r.u64()? as usize,
            p_to_v_words: r.u64()? as usize,
            v_to_p_words: r.u64()? as usize,
            verifier_space_words: r.u64()? as usize,
        })
    }
}

/// Known sub-protocol names, so [`Rejection::SubProtocol`] (which carries a
/// `&'static str`) survives a decode round-trip without leaking
/// attacker-controlled strings.
const KNOWN_SUBPROTOCOLS: &[&str] = &[
    "heavy-hitters",
    "range-count",
    "range-sum",
    "sub-vector",
    "self-join",
    "f2",
    "index",
    "remote",
];

fn intern_subprotocol(name: &str) -> &'static str {
    KNOWN_SUBPROTOCOLS
        .iter()
        .find(|&&k| k == name)
        .copied()
        .unwrap_or("unknown-subprotocol")
}

/// Maximum nesting of [`Rejection::SubProtocol`] a decoder accepts. Honest
/// rejections nest once or twice; without a bound, a hostile peer could
/// stack-overflow the decoder (an abort, not a catchable panic) with a few
/// hundred kilobytes of nested tag-7 frames.
const MAX_REJECTION_DEPTH: usize = 8;

fn decode_rejection(r: &mut Reader<'_>, depth: usize) -> Result<Rejection, WireError> {
    Ok(match r.u8()? {
        0 => Rejection::WrongMessageLength {
            round: r.u64()? as usize,
            expected: r.u64()? as usize,
            got: r.u64()? as usize,
        },
        1 => Rejection::RoundSumMismatch {
            round: r.u64()? as usize,
        },
        2 => Rejection::FinalCheckFailed,
        3 => Rejection::RootMismatch,
        4 => Rejection::MalformedAnswer {
            detail: r.string()?,
        },
        5 => Rejection::AnswerTooLarge {
            limit: r.u64()? as usize,
            got: r.u64()? as usize,
        },
        6 => Rejection::StructuralCheckFailed {
            detail: r.string()?,
        },
        7 => {
            if depth == 0 {
                return Err(WireError::BadTag {
                    context: "rejection (sub-protocol nesting too deep)",
                    tag: 7,
                });
            }
            let name = intern_subprotocol(&r.string()?);
            let cause = decode_rejection(r, depth - 1)?;
            Rejection::SubProtocol {
                name,
                cause: Box::new(cause),
            }
        }
        8 => {
            if depth == 0 {
                return Err(WireError::BadTag {
                    context: "rejection (blame nesting too deep)",
                    tag: 8,
                });
            }
            Rejection::Blame {
                shard_id: r.u32()?,
                cause: Box::new(decode_rejection(r, depth - 1)?),
            }
        }
        9 => Rejection::TranscriptMismatch,
        10 => Rejection::Io {
            fault: match r.u8()? {
                0 => IoFault::Refused,
                1 => IoFault::TimedOut,
                2 => IoFault::Closed,
                3 => IoFault::Other,
                tag => {
                    return Err(WireError::BadTag {
                        context: "io fault",
                        tag,
                    })
                }
            },
            detail: r.string()?,
        },
        11 => {
            if depth == 0 {
                return Err(WireError::BadTag {
                    context: "rejection (divergence nesting too deep)",
                    tag: 11,
                });
            }
            let shard = r.u32()?;
            let n = r.count(4)?;
            let replicas = (0..n).map(|_| r.u32()).collect::<Result<Vec<_>, _>>()?;
            Rejection::ReplicaDivergence {
                shard,
                replicas,
                cause: Box::new(decode_rejection(r, depth - 1)?),
            }
        }
        12 => Rejection::InvalidConfig {
            detail: r.string()?,
        },
        tag => {
            return Err(WireError::BadTag {
                context: "rejection",
                tag,
            })
        }
    })
}

impl WireCodec for Rejection {
    fn encode(&self, w: &mut Writer) {
        match self {
            Rejection::WrongMessageLength {
                round,
                expected,
                got,
            } => {
                w.u8(0)
                    .u64(*round as u64)
                    .u64(*expected as u64)
                    .u64(*got as u64);
            }
            Rejection::RoundSumMismatch { round } => {
                w.u8(1).u64(*round as u64);
            }
            Rejection::FinalCheckFailed => {
                w.u8(2);
            }
            Rejection::RootMismatch => {
                w.u8(3);
            }
            Rejection::MalformedAnswer { detail } => {
                w.u8(4).string(detail);
            }
            Rejection::AnswerTooLarge { limit, got } => {
                w.u8(5).u64(*limit as u64).u64(*got as u64);
            }
            Rejection::StructuralCheckFailed { detail } => {
                w.u8(6).string(detail);
            }
            Rejection::SubProtocol { name, cause } => {
                w.u8(7).string(name);
                cause.encode(w);
            }
            Rejection::Blame { shard_id, cause } => {
                w.u8(8).u32(*shard_id);
                cause.encode(w);
            }
            Rejection::TranscriptMismatch => {
                w.u8(9);
            }
            Rejection::Io { fault, detail } => {
                let tag = match fault {
                    IoFault::Refused => 0u8,
                    IoFault::TimedOut => 1,
                    IoFault::Closed => 2,
                    IoFault::Other => 3,
                };
                w.u8(10).u8(tag).string(detail);
            }
            Rejection::ReplicaDivergence {
                shard,
                replicas,
                cause,
            } => {
                w.u8(11).u32(*shard).count(replicas.len());
                for rep in replicas {
                    w.u32(*rep);
                }
                cause.encode(w);
            }
            Rejection::InvalidConfig { detail } => {
                w.u8(12).string(detail);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        decode_rejection(r, MAX_REJECTION_DEPTH)
    }
}

impl<F: PrimeField> WireCodec for SubVectorAnswer<F> {
    fn encode(&self, w: &mut Writer) {
        w.count(self.entries.len());
        for &(i, v) in &self.entries {
            w.u64(i).field(v);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let entries = r.seq(8 + field_width::<F>(), |r| Ok((r.u64()?, r.field::<F>()?)))?;
        Ok(SubVectorAnswer { entries })
    }
}

impl<F: PrimeField> WireCodec for RoundRequest<F> {
    fn encode(&self, w: &mut Writer) {
        w.u32(self.level).field(self.challenge);
        w.option(self.left, |w, v| {
            w.u64(v);
        });
        w.option(self.right, |w, v| {
            w.u64(v);
        });
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(RoundRequest {
            level: r.u32()?,
            challenge: r.field()?,
            left: r.option(|r| r.u64())?,
            right: r.option(|r| r.u64())?,
        })
    }
}

impl<F: PrimeField> WireCodec for RoundReply<F> {
    fn encode(&self, w: &mut Writer) {
        w.option(self.left, |w, v| {
            w.field(v);
        });
        w.option(self.right, |w, v| {
            w.field(v);
        });
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(RoundReply {
            left: r.option(|r| r.field())?,
            right: r.option(|r| r.field())?,
        })
    }
}

impl<F: PrimeField> WireCodec for DisclosedNode<F> {
    fn encode(&self, w: &mut Writer) {
        w.u64(self.index).u64(self.count);
        w.option(self.hash, |w, v| {
            w.field(v);
        });
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(DisclosedNode {
            index: r.u64()?,
            count: r.u64()?,
            hash: r.option(|r| r.field())?,
        })
    }
}

impl<F: PrimeField> WireCodec for LevelDisclosure<F> {
    fn encode(&self, w: &mut Writer) {
        w.u32(self.level);
        w.count(self.nodes.len());
        for node in &self.nodes {
            node.encode(w);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(LevelDisclosure {
            level: r.u32()?,
            nodes: r.seq(8 + 8 + 1, DisclosedNode::decode)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sip_field::{Fp127, Fp61};

    #[test]
    fn integer_roundtrip_and_endianness() {
        let mut w = Writer::new();
        w.u8(7)
            .u16(0x1234)
            .u32(0xDEAD_BEEF)
            .u64(42)
            .i64(-42)
            .u128(1 << 100);
        let bytes = w.into_bytes();
        assert_eq!(bytes[1..3], [0x34, 0x12], "little-endian");
        let mut r = Reader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 0x1234);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), 42);
        assert_eq!(r.i64().unwrap(), -42);
        assert_eq!(r.u128().unwrap(), 1 << 100);
        r.finish().unwrap();
    }

    #[test]
    fn field_widths() {
        assert_eq!(field_width::<Fp61>(), 8);
        assert_eq!(field_width::<Fp127>(), 16);
        let mut w = Writer::new();
        w.field(Fp61::from_u64(5)).field(Fp127::from_u64(6));
        assert_eq!(w.into_bytes().len(), 24);
    }

    #[test]
    fn non_canonical_field_rejected() {
        use sip_field::fp61::P61;
        for bad in [P61, P61 + 1, u64::MAX] {
            let bytes = bad.to_le_bytes();
            let mut r = Reader::new(&bytes);
            assert_eq!(
                r.field::<Fp61>().unwrap_err(),
                WireError::NonCanonicalField,
                "{bad}"
            );
        }
        // Largest canonical residue decodes fine.
        let bytes = (P61 - 1).to_le_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.field::<Fp61>().unwrap(), -Fp61::ONE);
    }

    #[test]
    fn truncation_reported() {
        let mut w = Writer::new();
        w.u64(7);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes[..5]);
        assert_eq!(
            r.u64().unwrap_err(),
            WireError::Truncated { needed: 8, have: 5 }
        );
    }

    #[test]
    fn trailing_bytes_reported() {
        let bytes = [0u8; 3];
        let mut r = Reader::new(&bytes);
        r.u8().unwrap();
        assert_eq!(
            r.finish().unwrap_err(),
            WireError::TrailingBytes { extra: 2 }
        );
    }

    #[test]
    fn forged_count_cannot_allocate() {
        let mut w = Writer::new();
        w.u32(u32::MAX); // count says 4 billion entries …
        w.u64(1); // … frame holds one
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let err = r.seq(16, |r| r.u64()).unwrap_err();
        assert!(matches!(err, WireError::CountTooLarge { .. }), "{err:?}");
    }

    #[test]
    fn bool_strictness() {
        let mut r = Reader::new(&[2]);
        assert!(matches!(
            r.bool().unwrap_err(),
            WireError::BadTag {
                context: "bool",
                tag: 2
            }
        ));
    }

    #[test]
    fn rejection_roundtrip_including_nested() {
        let cases = vec![
            Rejection::WrongMessageLength {
                round: 3,
                expected: 3,
                got: 9,
            },
            Rejection::RoundSumMismatch { round: 1 },
            Rejection::FinalCheckFailed,
            Rejection::RootMismatch,
            Rejection::MalformedAnswer {
                detail: "entry 7 out of order".into(),
            },
            Rejection::AnswerTooLarge { limit: 10, got: 11 },
            Rejection::StructuralCheckFailed {
                detail: "count 5 != children 2 + 2".into(),
            },
            Rejection::in_subprotocol("heavy-hitters", Rejection::RootMismatch),
            Rejection::blame(2, Rejection::FinalCheckFailed),
            Rejection::blame(
                0,
                Rejection::in_subprotocol("range-sum", Rejection::RootMismatch),
            ),
            Rejection::TranscriptMismatch,
            Rejection::blame(1, Rejection::TranscriptMismatch),
            Rejection::io(IoFault::Refused, "connection refused"),
            Rejection::io(IoFault::TimedOut, "read timed out"),
            Rejection::io(IoFault::Closed, ""),
            Rejection::io(IoFault::Other, "interrupted"),
            Rejection::blame(3, Rejection::io(IoFault::Closed, "reset by peer")),
            Rejection::ReplicaDivergence {
                shard: 2,
                replicas: vec![1, 0],
                cause: Box::new(Rejection::TranscriptMismatch),
            },
            Rejection::ReplicaDivergence {
                shard: 0,
                replicas: vec![],
                cause: Box::new(Rejection::FinalCheckFailed),
            },
            Rejection::InvalidConfig {
                detail: "5 shards do not divide a 2^4 universe".into(),
            },
        ];
        for rej in cases {
            let bytes = rej.to_bytes();
            assert_eq!(Rejection::from_bytes(&bytes).unwrap(), rej);
        }
    }

    #[test]
    fn hostile_divergence_nesting_is_bounded() {
        // ReplicaDivergence shares the nesting budget with SubProtocol and
        // Blame: towers of tag-11 frames are refused, not recursed into.
        let mut bytes = Vec::new();
        for _ in 0..100_000 {
            bytes.push(11u8); // ReplicaDivergence tag
            bytes.extend_from_slice(&0u32.to_le_bytes()); // shard
            bytes.extend_from_slice(&0u32.to_le_bytes()); // empty replica list
        }
        bytes.push(3); // innermost: RootMismatch
        let err = Rejection::from_bytes(&bytes).unwrap_err();
        assert!(matches!(err, WireError::BadTag { tag: 11, .. }), "{err:?}");
    }

    #[test]
    fn hostile_blame_nesting_is_bounded() {
        // Blame shares the SubProtocol nesting budget: deep towers of tag-8
        // frames must be refused, not recursed into.
        let mut bytes = Vec::new();
        for _ in 0..100_000 {
            bytes.push(8u8); // Blame tag
            bytes.extend_from_slice(&0u32.to_le_bytes()); // shard id
        }
        bytes.push(3); // innermost: RootMismatch
        let err = Rejection::from_bytes(&bytes).unwrap_err();
        assert!(matches!(err, WireError::BadTag { tag: 8, .. }), "{err:?}");
    }

    #[test]
    fn hostile_rejection_nesting_is_bounded() {
        // 100k nested SubProtocol tags with empty names: without the depth
        // bound this overflows the decoder's stack (process abort).
        let mut bytes = Vec::new();
        for _ in 0..100_000 {
            bytes.push(7u8); // SubProtocol tag
            bytes.extend_from_slice(&0u32.to_le_bytes()); // empty name
        }
        bytes.push(3); // innermost: RootMismatch
        let err = Rejection::from_bytes(&bytes).unwrap_err();
        assert!(matches!(err, WireError::BadTag { tag: 7, .. }), "{err:?}");
        // Honest nesting depths still decode.
        let mut nested = Rejection::RootMismatch;
        for _ in 0..4 {
            nested = Rejection::in_subprotocol("heavy-hitters", nested);
        }
        assert_eq!(Rejection::from_bytes(&nested.to_bytes()).unwrap(), nested);
    }

    #[test]
    fn unknown_subprotocol_name_is_interned_safely() {
        let rej = Rejection::SubProtocol {
            name: "remote",
            cause: Box::new(Rejection::FinalCheckFailed),
        };
        let mut bytes = rej.to_bytes();
        // Overwrite the name "remote" with an attacker-chosen string of the
        // same length.
        let pos = bytes.len() - "remote".len() - 1;
        bytes[pos..pos + 6].copy_from_slice(b"eeeeee");
        let back = Rejection::from_bytes(&bytes).unwrap();
        assert!(matches!(
            back,
            Rejection::SubProtocol {
                name: "unknown-subprotocol",
                ..
            }
        ));
    }
}

//! Property tests of the wire format: `decode(encode(m)) = m` for every
//! message type over both fields, and decoding never accepts a frame that
//! encoding could not have produced (truncations, trailing bytes,
//! non-canonical field elements, forged counts, version skew).

use proptest::prelude::*;
use sip_core::error::Rejection;
use sip_core::heavy_hitters::{DisclosedNode, LevelDisclosure};
use sip_core::subvector::{RoundReply, RoundRequest, SubVectorAnswer};
use sip_core::CostReport;
use sip_field::{Fp127, Fp61, PrimeField};
use sip_streaming::Update;
use sip_wire::{Hello, Msg, Query, SessionMode, ShardSpec, WireCodec, WireError, PROTOCOL_VERSION};

fn f61(x: u64) -> Fp61 {
    Fp61::from_u64(x)
}

fn f127(x: u128) -> Fp127 {
    Fp127::from_u128(x)
}

/// Builds one message of each shape from raw integers, exercising every
/// variant with arbitrary payloads.
fn messages<F: PrimeField>(
    raw: &[(u64, i64)],
    scalar: F,
    level: u32,
    opt: Option<u64>,
) -> Vec<Msg<F>> {
    let fe = |x: u64| F::from_u64(x);
    vec![
        Msg::Ingest(raw.iter().map(|&(i, d)| Update::new(i, d)).collect()),
        Msg::EndStream,
        Msg::Query(Query::SelfJoin),
        Msg::Query(Query::RangeSum {
            l: raw.first().map_or(0, |&(i, _)| i),
            r: raw.last().map_or(7, |&(i, _)| i),
        }),
        Msg::Query(Query::Heavy {
            threshold: level as u64 + 1,
        }),
        Msg::Challenge(scalar),
        Msg::SubVectorRound(RoundRequest {
            level,
            challenge: scalar,
            left: opt,
            right: opt.map(|x| x.wrapping_add(2)),
        }),
        Msg::HhKeys {
            level,
            r: scalar,
            s: scalar + F::ONE,
        },
        Msg::ShardHello(ShardSpec::with_replica(
            level,
            level.saturating_add(1),
            level ^ 1,
        )),
        Msg::BroadcastChallenge {
            round: level,
            challenge: scalar,
        },
        Msg::Publish {
            dataset_id: format!("ds-{level}"),
        },
        Msg::Attach {
            dataset_id: format!("ds-{}", opt.unwrap_or(0)),
        },
        Msg::DatasetAck {
            dataset_id: String::from_utf8(vec![b'a'; level as usize]).unwrap(),
        },
        Msg::SaveState {
            dataset_id: format!("ck-{level}"),
        },
        Msg::Resume {
            dataset_id: format!("ck-{}", opt.unwrap_or(1)),
        },
        Msg::StateAck {
            dataset_ids: raw.iter().map(|&(i, _)| format!("d{i}")).collect(),
        },
        Msg::Accept,
        Msg::Reject(Rejection::in_subprotocol(
            "range-count",
            Rejection::AnswerTooLarge {
                limit: level as usize,
                got: level as usize + 1,
            },
        )),
        Msg::Reject(Rejection::blame(
            level,
            Rejection::RoundSumMismatch {
                round: level as usize + 1,
            },
        )),
        Msg::Bye,
        Msg::ClaimedValue(scalar),
        Msg::RoundPoly(raw.iter().map(|&(i, _)| fe(i)).collect()),
        Msg::SubVectorAnswer(SubVectorAnswer {
            entries: raw.iter().map(|&(i, d)| (i, fe(d as u64))).collect(),
        }),
        Msg::SubVectorReply(RoundReply {
            left: opt.map(fe),
            right: None,
        }),
        Msg::HhDisclosure(LevelDisclosure {
            level,
            nodes: raw
                .iter()
                .map(|&(i, d)| DisclosedNode {
                    index: i,
                    count: d.unsigned_abs(),
                    hash: (d % 2 == 0).then(|| fe(i)),
                })
                .collect(),
        }),
        Msg::KeyClaim(opt),
        Msg::Cost(CostReport {
            rounds: level as usize,
            p_to_v_words: raw.len(),
            v_to_p_words: opt.unwrap_or(0) as usize,
            verifier_space_words: 3,
        }),
        Msg::Error("prover state machine desynchronised".into()),
    ]
}

proptest! {
    /// encode → decode is the identity for every variant, over both fields.
    #[test]
    fn all_variants_roundtrip(
        raw in prop::collection::vec((any::<u64>(), any::<i64>()), 0..12),
        x in any::<u64>(),
        wide in any::<u128>(),
        level in 0u32..64,
        opt in any::<u64>(),
    ) {
        let opt = opt.is_multiple_of(2).then_some(opt);
        for msg in messages::<Fp61>(&raw, f61(x), level, opt) {
            let bytes = msg.to_bytes();
            prop_assert_eq!(Msg::<Fp61>::from_bytes(&bytes).unwrap(), msg);
        }
        for msg in messages::<Fp127>(&raw, f127(wide), level, opt) {
            let bytes = msg.to_bytes();
            prop_assert_eq!(Msg::<Fp127>::from_bytes(&bytes).unwrap(), msg);
        }
    }

    /// No strict prefix of a valid frame decodes successfully (no message
    /// is a prefix of another's encoding, so truncation is always caught).
    #[test]
    fn truncation_never_decodes(
        raw in prop::collection::vec((any::<u64>(), any::<i64>()), 0..6),
        x in any::<u64>(),
        level in 0u32..64,
    ) {
        for msg in messages::<Fp61>(&raw, f61(x), level, Some(x)) {
            let bytes = msg.to_bytes();
            for cut in 0..bytes.len() {
                prop_assert!(
                    Msg::<Fp61>::from_bytes(&bytes[..cut]).is_err(),
                    "{} decoded from a {cut}-byte prefix of {} bytes",
                    msg.name(),
                    bytes.len()
                );
            }
        }
    }

    /// Appending any byte to a valid frame is always rejected.
    #[test]
    fn trailing_bytes_never_decode(
        raw in prop::collection::vec((any::<u64>(), any::<i64>()), 0..6),
        x in any::<u64>(),
        level in 0u32..64,
        junk in any::<u8>(),
    ) {
        for msg in messages::<Fp61>(&raw, f61(x), level, None) {
            let mut bytes = msg.to_bytes();
            bytes.push(junk);
            prop_assert!(Msg::<Fp61>::from_bytes(&bytes).is_err(), "{}", msg.name());
        }
    }

    /// Field elements decode canonically: a residue ≥ p in a challenge
    /// frame is rejected, and every accepted challenge re-encodes to the
    /// identical bytes (unique encodings).
    #[test]
    fn field_canonicity(x in any::<u64>()) {
        let mut bytes = Msg::Challenge(f61(0)).to_bytes();
        bytes[1..9].copy_from_slice(&x.to_le_bytes());
        match Msg::<Fp61>::from_bytes(&bytes) {
            Ok(Msg::Challenge(v)) => {
                prop_assert!(x < (1u64 << 61) - 1);
                prop_assert_eq!(Msg::Challenge(v).to_bytes(), bytes);
            }
            Ok(other) => prop_assert!(false, "decoded {}", other.name()),
            Err(e) => {
                prop_assert!(x >= (1u64 << 61) - 1);
                prop_assert_eq!(e, WireError::NonCanonicalField);
            }
        }
    }

    /// Hello frames: version skew and magic damage are always detected.
    #[test]
    fn hello_version_and_magic(version in any::<u16>(), corrupt in 0usize..4, log_u in 1u32..64) {
        let mut hello = Hello::new::<Fp61>(SessionMode::KvStore, log_u);
        hello.version = version;
        let bytes = hello.to_bytes();
        prop_assert_eq!(Hello::from_bytes(&bytes).unwrap(), hello);

        // Any corruption of the magic is BadMagic, regardless of version.
        let mut damaged = bytes.clone();
        damaged[corrupt] ^= 0x20;
        prop_assert_eq!(Hello::from_bytes(&damaged).unwrap_err(), WireError::BadMagic);
    }
}

/// The version gate itself (deterministic, not property-based): a peer
/// announcing any version other than ours is refused by the server side.
#[test]
fn server_refuses_other_versions() {
    use sip_core::channel::{InMemoryTransport, Transport};
    for theirs in [0u16, PROTOCOL_VERSION + 1, u16::MAX] {
        let (mut client, mut server) = InMemoryTransport::pair();
        let mut hello = Hello::new::<Fp61>(SessionMode::RawStream, 8);
        hello.version = theirs;
        client.send_frame(&hello.to_bytes()).unwrap();
        let err = sip_wire::server_handshake::<Fp61, _>(&mut server).unwrap_err();
        assert_eq!(
            err,
            WireError::VersionMismatch {
                ours: PROTOCOL_VERSION,
                theirs
            }
        );
    }
}

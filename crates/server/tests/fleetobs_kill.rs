//! Fleet observability against real `sip-prover` *processes*: a 2×2
//! replicated fleet binds ephemeral ops ports (`--metrics-addr
//! 127.0.0.1:0`), the aggregator's background scrape loop watches them,
//! and one replica is SIGKILLed with no warning. Within one scrape
//! interval its slot flips Down, its shard degrades, and the
//! availability SLO burn alert fires as an `obs` event — discovered
//! purely from the outside, by scraping, the way an operator would.

use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

use sip_fleetobs::{FleetConfig, FleetScraper, HealthPolicy, ReplicaState, ShardState, Target};

const LOG_U: u32 = 8;
const SHARDS: u32 = 2;
const REPLICAS: u32 = 2;

struct Prover {
    child: Child,
    ops_addr: String,
}

fn spawn_replica(shard: u32, replica: u32) -> Prover {
    let mut child = Command::new(env!("CARGO_BIN_EXE_sip-prover"))
        .args([
            "--listen",
            "127.0.0.1:0",
            "--metrics-addr",
            "127.0.0.1:0",
            "--shard",
            &shard.to_string(),
            "--of",
            &SHARDS.to_string(),
            "--replica",
            &replica.to_string(),
            "--log-u",
            &LOG_U.to_string(),
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("sip-prover spawns");
    // The banner advertises the actually-bound ops port (satellite (c)):
    // "sip-prover: metrics on http://ADDR/metrics (stats: /stats)".
    let stdout = child.stdout.take().unwrap();
    let mut lines = BufReader::new(stdout).lines();
    let ops_addr = loop {
        let line = lines
            .next()
            .expect("prover exited before binding its ops port")
            .expect("prover stdout readable");
        if let Some(rest) = line.split("metrics on http://").nth(1) {
            break rest
                .split("/metrics")
                .next()
                .expect("banner has an address")
                .to_string();
        }
    };
    // Drain the rest of stdout so the child never blocks on a full pipe.
    std::thread::spawn(move || for _ in lines {});
    Prover { child, ops_addr }
}

/// Polls `check` against the scraper until it passes or `wait` elapses.
fn wait_for(scraper: &FleetScraper, wait: Duration, check: impl Fn(&FleetScraper) -> bool) -> bool {
    let deadline = Instant::now() + wait;
    while Instant::now() < deadline {
        if check(scraper) {
            return true;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    check(scraper)
}

#[test]
fn sigkill_under_the_scrape_loop_flips_down_and_fires_the_availability_slo() {
    let ring = Arc::new(sip_obs::RingSink::new(512));
    sip_obs::add_sink(ring.clone());

    let mut provers = Vec::new();
    let mut targets = Vec::new();
    for s in 0..SHARDS {
        for r in 0..REPLICAS {
            let p = spawn_replica(s, r);
            targets.push(Target {
                shard: s,
                replica: r,
                addr: p.ops_addr.clone(),
            });
            provers.push(p);
        }
    }

    let interval = Duration::from_millis(250);
    let mut config = FleetConfig {
        interval,
        policy: HealthPolicy {
            stale_after_us: 5_000_000,
            down_after_misses: 1,
        },
        ..FleetConfig::default()
    };
    config.retry.op_deadline = Duration::from_millis(500);
    let scraper = FleetScraper::new(config, targets);
    let loop_handle = scraper.start();

    // The background loop alone brings every slot Up.
    assert!(
        wait_for(&scraper, Duration::from_secs(10), |s| {
            let state = s.state();
            state.rounds() >= 2
                && state
                    .targets()
                    .iter()
                    .all(|t| t.health.state() == ReplicaState::Up)
        }),
        "fleet never converged to all-Up: {:?}",
        scraper
            .state()
            .targets()
            .iter()
            .map(|t| (t.target.addr.clone(), t.health.state()))
            .collect::<Vec<_>>()
    );

    // SIGKILL shard 1 / replica 0 — no orderly shutdown, the ops port
    // just stops answering. One scrape interval later the fleet view has
    // it Down and the burn alert is firing.
    ring.take();
    let killed_round = scraper.state().rounds();
    provers[2].child.kill().expect("SIGKILL");
    let _ = provers[2].child.wait();
    let flipped = wait_for(&scraper, interval * 8, |s| {
        let state = s.state();
        state.targets()[2].health.state() == ReplicaState::Down
    });
    let rounds_taken = scraper.state().rounds().saturating_sub(killed_round);
    assert!(flipped, "killed replica never went Down");
    // Down within one *observing* round: the first full round that dialed
    // the dead port marked it (allow one in-flight round of slack).
    assert!(
        rounds_taken <= 3,
        "took {rounds_taken} rounds to notice the kill"
    );
    {
        let state = scraper.state();
        let shard_states = state.shard_states();
        assert_eq!(shard_states[1].1, ShardState::Degraded);
        assert_eq!(shard_states[0].1, ShardState::Full);
        let health = state.health_json(scraper.now_us());
        assert!(
            health.contains("\"name\": \"availability\", \"firing\": true"),
            "{health}"
        );
    }
    // And the alert + transition landed as events.
    assert!(
        wait_for(&scraper, Duration::from_secs(2), |_| {
            let events = ring.events();
            events
                .iter()
                .any(|e| e.message == "replica state changed" && e.field("to") == Some("down"))
                && events.iter().any(|e| {
                    e.message == "slo burn alert firing" && e.field("slo") == Some("availability")
                })
        }),
        "missing down-transition or SLO-firing event: {:?}",
        ring.events()
            .iter()
            .map(|e| e.message.clone())
            .collect::<Vec<_>>()
    );

    loop_handle.shutdown();
    sip_obs::clear_sinks();
    for mut p in provers {
        let _ = p.child.kill();
        let _ = p.child.wait();
    }
}

//! Crash recovery against the real `sip-prover` *process*: ingest half a
//! stream, checkpoint, `SIGKILL` the prover mid-session, restart it with
//! the same `--data-dir`, resume, finish the stream, and verify — the
//! answer must equal the ground truth computed over the whole stream.
//!
//! This is the strongest recovery claim the test suite makes: no orderly
//! shutdown, no flush-on-exit — whatever the kill leaves on disk is what
//! the write-temp-then-rename discipline left there.

use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use rand::rngs::StdRng;
use rand::SeedableRng;
use sip_core::sumcheck::f2::F2Verifier;
use sip_durable::{snapshot_from_bytes, snapshot_to_bytes};
use sip_field::{Fp61, PrimeField};
use sip_server::client::RawClient;
use sip_streaming::{workloads, FrequencyVector};

struct Prover {
    child: Child,
    addr: SocketAddr,
}

fn spawn_prover(data_dir: &std::path::Path) -> Prover {
    let mut child = Command::new(env!("CARGO_BIN_EXE_sip-prover"))
        .args([
            "--listen",
            "127.0.0.1:0",
            "--data-dir",
            data_dir.to_str().unwrap(),
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("sip-prover spawns");
    // The prover prints "… listening on ADDR" once bound; port 0 makes
    // this the only way to learn the port.
    let stdout = child.stdout.take().unwrap();
    let mut lines = BufReader::new(stdout).lines();
    let addr = loop {
        let line = lines
            .next()
            .expect("prover exited before binding")
            .expect("prover stdout readable");
        if let Some(rest) = line.split("listening on ").nth(1) {
            break rest.trim().parse().expect("printed address parses");
        }
    };
    Prover { child, addr }
}

#[test]
fn sigkill_mid_session_then_resume() {
    let data_dir =
        std::env::temp_dir().join(format!("sip-process-recovery-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&data_dir);
    std::fs::create_dir_all(&data_dir).unwrap();

    let log_u = 10;
    let stream = workloads::with_deletions(500, 1 << log_u, 0.2, 77);
    let cut = stream.len() / 2;
    let truth = FrequencyVector::from_stream(1 << log_u, &stream).self_join_size();

    // ---- Session 1: half the stream, checkpoint, SIGKILL. ----
    let mut prover = spawn_prover(&data_dir);
    let mut client: RawClient<Fp61, _> =
        RawClient::connect_with_timeout(prover.addr, log_u, Duration::from_secs(10)).unwrap();
    let mut rng = StdRng::seed_from_u64(9);
    let mut digest = F2Verifier::<Fp61>::new(log_u, &mut rng);
    digest.update_batch(&stream[..cut]);
    client.send_batch(&stream[..cut]);
    client.save_state("half-done").unwrap();
    let digest_snapshot = snapshot_to_bytes(&digest);

    // Kill -9: the process gets no chance to flush anything.
    prover.child.kill().expect("kill");
    prover.child.wait().expect("wait");
    drop(client);
    drop(digest);

    // ---- Session 2: fresh process, same data dir, resume, finish. ----
    let mut prover = spawn_prover(&data_dir);
    let mut client: RawClient<Fp61, _> =
        RawClient::connect_with_timeout(prover.addr, log_u, Duration::from_secs(10)).unwrap();
    let resumed = client.resume("half-done").unwrap();
    assert_eq!(resumed, vec!["half-done".to_string()]);
    let mut digest: F2Verifier<Fp61> = snapshot_from_bytes(&digest_snapshot).unwrap();
    digest.update_batch(&stream[cut..]);
    client.send_batch(&stream[cut..]);
    let got = client.verify_f2(digest).expect("recovered prover accepted");
    assert_eq!(got.value, Fp61::from_u128(truth as u128));
    client.bye().unwrap();

    prover.child.kill().ok();
    prover.child.wait().ok();
    let _ = std::fs::remove_dir_all(&data_dir);
}

//! Kill-a-replica, end to end, against real `sip-prover` *processes*: an
//! `S = 2 × R = 2` replicated fleet ingests a stream, every replica
//! checkpoints to its own `--data-dir`, one replica is SIGKILLed with its
//! connection open — and the next query is still answered, verified, by
//! its sibling. A replacement prover then thaws the killed replica's
//! durable checkpoint, is readmitted, and serves a verified proof itself.
//!
//! No orderly shutdown anywhere: the kill is `-9`, the fault is discovered
//! mid-query as a dead socket, and the replacement's state is whatever the
//! write-temp-then-rename discipline left on disk.

use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::process::{Child, Command, Stdio};

use rand::rngs::StdRng;
use rand::SeedableRng;
use sip_cluster::{ClusterF2Verifier, ReplicaFleet, ReplicaHealth};
use sip_core::channel::RetryPolicy;
use sip_field::{Fp61, PrimeField};
use sip_streaming::{workloads, FrequencyVector, ShardPlan};

const LOG_U: u32 = 10;
const SHARDS: u32 = 2;
const REPLICAS: u32 = 2;
const CKPT: &str = "fleet-ckpt";

struct Prover {
    child: Child,
    addr: SocketAddr,
}

fn spawn_replica(shard: u32, replica: u32, data_dir: &std::path::Path) -> Prover {
    let mut child = Command::new(env!("CARGO_BIN_EXE_sip-prover"))
        .args([
            "--listen",
            "127.0.0.1:0",
            "--shard",
            &shard.to_string(),
            "--of",
            &SHARDS.to_string(),
            "--replica",
            &replica.to_string(),
            "--log-u",
            &LOG_U.to_string(),
            "--data-dir",
            data_dir.to_str().unwrap(),
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("sip-prover spawns");
    let stdout = child.stdout.take().unwrap();
    let mut lines = BufReader::new(stdout).lines();
    let addr = loop {
        let line = lines
            .next()
            .expect("prover exited before binding")
            .expect("prover stdout readable");
        if let Some(rest) = line.split("listening on ").nth(1) {
            break rest.trim().parse().expect("printed address parses");
        }
    };
    Prover { child, addr }
}

#[test]
fn sigkill_replica_mid_query_fails_over_then_replacement_rejoins() {
    let base = std::env::temp_dir().join(format!("sip-replica-failover-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);

    // ---- A 2×2 fleet of real processes, one data dir per replica. ----
    let mut provers = Vec::new();
    let mut addrs = Vec::new();
    let mut dirs = Vec::new();
    for s in 0..SHARDS {
        for r in 0..REPLICAS {
            let dir = base.join(format!("shard{s}-replica{r}"));
            std::fs::create_dir_all(&dir).unwrap();
            let p = spawn_replica(s, r, &dir);
            addrs.push(p.addr);
            provers.push(p);
            dirs.push(dir);
        }
    }

    let stream = workloads::with_deletions(400, 1 << LOG_U, 0.2, 41);
    let truth =
        Fp61::from_u128(FrequencyVector::from_stream(1 << LOG_U, &stream).self_join_size() as u128);
    let plan = ShardPlan::new(LOG_U, SHARDS);
    let mut rng = StdRng::seed_from_u64(4);
    let mut digests: Vec<ClusterF2Verifier<Fp61>> = (0..3)
        .map(|_| ClusterF2Verifier::new(plan, &mut rng))
        .collect();
    for &up in &stream {
        for d in &mut digests {
            d.update(up);
        }
    }

    let mut fleet: ReplicaFleet<Fp61, _> =
        ReplicaFleet::connect_with_policy(&addrs, LOG_U, REPLICAS, &RetryPolicy::standard())
            .expect("fleet connects");
    fleet.send_stream(&stream);
    // Durable checkpoints everywhere *before* anything dies — this is the
    // state the replacement will thaw.
    fleet.save_state(CKPT).unwrap();
    fleet.end_stream().unwrap();

    // ---- SIGKILL replica 1 of shard 0 with its connection open. The
    // rotation makes replica 1 the next query's primary, so the kill is
    // discovered mid-query as a dead socket on the serving path. ----
    let victim_slot = 1usize; // shard 0, replica 1
    provers[victim_slot].child.kill().expect("kill -9");
    provers[victim_slot].child.wait().expect("wait");

    let got = fleet
        .verify_f2_oneshot(digests.remove(0))
        .expect("sibling covers the killed primary");
    assert_eq!(got.value, truth);
    assert_eq!(got.served_by[0], 0, "shard 0 failed over to replica 0");
    assert!(
        matches!(fleet.health(0, 1), ReplicaHealth::Faulted(_)),
        "victim is recorded as faulted"
    );

    // ---- A replacement prover on the victim's data dir thaws the durable
    // checkpoint and rejoins. ----
    let replacement = spawn_replica(0, 1, &dirs[victim_slot]);
    fleet
        .readmit(0, 1, replacement.addr, Some(CKPT))
        .expect("replacement readmitted from checkpoint");
    assert!(matches!(fleet.health(0, 1), ReplicaHealth::Live));

    // Next query: rotation samples replica 0 first — still correct.
    let got = fleet.verify_f2_oneshot(digests.remove(0)).unwrap();
    assert_eq!(got.value, truth);
    // Query after that rotates back to replica 1: the *thawed replacement*
    // serves shard 0's verified proof from resumed state.
    let got = fleet.verify_f2_oneshot(digests.remove(0)).unwrap();
    assert_eq!(got.value, truth);
    assert_eq!(
        got.served_by[0], 1,
        "the readmitted replacement serves shard 0"
    );

    fleet.bye();
    for mut p in provers {
        p.child.kill().ok();
        p.child.wait().ok();
    }
    let mut p = replacement;
    p.child.kill().ok();
    p.child.wait().ok();
    let _ = std::fs::remove_dir_all(&base);
}

//! On-disk layout of a prover's data directory.
//!
//! ```text
//! <data-dir>/
//!   manifest.sipd          id → file map (atomic rewrite on every change)
//!   ds-<fnv64(id)>.sipd    one published dataset, frozen
//!   ck-<fnv64(id)>.sipd    one named checkpoint, overwritten as it advances
//! ```
//!
//! Dataset ids are peer-chosen strings; file names are the FNV-1a hash of
//! the id, so hostile ids (path separators, `..`, 200-byte names) never
//! reach the filesystem. The manifest is the source of truth for what the
//! directory holds — stray files are ignored, and a manifest entry whose
//! file is corrupt is skipped (and reported) at load, never a crash.
//!
//! Every write is write-temp-then-rename ([`sip_durable::save_snapshot`]):
//! a kill at any instant leaves each file either old or new, whole.

use std::path::{Path, PathBuf};

use sip_durable::error::SnapshotError;
use sip_durable::{fnv1a64, Persist, SnapshotKind, FIELD_INDEPENDENT};
use sip_field::PrimeField;
use sip_kvstore::CloudStore;
use sip_streaming::FrequencyVector;
use sip_wire::codec::Writer;
use sip_wire::{Reader, ShardSpec};

use crate::registry::{Dataset, DatasetData, MAX_DATASET_ID_LEN};

/// The manifest's fixed file name inside a data directory.
pub const MANIFEST_FILE: &str = "manifest.sipd";

/// Whether a durable entry is a frozen published dataset or a live named
/// checkpoint.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum DurableKind {
    /// Published via `Msg::Publish`: immutable, attachable.
    Published,
    /// Saved via `Msg::SaveState`: resumable, overwritten as it advances.
    Checkpoint,
}

/// One manifest row.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ManifestEntry {
    /// Published or checkpoint.
    pub kind: DurableKind,
    /// The peer-chosen dataset id.
    pub id: String,
    /// The snapshot's file name within the data directory.
    pub file: String,
    /// Field id byte of the snapshot the row points at. Dataset snapshots
    /// hold integer vectors only and are field-independent, so today this
    /// is always 0; the column exists so future field-typed durable kinds
    /// can be enumerated without a manifest format bump.
    pub field_id: u8,
}

/// The data directory's id → file map.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Manifest {
    /// All durable entries, in no particular order.
    pub entries: Vec<ManifestEntry>,
}

impl Persist for Manifest {
    const KIND: SnapshotKind = SnapshotKind::Manifest;

    fn field_id() -> u8 {
        FIELD_INDEPENDENT
    }

    fn update_count(&self) -> u64 {
        self.entries.len() as u64
    }

    fn encode_state(&self, w: &mut Writer) {
        w.count(self.entries.len());
        for e in &self.entries {
            w.u8(match e.kind {
                DurableKind::Published => 0,
                DurableKind::Checkpoint => 1,
            });
            w.string(&e.id).string(&e.file).u8(e.field_id);
        }
    }

    fn decode_state(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        let n = r.seq(8, |r| {
            let kind = match r.u8()? {
                0 => DurableKind::Published,
                1 => DurableKind::Checkpoint,
                tag => {
                    return Err(sip_wire::WireError::BadTag {
                        context: "manifest entry kind",
                        tag,
                    })
                }
            };
            Ok(ManifestEntry {
                kind,
                id: r.string()?,
                file: r.string()?,
                field_id: r.u8()?,
            })
        })?;
        for e in &n {
            if e.id.is_empty() || e.id.len() > MAX_DATASET_ID_LEN {
                return Err(SnapshotError::Invalid(format!(
                    "manifest id of {} bytes outside (0, {MAX_DATASET_ID_LEN}]",
                    e.id.len()
                )));
            }
            if !is_safe_file_name(&e.file) {
                return Err(SnapshotError::Invalid(format!(
                    "manifest file name {:?} is not a plain snapshot name",
                    e.file
                )));
            }
        }
        Ok(Manifest { entries: n })
    }
}

/// A manifest file name must be exactly what [`snapshot_file_name`]
/// produces — `ds-`/`ck-`, 16 hex digits, an optional `-N` collision
/// suffix (the registry disambiguates FNV-colliding ids), `.sipd`.
/// Anything else (separators, dot-dot, absolute paths) is a forged
/// manifest trying to read outside the data directory.
fn is_safe_file_name(name: &str) -> bool {
    let ok_prefix = name.starts_with("ds-") || name.starts_with("ck-");
    if !ok_prefix || !name.ends_with(".sipd") || name.len() < 3 + 16 + 5 {
        return false;
    }
    let middle = &name[3..name.len() - 5];
    let (hash, suffix) = middle.split_at(16.min(middle.len()));
    hash.len() == 16
        && hash.bytes().all(|b| b.is_ascii_hexdigit())
        && (suffix.is_empty()
            || (suffix.len() >= 2
                && suffix.starts_with('-')
                && suffix[1..].bytes().all(|b| b.is_ascii_digit())))
}

/// The file name a dataset id persists under.
pub fn snapshot_file_name(kind: DurableKind, id: &str) -> String {
    let prefix = match kind {
        DurableKind::Published => "ds",
        DurableKind::Checkpoint => "ck",
    };
    format!("{prefix}-{:016x}.sipd", fnv1a64(id.as_bytes()))
}

/// The file name a flight-recorder dump is written under. The tag is a
/// peer-chosen string (a dataset id, or a session label), so exactly like
/// [`snapshot_file_name`] it is FNV-hashed and never reaches the
/// filesystem verbatim — a hostile `../../etc/cron.d` id hashes to 16 hex
/// digits like any other. `seq` keeps successive dumps distinct.
pub fn trace_dump_file_name(tag: &str, seq: u64) -> String {
    format!("fr-{:016x}-{seq}.trace.json", fnv1a64(tag.as_bytes()))
}

/// Absolute path of the manifest inside `dir`.
pub fn manifest_path(dir: &Path) -> PathBuf {
    dir.join(MANIFEST_FILE)
}

// ---------------------------------------------------------------------
// Dataset snapshot
// ---------------------------------------------------------------------

impl<F: PrimeField> Persist for Dataset<F> {
    const KIND: SnapshotKind = SnapshotKind::Dataset;

    fn field_id() -> u8 {
        // Dataset payloads hold only integer vectors; a restarted server
        // may serve them over either field.
        FIELD_INDEPENDENT
    }

    fn update_count(&self) -> u64 {
        match &self.data {
            DatasetData::Raw(fv) => fv.support_size(),
            DatasetData::Kv(s) => s.encoded_vector().support_size(),
        }
    }

    fn encode_state(&self, w: &mut Writer) {
        w.string(&self.id).u32(self.log_u);
        match self.shard {
            Some(spec) => {
                w.bool(true).u32(spec.index).u32(spec.count);
            }
            None => {
                w.bool(false);
            }
        }
        match &self.data {
            DatasetData::Raw(fv) => {
                w.u8(0);
                fv.encode_state(w);
            }
            DatasetData::Kv(s) => {
                w.u8(1);
                s.encode_state(w);
            }
        }
    }

    fn decode_state(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        let id = r.string()?;
        if id.is_empty() || id.len() > MAX_DATASET_ID_LEN {
            return Err(SnapshotError::Invalid(format!(
                "dataset id of {} bytes outside (0, {MAX_DATASET_ID_LEN}]",
                id.len()
            )));
        }
        let log_u = r.u32()?;
        if !(1..=crate::session::MAX_LOG_U).contains(&log_u) {
            return Err(SnapshotError::Invalid(format!(
                "dataset log_u {log_u} outside [1, {}]",
                crate::session::MAX_LOG_U
            )));
        }
        let shard = if r.bool()? {
            // Disk format predates replication and describes data, not
            // copies: no replica id is stored, and thawed specs carry
            // replica 0.
            let spec = ShardSpec::new(r.u32()?, r.u32()?);
            sip_streaming::ShardPlan::validate(log_u, spec.count)
                .map_err(SnapshotError::Invalid)?;
            if spec.index >= spec.count {
                return Err(SnapshotError::Invalid(format!(
                    "dataset shard {}/{} is out of range",
                    spec.index, spec.count
                )));
            }
            Some(spec)
        } else {
            None
        };
        let u = 1u64 << log_u;
        let data = match r.u8()? {
            0 => {
                let fv = FrequencyVector::decode_state(r)?;
                if fv.universe() != u {
                    return Err(SnapshotError::Invalid(format!(
                        "dataset vector universe {} disagrees with log_u {log_u}",
                        fv.universe()
                    )));
                }
                DatasetData::Raw(fv)
            }
            1 => {
                let store = CloudStore::<F>::decode_state(r)?;
                if store.log_u() != log_u {
                    return Err(SnapshotError::Invalid(format!(
                        "dataset store log_u {} disagrees with envelope log_u {log_u}",
                        store.log_u()
                    )));
                }
                DatasetData::Kv(store)
            }
            tag => {
                return Err(SnapshotError::Invalid(format!(
                    "unknown dataset mode tag {tag}"
                )))
            }
        };
        Ok(Dataset {
            id,
            log_u,
            shard,
            data,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sip_durable::{snapshot_from_bytes, snapshot_to_bytes};
    use sip_field::Fp61;
    use sip_streaming::Update;

    fn raw_dataset(id: &str) -> Dataset<Fp61> {
        let mut fv = FrequencyVector::new_sparse(1 << 8);
        fv.apply(Update::new(3, 5));
        fv.apply(Update::new(200, -1));
        Dataset {
            id: id.to_string(),
            log_u: 8,
            shard: Some(ShardSpec::new(1, 2)),
            data: DatasetData::Raw(fv),
        }
    }

    #[test]
    fn dataset_roundtrip_raw_and_kv() {
        let ds = raw_dataset("α-42");
        let back: Dataset<Fp61> = snapshot_from_bytes(&snapshot_to_bytes(&ds)).unwrap();
        assert_eq!(back.id, ds.id);
        assert_eq!(back.log_u, 8);
        assert_eq!(back.shard, ds.shard);
        let (DatasetData::Raw(a), DatasetData::Raw(b)) = (&back.data, &ds.data) else {
            panic!("mode changed");
        };
        assert_eq!(
            a.nonzero().collect::<Vec<_>>(),
            b.nonzero().collect::<Vec<_>>()
        );

        let mut store = CloudStore::<Fp61>::new_sparse(6);
        use sip_kvstore::KvServer;
        store.ingest(Update::new(9, 42 + 1));
        let ds = Dataset {
            id: "kv".into(),
            log_u: 6,
            shard: None,
            data: DatasetData::Kv(store),
        };
        let back: Dataset<Fp61> = snapshot_from_bytes(&snapshot_to_bytes(&ds)).unwrap();
        let DatasetData::Kv(s) = &back.data else {
            panic!("mode changed")
        };
        assert_eq!(s.unverified_get(9), Some(42));
        assert_eq!(back.mode(), sip_wire::SessionMode::KvStore);
    }

    #[test]
    fn manifest_roundtrip_and_forged_file_names_refused() {
        let m = Manifest {
            entries: vec![
                ManifestEntry {
                    kind: DurableKind::Published,
                    id: "a".into(),
                    file: snapshot_file_name(DurableKind::Published, "a"),
                    field_id: 61,
                },
                ManifestEntry {
                    kind: DurableKind::Checkpoint,
                    id: "b/../c".into(),
                    file: snapshot_file_name(DurableKind::Checkpoint, "b/../c"),
                    field_id: 0,
                },
            ],
        };
        let back: Manifest = snapshot_from_bytes(&snapshot_to_bytes(&m)).unwrap();
        assert_eq!(back, m);

        // A forged manifest pointing outside the directory must be refused.
        for bad in [
            "../../etc/passwd",
            "/abs.sipd",
            "ds-zz.sipd",
            "ck-0123.sipd",
        ] {
            let forged = Manifest {
                entries: vec![ManifestEntry {
                    kind: DurableKind::Published,
                    id: "x".into(),
                    file: bad.into(),
                    field_id: 0,
                }],
            };
            let bytes = snapshot_to_bytes(&forged);
            assert!(
                snapshot_from_bytes::<Manifest>(&bytes).is_err(),
                "{bad} accepted"
            );
        }
    }

    #[test]
    fn file_names_are_filesystem_safe_for_hostile_ids() {
        for id in ["../../../etc/passwd", "a/b", "x".repeat(200).as_str()] {
            let name = snapshot_file_name(DurableKind::Published, id);
            assert!(is_safe_file_name(&name), "{name}");
            assert!(!name.contains('/') && !name.contains(".."));
        }
    }

    #[test]
    fn trace_dump_file_name_is_hashed_and_pinned() {
        // Pinned: FNV-1a 64 of "abc" — a format change here silently
        // orphans operators' existing dump-collection tooling.
        assert_eq!(
            trace_dump_file_name("abc", 3),
            "fr-e71fa2190541574b-3.trace.json"
        );
        for tag in ["../../../etc/cron.d/x", "a/b\\c", "né\u{202e}moj"] {
            let name = trace_dump_file_name(tag, 0);
            assert!(
                name.starts_with("fr-") && name.ends_with(".trace.json"),
                "{name}"
            );
            assert!(!name.contains('/') && !name.contains('\\') && !name.contains(".."));
            assert!(name.is_ascii(), "{name}");
        }
    }
}

//! The verifier side of the wire: a [`RemoteStore`] that implements
//! [`KvServer`] over a socket (so [`sip_kvstore::Client`] runs unchanged
//! against a remote prover), and a [`RawClient`] driving the aggregate and
//! reporting protocols over a raw update stream.
//!
//! ## Failure philosophy
//!
//! Everything the network does wrong — truncated frames, non-canonical
//! field encodings, out-of-order messages, timeouts, closed sockets — is
//! mapped to a [`Rejection`]: the remote prover (and every router between
//! us) is simply part of the untrusted prover, and a verifier faced with a
//! misbehaving prover outputs `⊥`. No wire fault is ever an accepted
//! answer, and none is a panic.

use std::net::{TcpStream, ToSocketAddrs};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use sip_core::channel::{FramedTcpTransport, RetryPolicy, Transport, TransportStats};
use sip_core::error::{IoFault, Rejection};
use sip_core::heavy_hitters::{CountTreeHasher, HhStep, LevelDisclosure};
use sip_core::subvector::{
    RoundReply, RoundRequest, Step, SubVectorAnswer, SubVectorVerifier, Verified,
};
use sip_core::sumcheck::f2::F2Verifier;
use sip_core::sumcheck::moments::VerifiedAggregate;
use sip_core::sumcheck::range_sum::RangeSumVerifier;
use sip_core::sumcheck::{OneShotProof, SumCheckVerifierCore};
use sip_core::transcript::query_transcript;
use sip_core::CostReport;
use sip_field::PrimeField;
use sip_kvstore::{HeavySession, KvServer, ReportingSession, SumCheckSession};
use sip_streaming::Update;
use sip_wire::{
    client_handshake, Hello, Msg, MsgChannel, Query, SessionMode, ShardSpec, WireError,
};

/// How many buffered puts trigger an ingest frame.
const INGEST_BATCH: usize = 512;

/// Largest `Msg::Ingest` batch one frame may carry. Updates are 16 wire
/// bytes each, so 60 000 updates keep every ingest frame under 1 MiB —
/// far below the default 16 MiB cap
/// ([`sip_core::channel::DEFAULT_MAX_FRAME`]) and comfortably inside any
/// deliberately lowered `ServerConfig::max_frame` (the cap is not
/// negotiated, so the client stays conservative) — while framing overhead
/// (5 bytes per frame) stays negligible. A bigger batch is split into
/// several frames, never rejected at the cap.
const MAX_INGEST_PER_FRAME: usize = 60_000;

/// Default socket read timeout for clients: a prover that stalls the
/// conversation is treated as refusing to answer (= rejection), not waited
/// on forever.
pub const DEFAULT_CLIENT_TIMEOUT: Duration = Duration::from_secs(10);

fn wire_reject(e: WireError) -> Rejection {
    match e {
        // Channel faults: the bytes never arrived, so the proof is not
        // implicated — typed as transient I/O, eligible for retry and
        // failover. A FrameTooLarge announcement is the exception: those
        // bytes *did* arrive and were hostile, so it stays a soundness
        // fault below.
        WireError::Transport(te) => {
            use sip_core::channel::TransportError;
            let fault = match &te {
                TransportError::Closed => IoFault::Closed,
                TransportError::TimedOut => IoFault::TimedOut,
                TransportError::Io(detail) if detail.contains("refused") => IoFault::Refused,
                TransportError::Io(_) => IoFault::Other,
                TransportError::FrameTooLarge { .. } => {
                    return Rejection::MalformedAnswer {
                        detail: format!("wire: {te}"),
                    }
                }
            };
            Rejection::io(fault, format!("wire: {te}"))
        }
        e => Rejection::MalformedAnswer {
            detail: format!("wire: {e}"),
        },
    }
}

fn server_reject(detail: String) -> Rejection {
    Rejection::MalformedAnswer {
        detail: format!("server refused: {detail}"),
    }
}

fn unexpected(expected: &'static str, got: &'static str) -> Rejection {
    wire_reject(WireError::UnexpectedMessage { expected, got })
}

/// The connection state shared by a store and its open query sessions.
struct Conn<F: PrimeField, T: Transport> {
    chan: MsgChannel<T>,
    pending: Vec<Update>,
    /// A fault recorded during buffered ingest, surfaced at the next query.
    fault: Option<Rejection>,
    /// The shard identity declared on this connection, remembered so
    /// one-shot transcripts bind the same identity the server seals.
    shard: Option<ShardSpec>,
    _marker: core::marker::PhantomData<F>,
}

impl<F: PrimeField, T: Transport> Conn<F, T> {
    fn flush(&mut self) -> Result<(), Rejection> {
        self.check_fault()?;
        if self.pending.is_empty() {
            return Ok(());
        }
        let batch = std::mem::take(&mut self.pending);
        if batch.len() <= MAX_INGEST_PER_FRAME {
            return self.send_traced(&Msg::<F>::Ingest(batch));
        }
        // Auto-chunk: a batch that would blow the frame cap goes out as
        // several frames (the server applies updates incrementally, so the
        // split is invisible to the protocol).
        for chunk in batch.chunks(MAX_INGEST_PER_FRAME) {
            self.send_traced(&Msg::<F>::Ingest(chunk.to_vec()))?;
        }
        Ok(())
    }

    /// One frame out under a `wire_send` span — the *encode* leg of the
    /// per-round decomposition (serialisation + socket write, with no
    /// waiting on the peer).
    fn send_traced(&mut self, msg: &Msg<F>) -> Result<(), Rejection> {
        let mut tspan = sip_obs::trace::span("sip.client", "wire_send");
        tspan.field("msg", msg.name());
        self.chan.send(msg).map_err(|e| self.poison(wire_reject(e)))
    }

    /// Records a wire-level fault and returns it: once the byte stream with
    /// the server is broken (timeout mid-frame, undecodable reply, server
    /// error frame), later frames could be misattributed to the wrong
    /// query, so the whole connection is condemned. Protocol-algebra
    /// rejections do *not* pass through here — the connection stays usable
    /// after a query whose proof merely failed.
    fn poison(&mut self, rejection: Rejection) -> Rejection {
        self.fault = Some(rejection.clone());
        rejection
    }

    fn check_fault(&self) -> Result<(), Rejection> {
        match &self.fault {
            Some(fault) => Err(fault.clone()),
            None => Ok(()),
        }
    }

    fn ingest(&mut self, up: Update) {
        if self.fault.is_some() {
            return;
        }
        self.pending.push(up);
        if self.pending.len() >= INGEST_BATCH {
            let _ = self.flush();
        }
    }

    /// Buffers a whole batch, flushing frame-sized pieces as they fill so
    /// peak buffering stays bounded by one wire frame however large the
    /// batch (the server sees the same update sequence either way).
    fn ingest_batch(&mut self, ups: &[Update]) {
        if self.fault.is_some() {
            return;
        }
        for chunk in ups.chunks(MAX_INGEST_PER_FRAME) {
            self.pending.extend_from_slice(chunk);
            if self.pending.len() >= INGEST_BATCH {
                let _ = self.flush();
            }
        }
    }

    fn recv(&mut self) -> Result<Msg<F>, Rejection> {
        self.check_fault()?;
        // The wire_wait span is the *network* leg of the decomposition: it
        // covers the blocking wait for the peer's frame (including any
        // injected LatencyTransport delay), and nothing else.
        let mut tspan = sip_obs::trace::span("sip.client", "wire_wait");
        match self.chan.recv::<F>() {
            // The server abandons the connection after an error frame.
            Ok(Msg::Error(detail)) => Err(self.poison(server_reject(detail))),
            Ok(msg) => {
                tspan.field("msg", msg.name());
                Ok(msg)
            }
            Err(e) => Err(self.poison(wire_reject(e))),
        }
    }

    /// Flush + send + receive one reply.
    fn request(&mut self, msg: &Msg<F>) -> Result<Msg<F>, Rejection> {
        self.flush()?;
        self.send_traced(msg)?;
        self.recv()
    }

    /// Flush + send, no reply expected. Oversized `Msg::Ingest` batches are
    /// routed through the auto-chunking flush instead of hitting the frame
    /// cap.
    fn tell(&mut self, msg: &Msg<F>) -> Result<(), Rejection> {
        if let Msg::Ingest(ups) = msg {
            if ups.len() > MAX_INGEST_PER_FRAME {
                self.check_fault()?;
                self.pending.extend_from_slice(ups);
                return self.flush();
            }
        }
        self.flush()?;
        self.send_traced(msg)
    }

    /// Publish/attach conversation: one message, expect the echoing ack.
    fn dataset_request(&mut self, msg: &Msg<F>, dataset_id: &str) -> Result<(), Rejection> {
        match self.request(msg)? {
            Msg::DatasetAck { dataset_id: echoed } if echoed == dataset_id => Ok(()),
            Msg::DatasetAck { dataset_id: other } => Err(Rejection::MalformedAnswer {
                detail: format!("dataset ack names {other:?}, expected {dataset_id:?}"),
            }),
            other => Err(unexpected("dataset-ack", other.name())),
        }
    }

    /// SaveState/Resume conversation: one message, expect a `StateAck`
    /// whose enumeration contains the named id.
    fn state_request(&mut self, msg: &Msg<F>, dataset_id: &str) -> Result<Vec<String>, Rejection> {
        match self.request(msg)? {
            Msg::StateAck { dataset_ids } if dataset_ids.iter().any(|id| id == dataset_id) => {
                Ok(dataset_ids)
            }
            Msg::StateAck { dataset_ids } => Err(Rejection::MalformedAnswer {
                detail: format!("state ack {dataset_ids:?} does not name {dataset_id:?}"),
            }),
            other => Err(unexpected("state-ack", other.name())),
        }
    }
}

type SharedConn<F, T> = Arc<Mutex<Conn<F, T>>>;

fn with_conn<F: PrimeField, T: Transport, R>(
    conn: &SharedConn<F, T>,
    f: impl FnOnce(&mut Conn<F, T>) -> R,
) -> R {
    let mut guard = conn.lock().unwrap_or_else(|p| p.into_inner());
    f(&mut guard)
}

// ---------------------------------------------------------------------
// RemoteStore: KvServer over a transport
// ---------------------------------------------------------------------

/// A [`KvServer`] whose storage and provers live on the other side of a
/// transport. Hand it to [`sip_kvstore::Client`] exactly like a
/// [`sip_kvstore::CloudStore`].
pub struct RemoteStore<F: PrimeField, T: Transport> {
    conn: SharedConn<F, T>,
}

/// Clones share the underlying connection (and its fault state): a boxed
/// handle can serve queries while the original still collects
/// [`RemoteStore::bye`]/[`RemoteStore::stats`] at session end.
impl<F: PrimeField, T: Transport> Clone for RemoteStore<F, T> {
    fn clone(&self) -> Self {
        RemoteStore {
            conn: Arc::clone(&self.conn),
        }
    }
}

/// Opens a framed, timeout-guarded TCP transport to a prover.
fn tcp_transport<A: ToSocketAddrs>(
    addr: A,
    timeout: Duration,
) -> Result<FramedTcpTransport, Rejection> {
    // A failed dial is a channel fault (typed, transient, retryable) — the
    // peer said nothing, so nothing it said can be condemned.
    let stream = TcpStream::connect(addr).map_err(|e| Rejection::from_io_error(&e))?;
    let mut transport = FramedTcpTransport::new(stream)
        .map_err(|e| server_reject(format!("socket setup failed: {e}")))?;
    transport
        .set_timeout(Some(timeout))
        .map_err(|e| server_reject(format!("socket setup failed: {e}")))?;
    Ok(transport)
}

impl<F: PrimeField> RemoteStore<F, FramedTcpTransport> {
    /// Connects to a [`crate::spawn`]ed server and performs the kv-store
    /// handshake.
    pub fn connect<A: ToSocketAddrs>(addr: A, log_u: u32) -> Result<Self, Rejection> {
        Self::connect_with_timeout(addr, log_u, DEFAULT_CLIENT_TIMEOUT)
    }

    /// Like [`Self::connect`] with an explicit read timeout: a prover that
    /// stalls longer than this refuses to answer, which is a rejection.
    pub fn connect_with_timeout<A: ToSocketAddrs>(
        addr: A,
        log_u: u32,
        timeout: Duration,
    ) -> Result<Self, Rejection> {
        Self::from_transport(tcp_transport(addr, timeout)?, log_u)
    }

    /// Like [`Self::connect`] under a [`RetryPolicy`]: transient dial and
    /// handshake faults are retried with decorrelated-jitter backoff (the
    /// policy's `op_deadline` is the per-attempt read timeout); soundness
    /// faults fail immediately.
    pub fn connect_with_policy<A: ToSocketAddrs + Clone>(
        addr: A,
        log_u: u32,
        policy: &RetryPolicy,
    ) -> Result<Self, Rejection> {
        policy.run(|_| Self::connect_with_timeout(addr.clone(), log_u, policy.op_deadline))
    }
}

impl<F: PrimeField, T: Transport> RemoteStore<F, T> {
    /// Performs the kv-store handshake over an already-connected transport.
    pub fn from_transport(mut transport: T, log_u: u32) -> Result<Self, Rejection> {
        client_handshake(&mut transport, Hello::new::<F>(SessionMode::KvStore, log_u))
            .map_err(wire_reject)?;
        Ok(RemoteStore {
            conn: Arc::new(Mutex::new(Conn {
                chan: MsgChannel::new(transport),
                pending: Vec::new(),
                fault: None,
                shard: None,
                _marker: core::marker::PhantomData,
            })),
        })
    }

    /// Pushes any buffered puts and marks the stream complete.
    pub fn end_stream(&self) -> Result<(), Rejection> {
        with_conn(&self.conn, |c| c.tell(&Msg::EndStream))
    }

    /// Declares this connection to be shard `spec.index` of a fleet of
    /// `spec.count` — must precede any put.
    pub fn shard_hello(&self, spec: ShardSpec) -> Result<(), Rejection> {
        with_conn(&self.conn, |c| {
            c.shard = Some(spec);
            c.tell(&Msg::ShardHello(spec))
        })
    }

    /// Freezes everything this session has put and publishes it
    /// server-wide under `dataset_id`; the session keeps querying the
    /// snapshot, further puts are refused by the server.
    pub fn publish(&self, dataset_id: &str) -> Result<(), Rejection> {
        with_conn(&self.conn, |c| {
            c.dataset_request(
                &Msg::Publish {
                    dataset_id: dataset_id.to_string(),
                },
                dataset_id,
            )
        })
    }

    /// Serves this session's queries from the published dataset
    /// `dataset_id` (same server, same mode, same `log_u`) instead of
    /// session-local puts.
    pub fn attach(&self, dataset_id: &str) -> Result<(), Rejection> {
        with_conn(&self.conn, |c| {
            c.dataset_request(
                &Msg::Attach {
                    dataset_id: dataset_id.to_string(),
                },
                dataset_id,
            )
        })
    }

    /// Asks the server to persist this session's current puts as a durable
    /// named checkpoint (v4). Returns the server's full durable
    /// enumeration. The session keeps putting afterwards.
    pub fn save_state(&self, dataset_id: &str) -> Result<Vec<String>, Rejection> {
        with_conn(&self.conn, |c| {
            c.state_request(
                &Msg::SaveState {
                    dataset_id: dataset_id.to_string(),
                },
                dataset_id,
            )
        })
    }

    /// Resumes durable state saved under `dataset_id` (v4): a checkpoint
    /// thaws into this session's private store (puts continue where they
    /// stopped), a published dataset attaches frozen. Must precede any
    /// put.
    pub fn resume(&self, dataset_id: &str) -> Result<Vec<String>, Rejection> {
        with_conn(&self.conn, |c| {
            c.state_request(
                &Msg::Resume {
                    dataset_id: dataset_id.to_string(),
                },
                dataset_id,
            )
        })
    }

    /// Ends the session politely, collecting the prover's own (advisory)
    /// cost accounting for everything it served on this connection.
    pub fn bye(&self) -> Result<CostReport, Rejection> {
        with_conn(&self.conn, |c| match c.request(&Msg::Bye)? {
            Msg::Cost(report) => Ok(report),
            other => Err(unexpected("cost", other.name())),
        })
    }

    /// Bytes/frames moved over this connection so far.
    pub fn stats(&self) -> TransportStats {
        with_conn(&self.conn, |c| c.chan.stats())
    }

    /// One [`Msg::QueryOneShot`] request: the whole sum-check in a single
    /// round trip. Nothing returned here is trusted — the kv client
    /// replays the transcript and checks the digest before any algebra.
    fn request_oneshot(
        &self,
        query: Query,
        challenges: &[F],
    ) -> Result<OneShotProof<F>, Rejection> {
        match with_conn(&self.conn, |c| {
            c.request(&Msg::QueryOneShot {
                query,
                challenges: challenges.to_vec(),
            })
        })? {
            Msg::Proof {
                claimed,
                rounds,
                digest,
            } => Ok(OneShotProof {
                claimed,
                rounds,
                digest,
            }),
            other => Err(unexpected("proof", other.name())),
        }
    }
}

struct RemoteReporting<F: PrimeField, T: Transport> {
    conn: SharedConn<F, T>,
}

impl<F: PrimeField, T: Transport> ReportingSession<F> for RemoteReporting<F, T> {
    fn answer(&mut self, q_l: u64, q_r: u64) -> Result<SubVectorAnswer<F>, Rejection> {
        match with_conn(&self.conn, |c| {
            c.request(&Msg::Query(Query::Report { l: q_l, r: q_r }))
        })? {
            Msg::SubVectorAnswer(ans) => Ok(ans),
            other => Err(unexpected("subvector-answer", other.name())),
        }
    }

    fn round(&mut self, req: &RoundRequest<F>) -> Result<RoundReply<F>, Rejection> {
        match with_conn(&self.conn, |c| c.request(&Msg::SubVectorRound(req.clone())))? {
            Msg::SubVectorReply(reply) => Ok(reply),
            other => Err(unexpected("subvector-reply", other.name())),
        }
    }
}

struct RemoteSumCheck<F: PrimeField, T: Transport> {
    conn: SharedConn<F, T>,
    query: Query,
    started: bool,
    stashed: Option<Vec<F>>,
}

impl<F: PrimeField, T: Transport> RemoteSumCheck<F, T> {
    fn open(&mut self) -> Result<Vec<F>, Rejection> {
        let claimed = match with_conn(&self.conn, |c| c.request(&Msg::Query(self.query)))? {
            Msg::ClaimedValue(v) => v,
            other => return Err(unexpected("claimed-value", other.name())),
        };
        let poly = match with_conn(&self.conn, |c| c.recv())? {
            Msg::RoundPoly(p) => p,
            other => return Err(unexpected("round-poly", other.name())),
        };
        // The announced claim must be what g₁ sums to; otherwise the two
        // messages contradict each other before any round runs. (Length
        // errors are left to the sum-check core, which reports them with
        // the proper round number.)
        if poly.len() >= 2 && poly[0] + poly[1] != claimed {
            return Err(Rejection::MalformedAnswer {
                detail: "claimed value disagrees with the first round polynomial".into(),
            });
        }
        self.started = true;
        Ok(poly)
    }
}

impl<F: PrimeField, T: Transport> SumCheckSession<F> for RemoteSumCheck<F, T> {
    fn message(&mut self) -> Result<Vec<F>, Rejection> {
        if !self.started {
            return self.open();
        }
        self.stashed
            .take()
            .ok_or_else(|| Rejection::MalformedAnswer {
                detail: "round polynomial requested before a challenge was bound".into(),
            })
    }

    fn bind(&mut self, r: F) -> Result<(), Rejection> {
        match with_conn(&self.conn, |c| c.request(&Msg::Challenge(r)))? {
            Msg::RoundPoly(p) => {
                self.stashed = Some(p);
                Ok(())
            }
            other => Err(unexpected("round-poly", other.name())),
        }
    }
}

struct RemoteHeavy<F: PrimeField, T: Transport> {
    conn: SharedConn<F, T>,
    threshold: u64,
    started: bool,
    stashed: Option<LevelDisclosure<F>>,
}

impl<F: PrimeField, T: Transport> HeavySession<F> for RemoteHeavy<F, T> {
    fn disclose(&mut self) -> Result<LevelDisclosure<F>, Rejection> {
        if !self.started {
            self.started = true;
            return match with_conn(&self.conn, |c| {
                c.request(&Msg::Query(Query::Heavy {
                    threshold: self.threshold,
                }))
            })? {
                Msg::HhDisclosure(disc) => Ok(disc),
                other => Err(unexpected("hh-disclosure", other.name())),
            };
        }
        self.stashed
            .take()
            .ok_or_else(|| Rejection::MalformedAnswer {
                detail: "disclosure requested before keys were revealed".into(),
            })
    }

    fn keys(&mut self, level: u32, r: F, s: F) -> Result<(), Rejection> {
        match with_conn(&self.conn, |c| c.request(&Msg::HhKeys { level, r, s }))? {
            Msg::HhDisclosure(disc) => {
                self.stashed = Some(disc);
                Ok(())
            }
            other => Err(unexpected("hh-disclosure", other.name())),
        }
    }
}

impl<F: PrimeField, T: Transport + 'static> KvServer<F> for RemoteStore<F, T> {
    fn ingest(&mut self, up: Update) {
        with_conn(&self.conn, |c| c.ingest(up));
    }

    fn ingest_batch(&mut self, ups: &[Update]) {
        with_conn(&self.conn, |c| c.ingest_batch(ups));
    }

    fn reporting(&self) -> Box<dyn ReportingSession<F> + '_> {
        Box::new(RemoteReporting {
            conn: Arc::clone(&self.conn),
        })
    }

    fn range_sum(&self, q_l: u64, q_r: u64) -> Box<dyn SumCheckSession<F> + '_> {
        Box::new(RemoteSumCheck {
            conn: Arc::clone(&self.conn),
            query: Query::RangeSum { l: q_l, r: q_r },
            started: false,
            stashed: None,
        })
    }

    fn range_count(&self, q_l: u64, q_r: u64) -> Box<dyn SumCheckSession<F> + '_> {
        Box::new(RemoteSumCheck {
            conn: Arc::clone(&self.conn),
            query: Query::RangeCount { l: q_l, r: q_r },
            started: false,
            stashed: None,
        })
    }

    fn self_join(&self) -> Box<dyn SumCheckSession<F> + '_> {
        Box::new(RemoteSumCheck {
            conn: Arc::clone(&self.conn),
            query: Query::SelfJoin,
            started: false,
            stashed: None,
        })
    }

    // The one-shot overrides ship the query over the wire instead of
    // walking a local session round by round. The `shard` argument is not
    // transmitted: the server seals its *declared* identity into the
    // transcript, and the verifying client binds the identity it believes —
    // a mismatch fails the digest comparison rather than being trusted.
    fn range_sum_oneshot(
        &self,
        q_l: u64,
        q_r: u64,
        _shard: Option<(u32, u32)>,
        challenges: &[F],
    ) -> Result<OneShotProof<F>, Rejection> {
        self.request_oneshot(Query::RangeSum { l: q_l, r: q_r }, challenges)
    }

    fn range_count_oneshot(
        &self,
        q_l: u64,
        q_r: u64,
        _shard: Option<(u32, u32)>,
        challenges: &[F],
    ) -> Result<OneShotProof<F>, Rejection> {
        self.request_oneshot(Query::RangeCount { l: q_l, r: q_r }, challenges)
    }

    fn self_join_oneshot(
        &self,
        _shard: Option<(u32, u32)>,
        challenges: &[F],
    ) -> Result<OneShotProof<F>, Rejection> {
        self.request_oneshot(Query::SelfJoin, challenges)
    }

    fn heavy(&self, threshold: u64) -> Box<dyn HeavySession<F> + '_> {
        Box::new(RemoteHeavy {
            conn: Arc::clone(&self.conn),
            threshold,
            started: false,
            stashed: None,
        })
    }

    fn claim_predecessor(&self, q: u64) -> Result<Option<u64>, Rejection> {
        match with_conn(&self.conn, |c| {
            c.request(&Msg::Query(Query::Predecessor { q }))
        })? {
            Msg::KeyClaim(claim) => Ok(claim),
            other => Err(unexpected("key-claim", other.name())),
        }
    }

    fn claim_successor(&self, q: u64) -> Result<Option<u64>, Rejection> {
        match with_conn(&self.conn, |c| {
            c.request(&Msg::Query(Query::Successor { q }))
        })? {
            Msg::KeyClaim(claim) => Ok(claim),
            other => Err(unexpected("key-claim", other.name())),
        }
    }
}

// ---------------------------------------------------------------------
// RawClient: aggregate/reporting protocols over a raw stream
// ---------------------------------------------------------------------

/// Drives the Section 3/4/6 protocols against a remote prover over a raw
/// update stream. The caller owns the verifier digests (they must observe
/// the same updates that are uploaded); this client owns the conversation.
pub struct RawClient<F: PrimeField, T: Transport> {
    conn: Conn<F, T>,
}

impl<F: PrimeField> RawClient<F, FramedTcpTransport> {
    /// Connects to a [`crate::spawn`]ed server in raw-stream mode.
    pub fn connect<A: ToSocketAddrs>(addr: A, log_u: u32) -> Result<Self, Rejection> {
        Self::connect_with_timeout(addr, log_u, DEFAULT_CLIENT_TIMEOUT)
    }

    /// Like [`Self::connect`] with an explicit read timeout.
    pub fn connect_with_timeout<A: ToSocketAddrs>(
        addr: A,
        log_u: u32,
        timeout: Duration,
    ) -> Result<Self, Rejection> {
        Self::from_transport(tcp_transport(addr, timeout)?, log_u)
    }

    /// Like [`Self::connect`] under a [`RetryPolicy`]: transient dial and
    /// handshake faults retry with decorrelated-jitter backoff, soundness
    /// faults fail immediately (see [`Rejection::is_transient`]).
    pub fn connect_with_policy<A: ToSocketAddrs + Clone>(
        addr: A,
        log_u: u32,
        policy: &RetryPolicy,
    ) -> Result<Self, Rejection> {
        policy.run(|_| Self::connect_with_timeout(addr.clone(), log_u, policy.op_deadline))
    }
}

impl<F: PrimeField, T: Transport> RawClient<F, T> {
    /// Performs the raw-stream handshake over a connected transport.
    pub fn from_transport(mut transport: T, log_u: u32) -> Result<Self, Rejection> {
        client_handshake(
            &mut transport,
            Hello::new::<F>(SessionMode::RawStream, log_u),
        )
        .map_err(wire_reject)?;
        Ok(RawClient {
            conn: Conn {
                chan: MsgChannel::new(transport),
                pending: Vec::new(),
                fault: None,
                shard: None,
                _marker: core::marker::PhantomData,
            },
        })
    }

    /// Uploads one update (buffered; remember to feed your digests too).
    pub fn send_update(&mut self, up: Update) {
        self.conn.ingest(up);
    }

    /// Uploads a whole batch in one buffered extend.
    pub fn send_batch(&mut self, batch: &[Update]) {
        self.conn.ingest_batch(batch);
    }

    /// Uploads a whole stream in one buffered extend (frames are cut by
    /// the auto-chunking flush, never one update at a time).
    pub fn send_stream(&mut self, stream: &[Update]) {
        self.conn.ingest_batch(stream);
    }

    /// Flushes buffered updates and marks the stream complete.
    pub fn end_stream(&mut self) -> Result<(), Rejection> {
        self.conn.tell(&Msg::EndStream)
    }

    /// Ends the session politely, collecting the prover's own (advisory)
    /// cost accounting for everything it served on this connection.
    pub fn bye(&mut self) -> Result<CostReport, Rejection> {
        match self.conn.request(&Msg::Bye)? {
            Msg::Cost(report) => Ok(report),
            other => Err(unexpected("cost", other.name())),
        }
    }

    /// Bytes/frames moved over this connection so far.
    pub fn stats(&self) -> TransportStats {
        self.conn.chan.stats()
    }

    /// Asks the server for its live metrics snapshot ([`Msg::Stats`]): the
    /// same JSON document its `--metrics-addr` listener serves at `/stats`.
    /// Advisory operator telemetry — nothing in it is verified.
    pub fn server_stats(&mut self) -> Result<String, Rejection> {
        match self.conn.request(&Msg::Stats)? {
            Msg::StatsReply { json } => Ok(json),
            other => Err(unexpected("stats-reply", other.name())),
        }
    }

    /// Declares this connection to be shard `spec.index` of a fleet of
    /// `spec.count` — must precede any update.
    pub fn shard_hello(&mut self, spec: ShardSpec) -> Result<(), Rejection> {
        self.conn.shard = Some(spec);
        self.conn.tell(&Msg::ShardHello(spec))
    }

    /// Freezes everything uploaded on this session and publishes it
    /// server-wide under `dataset_id`: later sessions [`Self::attach`] to
    /// it and query the same snapshot without re-ingesting. This session
    /// keeps querying it too; further updates are refused by the server.
    pub fn publish(&mut self, dataset_id: &str) -> Result<(), Rejection> {
        self.conn.dataset_request(
            &Msg::Publish {
                dataset_id: dataset_id.to_string(),
            },
            dataset_id,
        )
    }

    /// Serves this session's queries from the published dataset
    /// `dataset_id` (same server, raw-stream mode, same `log_u`). The
    /// caller still needs digests that observed the dataset's stream —
    /// attach changes where the *prover's* data lives, never what the
    /// verifier trusts.
    pub fn attach(&mut self, dataset_id: &str) -> Result<(), Rejection> {
        self.conn.dataset_request(
            &Msg::Attach {
                dataset_id: dataset_id.to_string(),
            },
            dataset_id,
        )
    }

    /// Asks the server to persist everything uploaded on this session as a
    /// durable named checkpoint (v4). Returns the server's full durable
    /// enumeration. The session keeps streaming afterwards — checkpoints
    /// are progress marks, not freezes.
    pub fn save_state(&mut self, dataset_id: &str) -> Result<Vec<String>, Rejection> {
        self.conn.state_request(
            &Msg::SaveState {
                dataset_id: dataset_id.to_string(),
            },
            dataset_id,
        )
    }

    /// Resumes durable state saved under `dataset_id` (v4): a checkpoint
    /// thaws into this session's private store (ingest continues where it
    /// stopped), a published dataset attaches frozen. Must precede any
    /// update.
    pub fn resume(&mut self, dataset_id: &str) -> Result<Vec<String>, Rejection> {
        self.conn.state_request(
            &Msg::Resume {
                dataset_id: dataset_id.to_string(),
            },
            dataset_id,
        )
    }

    /// Building block for multi-connection drivers (`sip-cluster`): flush
    /// buffered updates, send one message, await one reply. Wire faults
    /// poison the connection exactly as for the built-in drivers.
    pub fn request_msg(&mut self, msg: &Msg<F>) -> Result<Msg<F>, Rejection> {
        self.conn.request(msg)
    }

    /// Building block: receive the next message (when a request yields more
    /// than one reply frame, e.g. claim + first round polynomial).
    pub fn recv_msg(&mut self) -> Result<Msg<F>, Rejection> {
        self.conn.recv()
    }

    /// Building block: flush buffered updates and send one message with no
    /// reply expected.
    pub fn tell_msg(&mut self, msg: &Msg<F>) -> Result<(), Rejection> {
        self.conn.tell(msg)
    }

    /// Reports the query verdict to the server (best effort). Public so an
    /// aggregating verifier can close out every shard's query with the
    /// fleet-level outcome.
    pub fn verdict(&mut self, result: &Result<F, Rejection>) {
        let msg = match result {
            Ok(_) => Msg::Accept,
            Err(rej) => Msg::Reject(rej.clone()),
        };
        let _ = self.conn.tell(&msg);
    }

    /// Tells the server this session's current trace context
    /// ([`Msg::TraceContext`]) so its spans join the query's trace. No-op
    /// unless tracing is on and a span is open; a send failure poisons the
    /// connection and surfaces at the next protocol frame, so the error is
    /// deliberately dropped here.
    fn announce_trace(&mut self) {
        if let Some(ctx) = sip_obs::trace::current_context() {
            let _ = self.conn.tell(&Msg::TraceContext {
                trace_id: ctx.trace_id,
                parent_span: ctx.span_id,
            });
        }
    }

    /// Runs one remote sum-check conversation against `core`/`expected`.
    fn drive_sumcheck(
        &mut self,
        query: Query,
        mut core: SumCheckVerifierCore<F>,
        expected: F,
        report: &mut CostReport,
    ) -> Result<F, Rejection> {
        let mut qspan = sip_obs::trace::span("sip.client", "query");
        qspan.field("query", query.name());
        self.announce_trace();
        let result = (|| {
            let claimed = match self.conn.request(&Msg::Query(query))? {
                Msg::ClaimedValue(v) => v,
                other => return Err(unexpected("claimed-value", other.name())),
            };
            report.p_to_v_words += 1;
            let mut poly = match self.conn.recv()? {
                Msg::RoundPoly(p) => p,
                other => return Err(unexpected("round-poly", other.name())),
            };
            loop {
                report.rounds += 1;
                let mut rspan = sip_obs::trace::span("sip.client", "round");
                rspan.field("round", report.rounds);
                report.p_to_v_words += poly.len();
                let step = {
                    let _v = sip_obs::trace::span("sip.client", "verifier_compute");
                    core.receive(&poly)
                }?;
                match step {
                    Some(challenge) => {
                        report.v_to_p_words += 1;
                        poly = match self.conn.request(&Msg::Challenge(challenge))? {
                            Msg::RoundPoly(p) => p,
                            other => return Err(unexpected("round-poly", other.name())),
                        };
                    }
                    None => break,
                }
            }
            let value = {
                let _v = sip_obs::trace::span("sip.client", "verifier_compute");
                core.finalize(expected)
            }?;
            if value != claimed {
                return Err(Rejection::MalformedAnswer {
                    detail: "announced claim differs from the proven value".into(),
                });
            }
            Ok(value)
        })();
        self.verdict(&result);
        result
    }

    /// Runs one *one-shot* sum-check conversation: reveal the challenge
    /// prefix, receive the whole proof in a single frame, replay the
    /// transcript and run the deferred checks locally. One round trip per
    /// query, whatever `log_u` is.
    fn drive_oneshot(
        &mut self,
        query: Query,
        name: &str,
        params: &[u64],
        core: SumCheckVerifierCore<F>,
        expected: F,
        report: &mut CostReport,
    ) -> Result<F, Rejection> {
        let mut qspan = sip_obs::trace::span("sip.client", "oneshot_query");
        qspan.field("query", query.name());
        self.announce_trace();
        let shard = self.conn.shard.map(|s| (s.index, s.count));
        let result = (|| {
            let challenges = core.challenge_prefix().to_vec();
            report.rounds += 1;
            report.v_to_p_words += challenges.len();
            let proof = {
                let mut rspan = sip_obs::trace::span("sip.client", "oneshot_roundtrip");
                rspan.field("challenges", challenges.len());
                match self.conn.request(&Msg::QueryOneShot {
                    query,
                    challenges: challenges.clone(),
                })? {
                    Msg::Proof {
                        claimed,
                        rounds,
                        digest,
                    } => OneShotProof {
                        claimed,
                        rounds,
                        digest,
                    },
                    other => return Err(unexpected("proof", other.name())),
                }
            };
            report.p_to_v_words += proof.words();
            let transcript =
                query_transcript::<F>(name, core.rounds() as u32, shard, params, &challenges);
            let _v = sip_obs::trace::span("sip.client", "deferred_check");
            let timer = sip_obs::Timer::start();
            let value = core.verify_oneshot(expected, transcript, &proof);
            if sip_obs::enabled() {
                sip_obs::counter("sip_client_oneshot_queries_total").inc();
                sip_obs::histogram("sip_client_oneshot_proof_words").observe(proof.words() as u64);
                sip_obs::histogram("sip_client_oneshot_deferred_check_us")
                    .observe(timer.elapsed_us());
            }
            value
        })();
        self.verdict(&result);
        result
    }

    /// Verified SELF-JOIN SIZE in one round trip ([`Msg::QueryOneShot`]):
    /// same digests and same typed rejections as [`Self::verify_f2`], but
    /// the whole post-stream conversation is a single frame each way.
    pub fn verify_f2_oneshot(
        &mut self,
        verifier: F2Verifier<F>,
    ) -> Result<VerifiedAggregate<F>, Rejection> {
        let mut report = CostReport {
            verifier_space_words: verifier.space_words(),
            ..CostReport::default()
        };
        let (core, expected) = verifier.into_session();
        let value = self.drive_oneshot(
            Query::SelfJoin,
            "self-join",
            &[],
            core,
            expected,
            &mut report,
        )?;
        Ok(VerifiedAggregate { value, report })
    }

    /// Verified RANGE-SUM over `[q_l, q_r]` in one round trip; see
    /// [`Self::verify_f2_oneshot`].
    pub fn verify_range_sum_oneshot(
        &mut self,
        verifier: RangeSumVerifier<F>,
        q_l: u64,
        q_r: u64,
    ) -> Result<VerifiedAggregate<F>, Rejection> {
        let mut report = CostReport {
            verifier_space_words: verifier.space_words(),
            v_to_p_words: 2,
            ..CostReport::default()
        };
        let (core, expected) = verifier.into_session(q_l, q_r);
        let value = self.drive_oneshot(
            Query::RangeSum { l: q_l, r: q_r },
            "range-sum",
            &[q_l, q_r],
            core,
            expected,
            &mut report,
        )?;
        Ok(VerifiedAggregate { value, report })
    }

    /// Verified SELF-JOIN SIZE over everything uploaded so far. The digest
    /// must have observed exactly the uploaded stream.
    pub fn verify_f2(
        &mut self,
        verifier: F2Verifier<F>,
    ) -> Result<VerifiedAggregate<F>, Rejection> {
        let mut report = CostReport {
            verifier_space_words: verifier.space_words(),
            ..CostReport::default()
        };
        let (core, expected) = verifier.into_session();
        let value = self.drive_sumcheck(Query::SelfJoin, core, expected, &mut report)?;
        Ok(VerifiedAggregate { value, report })
    }

    /// Verified RANGE-SUM over `[q_l, q_r]`.
    pub fn verify_range_sum(
        &mut self,
        verifier: RangeSumVerifier<F>,
        q_l: u64,
        q_r: u64,
    ) -> Result<VerifiedAggregate<F>, Rejection> {
        let mut report = CostReport {
            verifier_space_words: verifier.space_words(),
            v_to_p_words: 2,
            ..CostReport::default()
        };
        let (core, expected) = verifier.into_session(q_l, q_r);
        let value = self.drive_sumcheck(
            Query::RangeSum { l: q_l, r: q_r },
            core,
            expected,
            &mut report,
        )?;
        Ok(VerifiedAggregate { value, report })
    }

    /// Verified SUB-VECTOR report over `[q_l, q_r]`.
    pub fn verify_report(
        &mut self,
        verifier: SubVectorVerifier<F>,
        q_l: u64,
        q_r: u64,
    ) -> Result<Verified<F>, Rejection> {
        let mut session = verifier.into_session(q_l, q_r);
        let mut report = CostReport {
            v_to_p_words: 2,
            rounds: 1,
            ..CostReport::default()
        };
        let mut qspan = sip_obs::trace::span("sip.client", "query");
        qspan.field("query", "report");
        self.announce_trace();
        let result = (|| {
            let answer = match self
                .conn
                .request(&Msg::Query(Query::Report { l: q_l, r: q_r }))?
            {
                Msg::SubVectorAnswer(ans) => ans,
                other => return Err(unexpected("subvector-answer", other.name())),
            };
            report.p_to_v_words += 2 * answer.entries.len();
            let mut step = session.receive_answer(&answer, None)?;
            while let Step::Request(req) = step {
                report.rounds += 1;
                report.v_to_p_words += 1;
                let reply = match self.conn.request(&Msg::SubVectorRound(req.clone()))? {
                    Msg::SubVectorReply(reply) => reply,
                    other => return Err(unexpected("subvector-reply", other.name())),
                };
                report.p_to_v_words +=
                    reply.left.is_some() as usize + reply.right.is_some() as usize;
                step = session.receive_reply(&req, &reply)?;
            }
            Ok(answer)
        })();
        let verdict = result.as_ref().map(|_| F::ZERO).map_err(Clone::clone);
        self.verdict(&verdict);
        let answer = result?;
        report.verifier_space_words = session.space_words();
        Ok(Verified {
            entries: session.queried_entries(&answer),
            report,
        })
    }

    /// Verified HEAVY HITTERS at absolute `threshold`.
    pub fn verify_heavy(
        &mut self,
        hasher: CountTreeHasher<F>,
        threshold: u64,
    ) -> Result<(Vec<(u64, u64)>, CostReport), Rejection> {
        let streaming_space = hasher.space_words();
        let mut session = hasher.into_session(threshold);
        let mut report = CostReport {
            v_to_p_words: 1,
            verifier_space_words: streaming_space,
            ..CostReport::default()
        };
        if session.trivially_empty() {
            return Ok((Vec::new(), report));
        }
        let mut qspan = sip_obs::trace::span("sip.client", "query");
        qspan.field("query", "heavy");
        self.announce_trace();
        let items = {
            let result = (|| {
                let mut disc = match self.conn.request(&Msg::Query(Query::Heavy { threshold }))? {
                    Msg::HhDisclosure(d) => d,
                    other => return Err(unexpected("hh-disclosure", other.name())),
                };
                loop {
                    report.rounds += 1;
                    report.p_to_v_words += disc.words();
                    match session.receive_level(&disc)? {
                        HhStep::RevealKeys { level, r, s } => {
                            report.v_to_p_words += 2;
                            disc = match self.conn.request(&Msg::HhKeys { level, r, s })? {
                                Msg::HhDisclosure(d) => d,
                                other => return Err(unexpected("hh-disclosure", other.name())),
                            };
                        }
                        HhStep::Accept(items) => return Ok(items),
                    }
                }
            })();
            let verdict = result.as_ref().map(|_| F::ZERO).map_err(Clone::clone);
            self.verdict(&verdict);
            result?
        };
        report.verifier_space_words = streaming_space + session.space_words();
        Ok((items, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::run_session;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sip_core::channel::InMemoryTransport;
    use sip_field::Fp61;
    use sip_streaming::{workloads, FrequencyVector};
    use std::thread;

    fn serve(mut transport: InMemoryTransport) -> thread::JoinHandle<()> {
        thread::spawn(move || {
            let hello = sip_wire::server_handshake::<Fp61, _>(&mut transport).unwrap();
            let _ = run_session::<Fp61, _>(transport, hello.mode, hello.log_u);
        })
    }

    fn raw_pair(log_u: u32) -> (RawClient<Fp61, InMemoryTransport>, thread::JoinHandle<()>) {
        let (a, b) = InMemoryTransport::pair();
        let server = serve(a);
        (RawClient::from_transport(b, log_u).unwrap(), server)
    }

    #[test]
    fn f2_over_in_memory_transport() {
        let log_u = 8;
        let stream = workloads::paper_f2(1 << log_u, 7);
        let truth = FrequencyVector::from_stream(1 << log_u, &stream).self_join_size();
        let mut rng = StdRng::seed_from_u64(1);

        let (mut client, server) = raw_pair(log_u);
        let mut verifier = F2Verifier::<Fp61>::new(log_u, &mut rng);
        for &up in &stream {
            verifier.update(up);
            client.send_update(up);
        }
        client.end_stream().unwrap();
        let got = client.verify_f2(verifier).unwrap();
        assert_eq!(got.value, Fp61::from_u128(truth as u128));
        assert_eq!(got.report.rounds, log_u as usize);
        client.bye().unwrap();
        server.join().unwrap();
    }

    #[test]
    fn oneshot_f2_and_range_sum_match_interactive() {
        let log_u = 8;
        let u = 1u64 << log_u;
        let stream = workloads::paper_f2(u, 7);
        let fv = FrequencyVector::from_stream(u, &stream);
        let mut rng = StdRng::seed_from_u64(31);

        let (mut client, server) = raw_pair(log_u);
        let mut f2 = F2Verifier::<Fp61>::new(log_u, &mut rng);
        let mut rs = RangeSumVerifier::<Fp61>::new(log_u, &mut rng);
        for &up in &stream {
            f2.update(up);
            rs.update(up);
            client.send_update(up);
        }
        client.end_stream().unwrap();

        let got = client.verify_f2_oneshot(f2).unwrap();
        assert_eq!(got.value, Fp61::from_u128(fv.self_join_size() as u128));
        assert_eq!(got.report.rounds, 1, "one-shot must bill one round trip");
        assert!(
            got.report.p_to_v_words > log_u as usize,
            "the whole proof rides the one frame"
        );

        let (q_l, q_r) = (10, 200);
        let sum = client.verify_range_sum_oneshot(rs, q_l, q_r).unwrap();
        assert_eq!(sum.value, Fp61::from_i64(fv.range_sum(q_l, q_r) as i64));
        assert_eq!(sum.report.rounds, 1);
        client.bye().unwrap();
        server.join().unwrap();
    }

    #[test]
    fn remote_kv_store_serves_oneshot_aggregates() {
        use sip_kvstore::{Client, QueryBudget};
        let log_u = 8;
        let (a, b) = InMemoryTransport::pair();
        let server = serve(a);
        let mut store: RemoteStore<Fp61, _> = RemoteStore::from_transport(b, log_u).unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        let mut client = Client::<Fp61>::new(log_u, QueryBudget::default(), &mut rng);
        for (k, v) in [(3u64, 10u64), (17, 0), (40, 999), (200, 55)] {
            client.put(k, v, &mut store);
        }
        let sum = client.range_sum_oneshot(0, 255, &store).unwrap();
        assert_eq!(sum.value, 10 + 999 + 55);
        assert_eq!(
            sum.report.rounds, 2,
            "range-sum = sum + count, one frame each"
        );
        let sj = client.self_join_size_oneshot(&store).unwrap();
        assert_eq!(sj.value, 100 + 999 * 999 + 55 * 55);
        assert_eq!(sj.report.rounds, 1);
        store.bye().unwrap();
        server.join().unwrap();
    }

    #[test]
    fn report_and_range_sum_over_in_memory_transport() {
        let log_u = 8;
        let u = 1u64 << log_u;
        let stream = workloads::distinct_key_values(60, u, 100, 3);
        let fv = FrequencyVector::from_stream(u, &stream);
        let mut rng = StdRng::seed_from_u64(2);

        let (mut client, server) = raw_pair(log_u);
        let mut sub = SubVectorVerifier::<Fp61>::new(log_u, &mut rng);
        let mut rs = RangeSumVerifier::<Fp61>::new(log_u, &mut rng);
        for &up in &stream {
            sub.update(up);
            rs.update(up);
            client.send_update(up);
        }
        client.end_stream().unwrap();

        let (q_l, q_r) = (10, 200);
        let report = client.verify_report(sub, q_l, q_r).unwrap();
        let expect: Vec<(u64, Fp61)> = fv
            .range_report(q_l, q_r)
            .into_iter()
            .map(|(i, f)| (i, Fp61::from_i64(f)))
            .collect();
        assert_eq!(report.entries, expect);
        let sum = client.verify_range_sum(rs, q_l, q_r).unwrap();
        assert_eq!(sum.value, Fp61::from_i64(fv.range_sum(q_l, q_r) as i64));
        client.bye().unwrap();
        server.join().unwrap();
    }

    #[test]
    fn heavy_over_in_memory_transport() {
        let log_u = 8;
        let stream = workloads::zipf(5_000, 1 << log_u, 1.3, 5);
        let fv = FrequencyVector::from_stream(1 << log_u, &stream);
        let mut rng = StdRng::seed_from_u64(4);
        let threshold = 100u64;
        let truth: Vec<(u64, u64)> = fv
            .heavy_hitters(threshold as i64)
            .into_iter()
            .map(|(i, f)| (i, f as u64))
            .collect();

        let (mut client, server) = raw_pair(log_u);
        let mut hasher = CountTreeHasher::<Fp61>::random(log_u, &mut rng);
        for &up in &stream {
            hasher.update(up);
            client.send_update(up);
        }
        client.end_stream().unwrap();
        let (items, report) = client.verify_heavy(hasher, threshold).unwrap();
        assert_eq!(items, truth);
        assert!(report.rounds > 0);
        client.bye().unwrap();
        server.join().unwrap();
    }

    #[test]
    fn oversized_ingest_batch_is_auto_chunked() {
        // One Msg::Ingest of 1.1M updates encodes to ~17.6 MB — over the
        // 16 MiB frame cap. The client must split it below the cap instead
        // of failing locally; the server sees the same stream either way.
        let log_u = 10;
        let u = 1u64 << log_u;
        let n: usize = 1_100_000;
        assert!(n * 16 > sip_core::channel::DEFAULT_MAX_FRAME);
        let updates: Vec<Update> = (0..n)
            .map(|i| Update::new(i as u64 % u, (i % 5) as i64 + 1))
            .collect();

        let (mut client, server) = raw_pair(log_u);
        let mut rng = StdRng::seed_from_u64(9);
        let mut verifier = F2Verifier::<Fp61>::new(log_u, &mut rng);
        for &up in &updates {
            verifier.update(up);
        }
        client.tell_msg(&Msg::Ingest(updates.clone())).unwrap();
        let frames_out = client.stats().frames_sent;
        assert!(
            frames_out >= 3,
            "expected the batch split across frames, saw {frames_out}"
        );

        let truth = FrequencyVector::from_stream(u, &updates).self_join_size();
        let got = client.verify_f2(verifier).unwrap();
        assert_eq!(got.value, Fp61::from_u128(truth as u128));
        client.bye().unwrap();
        server.join().unwrap();
    }

    #[test]
    fn publish_attach_over_in_memory_transport() {
        // Publisher and attacher share one registry through a common
        // session context, as under one spawned server.
        use crate::registry::DatasetRegistry;
        use crate::session::{run_session_ctx, SessionContext};
        use std::sync::Arc;

        let log_u = 8;
        let stream = workloads::paper_f2(1 << log_u, 3);
        let truth = FrequencyVector::from_stream(1 << log_u, &stream).self_join_size();
        let registry = Arc::new(DatasetRegistry::<Fp61>::new(4));

        let serve_shared = |transport: InMemoryTransport, registry: Arc<DatasetRegistry<Fp61>>| {
            thread::spawn(move || {
                let mut transport = transport;
                let hello = sip_wire::server_handshake::<Fp61, _>(&mut transport).unwrap();
                let _ = run_session_ctx::<Fp61, _>(
                    transport,
                    hello.mode,
                    hello.log_u,
                    SessionContext {
                        registry,
                        ..SessionContext::default()
                    },
                );
            })
        };

        // Owner ingests and publishes.
        let (a, b) = InMemoryTransport::pair();
        let s1 = serve_shared(a, Arc::clone(&registry));
        let mut owner: RawClient<Fp61, _> = RawClient::from_transport(b, log_u).unwrap();
        owner.send_stream(&stream);
        owner.publish("shared").unwrap();
        owner.bye().unwrap();
        s1.join().unwrap();

        // A verifier attaches and proves F2 without re-uploading.
        let (a, b) = InMemoryTransport::pair();
        let s2 = serve_shared(a, registry);
        let mut verifier_client: RawClient<Fp61, _> = RawClient::from_transport(b, log_u).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let mut digest = F2Verifier::<Fp61>::new(log_u, &mut rng);
        digest.update_all(&stream);
        verifier_client.attach("shared").unwrap();
        let got = verifier_client.verify_f2(digest).unwrap();
        assert_eq!(got.value, Fp61::from_u128(truth as u128));
        verifier_client.bye().unwrap();
        s2.join().unwrap();
    }

    #[test]
    fn kv_store_over_in_memory_transport() {
        use sip_kvstore::{Client, QueryBudget};
        let log_u = 8;
        let (a, b) = InMemoryTransport::pair();
        let server = serve(a);
        let mut store: RemoteStore<Fp61, _> = RemoteStore::from_transport(b, log_u).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let mut client = Client::<Fp61>::new(log_u, QueryBudget::default(), &mut rng);
        for (k, v) in [(3u64, 10u64), (17, 0), (40, 999), (200, 55)] {
            client.put(k, v, &mut store);
        }
        assert_eq!(client.get(3, &store).unwrap().value, Some(10));
        assert_eq!(client.get(18, &store).unwrap().value, None);
        assert_eq!(
            client.range(10, 100, &store).unwrap().value,
            vec![(17, 0), (40, 999)]
        );
        assert_eq!(
            client.range_sum(0, 255, &store).unwrap().value,
            10 + 999 + 55
        );
        assert_eq!(
            client.self_join_size(&store).unwrap().value,
            100 + 999 * 999 + 55 * 55
        );
        assert_eq!(client.predecessor(39, &store).unwrap().value, Some(17));
        assert_eq!(
            client.heavy_keys(56, &store).unwrap().value,
            vec![(40, 999), (200, 55)]
        );
        let served = store.bye().unwrap();
        assert!(
            served.p_to_v_words > 0 && served.rounds > 0,
            "server-side accounting empty: {served:?}"
        );
        server.join().unwrap();
    }
}

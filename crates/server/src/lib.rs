//! `sip-server`: the prover as a multi-threaded TCP service, plus the
//! remote verifier client.
//!
//! The paper's outsourcing story made concrete: a server accepts verifier
//! connections, gives each its own [`session`] state machine (stream ingest
//! → queries → interactive rounds) on its own thread, and drives the
//! *unchanged* in-process provers behind the wire. On the other side,
//! [`client::RemoteStore`] implements [`sip_kvstore::KvServer`] over a
//! socket — so [`sip_kvstore::Client`] runs the same verified queries
//! against a prover on another machine, byte-for-byte the same algebra as
//! in-process, and [`client`]'s raw-stream drivers do the same for the
//! aggregate protocols.
//!
//! Soundness does not move an inch: the network is part of the adversary.
//! Whatever a router, proxy, or the server itself does to the traffic, the
//! verifier accepts only answers consistent with its streamed digests
//! (tamper suite: `tests/wire_tamper.rs` at the workspace root).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod persist;
pub mod registry;
pub mod session;

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

use sip_core::channel::FramedTcpTransport;
use sip_core::engine::ProverPool;
use sip_field::PrimeField;
use sip_wire::{server_handshake, Msg, MsgChannel, ShardSpec};

use registry::DatasetRegistry;
use session::{run_session_ctx, SessionContext, MAX_LOG_U};

/// Default cap on the number of published datasets one server holds.
pub const DEFAULT_MAX_DATASETS: usize = 1024;

/// Server tuning knobs.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Maximum concurrent sessions; further connections are turned away.
    pub max_sessions: usize,
    /// Per-read socket timeout for sessions (`None` = block forever).
    pub read_timeout: Option<Duration>,
    /// Maximum accepted frame length.
    pub max_frame: usize,
    /// Deploy this prover as one pinned shard of a fleet (`sip-prover
    /// --shard i --of n`): every session serves only that shard's index
    /// range, and a client [`sip_wire::Msg::ShardHello`] must agree.
    pub shard: Option<ShardSpec>,
    /// Refuse sessions whose handshake `log_u` differs from this value
    /// (fleet deployments must agree on the universe, or the shard ranges
    /// would not line up across provers).
    pub require_log_u: Option<u32>,
    /// Worker threads per prover round-message pass (`sip-prover
    /// --threads`): `1` is the serial engine, more run the fold kernel
    /// data-parallel per session query, and `0` auto-detects the machine's
    /// parallelism via [`std::thread::available_parallelism`] (a 1-CPU box
    /// then correctly runs serial instead of losing throughput to idle
    /// workers). Transcripts are identical at any setting.
    pub threads: usize,
    /// Cap on published datasets held in the server-wide registry
    /// (published snapshots outlive their publishing sessions).
    pub max_datasets: usize,
    /// Persist published datasets and named checkpoints here (`sip-prover
    /// --data-dir`), and reload them on startup: `Publish` → crash →
    /// restart → `Attach` works, and `Msg::SaveState` checkpoints
    /// `Msg::Resume`. `None` = memory-only (state dies with the process).
    pub data_dir: Option<PathBuf>,
    /// Bind a read-only ops listener here (`sip-prover --metrics-addr`):
    /// `/metrics` is Prometheus text, `/stats` a JSON snapshot. The
    /// listener runs on its own thread, never touches a session, and is
    /// bounded against hostile input (see [`sip_obs::ops`]).
    pub metrics_addr: Option<String>,
    /// Treat any snapshot that fails to reload from `data_dir` as a
    /// startup error (`sip-prover --strict-load`) instead of skipping it
    /// with a warning event.
    pub strict_load: bool,
    /// Hot-path timer sampling rate (`sip-prover --obs-sample`): the
    /// engine's per-call ingest/fold latency timers run on 1 in this many
    /// calls. Counters stay exact at any setting — only histogram
    /// resolution trades against clock-read overhead. The default 16
    /// keeps timer cost unmeasurable; `1` times every call (still inside
    /// the 2 % CI budget on fold-sized work, but visible on tiny
    /// batches); `0` turns the sampled timers off entirely. Applied
    /// process-wide at [`spawn`] via [`sip_obs::set_timer_sample`].
    pub obs_sample: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_sessions: 64,
            // A verifier that goes silent for this long has abandoned its
            // session; reclaim the thread.
            read_timeout: Some(Duration::from_secs(30)),
            max_frame: sip_core::channel::DEFAULT_MAX_FRAME,
            shard: None,
            require_log_u: None,
            threads: 1,
            max_datasets: DEFAULT_MAX_DATASETS,
            data_dir: None,
            metrics_addr: None,
            strict_load: false,
            obs_sample: 16,
        }
    }
}

/// A running server; dropping the handle does **not** stop it — call
/// [`ServerHandle::shutdown`].
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    active: Arc<AtomicUsize>,
    accept_thread: Option<JoinHandle<()>>,
    ops: Option<sip_obs::OpsHandle>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The ops listener's bound address, when one was configured.
    pub fn ops_addr(&self) -> Option<SocketAddr> {
        self.ops.as_ref().map(|h| h.local_addr())
    }

    /// Number of sessions currently being served.
    pub fn active_sessions(&self) -> usize {
        self.active.load(Ordering::SeqCst)
    }

    /// Blocks until the accept loop exits — which it only does after a
    /// [`Self::shutdown`] from elsewhere, so this parks the main thread of
    /// a standalone prover (`sip-prover`) for the life of the process.
    pub fn wait(mut self) {
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }

    /// Stops accepting, unblocks the accept loop, and joins it. Running
    /// sessions finish on their own threads.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock `accept` with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        if let Some(ops) = self.ops.take() {
            ops.shutdown();
        }
    }
}

/// Binds `addr` and serves sessions over field `F` until shut down.
///
/// Each accepted connection is handshaken (version + field + mode), then
/// runs its [`session`] on a dedicated thread. Handshake rejects and the
/// session-cap check happen before any protocol state is allocated.
pub fn spawn<F: PrimeField, A: ToSocketAddrs>(
    addr: A,
    config: ServerConfig,
) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let active = Arc::new(AtomicUsize::new(0));
    sip_obs::set_timer_sample(config.obs_sample);
    // One registry per server: what any session publishes, every later
    // session (on any thread) can attach to. With a data directory it is
    // reloaded from disk, so published datasets and checkpoints survive a
    // crash of the previous process.
    let registry: Arc<DatasetRegistry<F>> = match &config.data_dir {
        Some(dir) => {
            let reg = DatasetRegistry::with_data_dir(config.max_datasets, dir.clone())
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?;
            // Each skipped snapshot is one structured warning (with no sink
            // installed these still land on stderr) plus a gauge, so a
            // scrape shows a lossy restart long after the log scrolled by.
            for warning in reg.load_errors() {
                sip_obs::event!(
                    sip_obs::Level::Warn,
                    "sip.server.registry",
                    "data-dir load skipped a snapshot",
                    "reason" => warning,
                );
            }
            sip_obs::gauge("sip_registry_load_errors").set(reg.load_errors().len() as i64);
            if config.strict_load && !reg.load_errors().is_empty() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "--strict-load: {} snapshot(s) failed to reload from {}",
                        reg.load_errors().len(),
                        dir.display()
                    ),
                ));
            }
            Arc::new(reg)
        }
        None => Arc::new(DatasetRegistry::new(config.max_datasets)),
    };
    let ops = match &config.metrics_addr {
        Some(addr) => Some(sip_obs::serve_ops(addr.as_str())?),
        None => None,
    };

    let accept_stop = Arc::clone(&stop);
    let accept_active = Arc::clone(&active);
    let accept_thread = thread::Builder::new()
        .name("sip-accept".into())
        .spawn(move || {
            for incoming in listener.incoming() {
                if accept_stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = incoming else { continue };
                if accept_active.load(Ordering::SeqCst) >= config.max_sessions {
                    // Over capacity: close immediately; the client sees a
                    // transport error, not a hang.
                    drop(stream);
                    continue;
                }
                let config = config.clone();
                let registry = Arc::clone(&registry);
                let counter = Arc::clone(&accept_active);
                counter.fetch_add(1, Ordering::SeqCst);
                let spawned = thread::Builder::new()
                    .name("sip-session".into())
                    .spawn(move || {
                        let _guard = SessionGuard::new(counter);
                        serve_connection::<F>(stream, &config, registry);
                    });
                if spawned.is_err() {
                    accept_active.fetch_sub(1, Ordering::SeqCst);
                }
            }
        })?;

    Ok(ServerHandle {
        addr,
        stop,
        active,
        accept_thread: Some(accept_thread),
        ops,
    })
}

/// Decrements the capacity counter when a session thread exits, and keeps
/// the `sip_server_active_sessions` gauge in lockstep with it.
struct SessionGuard {
    counter: Arc<AtomicUsize>,
    _gauge: sip_obs::GaugeGuard,
}

impl SessionGuard {
    fn new(counter: Arc<AtomicUsize>) -> Self {
        SessionGuard {
            counter,
            _gauge: sip_obs::GaugeGuard::new(sip_obs::gauge("sip_server_active_sessions")),
        }
    }
}

impl Drop for SessionGuard {
    fn drop(&mut self) {
        self.counter.fetch_sub(1, Ordering::SeqCst);
    }
}

fn serve_connection<F: PrimeField>(
    stream: TcpStream,
    config: &ServerConfig,
    registry: Arc<DatasetRegistry<F>>,
) {
    let Ok(mut transport) = FramedTcpTransport::with_max_frame(stream, config.max_frame) else {
        return;
    };
    if transport.set_timeout(config.read_timeout).is_err() {
        return;
    }
    let hello = match server_handshake::<F, _>(&mut transport) {
        Ok(hello) => hello,
        Err(e) => {
            // Tell the peer why before hanging up (best effort; the frame
            // may not parse on ancient clients, which is fine).
            let mut chan = MsgChannel::new(transport);
            let _ = chan.send(&Msg::<F>::Error(e.to_string()));
            return;
        }
    };
    if hello.log_u == 0 || hello.log_u > MAX_LOG_U {
        let mut chan = MsgChannel::new(transport);
        let _ = chan.send(&Msg::<F>::Error(format!(
            "log_u must be in [1, {MAX_LOG_U}], got {}",
            hello.log_u
        )));
        return;
    }
    if let Some(required) = config.require_log_u {
        if hello.log_u != required {
            let mut chan = MsgChannel::new(transport);
            let _ = chan.send(&Msg::<F>::Error(format!(
                "this prover serves log_u = {required}, session asked for {}",
                hello.log_u
            )));
            return;
        }
    }
    let _ = run_session_ctx::<F, _>(
        transport,
        hello.mode,
        hello.log_u,
        SessionContext {
            shard: config.shard,
            pool: ProverPool::from_config(config.threads),
            registry,
        },
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use sip_field::Fp61;
    use sip_wire::{client_handshake, Hello, SessionMode, WireError, PROTOCOL_VERSION};

    fn connect(addr: SocketAddr) -> FramedTcpTransport {
        let stream = TcpStream::connect(addr).unwrap();
        let mut t = FramedTcpTransport::new(stream).unwrap();
        t.set_timeout(Some(Duration::from_secs(2))).unwrap();
        t
    }

    #[test]
    fn spawn_handshake_shutdown() {
        let server = spawn::<Fp61, _>("127.0.0.1:0", ServerConfig::default()).unwrap();
        let mut t = connect(server.local_addr());
        let ack = client_handshake(&mut t, Hello::new::<Fp61>(SessionMode::RawStream, 8)).unwrap();
        assert_eq!(ack.version, PROTOCOL_VERSION);
        let mut chan = MsgChannel::new(t);
        chan.send(&Msg::<Fp61>::Bye).unwrap();
        server.shutdown();
    }

    #[test]
    fn field_mismatch_refused_with_error() {
        let server = spawn::<Fp61, _>("127.0.0.1:0", ServerConfig::default()).unwrap();
        let mut t = connect(server.local_addr());
        let err = client_handshake(
            &mut t,
            Hello::new::<sip_field::Fp127>(SessionMode::RawStream, 8),
        );
        // The server answers with an Error frame (which fails to parse as a
        // HelloAck) or closes; either way the client sees an error.
        assert!(err.is_err(), "{err:?}");
        server.shutdown();
    }

    #[test]
    fn oversized_log_u_refused() {
        let server = spawn::<Fp61, _>("127.0.0.1:0", ServerConfig::default()).unwrap();
        let mut t = connect(server.local_addr());
        client_handshake(&mut t, Hello::new::<Fp61>(SessionMode::RawStream, 63)).unwrap();
        let mut chan = MsgChannel::new(t);
        assert!(matches!(chan.recv::<Fp61>().unwrap(), Msg::Error(_)));
        server.shutdown();
    }

    #[test]
    fn session_cap_turns_connections_away() {
        let server = spawn::<Fp61, _>(
            "127.0.0.1:0",
            ServerConfig {
                max_sessions: 1,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let mut first = connect(server.local_addr());
        client_handshake(&mut first, Hello::new::<Fp61>(SessionMode::RawStream, 8)).unwrap();
        // Give the server a moment to hand off the first session.
        std::thread::sleep(Duration::from_millis(50));
        let mut second = connect(server.local_addr());
        let res = client_handshake(&mut second, Hello::new::<Fp61>(SessionMode::RawStream, 8));
        assert!(
            matches!(res, Err(WireError::Transport(_))),
            "expected refusal, got {res:?}"
        );
        server.shutdown();
    }

    #[test]
    fn concurrent_sessions_are_isolated() {
        let server = spawn::<Fp61, _>("127.0.0.1:0", ServerConfig::default()).unwrap();
        let addr = server.local_addr();
        let threads: Vec<_> = (0..8u64)
            .map(|i| {
                thread::spawn(move || {
                    let mut t = connect(addr);
                    client_handshake(&mut t, Hello::new::<Fp61>(SessionMode::RawStream, 4))
                        .unwrap();
                    let mut chan = MsgChannel::new(t);
                    // Each session streams a different singleton and asks
                    // for F2: the claims must not bleed across sessions.
                    chan.send(&Msg::<Fp61>::Ingest(vec![sip_streaming::Update::new(
                        i % 16,
                        (i + 1) as i64,
                    )]))
                    .unwrap();
                    chan.send(&Msg::<Fp61>::Query(sip_wire::Query::SelfJoin))
                        .unwrap();
                    let Msg::ClaimedValue(claim) = chan.recv::<Fp61>().unwrap() else {
                        panic!("expected claim");
                    };
                    assert_eq!(claim, Fp61::from_u64((i + 1) * (i + 1)));
                    chan.send(&Msg::<Fp61>::Bye).unwrap();
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        server.shutdown();
    }
}

//! The server-wide dataset registry: ingest once, serve many verifiers.
//!
//! The paper's economics are one heavily-resourced prover amortised over
//! many weak verifiers — but a prover that re-ingests the stream per
//! connection amortises nothing. A [`DatasetRegistry`] lets one session
//! freeze its ingested store into an immutable [`Dataset`] snapshot
//! (`Msg::Publish`), after which any number of concurrent sessions serve
//! queries from the same `Arc` (`Msg::Attach`) — no copies, no re-ingest,
//! no cross-session locks on the query path.
//!
//! ## Snapshot semantics
//!
//! Publishing freezes the data: the publishing session keeps querying the
//! snapshot but can no longer ingest, so every attached verifier sees one
//! immutable vector forever. Query-time prover state (fold tables, hash
//! trees) is built per query from the shared snapshot, exactly as it was
//! from a session-private store — same transcripts, different ownership.
//!
//! ## Trust
//!
//! The registry moves no trust: a verifier accepts only answers consistent
//! with its own streamed digests, so a server that swaps, corrupts, or
//! cross-wires datasets produces rejections, not wrong answers.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::{Arc, Mutex, RwLock};

use sip_durable::{load_snapshot, save_snapshot, SnapshotError};
use sip_field::PrimeField;
use sip_kvstore::CloudStore;
use sip_streaming::FrequencyVector;
use sip_wire::{SessionMode, ShardSpec};

use crate::persist::{manifest_path, snapshot_file_name, DurableKind, Manifest, ManifestEntry};

/// Longest accepted dataset id, in bytes. Ids are peer-chosen; the cap
/// keeps registry keys (and error messages echoing them) small.
pub const MAX_DATASET_ID_LEN: usize = 200;

/// The frozen data of a published dataset, by the publishing session's
/// mode.
pub enum DatasetData<F: PrimeField> {
    /// A raw update stream (frequency-vector semantics).
    Raw(FrequencyVector),
    /// A key-value store (encoded/presence/raw derived vectors).
    Kv(CloudStore<F>),
}

/// One published, immutable dataset snapshot.
pub struct Dataset<F: PrimeField> {
    /// Registry name.
    pub id: String,
    /// Universe exponent; attaching sessions must have handshaken the same
    /// value.
    pub log_u: u32,
    /// The shard identity the publishing session served, if any: an
    /// attached session inherits it (the snapshot only covers that shard's
    /// index range).
    pub shard: Option<ShardSpec>,
    /// The frozen vectors.
    pub data: DatasetData<F>,
}

impl<F: PrimeField> Dataset<F> {
    /// The session mode this dataset serves; attaching sessions must have
    /// handshaken the same mode.
    pub fn mode(&self) -> SessionMode {
        match self.data {
            DatasetData::Raw(_) => SessionMode::RawStream,
            DatasetData::Kv(_) => SessionMode::KvStore,
        }
    }
}

impl<F: PrimeField> core::fmt::Debug for Dataset<F> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Dataset")
            .field("id", &self.id)
            .field("log_u", &self.log_u)
            .field("shard", &self.shard)
            .field("mode", &self.mode())
            .finish_non_exhaustive()
    }
}

/// Registry of published datasets, shared by every session of one server.
///
/// Reads (attach, query) take a shared lock only long enough to clone an
/// `Arc`; the query hot path never touches the registry again.
pub struct DatasetRegistry<F: PrimeField> {
    datasets: RwLock<HashMap<String, Arc<Dataset<F>>>>,
    /// Durable named checkpoints (`Msg::SaveState` / `Msg::Resume`):
    /// resumable session state, overwritten as it advances — unlike
    /// published datasets, which are frozen forever.
    checkpoints: RwLock<HashMap<String, Arc<Dataset<F>>>>,
    max_datasets: usize,
    /// When set, every publish and checkpoint is persisted here and the
    /// directory is reloaded on construction.
    data_dir: Option<PathBuf>,
    /// Serialises all disk traffic (snapshot writes + manifest rewrites);
    /// always taken *before* any map lock.
    disk: Mutex<()>,
    /// The durable file name assigned to each `(kind, id)`. Ids hash to a
    /// *base* name (FNV-1a is not collision resistant and ids are
    /// peer-chosen), so the registry disambiguates: a second id whose
    /// hash collides with an already-assigned file gets a `-1`, `-2`, …
    /// suffix instead of silently overwriting acknowledged-durable data.
    files: RwLock<HashMap<(u8, String), String>>,
    /// Manifest rows whose snapshots could not be registered at startup
    /// (corrupt file, cap excess, id mismatch). Their rows — and their
    /// file-name reservations — are preserved across manifest rewrites,
    /// so acknowledged-durable data stays findable for operator repair or
    /// a bigger-cap restart instead of being silently orphaned. A row is
    /// superseded once its `(kind, id)` is published/saved again.
    orphans: Vec<ManifestEntry>,
    /// What could not be restored at startup (corrupt or truncated files,
    /// manifest rows whose snapshot disagrees) — skipped, never a crash.
    load_errors: Vec<String>,
}

fn kind_byte(kind: DurableKind) -> u8 {
    match kind {
        DurableKind::Published => 0,
        DurableKind::Checkpoint => 1,
    }
}

impl<F: PrimeField> DatasetRegistry<F> {
    /// An empty registry holding at most `max_datasets` snapshots
    /// (publishes beyond the cap are refused — published data outlives the
    /// publishing session, so an uncapped registry would let one peer pin
    /// unbounded memory).
    pub fn new(max_datasets: usize) -> Self {
        DatasetRegistry {
            datasets: RwLock::new(HashMap::new()),
            checkpoints: RwLock::new(HashMap::new()),
            max_datasets,
            data_dir: None,
            disk: Mutex::new(()),
            files: RwLock::new(HashMap::new()),
            orphans: Vec::new(),
            load_errors: Vec::new(),
        }
    }

    /// A registry backed by `dir`: the directory is created if missing,
    /// its manifest (if any) is loaded, and every restorable snapshot is
    /// registered — `Publish` → crash → restart → `Attach` works, and
    /// saved checkpoints `Resume`. Corrupt or truncated snapshot files are
    /// skipped and reported via [`Self::load_errors`]; only a directory
    /// that cannot be created or listed is a hard error.
    pub fn with_data_dir(max_datasets: usize, dir: PathBuf) -> Result<Self, String> {
        std::fs::create_dir_all(&dir)
            .map_err(|e| format!("cannot create data dir {}: {e}", dir.display()))?;
        let mut reg = Self::new(max_datasets);
        let manifest = match std::fs::metadata(manifest_path(&dir)) {
            Ok(_) => match load_snapshot::<Manifest>(&manifest_path(&dir)) {
                Ok(m) => m,
                Err(e) => {
                    // A corrupt manifest loses the enumeration, not the
                    // server: start empty, report, and let the next write
                    // replace it.
                    reg.load_errors.push(format!("manifest unreadable: {e}"));
                    Manifest::default()
                }
            },
            Err(_) => Manifest::default(),
        };
        for entry in &manifest.entries {
            // Every manifest row reserves its file name, registered or
            // not: a later publish of a colliding id must never be handed
            // a skipped entry's file.
            reg.files.write().unwrap_or_else(|p| p.into_inner()).insert(
                (kind_byte(entry.kind), entry.id.clone()),
                entry.file.clone(),
            );
            let path = dir.join(&entry.file);
            let skip_reason = match load_snapshot::<Dataset<F>>(&path) {
                Ok(ds) if ds.id == entry.id => {
                    let map = match entry.kind {
                        DurableKind::Published => &reg.datasets,
                        DurableKind::Checkpoint => &reg.checkpoints,
                    };
                    let mut map = map.write().unwrap_or_else(|p| p.into_inner());
                    // The restart may run with a smaller cap than the
                    // process that wrote the manifest; the cap is a memory
                    // bound and holds across reloads too.
                    if map.len() >= max_datasets {
                        Some(format!(
                            "{}: {:?} skipped — registry cap {max_datasets} reached",
                            entry.file, entry.id
                        ))
                    } else {
                        map.insert(ds.id.clone(), Arc::new(ds));
                        None
                    }
                }
                Ok(ds) => Some(format!(
                    "{}: snapshot holds {:?}, manifest says {:?} — skipped",
                    entry.file, ds.id, entry.id
                )),
                Err(e) => Some(format!("{}: {e} — skipped", entry.file)),
            };
            if let Some(reason) = skip_reason {
                // Keep the row: the data was acknowledged durable once,
                // and a manifest rewrite must not orphan it.
                reg.orphans.push(entry.clone());
                reg.load_errors.push(reason);
            }
        }
        reg.data_dir = Some(dir);
        Ok(reg)
    }

    /// Whether this registry persists to disk.
    pub fn is_durable(&self) -> bool {
        self.data_dir.is_some()
    }

    /// Writes one flight-recorder post-mortem into the data directory and
    /// returns its path (`Ok(None)` on a memory-only registry). `tag` is
    /// peer-chosen (typically a dataset id), so the file name goes through
    /// the same hashing as snapshots ([`crate::persist::trace_dump_file_name`]) —
    /// hostile ids never touch the filesystem. Dumps are diagnostics, not
    /// durable state: they are not manifest-tracked and never reloaded.
    pub fn dump_flight_record(&self, tag: &str, json: &str) -> Result<Option<PathBuf>, String> {
        static DUMP_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let Some(dir) = &self.data_dir else {
            return Ok(None);
        };
        let _disk = self.disk.lock().unwrap_or_else(|p| p.into_inner());
        let seq = DUMP_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let path = dir.join(crate::persist::trace_dump_file_name(tag, seq));
        std::fs::write(&path, json)
            .map_err(|e| format!("cannot write flight record {}: {e}", path.display()))?;
        Ok(Some(path))
    }

    /// What could not be restored at startup (empty on a clean start).
    pub fn load_errors(&self) -> &[String] {
        &self.load_errors
    }

    /// Rewrites the manifest from the current maps, an optional `extra`
    /// row not yet inserted into a map (publish writes the manifest
    /// *before* the dataset becomes attachable), and the orphan rows
    /// preserved from load. Caller holds `disk`.
    fn rewrite_manifest(
        &self,
        dir: &std::path::Path,
        extra: Option<(DurableKind, &str)>,
    ) -> Result<(), SnapshotError> {
        let files = self.files.read().unwrap_or_else(|p| p.into_inner());
        let mut entries: Vec<ManifestEntry> = Vec::new();
        let mut seen: std::collections::HashSet<(u8, String)> = std::collections::HashSet::new();
        let push = |entries: &mut Vec<ManifestEntry>,
                    seen: &mut std::collections::HashSet<(u8, String)>,
                    kind: DurableKind,
                    id: &str|
         -> Result<(), SnapshotError> {
            if !seen.insert((kind_byte(kind), id.to_string())) {
                return Ok(());
            }
            // Every registered id has an assignment (made at load or at
            // persist time); a miss is an internal invariant violation and
            // must be loud — the hash-derived fallback could alias another
            // id's file.
            let file = files
                .get(&(kind_byte(kind), id.to_string()))
                .cloned()
                .ok_or_else(|| {
                    SnapshotError::Invalid(format!("no durable file assigned to {id:?}"))
                })?;
            entries.push(ManifestEntry {
                kind,
                id: id.to_string(),
                file,
                field_id: 0,
            });
            Ok(())
        };
        for (kind, map) in [
            (DurableKind::Published, &self.datasets),
            (DurableKind::Checkpoint, &self.checkpoints),
        ] {
            let map = map.read().unwrap_or_else(|p| p.into_inner());
            for id in map.keys() {
                push(&mut entries, &mut seen, kind, id)?;
            }
        }
        if let Some((kind, id)) = extra {
            push(&mut entries, &mut seen, kind, id)?;
        }
        for row in &self.orphans {
            // Superseded once the id is durable again; retained otherwise.
            if seen.insert((kind_byte(row.kind), row.id.clone())) {
                entries.push(row.clone());
            }
        }
        entries.sort_by(|a, b| (a.id.as_str(), a.kind as u8).cmp(&(b.id.as_str(), b.kind as u8)));
        save_snapshot(&manifest_path(dir), &Manifest { entries })
    }

    /// The durable file name for `(kind, id)`: the existing assignment if
    /// any, else the hash-derived base name, suffix-disambiguated past any
    /// file already assigned to a *different* id (FNV collisions must not
    /// overwrite acknowledged-durable data). Returns `(name, newly
    /// assigned)`. Caller holds `disk`.
    fn assign_file(&self, kind: DurableKind, id: &str) -> (String, bool) {
        let mut files = self.files.write().unwrap_or_else(|p| p.into_inner());
        let key = (kind_byte(kind), id.to_string());
        if let Some(existing) = files.get(&key) {
            return (existing.clone(), false);
        }
        let base = snapshot_file_name(kind, id);
        let mut candidate = base.clone();
        let mut n = 0u32;
        while files.values().any(|f| *f == candidate) {
            n += 1;
            let stem = base.trim_end_matches(".sipd");
            candidate = format!("{stem}-{n}.sipd");
        }
        files.insert(key, candidate.clone());
        (candidate, true)
    }

    /// Persists one dataset snapshot plus (when the id is new) the
    /// refreshed manifest — an overwrite of an existing checkpoint leaves
    /// the manifest byte-identical, so the extra write + fsync is skipped.
    /// Runs **before** the dataset is inserted into a map, so a persist
    /// failure is never observable as a transiently-registered dataset.
    /// Caller holds `disk`.
    fn persist_to_disk(&self, kind: DurableKind, dataset: &Dataset<F>) -> Result<(), String> {
        let Some(dir) = &self.data_dir else {
            return Ok(());
        };
        let (file, newly_assigned) = self.assign_file(kind, &dataset.id);
        let unassign = |reg: &Self| {
            if newly_assigned {
                reg.files
                    .write()
                    .unwrap_or_else(|p| p.into_inner())
                    .remove(&(kind_byte(kind), dataset.id.clone()));
            }
        };
        if let Err(e) = save_snapshot(&dir.join(&file), dataset) {
            unassign(self);
            return Err(format!("persisting {:?}: {e}", dataset.id));
        }
        if newly_assigned {
            if let Err(e) = self.rewrite_manifest(dir, Some((kind, &dataset.id))) {
                unassign(self);
                return Err(format!("rewriting manifest: {e}"));
            }
        }
        Ok(())
    }

    /// Publishes a frozen dataset under its id. Refuses duplicates and
    /// registry overflow (atomically — two racing publishers of one id see
    /// one success). On a durable registry the snapshot and manifest hit
    /// disk **before** the dataset becomes attachable, so no session can
    /// observe a publish whose persistence then fails.
    pub fn publish(&self, dataset: Dataset<F>) -> Result<Arc<Dataset<F>>, String> {
        let _disk = self.disk.lock().unwrap_or_else(|p| p.into_inner());
        {
            let map = self.datasets.read().unwrap_or_else(|p| p.into_inner());
            if map.contains_key(&dataset.id) {
                return Err(format!("dataset {:?} is already published", dataset.id));
            }
            if map.len() >= self.max_datasets {
                return Err(format!(
                    "dataset registry is full ({} datasets)",
                    self.max_datasets
                ));
            }
        }
        let arc = Arc::new(dataset);
        self.persist_to_disk(DurableKind::Published, &arc)?;
        self.datasets
            .write()
            .unwrap_or_else(|p| p.into_inner())
            .insert(arc.id.clone(), Arc::clone(&arc));
        if sip_obs::enabled() {
            sip_obs::counter("sip_registry_publish_total").inc();
        }
        Ok(arc)
    }

    /// Saves (or advances) a durable named checkpoint. Checkpoints do not
    /// count against `max_datasets` published snapshots but share the same
    /// cap on their own map; re-saving an existing id overwrites it.
    /// Refused on a memory-only registry — a checkpoint that does not
    /// survive a restart is a lie.
    pub fn save_checkpoint(&self, dataset: Dataset<F>) -> Result<(), String> {
        if self.data_dir.is_none() {
            return Err("this server has no data directory (start with --data-dir)".to_string());
        }
        let _disk = self.disk.lock().unwrap_or_else(|p| p.into_inner());
        {
            let map = self.checkpoints.read().unwrap_or_else(|p| p.into_inner());
            if !map.contains_key(&dataset.id) && map.len() >= self.max_datasets {
                return Err(format!(
                    "checkpoint store is full ({} checkpoints)",
                    self.max_datasets
                ));
            }
        }
        let arc = Arc::new(dataset);
        // Disk first: a checkpoint that failed to persist leaves the
        // previous checkpoint (memory and disk) intact — the peer learns
        // durability was not achieved, and `Resume` never sees state that
        // would vanish on restart.
        self.persist_to_disk(DurableKind::Checkpoint, &arc)?;
        self.checkpoints
            .write()
            .unwrap_or_else(|p| p.into_inner())
            .insert(arc.id.clone(), Arc::clone(&arc));
        if sip_obs::enabled() {
            sip_obs::counter("sip_registry_checkpoint_total").inc();
        }
        Ok(())
    }

    /// The checkpoint saved under `id`, if any.
    pub fn checkpoint(&self, id: &str) -> Option<Arc<Dataset<F>>> {
        self.checkpoints
            .read()
            .unwrap_or_else(|p| p.into_inner())
            .get(id)
            .cloned()
    }

    /// Every durable id (published datasets and checkpoints), sorted —
    /// the enumeration a `Msg::StateAck` carries.
    pub fn durable_ids(&self) -> Vec<String> {
        let mut ids: Vec<String> = self
            .datasets
            .read()
            .unwrap_or_else(|p| p.into_inner())
            .keys()
            .chain(
                self.checkpoints
                    .read()
                    .unwrap_or_else(|p| p.into_inner())
                    .keys(),
            )
            .cloned()
            .collect();
        ids.sort();
        ids.dedup();
        ids
    }

    /// The snapshot published under `id`, if any.
    pub fn get(&self, id: &str) -> Option<Arc<Dataset<F>>> {
        self.datasets
            .read()
            .unwrap_or_else(|p| p.into_inner())
            .get(id)
            .cloned()
    }

    /// Number of published datasets.
    pub fn len(&self) -> usize {
        self.datasets
            .read()
            .unwrap_or_else(|p| p.into_inner())
            .len()
    }

    /// Whether nothing has been published yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sip_field::Fp61;
    use sip_streaming::{FrequencyVector, Update};

    fn raw_dataset(id: &str) -> Dataset<Fp61> {
        let mut fv = FrequencyVector::new_sparse(1 << 8);
        fv.apply(Update::new(3, 5));
        Dataset {
            id: id.to_string(),
            log_u: 8,
            shard: None,
            data: DatasetData::Raw(fv),
        }
    }

    #[test]
    fn publish_get_roundtrip() {
        let reg = DatasetRegistry::<Fp61>::new(4);
        assert!(reg.is_empty());
        reg.publish(raw_dataset("a")).unwrap();
        let got = reg.get("a").unwrap();
        assert_eq!(got.log_u, 8);
        assert_eq!(got.mode(), SessionMode::RawStream);
        assert!(reg.get("b").is_none());
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn duplicate_id_refused() {
        let reg = DatasetRegistry::<Fp61>::new(4);
        reg.publish(raw_dataset("a")).unwrap();
        let err = reg.publish(raw_dataset("a")).unwrap_err();
        assert!(err.contains("already published"), "{err}");
    }

    #[test]
    fn capacity_enforced() {
        let reg = DatasetRegistry::<Fp61>::new(2);
        reg.publish(raw_dataset("a")).unwrap();
        reg.publish(raw_dataset("b")).unwrap();
        let err = reg.publish(raw_dataset("c")).unwrap_err();
        assert!(err.contains("full"), "{err}");
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("sip-registry-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn durable_publish_survives_reload() {
        let dir = temp_dir("publish");
        {
            let reg = DatasetRegistry::<Fp61>::with_data_dir(4, dir.clone()).unwrap();
            reg.publish(raw_dataset("a")).unwrap();
            reg.publish(raw_dataset("b")).unwrap();
        }
        // A fresh registry (fresh process, morally) sees both datasets.
        let reg = DatasetRegistry::<Fp61>::with_data_dir(4, dir.clone()).unwrap();
        assert!(reg.load_errors().is_empty(), "{:?}", reg.load_errors());
        assert_eq!(reg.len(), 2);
        let got = reg.get("a").unwrap();
        assert_eq!(got.log_u, 8);
        if let DatasetData::Raw(fv) = &got.data {
            assert_eq!(fv.get(3), 5);
        } else {
            panic!("mode changed across reload");
        }
        assert_eq!(reg.durable_ids(), vec!["a".to_string(), "b".to_string()]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoints_overwrite_and_reload() {
        let dir = temp_dir("checkpoint");
        {
            let reg = DatasetRegistry::<Fp61>::with_data_dir(4, dir.clone()).unwrap();
            reg.save_checkpoint(raw_dataset("ck")).unwrap();
            // Advancing the checkpoint overwrites it.
            let mut advanced = raw_dataset("ck");
            if let DatasetData::Raw(fv) = &mut advanced.data {
                fv.apply(Update::new(7, 9));
            }
            reg.save_checkpoint(advanced).unwrap();
        }
        let reg = DatasetRegistry::<Fp61>::with_data_dir(4, dir.clone()).unwrap();
        let ck = reg.checkpoint("ck").unwrap();
        let DatasetData::Raw(fv) = &ck.data else {
            panic!("mode changed")
        };
        assert_eq!(fv.get(7), 9, "reload must see the advanced checkpoint");
        assert!(reg.get("ck").is_none(), "checkpoints are not published");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn colliding_file_names_are_disambiguated() {
        let dir = temp_dir("collide");
        let reg = DatasetRegistry::<Fp61>::with_data_dir(8, dir.clone()).unwrap();
        // Pretend a different id already claimed "y"'s base file name — as
        // an offline-computable FNV collision of a peer-chosen id would.
        let base = crate::persist::snapshot_file_name(crate::persist::DurableKind::Published, "y");
        reg.files
            .write()
            .unwrap()
            .insert((0, "x".to_string()), base.clone());
        let (name, newly) = reg.assign_file(crate::persist::DurableKind::Published, "y");
        assert!(newly);
        assert_ne!(name, base, "collision must not share a file");
        assert!(name.ends_with("-1.sipd"), "{name}");
        // The assignment is sticky.
        let (again, newly) = reg.assign_file(crate::persist::DurableKind::Published, "y");
        assert_eq!(again, name);
        assert!(!newly);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reload_respects_a_smaller_cap() {
        let dir = temp_dir("cap");
        {
            let reg = DatasetRegistry::<Fp61>::with_data_dir(8, dir.clone()).unwrap();
            for id in ["a", "b", "c"] {
                reg.publish(raw_dataset(id)).unwrap();
            }
        }
        let reg = DatasetRegistry::<Fp61>::with_data_dir(2, dir.clone()).unwrap();
        assert_eq!(reg.len(), 2, "cap must bound the reload");
        assert_eq!(reg.load_errors().len(), 1);
        assert!(
            reg.load_errors()[0].contains("cap"),
            "{:?}",
            reg.load_errors()
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_overwrite_skips_the_manifest_rewrite() {
        let dir = temp_dir("manifest-skip");
        let reg = DatasetRegistry::<Fp61>::with_data_dir(4, dir.clone()).unwrap();
        reg.save_checkpoint(raw_dataset("ck")).unwrap();
        let mpath = crate::persist::manifest_path(&dir);
        let before = std::fs::metadata(&mpath).unwrap().modified().unwrap();
        let bytes_before = std::fs::read(&mpath).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(20));
        reg.save_checkpoint(raw_dataset("ck")).unwrap();
        // Identical manifest contents — and (advance permitting on this
        // filesystem's timestamp granularity) not rewritten at all.
        assert_eq!(std::fs::read(&mpath).unwrap(), bytes_before);
        assert_eq!(
            std::fs::metadata(&mpath).unwrap().modified().unwrap(),
            before
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn memory_only_registry_refuses_checkpoints() {
        let reg = DatasetRegistry::<Fp61>::new(4);
        let err = reg.save_checkpoint(raw_dataset("ck")).unwrap_err();
        assert!(err.contains("data directory"), "{err}");
    }

    #[test]
    fn corrupt_snapshot_files_are_skipped_not_fatal() {
        let dir = temp_dir("corrupt");
        {
            let reg = DatasetRegistry::<Fp61>::with_data_dir(4, dir.clone()).unwrap();
            reg.publish(raw_dataset("good")).unwrap();
            reg.publish(raw_dataset("bad")).unwrap();
        }
        // Corrupt one dataset file (flip a payload byte).
        let bad_file = dir.join(crate::persist::snapshot_file_name(
            crate::persist::DurableKind::Published,
            "bad",
        ));
        let mut bytes = std::fs::read(&bad_file).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&bad_file, &bytes).unwrap();

        let reg = DatasetRegistry::<Fp61>::with_data_dir(4, dir.clone()).unwrap();
        assert!(reg.get("good").is_some(), "good dataset must survive");
        assert!(reg.get("bad").is_none(), "corrupt dataset must be skipped");
        assert_eq!(reg.load_errors().len(), 1);
        assert!(
            reg.load_errors()[0].contains("checksum") || reg.load_errors()[0].contains("skipped"),
            "{:?}",
            reg.load_errors()
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn skipped_rows_survive_manifest_rewrites_and_repair() {
        let dir = temp_dir("orphan");
        {
            let reg = DatasetRegistry::<Fp61>::with_data_dir(8, dir.clone()).unwrap();
            reg.publish(raw_dataset("good")).unwrap();
            reg.publish(raw_dataset("bad")).unwrap();
        }
        // Corrupt "bad"'s snapshot, remembering the healthy bytes.
        let bad_file = dir.join(crate::persist::snapshot_file_name(
            crate::persist::DurableKind::Published,
            "bad",
        ));
        let healthy = std::fs::read(&bad_file).unwrap();
        let mut corrupt = healthy.clone();
        let mid = corrupt.len() / 2;
        corrupt[mid] ^= 0xFF;
        std::fs::write(&bad_file, &corrupt).unwrap();

        // Reload skips "bad" but must keep its manifest row through a
        // rewrite triggered by new durable activity.
        {
            let reg = DatasetRegistry::<Fp61>::with_data_dir(8, dir.clone()).unwrap();
            assert!(reg.get("bad").is_none());
            reg.publish(raw_dataset("new")).unwrap();
        }
        // Operator repairs the file; the next restart finds "bad" again
        // because its row was never dropped.
        std::fs::write(&bad_file, &healthy).unwrap();
        let reg = DatasetRegistry::<Fp61>::with_data_dir(8, dir.clone()).unwrap();
        assert!(reg.load_errors().is_empty(), "{:?}", reg.load_errors());
        assert!(reg.get("bad").is_some(), "repaired dataset must reload");
        assert!(reg.get("good").is_some());
        assert!(reg.get("new").is_some());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_manifest_is_reported_not_fatal() {
        let dir = temp_dir("manifest");
        {
            let reg = DatasetRegistry::<Fp61>::with_data_dir(4, dir.clone()).unwrap();
            reg.publish(raw_dataset("a")).unwrap();
        }
        let mpath = crate::persist::manifest_path(&dir);
        let bytes = std::fs::read(&mpath).unwrap();
        std::fs::write(&mpath, &bytes[..bytes.len() / 2]).unwrap();
        let reg = DatasetRegistry::<Fp61>::with_data_dir(4, dir.clone()).unwrap();
        assert_eq!(reg.len(), 0, "nothing restorable without a manifest");
        assert!(!reg.load_errors().is_empty());
        // The next publish rewrites a healthy manifest.
        reg.publish(raw_dataset("b")).unwrap();
        let reg = DatasetRegistry::<Fp61>::with_data_dir(4, dir.clone()).unwrap();
        assert!(reg.get("b").is_some());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn concurrent_publishers_of_one_id_race_cleanly() {
        let reg = std::sync::Arc::new(DatasetRegistry::<Fp61>::new(64));
        let outcomes: Vec<bool> = std::thread::scope(|s| {
            (0..8)
                .map(|_| {
                    let reg = std::sync::Arc::clone(&reg);
                    s.spawn(move || reg.publish(raw_dataset("contested")).is_ok())
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        assert_eq!(outcomes.iter().filter(|&&ok| ok).count(), 1);
        assert_eq!(reg.len(), 1);
    }
}

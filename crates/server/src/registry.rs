//! The server-wide dataset registry: ingest once, serve many verifiers.
//!
//! The paper's economics are one heavily-resourced prover amortised over
//! many weak verifiers — but a prover that re-ingests the stream per
//! connection amortises nothing. A [`DatasetRegistry`] lets one session
//! freeze its ingested store into an immutable [`Dataset`] snapshot
//! (`Msg::Publish`), after which any number of concurrent sessions serve
//! queries from the same `Arc` (`Msg::Attach`) — no copies, no re-ingest,
//! no cross-session locks on the query path.
//!
//! ## Snapshot semantics
//!
//! Publishing freezes the data: the publishing session keeps querying the
//! snapshot but can no longer ingest, so every attached verifier sees one
//! immutable vector forever. Query-time prover state (fold tables, hash
//! trees) is built per query from the shared snapshot, exactly as it was
//! from a session-private store — same transcripts, different ownership.
//!
//! ## Trust
//!
//! The registry moves no trust: a verifier accepts only answers consistent
//! with its own streamed digests, so a server that swaps, corrupts, or
//! cross-wires datasets produces rejections, not wrong answers.

use std::collections::HashMap;
use std::sync::{Arc, RwLock};

use sip_field::PrimeField;
use sip_kvstore::CloudStore;
use sip_streaming::FrequencyVector;
use sip_wire::{SessionMode, ShardSpec};

/// Longest accepted dataset id, in bytes. Ids are peer-chosen; the cap
/// keeps registry keys (and error messages echoing them) small.
pub const MAX_DATASET_ID_LEN: usize = 200;

/// The frozen data of a published dataset, by the publishing session's
/// mode.
pub enum DatasetData<F: PrimeField> {
    /// A raw update stream (frequency-vector semantics).
    Raw(FrequencyVector),
    /// A key-value store (encoded/presence/raw derived vectors).
    Kv(CloudStore<F>),
}

/// One published, immutable dataset snapshot.
pub struct Dataset<F: PrimeField> {
    /// Registry name.
    pub id: String,
    /// Universe exponent; attaching sessions must have handshaken the same
    /// value.
    pub log_u: u32,
    /// The shard identity the publishing session served, if any: an
    /// attached session inherits it (the snapshot only covers that shard's
    /// index range).
    pub shard: Option<ShardSpec>,
    /// The frozen vectors.
    pub data: DatasetData<F>,
}

impl<F: PrimeField> Dataset<F> {
    /// The session mode this dataset serves; attaching sessions must have
    /// handshaken the same mode.
    pub fn mode(&self) -> SessionMode {
        match self.data {
            DatasetData::Raw(_) => SessionMode::RawStream,
            DatasetData::Kv(_) => SessionMode::KvStore,
        }
    }
}

impl<F: PrimeField> core::fmt::Debug for Dataset<F> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Dataset")
            .field("id", &self.id)
            .field("log_u", &self.log_u)
            .field("shard", &self.shard)
            .field("mode", &self.mode())
            .finish_non_exhaustive()
    }
}

/// Registry of published datasets, shared by every session of one server.
///
/// Reads (attach, query) take a shared lock only long enough to clone an
/// `Arc`; the query hot path never touches the registry again.
pub struct DatasetRegistry<F: PrimeField> {
    datasets: RwLock<HashMap<String, Arc<Dataset<F>>>>,
    max_datasets: usize,
}

impl<F: PrimeField> DatasetRegistry<F> {
    /// An empty registry holding at most `max_datasets` snapshots
    /// (publishes beyond the cap are refused — published data outlives the
    /// publishing session, so an uncapped registry would let one peer pin
    /// unbounded memory).
    pub fn new(max_datasets: usize) -> Self {
        DatasetRegistry {
            datasets: RwLock::new(HashMap::new()),
            max_datasets,
        }
    }

    /// Publishes a frozen dataset under its id. Refuses duplicates and
    /// registry overflow (atomically — two racing publishers of one id see
    /// one success).
    pub fn publish(&self, dataset: Dataset<F>) -> Result<Arc<Dataset<F>>, String> {
        let mut map = self.datasets.write().unwrap_or_else(|p| p.into_inner());
        if map.contains_key(&dataset.id) {
            return Err(format!("dataset {:?} is already published", dataset.id));
        }
        if map.len() >= self.max_datasets {
            return Err(format!(
                "dataset registry is full ({} datasets)",
                self.max_datasets
            ));
        }
        let arc = Arc::new(dataset);
        map.insert(arc.id.clone(), Arc::clone(&arc));
        Ok(arc)
    }

    /// The snapshot published under `id`, if any.
    pub fn get(&self, id: &str) -> Option<Arc<Dataset<F>>> {
        self.datasets
            .read()
            .unwrap_or_else(|p| p.into_inner())
            .get(id)
            .cloned()
    }

    /// Number of published datasets.
    pub fn len(&self) -> usize {
        self.datasets
            .read()
            .unwrap_or_else(|p| p.into_inner())
            .len()
    }

    /// Whether nothing has been published yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sip_field::Fp61;
    use sip_streaming::{FrequencyVector, Update};

    fn raw_dataset(id: &str) -> Dataset<Fp61> {
        let mut fv = FrequencyVector::new_sparse(1 << 8);
        fv.apply(Update::new(3, 5));
        Dataset {
            id: id.to_string(),
            log_u: 8,
            shard: None,
            data: DatasetData::Raw(fv),
        }
    }

    #[test]
    fn publish_get_roundtrip() {
        let reg = DatasetRegistry::<Fp61>::new(4);
        assert!(reg.is_empty());
        reg.publish(raw_dataset("a")).unwrap();
        let got = reg.get("a").unwrap();
        assert_eq!(got.log_u, 8);
        assert_eq!(got.mode(), SessionMode::RawStream);
        assert!(reg.get("b").is_none());
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn duplicate_id_refused() {
        let reg = DatasetRegistry::<Fp61>::new(4);
        reg.publish(raw_dataset("a")).unwrap();
        let err = reg.publish(raw_dataset("a")).unwrap_err();
        assert!(err.contains("already published"), "{err}");
    }

    #[test]
    fn capacity_enforced() {
        let reg = DatasetRegistry::<Fp61>::new(2);
        reg.publish(raw_dataset("a")).unwrap();
        reg.publish(raw_dataset("b")).unwrap();
        let err = reg.publish(raw_dataset("c")).unwrap_err();
        assert!(err.contains("full"), "{err}");
    }

    #[test]
    fn concurrent_publishers_of_one_id_race_cleanly() {
        let reg = std::sync::Arc::new(DatasetRegistry::<Fp61>::new(64));
        let outcomes: Vec<bool> = std::thread::scope(|s| {
            (0..8)
                .map(|_| {
                    let reg = std::sync::Arc::clone(&reg);
                    s.spawn(move || reg.publish(raw_dataset("contested")).is_ok())
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        assert_eq!(outcomes.iter().filter(|&&ok| ok).count(), 1);
        assert_eq!(reg.len(), 1);
    }
}

//! The per-connection protocol state machine (prover side).
//!
//! One session = one verifier connection = one data stream plus any number
//! of sequential queries over it. The machine is message-driven: every
//! incoming frame either advances the active query, opens a new one, or is
//! answered with an [`Msg::Error`] — **never a panic**: the peer is
//! untrusted by construction, and a prover that can be crashed is a prover
//! that can be censored.
//!
//! ```text
//! (Ingest | Query → rounds → verdict)* ──Bye/close──▶ done
//! ```
//!
//! Updates and queries may interleave freely — the in-process
//! [`CloudStore`] has no phases and this server is a drop-in for it.
//!
//! The provers driven here are exactly the in-process ones
//! ([`F2Prover`], [`RangeSumProver`], [`SubVectorProver`], [`HhProver`],
//! via [`CloudStore`]'s vectors) — outsourcing changes where the prover
//! runs, not what it computes.

use std::sync::{Arc, OnceLock};

use sip_core::channel::Transport;
use sip_core::engine::ProverPool;
use sip_core::heavy_hitters::HhProver;
use sip_core::subvector::{RoundRequest, SubVectorProver};
use sip_core::sumcheck::f2::F2Prover;
use sip_core::sumcheck::range_sum::RangeSumProver;
use sip_core::sumcheck::{prove_oneshot, ProverWalk, RoundProver};
use sip_core::transcript::query_transcript;
use sip_core::CostReport;
use sip_field::PrimeField;
use sip_kvstore::{CloudStore, KvServer};
use sip_streaming::{FrequencyVector, ShardPlan};
use sip_wire::{Msg, MsgChannel, Query, SessionMode, ShardSpec, WireCodec, WireError};

use crate::registry::{Dataset, DatasetData, DatasetRegistry, MAX_DATASET_ID_LEN};

/// Upper bound on `log_u` a session may request (a 2^40 dense universe is
/// already far beyond what the dense provers should materialise).
pub const MAX_LOG_U: u32 = 40;

/// Pre-resolved handles for the session's fixed metrics; per-`Msg`-variant
/// counters go through the registry's labelled lookup instead (one frame =
/// at least one syscall, so a map lookup there is noise).
struct SessionMetrics {
    frames: sip_obs::Counter,
    decode_us: sip_obs::Histogram,
    handle_us: sip_obs::Histogram,
    ingest_updates: sip_obs::Counter,
    rejections: sip_obs::Counter,
    protocol_errors: sip_obs::Counter,
    wire_faults: sip_obs::Counter,
    attached: sip_obs::Gauge,
}

fn session_metrics() -> &'static SessionMetrics {
    static METRICS: OnceLock<SessionMetrics> = OnceLock::new();
    METRICS.get_or_init(|| SessionMetrics {
        frames: sip_obs::counter("sip_server_frames_total"),
        decode_us: sip_obs::histogram("sip_server_decode_us"),
        handle_us: sip_obs::histogram("sip_server_handle_us"),
        ingest_updates: sip_obs::counter("sip_server_ingest_updates_total"),
        rejections: sip_obs::counter("sip_server_rejections_total"),
        protocol_errors: sip_obs::counter("sip_server_protocol_errors_total"),
        wire_faults: sip_obs::counter("sip_server_wire_faults_total"),
        attached: sip_obs::gauge("sip_server_attached_sessions"),
    })
}

/// The currently open query, if any.
enum Active<F: PrimeField> {
    Idle,
    /// A sum-check query mid-rounds.
    SumCheck {
        prover: Box<dyn RoundProver<F> + Send>,
        /// Round polynomials already sent.
        sent: usize,
        /// Total rounds `d`.
        rounds: usize,
    },
    /// A sub-vector reporting query mid-rounds.
    SubVector {
        prover: SubVectorProver<F>,
        /// The level the next round request must carry.
        next_level: u32,
    },
    /// A heavy-hitters query mid-disclosure.
    Heavy {
        prover: HhProver<F>,
        /// The level the next key reveal must carry.
        next_level: u32,
    },
}

/// What the data of this session is.
enum Store<F: PrimeField> {
    /// Session-private raw update stream (frequency-vector semantics).
    Raw(FrequencyVector),
    /// Session-private key-value puts (`δ = value + 1` encoding, three
    /// derived vectors).
    Kv(CloudStore<F>),
    /// A frozen published snapshot shared with other sessions — queries
    /// read it through the `Arc`; ingest is refused.
    Shared(Arc<Dataset<F>>),
}

/// A read view of the session's data, however it is owned.
enum DataRef<'a, F: PrimeField> {
    Raw(&'a FrequencyVector),
    Kv(&'a CloudStore<F>),
}

/// Everything a session inherits from its server beyond the handshake:
/// shard pin, prover scheduling, and the shared dataset registry.
pub struct SessionContext<F: PrimeField> {
    /// Deploy-time shard identity (`sip-prover --shard i --of n`).
    pub shard: Option<ShardSpec>,
    /// Round-message scheduling for every prover this session builds.
    pub pool: ProverPool,
    /// The server-wide registry behind `Msg::Publish` / `Msg::Attach`.
    pub registry: Arc<DatasetRegistry<F>>,
}

impl<F: PrimeField> Default for SessionContext<F> {
    /// A standalone context: no shard pin, serial prover, private
    /// single-session registry.
    fn default() -> Self {
        SessionContext {
            shard: None,
            pool: ProverPool::SERIAL,
            registry: Arc::new(DatasetRegistry::new(crate::DEFAULT_MAX_DATASETS)),
        }
    }
}

/// Why the session ended (for logs/tests; the protocol outcome lives with
/// the verifier).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SessionEnd {
    /// The peer said [`Msg::Bye`] or closed the connection.
    PeerDone,
    /// We sent the peer a protocol error and gave up on the connection.
    ProtocolError(String),
    /// The transport failed mid-session.
    TransportFailed(WireError),
}

/// Runs one accepted connection to completion. `mode` and `log_u` come from
/// the already-completed handshake.
pub fn run_session<F: PrimeField, T: Transport>(
    transport: T,
    mode: SessionMode,
    log_u: u32,
) -> SessionEnd {
    run_session_ctx::<F, T>(transport, mode, log_u, SessionContext::default())
}

/// Like [`run_session`], for a prover deployed as one shard of a fleet:
/// `pinned` is the shard identity from the server's own configuration
/// (`sip-prover --shard i --of n`). The session then serves only that
/// shard's index range from the first byte, and a client
/// [`Msg::ShardHello`] must agree with the pin.
pub fn run_session_sharded<F: PrimeField, T: Transport>(
    transport: T,
    mode: SessionMode,
    log_u: u32,
    pinned: Option<ShardSpec>,
) -> SessionEnd {
    run_session_ctx::<F, T>(
        transport,
        mode,
        log_u,
        SessionContext {
            shard: pinned,
            ..SessionContext::default()
        },
    )
}

/// The full-context entry point: shard pin, prover pool, and the shared
/// dataset registry all come from the server (`crate::spawn` passes one
/// registry to every session so published datasets are visible
/// server-wide).
pub fn run_session_ctx<F: PrimeField, T: Transport>(
    transport: T,
    mode: SessionMode,
    log_u: u32,
    ctx: SessionContext<F>,
) -> SessionEnd {
    let mut session = ServerSession::<F, T>::new(transport, mode, log_u, ctx.pool, ctx.registry);
    if let Some(spec) = ctx.shard {
        if let Err(detail) = session.adopt_shard(spec, true) {
            return session.fail(detail);
        }
    }
    session.run()
}

struct ServerSession<F: PrimeField, T: Transport> {
    chan: MsgChannel<T>,
    log_u: u32,
    /// The handshaken session mode (also implied by `store` until an
    /// attach; kept explicitly so attach can check compatibility).
    mode: SessionMode,
    store: Store<F>,
    active: Active<F>,
    pool: ProverPool,
    registry: Arc<DatasetRegistry<F>>,
    /// The sub-range of the universe this session serves (shard mode), as
    /// an inclusive `[lo, hi]`; `None` = the whole universe.
    shard: Option<(ShardSpec, u64, u64)>,
    /// Whether the shard identity came from server configuration (pinned)
    /// rather than from the client — a pinned identity cannot be changed
    /// by a [`Msg::ShardHello`], only confirmed.
    shard_pinned: bool,
    /// Set once any update was ingested; a shard declaration after that
    /// could retroactively orphan data, so it is refused.
    ingested: bool,
    /// Cumulative word accounting of everything served on this connection,
    /// reported back as [`Msg::Cost`] when the verifier says goodbye. The
    /// verifier keeps its own books; this is the prover's advisory copy.
    served: CostReport,
    /// Holds the attached-sessions gauge up while this session serves a
    /// shared (published) dataset; dropping the session decrements it.
    attached_guard: Option<sip_obs::GaugeGuard>,
    /// The verifier's trace context, once a [`Msg::TraceContext`] arrived:
    /// every subsequent decode/handle span joins that trace, so a sharded
    /// query exports as one tree across processes.
    remote_trace: Option<sip_obs::TraceContext>,
    /// Ring of recent frames, dumped as a post-mortem when the verifier
    /// rejects (see [`Self::dump_flight_record`]).
    recorder: sip_obs::FlightRecorder,
}

/// Frames the per-session flight recorder retains — enough to cover a
/// whole `log_u ≈ 40` query plus the ingest tail that preceded it.
const FLIGHT_FRAMES: usize = 128;

impl<F: PrimeField, T: Transport> ServerSession<F, T> {
    fn new(
        transport: T,
        mode: SessionMode,
        log_u: u32,
        pool: ProverPool,
        registry: Arc<DatasetRegistry<F>>,
    ) -> Self {
        // Sparse storage in both modes: `log_u` is peer-chosen, and dense
        // vectors would let one idle handshake reserve `O(2^log_u)` memory.
        let store = match mode {
            SessionMode::RawStream => Store::Raw(FrequencyVector::new_sparse(1u64 << log_u)),
            SessionMode::KvStore => Store::Kv(CloudStore::new_sparse(log_u)),
        };
        ServerSession {
            chan: MsgChannel::new(transport),
            log_u,
            mode,
            store,
            active: Active::Idle,
            pool,
            registry,
            shard: None,
            shard_pinned: false,
            ingested: false,
            served: CostReport::default(),
            attached_guard: None,
            remote_trace: None,
            recorder: sip_obs::FlightRecorder::new(FLIGHT_FRAMES),
        }
    }

    /// Marks this session as serving a shared dataset on the
    /// `sip_server_attached_sessions` gauge (idempotent per session).
    fn mark_attached(&mut self) {
        if self.attached_guard.is_none() {
            self.attached_guard =
                Some(sip_obs::GaugeGuard::new(session_metrics().attached.clone()));
        }
    }

    /// A read view of the session's data, session-private or shared.
    fn data(&self) -> DataRef<'_, F> {
        match &self.store {
            Store::Raw(fv) => DataRef::Raw(fv),
            Store::Kv(s) => DataRef::Kv(s),
            Store::Shared(ds) => match &ds.data {
                DatasetData::Raw(fv) => DataRef::Raw(fv),
                DatasetData::Kv(s) => DataRef::Kv(s),
            },
        }
    }

    /// Validates and installs a shard identity (from config or from a
    /// [`Msg::ShardHello`]).
    fn adopt_shard(&mut self, spec: ShardSpec, pinned: bool) -> Result<(), String> {
        let plan = ShardPlan::validate(self.log_u, spec.count)?;
        if spec.index >= spec.count {
            return Err(format!(
                "shard index {} outside fleet of {}",
                spec.index, spec.count
            ));
        }
        if let Some((existing, _, _)) = self.shard {
            if existing != spec {
                return Err(if self.shard_pinned {
                    format!(
                        "this prover is pinned to shard {}/{} replica {}, \
                         not {}/{} replica {}",
                        existing.index,
                        existing.count,
                        existing.replica,
                        spec.index,
                        spec.count,
                        spec.replica
                    )
                } else {
                    "shard identity already declared".to_string()
                });
            }
            return Ok(());
        }
        if self.ingested {
            return Err("shard declaration must precede any ingest".to_string());
        }
        let (lo, hi) = plan.range(spec.index);
        self.shard = Some((spec, lo, hi));
        self.shard_pinned = pinned;
        Ok(())
    }

    fn run(&mut self) -> SessionEnd {
        loop {
            let msg = match self.recv_instrumented() {
                Ok(msg) => msg,
                Err(WireError::Transport(_)) => return SessionEnd::PeerDone,
                Err(e) => {
                    if sip_obs::enabled() {
                        session_metrics().wire_faults.inc();
                    }
                    return self.fail(format!("undecodable frame: {e}"));
                }
            };
            let outcome = if sip_obs::enabled() {
                sip_obs::counter_with("sip_server_msg_total", &[("msg", msg.name())]).inc();
                if matches!(msg, Msg::Reject(_)) {
                    session_metrics().rejections.inc();
                }
                self.recorder.record("in", msg.name());
                // The handle span is the query's prover-compute leg; under
                // an adopted remote context it lands in the verifier's
                // trace as a child of the announced span.
                let mut tspan =
                    sip_obs::trace::span_under(self.remote_trace, "sip.server.session", "handle");
                tspan.field("msg", msg.name());
                let timer = sip_obs::Timer::start();
                let outcome = self.handle(msg);
                session_metrics().handle_us.observe(timer.elapsed_us());
                outcome
            } else {
                self.handle(msg)
            };
            match outcome {
                Ok(true) => continue,
                Ok(false) => return SessionEnd::PeerDone,
                Err(Flow::Protocol(detail)) => return self.fail(detail),
                Err(Flow::Wire(e)) => {
                    if sip_obs::enabled() {
                        session_metrics().wire_faults.inc();
                    }
                    return SessionEnd::TransportFailed(e);
                }
            }
        }
    }

    /// One `chan.recv`, split so the blocking wait for a frame is *not*
    /// charged to decode time: the frame-counter bump and decode timer
    /// start only once the transport has handed over bytes.
    fn recv_instrumented(&mut self) -> Result<Msg<F>, WireError> {
        if !sip_obs::enabled() {
            return self.chan.recv::<F>();
        }
        let frame = self.chan.transport_mut().recv_frame()?;
        let metrics = session_metrics();
        metrics.frames.inc();
        let mut tspan =
            sip_obs::trace::span_under(self.remote_trace, "sip.server.session", "decode");
        tspan.field("bytes", frame.len());
        let timer = sip_obs::Timer::start();
        let msg = Msg::from_bytes(&frame);
        metrics.decode_us.observe(timer.elapsed_us());
        msg
    }

    /// Sends a final error frame (best effort) and reports the end state.
    fn fail(&mut self, detail: String) -> SessionEnd {
        if sip_obs::enabled() {
            session_metrics().protocol_errors.inc();
        }
        sip_obs::event!(
            sip_obs::Level::Warn,
            "sip.server.session",
            "session ended with a protocol error",
            "detail" => detail,
        );
        let _ = self.chan.send(&Msg::<F>::Error(detail.clone()));
        SessionEnd::ProtocolError(detail)
    }

    /// The rejection post-mortem: emits the flight recorder (recent frames
    /// plus any adopted trace's spans) as a Warn event, and — when the
    /// registry is durable — writes it to the data directory under a
    /// hashed file name (peer-chosen ids never reach the filesystem; see
    /// [`crate::persist::trace_dump_file_name`]).
    fn dump_flight_record(&mut self, rej: &sip_core::Rejection) {
        if !sip_obs::enabled() {
            return;
        }
        let mut extra = vec![("rejection", rej.to_string())];
        if let Some(shard) = rej.blamed_shard() {
            extra.push(("blamed_shard", shard.to_string()));
        }
        let json = self.recorder.dump_json("session query rejected", &extra);
        // Tag the dump with what the session serves: the shared dataset id
        // when attached (hashed before it becomes a file name), a generic
        // label otherwise.
        let tag = match &self.store {
            Store::Shared(ds) => ds.id.as_str(),
            _ => "session",
        };
        let dump = match self.registry.dump_flight_record(tag, &json) {
            Ok(Some(path)) => {
                let shown = path.display().to_string();
                sip_obs::trace::set_last_dump(&shown);
                shown
            }
            Ok(None) => "(memory only)".to_string(),
            Err(detail) => format!("(write failed: {detail})"),
        };
        sip_obs::event!(
            sip_obs::Level::Warn,
            "sip.server.session",
            "flight recorder dumped on rejection",
            "rejection" => rej,
            "frames" => self.recorder.len(),
            "dump" => dump,
        );
    }

    fn send(&mut self, msg: &Msg<F>) -> Result<(), Flow> {
        if sip_obs::enabled() {
            self.recorder.record("out", msg.name());
        }
        self.chan.send(msg).map_err(Flow::Wire)
    }

    /// Handles one message; `Ok(false)` ends the session cleanly.
    fn handle(&mut self, msg: Msg<F>) -> Result<bool, Flow> {
        match msg {
            Msg::Ingest(ups) => {
                // Updates are welcome at any point between queries — the
                // in-process `CloudStore` has no phases, and this server
                // must be a drop-in for it. (Mid-query they are fine too:
                // active provers snapshot their fold tables at query
                // start, and the verifier's digests live client-side.)
                let u = 1u64 << self.log_u;
                for up in &ups {
                    if up.index >= u {
                        return Err(protocol(format!(
                            "update index {} outside universe [0, {u})",
                            up.index
                        )));
                    }
                    // A shard refuses data it does not own: a router bug
                    // (or a hostile feeder) must fail loudly, not let two
                    // shards silently hold overlapping state the
                    // aggregating verifier would double-count.
                    if let Some((spec, lo, hi)) = self.shard {
                        if up.index < lo || up.index > hi {
                            return Err(protocol(format!(
                                "update index {} outside shard {}/{} range [{lo}, {hi}]",
                                up.index, spec.index, spec.count
                            )));
                        }
                    }
                }
                self.ingested |= !ups.is_empty();
                if sip_obs::enabled() {
                    session_metrics().ingest_updates.add(ups.len() as u64);
                }
                // One whole wire frame = one batched ingest call: the
                // sorted-merge / delayed-reduction bulk paths replace the
                // per-update loops, with identical resulting state.
                match &mut self.store {
                    Store::Raw(fv) => fv.apply_batch(&ups),
                    Store::Kv(store) => {
                        for up in &ups {
                            if up.delta < 1 {
                                return Err(protocol(format!(
                                    "kv put with non-positive encoded value {}",
                                    up.delta
                                )));
                            }
                        }
                        store.ingest_batch(&ups);
                    }
                    Store::Shared(ds) => {
                        if !ups.is_empty() {
                            return Err(protocol(format!(
                                "dataset {:?} is frozen: published snapshots accept no updates",
                                ds.id
                            )));
                        }
                    }
                }
                Ok(true)
            }
            Msg::Publish { dataset_id } => {
                self.publish(dataset_id)?;
                Ok(true)
            }
            Msg::Attach { dataset_id } => {
                self.attach(dataset_id)?;
                Ok(true)
            }
            Msg::SaveState { dataset_id } => {
                self.save_state(dataset_id)?;
                Ok(true)
            }
            Msg::Resume { dataset_id } => {
                self.resume(dataset_id)?;
                Ok(true)
            }
            Msg::EndStream => {
                // Advisory: kept on the wire so a client can mark the
                // paper's stream/query phase boundary, but the store keeps
                // accepting updates (see `Msg::Ingest` above).
                Ok(true)
            }
            Msg::Query(q) => {
                self.active = Active::Idle;
                self.start_query(q)?;
                Ok(true)
            }
            Msg::QueryOneShot { query, challenges } => {
                self.active = Active::Idle;
                self.answer_oneshot(query, challenges)?;
                Ok(true)
            }
            Msg::Challenge(x) => self.answer_challenge(x, None),
            Msg::BroadcastChallenge { round, challenge } => {
                // An aggregating verifier stamps the round so a shard that
                // dropped or duplicated a frame fails loudly instead of
                // binding the wrong variable.
                self.answer_challenge(challenge, Some(round))
            }
            Msg::ShardHello(spec) => {
                self.adopt_shard(spec, false).map_err(protocol)?;
                Ok(true)
            }
            Msg::SubVectorRound(req) => {
                let Active::SubVector { prover, next_level } = &mut self.active else {
                    return Err(protocol("round request without an open reporting query"));
                };
                if req.level != *next_level || req.level >= self.log_u {
                    return Err(protocol(format!(
                        "round request for level {}, expected {}",
                        req.level, next_level
                    )));
                }
                // Sibling indices are peer-controlled; at level j valid
                // node indices are < 2^(log_u − j). Unchecked, they would
                // index out of the prover's fold table.
                let width = 1u64 << (self.log_u - req.level);
                if req.left.is_some_and(|i| i >= width) || req.right.is_some_and(|i| i >= width) {
                    return Err(protocol(format!(
                        "sibling index outside level-{} width {width}",
                        req.level
                    )));
                }
                let reply = prover.process_round(&RoundRequest {
                    level: req.level,
                    challenge: req.challenge,
                    left: req.left,
                    right: req.right,
                });
                *next_level += 1;
                self.served.rounds += 1;
                self.served.v_to_p_words += 1;
                self.served.p_to_v_words +=
                    reply.left.is_some() as usize + reply.right.is_some() as usize;
                self.send(&Msg::SubVectorReply(reply))?;
                Ok(true)
            }
            Msg::HhKeys { level, r, s } => {
                let Active::Heavy { prover, next_level } = &mut self.active else {
                    return Err(protocol("key reveal without an open heavy-hitters query"));
                };
                if level != *next_level || level >= self.log_u {
                    return Err(protocol(format!(
                        "key reveal for level {level}, expected {next_level}"
                    )));
                }
                prover.receive_keys(level, r, s);
                *next_level += 1;
                let disc = prover.disclose();
                self.served.rounds += 1;
                self.served.v_to_p_words += 2;
                self.served.p_to_v_words += disc.words();
                let disc = Msg::HhDisclosure(disc);
                self.send(&disc)?;
                Ok(true)
            }
            Msg::Accept => {
                // The verifier's verdict on the query we just served ends
                // the query.
                self.active = Active::Idle;
                Ok(true)
            }
            Msg::Reject(rej) => {
                // A rejection also ends the query — it means *we* were
                // tampered with in flight, or the verifier is confused;
                // either way the session can serve the next query. But it
                // is also the moment worth a post-mortem: dump the flight
                // recorder so the indictment arrives with its evidence.
                self.active = Active::Idle;
                self.dump_flight_record(&rej);
                Ok(true)
            }
            Msg::TraceContext {
                trace_id,
                parent_span,
            } => {
                // Ops, not protocol: adopt the verifier's causal context so
                // this session's spans and any flight-recorder dump join
                // its trace. No reply — the frame is advisory telemetry.
                self.remote_trace = Some(sip_obs::TraceContext {
                    trace_id,
                    span_id: parent_span,
                });
                self.recorder.bind_trace(trace_id);
                Ok(true)
            }
            Msg::Stats => {
                // Ops telemetry over the session's own wire: the same JSON
                // document the `--metrics-addr` listener serves at /stats
                // (metrics registry + tracing status), advisory and
                // unverified like `Msg::Cost`.
                let json = sip_obs::stats_json();
                self.send(&Msg::StatsReply { json })?;
                Ok(true)
            }
            Msg::Bye => {
                // Export the session's cost books before saying goodbye, so
                // a scrape after any session shows what the last one cost.
                if sip_obs::enabled() {
                    for (name, value) in self.served.to_metrics() {
                        sip_obs::gauge(name).set(value as i64);
                    }
                }
                sip_obs::event!(
                    sip_obs::Level::Info,
                    "sip.server.session",
                    "session closed",
                    "rounds" => self.served.rounds,
                    "total_words" => self.served.total_words(),
                );
                // Best effort: the report is advisory and the peer may hang
                // up without reading it — that is still a clean goodbye.
                let _ = self.chan.send(&Msg::<F>::Cost(self.served));
                Ok(false)
            }
            other => Err(protocol(format!(
                "{} is a prover-to-verifier message",
                other.name()
            ))),
        }
    }

    /// Binds a revealed sum-check challenge and answers with the next round
    /// polynomial. `expected_round`, when present (broadcast form), must
    /// equal the number of polynomials already sent.
    fn answer_challenge(&mut self, x: F, expected_round: Option<u32>) -> Result<bool, Flow> {
        let Active::SumCheck {
            prover,
            sent,
            rounds,
        } = &mut self.active
        else {
            return Err(protocol("challenge without an open sum-check query"));
        };
        if let Some(round) = expected_round {
            if round as usize != *sent {
                return Err(protocol(format!(
                    "broadcast challenge for round {round}, session is at round {sent}"
                )));
            }
        }
        if *sent >= *rounds {
            return Err(protocol("challenge after the final round"));
        }
        prover.bind(x);
        let evals = prover.message();
        *sent += 1;
        self.served.rounds += 1;
        self.served.v_to_p_words += 1;
        self.served.p_to_v_words += evals.len();
        let poly = Msg::RoundPoly(evals);
        self.send(&poly)?;
        Ok(true)
    }

    /// Freezes this session's ingested data into the server-wide registry
    /// under `dataset_id` and acks; the session keeps serving queries over
    /// the now-shared snapshot.
    fn publish(&mut self, dataset_id: String) -> Result<(), Flow> {
        check_dataset_id(&dataset_id)?;
        // Freeze by moving the store out; on any refusal below the session
        // dies with a protocol error, so the moved data needs no restoring.
        let placeholder = Store::Raw(FrequencyVector::new_sparse(1));
        let data = match std::mem::replace(&mut self.store, placeholder) {
            Store::Raw(fv) => DatasetData::Raw(fv),
            Store::Kv(s) => DatasetData::Kv(s),
            Store::Shared(ds) => {
                return Err(protocol(format!(
                    "session already serves published dataset {:?}",
                    ds.id
                )));
            }
        };
        let dataset = Dataset {
            id: dataset_id.clone(),
            log_u: self.log_u,
            shard: self.shard.map(|(spec, _, _)| spec),
            data,
        };
        let arc = self.registry.publish(dataset).map_err(protocol)?;
        self.store = Store::Shared(arc);
        self.mark_attached();
        self.send(&Msg::DatasetAck { dataset_id })?;
        Ok(())
    }

    /// Points this session at the published snapshot `dataset_id` and
    /// acks; mode, `log_u`, and shard identity must agree (a session with
    /// no declared shard inherits the dataset's).
    fn attach(&mut self, dataset_id: String) -> Result<(), Flow> {
        self.attach_checked(dataset_id.clone())?;
        self.send(&Msg::DatasetAck { dataset_id })?;
        Ok(())
    }

    /// The attach state change without the ack (shared with resume, which
    /// answers `StateAck` instead).
    fn attach_checked(&mut self, dataset_id: String) -> Result<(), Flow> {
        check_dataset_id(&dataset_id)?;
        if self.ingested {
            // Replacing the store would silently orphan session-local data.
            return Err(protocol("attach must precede any ingest".to_string()));
        }
        let Some(ds) = self.registry.get(&dataset_id) else {
            return Err(protocol(format!("no published dataset {dataset_id:?}")));
        };
        // Shard identity: any declared identity (deploy pin *or* a client
        // ShardHello) must match the snapshot's, or an attached fleet could
        // serve another shard's slice and fail later as opaque sum-check
        // blame on an honest shard. An undeclared session inherits it.
        self.check_dataset_compat(&ds, &dataset_id)?;
        self.store = Store::Shared(ds);
        self.mark_attached();
        if sip_obs::enabled() {
            sip_obs::counter("sip_registry_attach_total").inc();
        }
        // Attached data counts as ingested: a later shard re-declaration
        // could orphan it, so the same guard applies.
        self.ingested = true;
        Ok(())
    }

    /// Persists this session's current (session-private) data as a durable
    /// named checkpoint and acks with the full durable enumeration. The
    /// session keeps ingesting — checkpoints are progress marks, not
    /// freezes — and re-saving an id overwrites its checkpoint.
    fn save_state(&mut self, dataset_id: String) -> Result<(), Flow> {
        check_dataset_id(&dataset_id)?;
        let data = match &self.store {
            Store::Raw(fv) => DatasetData::Raw(fv.clone()),
            Store::Kv(s) => DatasetData::Kv(s.clone()),
            Store::Shared(ds) => {
                return Err(protocol(format!(
                    "session serves published dataset {:?}, which is already durable",
                    ds.id
                )));
            }
        };
        let dataset = Dataset {
            id: dataset_id,
            log_u: self.log_u,
            shard: self.shard.map(|(spec, _, _)| spec),
            data,
        };
        self.registry.save_checkpoint(dataset).map_err(protocol)?;
        self.send(&Msg::StateAck {
            dataset_ids: self.registry.durable_ids(),
        })
    }

    /// Installs durable state saved under `dataset_id` as this session's
    /// data: a named checkpoint thaws into a session-private store (ingest
    /// continues where it stopped), a published dataset attaches frozen.
    /// Same compatibility discipline as attach: must precede ingest; mode,
    /// `log_u`, and shard identity must agree.
    fn resume(&mut self, dataset_id: String) -> Result<(), Flow> {
        check_dataset_id(&dataset_id)?;
        if self.ingested {
            return Err(protocol("resume must precede any ingest".to_string()));
        }
        let Some(ds) = self.registry.checkpoint(&dataset_id) else {
            // Not a checkpoint: a published dataset resumes as a frozen
            // attach (the one other thing "durable state under this id"
            // can mean), with the attach checks applied verbatim.
            if self.registry.get(&dataset_id).is_some() {
                self.attach_checked(dataset_id.clone())?;
                return self.send(&Msg::StateAck {
                    dataset_ids: vec![dataset_id],
                });
            }
            return Err(protocol(format!(
                "no durable state saved under {dataset_id:?}"
            )));
        };
        self.check_dataset_compat(&ds, &dataset_id)?;
        if sip_obs::enabled() {
            sip_obs::counter("sip_registry_restore_total").inc();
        }
        // Thaw: the session gets its own mutable copy, so two sessions
        // resuming one checkpoint diverge independently (each can
        // re-checkpoint under its own id).
        self.store = match &ds.data {
            DatasetData::Raw(fv) => Store::Raw(fv.clone()),
            DatasetData::Kv(s) => Store::Kv(s.clone()),
        };
        self.ingested = true;
        self.send(&Msg::StateAck {
            dataset_ids: vec![dataset_id],
        })
    }

    /// The mode / `log_u` / shard agreement checks shared by attach and
    /// resume.
    fn check_dataset_compat(&mut self, ds: &Dataset<F>, dataset_id: &str) -> Result<(), Flow> {
        if ds.mode() != self.mode {
            return Err(protocol(format!(
                "dataset {dataset_id:?} is a {} dataset, session handshook {}",
                mode_name(ds.mode()),
                mode_name(self.mode)
            )));
        }
        if ds.log_u != self.log_u {
            return Err(protocol(format!(
                "dataset {dataset_id:?} covers [2^{}], session handshook log_u = {}",
                ds.log_u, self.log_u
            )));
        }
        // Datasets describe a slice of data, not a copy of it: replicas of
        // one shard share the shard's datasets, so only the slice is
        // compared and a replica-r session may thaw a replica-0 snapshot.
        match (self.shard.map(|(spec, _, _)| spec), ds.shard) {
            (Some(mine), Some(published)) if mine.same_slice(&published) => {}
            (None, None) => {}
            (None, Some(published)) => {
                self.adopt_shard(published, false).map_err(protocol)?;
            }
            _ => {
                return Err(protocol(format!(
                    "dataset {dataset_id:?} was saved under a different shard identity"
                )));
            }
        }
        Ok(())
    }

    fn start_query(&mut self, q: Query) -> Result<(), Flow> {
        let u = 1u64 << self.log_u;
        let log_u = self.log_u;
        let pool = self.pool;
        let check_range = |l: u64, r: u64| -> Result<(), Flow> {
            if l <= r && r < u {
                Ok(())
            } else {
                Err(protocol(format!("bad range [{l}, {r}] over [0, {u})")))
            }
        };
        match (q, self.data()) {
            (Query::SelfJoin, data) => {
                let fv = match data {
                    DataRef::Raw(fv) => fv,
                    DataRef::Kv(s) => s.raw_vector(),
                };
                let prover = F2Prover::with_pool(fv, log_u, pool);
                self.begin_sumcheck(prover)
            }
            (Query::RangeSum { l, r }, data) => {
                check_range(l, r)?;
                let fv = match data {
                    DataRef::Raw(fv) => fv,
                    DataRef::Kv(s) => s.encoded_vector(),
                };
                let prover = RangeSumProver::with_pool(fv, log_u, l, r, pool);
                self.begin_sumcheck(prover)
            }
            (Query::RangeCount { l, r }, DataRef::Kv(s)) => {
                check_range(l, r)?;
                let prover = RangeSumProver::with_pool(s.presence_vector(), log_u, l, r, pool);
                self.begin_sumcheck(prover)
            }
            (Query::RangeCount { .. }, DataRef::Raw(_)) => {
                Err(protocol("range-count requires a kv-store session"))
            }
            (Query::Report { l, r }, data) => {
                check_range(l, r)?;
                let fv = match data {
                    DataRef::Raw(fv) => fv,
                    DataRef::Kv(s) => s.encoded_vector(),
                };
                let prover = SubVectorProver::new(fv, log_u);
                let answer = prover.answer(l, r);
                self.served.rounds += 1;
                self.served.v_to_p_words += 2;
                self.served.p_to_v_words += 2 * answer.entries.len();
                self.active = Active::SubVector {
                    prover,
                    next_level: 1,
                };
                self.send(&Msg::SubVectorAnswer(answer))
            }
            (Query::Heavy { threshold }, data) => {
                if threshold == 0 {
                    return Err(protocol("heavy-hitter threshold must be positive"));
                }
                let fv = match data {
                    DataRef::Raw(fv) => fv,
                    DataRef::Kv(s) => s.encoded_vector(),
                };
                // The count tree needs the strict turnstile model; check
                // instead of letting HhProver::new assert.
                if fv.nonzero().any(|(_, f)| f < 0) {
                    return Err(protocol(
                        "heavy hitters need non-negative frequencies".to_string(),
                    ));
                }
                let prover = HhProver::new(fv, log_u, threshold);
                let disc = prover.disclose();
                self.served.rounds += 1;
                self.served.v_to_p_words += 1;
                self.served.p_to_v_words += disc.words();
                self.active = Active::Heavy {
                    prover,
                    next_level: 1,
                };
                self.send(&Msg::HhDisclosure(disc))
            }
            (Query::Predecessor { q }, DataRef::Kv(s)) => {
                if q >= u {
                    return Err(protocol(format!("probe {q} outside universe")));
                }
                let claim = s.encoded_vector().predecessor(q);
                self.served.v_to_p_words += 1;
                self.served.p_to_v_words += 1;
                self.send(&Msg::KeyClaim(claim))
            }
            (Query::Successor { q }, DataRef::Kv(s)) => {
                if q >= u {
                    return Err(protocol(format!("probe {q} outside universe")));
                }
                let claim = s.encoded_vector().successor(q);
                self.served.v_to_p_words += 1;
                self.served.p_to_v_words += 1;
                self.send(&Msg::KeyClaim(claim))
            }
            (Query::Predecessor { .. } | Query::Successor { .. }, DataRef::Raw(_)) => {
                Err(protocol("neighbour queries require a kv-store session"))
            }
        }
    }

    /// Serves a whole sum-check in one frame: builds the same prover
    /// [`Self::start_query`] would, walks every round against the revealed
    /// challenge prefix, and answers with a sealed [`Msg::Proof`]. Only the
    /// aggregate queries have a one-shot form — the reporting and
    /// heavy-hitters conversations are data-dependent on both sides.
    fn answer_oneshot(&mut self, q: Query, challenges: Vec<F>) -> Result<(), Flow> {
        let u = 1u64 << self.log_u;
        if challenges.len() + 1 != self.log_u as usize {
            return Err(protocol(format!(
                "one-shot prefix of {} challenges, log_u = {} needs {}",
                challenges.len(),
                self.log_u,
                self.log_u.saturating_sub(1)
            )));
        }
        let check_range = |l: u64, r: u64| -> Result<(), Flow> {
            if l <= r && r < u {
                Ok(())
            } else {
                Err(protocol(format!("bad range [{l}, {r}] over [0, {u})")))
            }
        };
        let log_u = self.log_u;
        let pool = self.pool;
        // The transcript binds this session's *declared* shard identity; a
        // verifier that believes it is talking to a different shard fails
        // the digest comparison instead of accepting a mislabelled proof.
        let shard = self.shard.map(|(spec, _, _)| (spec.index, spec.count));
        let (mut prover, name, params): (Box<dyn RoundProver<F> + Send>, &str, Vec<u64>) =
            match (q, self.data()) {
                (Query::SelfJoin, data) => {
                    let fv = match data {
                        DataRef::Raw(fv) => fv,
                        DataRef::Kv(s) => s.raw_vector(),
                    };
                    let prover = F2Prover::with_pool(fv, log_u, pool);
                    (Box::new(prover), "self-join", Vec::new())
                }
                (Query::RangeSum { l, r }, data) => {
                    check_range(l, r)?;
                    let fv = match data {
                        DataRef::Raw(fv) => fv,
                        DataRef::Kv(s) => s.encoded_vector(),
                    };
                    let prover = RangeSumProver::with_pool(fv, log_u, l, r, pool);
                    (Box::new(prover), "range-sum", vec![l, r])
                }
                (Query::RangeCount { l, r }, DataRef::Kv(s)) => {
                    check_range(l, r)?;
                    let prover = RangeSumProver::with_pool(s.presence_vector(), log_u, l, r, pool);
                    (Box::new(prover), "range-count", vec![l, r])
                }
                (Query::RangeCount { .. }, DataRef::Raw(_)) => {
                    return Err(protocol("range-count requires a kv-store session"));
                }
                (other, _) => {
                    return Err(protocol(format!("{} has no one-shot form", other.name())));
                }
            };
        let transcript = query_transcript::<F>(name, log_u, shard, &params, &challenges);
        let proof = prove_oneshot(&mut ProverWalk(&mut *prover), transcript, &challenges, 2)
            .map_err(|rej| protocol(format!("one-shot walk failed: {rej}")))?;
        self.served.rounds += 1;
        self.served.v_to_p_words += challenges.len() + params.len();
        self.served.p_to_v_words += proof.words();
        self.send(&Msg::Proof {
            claimed: proof.claimed,
            rounds: proof.rounds,
            digest: proof.digest,
        })
    }

    /// Opens a sum-check query: announce the claimed value, send `g_1`.
    fn begin_sumcheck<P: RoundProver<F> + Send + 'static>(
        &mut self,
        mut prover: P,
    ) -> Result<(), Flow> {
        let rounds = prover.rounds();
        let g1 = prover.message();
        // The claimed answer is what g_1 sums to — announced explicitly so
        // the conversation starts with the claim, as in the paper.
        let claimed = g1.iter().take(2).fold(F::ZERO, |a, &b| a + b);
        self.served.rounds += 1;
        self.served.p_to_v_words += 1 + g1.len();
        self.active = Active::SumCheck {
            prover: Box::new(prover),
            sent: 1,
            rounds,
        };
        self.send(&Msg::ClaimedValue(claimed))?;
        self.send(&Msg::RoundPoly(g1))
    }
}

/// Internal control flow for message handling.
enum Flow {
    /// Peer misbehaved at the protocol level; answer with `Error`.
    Protocol(String),
    /// The transport died; nothing more to say.
    Wire(WireError),
}

fn protocol(detail: impl Into<String>) -> Flow {
    Flow::Protocol(detail.into())
}

/// Dataset ids are peer-chosen registry keys: non-empty, bounded length.
fn check_dataset_id(id: &str) -> Result<(), Flow> {
    if id.is_empty() {
        return Err(protocol("dataset id must not be empty"));
    }
    if id.len() > MAX_DATASET_ID_LEN {
        return Err(protocol(format!(
            "dataset id of {} bytes exceeds the {MAX_DATASET_ID_LEN}-byte cap",
            id.len()
        )));
    }
    Ok(())
}

fn mode_name(mode: SessionMode) -> &'static str {
    match mode {
        SessionMode::RawStream => "raw-stream",
        SessionMode::KvStore => "kv-store",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sip_core::channel::InMemoryTransport;
    use sip_field::Fp61;
    use sip_streaming::Update;
    use std::thread;

    fn with_session<R: Send + 'static>(
        mode: SessionMode,
        log_u: u32,
        client: impl FnOnce(MsgChannel<InMemoryTransport>) -> R + Send + 'static,
    ) -> (SessionEnd, R) {
        let (a, b) = InMemoryTransport::pair();
        let server = thread::spawn(move || run_session::<Fp61, _>(a, mode, log_u));
        let out = client(MsgChannel::new(b));
        (server.join().unwrap(), out)
    }

    #[test]
    fn bye_ends_cleanly() {
        let (end, ()) = with_session(SessionMode::RawStream, 4, |mut chan| {
            chan.send(&Msg::<Fp61>::Bye).unwrap();
        });
        assert_eq!(end, SessionEnd::PeerDone);
    }

    #[test]
    fn disconnect_ends_cleanly() {
        let (end, ()) = with_session(SessionMode::RawStream, 4, drop);
        assert_eq!(end, SessionEnd::PeerDone);
    }

    #[test]
    fn out_of_universe_update_is_error_not_panic() {
        let (end, ()) = with_session(SessionMode::RawStream, 4, |mut chan| {
            chan.send(&Msg::<Fp61>::Ingest(vec![Update::new(16, 1)]))
                .unwrap();
            let reply = chan.recv::<Fp61>().unwrap();
            assert!(matches!(reply, Msg::Error(_)), "{reply:?}");
        });
        assert!(matches!(end, SessionEnd::ProtocolError(_)));
    }

    #[test]
    fn challenge_without_query_is_error() {
        let (end, ()) = with_session(SessionMode::RawStream, 4, |mut chan| {
            chan.send(&Msg::Challenge(Fp61::from_u64(3))).unwrap();
            assert!(matches!(chan.recv::<Fp61>().unwrap(), Msg::Error(_)));
        });
        assert!(matches!(end, SessionEnd::ProtocolError(_)));
    }

    #[test]
    fn prover_message_from_client_is_error() {
        let (end, ()) = with_session(SessionMode::RawStream, 4, |mut chan| {
            chan.send(&Msg::RoundPoly(vec![Fp61::ONE])).unwrap();
            assert!(matches!(chan.recv::<Fp61>().unwrap(), Msg::Error(_)));
        });
        assert!(matches!(end, SessionEnd::ProtocolError(_)));
    }

    #[test]
    fn heavy_on_negative_frequencies_is_error() {
        let (end, ()) = with_session(SessionMode::RawStream, 4, |mut chan| {
            chan.send(&Msg::<Fp61>::Ingest(vec![Update::new(3, -2)]))
                .unwrap();
            chan.send(&Msg::<Fp61>::Query(Query::Heavy { threshold: 1 }))
                .unwrap();
            assert!(matches!(chan.recv::<Fp61>().unwrap(), Msg::Error(_)));
        });
        assert!(matches!(end, SessionEnd::ProtocolError(_)));
    }

    fn with_sharded_session<R: Send + 'static>(
        pinned: Option<ShardSpec>,
        log_u: u32,
        client: impl FnOnce(MsgChannel<InMemoryTransport>) -> R + Send + 'static,
    ) -> (SessionEnd, R) {
        let (a, b) = InMemoryTransport::pair();
        let server = thread::spawn(move || {
            run_session_sharded::<Fp61, _>(a, SessionMode::RawStream, log_u, pinned)
        });
        let out = client(MsgChannel::new(b));
        (server.join().unwrap(), out)
    }

    #[test]
    fn shard_refuses_updates_outside_its_range() {
        // Shard 1 of 2 over [0, 16) owns [8, 15].
        let (end, ()) = with_sharded_session(None, 4, |mut chan| {
            chan.send(&Msg::<Fp61>::ShardHello(ShardSpec::new(1, 2)))
                .unwrap();
            chan.send(&Msg::<Fp61>::Ingest(vec![Update::new(9, 1)]))
                .unwrap();
            chan.send(&Msg::<Fp61>::Ingest(vec![Update::new(3, 1)]))
                .unwrap();
            let reply = chan.recv::<Fp61>().unwrap();
            assert!(matches!(reply, Msg::Error(_)), "{reply:?}");
        });
        assert!(matches!(end, SessionEnd::ProtocolError(_)));
    }

    #[test]
    fn shard_hello_after_ingest_is_refused() {
        let (end, ()) = with_sharded_session(None, 4, |mut chan| {
            chan.send(&Msg::<Fp61>::Ingest(vec![Update::new(3, 1)]))
                .unwrap();
            chan.send(&Msg::<Fp61>::ShardHello(ShardSpec::new(0, 2)))
                .unwrap();
            assert!(matches!(chan.recv::<Fp61>().unwrap(), Msg::Error(_)));
        });
        assert!(matches!(end, SessionEnd::ProtocolError(_)));
    }

    #[test]
    fn pinned_shard_rejects_mismatched_hello_and_accepts_match() {
        let pin = ShardSpec::new(0, 2);
        let (end, ()) = with_sharded_session(Some(pin), 4, move |mut chan| {
            // Confirming the pin is fine …
            chan.send(&Msg::<Fp61>::ShardHello(pin)).unwrap();
            chan.send(&Msg::<Fp61>::Ingest(vec![Update::new(3, 1)]))
                .unwrap();
            // … claiming a different identity is not.
            chan.send(&Msg::<Fp61>::ShardHello(ShardSpec::new(1, 2)))
                .unwrap();
            assert!(matches!(chan.recv::<Fp61>().unwrap(), Msg::Error(_)));
        });
        assert!(matches!(end, SessionEnd::ProtocolError(_)));
    }

    #[test]
    fn invalid_shard_spec_is_refused() {
        for spec in [
            ShardSpec::new(2, 2),
            ShardSpec::new(0, 0),
            // More shards than the 2^4 universe has keys.
            ShardSpec::new(0, 1 << 5),
        ] {
            let (end, ()) = with_sharded_session(None, 4, move |mut chan| {
                chan.send(&Msg::<Fp61>::ShardHello(spec)).unwrap();
                assert!(matches!(chan.recv::<Fp61>().unwrap(), Msg::Error(_)));
            });
            assert!(matches!(end, SessionEnd::ProtocolError(_)), "{spec:?}");
        }
    }

    #[test]
    fn broadcast_challenge_checks_the_round_stamp() {
        let (end, ()) = with_session(SessionMode::RawStream, 2, |mut chan| {
            chan.send(&Msg::<Fp61>::Ingest(vec![Update::new(1, 3)]))
                .unwrap();
            chan.send(&Msg::<Fp61>::Query(Query::SelfJoin)).unwrap();
            let Msg::ClaimedValue(_) = chan.recv::<Fp61>().unwrap() else {
                panic!("expected claim")
            };
            let Msg::RoundPoly(_) = chan.recv::<Fp61>().unwrap() else {
                panic!("expected g1")
            };
            // The session has sent one polynomial; a broadcast challenge
            // stamped for round 2 is out of step.
            chan.send(&Msg::BroadcastChallenge {
                round: 2,
                challenge: Fp61::from_u64(5),
            })
            .unwrap();
            assert!(matches!(chan.recv::<Fp61>().unwrap(), Msg::Error(_)));
        });
        assert!(matches!(end, SessionEnd::ProtocolError(_)));
    }

    #[test]
    fn broadcast_challenge_with_correct_stamp_advances() {
        let (end, ()) = with_session(SessionMode::RawStream, 2, |mut chan| {
            chan.send(&Msg::<Fp61>::Ingest(vec![Update::new(1, 3)]))
                .unwrap();
            chan.send(&Msg::<Fp61>::Query(Query::SelfJoin)).unwrap();
            let Msg::ClaimedValue(_) = chan.recv::<Fp61>().unwrap() else {
                panic!("expected claim")
            };
            let Msg::RoundPoly(_) = chan.recv::<Fp61>().unwrap() else {
                panic!("expected g1")
            };
            chan.send(&Msg::BroadcastChallenge {
                round: 1,
                challenge: Fp61::from_u64(5),
            })
            .unwrap();
            let Msg::RoundPoly(g2) = chan.recv::<Fp61>().unwrap() else {
                panic!("expected g2")
            };
            assert_eq!(g2.len(), 3);
            chan.send(&Msg::<Fp61>::Bye).unwrap();
        });
        assert_eq!(end, SessionEnd::PeerDone);
    }

    /// Two sequential sessions over one shared registry (what `spawn`
    /// gives every connection of a server).
    fn with_registry_sessions<R: Send + 'static>(
        registry: Arc<DatasetRegistry<Fp61>>,
        modes: (SessionMode, SessionMode),
        log_us: (u32, u32),
        first: impl FnOnce(MsgChannel<InMemoryTransport>) -> R + Send + 'static,
        second: impl FnOnce(MsgChannel<InMemoryTransport>) -> R + Send + 'static,
    ) -> (SessionEnd, SessionEnd) {
        let (a1, b1) = InMemoryTransport::pair();
        let reg1 = Arc::clone(&registry);
        let s1 = thread::spawn(move || {
            run_session_ctx::<Fp61, _>(
                a1,
                modes.0,
                log_us.0,
                SessionContext {
                    registry: reg1,
                    ..SessionContext::default()
                },
            )
        });
        let c1 = thread::spawn(move || first(MsgChannel::new(b1)));
        let end1 = s1.join().unwrap();
        c1.join().unwrap();

        let (a2, b2) = InMemoryTransport::pair();
        let s2 = thread::spawn(move || {
            run_session_ctx::<Fp61, _>(
                a2,
                modes.1,
                log_us.1,
                SessionContext {
                    registry,
                    ..SessionContext::default()
                },
            )
        });
        let c2 = thread::spawn(move || second(MsgChannel::new(b2)));
        let end2 = s2.join().unwrap();
        c2.join().unwrap();
        (end1, end2)
    }

    #[test]
    fn publish_then_attach_serves_the_same_data() {
        let registry = Arc::new(DatasetRegistry::<Fp61>::new(8));
        let (end1, end2) = with_registry_sessions(
            registry,
            (SessionMode::RawStream, SessionMode::RawStream),
            (4, 4),
            |mut chan| {
                // a = [0, 3, 0, 2, …]: F2 = 13.
                chan.send(&Msg::<Fp61>::Ingest(vec![
                    Update::new(1, 3),
                    Update::new(3, 2),
                ]))
                .unwrap();
                chan.send(&Msg::<Fp61>::Publish {
                    dataset_id: "d".into(),
                })
                .unwrap();
                let Msg::DatasetAck { dataset_id } = chan.recv::<Fp61>().unwrap() else {
                    panic!("expected ack")
                };
                assert_eq!(dataset_id, "d");
                // The publisher still queries the frozen snapshot.
                chan.send(&Msg::<Fp61>::Query(Query::SelfJoin)).unwrap();
                let Msg::ClaimedValue(claimed) = chan.recv::<Fp61>().unwrap() else {
                    panic!("expected claim")
                };
                assert_eq!(claimed, Fp61::from_u64(13));
                let Msg::RoundPoly(_) = chan.recv::<Fp61>().unwrap() else {
                    panic!("expected g1")
                };
                chan.send(&Msg::<Fp61>::Bye).unwrap();
            },
            |mut chan| {
                // A fresh session attaches without ingesting anything.
                chan.send(&Msg::<Fp61>::Attach {
                    dataset_id: "d".into(),
                })
                .unwrap();
                let Msg::DatasetAck { .. } = chan.recv::<Fp61>().unwrap() else {
                    panic!("expected ack")
                };
                chan.send(&Msg::<Fp61>::Query(Query::SelfJoin)).unwrap();
                let Msg::ClaimedValue(claimed) = chan.recv::<Fp61>().unwrap() else {
                    panic!("expected claim")
                };
                assert_eq!(claimed, Fp61::from_u64(13));
                let Msg::RoundPoly(_) = chan.recv::<Fp61>().unwrap() else {
                    panic!("expected g1")
                };
                chan.send(&Msg::<Fp61>::Bye).unwrap();
            },
        );
        assert_eq!(end1, SessionEnd::PeerDone);
        assert_eq!(end2, SessionEnd::PeerDone);
    }

    #[test]
    fn ingest_after_publish_is_refused() {
        let (end, ()) = with_session(SessionMode::RawStream, 4, |mut chan| {
            chan.send(&Msg::<Fp61>::Ingest(vec![Update::new(1, 1)]))
                .unwrap();
            chan.send(&Msg::<Fp61>::Publish {
                dataset_id: "frozen".into(),
            })
            .unwrap();
            let Msg::DatasetAck { .. } = chan.recv::<Fp61>().unwrap() else {
                panic!("expected ack")
            };
            chan.send(&Msg::<Fp61>::Ingest(vec![Update::new(2, 1)]))
                .unwrap();
            let reply = chan.recv::<Fp61>().unwrap();
            assert!(matches!(reply, Msg::Error(_)), "{reply:?}");
        });
        assert!(matches!(end, SessionEnd::ProtocolError(_)));
    }

    #[test]
    fn attach_to_unknown_dataset_is_error() {
        let (end, ()) = with_session(SessionMode::RawStream, 4, |mut chan| {
            chan.send(&Msg::<Fp61>::Attach {
                dataset_id: "nope".into(),
            })
            .unwrap();
            assert!(matches!(chan.recv::<Fp61>().unwrap(), Msg::Error(_)));
        });
        assert!(matches!(end, SessionEnd::ProtocolError(_)));
    }

    #[test]
    fn attach_mode_and_log_u_must_match() {
        // Published as raw log_u = 4; a kv session and a log_u = 5 session
        // are both turned away.
        for (mode, log_u) in [(SessionMode::KvStore, 4u32), (SessionMode::RawStream, 5)] {
            let registry = Arc::new(DatasetRegistry::<Fp61>::new(8));
            let (end1, end2) = with_registry_sessions(
                registry,
                (SessionMode::RawStream, mode),
                (4, log_u),
                |mut chan| {
                    chan.send(&Msg::<Fp61>::Publish {
                        dataset_id: "d".into(),
                    })
                    .unwrap();
                    let Msg::DatasetAck { .. } = chan.recv::<Fp61>().unwrap() else {
                        panic!("expected ack")
                    };
                    chan.send(&Msg::<Fp61>::Bye).unwrap();
                },
                |mut chan| {
                    chan.send(&Msg::<Fp61>::Attach {
                        dataset_id: "d".into(),
                    })
                    .unwrap();
                    assert!(matches!(chan.recv::<Fp61>().unwrap(), Msg::Error(_)));
                },
            );
            assert_eq!(end1, SessionEnd::PeerDone);
            assert!(matches!(end2, SessionEnd::ProtocolError(_)));
        }
    }

    #[test]
    fn attach_after_session_local_ingest_is_refused() {
        // Attaching would silently orphan session-local data; refuse.
        let registry = Arc::new(DatasetRegistry::<Fp61>::new(8));
        let (end1, end2) = with_registry_sessions(
            registry,
            (SessionMode::RawStream, SessionMode::RawStream),
            (4, 4),
            |mut chan| {
                chan.send(&Msg::<Fp61>::Publish {
                    dataset_id: "d".into(),
                })
                .unwrap();
                let Msg::DatasetAck { .. } = chan.recv::<Fp61>().unwrap() else {
                    panic!("expected ack")
                };
                chan.send(&Msg::<Fp61>::Bye).unwrap();
            },
            |mut chan| {
                chan.send(&Msg::<Fp61>::Ingest(vec![Update::new(2, 1)]))
                    .unwrap();
                chan.send(&Msg::<Fp61>::Attach {
                    dataset_id: "d".into(),
                })
                .unwrap();
                assert!(matches!(chan.recv::<Fp61>().unwrap(), Msg::Error(_)));
            },
        );
        assert_eq!(end1, SessionEnd::PeerDone);
        assert!(matches!(end2, SessionEnd::ProtocolError(_)));
    }

    #[test]
    fn attach_checks_shard_identity_and_inherits_it() {
        // Published by a ShardHello-declared shard-0 session; a session
        // claiming shard 1 must be refused (even though nothing is
        // deploy-pinned), and an undeclared session inherits shard 0 — a
        // later conflicting ShardHello is refused.
        let registry = Arc::new(DatasetRegistry::<Fp61>::new(8));
        let (end1, end2) = with_registry_sessions(
            Arc::clone(&registry),
            (SessionMode::RawStream, SessionMode::RawStream),
            (4, 4),
            |mut chan| {
                chan.send(&Msg::<Fp61>::ShardHello(ShardSpec::new(0, 2)))
                    .unwrap();
                chan.send(&Msg::<Fp61>::Ingest(vec![Update::new(3, 1)]))
                    .unwrap();
                chan.send(&Msg::<Fp61>::Publish {
                    dataset_id: "slice".into(),
                })
                .unwrap();
                let Msg::DatasetAck { .. } = chan.recv::<Fp61>().unwrap() else {
                    panic!("expected ack")
                };
                chan.send(&Msg::<Fp61>::Bye).unwrap();
            },
            |mut chan| {
                // Wrong declared identity: refused.
                chan.send(&Msg::<Fp61>::ShardHello(ShardSpec::new(1, 2)))
                    .unwrap();
                chan.send(&Msg::<Fp61>::Attach {
                    dataset_id: "slice".into(),
                })
                .unwrap();
                assert!(matches!(chan.recv::<Fp61>().unwrap(), Msg::Error(_)));
            },
        );
        assert_eq!(end1, SessionEnd::PeerDone);
        assert!(matches!(end2, SessionEnd::ProtocolError(_)));

        // Undeclared session: attach succeeds and inherits shard 0, so a
        // later conflicting ShardHello is refused as already-declared.
        let (a, b) = InMemoryTransport::pair();
        let server = thread::spawn(move || {
            run_session_ctx::<Fp61, _>(
                a,
                SessionMode::RawStream,
                4,
                SessionContext {
                    registry,
                    ..SessionContext::default()
                },
            )
        });
        let client = thread::spawn(move || {
            let mut chan = MsgChannel::new(b);
            chan.send(&Msg::<Fp61>::Attach {
                dataset_id: "slice".into(),
            })
            .unwrap();
            let Msg::DatasetAck { .. } = chan.recv::<Fp61>().unwrap() else {
                panic!("expected ack")
            };
            chan.send(&Msg::<Fp61>::ShardHello(ShardSpec::new(1, 2)))
                .unwrap();
            assert!(matches!(chan.recv::<Fp61>().unwrap(), Msg::Error(_)));
        });
        assert!(matches!(
            server.join().unwrap(),
            SessionEnd::ProtocolError(_)
        ));
        client.join().unwrap();
    }

    #[test]
    fn duplicate_publish_is_refused() {
        let registry = Arc::new(DatasetRegistry::<Fp61>::new(8));
        let (end1, end2) = with_registry_sessions(
            registry,
            (SessionMode::RawStream, SessionMode::RawStream),
            (4, 4),
            |mut chan| {
                chan.send(&Msg::<Fp61>::Publish {
                    dataset_id: "d".into(),
                })
                .unwrap();
                let Msg::DatasetAck { .. } = chan.recv::<Fp61>().unwrap() else {
                    panic!("expected ack")
                };
                chan.send(&Msg::<Fp61>::Bye).unwrap();
            },
            |mut chan| {
                chan.send(&Msg::<Fp61>::Publish {
                    dataset_id: "d".into(),
                })
                .unwrap();
                assert!(matches!(chan.recv::<Fp61>().unwrap(), Msg::Error(_)));
            },
        );
        assert_eq!(end1, SessionEnd::PeerDone);
        assert!(matches!(end2, SessionEnd::ProtocolError(_)));
    }

    #[test]
    fn hostile_dataset_ids_are_refused() {
        for id in [String::new(), "x".repeat(MAX_DATASET_ID_LEN + 1)] {
            let (end, ()) = with_session(SessionMode::RawStream, 4, move |mut chan| {
                chan.send(&Msg::<Fp61>::Publish { dataset_id: id }).unwrap();
                assert!(matches!(chan.recv::<Fp61>().unwrap(), Msg::Error(_)));
            });
            assert!(matches!(end, SessionEnd::ProtocolError(_)));
        }
    }

    fn durable_registry(tag: &str) -> (Arc<DatasetRegistry<Fp61>>, std::path::PathBuf) {
        let dir = std::env::temp_dir().join(format!("sip-session-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        (
            Arc::new(DatasetRegistry::with_data_dir(8, dir.clone()).unwrap()),
            dir,
        )
    }

    fn run_with_registry(
        registry: Arc<DatasetRegistry<Fp61>>,
        mode: SessionMode,
        log_u: u32,
        client: impl FnOnce(MsgChannel<InMemoryTransport>) + Send + 'static,
    ) -> SessionEnd {
        let (a, b) = InMemoryTransport::pair();
        let server = thread::spawn(move || {
            run_session_ctx::<Fp61, _>(
                a,
                mode,
                log_u,
                SessionContext {
                    registry,
                    ..SessionContext::default()
                },
            )
        });
        let c = thread::spawn(move || client(MsgChannel::new(b)));
        let end = server.join().unwrap();
        c.join().unwrap();
        end
    }

    #[test]
    fn save_state_then_resume_continues_the_stream() {
        let (registry, dir) = durable_registry("resume");
        // Session 1: ingest half, checkpoint, die (simulated crash: the
        // connection just ends).
        let end = run_with_registry(
            Arc::clone(&registry),
            SessionMode::RawStream,
            4,
            |mut chan| {
                chan.send(&Msg::<Fp61>::Ingest(vec![Update::new(1, 3)]))
                    .unwrap();
                chan.send(&Msg::<Fp61>::SaveState {
                    dataset_id: "half".into(),
                })
                .unwrap();
                let Msg::StateAck { dataset_ids } = chan.recv::<Fp61>().unwrap() else {
                    panic!("expected state ack")
                };
                assert_eq!(dataset_ids, vec!["half".to_string()]);
            },
        );
        assert_eq!(end, SessionEnd::PeerDone);

        // "Restart": a fresh registry reloaded from the same directory.
        let registry = Arc::new(DatasetRegistry::with_data_dir(8, dir.clone()).unwrap());
        // Session 2: resume, finish the stream, query — F2 must cover both
        // halves: a = [0, 3, 0, 2] ⇒ F2 = 13.
        let end = run_with_registry(registry, SessionMode::RawStream, 4, |mut chan| {
            chan.send(&Msg::<Fp61>::Resume {
                dataset_id: "half".into(),
            })
            .unwrap();
            let Msg::StateAck { dataset_ids } = chan.recv::<Fp61>().unwrap() else {
                panic!("expected state ack")
            };
            assert_eq!(dataset_ids, vec!["half".to_string()]);
            chan.send(&Msg::<Fp61>::Ingest(vec![Update::new(3, 2)]))
                .unwrap();
            chan.send(&Msg::<Fp61>::Query(Query::SelfJoin)).unwrap();
            let Msg::ClaimedValue(claimed) = chan.recv::<Fp61>().unwrap() else {
                panic!("expected claim")
            };
            assert_eq!(claimed, Fp61::from_u64(13));
            let Msg::RoundPoly(_) = chan.recv::<Fp61>().unwrap() else {
                panic!("expected g1")
            };
            chan.send(&Msg::<Fp61>::Bye).unwrap();
        });
        assert_eq!(end, SessionEnd::PeerDone);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_of_published_dataset_attaches_frozen() {
        let (registry, dir) = durable_registry("resume-pub");
        run_with_registry(
            Arc::clone(&registry),
            SessionMode::RawStream,
            4,
            |mut chan| {
                chan.send(&Msg::<Fp61>::Ingest(vec![Update::new(2, 5)]))
                    .unwrap();
                chan.send(&Msg::<Fp61>::Publish {
                    dataset_id: "pub".into(),
                })
                .unwrap();
                let Msg::DatasetAck { .. } = chan.recv::<Fp61>().unwrap() else {
                    panic!("expected ack")
                };
                chan.send(&Msg::<Fp61>::Bye).unwrap();
            },
        );
        let end = run_with_registry(registry, SessionMode::RawStream, 4, |mut chan| {
            chan.send(&Msg::<Fp61>::Resume {
                dataset_id: "pub".into(),
            })
            .unwrap();
            let Msg::StateAck { .. } = chan.recv::<Fp61>().unwrap() else {
                panic!("expected state ack")
            };
            // Published data stays frozen even through Resume.
            chan.send(&Msg::<Fp61>::Ingest(vec![Update::new(3, 1)]))
                .unwrap();
            assert!(matches!(chan.recv::<Fp61>().unwrap(), Msg::Error(_)));
        });
        assert!(matches!(end, SessionEnd::ProtocolError(_)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn save_state_without_data_dir_is_refused() {
        let (end, ()) = with_session(SessionMode::RawStream, 4, |mut chan| {
            chan.send(&Msg::<Fp61>::SaveState {
                dataset_id: "x".into(),
            })
            .unwrap();
            assert!(matches!(chan.recv::<Fp61>().unwrap(), Msg::Error(_)));
        });
        assert!(matches!(end, SessionEnd::ProtocolError(_)));
    }

    #[test]
    fn resume_of_unknown_state_and_after_ingest_refused() {
        let (registry, dir) = durable_registry("resume-bad");
        let end = run_with_registry(
            Arc::clone(&registry),
            SessionMode::RawStream,
            4,
            |mut chan| {
                chan.send(&Msg::<Fp61>::Resume {
                    dataset_id: "nope".into(),
                })
                .unwrap();
                assert!(matches!(chan.recv::<Fp61>().unwrap(), Msg::Error(_)));
            },
        );
        assert!(matches!(end, SessionEnd::ProtocolError(_)));

        let end = run_with_registry(registry, SessionMode::RawStream, 4, |mut chan| {
            chan.send(&Msg::<Fp61>::Ingest(vec![Update::new(1, 1)]))
                .unwrap();
            chan.send(&Msg::<Fp61>::Resume {
                dataset_id: "whatever".into(),
            })
            .unwrap();
            assert!(matches!(chan.recv::<Fp61>().unwrap(), Msg::Error(_)));
        });
        assert!(matches!(end, SessionEnd::ProtocolError(_)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn kv_checkpoint_resumes_with_store_semantics() {
        let (registry, dir) = durable_registry("resume-kv");
        run_with_registry(
            Arc::clone(&registry),
            SessionMode::KvStore,
            4,
            |mut chan| {
                // One kv put (value 6 encoded as 7), then checkpoint.
                chan.send(&Msg::<Fp61>::Ingest(vec![Update::new(2, 7)]))
                    .unwrap();
                chan.send(&Msg::<Fp61>::SaveState {
                    dataset_id: "kv".into(),
                })
                .unwrap();
                let Msg::StateAck { .. } = chan.recv::<Fp61>().unwrap() else {
                    panic!("expected state ack")
                };
            },
        );
        let registry = Arc::new(DatasetRegistry::with_data_dir(8, dir.clone()).unwrap());
        // A raw session must not resume a kv checkpoint.
        let end = run_with_registry(
            Arc::clone(&registry),
            SessionMode::RawStream,
            4,
            |mut chan| {
                chan.send(&Msg::<Fp61>::Resume {
                    dataset_id: "kv".into(),
                })
                .unwrap();
                assert!(matches!(chan.recv::<Fp61>().unwrap(), Msg::Error(_)));
            },
        );
        assert!(matches!(end, SessionEnd::ProtocolError(_)));
        // A kv session resumes and keeps putting.
        let end = run_with_registry(registry, SessionMode::KvStore, 4, |mut chan| {
            chan.send(&Msg::<Fp61>::Resume {
                dataset_id: "kv".into(),
            })
            .unwrap();
            let Msg::StateAck { .. } = chan.recv::<Fp61>().unwrap() else {
                panic!("expected state ack")
            };
            chan.send(&Msg::<Fp61>::Ingest(vec![Update::new(5, 3)]))
                .unwrap();
            // Range-count over the presence vector sees both keys.
            chan.send(&Msg::<Fp61>::Query(Query::RangeCount { l: 0, r: 15 }))
                .unwrap();
            let Msg::ClaimedValue(claimed) = chan.recv::<Fp61>().unwrap() else {
                panic!("expected claim")
            };
            assert_eq!(claimed, Fp61::from_u64(2));
            let Msg::RoundPoly(_) = chan.recv::<Fp61>().unwrap() else {
                panic!("expected g1")
            };
            chan.send(&Msg::<Fp61>::Bye).unwrap();
        });
        assert_eq!(end, SessionEnd::PeerDone);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn oneshot_query_answers_with_a_verifying_proof() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        use sip_core::sumcheck::f2::F2Verifier;
        use sip_core::sumcheck::OneShotProof;

        let log_u = 4u32;
        let stream = vec![Update::new(1, 3), Update::new(3, 2), Update::new(9, 5)];
        let mut rng = StdRng::seed_from_u64(21);
        let mut verifier = F2Verifier::<Fp61>::new(log_u, &mut rng);
        for &up in &stream {
            verifier.update(up);
        }
        let (core, expected) = verifier.into_session();
        let prefix = core.challenge_prefix().to_vec();
        let (end, ()) = with_session(SessionMode::RawStream, log_u, move |mut chan| {
            chan.send(&Msg::<Fp61>::Ingest(stream)).unwrap();
            chan.send(&Msg::QueryOneShot {
                query: Query::SelfJoin,
                challenges: prefix.clone(),
            })
            .unwrap();
            let Msg::Proof {
                claimed,
                rounds,
                digest,
            } = chan.recv::<Fp61>().unwrap()
            else {
                panic!("expected proof")
            };
            let proof = OneShotProof {
                claimed,
                rounds,
                digest,
            };
            let t = query_transcript::<Fp61>("self-join", log_u, None, &[], &prefix);
            let value = core.verify_oneshot(expected, t, &proof).unwrap();
            assert_eq!(value, Fp61::from_u64(9 + 4 + 25));
            chan.send(&Msg::<Fp61>::Bye).unwrap();
        });
        assert_eq!(end, SessionEnd::PeerDone);
    }

    #[test]
    fn oneshot_with_wrong_prefix_length_is_error() {
        let (end, ()) = with_session(SessionMode::RawStream, 4, |mut chan| {
            chan.send(&Msg::QueryOneShot {
                query: Query::SelfJoin,
                challenges: vec![Fp61::ONE],
            })
            .unwrap();
            assert!(matches!(chan.recv::<Fp61>().unwrap(), Msg::Error(_)));
        });
        assert!(matches!(end, SessionEnd::ProtocolError(_)));
    }

    #[test]
    fn oneshot_of_a_reporting_query_is_error() {
        let (end, ()) = with_session(SessionMode::RawStream, 4, |mut chan| {
            chan.send(&Msg::QueryOneShot {
                query: Query::Heavy { threshold: 1 },
                challenges: vec![Fp61::ONE; 3],
            })
            .unwrap();
            assert!(matches!(chan.recv::<Fp61>().unwrap(), Msg::Error(_)));
        });
        assert!(matches!(end, SessionEnd::ProtocolError(_)));
    }

    #[test]
    fn f2_query_answers_with_claim_then_polys() {
        let (end, ()) = with_session(SessionMode::RawStream, 2, |mut chan| {
            // a = [0, 3, 0, 2]: F2 = 13.
            chan.send(&Msg::<Fp61>::Ingest(vec![
                Update::new(1, 3),
                Update::new(3, 2),
            ]))
            .unwrap();
            chan.send(&Msg::<Fp61>::Query(Query::SelfJoin)).unwrap();
            let Msg::ClaimedValue(claimed) = chan.recv::<Fp61>().unwrap() else {
                panic!("expected claim")
            };
            assert_eq!(claimed, Fp61::from_u64(13));
            let Msg::RoundPoly(g1) = chan.recv::<Fp61>().unwrap() else {
                panic!("expected g1")
            };
            assert_eq!(g1.len(), 3);
            assert_eq!(g1[0] + g1[1], claimed);
            chan.send(&Msg::<Fp61>::Bye).unwrap();
        });
        assert_eq!(end, SessionEnd::PeerDone);
    }
}

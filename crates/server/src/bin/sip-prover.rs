//! `sip-prover`: a deployable prover process — one shard of a fleet, or a
//! standalone prover.
//!
//! ```text
//! sip-prover --listen 0.0.0.0:4017 --shard 2 --of 4 --log-u 20
//! ```
//!
//! * `--listen ADDR` — bind address (default `127.0.0.1:4017`; port 0 picks
//!   a free port, printed on startup for scripts).
//! * `--shard I --of N` — serve shard `I` of a fleet of `N` under the
//!   deterministic `ShardPlan` split; updates outside the shard's index
//!   range are refused, and a client `ShardHello` must agree. Omit both for
//!   a standalone (whole-universe) prover.
//! * `--log-u D` — require every session to run over `[2^D]` (fleet members
//!   must agree on the universe or the shard ranges would not line up).
//! * `--field 61|127` — Mersenne field (default 61).
//! * `--max-sessions N` — concurrent-session cap (default 64).
//! * `--threads N` — worker threads per prover round-message pass
//!   (default 1 = serial; `0` auto-detects the machine's parallelism, so a
//!   1-CPU box runs serial instead of losing throughput to idle workers;
//!   transcripts are identical at any setting, only wall-clock changes).
//! * `--metrics-addr ADDR` — bind a read-only ops listener: `/metrics` is
//!   Prometheus text, `/stats` a JSON snapshot. Runs on its own thread and
//!   never touches a serving session.
//! * `--log-json PATH` — append structured events to `PATH` as JSON lines
//!   (without it, `warn`+ events go to stderr).
//! * `--strict-load` — with `--data-dir`, exit nonzero if any snapshot on
//!   disk fails to reload instead of skipping it with a warning.
//! * `--obs-sample N` — hot-path timer sampling rate (default 16): the
//!   engine's ingest/fold latency timers run on 1 in `N` calls. Counters
//!   stay exact at any setting; `1` times every call (finer histograms,
//!   more clock reads), `0` turns the sampled timers off.
//! * `--trace` — enable causal span tracing (default off): sessions join
//!   verifier-announced traces, spans export at the ops listener's
//!   `/trace` as Chrome trace-event JSON, and flight-recorder dumps carry
//!   span trees.
//!
//! The process serves until killed. Soundness never depends on this binary
//! behaving: the verifier rejects anything inconsistent with its digests.

use std::process::exit;

use sip_field::{Fp127, Fp61};
use sip_server::{spawn, ServerConfig};
use sip_wire::ShardSpec;

struct Args {
    listen: String,
    shard: Option<u32>,
    of: Option<u32>,
    replica: u32,
    log_u: Option<u32>,
    field: u32,
    max_sessions: usize,
    threads: usize,
    data_dir: Option<String>,
    metrics_addr: Option<String>,
    log_json: Option<String>,
    strict_load: bool,
    obs_sample: u64,
    trace: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: sip-prover [--listen ADDR] [--shard I --of N [--replica R]] [--log-u D] \
         [--field 61|127] [--max-sessions N] [--threads N] [--data-dir PATH] \
         [--metrics-addr ADDR] [--log-json PATH] [--strict-load] \
         [--obs-sample N] [--trace]\n\
         \n\
         --replica R    which replica of shard I this prover is (default 0);\n\
         \x20              replicas of a shard ingest the identical sub-stream\n\
         --threads N    worker threads per prover round-message pass;\n\
         \x20              0 = auto-detect (available_parallelism), 1 = serial\n\
         --data-dir P   persist published datasets and checkpoints under P\n\
         \x20              and reload them on startup (crash recovery); omit\n\
         \x20              for a memory-only prover\n\
         --metrics-addr A  read-only ops listener: /metrics (Prometheus\n\
         \x20              text), /stats (JSON), /trace (Chrome trace JSON)\n\
         --log-json P   append structured events to P as JSON lines\n\
         --strict-load  exit nonzero if any --data-dir snapshot fails to\n\
         \x20              reload, instead of skipping it with a warning\n\
         --obs-sample N hot-path timer sampling rate (default 16; 1 = time\n\
         \x20              every call, 0 = sampled timers off)\n\
         --trace        enable causal span tracing (spans export at /trace;\n\
         \x20              rejection dumps carry span trees)"
    );
    exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        listen: "127.0.0.1:4017".to_string(),
        shard: None,
        of: None,
        replica: 0,
        log_u: None,
        field: 61,
        max_sessions: 64,
        threads: 1,
        data_dir: None,
        metrics_addr: None,
        log_json: None,
        strict_load: false,
        obs_sample: 16,
        trace: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> String {
            it.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                usage()
            })
        };
        match flag.as_str() {
            "--listen" => args.listen = value("--listen"),
            "--shard" => args.shard = Some(parse_u32(&value("--shard"), "--shard")),
            "--of" => args.of = Some(parse_u32(&value("--of"), "--of")),
            "--replica" => args.replica = parse_u32(&value("--replica"), "--replica"),
            "--log-u" => args.log_u = Some(parse_u32(&value("--log-u"), "--log-u")),
            "--field" => args.field = parse_u32(&value("--field"), "--field"),
            "--max-sessions" => {
                args.max_sessions = parse_u32(&value("--max-sessions"), "--max-sessions") as usize
            }
            "--threads" => args.threads = parse_u32(&value("--threads"), "--threads") as usize,
            "--data-dir" => args.data_dir = Some(value("--data-dir")),
            "--metrics-addr" => args.metrics_addr = Some(value("--metrics-addr")),
            "--log-json" => args.log_json = Some(value("--log-json")),
            "--strict-load" => args.strict_load = true,
            "--obs-sample" => {
                args.obs_sample = u64::from(parse_u32(&value("--obs-sample"), "--obs-sample"))
            }
            "--trace" => args.trace = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other}");
                usage()
            }
        }
    }
    args
}

fn parse_u32(s: &str, name: &str) -> u32 {
    s.parse().unwrap_or_else(|_| {
        eprintln!("{name}: not a number: {s}");
        usage()
    })
}

fn main() {
    let args = parse_args();
    if args.trace {
        sip_obs::trace::set_tracing(true);
    }
    if let Some(path) = &args.log_json {
        match sip_obs::JsonlSink::create(std::path::Path::new(path)) {
            Ok(sink) => sip_obs::add_sink(std::sync::Arc::new(sink)),
            Err(e) => {
                eprintln!("--log-json {path}: {e}");
                exit(1);
            }
        }
    }
    let shard = match (args.shard, args.of) {
        (Some(index), Some(count)) => {
            if index >= count {
                eprintln!("--shard {index} must be below --of {count}");
                exit(2);
            }
            Some(ShardSpec::with_replica(index, count, args.replica))
        }
        (None, None) => {
            if args.replica != 0 {
                eprintln!("--replica requires --shard and --of");
                exit(2);
            }
            None
        }
        _ => {
            eprintln!("--shard and --of must be given together");
            exit(2);
        }
    };
    if let Some(spec) = shard {
        // A shard's index range depends on log_u; without pinning it, two
        // sessions could carve the universe differently.
        let Some(log_u) = args.log_u else {
            eprintln!("--shard requires --log-u so every session agrees on the split");
            exit(2);
        };
        // Catch an impossible fleet shape now, not one refusal per session.
        if let Err(detail) = sip_streaming::ShardPlan::validate(log_u, spec.count) {
            eprintln!("invalid fleet shape: {detail}");
            exit(2);
        }
    }
    let config = ServerConfig {
        max_sessions: args.max_sessions,
        shard,
        require_log_u: args.log_u,
        threads: args.threads,
        data_dir: args.data_dir.as_ref().map(std::path::PathBuf::from),
        metrics_addr: args.metrics_addr.clone(),
        strict_load: args.strict_load,
        obs_sample: args.obs_sample,
        ..ServerConfig::default()
    };
    let handle = match args.field {
        61 => spawn::<Fp61, _>(args.listen.as_str(), config),
        127 => spawn::<Fp127, _>(args.listen.as_str(), config),
        other => {
            eprintln!("--field must be 61 or 127, got {other}");
            exit(2);
        }
    };
    let handle = match handle {
        Ok(h) => h,
        Err(e) => {
            // Covers both a failed bind and a --strict-load refusal; the
            // error text names which.
            eprintln!("sip-prover: startup failed on {}: {e}", args.listen);
            exit(1);
        }
    };
    if let Some(dir) = &args.data_dir {
        println!("sip-prover: durable data dir {dir}");
    }
    if let Some(ops) = handle.ops_addr() {
        println!("sip-prover: metrics on http://{ops}/metrics (stats: /stats)");
    }
    match shard {
        Some(spec) => println!(
            "sip-prover: shard {}/{} (Fp{}) listening on {}",
            spec.index,
            spec.count,
            args.field,
            handle.local_addr()
        ),
        None => println!(
            "sip-prover: standalone (Fp{}) listening on {}",
            args.field,
            handle.local_addr()
        ),
    }
    handle.wait();
}

//! Multiple queries and parallel repetition (Section 7).
//!
//! Two remedies the paper gives for running more than one query:
//!
//! * **Round-by-round batching** — "it is safe to run multiple queries in
//!   parallel round-by-round using the same randomly chosen values, and
//!   obtain the same guarantees for each query. This can be thought of as
//!   a 'direct sum' result." [`run_batch_range_sum`] verifies any number
//!   of RANGE-SUM queries against *one* streamed digest: the verifier
//!   keeps a single `(r, f_a(r))` pair, the prover folds the data vector
//!   once for all queries, and each round broadcasts one shared challenge.
//! * **Parallel repetition** — "we can reduce probability of error to p by
//!   repeating the protocol O(log 1/p) times in parallel".
//!   [`run_f2_repeated`] runs `c` independent F₂ copies (independent
//!   digests, shared stream pass) and accepts only a unanimous, consistent
//!   verdict, squaring/cubing/… the soundness error.

use rand::Rng;
use sip_field::lagrange::eval_from_grid_evals;
use sip_field::PrimeField;
use sip_lde::interval::block_range_weight;
use sip_lde::{range_indicator_lde, LdeParams, MultiLdeEvaluator, StreamingLdeEvaluator};
use sip_streaming::{FrequencyVector, Update};

use crate::channel::CostReport;
use crate::error::Rejection;
use crate::fold::FoldVector;
use crate::sumcheck::f2::{F2Prover, F2Verifier};
use crate::sumcheck::moments::VerifiedAggregate;
use crate::sumcheck::{drive_sumcheck, RoundProver};

/// A batch of verified range sums plus the shared cost accounting.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VerifiedBatch<F: PrimeField> {
    /// One verified sum per queried range, in query order.
    pub values: Vec<F>,
    /// Combined cost: note `v_to_p_words` carries *one* challenge per
    /// round regardless of the number of queries (the direct-sum saving).
    pub report: CostReport,
}

/// Verifies `ranges.len()` RANGE-SUM queries in parallel, round by round,
/// over a single streamed digest.
///
/// Soundness per query is unchanged (the per-query checks are the same;
/// the challenges are still uniform and unknown in advance); the verifier
/// stores one digest instead of one per query.
pub fn run_batch_range_sum<F: PrimeField, R: Rng + ?Sized>(
    log_u: u32,
    stream: &[Update],
    ranges: &[(u64, u64)],
    rng: &mut R,
) -> Result<VerifiedBatch<F>, Rejection> {
    assert!(!ranges.is_empty(), "empty batch");
    let u = 1u64 << log_u;
    for &(l, r) in ranges {
        assert!(l <= r && r < u, "bad range [{l}, {r}]");
    }
    let d = log_u as usize;

    // --- Shared streaming digest. ---------------------------------------
    let mut lde = StreamingLdeEvaluator::<F>::random(LdeParams::binary(log_u), rng);
    lde.update_batch(stream);
    let point = lde.point().to_vec();
    let fa_r = lde.value();

    // --- Prover: one shared fold of `a`, lazy per-query indicator folds. -
    let fv = FrequencyVector::from_stream(u, stream);
    let mut a = FoldVector::<F>::from_frequency(&fv, log_u);
    let mut challenges: Vec<F> = Vec::new();

    // --- Verifier session state per query. -------------------------------
    let mut outputs = vec![F::ZERO; ranges.len()];
    let mut claims = vec![F::ZERO; ranges.len()];
    let mut report = CostReport {
        v_to_p_words: 2 * ranges.len(), // the query ranges
        verifier_space_words: lde.space_words() + 3 * ranges.len(),
        ..CostReport::default()
    };

    for (j, &r_j) in point.iter().enumerate().take(d) {
        report.rounds += 1;
        // One message per query this round, all over the same fold of `a`.
        for (qi, &(q_l, q_r)) in ranges.iter().enumerate() {
            let mut e = [F::ZERO; 3];
            a.for_each_pair(|m, alo, ahi| {
                let blo = block_range_weight(q_l, q_r, &challenges, j, 2 * m);
                let bhi = block_range_weight(q_l, q_r, &challenges, j, 2 * m + 1);
                e[0] += alo * blo;
                e[1] += ahi * bhi;
                let a2 = ahi + (ahi - alo);
                let b2 = bhi + (bhi - blo);
                e[2] += a2 * b2;
            });
            report.p_to_v_words += 3;
            // Verifier-side round checks for query qi.
            let grid_sum = e[0] + e[1];
            if j == 0 {
                outputs[qi] = grid_sum;
            } else if grid_sum != claims[qi] {
                return Err(Rejection::RoundSumMismatch { round: j + 1 });
            }
            claims[qi] = eval_from_grid_evals(&e, r_j);
        }
        // One shared challenge for all queries.
        if j + 1 < d {
            report.v_to_p_words += 1;
            a.bind(r_j);
            challenges.push(r_j);
        }
    }

    // --- Final checks: g_d(r_d) = f_a(r)·f_b_i(r) per query. -------------
    for (qi, &(q_l, q_r)) in ranges.iter().enumerate() {
        let fb_r = range_indicator_lde(q_l, q_r, &point);
        if claims[qi] != fa_r * fb_r {
            return Err(Rejection::FinalCheckFailed);
        }
    }
    Ok(VerifiedBatch {
        values: outputs,
        report,
    })
}

/// Runs `copies` independent F₂ protocols over the same stream in one
/// pass, accepting only if every copy accepts *and* all verified values
/// agree. Failure probability drops from `ε` to `ε^copies`.
pub fn run_f2_repeated<F: PrimeField, R: Rng + ?Sized>(
    log_u: u32,
    stream: &[Update],
    copies: usize,
    rng: &mut R,
) -> Result<VerifiedAggregate<F>, Rejection> {
    assert!(copies >= 1);
    // One streaming pass updates all digests (MultiLdeEvaluator mirrors
    // how a deployment would fuse them; here each copy owns a verifier).
    let mut verifiers: Vec<F2Verifier<F>> =
        (0..copies).map(|_| F2Verifier::new(log_u, rng)).collect();
    for v in &mut verifiers {
        v.update_batch(stream);
    }
    let fv = FrequencyVector::from_stream(1 << log_u, stream);

    let mut agreed: Option<F> = None;
    let mut total = CostReport::default();
    for verifier in verifiers {
        total.verifier_space_words += verifier.space_words();
        let mut prover = F2Prover::new(&fv, log_u);
        let (mut core, expected) = verifier.into_session();
        let mut report = CostReport::default();
        let value = drive_sumcheck(&mut prover, &mut core, expected, &mut report, None)?;
        total.rounds += report.rounds;
        total.p_to_v_words += report.p_to_v_words;
        total.v_to_p_words += report.v_to_p_words;
        match agreed {
            None => agreed = Some(value),
            Some(prev) if prev == value => {}
            Some(_) => {
                return Err(Rejection::StructuralCheckFailed {
                    detail: "parallel repetitions disagree on the answer".to_string(),
                })
            }
        }
        let _ = prover.degree();
    }
    Ok(VerifiedAggregate {
        value: agreed.expect("copies >= 1"),
        report: total,
    })
}

/// The `MultiLdeEvaluator` route to repetition: evaluates one digest at
/// `copies` points in a single object (used by deployments that want the
/// fused stream pass). Returns the per-copy digests `(point, value)`.
pub fn fused_digests<F: PrimeField, R: Rng + ?Sized>(
    log_u: u32,
    stream: &[Update],
    copies: usize,
    rng: &mut R,
) -> Vec<(Vec<F>, F)> {
    fused_digests_pooled(
        log_u,
        stream,
        copies,
        crate::engine::ProverPool::SERIAL,
        rng,
    )
}

/// [`fused_digests`] on a thread pool: the batched multi-point intake runs
/// through [`crate::engine::ProverPool::ingest_batch`], splitting the
/// stream into chunks whose exact partial sums recombine — digests are
/// bit-identical at any thread count, only wall-clock moves.
pub fn fused_digests_pooled<F: PrimeField, R: Rng + ?Sized>(
    log_u: u32,
    stream: &[Update],
    copies: usize,
    pool: crate::engine::ProverPool,
    rng: &mut R,
) -> Vec<(Vec<F>, F)> {
    let mut multi = MultiLdeEvaluator::<F>::random(LdeParams::binary(log_u), copies, rng);
    pool.ingest_batch(&mut multi, stream);
    (0..multi.num_points())
        .map(|p| (multi.point(p).to_vec(), multi.value(p)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sip_field::Fp61;
    use sip_streaming::workloads;

    #[test]
    fn batch_matches_individual_range_sums() {
        let mut rng = StdRng::seed_from_u64(1);
        let log_u = 9;
        let stream = workloads::distinct_key_values(300, 1 << log_u, 100, 2);
        let fv = FrequencyVector::from_stream(1 << log_u, &stream);
        let ranges = [(0u64, 511u64), (10, 20), (100, 400), (256, 256)];
        let got = run_batch_range_sum::<Fp61, _>(log_u, &stream, &ranges, &mut rng).unwrap();
        for (qi, &(l, r)) in ranges.iter().enumerate() {
            assert_eq!(
                got.values[qi],
                Fp61::from_u128(fv.range_sum(l, r) as u128),
                "range [{l},{r}]"
            );
        }
    }

    #[test]
    fn batch_shares_challenges() {
        // v_to_p = 2 words per range (the queries) + d−1 shared challenges,
        // NOT k·(d−1).
        let mut rng = StdRng::seed_from_u64(2);
        let log_u = 8;
        let stream = workloads::uniform(200, 1 << log_u, 9, 3);
        let ranges = [(0u64, 100u64), (5, 9), (50, 250), (0, 255), (7, 7)];
        let got = run_batch_range_sum::<Fp61, _>(log_u, &stream, &ranges, &mut rng).unwrap();
        let d = log_u as usize;
        assert_eq!(got.report.v_to_p_words, 2 * ranges.len() + d - 1);
        assert_eq!(got.report.p_to_v_words, 3 * d * ranges.len());
        assert_eq!(got.report.rounds, d);
    }

    #[test]
    fn repetition_matches_single_run() {
        let mut rng = StdRng::seed_from_u64(3);
        let log_u = 8;
        let stream = workloads::paper_f2(1 << log_u, 4);
        let fv = FrequencyVector::from_stream(1 << log_u, &stream);
        let got = run_f2_repeated::<Fp61, _>(log_u, &stream, 3, &mut rng).unwrap();
        assert_eq!(got.value, Fp61::from_u128(fv.self_join_size() as u128));
        assert_eq!(got.report.rounds, 3 * log_u as usize);
    }

    #[test]
    fn fused_digests_match_individual_evaluators() {
        let mut rng = StdRng::seed_from_u64(4);
        let log_u = 7;
        let stream = workloads::uniform(100, 1 << log_u, 5, 5);
        let digests = fused_digests::<Fp61, _>(log_u, &stream, 4, &mut rng);
        assert_eq!(digests.len(), 4);
        for (point, value) in digests {
            let mut single = StreamingLdeEvaluator::<Fp61>::new(LdeParams::binary(log_u), point);
            single.update_all(&stream);
            assert_eq!(single.value(), value);
        }
    }

    #[test]
    fn pooled_fused_digests_match_serial() {
        let log_u = 8;
        let stream = workloads::uniform(400, 1 << log_u, 9, 6);
        let serial = {
            let mut rng = StdRng::seed_from_u64(11);
            fused_digests::<Fp61, _>(log_u, &stream, 3, &mut rng)
        };
        for threads in [2usize, 4] {
            let mut rng = StdRng::seed_from_u64(11);
            let pooled = fused_digests_pooled::<Fp61, _>(
                log_u,
                &stream,
                3,
                crate::engine::ProverPool::new(threads),
                &mut rng,
            );
            assert_eq!(pooled, serial, "threads={threads}");
        }
    }

    #[test]
    fn single_copy_repetition_equals_plain_f2() {
        let mut rng = StdRng::seed_from_u64(5);
        let log_u = 7;
        let stream = workloads::uniform(150, 1 << log_u, 9, 6);
        let rep = run_f2_repeated::<Fp61, _>(log_u, &stream, 1, &mut rng).unwrap();
        let plain = crate::sumcheck::f2::run_f2::<Fp61, _>(log_u, &stream, &mut rng).unwrap();
        assert_eq!(rep.value, plain.value);
    }
}

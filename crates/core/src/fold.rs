//! The prover's fold engine (Appendix B.1).
//!
//! The honest prover's work in every multi-round protocol is dominated by
//! maintaining the table
//!
//! ```text
//! A_j[v_j … v_d] = Σ_{v_1 … v_{j−1} ∈ [2]^{j−1}}  a_v · Π_{k<j} χ_{v_k}(r_k)
//! ```
//!
//! which halves in size every round via
//! `A_{j+1}[m] = χ_0(r_j)·A_j[2m] + χ_1(r_j)·A_j[2m+1]`. The same fold with
//! weights `(1, r_j)` computes the SUB-VECTOR hash tree of Section 4 level
//! by level.
//!
//! [`FoldVector`] keeps the table *sparse* (sorted `(index, value)` runs)
//! while the support is small and densifies once folding has made the table
//! comparable to its support — this is what realises the paper's
//! `O(min(u, n log(u/n)))` prover time.

use sip_field::PrimeField;
use sip_streaming::FrequencyVector;

/// Size (in entries) below which a fold table is always stored densely.
const ALWAYS_DENSE: u64 = 1 << 12;

/// The half-open range `[lo, hi)` that `chunk` of `chunks` covers when an
/// index space of `blocks` slots is split into near-equal contiguous runs.
/// Boundaries are deterministic, so a chunked walk visits exactly the same
/// `(chunk, index)` assignment whether it runs serially or on threads.
pub fn chunk_range(blocks: u64, chunk: usize, chunks: usize) -> (u64, u64) {
    debug_assert!(chunks >= 1 && chunk < chunks);
    let n = chunks as u128;
    let b = blocks as u128;
    let lo = (b * chunk as u128 / n) as u64;
    let hi = (b * (chunk as u128 + 1) / n) as u64;
    (lo, hi)
}

/// Advances a sorted sparse run to its next pair `(m, lo, hi)` with index
/// below `end`, grouping an even entry with its odd sibling when present.
fn sparse_next_pair<F: PrimeField>(
    s: &[(u64, F)],
    idx: &mut usize,
    end: u64,
) -> Option<(u64, F, F)> {
    if *idx >= s.len() {
        return None;
    }
    let (i, v) = s[*idx];
    if i >= end {
        return None;
    }
    let m = i >> 1;
    if i & 1 == 0 {
        if *idx + 1 < s.len() && s[*idx + 1].0 == i + 1 {
            let hi = s[*idx + 1].1;
            *idx += 2;
            Some((m, v, hi))
        } else {
            *idx += 1;
            Some((m, v, F::ZERO))
        }
    } else {
        *idx += 1;
        Some((m, F::ZERO, v))
    }
}

/// A power-of-two-length vector being folded one variable at a time.
///
/// Indices are interpreted in binary with the *lowest* bit the next variable
/// to fold (the paper's `v_j` ordering: least-significant digit first).
#[derive(Clone, Debug)]
pub struct FoldVector<F: PrimeField> {
    /// Number of unbound variables; the logical length is `2^bits`.
    bits: u32,
    repr: FoldRepr<F>,
}

#[derive(Clone, Debug)]
enum FoldRepr<F> {
    Dense(Vec<F>),
    /// Sorted by index, all values nonzero.
    Sparse(Vec<(u64, F)>),
}

impl<F: PrimeField> FoldVector<F> {
    /// Builds the initial table `A_1 = a` from a frequency vector over
    /// `[2^bits]`.
    ///
    /// # Panics
    /// Panics if the vector's universe exceeds `2^bits`.
    pub fn from_frequency(fv: &FrequencyVector, bits: u32) -> Self {
        assert!(bits <= 63);
        let len = 1u64 << bits;
        assert!(fv.universe() <= len, "universe larger than 2^bits");
        let support = fv.support_size();
        if len <= ALWAYS_DENSE || support.saturating_mul(4) >= len {
            let mut values = vec![F::ZERO; len as usize];
            for (i, f) in fv.nonzero() {
                values[i as usize] = F::from_i64(f);
            }
            FoldVector {
                bits,
                repr: FoldRepr::Dense(values),
            }
        } else {
            FoldVector {
                bits,
                repr: FoldRepr::Sparse(fv.nonzero().map(|(i, f)| (i, F::from_i64(f))).collect()),
            }
        }
    }

    /// Builds a dense table from explicit values (`values.len()` must be a
    /// power of two).
    pub fn from_values(values: Vec<F>) -> Self {
        assert!(
            values.len().is_power_of_two(),
            "length must be a power of two"
        );
        let bits = values.len().trailing_zeros();
        FoldVector {
            bits,
            repr: FoldRepr::Dense(values),
        }
    }

    /// Number of unbound variables.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// The value at `index` (zero where absent).
    pub fn get(&self, index: u64) -> F {
        debug_assert!(index < (1u64 << self.bits));
        match &self.repr {
            FoldRepr::Dense(v) => v[index as usize],
            FoldRepr::Sparse(s) => match s.binary_search_by_key(&index, |&(i, _)| i) {
                Ok(pos) => s[pos].1,
                Err(_) => F::ZERO,
            },
        }
    }

    /// The fully folded scalar (only valid once `bits == 0`).
    ///
    /// # Panics
    /// Panics if variables remain.
    pub fn scalar(&self) -> F {
        assert_eq!(
            self.bits, 0,
            "fold incomplete: {} variables left",
            self.bits
        );
        self.get(0)
    }

    /// Number of explicitly stored entries (table footprint).
    pub fn stored_len(&self) -> usize {
        match &self.repr {
            FoldRepr::Dense(v) => v.len(),
            FoldRepr::Sparse(s) => s.len(),
        }
    }

    /// Whether the table is currently sparse.
    pub fn is_sparse(&self) -> bool {
        matches!(self.repr, FoldRepr::Sparse(_))
    }

    /// Number of pair slots `2^{bits−1}` (zero once fully folded).
    pub fn pairs(&self) -> u64 {
        if self.bits == 0 {
            0
        } else {
            1u64 << (self.bits - 1)
        }
    }

    /// Visits every index pair `(m, lo, hi) = (m, A[2m], A[2m+1])` with at
    /// least one nonzero component, in increasing `m`.
    pub fn for_each_pair(&self, f: impl FnMut(u64, F, F)) {
        self.for_each_pair_in(0, self.pairs(), f);
    }

    /// Like [`Self::for_each_pair`], restricted to pair indices in
    /// `[m_lo, m_hi)` — the building block of chunked (and data-parallel)
    /// iteration.
    pub fn for_each_pair_in(&self, m_lo: u64, m_hi: u64, mut f: impl FnMut(u64, F, F)) {
        debug_assert!(m_lo <= m_hi && m_hi <= self.pairs());
        match &self.repr {
            FoldRepr::Dense(v) => {
                for m in m_lo..m_hi {
                    let lo = v[2 * m as usize];
                    let hi = v[2 * m as usize + 1];
                    if !lo.is_zero() || !hi.is_zero() {
                        f(m, lo, hi);
                    }
                }
            }
            FoldRepr::Sparse(s) => {
                let mut idx = s.partition_point(|&(i, _)| i < 2 * m_lo);
                let end = 2 * m_hi;
                while let Some((m, lo, hi)) = sparse_next_pair(s, &mut idx, end) {
                    f(m, lo, hi);
                }
            }
        }
    }

    /// Splits the pair-index space into `chunks` contiguous near-equal
    /// ranges (deterministic boundaries, see [`chunk_range`]) and visits
    /// them in order: `f(chunk, m, lo, hi)`. Chunk `c` seen serially here is
    /// exactly what worker `c` of the data-parallel kernel sees.
    pub fn for_each_pair_chunks(&self, chunks: usize, mut f: impl FnMut(usize, u64, F, F)) {
        let n = chunks.max(1);
        for c in 0..n {
            let (lo, hi) = chunk_range(self.pairs(), c, n);
            self.for_each_pair_in(lo, hi, |m, a, b| f(c, m, a, b));
        }
    }

    /// Visits every `m` where *either* table has a nonzero child:
    /// `(m, a_lo, a_hi, b_lo, b_hi)`. Both tables must have the same number
    /// of unbound variables.
    pub fn for_each_pair_union(
        a: &FoldVector<F>,
        b: &FoldVector<F>,
        f: impl FnMut(u64, F, F, F, F),
    ) {
        Self::for_each_pair_union_in(a, b, 0, a.pairs(), f);
    }

    /// Like [`Self::for_each_pair_union`], restricted to pair indices in
    /// `[m_lo, m_hi)`.
    pub fn for_each_pair_union_in(
        a: &FoldVector<F>,
        b: &FoldVector<F>,
        m_lo: u64,
        m_hi: u64,
        mut f: impl FnMut(u64, F, F, F, F),
    ) {
        assert_eq!(a.bits, b.bits, "fold tables out of sync");
        match (&a.repr, &b.repr) {
            (FoldRepr::Sparse(sa), FoldRepr::Sparse(sb)) => {
                // Streaming merge join over pair indices — no intermediate
                // materialisation, so chunked workers stay allocation-free.
                let end = 2 * m_hi;
                let mut ia = sa.partition_point(|&(i, _)| i < 2 * m_lo);
                let mut ib = sb.partition_point(|&(i, _)| i < 2 * m_lo);
                let mut na = sparse_next_pair(sa, &mut ia, end);
                let mut nb = sparse_next_pair(sb, &mut ib, end);
                loop {
                    match (na, nb) {
                        (Some((ma, alo, ahi)), Some((mb, blo, bhi))) => {
                            if ma == mb {
                                f(ma, alo, ahi, blo, bhi);
                                na = sparse_next_pair(sa, &mut ia, end);
                                nb = sparse_next_pair(sb, &mut ib, end);
                            } else if ma < mb {
                                f(ma, alo, ahi, F::ZERO, F::ZERO);
                                na = sparse_next_pair(sa, &mut ia, end);
                            } else {
                                f(mb, F::ZERO, F::ZERO, blo, bhi);
                                nb = sparse_next_pair(sb, &mut ib, end);
                            }
                        }
                        (Some((ma, alo, ahi)), None) => {
                            f(ma, alo, ahi, F::ZERO, F::ZERO);
                            na = sparse_next_pair(sa, &mut ia, end);
                        }
                        (None, Some((mb, blo, bhi))) => {
                            f(mb, F::ZERO, F::ZERO, blo, bhi);
                            nb = sparse_next_pair(sb, &mut ib, end);
                        }
                        (None, None) => break,
                    }
                }
            }
            _ => {
                // At least one side dense: visit all pair slots in range.
                for m in m_lo..m_hi {
                    let alo = a.get(2 * m);
                    let ahi = a.get(2 * m + 1);
                    let blo = b.get(2 * m);
                    let bhi = b.get(2 * m + 1);
                    if !alo.is_zero() || !ahi.is_zero() || !blo.is_zero() || !bhi.is_zero() {
                        f(m, alo, ahi, blo, bhi);
                    }
                }
            }
        }
    }

    /// All nonzero entries with index in `[lo, hi]`, in index order.
    pub fn nonzero_in_range(&self, lo: u64, hi: u64) -> Vec<(u64, F)> {
        debug_assert!(lo <= hi && hi < (1u64 << self.bits));
        match &self.repr {
            FoldRepr::Dense(v) => (lo..=hi)
                .filter_map(|i| {
                    let val = v[i as usize];
                    (!val.is_zero()).then_some((i, val))
                })
                .collect(),
            FoldRepr::Sparse(s) => {
                let start = s.partition_point(|&(i, _)| i < lo);
                s[start..]
                    .iter()
                    .take_while(|&&(i, _)| i <= hi)
                    .copied()
                    .collect()
            }
        }
    }

    /// Folds the lowest variable with weights `(w0, w1)`:
    /// `A'[m] = w0·A[2m] + w1·A[2m+1]`.
    ///
    /// * sum-check binding at challenge `r`: `(1−r, r)`;
    /// * hash-tree level combine with key `r` (equation (7)): `(1, r)`.
    ///
    /// # Panics
    /// Panics if no variables remain.
    pub fn fold(&mut self, w0: F, w1: F) {
        assert!(self.bits >= 1, "nothing left to fold");
        let new_bits = self.bits - 1;
        match &mut self.repr {
            FoldRepr::Dense(v) => {
                let half = v.len() / 2;
                for m in 0..half {
                    v[m] = F::mul_add2(w0, v[2 * m], w1, v[2 * m + 1]);
                }
                v.truncate(half);
            }
            FoldRepr::Sparse(s) => {
                let mut out: Vec<(u64, F)> = Vec::with_capacity(s.len());
                let mut idx = 0;
                while idx < s.len() {
                    let (i, v) = s[idx];
                    let m = i >> 1;
                    let combined = if i & 1 == 0 {
                        if idx + 1 < s.len() && s[idx + 1].0 == i + 1 {
                            let hi = s[idx + 1].1;
                            idx += 2;
                            F::mul_add2(w0, v, w1, hi)
                        } else {
                            idx += 1;
                            w0 * v
                        }
                    } else {
                        idx += 1;
                        w1 * v
                    };
                    if !combined.is_zero() {
                        out.push((m, combined));
                    }
                }
                *s = out;
                // Densify once the table is no longer meaningfully sparse.
                let len = 1u64 << new_bits;
                if len <= ALWAYS_DENSE || (s.len() as u64).saturating_mul(4) >= len {
                    let mut dense = vec![F::ZERO; len as usize];
                    for &(i, v) in s.iter() {
                        dense[i as usize] = v;
                    }
                    self.repr = FoldRepr::Dense(dense);
                }
            }
        }
        self.bits = new_bits;
    }

    /// Binds the lowest variable to challenge `r` using the multilinear
    /// basis: weights `(1−r, r)`.
    pub fn bind(&mut self, r: F) {
        self.fold(F::ONE - r, r);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sip_field::{Fp61, PrimeField};
    use sip_lde::reference::naive_multilinear_eval;
    use sip_streaming::{workloads, FrequencyVector, Update};

    fn field_vec(fv: &FrequencyVector) -> Vec<Fp61> {
        (0..fv.universe())
            .map(|i| Fp61::from_i64(fv.get(i)))
            .collect()
    }

    #[test]
    fn full_bind_equals_multilinear_eval() {
        // Binding all variables at (r_1, …, r_d) must produce f̃_a(r): the
        // multilinear extension evaluated at r.
        let mut rng = StdRng::seed_from_u64(1);
        let bits = 8u32;
        let stream = workloads::uniform(100, 1 << bits, 50, 7);
        let fv = FrequencyVector::from_stream(1 << bits, &stream);
        let values = field_vec(&fv);
        let mut fold = FoldVector::from_frequency(&fv, bits);
        let r: Vec<Fp61> = (0..bits).map(|_| Fp61::random(&mut rng)).collect();
        for &rj in &r {
            fold.bind(rj);
        }
        assert_eq!(fold.scalar(), naive_multilinear_eval(&values, &r));
    }

    #[test]
    fn sparse_and_dense_agree_through_folds() {
        let mut rng = StdRng::seed_from_u64(2);
        let bits = 16u32; // large enough that sparse is chosen
        let stream = workloads::uniform(40, 1 << bits, 9, 8);
        let fv = FrequencyVector::from_stream(1 << bits, &stream);
        let mut sparse = FoldVector::from_frequency(&fv, bits);
        assert!(sparse.is_sparse(), "setup should start sparse");
        let mut dense = FoldVector::from_values(field_vec(&fv));
        for _ in 0..bits {
            let r = Fp61::random(&mut rng);
            // Compare pair walks before folding.
            let mut sp = Vec::new();
            sparse.for_each_pair(|m, lo, hi| sp.push((m, lo, hi)));
            let mut dp = Vec::new();
            dense.for_each_pair(|m, lo, hi| dp.push((m, lo, hi)));
            assert_eq!(sp, dp);
            sparse.bind(r);
            dense.bind(r);
        }
        assert_eq!(sparse.scalar(), dense.scalar());
    }

    #[test]
    fn tree_fold_computes_affine_hash() {
        // Folding with (1, r_j) computes the hash tree of Section 4:
        // t = Σ_i a_i Π_j r_j^{bit_j(i)} (equation (8)).
        let mut rng = StdRng::seed_from_u64(3);
        let bits = 6u32;
        let stream = workloads::uniform(30, 1 << bits, 100, 9);
        let fv = FrequencyVector::from_stream(1 << bits, &stream);
        let keys: Vec<Fp61> = (0..bits).map(|_| Fp61::random(&mut rng)).collect();
        let mut fold = FoldVector::from_frequency(&fv, bits);
        for &k in &keys {
            fold.fold(Fp61::ONE, k);
        }
        let mut expect = Fp61::ZERO;
        for (i, f) in fv.nonzero() {
            let mut w = Fp61::from_i64(f);
            for (j, &k) in keys.iter().enumerate() {
                if (i >> j) & 1 == 1 {
                    w *= k;
                }
            }
            expect += w;
        }
        assert_eq!(fold.scalar(), expect);
    }

    #[test]
    fn pair_union_covers_both_supports() {
        let a = FrequencyVector::from_stream(
            1 << 16,
            &[Update::new(2, 1), Update::new(5, 2), Update::new(40_000, 3)],
        );
        let b = FrequencyVector::from_stream(
            1 << 16,
            &[Update::new(3, 7), Update::new(5, 1), Update::new(60_001, 4)],
        );
        let fa = FoldVector::<Fp61>::from_frequency(&a, 16);
        let fb = FoldVector::<Fp61>::from_frequency(&b, 16);
        assert!(fa.is_sparse() && fb.is_sparse());
        let mut seen = Vec::new();
        FoldVector::for_each_pair_union(&fa, &fb, |m, alo, ahi, blo, bhi| {
            seen.push((m, alo, ahi, blo, bhi));
        });
        let one = Fp61::from_u64(1);
        let two = Fp61::from_u64(2);
        let three = Fp61::from_u64(3);
        let four = Fp61::from_u64(4);
        let seven = Fp61::from_u64(7);
        let z = Fp61::ZERO;
        assert_eq!(
            seen,
            vec![
                (1, one, z, z, seven), // a_2 | b_3
                (2, z, two, z, one),   // a_5 | b_5
                (20_000, three, z, z, z),
                (30_000, z, z, z, four), // b at 60_001 (odd)
            ]
        );
    }

    #[test]
    fn pair_union_mixed_representations() {
        // One dense, one sparse: same results as both dense.
        let mut rng = StdRng::seed_from_u64(4);
        let bits = 13u32;
        let sa = workloads::uniform(5000, 1 << bits, 5, 10); // dense support
        let sb = workloads::uniform(20, 1 << bits, 5, 11); // sparse support
        let a = FrequencyVector::from_stream(1 << bits, &sa);
        let b = FrequencyVector::from_stream(1 << bits, &sb);
        let fa = FoldVector::<Fp61>::from_frequency(&a, bits);
        let fb = FoldVector::<Fp61>::from_frequency(&b, bits);
        let da = FoldVector::from_values(field_vec(&a));
        let db = FoldVector::from_values(field_vec(&b));
        let mut got = Fp61::ZERO;
        let r = Fp61::random(&mut rng);
        FoldVector::for_each_pair_union(&fa, &fb, |_, alo, ahi, blo, bhi| {
            got += (alo + r * ahi) * (blo + r * bhi);
        });
        let mut expect = Fp61::ZERO;
        FoldVector::for_each_pair_union(&da, &db, |_, alo, ahi, blo, bhi| {
            expect += (alo + r * ahi) * (blo + r * bhi);
        });
        assert_eq!(got, expect);
    }

    #[test]
    fn sparse_densifies_as_it_shrinks() {
        let stream = workloads::uniform(64, 1 << 20, 3, 12);
        let fv = FrequencyVector::from_stream(1 << 20, &stream);
        let mut fold = FoldVector::<Fp61>::from_frequency(&fv, 20);
        assert!(fold.is_sparse());
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..20 {
            fold.bind(Fp61::random(&mut rng));
        }
        assert_eq!(fold.bits(), 0);
        assert!(!fold.is_sparse(), "must densify by the end");
    }

    #[test]
    fn zero_cancellation_in_sparse_fold() {
        // Entries that cancel exactly must be dropped, not stored as zero.
        let fv = FrequencyVector::from_stream(1 << 16, &[Update::new(8, 1), Update::new(9, 1)]);
        let mut fold = FoldVector::<Fp61>::from_frequency(&fv, 16);
        // With weights (1, −1): 1·a[8] + (−1)·a[9] = 0.
        fold.fold(Fp61::ONE, -Fp61::ONE);
        assert_eq!(fold.get(4), Fp61::ZERO);
        assert!(fold.stored_len() <= 1); // nothing (or a densified table)
    }

    #[test]
    #[should_panic(expected = "nothing left to fold")]
    fn over_folding_panics() {
        let mut fold = FoldVector::from_values(vec![Fp61::ONE, Fp61::ZERO]);
        fold.bind(Fp61::ONE);
        fold.bind(Fp61::ONE);
    }
}

//! The streaming interactive proof protocols of Cormode–Thaler–Yi
//! (VLDB 2011).
//!
//! A space-limited verifier `V` observes a stream of updates to an implicit
//! frequency vector `a ∈ Z_p^u`, retaining only `O(log u)` words, then runs a
//! short interactive protocol with an untrusted prover `P` holding the full
//! data. An honest prover always convinces `V`; a cheating prover is caught
//! except with probability `O(log u / p)` — about `10⁻¹⁶` over the default
//! field [`sip_field::Fp61`].
//!
//! | Query | Protocol | Paper | Cost `(space, comm)` |
//! |---|---|---|---|
//! | SELF-JOIN SIZE (F₂) | [`sumcheck::f2`] | §3.1 | `(log u, log u)` |
//! | frequency moments F_k | [`sumcheck::moments`] | §3.2 | `(log u, k·log u)` |
//! | INNER PRODUCT | [`sumcheck::inner_product`] | §3.2 | `(log u, log u)` |
//! | RANGE-SUM | [`sumcheck::range_sum`] | §3.2 | `(log u, log u)` |
//! | SUB-VECTOR | [`subvector`] | §4.1 | `(log u, log u + k)` |
//! | INDEX, DICTIONARY, PREDECESSOR, … | [`reporting`] | §4.2 | `(log u, log u + k)` |
//! | HEAVY HITTERS | [`heavy_hitters`] | §6.1 | `(log u, φ⁻¹·log u)` |
//! | F₀, F_max, inverse distribution | [`frequency_fn`] | §6.2 | `(log u, √u·log u)` |
//! | F₂ one-round baseline of \[6\] | [`one_round`] | §5 | `(√u, √u)` |
//!
//! Every protocol separates three roles:
//!
//! * a **streaming verifier state** fed update-by-update while the data is
//!   uploaded (this is all `V` ever stores about the data);
//! * an honest **prover** holding the materialised
//!   [`sip_streaming::FrequencyVector`];
//! * a **verification session** consuming prover *messages* — never prover
//!   internals — so the failure-injection suite can deliver corrupted
//!   messages through exactly the honest code path.
//!
//! Orchestration helpers (`run_*`) execute the honest interaction and return
//! a [`CostReport`] whose word counts regenerate the paper's space and
//! communication figures.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod channel;
pub mod engine;
pub mod error;
pub mod fold;
pub mod frequency_fn;
pub mod heavy_hitters;
pub mod one_round;
pub mod reporting;
pub mod subvector;
pub mod sumcheck;
pub mod transcript;

pub use channel::{
    ClusterCostReport, CostReport, Fault, FaultPlan, FaultTransport, FramedTcpTransport,
    InMemoryTransport, LatencyTransport, RetryPolicy, Transport, TransportError, TransportStats,
};
pub use engine::{Combine, FoldSource, ProverPool};
pub use error::{IoFault, Rejection};
pub use sumcheck::{OneShotProof, OneShotWalk, ProverWalk};
pub use transcript::{digest_words, query_transcript, Transcript};

//! The one-round `(√u, √u)` baseline of Chakrabarti–Cormode–McGregor \[6\].
//!
//! The paper's experimental study compares its multi-round F₂ protocol to
//! "the single round protocol given in \[6\], which can be seen as a protocol
//! in our setting with d = 2 and ℓ = √u": view `a` as a `√u × √u` grid
//! `a[v₁][v₂]`. The verifier picks a single random `r₁` and streams the
//! *vector* of partial LDEs
//!
//! ```text
//! w[j] = f_a(r₁, j) = Σ_{v₁} a[v₁][j]·χ_{v₁}(r₁)        (√u words)
//! ```
//!
//! — `O(1)` per update via a χ lookup table, which is why the paper's
//! Figure 2(a) shows the one-round verifier slightly *faster* per update
//! than the multi-round one. The prover sends one message: the polynomial
//!
//! ```text
//! g(x) = Σ_{j ∈ [ℓ]} f_a(x, j)²       (degree 2(ℓ−1), 2ℓ−1 words)
//! ```
//!
//! and the verifier accepts iff `g(r₁) = Σ_j w[j]²`, reporting
//! `F₂ = Σ_{x ∈ [ℓ]} g(x)`. Soundness: `O(√u / p)` by Schwartz–Zippel.
//!
//! Space and communication are both `Θ(√u)`, and the honest prover runs in
//! `Θ(u^{3/2})` — the steeper line of Figure 2(b). This module exists to
//! regenerate exactly those comparisons.

use rand::Rng;
use sip_field::lagrange::{chi_all, eval_from_grid_evals};
use sip_field::PrimeField;
use sip_streaming::{FrequencyVector, Update};

use crate::channel::CostReport;
use crate::error::Rejection;
use crate::sumcheck::moments::VerifiedAggregate;

/// Streaming verifier for the one-round F₂ protocol.
#[derive(Clone, Debug)]
pub struct OneRoundF2Verifier<F: PrimeField> {
    ell: u64,
    r1: F,
    /// `χ_k(r₁)` for `k ∈ [ℓ]`.
    chi_r1: Vec<F>,
    /// `w[j] = f_a(r₁, j)`.
    w: Vec<F>,
}

impl<F: PrimeField> OneRoundF2Verifier<F> {
    /// Prepares to stream over a universe of at least `2^log_u`
    /// (`ℓ = 2^⌈log_u/2⌉`).
    pub fn new<R: Rng + ?Sized>(log_u: u32, rng: &mut R) -> Self {
        let ell = 1u64 << log_u.div_ceil(2);
        let r1 = F::random(rng);
        OneRoundF2Verifier {
            ell,
            r1,
            chi_r1: chi_all(ell, r1),
            w: vec![F::ZERO; ell as usize],
        }
    }

    /// The grid side `ℓ = √u`.
    pub fn ell(&self) -> u64 {
        self.ell
    }

    /// Processes one update in `O(1)` time: `w[v₂] += δ·χ_{v₁}(r₁)`.
    pub fn update(&mut self, up: Update) {
        let v1 = (up.index % self.ell) as usize;
        let v2 = (up.index / self.ell) as usize;
        assert!(v2 < self.w.len(), "index outside universe");
        self.w[v2] += F::from_i64(up.delta) * self.chi_r1[v1];
    }

    /// Processes a whole stream.
    pub fn update_all(&mut self, stream: &[Update]) {
        for &up in stream {
            self.update(up);
        }
    }

    /// Verifier space in words: `w`, `r₁`, and the χ table.
    pub fn space_words(&self) -> usize {
        self.w.len() + 1 + self.chi_r1.len()
    }

    /// Verifies the prover's single message (`2ℓ−1` evaluations of `g` at
    /// `0, …, 2ℓ−2`) and returns the verified `F₂`.
    pub fn verify(&self, proof: &[F]) -> Result<F, Rejection> {
        let expected_len = 2 * self.ell as usize - 1;
        if proof.len() != expected_len {
            return Err(Rejection::WrongMessageLength {
                round: 1,
                expected: expected_len,
                got: proof.len(),
            });
        }
        // g(r₁) must equal Σ_j w[j]² = Σ_j f_a(r₁, j)².
        let check = self.w.iter().map(|&wj| wj * wj).fold(F::ZERO, |a, b| a + b);
        if eval_from_grid_evals(proof, self.r1) != check {
            return Err(Rejection::FinalCheckFailed);
        }
        // F₂ = Σ_{x ∈ [ℓ]} g(x): the first ℓ grid evaluations.
        Ok(proof[..self.ell as usize]
            .iter()
            .copied()
            .fold(F::ZERO, |a, b| a + b))
    }
}

/// Honest one-round prover: materialises the `√u × √u` grid and evaluates
/// `g` at `2ℓ−1` points, `Θ(u^{3/2})` time.
#[derive(Clone, Debug)]
pub struct OneRoundF2Prover<F: PrimeField> {
    ell: u64,
    /// Dense grid in column-major order: `grid[j·ℓ + v₁] = a[v₁][j]`.
    grid: Vec<F>,
}

impl<F: PrimeField> OneRoundF2Prover<F> {
    /// Builds the grid from the materialised frequency vector.
    pub fn new(fv: &FrequencyVector, log_u: u32) -> Self {
        let ell = 1u64 << log_u.div_ceil(2);
        let mut grid = vec![F::ZERO; (ell * ell) as usize];
        for (i, f) in fv.nonzero() {
            let v1 = i % ell;
            let v2 = i / ell;
            grid[(v2 * ell + v1) as usize] = F::from_i64(f);
        }
        OneRoundF2Prover { ell, grid }
    }

    /// The single proof message: `g` evaluated at `0, …, 2ℓ−2`.
    pub fn proof(&self) -> Vec<F> {
        let ell = self.ell as usize;
        let points = 2 * ell - 1;
        let mut out = Vec::with_capacity(points);
        for c in 0..points {
            let chi_c = chi_all::<F>(self.ell, F::from_u64(c as u64));
            let mut g_c = F::ZERO;
            for j in 0..ell {
                let col = &self.grid[j * ell..(j + 1) * ell];
                let mut row = F::ZERO;
                for (v1, &val) in col.iter().enumerate() {
                    if !val.is_zero() {
                        row += val * chi_c[v1];
                    }
                }
                g_c += row * row;
            }
            out.push(g_c);
        }
        out
    }
}

/// Runs the complete honest one-round F₂ protocol.
pub fn run_one_round_f2<F: PrimeField, R: Rng + ?Sized>(
    log_u: u32,
    stream: &[Update],
    rng: &mut R,
) -> Result<VerifiedAggregate<F>, Rejection> {
    run_one_round_f2_with_adversary(log_u, stream, rng, None)
}

/// Message corruption hook for the single proof message.
pub type OneRoundAdversary<'a, F> = &'a mut dyn FnMut(&mut Vec<F>);

/// Like [`run_one_round_f2`] with a message-corruption hook.
pub fn run_one_round_f2_with_adversary<F: PrimeField, R: Rng + ?Sized>(
    log_u: u32,
    stream: &[Update],
    rng: &mut R,
    adversary: Option<OneRoundAdversary<'_, F>>,
) -> Result<VerifiedAggregate<F>, Rejection> {
    let mut verifier = OneRoundF2Verifier::<F>::new(log_u, rng);
    verifier.update_all(stream);

    let u_padded = verifier.ell() * verifier.ell();
    let fv = FrequencyVector::from_stream(u_padded.max(1 << log_u), stream);
    let prover = OneRoundF2Prover::new(&fv, log_u);
    let mut proof = prover.proof();
    if let Some(adv) = adversary {
        adv(&mut proof);
    }

    let report = CostReport {
        rounds: 1,
        p_to_v_words: proof.len(),
        v_to_p_words: 0,
        verifier_space_words: verifier.space_words(),
    };
    let value = verifier.verify(&proof)?;
    Ok(VerifiedAggregate { value, report })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sip_field::Fp61;
    use sip_streaming::workloads;

    #[test]
    fn completeness_even_and_odd_log_u() {
        let mut rng = StdRng::seed_from_u64(1);
        for log_u in [4u32, 5, 8, 9] {
            let stream = workloads::paper_f2(1 << log_u, log_u as u64);
            let fv = FrequencyVector::from_stream(1 << log_u, &stream);
            let got = run_one_round_f2::<Fp61, _>(log_u, &stream, &mut rng).unwrap();
            assert_eq!(
                got.value,
                Fp61::from_u128(fv.self_join_size() as u128),
                "log_u={log_u}"
            );
        }
    }

    #[test]
    fn agrees_with_multiround() {
        let mut rng = StdRng::seed_from_u64(2);
        let stream = workloads::uniform(500, 1 << 8, 30, 3);
        let one = run_one_round_f2::<Fp61, _>(8, &stream, &mut rng).unwrap();
        let multi = crate::sumcheck::f2::run_f2::<Fp61, _>(8, &stream, &mut rng).unwrap();
        assert_eq!(one.value, multi.value);
    }

    #[test]
    fn costs_are_sqrt_u() {
        let mut rng = StdRng::seed_from_u64(3);
        let log_u = 10; // ℓ = 32
        let stream = workloads::uniform(100, 1 << log_u, 5, 4);
        let got = run_one_round_f2::<Fp61, _>(log_u, &stream, &mut rng).unwrap();
        assert_eq!(got.report.rounds, 1);
        assert_eq!(got.report.p_to_v_words, 2 * 32 - 1);
        assert_eq!(got.report.v_to_p_words, 0);
        assert_eq!(got.report.verifier_space_words, 32 + 1 + 32);
    }

    #[test]
    fn tampered_proof_rejected() {
        let mut rng = StdRng::seed_from_u64(4);
        let stream = workloads::uniform(200, 1 << 8, 10, 5);
        for slot in [0usize, 7, 30] {
            let mut adv = |proof: &mut Vec<Fp61>| {
                proof[slot] += Fp61::ONE;
            };
            let res =
                run_one_round_f2_with_adversary::<Fp61, _>(8, &stream, &mut rng, Some(&mut adv));
            assert!(res.is_err(), "slot={slot}");
        }
    }

    #[test]
    fn truncated_proof_rejected() {
        let mut rng = StdRng::seed_from_u64(5);
        let stream = workloads::uniform(50, 1 << 6, 5, 6);
        let mut adv = |proof: &mut Vec<Fp61>| {
            proof.pop();
        };
        let res = run_one_round_f2_with_adversary::<Fp61, _>(6, &stream, &mut rng, Some(&mut adv));
        assert!(matches!(res, Err(Rejection::WrongMessageLength { .. })));
    }

    #[test]
    fn wrong_data_rejected() {
        // Honest proof over modified data fails the g(r₁) check.
        let mut rng = StdRng::seed_from_u64(6);
        let log_u = 8;
        let stream = workloads::paper_f2(1 << log_u, 7);
        let mut verifier = OneRoundF2Verifier::<Fp61>::new(log_u, &mut rng);
        verifier.update_all(&stream);
        let mut wrong = stream.clone();
        wrong[3].delta ^= 1;
        let ell = verifier.ell();
        let fv = FrequencyVector::from_stream(ell * ell, &wrong);
        let prover = OneRoundF2Prover::new(&fv, log_u);
        assert!(matches!(
            verifier.verify(&prover.proof()),
            Err(Rejection::FinalCheckFailed)
        ));
    }
}

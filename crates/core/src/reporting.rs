//! The reporting queries of Section 4.2 (and the k-largest query of
//! Section 6.1), reduced to SUB-VECTOR.
//!
//! * RANGE QUERY — the sub-vector itself (each stream element interpreted
//!   as `δ = 1`);
//! * INDEX — `q_L = q_R = q`;
//! * DICTIONARY — values are stored incremented by one so that `0` decodes
//!   to "not found";
//! * PREDECESSOR / SUCCESSOR — the prover claims the neighbour `q′`, and the
//!   verifier checks the claimed *gap* is genuinely empty by querying the
//!   sub-vector between `q′` and `q` (`k ≤ 1`, so `O(log u)` words);
//! * K-LARGEST — the prover claims the location `j` of the `k`-th largest
//!   key; the verified sub-vector `[j, u−1]` must contain exactly `k`
//!   present keys, the smallest of them at `j`.
//!
//! Every verifier-side decision works only on *verified* sub-vector output:
//! a prover lying about a claim either contradicts the verified entries
//! (caught structurally) or must lie inside the sub-vector protocol itself
//! (caught by the root check, w.h.p.).

use rand::Rng;
use sip_field::PrimeField;
use sip_streaming::{FrequencyVector, Update};

use crate::channel::CostReport;
use crate::error::Rejection;
use crate::subvector::{run_subvector, run_subvector_with_adversary, SubVectorAnswer, Verified};

/// A verified scalar query outcome.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VerifiedValue<T> {
    /// The verified answer.
    pub value: T,
    /// Cost accounting.
    pub report: CostReport,
}

/// RANGE QUERY: all elements of the stream within `[q_l, q_r]`, verified.
///
/// Identical to [`run_subvector`]; re-exported under the query's name for
/// discoverability.
pub fn run_range_query<F: PrimeField, R: Rng + ?Sized>(
    log_u: u32,
    stream: &[Update],
    q_l: u64,
    q_r: u64,
    rng: &mut R,
) -> Result<Verified<F>, Rejection> {
    run_subvector(log_u, stream, q_l, q_r, rng)
}

/// INDEX: the value `a_q`, verified. A special case of RANGE QUERY with
/// `q_L = q_R = q`.
pub fn run_index<F: PrimeField, R: Rng + ?Sized>(
    log_u: u32,
    stream: &[Update],
    q: u64,
    rng: &mut R,
) -> Result<VerifiedValue<F>, Rejection> {
    let got = run_subvector::<F, R>(log_u, stream, q, q, rng)?;
    let value = got.entries.first().map(|&(_, v)| v).unwrap_or(F::ZERO);
    Ok(VerifiedValue {
        value,
        report: got.report,
    })
}

/// Encodes DICTIONARY key–value pairs as stream updates: each value is
/// stored incremented by one so a retrieved `0` means "not found".
pub fn dictionary_stream(pairs: &[(u64, u64)]) -> Vec<Update> {
    pairs
        .iter()
        .map(|&(k, v)| Update::new(k, v as i64 + 1))
        .collect()
}

/// DICTIONARY: the value associated with `key`, or `None` for "not found",
/// verified. The stream must be built by [`dictionary_stream`] (distinct
/// keys, `+1` encoding).
pub fn run_dictionary<F: PrimeField, R: Rng + ?Sized>(
    log_u: u32,
    stream: &[Update],
    key: u64,
    rng: &mut R,
) -> Result<VerifiedValue<Option<u64>>, Rejection> {
    let got = run_index::<F, R>(log_u, stream, key, rng)?;
    let raw = got.value.to_u128();
    let value = if raw == 0 {
        None
    } else {
        Some((raw - 1) as u64)
    };
    Ok(VerifiedValue {
        value,
        report: got.report,
    })
}

/// Checks a PREDECESSOR claim against verified sub-vector entries.
///
/// For claim `Some(p)`: the verified entries of `[p, q]` must be exactly
/// one entry located at `p`. For claim `None`: `[0, q]` must be empty.
fn check_predecessor_claim<F: PrimeField>(
    claim: Option<u64>,
    q: u64,
    verified: &[(u64, F)],
) -> Result<(), Rejection> {
    match claim {
        Some(p) => {
            if p > q {
                return Err(Rejection::StructuralCheckFailed {
                    detail: format!("claimed predecessor {p} exceeds query {q}"),
                });
            }
            if verified.len() != 1 || verified[0].0 != p {
                return Err(Rejection::StructuralCheckFailed {
                    detail: format!(
                        "sub-vector [{p}, {q}] should contain exactly the predecessor; \
                         got {} entries",
                        verified.len()
                    ),
                });
            }
            Ok(())
        }
        None => {
            if verified.is_empty() {
                Ok(())
            } else {
                Err(Rejection::StructuralCheckFailed {
                    detail: format!(
                        "claimed no predecessor but [0, {q}] contains {} entries",
                        verified.len()
                    ),
                })
            }
        }
    }
}

/// PREDECESSOR: the largest present key `p ≤ q`, verified. Communication
/// `O(log u)` — the verified gap contains no entries.
pub fn run_predecessor<F: PrimeField, R: Rng + ?Sized>(
    log_u: u32,
    stream: &[Update],
    q: u64,
    rng: &mut R,
) -> Result<VerifiedValue<Option<u64>>, Rejection> {
    let fv = FrequencyVector::from_stream(1 << log_u, stream);
    let claim = fv.predecessor(q);
    run_predecessor_with_claim::<F, R>(log_u, stream, q, claim, rng)
}

/// PREDECESSOR with an explicit (possibly dishonest) prover claim — the
/// entry point for the failure-injection suite.
pub fn run_predecessor_with_claim<F: PrimeField, R: Rng + ?Sized>(
    log_u: u32,
    stream: &[Update],
    q: u64,
    claim: Option<u64>,
    rng: &mut R,
) -> Result<VerifiedValue<Option<u64>>, Rejection> {
    let (lo, hi) = match claim {
        Some(p) if p <= q => (p, q),
        Some(p) => {
            return Err(Rejection::StructuralCheckFailed {
                detail: format!("claimed predecessor {p} exceeds query {q}"),
            })
        }
        None => (0, q),
    };
    let got = run_subvector::<F, R>(log_u, stream, lo, hi, rng)?;
    check_predecessor_claim(claim, q, &got.entries)?;
    Ok(VerifiedValue {
        value: claim,
        report: got.report,
    })
}

/// SUCCESSOR: the smallest present key `s ≥ q`, verified (symmetric to
/// PREDECESSOR).
pub fn run_successor<F: PrimeField, R: Rng + ?Sized>(
    log_u: u32,
    stream: &[Update],
    q: u64,
    rng: &mut R,
) -> Result<VerifiedValue<Option<u64>>, Rejection> {
    let u = 1u64 << log_u;
    let fv = FrequencyVector::from_stream(u, stream);
    let claim = fv.successor(q);
    let (lo, hi) = match claim {
        Some(s) if s >= q && s < u => (q, s),
        Some(s) => {
            return Err(Rejection::StructuralCheckFailed {
                detail: format!("claimed successor {s} outside [{q}, {u})"),
            })
        }
        None => (q, u - 1),
    };
    let got = run_subvector::<F, R>(log_u, stream, lo, hi, rng)?;
    match claim {
        Some(s) => {
            if got.entries.len() != 1 || got.entries[0].0 != s {
                return Err(Rejection::StructuralCheckFailed {
                    detail: "successor gap not empty".to_string(),
                });
            }
        }
        None => {
            if !got.entries.is_empty() {
                return Err(Rejection::StructuralCheckFailed {
                    detail: "claimed no successor but gap holds entries".to_string(),
                });
            }
        }
    }
    Ok(VerifiedValue {
        value: claim,
        report: got.report,
    })
}

/// K-LARGEST (Section 6.1): the `k`-th largest present key, verified by a
/// range query on `[j, u−1]` containing exactly `k` present keys.
pub fn run_kth_largest<F: PrimeField, R: Rng + ?Sized>(
    log_u: u32,
    stream: &[Update],
    k: u64,
    rng: &mut R,
) -> Result<VerifiedValue<Option<u64>>, Rejection> {
    assert!(k >= 1, "k is 1-indexed");
    let u = 1u64 << log_u;
    let fv = FrequencyVector::from_stream(u, stream);
    let claim = fv.kth_largest(k);
    let (lo, hi) = match claim {
        Some(j) => (j, u - 1),
        // Claiming fewer than k keys exist: the whole key space must hold
        // fewer than k entries.
        None => (0, u - 1),
    };
    let got = run_subvector::<F, R>(log_u, stream, lo, hi, rng)?;
    match claim {
        Some(j) => {
            if got.entries.len() != k as usize || got.entries.first().map(|e| e.0) != Some(j) {
                return Err(Rejection::StructuralCheckFailed {
                    detail: format!(
                        "range [{j}, {}] should contain exactly {k} keys, the smallest at {j}; \
                         got {}",
                        u - 1,
                        got.entries.len()
                    ),
                });
            }
        }
        None => {
            if got.entries.len() >= k as usize {
                return Err(Rejection::StructuralCheckFailed {
                    detail: "claimed fewer than k keys, but k or more verified".to_string(),
                });
            }
        }
    }
    Ok(VerifiedValue {
        value: claim,
        report: got.report,
    })
}

/// Corruption hook re-exported so callers can tamper RANGE QUERY answers.
pub type AnswerTamper<'a, F> = &'a mut dyn FnMut(&mut SubVectorAnswer<F>);

/// RANGE QUERY with an answer-corruption hook.
pub fn run_range_query_with_adversary<F: PrimeField, R: Rng + ?Sized>(
    log_u: u32,
    stream: &[Update],
    q_l: u64,
    q_r: u64,
    rng: &mut R,
    tamper: AnswerTamper<'_, F>,
) -> Result<Verified<F>, Rejection> {
    run_subvector_with_adversary(log_u, stream, q_l, q_r, rng, Some(tamper), None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};
    use sip_field::Fp61;
    use sip_streaming::workloads;

    #[test]
    fn index_present_and_absent() {
        let mut rng = StdRng::seed_from_u64(1);
        let stream = [Update::new(5, 42), Update::new(9, 7)];
        let got = run_index::<Fp61, _>(6, &stream, 5, &mut rng).unwrap();
        assert_eq!(got.value, Fp61::from_u64(42));
        let got = run_index::<Fp61, _>(6, &stream, 6, &mut rng).unwrap();
        assert_eq!(got.value, Fp61::ZERO);
    }

    #[test]
    fn dictionary_distinguishes_zero_from_missing() {
        let mut rng = StdRng::seed_from_u64(2);
        let pairs = [(3u64, 0u64), (8, 100), (12, 5)];
        let stream = dictionary_stream(&pairs);
        let got = run_dictionary::<Fp61, _>(5, &stream, 3, &mut rng).unwrap();
        assert_eq!(got.value, Some(0), "value 0 must be retrievable");
        let got = run_dictionary::<Fp61, _>(5, &stream, 8, &mut rng).unwrap();
        assert_eq!(got.value, Some(100));
        let got = run_dictionary::<Fp61, _>(5, &stream, 4, &mut rng).unwrap();
        assert_eq!(got.value, None, "absent key must read as not-found");
    }

    #[test]
    fn predecessor_random_streams() {
        let mut rng = StdRng::seed_from_u64(3);
        let log_u = 9;
        let u = 1u64 << log_u;
        let stream = workloads::distinct_keys(60, u, 4);
        let fv = FrequencyVector::from_stream(u, &stream);
        for _ in 0..20 {
            let q = rng.random_range(0..u);
            let got = run_predecessor::<Fp61, _>(log_u, &stream, q, &mut rng).unwrap();
            assert_eq!(got.value, fv.predecessor(q), "q={q}");
            // PREDECESSOR is (log u, log u): no bulk entries cross the wire.
            assert!(got.report.total_words() <= 4 * log_u as usize + 8);
        }
    }

    #[test]
    fn successor_random_streams() {
        let mut rng = StdRng::seed_from_u64(4);
        let log_u = 9;
        let u = 1u64 << log_u;
        let stream = workloads::distinct_keys(60, u, 5);
        let fv = FrequencyVector::from_stream(u, &stream);
        for _ in 0..20 {
            let q = rng.random_range(0..u);
            let got = run_successor::<Fp61, _>(log_u, &stream, q, &mut rng).unwrap();
            assert_eq!(got.value, fv.successor(q), "q={q}");
        }
    }

    #[test]
    fn predecessor_on_empty_prefix() {
        let mut rng = StdRng::seed_from_u64(5);
        let stream = [Update::insert(30)];
        let got = run_predecessor::<Fp61, _>(6, &stream, 20, &mut rng).unwrap();
        assert_eq!(got.value, None);
    }

    #[test]
    fn lying_predecessor_claims_are_rejected() {
        let mut rng = StdRng::seed_from_u64(6);
        let stream = [Update::insert(0), Update::insert(10), Update::insert(20)];
        // True predecessor of 15 is 10.
        // Lie 1: claim 0 (skipping 10) — the gap [0, 15] contains 10.
        let res = run_predecessor_with_claim::<Fp61, _>(6, &stream, 15, Some(0), &mut rng);
        assert!(matches!(res, Err(Rejection::StructuralCheckFailed { .. })));
        // Lie 2: claim 12 (absent key) — [12, 15] contains nothing at 12.
        let res = run_predecessor_with_claim::<Fp61, _>(6, &stream, 15, Some(12), &mut rng);
        assert!(matches!(res, Err(Rejection::StructuralCheckFailed { .. })));
        // Lie 3: claim none — [0, 15] is not empty.
        let res = run_predecessor_with_claim::<Fp61, _>(6, &stream, 15, None, &mut rng);
        assert!(matches!(res, Err(Rejection::StructuralCheckFailed { .. })));
        // Lie 4: claim beyond the query.
        let res = run_predecessor_with_claim::<Fp61, _>(6, &stream, 15, Some(20), &mut rng);
        assert!(matches!(res, Err(Rejection::StructuralCheckFailed { .. })));
    }

    #[test]
    fn kth_largest_matches_ground_truth() {
        let mut rng = StdRng::seed_from_u64(7);
        let log_u = 8;
        let u = 1u64 << log_u;
        let stream = workloads::distinct_keys(30, u, 8);
        let fv = FrequencyVector::from_stream(u, &stream);
        for k in 1..=32u64 {
            let got = run_kth_largest::<Fp61, _>(log_u, &stream, k, &mut rng).unwrap();
            assert_eq!(got.value, fv.kth_largest(k), "k={k}");
        }
    }

    #[test]
    fn range_query_equals_subvector() {
        let mut rng = StdRng::seed_from_u64(8);
        let stream = workloads::distinct_keys(40, 1 << 8, 9);
        let a = run_range_query::<Fp61, _>(8, &stream, 10, 200, &mut rng).unwrap();
        let fv = FrequencyVector::from_stream(1 << 8, &stream);
        assert_eq!(
            a.entries.iter().map(|&(i, _)| i).collect::<Vec<_>>(),
            fv.range_report(10, 200)
                .iter()
                .map(|&(i, _)| i)
                .collect::<Vec<_>>()
        );
    }
}

//! Frequency-based functions `F(a) = Σ_{i∈[u]} h(a_i)` (Section 6.2,
//! Theorem 6): `F₀`, `F_max`, and inverse-distribution queries.
//!
//! The naive extension of the Section 3 protocol to an arbitrary
//! `h : N → N` costs `deg(h)·log u` communication, which is useless when
//! `h` must distinguish all frequencies up to `n`. The paper's fix:
//!
//! 1. Run the HEAVY HITTERS protocol with threshold `T` to learn — and
//!    verify — every item with frequency `≥ T`. Their contribution
//!    `F′ = Σ_{i∈H} h(a_i)` is computed exactly.
//! 2. "Remove" the heavy items from the LDE: the verifier subtracts
//!    `a_i·χ_i(r)` from its streamed `f_a(r)` per reported item, yielding
//!    `f̃_a(r)` — the LDE of the *residual* vector whose entries all lie in
//!    `[0, T−1]`.
//! 3. Run the sum-check against `h̃ ∘ f̃_a`, where `h̃` is the unique
//!    polynomial of degree `≤ D = T−1` agreeing with `h` on `{0, …, D}`.
//!    Round polynomials have degree `D`, so communication is
//!    `O(D·log u)` — `O(√u·log u)` at the paper's `T = φ·n ≈ √u`.
//! 4. `F(a) = (sum-check total) + F′ − |H|·h(0)`.
//!
//! Costs (Theorem 6): `log u` rounds, `(log u + 1/φ, √u·log u)` words.
//! Note on prover time: the paper states `O(u^{3/2})`; evaluating `h̃` at a
//! general field point costs `O(D)`, making this implementation's honest
//! prover `O(D²·u)` — the protocol's *verifier-side* costs, which are what
//! Theorem 6 claims and what our benches measure, are unaffected. See
//! `DESIGN.md` § "Substitutions".

use rand::Rng;
use sip_field::lagrange::eval_from_grid_evals;
use sip_field::PrimeField;
use sip_lde::{LdeParams, StreamingLdeEvaluator};
use sip_streaming::{FrequencyVector, Update};

use crate::channel::CostReport;
use crate::error::Rejection;
use crate::fold::FoldVector;
use crate::heavy_hitters::{run_heavy_hitters_with_adversary, HhAdversary, VerifiedHeavyHitters};
use crate::sumcheck::{drive_sumcheck, Adversary, RoundProver, SumCheckVerifierCore};

/// Honest prover for the residual sum-check: folds the heavy-removed vector
/// and evaluates `h̃` along each pair's arithmetic progression.
#[derive(Clone, Debug)]
pub struct FrequencyFnProver<F: PrimeField> {
    fold: FoldVector<F>,
    /// `h(0), …, h(D)` as field elements: the evaluation table of `h̃`.
    h_evals: Vec<F>,
}

impl<F: PrimeField> FrequencyFnProver<F> {
    /// Builds the prover from the residual frequency vector (heavy items
    /// already removed) and the `h` table on `{0, …, D}`.
    ///
    /// # Panics
    /// Panics if a residual frequency falls outside `[0, D]`.
    pub fn new(residual: &FrequencyVector, log_u: u32, h_evals: Vec<F>) -> Self {
        assert!(h_evals.len() >= 2, "h̃ needs degree at least 1");
        let d = h_evals.len() as i64 - 1;
        for (_, f) in residual.nonzero() {
            assert!(
                (0..=d).contains(&f),
                "residual frequency {f} outside [0, {d}]"
            );
        }
        FrequencyFnProver {
            fold: FoldVector::from_frequency(residual, log_u),
            h_evals,
        }
    }

    /// Evaluates `h̃` at an arbitrary field point (`O(D)`; table lookup on
    /// the grid).
    fn h_tilde(&self, x: F) -> F {
        eval_from_grid_evals(&self.h_evals, x)
    }
}

impl<F: PrimeField> RoundProver<F> for FrequencyFnProver<F> {
    fn degree(&self) -> usize {
        self.h_evals.len() - 1
    }

    fn rounds(&self) -> usize {
        self.fold.bits() as usize
    }

    fn message(&mut self) -> Vec<F> {
        let deg = self.degree();
        let mut out = vec![F::ZERO; deg + 1];
        self.fold.for_each_pair(|_, lo, hi| {
            let diff = hi - lo;
            let mut val = lo;
            out[0] += self.h_tilde(val);
            for slot in out.iter_mut().skip(1) {
                val += diff;
                *slot += self.h_tilde(val);
            }
        });
        // Account for the pairs with both children zero, which
        // for_each_pair skips: they contribute h̃(0) = h(0) at every
        // evaluation point.
        let half = 1u64 << (self.fold.bits() - 1);
        let mut nonzero_pairs = 0u64;
        self.fold.for_each_pair(|_, _, _| nonzero_pairs += 1);
        let zero_pairs = F::from_u64(half - nonzero_pairs);
        let h0 = self.h_evals[0];
        if !h0.is_zero() {
            for slot in out.iter_mut() {
                *slot += zero_pairs * h0;
            }
        }
        out
    }

    fn bind(&mut self, r: F) {
        self.fold.bind(r);
    }
}

/// Result of a verified frequency-based function evaluation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VerifiedFrequencyFn<F: PrimeField> {
    /// The verified `F(a) = Σ_i h(a_i)` as a field element.
    pub value: F,
    /// The verified heavy hitters discovered along the way.
    pub heavy: Vec<(u64, u64)>,
    /// Combined cost of the heavy-hitters sub-protocol and the sum-check.
    pub report: CostReport,
}

/// Runs the complete §6.2 protocol for `F(a) = Σ_i h(a_i)`.
///
/// `threshold` is the heavy cutoff `T ≥ 2` (the paper's `φ·n ≈ √u`); `h`
/// must be defined for all frequencies that occur. The stream must be
/// strict-turnstile (non-negative frequencies).
pub fn run_frequency_fn<F: PrimeField, R: Rng + ?Sized>(
    log_u: u32,
    stream: &[Update],
    h: &dyn Fn(u64) -> u64,
    threshold: u64,
    rng: &mut R,
) -> Result<VerifiedFrequencyFn<F>, Rejection> {
    run_frequency_fn_with_adversary(log_u, stream, h, threshold, rng, None, None)
}

/// Like [`run_frequency_fn`] with corruption hooks for both sub-protocols.
pub fn run_frequency_fn_with_adversary<F: PrimeField, R: Rng + ?Sized>(
    log_u: u32,
    stream: &[Update],
    h: &dyn Fn(u64) -> u64,
    threshold: u64,
    rng: &mut R,
    hh_adversary: Option<HhAdversary<'_, F>>,
    sc_adversary: Option<Adversary<'_, F>>,
) -> Result<VerifiedFrequencyFn<F>, Rejection> {
    assert!(threshold >= 2, "threshold must be at least 2 (D = T−1 ≥ 1)");
    let u = 1u64 << log_u;

    // --- Streaming phase: LDE at a pre-drawn secret point. -------------
    let mut lde = StreamingLdeEvaluator::<F>::random(LdeParams::binary(log_u), rng);
    lde.update_all(stream);
    let streaming_space = lde.space_words();

    // --- Step 1: verified heavy hitters. -------------------------------
    let VerifiedHeavyHitters {
        items: heavy,
        report: hh_report,
    } = run_heavy_hitters_with_adversary::<F, R>(log_u, stream, threshold, rng, hh_adversary)
        .map_err(|e| Rejection::in_subprotocol("heavy-hitters", e))?;

    // --- Steps 2: remove the heavy items from the LDE; tally F'. -------
    let mut f_prime = F::ZERO;
    for &(i, c) in &heavy {
        lde.remove(i, F::from_u64(c));
        f_prime += F::from_u64(h(c));
    }
    let f_tilde_r = lde.value();

    // --- Step 3: sum-check against h̃ ∘ f̃_a. ---------------------------
    let cap = threshold - 1;
    let h_evals: Vec<F> = (0..=cap).map(|x| F::from_u64(h(x))).collect();
    let expected_final = eval_from_grid_evals(&h_evals, f_tilde_r);

    let mut residual = FrequencyVector::from_stream(u, stream);
    for &(i, c) in &heavy {
        residual.apply(Update::new(i, -(c as i64)));
    }
    let mut prover = FrequencyFnProver::new(&residual, log_u, h_evals);
    let mut core = SumCheckVerifierCore::new(lde.point().to_vec(), cap as usize);
    let mut report = CostReport {
        verifier_space_words: streaming_space + cap as usize + 3,
        ..CostReport::default()
    };
    let sum = drive_sumcheck(
        &mut prover,
        &mut core,
        expected_final,
        &mut report,
        sc_adversary,
    )
    .map_err(|e| Rejection::in_subprotocol("residual-sum-check", e))?;

    // --- Step 4: combine. ----------------------------------------------
    let h0 = F::from_u64(h(0));
    let value = sum + f_prime - F::from_u64(heavy.len() as u64) * h0;
    report.absorb(&hh_report);
    Ok(VerifiedFrequencyFn {
        value,
        heavy,
        report,
    })
}

/// `F₀` — the number of distinct items (Corollary 2): `h(0) = 0`,
/// `h(x) = 1` otherwise.
pub fn run_f0<F: PrimeField, R: Rng + ?Sized>(
    log_u: u32,
    stream: &[Update],
    threshold: u64,
    rng: &mut R,
) -> Result<VerifiedFrequencyFn<F>, Rejection> {
    run_frequency_fn(log_u, stream, &|x| u64::from(x > 0), threshold, rng)
}

/// Inverse-distribution point query (Corollary 2): the number of items
/// occurring exactly `k` times (`k ≥ 1`).
pub fn run_inverse_distribution<F: PrimeField, R: Rng + ?Sized>(
    log_u: u32,
    stream: &[Update],
    k: u64,
    threshold: u64,
    rng: &mut R,
) -> Result<VerifiedFrequencyFn<F>, Rejection> {
    assert!(k >= 1);
    run_frequency_fn(log_u, stream, &|x| u64::from(x == k), threshold, rng)
}

/// `F_max` — the largest frequency (Corollary 2).
///
/// The prover claims a lower bound `lb` by exhibiting an item of that
/// frequency, verified with the INDEX protocol; the frequency-based
/// protocol with `h(x) = [x > lb]` then certifies that *no* item exceeds
/// it.
pub fn run_fmax<F: PrimeField, R: Rng + ?Sized>(
    log_u: u32,
    stream: &[Update],
    threshold: u64,
    rng: &mut R,
) -> Result<VerifiedFrequencyFn<F>, Rejection> {
    let u = 1u64 << log_u;
    let fv = FrequencyVector::from_stream(u, stream);
    // Honest prover's claim: the argmax and its frequency.
    let (witness, lb) = fv
        .nonzero()
        .max_by_key(|&(_, f)| f)
        .map(|(i, f)| (i, f as u64))
        .unwrap_or((0, 0));
    // Verify the lower bound via INDEX.
    let index = crate::reporting::run_index::<F, R>(log_u, stream, witness, rng)
        .map_err(|e| Rejection::in_subprotocol("fmax-index", e))?;
    if index.value != F::from_u64(lb) {
        return Err(Rejection::StructuralCheckFailed {
            detail: "claimed F_max witness has a different frequency".to_string(),
        });
    }
    // Verify the upper bound: Σ [a_i > lb] must be zero.
    let mut got = run_frequency_fn::<F, R>(log_u, stream, &|x| u64::from(x > lb), threshold, rng)?;
    if got.value != F::ZERO {
        return Err(Rejection::StructuralCheckFailed {
            detail: "some item exceeds the claimed F_max".to_string(),
        });
    }
    got.value = F::from_u64(lb);
    got.report.absorb(&index.report);
    Ok(got)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sip_field::Fp61;
    use sip_streaming::workloads;

    #[test]
    fn f0_matches_ground_truth() {
        let mut rng = StdRng::seed_from_u64(1);
        let log_u = 8;
        let stream = workloads::zipf(3_000, 1 << log_u, 1.2, 2);
        let fv = FrequencyVector::from_stream(1 << log_u, &stream);
        for threshold in [4u64, 16, 64] {
            let got = run_f0::<Fp61, _>(log_u, &stream, threshold, &mut rng).unwrap();
            assert_eq!(got.value, Fp61::from_u64(fv.f0()), "T={threshold}");
        }
    }

    #[test]
    fn f0_on_sparse_distinct_stream() {
        let mut rng = StdRng::seed_from_u64(2);
        let stream = workloads::distinct_keys(37, 1 << 9, 3);
        let got = run_f0::<Fp61, _>(9, &stream, 8, &mut rng).unwrap();
        assert_eq!(got.value, Fp61::from_u64(37));
    }

    #[test]
    fn inverse_distribution_point_queries() {
        let mut rng = StdRng::seed_from_u64(3);
        let log_u = 8;
        let stream = workloads::zipf(2_000, 1 << log_u, 1.1, 4);
        let fv = FrequencyVector::from_stream(1 << log_u, &stream);
        for k in [1u64, 2, 3, 7] {
            let got = run_inverse_distribution::<Fp61, _>(log_u, &stream, k, 16, &mut rng).unwrap();
            assert_eq!(
                got.value,
                Fp61::from_u64(fv.inverse_distribution(k as i64)),
                "k={k}"
            );
        }
    }

    #[test]
    fn fmax_matches_ground_truth() {
        let mut rng = StdRng::seed_from_u64(4);
        let log_u = 8;
        let stream = workloads::zipf(2_000, 1 << log_u, 1.3, 5);
        let fv = FrequencyVector::from_stream(1 << log_u, &stream);
        let got = run_fmax::<Fp61, _>(log_u, &stream, 32, &mut rng).unwrap();
        assert_eq!(got.value, Fp61::from_u64(fv.fmax() as u64));
    }

    #[test]
    fn general_h_sum_of_cubes_capped() {
        // h(x) = x³ for x < T: compare against direct computation. Use a
        // stream whose frequencies all stay below T so h̃ is exact.
        let mut rng = StdRng::seed_from_u64(5);
        let log_u = 7;
        let stream = workloads::uniform(300, 1 << log_u, 1, 6);
        let fv = FrequencyVector::from_stream(1 << log_u, &stream);
        let t = 64u64;
        assert!(fv.fmax() < t as i64);
        let got = run_frequency_fn::<Fp61, _>(log_u, &stream, &|x| x * x * x, t, &mut rng).unwrap();
        assert_eq!(got.value, Fp61::from_u128(fv.frequency_moment(3) as u128));
    }

    #[test]
    fn nonzero_h0_counts_empty_slots() {
        // h(x) = 1 for all x: F(a) = u exactly (every slot contributes).
        let mut rng = StdRng::seed_from_u64(6);
        let log_u = 6;
        let stream = workloads::uniform(50, 1 << log_u, 3, 7);
        let got = run_frequency_fn::<Fp61, _>(log_u, &stream, &|_| 1, 8, &mut rng).unwrap();
        assert_eq!(got.value, Fp61::from_u64(1 << log_u));
    }

    #[test]
    fn heavy_items_reported_and_used() {
        let mut rng = StdRng::seed_from_u64(7);
        let log_u = 7;
        let mut stream = vec![Update::new(5, 500), Update::new(90, 300)];
        stream.extend(workloads::distinct_keys(40, 1 << log_u, 8));
        let got = run_f0::<Fp61, _>(log_u, &stream, 100, &mut rng).unwrap();
        let heavy_items: Vec<u64> = got.heavy.iter().map(|&(i, _)| i).collect();
        assert!(heavy_items.contains(&5) && heavy_items.contains(&90));
        let fv = FrequencyVector::from_stream(1 << log_u, &stream);
        assert_eq!(got.value, Fp61::from_u64(fv.f0()));
    }

    #[test]
    fn tampered_sumcheck_rejected() {
        let mut rng = StdRng::seed_from_u64(8);
        let stream = workloads::zipf(1_000, 1 << 7, 1.2, 9);
        let mut adv = |round: usize, msg: &mut Vec<Fp61>| {
            if round == 2 {
                msg[0] += Fp61::ONE;
            }
        };
        let res = run_frequency_fn_with_adversary::<Fp61, _>(
            7,
            &stream,
            &|x| u64::from(x > 0),
            16,
            &mut rng,
            None,
            Some(&mut adv),
        );
        assert!(matches!(
            res,
            Err(Rejection::SubProtocol {
                name: "residual-sum-check",
                ..
            })
        ));
    }

    #[test]
    fn tampered_heavy_hitters_rejected() {
        let mut rng = StdRng::seed_from_u64(9);
        let stream = workloads::zipf(5_000, 1 << 7, 1.4, 10);
        let mut adv = |level: u32, disc: &mut crate::heavy_hitters::LevelDisclosure<Fp61>| {
            if level == 0 {
                if let Some(n) = disc.nodes.first_mut() {
                    n.count += 1;
                }
            }
        };
        let res = run_frequency_fn_with_adversary::<Fp61, _>(
            7,
            &stream,
            &|x| u64::from(x > 0),
            32,
            &mut rng,
            Some(&mut adv),
            None,
        );
        assert!(matches!(
            res,
            Err(Rejection::SubProtocol {
                name: "heavy-hitters",
                ..
            })
        ));
    }

    #[test]
    fn communication_scales_with_threshold() {
        // Theorem 6: the sum-check part costs exactly T·log u words
        // (T evaluations per round over log u rounds). Isolate it from the
        // heavy-hitters part by running that sub-protocol standalone.
        let mut rng = StdRng::seed_from_u64(10);
        let log_u = 8;
        let stream = workloads::zipf(2_000, 1 << log_u, 1.2, 11);
        for threshold in [4u64, 64] {
            let whole = run_f0::<Fp61, _>(log_u, &stream, threshold, &mut rng).unwrap();
            let hh_only = crate::heavy_hitters::run_heavy_hitters::<Fp61, _>(
                log_u, &stream, threshold, &mut rng,
            )
            .unwrap();
            let sumcheck_words = whole.report.p_to_v_words - hh_only.report.p_to_v_words;
            assert_eq!(
                sumcheck_words,
                threshold as usize * log_u as usize,
                "T={threshold}"
            );
        }
    }
}

//! The prover engine: one generic fold/combine kernel behind every
//! multi-round prover, with an opt-in data-parallel scheduler.
//!
//! CMT's follow-up ("Practical Verified Computation with Streaming
//! Interactive Proofs") observes that the honest prover's entire cost of
//! practicality is the per-round pass over the fold table — the same
//! `Σ_m combine(A[2m], A[2m+1])` loop, repeated with a different per-pair
//! rule by every protocol. This module extracts that loop once:
//!
//! * [`Combine`] is the per-pair (or per-block) rule — squared interpolant
//!   for F₂, `k`-th powers for moments, lockstep products for INNER
//!   PRODUCT, lazy-indicator products for RANGE-SUM, χ-weighted blocks for
//!   general `ℓ`;
//! * [`FoldSource`] names what is walked — one fold table's pairs, the
//!   union walk of two lockstep tables, or fixed-width dense blocks;
//! * [`ProverPool::fold_message`] runs the walk, either serially
//!   (`threads = 1`, the default — byte-identical to the historical
//!   per-protocol loops) or split into contiguous chunks executed under
//!   [`std::thread::scope`].
//!
//! ## Why scheduling cannot change a transcript
//!
//! Accumulation is exact field arithmetic — associative and commutative
//! with no rounding — and chunk boundaries ([`chunk_range`]) are
//! deterministic, so the chunk partial sums recombine to exactly the serial
//! total at **any** thread count. Parallelism changes wall-clock, never a
//! round polynomial: soundness and cost accounting are untouched by
//! construction, and `tests/engine_equivalence.rs` checks the transcripts
//! pairwise anyway.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

use sip_field::PrimeField;
use sip_lde::MultiLdeEvaluator;
use sip_streaming::Update;

use crate::fold::{chunk_range, FoldVector};

/// Pre-resolved metric handles for the engine hot paths. Resolution walks a
/// map under a mutex, so it happens once per process; afterwards every
/// counted call is a handful of relaxed atomic adds. Timers are sampled
/// 1-in-[`sip_obs::timer_sample`] calls (default 16, configurable via
/// `ServerConfig::obs_sample`, `0` = off) — `Instant::now` is the only
/// non-trivial cost here and a fold/batch call already amortises it over
/// thousands of blocks.
struct EngineMetrics {
    fold_messages: sip_obs::Counter,
    fold_blocks: sip_obs::Counter,
    fold_message_us: sip_obs::Histogram,
    ingest_updates: sip_obs::Counter,
    ingest_batch_us: sip_obs::Histogram,
    sample: AtomicU64,
}

fn engine_metrics() -> &'static EngineMetrics {
    static METRICS: OnceLock<EngineMetrics> = OnceLock::new();
    METRICS.get_or_init(|| EngineMetrics {
        fold_messages: sip_obs::counter("sip_fold_messages_total"),
        fold_blocks: sip_obs::counter("sip_fold_blocks_total"),
        fold_message_us: sip_obs::histogram("sip_fold_message_us"),
        ingest_updates: sip_obs::counter("sip_ingest_updates_total"),
        ingest_batch_us: sip_obs::histogram("sip_ingest_batch_us"),
        sample: AtomicU64::new(0),
    })
}

impl EngineMetrics {
    fn sampled(&self) -> bool {
        let rate = sip_obs::timer_sample();
        rate != 0
            && self
                .sample
                .fetch_add(1, Ordering::Relaxed)
                .is_multiple_of(rate)
    }
}

/// Below this many blocks a parallel walk is all spawn overhead; the kernel
/// silently degrades to the serial path. (The tail rounds of every fold
/// drop under this threshold, which is exactly when threads stop paying.)
const MIN_PARALLEL_BLOCKS: u64 = 1 << 12;

/// A per-pair combine rule: how one block's children contribute to the
/// round polynomial's evaluation slots.
///
/// Implementations accumulate into delayed-reduction accumulators
/// ([`PrimeField::DotAcc`]) so the hot loop performs one modular reduction
/// per batch of products where the field's representation allows.
pub trait Combine<F: PrimeField>: Sync {
    /// Number of evaluation slots the round message carries
    /// (`degree + 1`).
    fn slots(&self) -> usize;

    /// Folds block `m`'s contribution into `acc` (`slots()` entries).
    ///
    /// `a` holds the primary table's children for the block (two for pair
    /// walks, the block width for [`FoldSource::Blocks`]); `b` holds the
    /// partner table's children on union walks and is empty otherwise.
    fn accumulate(&self, m: u64, a: &[F], b: &[F], acc: &mut [F::DotAcc]);
}

/// What the kernel walks: the block structure behind one round message.
#[derive(Clone, Copy)]
pub enum FoldSource<'a, F: PrimeField> {
    /// The `(A[2m], A[2m+1])` pairs of one fold table, skipping all-zero
    /// pairs.
    Pairs(&'a FoldVector<F>),
    /// The union pair walk of two lockstep fold tables (INNER PRODUCT).
    UnionPairs(&'a FoldVector<F>, &'a FoldVector<F>),
    /// Fixed-width blocks of a dense table (the general-`ℓ` provers; the
    /// table length must be a multiple of the width).
    Blocks {
        /// The dense fold table.
        table: &'a [F],
        /// Children per block (`ℓ`).
        width: usize,
    },
}

impl<F: PrimeField> FoldSource<'_, F> {
    /// Number of blocks in the walk.
    pub fn blocks(&self) -> u64 {
        match self {
            FoldSource::Pairs(v) => v.pairs(),
            FoldSource::UnionPairs(a, _) => a.pairs(),
            FoldSource::Blocks { table, width } => {
                debug_assert!(*width >= 1 && table.len() % width == 0);
                (table.len() / width) as u64
            }
        }
    }

    /// Walks chunk `chunk` of `chunks` in increasing block order.
    fn walk_chunk(&self, chunk: usize, chunks: usize, mut f: impl FnMut(u64, &[F], &[F])) {
        let (lo, hi) = chunk_range(self.blocks(), chunk, chunks);
        match self {
            FoldSource::Pairs(v) => v.for_each_pair_in(lo, hi, |m, plo, phi| {
                f(m, &[plo, phi], &[]);
            }),
            FoldSource::UnionPairs(a, b) => {
                FoldVector::for_each_pair_union_in(a, b, lo, hi, |m, alo, ahi, blo, bhi| {
                    f(m, &[alo, ahi], &[blo, bhi]);
                })
            }
            FoldSource::Blocks { table, width } => {
                for m in lo..hi {
                    let start = m as usize * width;
                    f(m, &table[start..start + width], &[]);
                }
            }
        }
    }
}

/// The prover's scheduling knob: how many worker threads a round-message
/// pass may use. `threads = 1` (the default) is the serial path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProverPool {
    /// Worker threads per [`ProverPool::fold_message`] call (≥ 1).
    pub threads: usize,
}

impl Default for ProverPool {
    fn default() -> Self {
        ProverPool::SERIAL
    }
}

impl ProverPool {
    /// The serial engine: exactly the historical single-threaded loops.
    pub const SERIAL: ProverPool = ProverPool { threads: 1 };

    /// A pool of `threads` workers.
    ///
    /// # Panics
    /// Panics if `threads` is zero.
    pub fn new(threads: usize) -> Self {
        assert!(threads >= 1, "a prover needs at least one thread");
        ProverPool { threads }
    }

    /// A pool sized to the machine:
    /// [`std::thread::available_parallelism`], falling back to serial when
    /// the count is unavailable. This is what `threads = 0` resolves to in
    /// server configuration.
    pub fn auto() -> Self {
        ProverPool {
            threads: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
        }
    }

    /// Resolves a configured thread count: `0` means auto-detect
    /// ([`Self::auto`]), anything else is taken literally.
    pub fn from_config(threads: usize) -> Self {
        if threads == 0 {
            Self::auto()
        } else {
            Self::new(threads)
        }
    }

    /// Runs a verifier-side multi-point ingest batch on this pool:
    /// [`MultiLdeEvaluator::update_batch_threads`] with the pool's thread
    /// count. Chunk partials recombine exactly, so the evaluator values
    /// are identical at any thread count — same discipline as
    /// [`Self::fold_message`].
    pub fn ingest_batch<F: PrimeField>(&self, eval: &mut MultiLdeEvaluator<F>, batch: &[Update]) {
        if !sip_obs::enabled() {
            eval.update_batch_threads(batch, self.threads);
            return;
        }
        let metrics = engine_metrics();
        // One span per call, not per update: coarse enough to stay inside
        // the bench_obs overhead gate even with tracing on.
        let mut tspan = sip_obs::trace::span("sip.core.engine", "ingest_batch");
        tspan.field("updates", batch.len());
        let timer = metrics.sampled().then(sip_obs::Timer::start);
        eval.update_batch_threads(batch, self.threads);
        metrics.ingest_updates.add(batch.len() as u64);
        if let Some(timer) = timer {
            metrics.ingest_batch_us.observe(timer.elapsed_us());
        }
    }

    /// Produces one round message: walks `source` once, feeding every block
    /// through `combine`, and returns the `combine.slots()` evaluation
    /// sums.
    ///
    /// With `threads > 1` and a large enough table, the block range is
    /// split into contiguous chunks executed under [`std::thread::scope`];
    /// chunk partials recombine in chunk order. Exact field arithmetic
    /// makes the result identical to the serial walk at any thread count.
    pub fn fold_message<F: PrimeField, C: Combine<F> + ?Sized>(
        &self,
        source: FoldSource<'_, F>,
        combine: &C,
    ) -> Vec<F> {
        let slots = combine.slots();
        let blocks = source.blocks();
        let (timer, _tspan) = if sip_obs::enabled() {
            let metrics = engine_metrics();
            metrics.fold_messages.inc();
            metrics.fold_blocks.add(blocks);
            let mut tspan = sip_obs::trace::span("sip.core.engine", "fold_message");
            tspan.field("blocks", blocks);
            (
                metrics
                    .sampled()
                    .then(|| (metrics, sip_obs::Timer::start())),
                Some(tspan),
            )
        } else {
            (None, None)
        };
        let finish = move |msg: Vec<F>| {
            if let Some((metrics, timer)) = timer {
                metrics.fold_message_us.observe(timer.elapsed_us());
            }
            msg
        };
        let chunks = if blocks >= MIN_PARALLEL_BLOCKS {
            self.threads.max(1).min(blocks as usize)
        } else {
            1
        };
        if chunks <= 1 {
            let mut acc = vec![F::DotAcc::default(); slots];
            source.walk_chunk(0, 1, |m, a, b| combine.accumulate(m, a, b, &mut acc));
            return finish(acc.into_iter().map(F::acc_finish).collect());
        }
        let mut partials: Vec<Vec<F::DotAcc>> = (0..chunks)
            .map(|_| vec![F::DotAcc::default(); slots])
            .collect();
        std::thread::scope(|scope| {
            for (c, acc) in partials.iter_mut().enumerate() {
                scope.spawn(move || {
                    source.walk_chunk(c, chunks, |m, a, b| combine.accumulate(m, a, b, acc));
                });
            }
        });
        let mut out = vec![F::ZERO; slots];
        for partial in partials {
            for (slot, acc) in out.iter_mut().zip(partial) {
                *slot += F::acc_finish(acc);
            }
        }
        finish(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sip_field::{Fp61, PrimeField};
    use sip_streaming::{workloads, FrequencyVector};

    /// Degree-2 squared-interpolant rule (the F₂ message), used here to
    /// exercise the kernel directly.
    struct Square;

    impl Combine<Fp61> for Square {
        fn slots(&self) -> usize {
            3
        }

        fn accumulate(
            &self,
            _m: u64,
            a: &[Fp61],
            _b: &[Fp61],
            acc: &mut [<Fp61 as PrimeField>::DotAcc],
        ) {
            let (lo, hi) = (a[0], a[1]);
            Fp61::acc_add_prod(&mut acc[0], lo, lo);
            Fp61::acc_add_prod(&mut acc[1], hi, hi);
            let v2 = hi + (hi - lo);
            Fp61::acc_add_prod(&mut acc[2], v2, v2);
        }
    }

    fn fold_of(n: usize, bits: u32, seed: u64) -> FoldVector<Fp61> {
        let stream = workloads::uniform(n, 1 << bits, 50, seed);
        FoldVector::from_frequency(&FrequencyVector::from_stream(1 << bits, &stream), bits)
    }

    #[test]
    fn parallel_matches_serial_on_pairs() {
        // Dense (large n) and sparse (small n) tables, above and below the
        // parallel threshold.
        for (n, bits) in [(40_000usize, 14u32), (60, 16), (100, 10)] {
            let fold = fold_of(n, bits, 7);
            let serial = ProverPool::SERIAL.fold_message(FoldSource::Pairs(&fold), &Square);
            for threads in [2usize, 3, 4, 8] {
                let par = ProverPool::new(threads).fold_message(FoldSource::Pairs(&fold), &Square);
                assert_eq!(par, serial, "n={n} bits={bits} threads={threads}");
            }
        }
    }

    #[test]
    fn chunked_walk_covers_every_pair_once() {
        let fold = fold_of(500, 12, 9);
        let mut all = Vec::new();
        fold.for_each_pair(|m, lo, hi| all.push((m, lo, hi)));
        for chunks in [1usize, 2, 3, 7, 16] {
            let mut seen = Vec::new();
            let mut last_chunk = 0usize;
            fold.for_each_pair_chunks(chunks, |c, m, lo, hi| {
                assert!(c >= last_chunk, "chunks must arrive in order");
                last_chunk = c;
                seen.push((m, lo, hi));
            });
            assert_eq!(seen, all, "chunks={chunks}");
        }
    }

    #[test]
    fn thread_config_resolution() {
        // 0 = auto-detect: at least one thread, matching the machine.
        let auto = ProverPool::from_config(0);
        assert!(auto.threads >= 1);
        assert_eq!(auto, ProverPool::auto());
        // Nonzero is taken literally.
        assert_eq!(ProverPool::from_config(3).threads, 3);
    }

    #[test]
    fn more_threads_than_blocks_is_fine() {
        let fold = fold_of(10, 4, 3);
        let serial = ProverPool::SERIAL.fold_message(FoldSource::Pairs(&fold), &Square);
        let par = ProverPool::new(64).fold_message(FoldSource::Pairs(&fold), &Square);
        assert_eq!(par, serial);
    }

    #[test]
    fn fully_folded_table_yields_zero_blocks() {
        let mut fold = FoldVector::from_values(vec![Fp61::ONE, Fp61::from_u64(2)]);
        fold.bind(Fp61::from_u64(5));
        assert_eq!(fold.pairs(), 0);
        let msg = ProverPool::SERIAL.fold_message(FoldSource::Pairs(&fold), &Square);
        assert_eq!(msg, vec![Fp61::ZERO; 3]);
    }
}

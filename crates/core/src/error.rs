//! Rejection reasons.
//!
//! A [`Rejection`] is the *success* of the soundness machinery: the verifier
//! detected an inconsistency and outputs `⊥` (Definition 1 of the paper).
//! Misuse of the API (wrong message sizes for the negotiated parameters,
//! messages out of order) is also surfaced as a rejection — a malicious
//! prover controls the bytes on the wire, so malformed traffic must reject,
//! not panic.

use core::fmt;

/// The shape of a transport-level fault, coarse enough to label a metric
/// and fine enough to pick a retry strategy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IoFault {
    /// The dial was refused outright (nothing listening, or the chaos
    /// layer simulating the same).
    Refused,
    /// The peer went silent past the deadline.
    TimedOut,
    /// The connection closed or reset mid-conversation.
    Closed,
    /// Any other I/O error.
    Other,
}

impl IoFault {
    /// Stable lowercase label, used as a metrics `cause` tag.
    pub fn label(self) -> &'static str {
        match self {
            IoFault::Refused => "refused",
            IoFault::TimedOut => "timed_out",
            IoFault::Closed => "closed",
            IoFault::Other => "other",
        }
    }
}

/// Why the verifier output `⊥`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Rejection {
    /// A round polynomial had the wrong number of evaluations (equivalently,
    /// too high a degree — "the verifier also rejects if the degree of g is
    /// too high").
    WrongMessageLength {
        /// Round in which the bad message arrived (1-based).
        round: usize,
        /// Number of evaluations the verifier expected.
        expected: usize,
        /// Number received.
        got: usize,
    },
    /// `Σ_{x∈[ℓ]} g_j(x) ≠ g_{j−1}(r_{j−1})` — the new round polynomial is
    /// inconsistent with the previous claim.
    RoundSumMismatch {
        /// Round of the inconsistent polynomial (1-based).
        round: usize,
    },
    /// The last round polynomial disagreed with the verifier's own streaming
    /// evaluation (`g_d(r_d) ≠ f(r)`).
    FinalCheckFailed,
    /// The reconstructed hash-tree root differs from the streamed root
    /// (SUB-VECTOR / heavy hitters).
    RootMismatch,
    /// A one-shot proof's echoed transcript digest differs from the
    /// verifier's replay of the hash chain: the proof bytes were corrupted
    /// in transit, or prover and verifier disagree about the query context
    /// (protocol, field, parameters, shard identity, challenge prefix).
    /// Raised before any field algebra runs.
    TranscriptMismatch,
    /// A reported item fell outside the queried range, arrived out of
    /// order, or duplicated a previous item.
    MalformedAnswer {
        /// Human-readable detail.
        detail: String,
    },
    /// The prover sent more than the protocol's communication budget allows
    /// (e.g. more than the verified count of nonzero entries).
    AnswerTooLarge {
        /// Number of items the verifier committed to accept.
        limit: usize,
        /// Number the prover tried to send.
        got: usize,
    },
    /// A structural claim failed (heavy hitters: a node's count does not
    /// equal the sum of its children's counts, a claimed-heavy node is
    /// light, a witness is heavy, the root count is not `n`, …).
    StructuralCheckFailed {
        /// Human-readable detail.
        detail: String,
    },
    /// A sub-protocol this protocol relies on rejected.
    SubProtocol {
        /// Which sub-protocol rejected.
        name: &'static str,
        /// Its rejection.
        cause: Box<Rejection>,
    },
    /// In a sharded run, the failure is attributable to one prover: the
    /// other shards' transcripts checked out, this one's did not (or its
    /// connection misbehaved). The fleet is not condemned wholesale —
    /// operators restart or evict exactly this shard.
    Blame {
        /// The guilty shard (an index into the fleet's [`ShardPlan`],
        /// assigned at connection time).
        ///
        /// [`ShardPlan`]: https://docs.rs/sip-streaming
        shard_id: u32,
        /// Why that shard's transcript was rejected.
        cause: Box<Rejection>,
    },
    /// The channel itself failed: connection refused, timeout, reset. The
    /// bytes never arrived, so nothing about the *proof* is implicated —
    /// this is the one rejection class that is sound to retry or fail over
    /// ([`Rejection::is_transient`]).
    Io {
        /// The shape of the fault.
        fault: IoFault,
        /// Human-readable detail (the underlying error's message).
        detail: String,
    },
    /// Two replicas of the same logical shard answered the same query
    /// differently, and cross-examination through the one-shot check
    /// identified the liar. The first entry of `replicas` is the indicted
    /// replica, the second the honest one whose proof verified — the
    /// honest answer is still served; this rejection is the indictment.
    ReplicaDivergence {
        /// The logical shard whose replicas diverged.
        shard: u32,
        /// `[guilty, honest]` replica indices within the shard's set.
        replicas: Vec<u32>,
        /// What the guilty replica's proof was rejected for.
        cause: Box<Rejection>,
    },
    /// The caller's fleet configuration is unusable (shard count that does
    /// not divide the universe, zero replicas, mismatched address list).
    /// Raised instead of panicking: a fleet client must not abort the
    /// process on a config mistake.
    InvalidConfig {
        /// Human-readable detail.
        detail: String,
    },
}

impl Rejection {
    /// Wraps a rejection from a sub-protocol.
    pub fn in_subprotocol(name: &'static str, cause: Rejection) -> Self {
        Rejection::SubProtocol {
            name,
            cause: Box::new(cause),
        }
    }

    /// Attributes a rejection to one shard of a fleet. An already-blamed
    /// cause keeps its original attribution (the innermost observer knew
    /// best; re-wrapping would misdirect the eviction).
    pub fn blame(shard_id: u32, cause: Rejection) -> Self {
        match cause {
            already @ Rejection::Blame { .. } => already,
            cause => Rejection::Blame {
                shard_id,
                cause: Box::new(cause),
            },
        }
    }

    /// The shard this rejection blames, if it is attributable.
    pub fn blamed_shard(&self) -> Option<u32> {
        match self {
            Rejection::Blame { shard_id, .. } => Some(*shard_id),
            Rejection::ReplicaDivergence { shard, .. } => Some(*shard),
            Rejection::SubProtocol { cause, .. } => cause.blamed_shard(),
            _ => None,
        }
    }

    /// Shorthand for an I/O rejection.
    pub fn io(fault: IoFault, detail: impl Into<String>) -> Self {
        Rejection::Io {
            fault,
            detail: detail.into(),
        }
    }

    /// Classifies a raw I/O error kind into an [`IoFault`].
    pub fn from_io_error(e: &std::io::Error) -> Self {
        use std::io::ErrorKind;
        let fault = match e.kind() {
            ErrorKind::ConnectionRefused => IoFault::Refused,
            ErrorKind::TimedOut | ErrorKind::WouldBlock => IoFault::TimedOut,
            ErrorKind::ConnectionReset
            | ErrorKind::ConnectionAborted
            | ErrorKind::BrokenPipe
            | ErrorKind::UnexpectedEof
            | ErrorKind::NotConnected => IoFault::Closed,
            _ => IoFault::Other,
        };
        Rejection::io(fault, e.to_string())
    }

    /// Whether this rejection is a *transient channel fault* — safe to
    /// retry or fail over — as opposed to a soundness fault. The
    /// distinction is load-bearing: retrying a soundness rejection would
    /// offer a caught liar a fresh throw of the dice, so only [`Io`]
    /// qualifies. Attribution wrappers ([`Blame`], [`SubProtocol`]) are
    /// transparent: a blamed I/O fault is still just an I/O fault.
    ///
    /// [`Io`]: Rejection::Io
    /// [`Blame`]: Rejection::Blame
    /// [`SubProtocol`]: Rejection::SubProtocol
    pub fn is_transient(&self) -> bool {
        match self {
            Rejection::Io { .. } => true,
            Rejection::Blame { cause, .. } | Rejection::SubProtocol { cause, .. } => {
                cause.is_transient()
            }
            _ => false,
        }
    }

    /// The innermost [`IoFault`] if this is (a wrapper around) an I/O
    /// rejection, for metrics labelling.
    pub fn io_fault(&self) -> Option<IoFault> {
        match self {
            Rejection::Io { fault, .. } => Some(*fault),
            Rejection::Blame { cause, .. } | Rejection::SubProtocol { cause, .. } => {
                cause.io_fault()
            }
            _ => None,
        }
    }
}

impl fmt::Display for Rejection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rejection::WrongMessageLength {
                round,
                expected,
                got,
            } => write!(
                f,
                "round {round}: message carried {got} evaluations, expected {expected}"
            ),
            Rejection::RoundSumMismatch { round } => write!(
                f,
                "round {round}: polynomial does not sum to the previous claim"
            ),
            Rejection::FinalCheckFailed => {
                write!(
                    f,
                    "final check failed: g_d(r_d) differs from the streamed LDE"
                )
            }
            Rejection::RootMismatch => {
                write!(f, "reconstructed tree root differs from streamed root")
            }
            Rejection::TranscriptMismatch => {
                write!(
                    f,
                    "one-shot proof digest differs from the replayed transcript"
                )
            }
            Rejection::MalformedAnswer { detail } => write!(f, "malformed answer: {detail}"),
            Rejection::AnswerTooLarge { limit, got } => {
                write!(f, "prover sent {got} items, budget is {limit}")
            }
            Rejection::StructuralCheckFailed { detail } => {
                write!(f, "structural check failed: {detail}")
            }
            Rejection::SubProtocol { name, cause } => {
                write!(f, "sub-protocol {name} rejected: {cause}")
            }
            Rejection::Blame { shard_id, cause } => {
                write!(f, "shard {shard_id} is at fault: {cause}")
            }
            Rejection::Io { fault, detail } => {
                write!(f, "i/o fault ({}): {detail}", fault.label())
            }
            Rejection::ReplicaDivergence {
                shard,
                replicas,
                cause,
            } => {
                let guilty = replicas.first().copied().unwrap_or(u32::MAX);
                let honest = replicas.get(1).copied();
                write!(f, "shard {shard}: replica {guilty} diverged")?;
                if let Some(h) = honest {
                    write!(f, " from honest replica {h}")?;
                }
                write!(f, ": {cause}")
            }
            Rejection::InvalidConfig { detail } => {
                write!(f, "invalid fleet configuration: {detail}")
            }
        }
    }
}

impl std::error::Error for Rejection {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let r = Rejection::WrongMessageLength {
            round: 3,
            expected: 3,
            got: 7,
        };
        assert!(r.to_string().contains("round 3"));
        let nested = Rejection::in_subprotocol("heavy-hitters", Rejection::RootMismatch);
        assert!(nested.to_string().contains("heavy-hitters"));
        assert!(nested.to_string().contains("root"));
    }

    #[test]
    fn blame_names_the_shard_and_does_not_rewrap() {
        let blamed = Rejection::blame(3, Rejection::FinalCheckFailed);
        assert!(blamed.to_string().contains("shard 3"));
        assert_eq!(blamed.blamed_shard(), Some(3));
        // A second attribution keeps the original shard id.
        let rewrapped = Rejection::blame(7, blamed.clone());
        assert_eq!(rewrapped, blamed);
        // Blame is visible through sub-protocol wrapping.
        let wrapped = Rejection::in_subprotocol("range-sum", blamed);
        assert_eq!(wrapped.blamed_shard(), Some(3));
        assert_eq!(Rejection::RootMismatch.blamed_shard(), None);
    }

    #[test]
    fn transient_classification_sees_through_attribution() {
        let io = Rejection::io(IoFault::TimedOut, "read timed out");
        assert!(io.is_transient());
        assert_eq!(io.io_fault(), Some(IoFault::TimedOut));
        // Wrapping in blame or a sub-protocol does not change the class.
        let blamed = Rejection::blame(2, io.clone());
        assert!(blamed.is_transient());
        assert_eq!(blamed.io_fault(), Some(IoFault::TimedOut));
        let sub = Rejection::in_subprotocol("f2", blamed);
        assert!(sub.is_transient());
        // Soundness faults are never transient — even blamed ones.
        assert!(!Rejection::FinalCheckFailed.is_transient());
        assert!(!Rejection::blame(1, Rejection::TranscriptMismatch).is_transient());
        assert!(!Rejection::InvalidConfig { detail: "x".into() }.is_transient());
    }

    #[test]
    fn divergence_names_shard_and_both_replicas() {
        let d = Rejection::ReplicaDivergence {
            shard: 2,
            replicas: vec![1, 0],
            cause: Box::new(Rejection::FinalCheckFailed),
        };
        let s = d.to_string();
        assert!(s.contains("shard 2"), "{s}");
        assert!(s.contains("replica 1"), "{s}");
        assert!(s.contains("honest replica 0"), "{s}");
        assert_eq!(d.blamed_shard(), Some(2));
        assert!(!d.is_transient(), "an indictment is a soundness verdict");
    }

    #[test]
    fn io_error_kinds_classify() {
        use std::io::{Error, ErrorKind};
        let r = Rejection::from_io_error(&Error::new(ErrorKind::ConnectionRefused, "no"));
        assert_eq!(r.io_fault(), Some(IoFault::Refused));
        let r = Rejection::from_io_error(&Error::new(ErrorKind::BrokenPipe, "gone"));
        assert_eq!(r.io_fault(), Some(IoFault::Closed));
        let r = Rejection::from_io_error(&Error::new(ErrorKind::TimedOut, "slow"));
        assert_eq!(r.io_fault(), Some(IoFault::TimedOut));
    }
}

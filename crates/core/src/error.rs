//! Rejection reasons.
//!
//! A [`Rejection`] is the *success* of the soundness machinery: the verifier
//! detected an inconsistency and outputs `⊥` (Definition 1 of the paper).
//! Misuse of the API (wrong message sizes for the negotiated parameters,
//! messages out of order) is also surfaced as a rejection — a malicious
//! prover controls the bytes on the wire, so malformed traffic must reject,
//! not panic.

use core::fmt;

/// Why the verifier output `⊥`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Rejection {
    /// A round polynomial had the wrong number of evaluations (equivalently,
    /// too high a degree — "the verifier also rejects if the degree of g is
    /// too high").
    WrongMessageLength {
        /// Round in which the bad message arrived (1-based).
        round: usize,
        /// Number of evaluations the verifier expected.
        expected: usize,
        /// Number received.
        got: usize,
    },
    /// `Σ_{x∈[ℓ]} g_j(x) ≠ g_{j−1}(r_{j−1})` — the new round polynomial is
    /// inconsistent with the previous claim.
    RoundSumMismatch {
        /// Round of the inconsistent polynomial (1-based).
        round: usize,
    },
    /// The last round polynomial disagreed with the verifier's own streaming
    /// evaluation (`g_d(r_d) ≠ f(r)`).
    FinalCheckFailed,
    /// The reconstructed hash-tree root differs from the streamed root
    /// (SUB-VECTOR / heavy hitters).
    RootMismatch,
    /// A one-shot proof's echoed transcript digest differs from the
    /// verifier's replay of the hash chain: the proof bytes were corrupted
    /// in transit, or prover and verifier disagree about the query context
    /// (protocol, field, parameters, shard identity, challenge prefix).
    /// Raised before any field algebra runs.
    TranscriptMismatch,
    /// A reported item fell outside the queried range, arrived out of
    /// order, or duplicated a previous item.
    MalformedAnswer {
        /// Human-readable detail.
        detail: String,
    },
    /// The prover sent more than the protocol's communication budget allows
    /// (e.g. more than the verified count of nonzero entries).
    AnswerTooLarge {
        /// Number of items the verifier committed to accept.
        limit: usize,
        /// Number the prover tried to send.
        got: usize,
    },
    /// A structural claim failed (heavy hitters: a node's count does not
    /// equal the sum of its children's counts, a claimed-heavy node is
    /// light, a witness is heavy, the root count is not `n`, …).
    StructuralCheckFailed {
        /// Human-readable detail.
        detail: String,
    },
    /// A sub-protocol this protocol relies on rejected.
    SubProtocol {
        /// Which sub-protocol rejected.
        name: &'static str,
        /// Its rejection.
        cause: Box<Rejection>,
    },
    /// In a sharded run, the failure is attributable to one prover: the
    /// other shards' transcripts checked out, this one's did not (or its
    /// connection misbehaved). The fleet is not condemned wholesale —
    /// operators restart or evict exactly this shard.
    Blame {
        /// The guilty shard (an index into the fleet's [`ShardPlan`],
        /// assigned at connection time).
        ///
        /// [`ShardPlan`]: https://docs.rs/sip-streaming
        shard_id: u32,
        /// Why that shard's transcript was rejected.
        cause: Box<Rejection>,
    },
}

impl Rejection {
    /// Wraps a rejection from a sub-protocol.
    pub fn in_subprotocol(name: &'static str, cause: Rejection) -> Self {
        Rejection::SubProtocol {
            name,
            cause: Box::new(cause),
        }
    }

    /// Attributes a rejection to one shard of a fleet. An already-blamed
    /// cause keeps its original attribution (the innermost observer knew
    /// best; re-wrapping would misdirect the eviction).
    pub fn blame(shard_id: u32, cause: Rejection) -> Self {
        match cause {
            already @ Rejection::Blame { .. } => already,
            cause => Rejection::Blame {
                shard_id,
                cause: Box::new(cause),
            },
        }
    }

    /// The shard this rejection blames, if it is attributable.
    pub fn blamed_shard(&self) -> Option<u32> {
        match self {
            Rejection::Blame { shard_id, .. } => Some(*shard_id),
            Rejection::SubProtocol { cause, .. } => cause.blamed_shard(),
            _ => None,
        }
    }
}

impl fmt::Display for Rejection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rejection::WrongMessageLength {
                round,
                expected,
                got,
            } => write!(
                f,
                "round {round}: message carried {got} evaluations, expected {expected}"
            ),
            Rejection::RoundSumMismatch { round } => write!(
                f,
                "round {round}: polynomial does not sum to the previous claim"
            ),
            Rejection::FinalCheckFailed => {
                write!(
                    f,
                    "final check failed: g_d(r_d) differs from the streamed LDE"
                )
            }
            Rejection::RootMismatch => {
                write!(f, "reconstructed tree root differs from streamed root")
            }
            Rejection::TranscriptMismatch => {
                write!(
                    f,
                    "one-shot proof digest differs from the replayed transcript"
                )
            }
            Rejection::MalformedAnswer { detail } => write!(f, "malformed answer: {detail}"),
            Rejection::AnswerTooLarge { limit, got } => {
                write!(f, "prover sent {got} items, budget is {limit}")
            }
            Rejection::StructuralCheckFailed { detail } => {
                write!(f, "structural check failed: {detail}")
            }
            Rejection::SubProtocol { name, cause } => {
                write!(f, "sub-protocol {name} rejected: {cause}")
            }
            Rejection::Blame { shard_id, cause } => {
                write!(f, "shard {shard_id} is at fault: {cause}")
            }
        }
    }
}

impl std::error::Error for Rejection {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let r = Rejection::WrongMessageLength {
            round: 3,
            expected: 3,
            got: 7,
        };
        assert!(r.to_string().contains("round 3"));
        let nested = Rejection::in_subprotocol("heavy-hitters", Rejection::RootMismatch);
        assert!(nested.to_string().contains("heavy-hitters"));
        assert!(nested.to_string().contains("root"));
    }

    #[test]
    fn blame_names_the_shard_and_does_not_rewrap() {
        let blamed = Rejection::blame(3, Rejection::FinalCheckFailed);
        assert!(blamed.to_string().contains("shard 3"));
        assert_eq!(blamed.blamed_shard(), Some(3));
        // A second attribution keeps the original shard id.
        let rewrapped = Rejection::blame(7, blamed.clone());
        assert_eq!(rewrapped, blamed);
        // Blame is visible through sub-protocol wrapping.
        let wrapped = Rejection::in_subprotocol("range-sum", blamed);
        assert_eq!(wrapped.blamed_shard(), Some(3));
        assert_eq!(Rejection::RootMismatch.blamed_shard(), None);
    }
}

//! The HEAVY HITTERS protocol (Section 6.1).
//!
//! The φ-heavy hitters are the items with frequency at least `φ·n`. The
//! verifier must be convinced both that every claimed heavy item has its
//! claimed frequency **and that none were omitted**. The paper augments the
//! SUB-VECTOR hash tree: every internal node `v` gains a third child `c_v`
//! holding the *subtree count* (the sum of frequencies of all leaves below
//! `v`), and the level hash becomes
//!
//! ```text
//! h(v) = h(v_L) + r_j·h(v_R) + s_j·c_v
//! ```
//!
//! with independent random keys `r_j, s_j` per level. The root remains a
//! linear function of the leaves, so `V` still streams it in `O(log u)`
//! space and `O(log u)` time per update.
//!
//! The prover then discloses, level by level from the leaves up, the
//! *skeleton*: every child of every heavy node — the heavy children get
//! expanded recursively while the light children act as **witnesses** that
//! no heavy leaf hides below them. `V` recomputes every heavy node's hash
//! from its children, takes witness hashes on faith, and compares the root
//! against its streamed value: any lie — a wrong count, a forged witness, a
//! hidden heavy item — flips the root with probability `1 − O(log u / p)`.
//!
//! Since the subtree counts at each level sum to `n`, at most `2/φ` nodes
//! per level are disclosed: an `O(1/φ·log u)` proof.
//!
//! This protocol assumes *non-negative frequencies* (the strict turnstile
//! model): a zero count then certifies an all-zero subtree, letting the
//! prover omit zero children.

use std::collections::BTreeMap;

use rand::Rng;
use sip_field::PrimeField;
use sip_streaming::{FrequencyVector, Update};

use crate::channel::CostReport;
use crate::error::Rejection;

/// Streaming root computation for the count-augmented tree (verifier side).
#[derive(Clone, Debug)]
pub struct CountTreeHasher<F: PrimeField> {
    /// `keys[j−1] = r_j`.
    keys: Vec<F>,
    /// `skeys[j−1] = s_j` (count keys).
    skeys: Vec<F>,
    root: F,
    n: u64,
}

impl<F: PrimeField> CountTreeHasher<F> {
    /// Fresh random keys over `[2^log_u]`.
    pub fn random<R: Rng + ?Sized>(log_u: u32, rng: &mut R) -> Self {
        assert!((1..=63).contains(&log_u));
        CountTreeHasher {
            keys: (0..log_u).map(|_| F::random(rng)).collect(),
            skeys: (0..log_u).map(|_| F::random(rng)).collect(),
            root: F::ZERO,
            n: 0,
        }
    }

    /// Tree depth `d`.
    pub fn depth(&self) -> u32 {
        self.keys.len() as u32
    }

    /// The hash keys `r_j` (checkpoint state; secret until revealed).
    pub fn keys(&self) -> &[F] {
        &self.keys
    }

    /// The count keys `s_j` (checkpoint state; secret until revealed).
    pub fn skeys(&self) -> &[F] {
        &self.skeys
    }

    /// Rebuilds a hasher from checkpointed state: both key vectors, the
    /// running root, and the running total `n`. A resumed hasher is
    /// field-for-field identical to one that never stopped.
    ///
    /// # Panics
    /// Panics if the key vectors are empty, longer than 63, or of unequal
    /// length.
    pub fn from_saved(keys: Vec<F>, skeys: Vec<F>, root: F, n: u64) -> Self {
        assert!((1..=63).contains(&keys.len()));
        assert_eq!(keys.len(), skeys.len(), "one count key per hash key");
        CountTreeHasher {
            keys,
            skeys,
            root,
            n,
        }
    }

    /// Processes one update in `O(log u)` time.
    ///
    /// The update contributes `δ` to the leaf (path weight
    /// `Π_j r_j^{bit_j}`) and `δ` to every ancestor's count child
    /// (weight `s_j · Π_{k>j} r_k^{bit_k}`).
    ///
    /// # Panics
    /// Panics on negative `δ` driving the running total negative is *not*
    /// detected here (protocol precondition); panics if the index is out of
    /// the universe.
    pub fn update(&mut self, up: Update) {
        let d = self.keys.len();
        assert!(up.index < (1u64 << d), "index outside universe");
        let delta = F::from_i64(up.delta);
        // Walk levels from the root down, maintaining the multiplier of the
        // level-j ancestor's hash inside the root.
        let mut mult = F::ONE;
        let mut acc = F::ZERO;
        for j in (0..d).rev() {
            acc += self.skeys[j] * mult;
            if (up.index >> j) & 1 == 1 {
                mult *= self.keys[j];
            }
        }
        self.root += delta * (mult + acc);
        self.n = (self.n as i64 + up.delta) as u64;
    }

    /// Processes a whole stream.
    pub fn update_all(&mut self, stream: &[Update]) {
        for &up in stream {
            self.update(up);
        }
    }

    /// Processes a whole batch through one delayed-reduction accumulator;
    /// the root and total are bit-identical to per-update [`Self::update`].
    ///
    /// # Panics
    /// Panics if any index is outside the universe.
    pub fn update_batch(&mut self, batch: &[Update]) {
        let d = self.keys.len();
        let mut accum = F::DotAcc::default();
        let mut n = self.n as i64;
        for &up in batch {
            assert!(up.index < (1u64 << d), "index outside universe");
            let mut mult = F::ONE;
            let mut acc = F::ZERO;
            for j in (0..d).rev() {
                acc += self.skeys[j] * mult;
                if (up.index >> j) & 1 == 1 {
                    mult *= self.keys[j];
                }
            }
            F::acc_add_prod(&mut accum, F::from_i64(up.delta), mult + acc);
            n += up.delta;
        }
        self.root += F::acc_finish(accum);
        self.n = n as u64;
    }

    /// The streamed root hash `t`.
    pub fn root(&self) -> F {
        self.root
    }

    /// Total weight `n = Σ_i a_i`.
    pub fn total(&self) -> u64 {
        self.n
    }

    /// Verifier streaming space in words.
    pub fn space_words(&self) -> usize {
        2 * self.keys.len() + 2
    }
}

/// One disclosed skeleton node.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DisclosedNode<F> {
    /// Node index within its level.
    pub index: u64,
    /// Claimed subtree count.
    pub count: u64,
    /// Claimed hash — present exactly for *light* internal nodes
    /// (witnesses); heavy nodes are recomputed by `V`, leaves hash to their
    /// count.
    pub hash: Option<F>,
}

/// The prover's message for one level: the children of that level's heavy
/// parents, index-sorted, zero-count children omitted.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LevelDisclosure<F> {
    /// Which tree level these nodes live at (0 = leaves).
    pub level: u32,
    /// The disclosed nodes.
    pub nodes: Vec<DisclosedNode<F>>,
}

impl<F> LevelDisclosure<F> {
    /// Communication words this disclosure costs: index and count per node,
    /// plus the optional witness hash. This is *the* accounting formula —
    /// every cost report (local, remote client, remote server) uses it.
    pub fn words(&self) -> usize {
        self.nodes
            .iter()
            .map(|n| 2 + n.hash.is_some() as usize)
            .sum()
    }
}

/// What the verifier does after ingesting a level.
#[derive(Clone, Debug)]
pub enum HhStep<F> {
    /// Reveal these keys to the prover and await the next level.
    RevealKeys {
        /// The level whose disclosure should come next.
        level: u32,
        /// `r_level` — the hash key.
        r: F,
        /// `s_level` — the count key.
        s: F,
    },
    /// Verification finished; the complete verified heavy-hitter set.
    Accept(Vec<(u64, u64)>),
}

/// The verifier's interactive heavy-hitters session.
#[derive(Clone, Debug)]
pub struct HhSession<F: PrimeField> {
    keys: Vec<F>,
    skeys: Vec<F>,
    streamed_root: F,
    n: u64,
    threshold: u64,
    d: u32,
    /// Verified (index → (count, hash)) of the previously ingested level.
    prev: BTreeMap<u64, (u64, F)>,
    next_level: u32,
    /// The heavy leaves seen in the level-0 disclosure.
    answer: Vec<(u64, u64)>,
    max_level_width: usize,
}

impl<F: PrimeField> CountTreeHasher<F> {
    /// Ends the streaming phase; `threshold` is the absolute heavy cutoff
    /// (`⌈φ·n⌉` for a fraction φ).
    ///
    /// # Panics
    /// Panics if `threshold == 0`.
    pub fn into_session(self, threshold: u64) -> HhSession<F> {
        assert!(threshold >= 1, "threshold must be positive");
        let d = self.depth();
        HhSession {
            keys: self.keys,
            skeys: self.skeys,
            streamed_root: self.root,
            n: self.n,
            threshold,
            d,
            prev: BTreeMap::new(),
            next_level: 0,
            answer: Vec::new(),
            max_level_width: 0,
        }
    }
}

impl<F: PrimeField> HhSession<F> {
    /// If no item can possibly be heavy (`n < threshold`), accept the empty
    /// set without interaction.
    pub fn trivially_empty(&self) -> bool {
        self.n < self.threshold
    }

    /// Session space in words (the answer set plus one level of skeleton).
    pub fn space_words(&self) -> usize {
        2 * self.keys.len() + 2 + 3 * self.max_level_width + 2 * self.answer.len()
    }

    /// Ingests the disclosure for the next level (starting at level 0).
    pub fn receive_level(&mut self, disc: &LevelDisclosure<F>) -> Result<HhStep<F>, Rejection> {
        assert!(
            !self.trivially_empty(),
            "no interaction needed: n < threshold"
        );
        let level = self.next_level;
        assert!(level < self.d, "all levels already processed");
        if disc.level != level {
            return Err(Rejection::MalformedAnswer {
                detail: format!("expected level {level}, got {}", disc.level),
            });
        }
        let mut cur: BTreeMap<u64, (u64, F)> = BTreeMap::new();
        let width = 1u64 << (self.d - level);
        let mut last_index: Option<u64> = None;
        for node in &disc.nodes {
            if node.index >= width || last_index.is_some_and(|p| p >= node.index) {
                return Err(Rejection::MalformedAnswer {
                    detail: format!("level {level}: node {} out of order/range", node.index),
                });
            }
            last_index = Some(node.index);
            if node.count == 0 {
                return Err(Rejection::MalformedAnswer {
                    detail: "zero-count nodes must be omitted".to_string(),
                });
            }
            let heavy = node.count >= self.threshold;
            let hash = if level == 0 {
                // A leaf's hash is its value (= its count).
                if node.hash.is_some() {
                    return Err(Rejection::MalformedAnswer {
                        detail: "leaves carry no explicit hash".to_string(),
                    });
                }
                F::from_u64(node.count)
            } else if heavy {
                if node.hash.is_some() {
                    return Err(Rejection::MalformedAnswer {
                        detail: "heavy nodes are recomputed, not claimed".to_string(),
                    });
                }
                let (cl, hl) = self
                    .prev
                    .get(&(2 * node.index))
                    .copied()
                    .unwrap_or((0, F::ZERO));
                let (cr, hr) = self
                    .prev
                    .get(&(2 * node.index + 1))
                    .copied()
                    .unwrap_or((0, F::ZERO));
                if cl + cr != node.count {
                    return Err(Rejection::StructuralCheckFailed {
                        detail: format!(
                            "level {level} node {}: count {} != children {} + {}",
                            node.index, node.count, cl, cr
                        ),
                    });
                }
                hl + self.keys[level as usize - 1] * hr
                    + self.skeys[level as usize - 1] * F::from_u64(node.count)
            } else {
                // Light witness: hash taken on faith, bound by the root.
                node.hash.ok_or_else(|| Rejection::MalformedAnswer {
                    detail: "light witness must carry its hash".to_string(),
                })?
            };
            if level == 0 && heavy {
                self.answer.push((node.index, node.count));
            }
            cur.insert(node.index, (node.count, hash));
        }
        // Completeness: every previously disclosed node hangs under a
        // disclosed *heavy* parent.
        for &i in self.prev.keys() {
            match cur.get(&(i >> 1)) {
                Some(&(c, _)) if c >= self.threshold => {}
                _ => {
                    return Err(Rejection::StructuralCheckFailed {
                        detail: format!("level {level}: parent of node {i} missing or light"),
                    })
                }
            }
        }
        self.max_level_width = self.max_level_width.max(cur.len());
        self.prev = cur;
        self.next_level += 1;
        if self.next_level == self.d {
            return self.finish();
        }
        Ok(HhStep::RevealKeys {
            level: self.next_level,
            r: self.keys[self.next_level as usize - 1],
            s: self.skeys[self.next_level as usize - 1],
        })
    }

    /// Final root reconstruction and comparison.
    fn finish(&mut self) -> Result<HhStep<F>, Rejection> {
        let (cl, hl) = self.prev.get(&0).copied().unwrap_or((0, F::ZERO));
        let (cr, hr) = self.prev.get(&1).copied().unwrap_or((0, F::ZERO));
        if cl + cr != self.n {
            return Err(Rejection::StructuralCheckFailed {
                detail: format!("root count {} != streamed total {}", cl + cr, self.n),
            });
        }
        let d = self.d as usize;
        let root = hl + self.keys[d - 1] * hr + self.skeys[d - 1] * F::from_u64(self.n);
        if root != self.streamed_root {
            return Err(Rejection::RootMismatch);
        }
        Ok(HhStep::Accept(std::mem::take(&mut self.answer)))
    }
}

/// The honest heavy-hitters prover.
#[derive(Clone, Debug)]
pub struct HhProver<F: PrimeField> {
    /// Sparse subtree counts per level (level 0 = leaves), key-independent.
    counts: Vec<Vec<(u64, u64)>>,
    /// Sparse hashes of the current level (advances as keys arrive).
    hashes: Vec<(u64, F)>,
    level: u32,
    threshold: u64,
}

impl<F: PrimeField> HhProver<F> {
    /// Builds the count tree from the materialised frequencies.
    ///
    /// # Panics
    /// Panics if any frequency is negative (strict turnstile only).
    pub fn new(fv: &FrequencyVector, log_u: u32, threshold: u64) -> Self {
        assert!(threshold >= 1);
        let mut level0: Vec<(u64, u64)> = Vec::new();
        for (i, f) in fv.nonzero() {
            assert!(f >= 0, "heavy hitters require non-negative frequencies");
            level0.push((i, f as u64));
        }
        let mut counts = vec![level0];
        for _ in 0..log_u {
            let prev = counts.last().expect("nonempty");
            let mut next: Vec<(u64, u64)> = Vec::new();
            for &(i, c) in prev {
                match next.last_mut() {
                    Some(&mut (pi, ref mut pc)) if pi == i >> 1 => *pc += c,
                    _ => next.push((i >> 1, c)),
                }
            }
            counts.push(next);
        }
        let hashes = counts[0]
            .iter()
            .map(|&(i, c)| (i, F::from_u64(c)))
            .collect();
        HhProver {
            counts,
            hashes,
            level: 0,
            threshold,
        }
    }

    fn count_at(&self, level: u32, index: u64) -> u64 {
        let lvl = &self.counts[level as usize];
        match lvl.binary_search_by_key(&index, |&(i, _)| i) {
            Ok(pos) => lvl[pos].1,
            Err(_) => 0,
        }
    }

    fn hash_at(&self, index: u64) -> F {
        match self.hashes.binary_search_by_key(&index, |&(i, _)| i) {
            Ok(pos) => self.hashes[pos].1,
            Err(_) => F::ZERO,
        }
    }

    /// The disclosure for the current level: all nonzero children of heavy
    /// parents (for level `d−1`, the children of the root).
    pub fn disclose(&self) -> LevelDisclosure<F> {
        let level = self.level;
        let nodes = self.counts[level as usize]
            .iter()
            .filter(|&&(i, _)| {
                let parent_count = self.count_at(level + 1, i >> 1);
                parent_count >= self.threshold
            })
            .map(|&(i, c)| DisclosedNode {
                index: i,
                count: c,
                hash: (level > 0 && c < self.threshold).then(|| self.hash_at(i)),
            })
            .collect();
        LevelDisclosure { level, nodes }
    }

    /// Processes the verifier's key reveal: advances the hash tree one
    /// level.
    pub fn receive_keys(&mut self, level: u32, r: F, s: F) {
        assert_eq!(level, self.level + 1, "keys out of order");
        let next_counts = &self.counts[level as usize];
        let mut next_hashes: Vec<(u64, F)> = Vec::with_capacity(next_counts.len());
        for &(i, c) in next_counts {
            let h = self.hash_at(2 * i) + r * self.hash_at(2 * i + 1) + s * F::from_u64(c);
            next_hashes.push((i, h));
        }
        self.hashes = next_hashes;
        self.level = level;
    }
}

/// A verified heavy-hitters answer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VerifiedHeavyHitters {
    /// `(item, frequency)` for every item with frequency ≥ threshold.
    pub items: Vec<(u64, u64)>,
    /// Cost accounting.
    pub report: CostReport,
}

/// Runs the complete honest HEAVY HITTERS protocol with absolute threshold
/// `threshold` (use `⌈φ·n⌉` for the paper's φ-heavy hitters).
pub fn run_heavy_hitters<F: PrimeField, R: Rng + ?Sized>(
    log_u: u32,
    stream: &[Update],
    threshold: u64,
    rng: &mut R,
) -> Result<VerifiedHeavyHitters, Rejection> {
    run_heavy_hitters_with_adversary::<F, R>(log_u, stream, threshold, rng, None)
}

/// Disclosure corruption hook (`level`, mutable disclosure).
pub type HhAdversary<'a, F> = &'a mut dyn FnMut(u32, &mut LevelDisclosure<F>);

/// Like [`run_heavy_hitters`] with a disclosure-corruption hook.
pub fn run_heavy_hitters_with_adversary<F: PrimeField, R: Rng + ?Sized>(
    log_u: u32,
    stream: &[Update],
    threshold: u64,
    rng: &mut R,
    mut adversary: Option<HhAdversary<'_, F>>,
) -> Result<VerifiedHeavyHitters, Rejection> {
    let mut hasher = CountTreeHasher::<F>::random(log_u, rng);
    hasher.update_all(stream);
    let streaming_space = hasher.space_words();
    let mut session = hasher.into_session(threshold);
    let mut report = CostReport {
        v_to_p_words: 1, // the threshold
        verifier_space_words: streaming_space,
        ..CostReport::default()
    };
    if session.trivially_empty() {
        return Ok(VerifiedHeavyHitters {
            items: Vec::new(),
            report,
        });
    }

    let fv = FrequencyVector::from_stream(1 << log_u, stream);
    let mut prover = HhProver::<F>::new(&fv, log_u, threshold);

    loop {
        let mut disc = prover.disclose();
        if let Some(adv) = adversary.as_mut() {
            adv(disc.level, &mut disc);
        }
        report.rounds += 1;
        report.p_to_v_words += disc.words();
        match session.receive_level(&disc)? {
            HhStep::RevealKeys { level, r, s } => {
                report.v_to_p_words += 2;
                prover.receive_keys(level, r, s);
            }
            HhStep::Accept(items) => {
                report.verifier_space_words = streaming_space + session.space_words();
                return Ok(VerifiedHeavyHitters { items, report });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sip_field::Fp61;
    use sip_streaming::workloads;

    fn truth(stream: &[Update], u: u64, threshold: u64) -> Vec<(u64, u64)> {
        FrequencyVector::from_stream(u, stream)
            .heavy_hitters(threshold as i64)
            .into_iter()
            .map(|(i, f)| (i, f as u64))
            .collect()
    }

    #[test]
    fn completeness_skewed_stream() {
        let mut rng = StdRng::seed_from_u64(1);
        let log_u = 10;
        let u = 1u64 << log_u;
        let stream = workloads::zipf(20_000, u, 1.2, 2);
        let n: i64 = stream.iter().map(|up| up.delta).sum();
        for phi_inv in [10u64, 50, 200] {
            let threshold = (n as u64 / phi_inv).max(1);
            let got = run_heavy_hitters::<Fp61, _>(log_u, &stream, threshold, &mut rng).unwrap();
            assert_eq!(got.items, truth(&stream, u, threshold), "1/φ = {phi_inv}");
        }
    }

    #[test]
    fn uniform_stream_with_no_heavy_items() {
        let mut rng = StdRng::seed_from_u64(2);
        let log_u = 8;
        let stream = workloads::uniform(500, 1 << log_u, 3, 3);
        let got = run_heavy_hitters::<Fp61, _>(log_u, &stream, 1_000_000, &mut rng).unwrap();
        assert!(got.items.is_empty());
    }

    #[test]
    fn threshold_one_reports_everything() {
        let mut rng = StdRng::seed_from_u64(3);
        let log_u = 6;
        let stream = workloads::distinct_keys(20, 1 << log_u, 4);
        let got = run_heavy_hitters::<Fp61, _>(log_u, &stream, 1, &mut rng).unwrap();
        assert_eq!(got.items.len(), 20);
    }

    #[test]
    fn single_dominant_item() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut stream = vec![Update::new(42, 1000)];
        stream.extend(workloads::distinct_keys(50, 1 << 8, 5));
        let got = run_heavy_hitters::<Fp61, _>(8, &stream, 500, &mut rng).unwrap();
        assert_eq!(
            got.items,
            vec![(42, if got.items[0].1 == 1001 { 1001 } else { 1000 })]
        );
    }

    #[test]
    fn communication_scales_with_one_over_phi() {
        let mut rng = StdRng::seed_from_u64(5);
        let log_u = 12;
        let stream = workloads::zipf(50_000, 1 << log_u, 1.1, 6);
        let n: u64 = stream.iter().map(|up| up.delta as u64).sum();
        let coarse = run_heavy_hitters::<Fp61, _>(log_u, &stream, n / 5, &mut rng).unwrap();
        let fine = run_heavy_hitters::<Fp61, _>(log_u, &stream, n / 500, &mut rng).unwrap();
        assert!(coarse.report.p_to_v_words < fine.report.p_to_v_words);
        // Proof stays within the O(1/φ · log u) envelope (constant ≤ 6).
        assert!(
            fine.report.p_to_v_words <= 6 * 500 * log_u as usize,
            "proof too large: {}",
            fine.report.p_to_v_words
        );
    }

    #[test]
    fn omitted_heavy_hitter_rejected() {
        let mut rng = StdRng::seed_from_u64(6);
        let log_u = 8;
        let stream = workloads::zipf(5_000, 1 << log_u, 1.3, 7);
        let threshold = 100;
        let hh = truth(&stream, 1 << log_u, threshold);
        assert!(!hh.is_empty(), "need at least one heavy item");
        let victim = hh[0].0;
        // Drop the victim (and by necessity lie somewhere): remove it from
        // the level-0 disclosure.
        let mut adv = |level: u32, disc: &mut LevelDisclosure<Fp61>| {
            if level == 0 {
                disc.nodes.retain(|n| n.index != victim);
            }
        };
        let res = run_heavy_hitters_with_adversary::<Fp61, _>(
            log_u,
            &stream,
            threshold,
            &mut rng,
            Some(&mut adv),
        );
        assert!(res.is_err());
    }

    #[test]
    fn understated_count_rejected() {
        let mut rng = StdRng::seed_from_u64(7);
        let log_u = 8;
        let stream = workloads::zipf(5_000, 1 << log_u, 1.3, 8);
        let threshold = 100;
        let mut adv = |level: u32, disc: &mut LevelDisclosure<Fp61>| {
            if level == 0 {
                if let Some(n) = disc.nodes.iter_mut().find(|n| n.count >= 100) {
                    n.count = 99; // pretend the heavy item is light
                }
            }
        };
        let res = run_heavy_hitters_with_adversary::<Fp61, _>(
            log_u,
            &stream,
            threshold,
            &mut rng,
            Some(&mut adv),
        );
        assert!(res.is_err());
    }

    #[test]
    fn forged_witness_hash_rejected() {
        let mut rng = StdRng::seed_from_u64(8);
        let log_u = 8;
        let stream = workloads::zipf(5_000, 1 << log_u, 1.3, 9);
        for bad_level in 1..=4u32 {
            let mut adv = |level: u32, disc: &mut LevelDisclosure<Fp61>| {
                if level == bad_level {
                    if let Some(n) = disc.nodes.iter_mut().find(|n| n.hash.is_some()) {
                        *n.hash.as_mut().unwrap() += Fp61::ONE;
                    }
                }
            };
            let res = run_heavy_hitters_with_adversary::<Fp61, _>(
                log_u,
                &stream,
                100,
                &mut rng,
                Some(&mut adv),
            );
            // Levels without witnesses leave the disclosure untouched.
            if let Err(e) = res {
                assert!(
                    matches!(
                        e,
                        Rejection::RootMismatch | Rejection::StructuralCheckFailed { .. }
                    ),
                    "level={bad_level}: {e:?}"
                );
            }
        }
    }

    #[test]
    fn trivially_empty_when_threshold_exceeds_n() {
        let mut rng = StdRng::seed_from_u64(9);
        let stream = [Update::new(3, 5)];
        let got = run_heavy_hitters::<Fp61, _>(6, &stream, 10, &mut rng).unwrap();
        assert!(got.items.is_empty());
        assert_eq!(got.report.rounds, 0, "no interaction needed");
    }
}

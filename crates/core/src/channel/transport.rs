//! Frame transports: the physical channel between verifier and prover.
//!
//! A [`Transport`] moves opaque length-delimited frames in both directions
//! and counts the bytes it moves. The protocol layer (`sip-wire`) decides
//! what the frames *mean*; this layer only guarantees that a frame arrives
//! whole or an error is reported. Two implementations:
//!
//! * [`InMemoryTransport`] — a pair of queues inside one process; this is
//!   the seed repository's original prover↔verifier wiring, now behind the
//!   trait.
//! * [`FramedTcpTransport`] — `u32`-little-endian length-prefixed frames
//!   over a `TcpStream`, the outsourced setting of Section 1 ("the data
//!   owner sends (key, value) pairs to the cloud to be stored").
//!
//! Both enforce a maximum frame length: a malicious peer controls the
//! length prefix, and a verifier with `O(log u)` words of protocol state
//! must not be made to allocate gigabytes.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::time::Duration;

/// Default cap on a single frame (16 MiB) — far above any honest proof in
/// this workspace, far below a memory-exhaustion attack.
pub const DEFAULT_MAX_FRAME: usize = 1 << 24;

/// Why a transport operation failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TransportError {
    /// The peer closed the channel (or the socket reached EOF mid-frame).
    Closed,
    /// The peer announced a frame larger than the negotiated maximum.
    FrameTooLarge {
        /// Announced length.
        len: usize,
        /// Configured maximum.
        max: usize,
    },
    /// No frame arrived within the configured timeout.
    TimedOut,
    /// An I/O error from the underlying socket.
    Io(String),
}

impl core::fmt::Display for TransportError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            TransportError::Closed => write!(f, "channel closed by peer"),
            TransportError::FrameTooLarge { len, max } => {
                write!(f, "peer announced a {len}-byte frame, maximum is {max}")
            }
            TransportError::TimedOut => write!(f, "timed out waiting for a frame"),
            TransportError::Io(e) => write!(f, "transport i/o error: {e}"),
        }
    }
}

impl std::error::Error for TransportError {}

impl From<io::Error> for TransportError {
    fn from(e: io::Error) -> Self {
        match e.kind() {
            io::ErrorKind::UnexpectedEof | io::ErrorKind::ConnectionReset => TransportError::Closed,
            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => TransportError::TimedOut,
            _ => TransportError::Io(e.to_string()),
        }
    }
}

/// Byte and frame counters, symmetric in both directions.
///
/// TCP transports include the 4-byte length prefix in the byte counts (it
/// crosses the wire); the in-memory transport counts it too so that local
/// and remote runs report comparable numbers.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct TransportStats {
    /// Frames sent by this endpoint.
    pub frames_sent: usize,
    /// Frames received by this endpoint.
    pub frames_received: usize,
    /// Bytes sent, including framing overhead.
    pub bytes_sent: usize,
    /// Bytes received, including framing overhead.
    pub bytes_received: usize,
}

/// A bidirectional, ordered, frame-preserving channel endpoint.
pub trait Transport: Send {
    /// Sends one frame.
    fn send_frame(&mut self, frame: &[u8]) -> Result<(), TransportError>;

    /// Receives the next frame, blocking up to the configured timeout.
    fn recv_frame(&mut self) -> Result<Vec<u8>, TransportError>;

    /// Traffic counters for this endpoint.
    fn stats(&self) -> TransportStats;
}

const FRAME_HEADER: usize = 4;

// ---------------------------------------------------------------------
// In-memory
// ---------------------------------------------------------------------

/// One endpoint of an in-process frame channel (see
/// [`InMemoryTransport::pair`]).
pub struct InMemoryTransport {
    tx: Sender<Vec<u8>>,
    rx: Receiver<Vec<u8>>,
    timeout: Option<Duration>,
    max_frame: usize,
    stats: TransportStats,
}

impl InMemoryTransport {
    /// A connected pair of endpoints: what one sends, the other receives.
    pub fn pair() -> (InMemoryTransport, InMemoryTransport) {
        let (tx_a, rx_b) = mpsc::channel();
        let (tx_b, rx_a) = mpsc::channel();
        let make = |tx, rx| InMemoryTransport {
            tx,
            rx,
            timeout: None,
            max_frame: DEFAULT_MAX_FRAME,
            stats: TransportStats::default(),
        };
        (make(tx_a, rx_a), make(tx_b, rx_b))
    }

    /// Sets the receive timeout (`None` blocks forever).
    pub fn set_timeout(&mut self, timeout: Option<Duration>) {
        self.timeout = timeout;
    }
}

impl Transport for InMemoryTransport {
    fn send_frame(&mut self, frame: &[u8]) -> Result<(), TransportError> {
        if frame.len() > self.max_frame {
            return Err(TransportError::FrameTooLarge {
                len: frame.len(),
                max: self.max_frame,
            });
        }
        self.tx
            .send(frame.to_vec())
            .map_err(|_| TransportError::Closed)?;
        self.stats.frames_sent += 1;
        self.stats.bytes_sent += FRAME_HEADER + frame.len();
        Ok(())
    }

    fn recv_frame(&mut self) -> Result<Vec<u8>, TransportError> {
        let frame = match self.timeout {
            Some(t) => self.rx.recv_timeout(t).map_err(|e| match e {
                RecvTimeoutError::Timeout => TransportError::TimedOut,
                RecvTimeoutError::Disconnected => TransportError::Closed,
            })?,
            None => self.rx.recv().map_err(|_| TransportError::Closed)?,
        };
        self.stats.frames_received += 1;
        self.stats.bytes_received += FRAME_HEADER + frame.len();
        Ok(frame)
    }

    fn stats(&self) -> TransportStats {
        self.stats
    }
}

// ---------------------------------------------------------------------
// Framed TCP
// ---------------------------------------------------------------------

/// Length-prefixed frames over a `TcpStream`.
///
/// Wire layout per frame: `len: u32 LE` followed by `len` payload bytes.
/// The stream runs with `TCP_NODELAY` (interactive protocols send many tiny
/// frames; Nagle would serialise the rounds on RTTs).
pub struct FramedTcpTransport {
    stream: TcpStream,
    max_frame: usize,
    stats: TransportStats,
}

impl FramedTcpTransport {
    /// Wraps a connected stream with the default frame cap.
    pub fn new(stream: TcpStream) -> io::Result<Self> {
        Self::with_max_frame(stream, DEFAULT_MAX_FRAME)
    }

    /// Wraps a connected stream with an explicit frame cap.
    pub fn with_max_frame(stream: TcpStream, max_frame: usize) -> io::Result<Self> {
        stream.set_nodelay(true)?;
        Ok(FramedTcpTransport {
            stream,
            max_frame,
            stats: TransportStats::default(),
        })
    }

    /// Sets the socket read timeout (`None` blocks forever).
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    /// The peer's address, for logging.
    pub fn peer_addr(&self) -> io::Result<std::net::SocketAddr> {
        self.stream.peer_addr()
    }

    /// Reads exactly `buf.len()` bytes, mapping EOF/timeout to transport
    /// errors.
    fn read_exact(&mut self, buf: &mut [u8]) -> Result<(), TransportError> {
        self.stream.read_exact(buf)?;
        Ok(())
    }
}

impl Transport for FramedTcpTransport {
    fn send_frame(&mut self, frame: &[u8]) -> Result<(), TransportError> {
        if frame.len() > self.max_frame {
            return Err(TransportError::FrameTooLarge {
                len: frame.len(),
                max: self.max_frame,
            });
        }
        let len = (frame.len() as u32).to_le_bytes();
        // One write per frame keeps packets small and avoids interleaving
        // surprises if a transport is ever shared across threads.
        let mut packet = Vec::with_capacity(FRAME_HEADER + frame.len());
        packet.extend_from_slice(&len);
        packet.extend_from_slice(frame);
        self.stream.write_all(&packet)?;
        self.stats.frames_sent += 1;
        self.stats.bytes_sent += packet.len();
        Ok(())
    }

    fn recv_frame(&mut self) -> Result<Vec<u8>, TransportError> {
        let mut header = [0u8; FRAME_HEADER];
        self.read_exact(&mut header)?;
        let len = u32::from_le_bytes(header) as usize;
        if len > self.max_frame {
            return Err(TransportError::FrameTooLarge {
                len,
                max: self.max_frame,
            });
        }
        let mut frame = vec![0u8; len];
        self.read_exact(&mut frame)?;
        self.stats.frames_received += 1;
        self.stats.bytes_received += FRAME_HEADER + len;
        Ok(frame)
    }

    fn stats(&self) -> TransportStats {
        self.stats
    }
}

// ---------------------------------------------------------------------
// Injected latency
// ---------------------------------------------------------------------

/// A [`Transport`] wrapper that injects a deterministic artificial delay
/// before each received frame: a fixed `rtt` plus a jitter drawn from a
/// seeded xorshift64* sequence. The same `(rtt, jitter, seed)` always
/// produces the same delay sequence ([`LatencyTransport::delay_sequence`]),
/// so latency experiments (`bench_rtt`) and tests are reproducible.
///
/// The delay is applied on the *receive* side — one sleep per frame models
/// one network traversal, so a request/response exchange over a wrapped
/// client transport costs one injected RTT per round, which is exactly the
/// quantity the per-round `wire_wait` spans decompose.
pub struct LatencyTransport<T: Transport> {
    inner: T,
    rtt: Duration,
    jitter: Duration,
    state: u64,
}

impl<T: Transport> LatencyTransport<T> {
    /// Wraps `inner` with a fixed per-frame receive delay of `rtt` plus a
    /// deterministic jitter in `[0, jitter]` derived from `seed`.
    pub fn new(inner: T, rtt: Duration, jitter: Duration, seed: u64) -> Self {
        LatencyTransport {
            inner,
            rtt,
            jitter,
            // xorshift64* must not start at 0 (it would stay there).
            state: seed | 1,
        }
    }

    /// Wraps `inner` with a fixed per-frame receive delay and no jitter.
    pub fn fixed(inner: T, rtt: Duration) -> Self {
        Self::new(inner, rtt, Duration::ZERO, 1)
    }

    /// The wrapped transport.
    pub fn into_inner(self) -> T {
        self.inner
    }

    fn next_delay(&mut self) -> Duration {
        self.rtt + Self::jitter_step(&mut self.state, self.jitter)
    }

    fn jitter_step(state: &mut u64, jitter: Duration) -> Duration {
        let mut x = *state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *state = x;
        if jitter.is_zero() {
            return Duration::ZERO;
        }
        let draw = x.wrapping_mul(0x2545_F491_4F6C_DD1D);
        Duration::from_micros(draw % (u64::try_from(jitter.as_micros()).unwrap_or(u64::MAX) + 1))
    }

    /// The first `n` delays a transport built with these parameters will
    /// inject, without sleeping — what the determinism proptest checks.
    pub fn delay_sequence(rtt: Duration, jitter: Duration, seed: u64, n: usize) -> Vec<Duration> {
        let mut state = seed | 1;
        (0..n)
            .map(|_| rtt + Self::jitter_step(&mut state, jitter))
            .collect()
    }
}

impl<T: Transport> Transport for LatencyTransport<T> {
    fn send_frame(&mut self, frame: &[u8]) -> Result<(), TransportError> {
        self.inner.send_frame(frame)
    }

    fn recv_frame(&mut self) -> Result<Vec<u8>, TransportError> {
        let frame = self.inner.recv_frame()?;
        let delay = self.next_delay();
        // Skip the syscall entirely at zero so an rtt=0 sweep point is an
        // honest baseline, not a pile of sleep(0) calls.
        if !delay.is_zero() {
            std::thread::sleep(delay);
        }
        Ok(frame)
    }

    fn stats(&self) -> TransportStats {
        self.inner.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};
    use std::thread;

    #[test]
    fn in_memory_roundtrip_and_stats() {
        let (mut a, mut b) = InMemoryTransport::pair();
        a.send_frame(b"hello").unwrap();
        a.send_frame(b"").unwrap();
        assert_eq!(b.recv_frame().unwrap(), b"hello");
        assert_eq!(b.recv_frame().unwrap(), b"");
        assert_eq!(a.stats().frames_sent, 2);
        assert_eq!(a.stats().bytes_sent, 4 + 5 + 4);
        assert_eq!(b.stats().frames_received, 2);
        assert_eq!(b.stats().bytes_received, 4 + 5 + 4);
    }

    #[test]
    fn in_memory_closed_and_timeout() {
        let (a, mut b) = InMemoryTransport::pair();
        b.set_timeout(Some(Duration::from_millis(10)));
        assert_eq!(b.recv_frame().unwrap_err(), TransportError::TimedOut);
        drop(a);
        assert_eq!(b.recv_frame().unwrap_err(), TransportError::Closed);
    }

    fn tcp_pair() -> (FramedTcpTransport, FramedTcpTransport) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let join = thread::spawn(move || listener.accept().unwrap().0);
        let client = TcpStream::connect(addr).unwrap();
        let server = join.join().unwrap();
        (
            FramedTcpTransport::new(client).unwrap(),
            FramedTcpTransport::new(server).unwrap(),
        )
    }

    #[test]
    fn tcp_roundtrip_both_directions() {
        let (mut c, mut s) = tcp_pair();
        c.send_frame(&[1, 2, 3]).unwrap();
        assert_eq!(s.recv_frame().unwrap(), vec![1, 2, 3]);
        s.send_frame(&[9; 1000]).unwrap();
        assert_eq!(c.recv_frame().unwrap(), vec![9; 1000]);
        assert_eq!(c.stats().bytes_sent, 7);
        assert_eq!(c.stats().bytes_received, 1004);
        assert_eq!(s.stats().bytes_received, 7);
        assert_eq!(s.stats().bytes_sent, 1004);
    }

    #[test]
    fn tcp_rejects_oversized_announcement() {
        let (mut c, mut s) = tcp_pair();
        let mut small =
            FramedTcpTransport::with_max_frame(c.stream.try_clone().unwrap(), 16).unwrap();
        // Announce a 1 GiB frame by hand.
        c.stream.write_all(&(1u32 << 30).to_le_bytes()).unwrap();
        drop(c);
        let err = s.recv_frame().unwrap_err();
        assert!(
            matches!(err, TransportError::FrameTooLarge { len, .. } if len == 1 << 30),
            "{err:?}"
        );
        // And sending over the cap fails locally before any bytes move.
        let err = small.send_frame(&[0u8; 17]).unwrap_err();
        assert_eq!(err, TransportError::FrameTooLarge { len: 17, max: 16 });
    }

    #[test]
    fn tcp_eof_is_closed() {
        let (c, mut s) = tcp_pair();
        drop(c);
        assert_eq!(s.recv_frame().unwrap_err(), TransportError::Closed);
    }

    #[test]
    fn tcp_timeout_fires() {
        let (_c, mut s) = tcp_pair();
        s.set_timeout(Some(Duration::from_millis(20))).unwrap();
        assert_eq!(s.recv_frame().unwrap_err(), TransportError::TimedOut);
    }

    #[test]
    fn latency_transport_delays_receives_and_passes_frames() {
        let (mut a, b) = InMemoryTransport::pair();
        let mut b = LatencyTransport::fixed(b, Duration::from_millis(15));
        a.send_frame(b"ping").unwrap();
        let start = std::time::Instant::now();
        assert_eq!(b.recv_frame().unwrap(), b"ping");
        assert!(start.elapsed() >= Duration::from_millis(15));
        // Sends pass straight through; stats come from the inner transport.
        b.send_frame(b"pong").unwrap();
        assert_eq!(a.recv_frame().unwrap(), b"pong");
        assert_eq!(b.stats().frames_sent, 1);
        assert_eq!(b.stats().frames_received, 1);
    }

    #[test]
    fn latency_delay_sequence_is_deterministic_and_matches_live() {
        let rtt = Duration::from_micros(100);
        let jitter = Duration::from_micros(50);
        let expected = LatencyTransport::<InMemoryTransport>::delay_sequence(rtt, jitter, 42, 8);
        let again = LatencyTransport::<InMemoryTransport>::delay_sequence(rtt, jitter, 42, 8);
        assert_eq!(expected, again);
        for d in &expected {
            assert!(*d >= rtt && *d <= rtt + jitter, "{d:?}");
        }
        // A live transport draws the same sequence.
        let (_a, b) = InMemoryTransport::pair();
        let mut live = LatencyTransport::new(b, rtt, jitter, 42);
        let drawn: Vec<Duration> = (0..8).map(|_| live.next_delay()).collect();
        assert_eq!(drawn, expected);
    }
}

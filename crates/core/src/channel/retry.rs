//! Retry with decorrelated-jitter backoff for transient channel faults.
//!
//! The verifier's failure philosophy distinguishes two worlds:
//!
//! * **Transient I/O faults** ([`Rejection::Io`]) — a refused dial, a
//!   timeout, a reset socket. Nothing about the *proof* went wrong; the
//!   bytes never arrived. Retrying (or failing over to a replica) is
//!   sound, because every accepted answer is still verified against the
//!   caller's own digests.
//! * **Soundness faults** — everything else. A proof that failed its
//!   round checks, a transcript digest that did not replay, a malformed
//!   frame that *did* arrive. Retrying these would mean offering a caught
//!   liar another throw of the dice, so [`RetryPolicy::run`] never does:
//!   a non-transient rejection aborts the attempt loop immediately.
//!
//! Backoff is *decorrelated jitter* (`delay ← min(cap, uniform(base,
//! 3·delay))`) drawn from a seeded xorshift64* stream, so a fleet of
//! clients spreads its reconnect storm instead of thundering in lockstep —
//! and the same seed always produces the same delay sequence
//! ([`RetryPolicy::backoff_sequence`]), which is what the determinism
//! tests pin. The clock is injectable: [`RetryPolicy::run_with_sleeper`]
//! takes the sleep function, so tests observe the exact delays without
//! sleeping through them.

use std::time::Duration;

use crate::error::Rejection;

/// How often, how patiently, and how politely to retry an operation whose
/// socket can die.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts (first try included). `1` disables retrying.
    pub attempts: u32,
    /// First backoff delay, and the lower bound of every later draw.
    pub base: Duration,
    /// Upper bound on any single backoff delay.
    pub cap: Duration,
    /// Per-attempt deadline: connect/read timeout each try runs under.
    pub op_deadline: Duration,
    /// Seed of the decorrelated-jitter stream (same seed → same delays).
    pub seed: u64,
}

impl RetryPolicy {
    /// No retries: one attempt, fail on the first fault. The default for
    /// bare connects, so existing callers keep their exact behaviour.
    pub fn none() -> Self {
        RetryPolicy {
            attempts: 1,
            base: Duration::ZERO,
            cap: Duration::ZERO,
            op_deadline: Duration::from_secs(10),
            seed: 1,
        }
    }

    /// The fleet default: three attempts, 25 ms–1 s decorrelated jitter,
    /// 10 s per-attempt deadline.
    pub fn standard() -> Self {
        RetryPolicy {
            attempts: 3,
            base: Duration::from_millis(25),
            cap: Duration::from_secs(1),
            op_deadline: Duration::from_secs(10),
            seed: 0x5eed,
        }
    }

    /// Same policy with a different jitter seed (one per endpoint, so a
    /// fleet's reconnects decorrelate).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Same policy with a different per-attempt deadline.
    pub fn with_deadline(mut self, op_deadline: Duration) -> Self {
        self.op_deadline = op_deadline;
        self
    }

    /// The exact backoff delays this policy will sleep between attempts
    /// (`attempts − 1` entries), without sleeping them — what the
    /// determinism tests compare against a live run.
    pub fn backoff_sequence(&self) -> Vec<Duration> {
        let mut state = Self::mix_seed(self.seed);
        let mut prev = self.base;
        (1..self.attempts)
            .map(|_| {
                let d = Self::decorrelated_step(&mut state, self.base, self.cap, prev);
                prev = d;
                d
            })
            .collect()
    }

    /// Spreads adjacent seeds across the state space (xorshift64* must not
    /// start at 0, and `seed | 1` alone would alias seed 2k with 2k+1).
    fn mix_seed(seed: u64) -> u64 {
        seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1
    }

    /// One decorrelated-jitter draw: `min(cap, uniform(base, 3·prev))`,
    /// from a xorshift64* stream.
    fn decorrelated_step(
        state: &mut u64,
        base: Duration,
        cap: Duration,
        prev: Duration,
    ) -> Duration {
        let mut x = *state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *state = x;
        let lo = base.as_micros() as u64;
        let hi = (prev.as_micros() as u64).saturating_mul(3).max(lo + 1);
        let draw = x.wrapping_mul(0x2545_F491_4F6C_DD1D);
        let us = lo + draw % (hi - lo);
        Duration::from_micros(us).min(cap)
    }

    /// Runs `op` under this policy, sleeping with `std::thread::sleep`.
    /// `op` receives the 0-based attempt number. Transient rejections
    /// ([`Rejection::is_transient`]) are retried until the attempts run
    /// out; soundness rejections are returned immediately, never retried.
    pub fn run<T>(&self, mut op: impl FnMut(u32) -> Result<T, Rejection>) -> Result<T, Rejection> {
        self.run_observed(&mut op, |_, _, _| {})
    }

    /// [`Self::run`] with a retry observer: `on_retry(attempt, cause,
    /// backoff)` fires before each backoff sleep, so callers can count
    /// retries into their metrics without the policy depending on any
    /// metrics crate.
    pub fn run_observed<T>(
        &self,
        op: &mut dyn FnMut(u32) -> Result<T, Rejection>,
        on_retry: impl FnMut(u32, &Rejection, Duration),
    ) -> Result<T, Rejection> {
        self.run_with_sleeper(op, &mut std::thread::sleep, on_retry)
    }

    /// The fully injectable core: caller supplies the sleep function (the
    /// "clock") and the retry observer. Tests pass a recording closure and
    /// never actually sleep.
    pub fn run_with_sleeper<T>(
        &self,
        op: &mut dyn FnMut(u32) -> Result<T, Rejection>,
        sleep: &mut dyn FnMut(Duration),
        mut on_retry: impl FnMut(u32, &Rejection, Duration),
    ) -> Result<T, Rejection> {
        let mut state = Self::mix_seed(self.seed);
        let mut prev = self.base;
        let attempts = self.attempts.max(1);
        let mut last = None;
        for attempt in 0..attempts {
            match op(attempt) {
                Ok(v) => return Ok(v),
                Err(e) if e.is_transient() && attempt + 1 < attempts => {
                    let backoff = Self::decorrelated_step(&mut state, self.base, self.cap, prev);
                    prev = backoff;
                    on_retry(attempt, &e, backoff);
                    if !backoff.is_zero() {
                        sleep(backoff);
                    }
                    last = Some(e);
                }
                Err(e) => return Err(e),
            }
        }
        // Unreachable unless attempts == 0 was clamped; the loop always
        // returns on its last iteration.
        Err(last.unwrap_or(Rejection::MalformedAnswer {
            detail: "retry loop ran zero attempts".into(),
        }))
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::IoFault;

    fn io() -> Rejection {
        Rejection::Io {
            fault: IoFault::Closed,
            detail: "test".into(),
        }
    }

    #[test]
    fn backoff_sequence_is_deterministic_and_bounded() {
        let p = RetryPolicy {
            attempts: 6,
            base: Duration::from_millis(10),
            cap: Duration::from_millis(300),
            op_deadline: Duration::from_secs(1),
            seed: 42,
        };
        let a = p.backoff_sequence();
        let b = p.backoff_sequence();
        assert_eq!(a, b);
        assert_eq!(a.len(), 5);
        for d in &a {
            assert!(*d >= p.base && *d <= p.cap, "{d:?}");
        }
        // A different seed draws a different sequence.
        assert_ne!(a, p.with_seed(43).backoff_sequence());
    }

    #[test]
    fn transient_faults_retry_until_success() {
        let p = RetryPolicy::standard().with_seed(7);
        let mut slept = Vec::new();
        let mut calls = 0;
        let out = p.run_with_sleeper(
            &mut |attempt| {
                calls += 1;
                if attempt < 2 {
                    Err(io())
                } else {
                    Ok(attempt)
                }
            },
            &mut |d| slept.push(d),
            |_, _, _| {},
        );
        assert_eq!(out.unwrap(), 2);
        assert_eq!(calls, 3);
        assert_eq!(slept, p.backoff_sequence()[..2].to_vec());
    }

    #[test]
    fn soundness_faults_are_never_retried() {
        let p = RetryPolicy::standard();
        let mut calls = 0;
        let out: Result<(), _> = p.run_with_sleeper(
            &mut |_| {
                calls += 1;
                Err(Rejection::FinalCheckFailed)
            },
            &mut |_| panic!("must not sleep for a soundness fault"),
            |_, _, _| {},
        );
        assert_eq!(out.unwrap_err(), Rejection::FinalCheckFailed);
        assert_eq!(calls, 1, "a caught lie gets no second throw");
    }

    #[test]
    fn exhausted_attempts_return_the_last_transient_fault() {
        let p = RetryPolicy::standard();
        let mut observed = 0;
        let out: Result<(), _> = p.run_observed(&mut |_| Err(io()), |_, cause, _| {
            assert!(cause.is_transient());
            observed += 1;
        });
        assert_eq!(out.unwrap_err(), io());
        assert_eq!(observed, 2, "two retries after the first failure");
    }
}

//! Deterministic chaos injection for the prover↔verifier channel.
//!
//! A [`FaultTransport`] wraps any [`Transport`] and misbehaves according to
//! a [`FaultPlan`]: refuse the connection, stall past the deadline, cut the
//! stream mid-conversation, reset after a byte budget, drip frames slowly,
//! or flip a byte inside a chosen frame. Every decision is a pure function
//! of the plan and the transport's own frame/byte counters — never of wall
//! time or OS scheduling — so the same plan replays the same fault at the
//! same point in the conversation on every run. That determinism is what
//! lets the chaos matrix assert *exact* client-visible outcomes (which
//! typed [`Rejection`] with which blamed party) instead of "some error".
//!
//! The first five classes are channel faults: the bytes stop arriving, and
//! the client must see a transient [`Rejection::Io`] it may retry or fail
//! over. `FlipByte` is different in kind — the bytes *do* arrive, altered —
//! so the verifier must catch it as a soundness fault (digest mismatch or
//! decode failure), and nothing may retry it. Keeping both in one injector
//! is the point: the test matrix proves the two worlds never blur.
//!
//! [`Rejection`]: crate::error::Rejection
//! [`Rejection::Io`]: crate::error::Rejection::Io

use std::time::Duration;

use super::transport::{Transport, TransportError, TransportStats};

/// One misbehaviour, scheduled against the transport's own counters.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Fault {
    /// No fault: a transparent wrapper (the matrix's control column).
    None,
    /// Every operation fails as if nothing were listening.
    ConnRefused,
    /// After `after_frames` frames have been received, the peer goes
    /// silent: receives report [`TransportError::TimedOut`] immediately
    /// (the deadline is simulated, not slept through).
    Stall {
        /// Frames delivered before the silence begins.
        after_frames: u32,
    },
    /// After `after_frames` frames have been received, the stream is cut:
    /// the next receive sees [`TransportError::Closed`], as a SIGKILLed
    /// peer's socket would report mid-frame.
    CutMidFrame {
        /// Frames delivered before the cut.
        after_frames: u32,
    },
    /// The connection resets once total traffic (both directions, frame
    /// headers included) exceeds `bytes`.
    ResetAfterBytes {
        /// Byte budget before the reset.
        bytes: u64,
    },
    /// Every received frame is delayed by `per_frame`. The conversation
    /// completes — slowly. Exercises the deadline math without any
    /// terminal fault.
    SlowDrip {
        /// Injected delay per received frame.
        per_frame: Duration,
    },
    /// XORs `0x01` into one byte of received frame number `frame`
    /// (0-based; byte index taken modulo the frame length). The channel
    /// stays healthy; the *content* lies.
    FlipByte {
        /// Which received frame to corrupt.
        frame: u32,
        /// Which byte within it (modulo length).
        byte: u32,
    },
}

impl Fault {
    /// Stable label for metrics, logs, and the chaos matrix.
    pub fn class(&self) -> &'static str {
        match self {
            Fault::None => "none",
            Fault::ConnRefused => "conn_refused",
            Fault::Stall { .. } => "stall",
            Fault::CutMidFrame { .. } => "cut_mid_frame",
            Fault::ResetAfterBytes { .. } => "reset_after_bytes",
            Fault::SlowDrip { .. } => "slow_drip",
            Fault::FlipByte { .. } => "flip_byte",
        }
    }
}

/// A seeded, replayable schedule of one fault.
///
/// [`FaultPlan::seeded`] derives the fault class and its parameters from a
/// xorshift64* stream, so a single `u64` names a complete interleaving and
/// the proptest "same seed → same fault sequence → same client-visible
/// result" has something to hold on to.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    /// The scheduled misbehaviour.
    pub fault: Fault,
    /// The seed this plan was derived from (0 for hand-built plans).
    pub seed: u64,
}

impl FaultPlan {
    /// A transparent plan: no fault.
    pub fn none() -> Self {
        FaultPlan {
            fault: Fault::None,
            seed: 0,
        }
    }

    /// Refuse every operation.
    pub fn conn_refused() -> Self {
        FaultPlan {
            fault: Fault::ConnRefused,
            seed: 0,
        }
    }

    /// Go silent after `after_frames` received frames.
    pub fn stall_after(after_frames: u32) -> Self {
        FaultPlan {
            fault: Fault::Stall { after_frames },
            seed: 0,
        }
    }

    /// Cut the stream after `after_frames` received frames.
    pub fn cut_after(after_frames: u32) -> Self {
        FaultPlan {
            fault: Fault::CutMidFrame { after_frames },
            seed: 0,
        }
    }

    /// Reset once `bytes` total bytes have crossed (both directions).
    pub fn reset_after_bytes(bytes: u64) -> Self {
        FaultPlan {
            fault: Fault::ResetAfterBytes { bytes },
            seed: 0,
        }
    }

    /// Delay every received frame by `per_frame`.
    pub fn slow_drip(per_frame: Duration) -> Self {
        FaultPlan {
            fault: Fault::SlowDrip { per_frame },
            seed: 0,
        }
    }

    /// Corrupt one byte of received frame `frame`.
    pub fn flip_byte(frame: u32, byte: u32) -> Self {
        FaultPlan {
            fault: Fault::FlipByte { frame, byte },
            seed: 0,
        }
    }

    /// Derives a complete plan — fault class and parameters — from `seed`.
    /// The same seed always yields the same plan.
    pub fn seeded(seed: u64) -> Self {
        // Spread adjacent seeds across the state space; xorshift64* must
        // not start at 0.
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut draw = || {
            let mut x = state;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        };
        let fault = match draw() % 6 {
            0 => Fault::ConnRefused,
            1 => Fault::Stall {
                after_frames: (draw() % 8) as u32,
            },
            2 => Fault::CutMidFrame {
                after_frames: (draw() % 8) as u32,
            },
            3 => Fault::ResetAfterBytes {
                bytes: 16 + draw() % 4096,
            },
            4 => Fault::SlowDrip {
                per_frame: Duration::from_micros(100 + draw() % 900),
            },
            _ => Fault::FlipByte {
                frame: (draw() % 8) as u32,
                byte: (draw() % 64) as u32,
            },
        };
        FaultPlan { fault, seed }
    }

    /// Stable label of the scheduled fault class.
    pub fn fault_class(&self) -> &'static str {
        self.fault.class()
    }
}

/// A [`Transport`] wrapper that executes a [`FaultPlan`].
///
/// Terminal faults are *sticky*: once tripped, every subsequent operation
/// fails with the same error — a dead socket does not come back. The
/// injection log ([`FaultTransport::injected`]) records each event with
/// the counter values it fired at, giving tests a byte-exact trace to
/// compare across replays.
pub struct FaultTransport<T: Transport> {
    inner: T,
    plan: FaultPlan,
    frames_in: u32,
    frames_out: u32,
    bytes: u64,
    tripped: Option<TransportError>,
    log: Vec<String>,
}

const FRAME_HEADER: u64 = 4;

impl<T: Transport> FaultTransport<T> {
    /// Wraps `inner` under `plan`.
    pub fn new(inner: T, plan: FaultPlan) -> Self {
        FaultTransport {
            inner,
            plan,
            frames_in: 0,
            frames_out: 0,
            bytes: 0,
            tripped: None,
            log: Vec::new(),
        }
    }

    /// The plan this transport is executing.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Every fault event injected so far, in order, with the frame/byte
    /// counters at which it fired. Two runs of the same plan over the same
    /// conversation produce identical logs.
    pub fn injected(&self) -> &[String] {
        &self.log
    }

    /// The wrapped transport.
    pub fn into_inner(self) -> T {
        self.inner
    }

    fn trip(&mut self, err: TransportError, what: &str) -> TransportError {
        self.log.push(format!(
            "{what} at frames_in={} frames_out={} bytes={}",
            self.frames_in, self.frames_out, self.bytes
        ));
        self.tripped = Some(err.clone());
        err
    }

    /// Checks trip conditions that apply to *both* directions.
    fn check_common(&mut self) -> Result<(), TransportError> {
        if let Some(err) = &self.tripped {
            return Err(err.clone());
        }
        match self.plan.fault {
            Fault::ConnRefused => Err(self.trip(
                TransportError::Io("connection refused (injected)".into()),
                "conn_refused",
            )),
            Fault::ResetAfterBytes { bytes } if self.bytes >= bytes => {
                Err(self.trip(TransportError::Closed, "reset_after_bytes"))
            }
            _ => Ok(()),
        }
    }
}

impl<T: Transport> Transport for FaultTransport<T> {
    fn send_frame(&mut self, frame: &[u8]) -> Result<(), TransportError> {
        self.check_common()?;
        self.inner.send_frame(frame)?;
        self.frames_out += 1;
        self.bytes += FRAME_HEADER + frame.len() as u64;
        Ok(())
    }

    fn recv_frame(&mut self) -> Result<Vec<u8>, TransportError> {
        self.check_common()?;
        match self.plan.fault {
            Fault::Stall { after_frames } if self.frames_in >= after_frames => {
                return Err(self.trip(TransportError::TimedOut, "stall"));
            }
            Fault::CutMidFrame { after_frames } if self.frames_in >= after_frames => {
                return Err(self.trip(TransportError::Closed, "cut_mid_frame"));
            }
            _ => {}
        }
        let mut frame = self.inner.recv_frame()?;
        if let Fault::SlowDrip { per_frame } = self.plan.fault {
            if !per_frame.is_zero() {
                std::thread::sleep(per_frame);
            }
        }
        if let Fault::FlipByte { frame: at, byte } = self.plan.fault {
            if self.frames_in == at && !frame.is_empty() {
                let idx = byte as usize % frame.len();
                frame[idx] ^= 0x01;
                self.log.push(format!(
                    "flip_byte frame={at} byte={idx} at frames_in={} bytes={}",
                    self.frames_in, self.bytes
                ));
            }
        }
        self.frames_in += 1;
        self.bytes += FRAME_HEADER + frame.len() as u64;
        Ok(frame)
    }

    fn stats(&self) -> TransportStats {
        self.inner.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::InMemoryTransport;

    fn pair(plan: FaultPlan) -> (FaultTransport<InMemoryTransport>, InMemoryTransport) {
        let (a, b) = InMemoryTransport::pair();
        (FaultTransport::new(a, plan), b)
    }

    #[test]
    fn none_is_transparent() {
        let (mut a, mut b) = pair(FaultPlan::none());
        a.send_frame(b"hi").unwrap();
        assert_eq!(b.recv_frame().unwrap(), b"hi");
        b.send_frame(b"yo").unwrap();
        assert_eq!(a.recv_frame().unwrap(), b"yo");
        assert!(a.injected().is_empty());
    }

    #[test]
    fn conn_refused_fails_every_operation() {
        let (mut a, _b) = pair(FaultPlan::conn_refused());
        let err = a.send_frame(b"hi").unwrap_err();
        assert!(
            matches!(err, TransportError::Io(ref s) if s.contains("refused")),
            "{err:?}"
        );
        // Sticky: the recv fails identically without reaching the queue.
        let err2 = a.recv_frame().unwrap_err();
        assert_eq!(err, err2);
        assert_eq!(a.injected().len(), 1, "one trip event, then cached");
    }

    #[test]
    fn stall_times_out_after_budget_without_sleeping() {
        let (mut a, mut b) = pair(FaultPlan::stall_after(1));
        b.send_frame(b"one").unwrap();
        b.send_frame(b"two").unwrap();
        assert_eq!(a.recv_frame().unwrap(), b"one");
        let start = std::time::Instant::now();
        assert_eq!(a.recv_frame().unwrap_err(), TransportError::TimedOut);
        assert!(
            start.elapsed() < Duration::from_millis(50),
            "simulated, not slept"
        );
        // Sticky.
        assert_eq!(a.recv_frame().unwrap_err(), TransportError::TimedOut);
        assert_eq!(a.send_frame(b"x").unwrap_err(), TransportError::TimedOut);
    }

    #[test]
    fn cut_closes_after_budget() {
        let (mut a, mut b) = pair(FaultPlan::cut_after(0));
        b.send_frame(b"never seen").unwrap();
        assert_eq!(a.recv_frame().unwrap_err(), TransportError::Closed);
    }

    #[test]
    fn reset_after_bytes_counts_both_directions() {
        let (mut a, mut b) = pair(FaultPlan::reset_after_bytes(20));
        a.send_frame(&[0u8; 8]).unwrap(); // 12 bytes with header
        b.send_frame(&[0u8; 8]).unwrap();
        assert_eq!(a.recv_frame().unwrap(), vec![0u8; 8]); // 24 total — over budget
        assert_eq!(a.send_frame(b"x").unwrap_err(), TransportError::Closed);
        assert_eq!(a.recv_frame().unwrap_err(), TransportError::Closed);
    }

    #[test]
    fn slow_drip_delays_but_completes() {
        let (mut a, mut b) = pair(FaultPlan::slow_drip(Duration::from_millis(5)));
        b.send_frame(b"drip").unwrap();
        let start = std::time::Instant::now();
        assert_eq!(a.recv_frame().unwrap(), b"drip");
        assert!(start.elapsed() >= Duration::from_millis(5));
    }

    #[test]
    fn flip_byte_corrupts_exactly_one_byte_of_one_frame() {
        let (mut a, mut b) = pair(FaultPlan::flip_byte(1, 2));
        b.send_frame(&[10, 20, 30]).unwrap();
        b.send_frame(&[10, 20, 30]).unwrap();
        b.send_frame(&[10, 20, 30]).unwrap();
        assert_eq!(a.recv_frame().unwrap(), vec![10, 20, 30]);
        assert_eq!(
            a.recv_frame().unwrap(),
            vec![10, 20, 31],
            "bit 0 of byte 2 flipped"
        );
        assert_eq!(a.recv_frame().unwrap(), vec![10, 20, 30]);
        assert_eq!(a.injected().len(), 1);
    }

    #[test]
    fn seeded_plans_replay_identically() {
        for seed in 0..64u64 {
            assert_eq!(FaultPlan::seeded(seed), FaultPlan::seeded(seed));
        }
        // And the classes are actually diverse across seeds.
        let classes: std::collections::BTreeSet<&str> = (0..64)
            .map(|s| FaultPlan::seeded(s).fault_class())
            .collect();
        assert!(classes.len() >= 5, "{classes:?}");
    }
}

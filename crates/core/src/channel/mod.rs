//! The channel between prover and verifier: cost accounting and transports.
//!
//! The paper abstracts the conversation as messages of field elements and
//! measures it in words ([`CostReport`]). This module also provides the
//! *physical* channel: a [`Transport`] moves opaque frames between the two
//! parties, either within one process ([`InMemoryTransport`]) or across a
//! network ([`FramedTcpTransport`]). Every protocol in this workspace is
//! driven the same way over both — the point of the outsourcing model is
//! that the prover lives somewhere else.

mod cost;
mod fault;
mod retry;
mod transport;

pub use cost::{ClusterCostReport, CostReport};
pub use fault::{Fault, FaultPlan, FaultTransport};
pub use retry::RetryPolicy;
pub use transport::{
    FramedTcpTransport, InMemoryTransport, LatencyTransport, Transport, TransportError,
    TransportStats, DEFAULT_MAX_FRAME,
};

//! Cost accounting: the paper's `(s, t)` measures.
//!
//! The paper measures protocols in *words*, "where each word can represent
//! quantities polynomial in u" — concretely one field element. Every
//! orchestrated protocol run fills in a [`CostReport`]; the figure binaries
//! convert words to bytes exactly like the paper's Figures 2(c) and 3(b).
//! The `wire_overhead` bench binary cross-checks these word counts against
//! real bytes on a TCP socket (see [`crate::channel::transport`]).

/// Costs of one protocol execution.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct CostReport {
    /// Number of message exchanges (a round = one message in each
    /// direction; the initial un-prompted prover message counts as one).
    pub rounds: usize,
    /// Words sent from prover to verifier (the proof).
    pub p_to_v_words: usize,
    /// Words sent from verifier to prover (challenges and queries).
    pub v_to_p_words: usize,
    /// Verifier working memory in words (the paper's `s`).
    pub verifier_space_words: usize,
}

impl CostReport {
    /// Total communication `t` in words.
    pub fn total_words(&self) -> usize {
        self.p_to_v_words + self.v_to_p_words
    }

    /// Communication in bytes for a field of `bits`-bit elements, rounded up
    /// per word (the paper stores `2^61 − 1` residues in 8-byte words).
    pub fn comm_bytes(&self, bits: u32) -> usize {
        self.total_words() * Self::word_bytes(bits)
    }

    /// Verifier space in bytes.
    pub fn space_bytes(&self, bits: u32) -> usize {
        self.verifier_space_words * Self::word_bytes(bits)
    }

    fn word_bytes(bits: u32) -> usize {
        (bits as usize).div_ceil(8)
    }

    /// Accumulates another report (used when a protocol composes
    /// sub-protocols, e.g. frequency-based functions = heavy hitters +
    /// sum-check).
    pub fn absorb(&mut self, other: &CostReport) {
        self.rounds += other.rounds;
        self.p_to_v_words += other.p_to_v_words;
        self.v_to_p_words += other.v_to_p_words;
        self.verifier_space_words += other.verifier_space_words;
    }

    /// The report as `(name, value)` metric samples, named as the server
    /// exports them (`sip_server_last_cost_*`). One canonical list: the
    /// session layer publishes these as gauges on `Bye`, and anything else
    /// that wants cost-as-metrics reuses the same names.
    pub fn to_metrics(&self) -> [(&'static str, u64); 5] {
        [
            ("sip_server_last_cost_rounds", self.rounds as u64),
            (
                "sip_server_last_cost_p_to_v_words",
                self.p_to_v_words as u64,
            ),
            (
                "sip_server_last_cost_v_to_p_words",
                self.v_to_p_words as u64,
            ),
            (
                "sip_server_last_cost_verifier_space_words",
                self.verifier_space_words as u64,
            ),
            (
                "sip_server_last_cost_total_words",
                self.total_words() as u64,
            ),
        ]
    }
}

/// The canonical human-readable block; every example prints costs through
/// this rather than hand-rolling its own lines.
///
/// ```text
/// rounds: 12  comm: 39 words (30 p->v, 9 v->p)  verifier space: 21 words
/// ```
impl std::fmt::Display for CostReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "rounds: {}  comm: {} words ({} p->v, {} v->p)  verifier space: {} words",
            self.rounds,
            self.total_words(),
            self.p_to_v_words,
            self.v_to_p_words,
            self.verifier_space_words
        )
    }
}

/// Cost accounting for a sharded run: one [`CostReport`] per prover shard
/// plus the aggregating verifier's own (shared) working memory.
///
/// Per-shard entries count only what moved on *that* shard's connection;
/// [`Self::total`] gives the fleet-wide grand totals. The verifier's space
/// is reported once at the cluster level — the sharded digests (one
/// accumulator per shard over a shared random point) are not per-connection
/// state and would be double-counted if spread across the shard reports.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ClusterCostReport {
    /// One report per shard, indexed by shard id.
    pub per_shard: Vec<CostReport>,
    /// The aggregating verifier's working memory in words (shared digest
    /// accumulators, per-shard claims, round state).
    pub verifier_space_words: usize,
}

impl ClusterCostReport {
    /// An empty report for a fleet of `shards` provers.
    pub fn new(shards: usize) -> Self {
        ClusterCostReport {
            per_shard: vec![CostReport::default(); shards],
            verifier_space_words: 0,
        }
    }

    /// Number of shards accounted.
    pub fn shards(&self) -> usize {
        self.per_shard.len()
    }

    /// Fleet-wide grand totals: communication and rounds summed over every
    /// shard connection, space from the cluster-level field (plus any
    /// per-shard session state a sub-protocol recorded there).
    pub fn total(&self) -> CostReport {
        let mut total = CostReport {
            verifier_space_words: self.verifier_space_words,
            ..CostReport::default()
        };
        for r in &self.per_shard {
            total.absorb(r);
        }
        total
    }

    /// Folds a sub-protocol's report into one shard's books.
    ///
    /// # Panics
    /// Panics if `shard` is out of range.
    pub fn absorb_shard(&mut self, shard: usize, report: &CostReport) {
        self.per_shard[shard].absorb(report);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_conversion() {
        let r = CostReport {
            rounds: 10,
            p_to_v_words: 30,
            v_to_p_words: 9,
            verifier_space_words: 21,
        };
        assert_eq!(r.total_words(), 39);
        assert_eq!(r.comm_bytes(61), 39 * 8);
        assert_eq!(r.space_bytes(61), 21 * 8);
        assert_eq!(r.comm_bytes(127), 39 * 16);
    }

    #[test]
    fn display_and_metrics_agree_on_totals() {
        let r = CostReport {
            rounds: 12,
            p_to_v_words: 30,
            v_to_p_words: 9,
            verifier_space_words: 21,
        };
        assert_eq!(
            r.to_string(),
            "rounds: 12  comm: 39 words (30 p->v, 9 v->p)  verifier space: 21 words"
        );
        let metrics = r.to_metrics();
        assert_eq!(metrics[0], ("sip_server_last_cost_rounds", 12));
        assert_eq!(metrics[4], ("sip_server_last_cost_total_words", 39));
    }

    #[test]
    fn absorb_sums_fields() {
        let mut a = CostReport {
            rounds: 1,
            p_to_v_words: 2,
            v_to_p_words: 3,
            verifier_space_words: 4,
        };
        a.absorb(&CostReport {
            rounds: 10,
            p_to_v_words: 20,
            v_to_p_words: 30,
            verifier_space_words: 40,
        });
        assert_eq!(a.rounds, 11);
        assert_eq!(a.p_to_v_words, 22);
        assert_eq!(a.v_to_p_words, 33);
        assert_eq!(a.verifier_space_words, 44);
    }

    #[test]
    fn cluster_totals_sum_shards_and_keep_shared_space() {
        let mut c = ClusterCostReport::new(3);
        c.verifier_space_words = 17;
        c.absorb_shard(
            0,
            &CostReport {
                rounds: 4,
                p_to_v_words: 12,
                v_to_p_words: 3,
                verifier_space_words: 0,
            },
        );
        c.absorb_shard(
            2,
            &CostReport {
                rounds: 4,
                p_to_v_words: 13,
                v_to_p_words: 3,
                verifier_space_words: 0,
            },
        );
        assert_eq!(c.shards(), 3);
        let total = c.total();
        assert_eq!(total.rounds, 8);
        assert_eq!(total.p_to_v_words, 25);
        assert_eq!(total.v_to_p_words, 6);
        assert_eq!(total.verifier_space_words, 17);
        assert_eq!(c.per_shard[1], CostReport::default());
    }
}

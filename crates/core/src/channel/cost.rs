//! Cost accounting: the paper's `(s, t)` measures.
//!
//! The paper measures protocols in *words*, "where each word can represent
//! quantities polynomial in u" — concretely one field element. Every
//! orchestrated protocol run fills in a [`CostReport`]; the figure binaries
//! convert words to bytes exactly like the paper's Figures 2(c) and 3(b).
//! The `wire_overhead` bench binary cross-checks these word counts against
//! real bytes on a TCP socket (see [`crate::channel::transport`]).

/// Costs of one protocol execution.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct CostReport {
    /// Number of message exchanges (a round = one message in each
    /// direction; the initial un-prompted prover message counts as one).
    pub rounds: usize,
    /// Words sent from prover to verifier (the proof).
    pub p_to_v_words: usize,
    /// Words sent from verifier to prover (challenges and queries).
    pub v_to_p_words: usize,
    /// Verifier working memory in words (the paper's `s`).
    pub verifier_space_words: usize,
}

impl CostReport {
    /// Total communication `t` in words.
    pub fn total_words(&self) -> usize {
        self.p_to_v_words + self.v_to_p_words
    }

    /// Communication in bytes for a field of `bits`-bit elements, rounded up
    /// per word (the paper stores `2^61 − 1` residues in 8-byte words).
    pub fn comm_bytes(&self, bits: u32) -> usize {
        self.total_words() * Self::word_bytes(bits)
    }

    /// Verifier space in bytes.
    pub fn space_bytes(&self, bits: u32) -> usize {
        self.verifier_space_words * Self::word_bytes(bits)
    }

    fn word_bytes(bits: u32) -> usize {
        (bits as usize).div_ceil(8)
    }

    /// Accumulates another report (used when a protocol composes
    /// sub-protocols, e.g. frequency-based functions = heavy hitters +
    /// sum-check).
    pub fn absorb(&mut self, other: &CostReport) {
        self.rounds += other.rounds;
        self.p_to_v_words += other.p_to_v_words;
        self.v_to_p_words += other.v_to_p_words;
        self.verifier_space_words += other.verifier_space_words;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_conversion() {
        let r = CostReport {
            rounds: 10,
            p_to_v_words: 30,
            v_to_p_words: 9,
            verifier_space_words: 21,
        };
        assert_eq!(r.total_words(), 39);
        assert_eq!(r.comm_bytes(61), 39 * 8);
        assert_eq!(r.space_bytes(61), 21 * 8);
        assert_eq!(r.comm_bytes(127), 39 * 16);
    }

    #[test]
    fn absorb_sums_fields() {
        let mut a = CostReport {
            rounds: 1,
            p_to_v_words: 2,
            v_to_p_words: 3,
            verifier_space_words: 4,
        };
        a.absorb(&CostReport {
            rounds: 10,
            p_to_v_words: 20,
            v_to_p_words: 30,
            verifier_space_words: 40,
        });
        assert_eq!(a.rounds, 11);
        assert_eq!(a.p_to_v_words, 22);
        assert_eq!(a.v_to_p_words, 33);
        assert_eq!(a.verifier_space_words, 44);
    }
}

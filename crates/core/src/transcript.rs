//! Domain-separated transcript hashing for one-shot proofs.
//!
//! The post-stream sum-check is public-coin once the verifier's secret
//! evaluation point is fixed, so a one-shot run replaces the interactive
//! challenge exchange with a *transcript*: both sides absorb the same
//! canonical byte sequence (protocol id, field id, parameters, the revealed
//! challenge prefix, the claimed output, every round polynomial) into a
//! sponge and the verifier checks the prover's echoed digest byte-for-byte
//! before running any algebra. Random-linear-combination weights for the
//! deferred round checks are squeezed from the same sponge *after* the
//! digest, so they depend on the entire proof.
//!
//! ## The permutation
//!
//! The sponge runs a vendored, zero-dependency 384-bit Gimli-style
//! permutation (12×u32 state, 24 rounds, SP-box + swap + round constant)
//! with a 16-byte rate. This is a wire-compatibility surface, not a
//! tunable: the exact byte behaviour is pinned by golden vectors in
//! `tests/fixtures/` and any change is a protocol version bump.
//!
//! ## Domain separation
//!
//! Every absorbed item is framed as `len(label) ‖ label ‖ len(data) ‖ data`
//! (little-endian `u64` lengths), so distinct label sequences can never
//! collide by re-chunking, and the whole transcript is opened with a
//! domain string naming the protocol generation (`"sip-oneshot-v1"`).
//! [`query_transcript`] is the *single* canonical context builder — every
//! caller (in-process kv-store, remote session, cluster shard) seeds its
//! transcript through it, so a digest computed server-side always matches
//! the client-side replay.

use sip_field::PrimeField;

/// Sponge rate in bytes (the remaining 32 bytes of state are capacity).
const RATE: usize = 16;

/// The 384-bit Gimli-style permutation: 24 rounds of SP-box over four
/// 96-bit columns, with the standard small/big swaps and round constant.
fn permute(state: &mut [u32; 12]) {
    for round in (1..=24u32).rev() {
        for col in 0..4 {
            let x = state[col].rotate_left(24);
            let y = state[4 + col].rotate_left(9);
            let z = state[8 + col];
            state[8 + col] = x ^ (z << 1) ^ ((y & z) << 2);
            state[4 + col] = y ^ x ^ ((x | z) << 1);
            state[col] = z ^ y ^ ((x & y) << 3);
        }
        if round % 4 == 0 {
            state.swap(0, 1);
            state.swap(2, 3);
            state[0] ^= 0x9e37_7900 | round;
        } else if round % 4 == 2 {
            state.swap(0, 2);
            state.swap(1, 3);
        }
    }
}

/// A domain-separated absorb/squeeze transcript over the vendored sponge.
///
/// Usage is two-phase: absorb everything (labelled, length-prefixed), then
/// squeeze — first the 32-byte [`Self::digest`], then any number of
/// [`Self::challenge`] field elements. Absorbing after squeezing has begun
/// is a logic error and panics.
#[derive(Clone, Debug)]
pub struct Transcript {
    state: [u32; 12],
    /// Byte position within the current rate block.
    pos: usize,
    /// Set once squeezing starts; absorb is forbidden afterwards.
    squeezing: bool,
}

impl Transcript {
    /// Opens a transcript under a domain string naming the protocol
    /// generation (everything absorbed is separated from every other
    /// domain's transcripts).
    pub fn new(domain: &str) -> Self {
        let mut t = Transcript {
            state: [0u32; 12],
            pos: 0,
            squeezing: false,
        };
        t.absorb("domain", domain.as_bytes());
        t
    }

    fn absorb_byte(&mut self, b: u8) {
        self.state[self.pos / 4] ^= u32::from(b) << (8 * (self.pos % 4));
        self.pos += 1;
        if self.pos == RATE {
            permute(&mut self.state);
            self.pos = 0;
        }
    }

    fn absorb_raw(&mut self, bytes: &[u8]) {
        assert!(!self.squeezing, "absorb after squeeze on a transcript");
        for &b in bytes {
            self.absorb_byte(b);
        }
    }

    /// Absorbs one labelled item: `len(label) ‖ label ‖ len(data) ‖ data`,
    /// lengths as little-endian `u64` — re-chunking cannot collide.
    pub fn absorb(&mut self, label: &str, data: &[u8]) {
        self.absorb_raw(&(label.len() as u64).to_le_bytes());
        self.absorb_raw(label.as_bytes());
        self.absorb_raw(&(data.len() as u64).to_le_bytes());
        self.absorb_raw(data);
    }

    /// Absorbs a labelled `u64`.
    pub fn absorb_u64(&mut self, label: &str, x: u64) {
        self.absorb(label, &x.to_le_bytes());
    }

    /// Absorbs a labelled field element as its canonical 16-byte
    /// little-endian residue (field-width independent, so one transcript
    /// definition covers `Fp61` and `Fp127`).
    pub fn absorb_field<F: PrimeField>(&mut self, label: &str, x: F) {
        self.absorb(label, &x.to_u128().to_le_bytes());
    }

    /// Absorbs a labelled sequence of field elements (the count is part of
    /// the framing, so `[a, b] ‖ [c]` cannot collide with `[a] ‖ [b, c]`).
    pub fn absorb_fields<F: PrimeField>(&mut self, label: &str, xs: &[F]) {
        self.absorb_u64(label, xs.len() as u64);
        for &x in xs {
            self.absorb_field(label, x);
        }
    }

    fn start_squeeze(&mut self) {
        if !self.squeezing {
            // Pad-then-permute: domain-close the absorb phase.
            self.state[self.pos / 4] ^= 0x1Fu32 << (8 * (self.pos % 4));
            self.state[(RATE - 1) / 4] ^= 0x80u32 << (8 * ((RATE - 1) % 4));
            permute(&mut self.state);
            self.pos = 0;
            self.squeezing = true;
        }
    }

    fn squeeze_byte(&mut self) -> u8 {
        if self.pos == RATE {
            permute(&mut self.state);
            self.pos = 0;
        }
        let b = (self.state[self.pos / 4] >> (8 * (self.pos % 4))) as u8;
        self.pos += 1;
        b
    }

    fn squeeze(&mut self, out: &mut [u8]) {
        self.start_squeeze();
        for b in out {
            *b = self.squeeze_byte();
        }
    }

    /// Squeezes the 32-byte transcript digest. Further squeezes (challenge
    /// weights) continue the same output stream, so they commit to
    /// everything absorbed.
    pub fn digest(&mut self) -> [u8; 32] {
        let mut out = [0u8; 32];
        self.squeeze(&mut out);
        out
    }

    /// Squeezes a canonical field challenge: 16 output bytes reduced
    /// `mod p`. The reduction bias is ≤ `p/2^128` (< 2⁻⁶⁷ for `Fp61`),
    /// far below the sum-check's own soundness error.
    pub fn challenge<F: PrimeField>(&mut self) -> F {
        let mut out = [0u8; 16];
        self.squeeze(&mut out);
        let x = u128::from_le_bytes(out) % F::MODULUS;
        F::from_u128(x)
    }
}

/// Words a 32-byte transcript digest occupies under `F`'s word size (cost
/// accounting for [`crate::CostReport`]).
pub fn digest_words<F: PrimeField>() -> usize {
    32usize.div_ceil((F::BITS as usize).div_ceil(8))
}

/// The **single canonical** transcript context for a one-shot sum-check
/// query — every prover and verifier, local or remote, seeds through this
/// function so their digests can only agree when they agree on all of:
///
/// * `protocol` — the stable query name (`"self-join"`, `"range-sum"`, …),
/// * the field (its id byte *and* modulus),
/// * `log_u` — the universe exponent (= round count `d`),
/// * `shard` — `(index, count)` for a fleet member, `None` standalone,
/// * `params` — query parameters in a protocol-fixed order (e.g. `[l, r]`
///   for range queries, `[k]` for moments, empty for self-join),
/// * `challenges` — the revealed challenge prefix `r_1, …, r_{d−1}` (the
///   last coordinate `r_d` stays the verifier's secret).
///
/// The caller then absorbs the proof body (claimed value, round
/// polynomials) before squeezing the digest.
pub fn query_transcript<F: PrimeField>(
    protocol: &str,
    log_u: u32,
    shard: Option<(u32, u32)>,
    params: &[u64],
    challenges: &[F],
) -> Transcript {
    let mut t = Transcript::new("sip-oneshot-v1");
    t.absorb("protocol", protocol.as_bytes());
    t.absorb("field-id", &[field_id_byte::<F>()]);
    t.absorb("modulus", &F::MODULUS.to_le_bytes());
    t.absorb_u64("log-u", u64::from(log_u));
    // `count = 0` is unambiguous for "unsharded": a real fleet has ≥ 1.
    let (index, count) = shard.unwrap_or((0, 0));
    t.absorb_u64("shard-index", u64::from(index));
    t.absorb_u64("shard-count", u64::from(count));
    t.absorb_u64("params", params.len() as u64);
    for &p in params {
        t.absorb_u64("param", p);
    }
    t.absorb_fields("challenge-prefix", challenges);
    t
}

/// The field's wire id byte (mirrors `sip-wire`'s `FieldId::to_byte`,
/// which is defined by the modulus width; duplicated here because the
/// transcript must not depend on the wire crate).
fn field_id_byte<F: PrimeField>() -> u8 {
    if F::BITS <= 61 {
        61
    } else {
        127
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sip_field::{Fp127, Fp61};

    #[test]
    fn determinism_and_stream_continuity() {
        let mk = || {
            let mut t = Transcript::new("test");
            t.absorb("a", b"hello");
            t.absorb_u64("n", 42);
            t
        };
        let (mut t1, mut t2) = (mk(), mk());
        assert_eq!(t1.digest(), t2.digest());
        // Challenges continue the same deterministic stream.
        assert_eq!(t1.challenge::<Fp61>(), t2.challenge::<Fp61>());
        assert_eq!(t1.challenge::<Fp61>(), t2.challenge::<Fp61>());
    }

    #[test]
    fn labels_and_framing_separate_domains() {
        let digest = |domain: &str, label: &str, data: &[u8]| {
            let mut t = Transcript::new(domain);
            t.absorb(label, data);
            t.digest()
        };
        let base = digest("d", "l", b"ab");
        assert_ne!(base, digest("e", "l", b"ab"), "domain must matter");
        assert_ne!(base, digest("d", "m", b"ab"), "label must matter");
        assert_ne!(base, digest("d", "l", b"ac"), "data must matter");
        // Re-chunking across items cannot collide.
        let mut t1 = Transcript::new("d");
        t1.absorb("l", b"a");
        t1.absorb("l", b"b");
        let mut t2 = Transcript::new("d");
        t2.absorb("l", b"ab");
        assert_ne!(t1.digest(), t2.digest());
    }

    #[test]
    fn challenges_are_canonical_and_spread() {
        let mut t = Transcript::new("spread");
        t.absorb("seed", b"x");
        let mut seen = std::collections::HashSet::new();
        for _ in 0..64 {
            let c: Fp61 = t.challenge();
            assert!(c.to_u128() < Fp61::MODULUS);
            seen.insert(c.to_u128());
        }
        assert_eq!(seen.len(), 64, "64 squeezes should not collide");
        let mut t = Transcript::new("spread");
        t.absorb("seed", b"x");
        let c: Fp127 = t.challenge();
        assert!(c.to_u128() < Fp127::MODULUS);
    }

    #[test]
    fn query_transcript_binds_every_context_field() {
        fn d(
            proto: &str,
            log_u: u32,
            shard: Option<(u32, u32)>,
            params: &[u64],
            ch: &[Fp61],
        ) -> [u8; 32] {
            query_transcript::<Fp61>(proto, log_u, shard, params, ch).digest()
        }
        let ch = [Fp61::from_u64(7), Fp61::from_u64(8)];
        let base = d("range-sum", 3, None, &[1, 9], &ch);
        assert_ne!(base, d("range-count", 3, None, &[1, 9], &ch));
        assert_ne!(base, d("range-sum", 4, None, &[1, 9], &ch));
        assert_ne!(base, d("range-sum", 3, Some((0, 2)), &[1, 9], &ch));
        assert_ne!(base, d("range-sum", 3, Some((1, 2)), &[1, 9], &ch));
        assert_ne!(base, d("range-sum", 3, None, &[1, 8], &ch));
        assert_ne!(base, d("range-sum", 3, None, &[1], &ch));
        assert_ne!(base, d("range-sum", 3, None, &[1, 9], &ch[..1]));
        // The same context over a different field separates too.
        let ch127 = [Fp127::from_u64(7), Fp127::from_u64(8)];
        let other = query_transcript::<Fp127>("range-sum", 3, None, &[1, 9], &ch127).digest();
        assert_ne!(base, other);
    }

    #[test]
    #[should_panic(expected = "absorb after squeeze")]
    fn absorb_after_squeeze_panics() {
        let mut t = Transcript::new("late");
        let _ = t.digest();
        t.absorb("too", b"late");
    }

    #[test]
    fn digest_words_by_field() {
        assert_eq!(digest_words::<Fp61>(), 4); // 32 bytes / 8-byte words
        assert_eq!(digest_words::<Fp127>(), 2); // 32 bytes / 16-byte words
    }
}

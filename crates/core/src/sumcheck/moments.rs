//! Frequency moments `F_k = Σ_i a_iᵏ` for any `k ≥ 1` (Section 3.2).
//!
//! "We can simply replace f²_a with fᵏ_a … The communication cost increases
//! to O(k·log u), since each g_j now has degree O(k) … However, the
//! verifier's space bound remains at O(log u) words."
//!
//! The round polynomial is `g_j(c) = Σ_m (fold_a(c, m))ᵏ` of degree `k`;
//! messages carry `k + 1` evaluations.

use rand::Rng;
use sip_field::PrimeField;
use sip_lde::{LdeParams, StreamingLdeEvaluator};
use sip_streaming::{FrequencyVector, Update};

use crate::channel::CostReport;
use crate::engine::{Combine, FoldSource, ProverPool};
use crate::error::Rejection;
use crate::fold::FoldVector;

use super::{drive_sumcheck, Adversary, RoundProver, SumCheckVerifierCore};

/// Streaming verifier state for `F_k` over `[2^log_u]`.
#[derive(Clone, Debug)]
pub struct MomentVerifier<F: PrimeField> {
    k: u32,
    lde: StreamingLdeEvaluator<F>,
}

impl<F: PrimeField> MomentVerifier<F> {
    /// Draws the secret point and prepares to stream; `k ≥ 1`.
    pub fn new<R: Rng + ?Sized>(k: u32, log_u: u32, rng: &mut R) -> Self {
        assert!(k >= 1, "moment order must be at least 1");
        MomentVerifier {
            k,
            lde: StreamingLdeEvaluator::random(LdeParams::binary(log_u), rng),
        }
    }

    /// The moment order `k`.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// The streaming digest (the verifier's entire protocol state) — what a
    /// checkpoint must capture.
    pub fn evaluator(&self) -> &StreamingLdeEvaluator<F> {
        &self.lde
    }

    /// Rebuilds the verifier around a restored digest (checkpoint resume).
    ///
    /// # Panics
    /// Panics if `k == 0` or the evaluator is not binary.
    pub fn from_parts(k: u32, lde: StreamingLdeEvaluator<F>) -> Self {
        assert!(k >= 1, "moment order must be at least 1");
        assert_eq!(lde.params().base(), 2, "F_k runs over the binary LDE");
        MomentVerifier { k, lde }
    }

    /// Processes one stream update (`O(log u)` time).
    pub fn update(&mut self, up: Update) {
        self.lde.update(up);
    }

    /// Processes a whole stream.
    pub fn update_all(&mut self, stream: &[Update]) {
        self.lde.update_all(stream);
    }

    /// Processes a whole batch through the delayed-reduction ingest path;
    /// the digest value is bit-identical to per-update [`Self::update`].
    pub fn update_batch(&mut self, batch: &[Update]) {
        self.lde.update_batch(batch);
    }

    /// Verifier space in words: the point, the accumulator, session state.
    pub fn space_words(&self) -> usize {
        self.lde.space_words() + 3
    }

    /// Ends the streaming phase: returns the session state and the value
    /// the final round must match, `f_a(r)ᵏ`.
    pub fn into_session(self) -> (SumCheckVerifierCore<F>, F) {
        let expected = self.lde.value().pow(self.k as u128);
        (
            SumCheckVerifierCore::new(self.lde.point().to_vec(), self.k as usize),
            expected,
        )
    }
}

/// The `F_k` per-pair rule: the interpolant `lo + c·(hi − lo)` walks an
/// arithmetic progression in `c`; each stop is raised to the `k`-th power.
pub struct MomentCombine {
    /// Moment order `k ≥ 1` (message degree).
    pub k: u32,
}

impl<F: PrimeField> Combine<F> for MomentCombine {
    fn slots(&self) -> usize {
        self.k as usize + 1
    }

    #[inline]
    fn accumulate(&self, _m: u64, a: &[F], _b: &[F], acc: &mut [F::DotAcc]) {
        let (lo, hi) = (a[0], a[1]);
        let diff = hi - lo;
        let mut val = lo;
        // valᵏ = valᵏ⁻¹·val feeds the fused product accumulator.
        let km1 = (self.k - 1) as u128;
        F::acc_add_prod(&mut acc[0], val.pow(km1), val);
        for slot in acc.iter_mut().skip(1) {
            val += diff;
            F::acc_add_prod(slot, val.pow(km1), val);
        }
    }
}

/// Honest prover for `F_k`: folds the table of Appendix B.1 and raises the
/// pairwise linear interpolants to the `k`-th power.
#[derive(Clone, Debug)]
pub struct MomentProver<F: PrimeField> {
    k: u32,
    fold: FoldVector<F>,
    pool: ProverPool,
}

impl<F: PrimeField> MomentProver<F> {
    /// Builds the prover state from the materialised frequency vector
    /// (serial engine).
    pub fn new(k: u32, fv: &FrequencyVector, log_u: u32) -> Self {
        Self::with_pool(k, fv, log_u, ProverPool::SERIAL)
    }

    /// Like [`Self::new`] with an explicit round-message scheduling pool.
    pub fn with_pool(k: u32, fv: &FrequencyVector, log_u: u32, pool: ProverPool) -> Self {
        assert!(k >= 1);
        MomentProver {
            k,
            fold: FoldVector::from_frequency(fv, log_u),
            pool,
        }
    }
}

impl<F: PrimeField> RoundProver<F> for MomentProver<F> {
    fn degree(&self) -> usize {
        self.k as usize
    }

    fn rounds(&self) -> usize {
        self.fold.bits() as usize
    }

    fn message(&mut self) -> Vec<F> {
        self.pool
            .fold_message(FoldSource::Pairs(&self.fold), &MomentCombine { k: self.k })
    }

    fn bind(&mut self, r: F) {
        self.fold.bind(r);
    }
}

/// Outcome of a verified aggregation run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VerifiedAggregate<F: PrimeField> {
    /// The verified answer, as a field element (exact whenever the true
    /// answer is below the field modulus).
    pub value: F,
    /// Cost accounting for the run.
    pub report: CostReport,
}

/// Runs the complete honest `F_k` protocol over `stream`.
pub fn run_moment<F: PrimeField, R: Rng + ?Sized>(
    k: u32,
    log_u: u32,
    stream: &[Update],
    rng: &mut R,
) -> Result<VerifiedAggregate<F>, Rejection> {
    run_moment_with_adversary(k, log_u, stream, rng, None)
}

/// Like [`run_moment`] but with a message-corruption hook (tamper testing).
pub fn run_moment_with_adversary<F: PrimeField, R: Rng + ?Sized>(
    k: u32,
    log_u: u32,
    stream: &[Update],
    rng: &mut R,
    adversary: Option<Adversary<'_, F>>,
) -> Result<VerifiedAggregate<F>, Rejection> {
    let mut verifier = MomentVerifier::<F>::new(k, log_u, rng);
    verifier.update_all(stream);
    let space = verifier.space_words();

    let fv = FrequencyVector::from_stream(1 << log_u, stream);
    let mut prover = MomentProver::new(k, &fv, log_u);

    let (mut core, expected) = verifier.into_session();
    let mut report = CostReport {
        verifier_space_words: space,
        ..CostReport::default()
    };
    let value = drive_sumcheck(&mut prover, &mut core, expected, &mut report, adversary)?;
    Ok(VerifiedAggregate { value, report })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sip_field::{Fp127, Fp61};
    use sip_streaming::workloads;

    #[test]
    fn completeness_small_moments() {
        let mut rng = StdRng::seed_from_u64(1);
        let log_u = 8;
        let stream = workloads::uniform(300, 1 << log_u, 20, 42);
        let fv = FrequencyVector::from_stream(1 << log_u, &stream);
        for k in 1..=5u32 {
            let got = run_moment::<Fp61, _>(k, log_u, &stream, &mut rng).unwrap();
            assert_eq!(
                got.value,
                Fp61::from_u128(fv.frequency_moment(k) as u128),
                "k={k}"
            );
            // (s, t) accounting: d rounds, (k+1) words down per round,
            // d − 1 challenges up.
            assert_eq!(got.report.rounds, log_u as usize);
            assert_eq!(got.report.p_to_v_words, (k as usize + 1) * log_u as usize);
            assert_eq!(got.report.v_to_p_words, log_u as usize - 1);
        }
    }

    #[test]
    fn f1_equals_total() {
        let mut rng = StdRng::seed_from_u64(2);
        let stream = workloads::uniform(100, 1 << 6, 9, 3);
        let fv = FrequencyVector::from_stream(1 << 6, &stream);
        let got = run_moment::<Fp61, _>(1, 6, &stream, &mut rng).unwrap();
        assert_eq!(got.value, Fp61::from_u128(fv.total() as u128));
    }

    #[test]
    fn works_with_deletions() {
        let mut rng = StdRng::seed_from_u64(3);
        let stream = workloads::with_deletions(500, 1 << 7, 0.3, 4);
        let fv = FrequencyVector::from_stream(1 << 7, &stream);
        let got = run_moment::<Fp61, _>(3, 7, &stream, &mut rng).unwrap();
        assert_eq!(
            got.value,
            Fp61::from_i64(0) + {
                // F3 with nonnegative counts here
                Fp61::from_u128(fv.frequency_moment(3) as u128)
            }
        );
    }

    #[test]
    fn works_over_fp127() {
        let mut rng = StdRng::seed_from_u64(4);
        let stream = workloads::paper_f2(1 << 6, 5);
        let fv = FrequencyVector::from_stream(1 << 6, &stream);
        let got = run_moment::<Fp127, _>(4, 6, &stream, &mut rng).unwrap();
        assert_eq!(got.value, Fp127::from_u128(fv.frequency_moment(4) as u128));
    }

    #[test]
    fn tampered_message_rejected() {
        let mut rng = StdRng::seed_from_u64(5);
        let stream = workloads::uniform(200, 1 << 8, 10, 6);
        for bad_round in [1usize, 4, 8] {
            let mut adv = |round: usize, msg: &mut Vec<Fp61>| {
                if round == bad_round {
                    msg[0] += Fp61::ONE;
                }
            };
            let err = run_moment_with_adversary::<Fp61, _>(2, 8, &stream, &mut rng, Some(&mut adv))
                .unwrap_err();
            match err {
                // Corrupting evaluation slot 0 perturbs the grid sum, so the
                // round's own consistency check trips — except in round 1,
                // where there is no previous claim and the lie surfaces one
                // round later.
                Rejection::RoundSumMismatch { round } => {
                    assert_eq!(round, if bad_round == 1 { 2 } else { bad_round });
                }
                other => panic!("unexpected rejection {other:?}"),
            }
        }
    }

    #[test]
    fn consistent_tampering_of_round1_changes_output_but_fails_later() {
        // An adversary shifting g_1 by a constant polynomial changes the
        // claimed output; the protocol must still reject eventually.
        let mut rng = StdRng::seed_from_u64(6);
        let stream = workloads::uniform(200, 1 << 8, 10, 7);
        let mut adv = |round: usize, msg: &mut Vec<Fp61>| {
            if round == 1 {
                for e in msg.iter_mut() {
                    *e += Fp61::from_u64(17);
                }
            }
        };
        let err = run_moment_with_adversary::<Fp61, _>(2, 8, &stream, &mut rng, Some(&mut adv))
            .unwrap_err();
        assert!(matches!(
            err,
            Rejection::RoundSumMismatch { .. } | Rejection::FinalCheckFailed
        ));
    }
}

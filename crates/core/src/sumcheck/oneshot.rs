//! One-shot (non-interactive) sum-check: the whole post-stream proof in a
//! single frame.
//!
//! After the stream, the CTY sum-check is public-coin: round `j`'s
//! challenge is the already-fixed coordinate `r_j` of the verifier's secret
//! evaluation point, and only the *last* coordinate `r_d` must stay secret
//! (the final check evaluates `g_d` there against the streamed LDE). So
//! instead of `d` synchronous round trips the verifier can reveal the
//! prefix `r_1, …, r_{d−1}` up front; the prover walks all `d` rounds
//! locally and ships one [`OneShotProof`]: the claimed output, every round
//! polynomial, and a transcript digest binding the proof to the exact
//! query context (see [`crate::transcript`]).
//!
//! Verification defers the per-round algebra: after replaying the
//! transcript and checking the echoed digest byte-for-byte, the verifier
//! forms every round residual and tests one random linear combination of
//! them (weights squeezed from the transcript *after* the digest, so they
//! commit to the whole proof) — the deferred-check pattern of
//! non-interactive sum-check verifiers. On failure the residuals are
//! scanned in round order so the typed rejection is *identical* to what
//! the interactive path would have produced.

use sip_field::lagrange::eval_from_grid_evals;
use sip_field::PrimeField;

use crate::error::Rejection;
use crate::transcript::Transcript;

use super::RoundProver;

/// A complete one-shot sum-check proof: one frame from prover to verifier.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OneShotProof<F> {
    /// The claimed query output `Σ_{x∈[ℓ]} g_1(x)`.
    pub claimed: F,
    /// Every round polynomial `g_1, …, g_d`, each as `degree + 1`
    /// evaluations at `0, …, degree`.
    pub rounds: Vec<Vec<F>>,
    /// The prover's transcript digest over the query context and the proof
    /// body; the verifier recomputes and compares byte-for-byte.
    pub digest: [u8; 32],
}

impl<F> OneShotProof<F> {
    /// Total proof size in field words (claimed value + every round
    /// polynomial + the digest at `digest_words::<F>()`).
    pub fn words(&self) -> usize
    where
        F: PrimeField,
    {
        1 + self.rounds.iter().map(Vec::len).sum::<usize>() + crate::transcript::digest_words::<F>()
    }
}

/// A fallible round walk: anything that can produce round messages and
/// bind challenges. Remote and kv-store sessions implement it directly so
/// transport failures surface as rejections; wrap an honest
/// [`RoundProver`] in a [`ProverWalk`]. (No blanket impl over
/// `RoundProver` — it would forbid every downstream impl of this trait.)
pub trait OneShotWalk<F: PrimeField> {
    /// The current round's polynomial.
    fn message(&mut self) -> Result<Vec<F>, Rejection>;
    /// Binds the current variable to the revealed challenge.
    fn bind(&mut self, r: F) -> Result<(), Rejection>;
}

/// Adapts an (infallible) honest [`RoundProver`] to the fallible walk.
pub struct ProverWalk<'a, F: PrimeField>(pub &'a mut dyn RoundProver<F>);

impl<F: PrimeField> OneShotWalk<F> for ProverWalk<'_, F> {
    fn message(&mut self) -> Result<Vec<F>, Rejection> {
        Ok(self.0.message())
    }
    fn bind(&mut self, r: F) -> Result<(), Rejection> {
        self.0.bind(r);
        Ok(())
    }
}

/// Prover side: walks all `challenges.len() + 1` rounds locally — message,
/// bind the revealed challenge, repeat — then seals the transcript.
///
/// `transcript` must come from [`crate::transcript::query_transcript`]
/// with the *same* challenge prefix; `ell` is the grid width (2 for the
/// binary protocols). The walk is the only prover-side work: no waiting on
/// the verifier between rounds.
pub fn prove_oneshot<F: PrimeField, W: OneShotWalk<F> + ?Sized>(
    walk: &mut W,
    mut transcript: Transcript,
    challenges: &[F],
    ell: usize,
) -> Result<OneShotProof<F>, Rejection> {
    assert!(ell >= 2, "grid width must be at least 2");
    let rounds = challenges.len() + 1;
    let mut polys = Vec::with_capacity(rounds);
    for &r in challenges {
        polys.push(walk.message()?);
        walk.bind(r)?;
    }
    // Final round: the last coordinate is the verifier's secret, no bind.
    polys.push(walk.message()?);
    let claimed = polys[0].iter().take(ell).fold(F::ZERO, |a, &b| a + b);
    absorb_proof_body(&mut transcript, claimed, &polys);
    let digest = transcript.digest();
    Ok(OneShotProof {
        claimed,
        rounds: polys,
        digest,
    })
}

/// The canonical proof-body absorption order (shared by prover and
/// verifier): claimed value first, then each round polynomial in order.
fn absorb_proof_body<F: PrimeField>(t: &mut Transcript, claimed: F, rounds: &[Vec<F>]) {
    t.absorb_field("claimed", claimed);
    for g in rounds {
        t.absorb_fields("round-poly", g);
    }
}

/// Verifier side, parameterised by grid width `ell` (2 for the binary
/// protocols, `ℓ` for the general-ℓ parameterisation).
///
/// Check order, chosen so every failure mode maps to the *same* typed
/// rejection the interactive driver produces:
///
/// 1. **Structure** — round count must be `point.len()`, every polynomial
///    must carry `degree + 1` evaluations ([`Rejection::WrongMessageLength`]
///    names the first bad round).
/// 2. **Transcript** — replay the hash chain over the proof body and
///    compare the echoed digest byte-for-byte
///    ([`Rejection::TranscriptMismatch`]): any transported corruption dies
///    here before the verifier runs any field algebra.
/// 3. **Deferred batch** — form the `d + 1` round residuals (claimed vs
///    `Σ g_1`, each round-sum consistency, the final check against
///    `streamed`) and test one random linear combination with weights
///    squeezed from the transcript after the digest. On failure, scan the
///    residuals in round order and name the first nonzero one exactly as
///    rounds would have failed interactively.
///
/// On acceptance returns the now-verified claimed output.
pub fn verify_oneshot_grid<F: PrimeField>(
    point: &[F],
    degree: usize,
    ell: usize,
    streamed: F,
    mut transcript: Transcript,
    proof: &OneShotProof<F>,
) -> Result<F, Rejection> {
    let d = point.len();
    if proof.rounds.len() != d {
        return Err(Rejection::MalformedAnswer {
            detail: format!(
                "one-shot proof carries {} round polynomials, the query needs {d}",
                proof.rounds.len()
            ),
        });
    }
    for (j, g) in proof.rounds.iter().enumerate() {
        if g.len() != degree + 1 {
            return Err(Rejection::WrongMessageLength {
                round: j + 1,
                expected: degree + 1,
                got: g.len(),
            });
        }
    }

    absorb_proof_body(&mut transcript, proof.claimed, &proof.rounds);
    if transcript.digest() != proof.digest {
        return Err(Rejection::TranscriptMismatch);
    }

    // Residuals: [0] claimed vs Σ g_1; [j] round-sum consistency of round
    // j+1; [d] the final check against the streamed LDE value.
    let mut residuals = Vec::with_capacity(d + 1);
    let mut claim = proof.claimed;
    for (j, g) in proof.rounds.iter().enumerate() {
        let grid_sum = g.iter().take(ell).fold(F::ZERO, |a, &b| a + b);
        residuals.push(grid_sum - claim);
        claim = eval_from_grid_evals(g, point[j]);
    }
    residuals.push(claim - streamed);

    let mut batched = F::ZERO;
    for &res in &residuals {
        batched += transcript.challenge::<F>() * res;
    }
    if batched != F::ZERO {
        // Diagnose: the first nonzero residual in round order is exactly
        // where the interactive verifier would have stopped.
        for (j, &res) in residuals.iter().enumerate() {
            if !res.is_zero() {
                return Err(if j == 0 {
                    Rejection::MalformedAnswer {
                        detail: "claimed value disagrees with the first round polynomial"
                            .to_string(),
                    }
                } else if j < d {
                    Rejection::RoundSumMismatch { round: j + 1 }
                } else {
                    Rejection::FinalCheckFailed
                });
            }
        }
        unreachable!("a nonzero linear combination has a nonzero term");
    }
    Ok(proof.claimed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transcript::query_transcript;
    use sip_field::Fp61;

    fn f(x: u64) -> Fp61 {
        Fp61::from_u64(x)
    }

    /// A degree-1, hand-computable honest walk over fixed polynomials.
    struct FixedWalk {
        polys: Vec<Vec<Fp61>>,
        next: usize,
    }

    impl OneShotWalk<Fp61> for FixedWalk {
        fn message(&mut self) -> Result<Vec<Fp61>, Rejection> {
            self.next += 1;
            Ok(self.polys[self.next - 1].clone())
        }
        fn bind(&mut self, _r: Fp61) -> Result<(), Rejection> {
            Ok(())
        }
    }

    fn fixture() -> (Vec<Fp61>, OneShotProof<Fp61>, Fp61) {
        // d = 2, degree 1: g1 = (4, 6) → output 10, g1(r1=10) = 24;
        // g2 = (11, 13) sums to 24 ✓, g2(r2=3) = 17 = streamed.
        let point = vec![f(10), f(3)];
        let mut walk = FixedWalk {
            polys: vec![vec![f(4), f(6)], vec![f(11), f(13)]],
            next: 0,
        };
        let t = query_transcript::<Fp61>("test", 2, None, &[], &point[..1]);
        let proof = prove_oneshot(&mut walk, t, &point[..1], 2).unwrap();
        (point, proof, f(17))
    }

    fn verify(
        point: &[Fp61],
        proof: &OneShotProof<Fp61>,
        streamed: Fp61,
    ) -> Result<Fp61, Rejection> {
        let t = query_transcript::<Fp61>("test", 2, None, &[], &point[..1]);
        verify_oneshot_grid(point, 1, 2, streamed, t, proof)
    }

    #[test]
    fn honest_proof_accepts() {
        let (point, proof, streamed) = fixture();
        assert_eq!(verify(&point, &proof, streamed).unwrap(), f(10));
        assert_eq!(proof.claimed, f(10));
        assert_eq!(proof.words(), 1 + 4 + 4);
    }

    #[test]
    fn tampered_body_is_a_transcript_mismatch() {
        let (point, proof, streamed) = fixture();
        let mut bad = proof.clone();
        bad.rounds[1][0] += Fp61::ONE;
        assert!(matches!(
            verify(&point, &bad, streamed),
            Err(Rejection::TranscriptMismatch)
        ));
        let mut bad = proof.clone();
        bad.claimed += Fp61::ONE;
        assert!(matches!(
            verify(&point, &bad, streamed),
            Err(Rejection::TranscriptMismatch)
        ));
        let mut bad = proof;
        bad.digest[7] ^= 1;
        assert!(matches!(
            verify(&point, &bad, streamed),
            Err(Rejection::TranscriptMismatch)
        ));
    }

    /// Re-seals a tampered proof with a consistent digest — the model of a
    /// *lying prover* (vs a corrupted wire): the algebra must catch it.
    fn reseal(point: &[Fp61], mut proof: OneShotProof<Fp61>) -> OneShotProof<Fp61> {
        let mut t = query_transcript::<Fp61>("test", 2, None, &[], &point[..1]);
        absorb_proof_body(&mut t, proof.claimed, &proof.rounds);
        proof.digest = t.digest();
        proof
    }

    #[test]
    fn lying_prover_fails_the_exact_interactive_check() {
        let (point, proof, streamed) = fixture();
        // Claimed value inconsistent with g1.
        let mut bad = proof.clone();
        bad.claimed += Fp61::ONE;
        let bad = reseal(&point, bad);
        assert!(matches!(
            verify(&point, &bad, streamed),
            Err(Rejection::MalformedAnswer { .. })
        ));
        // Round 2 polynomial breaks round-sum consistency.
        let mut bad = proof.clone();
        bad.rounds[1][0] += Fp61::ONE;
        // Keep g2(r2) unchanged impossible for degree 1 — both residuals
        // move; round-sum (the earlier check) must be named.
        let bad = reseal(&point, bad);
        assert!(matches!(
            verify(&point, &bad, streamed),
            Err(Rejection::RoundSumMismatch { round: 2 })
        ));
        // Honest proof against a wrong streamed value: final check.
        assert!(matches!(
            verify(&point, &proof, streamed + Fp61::ONE),
            Err(Rejection::FinalCheckFailed)
        ));
    }

    #[test]
    fn structural_errors_name_the_round() {
        let (point, proof, streamed) = fixture();
        let mut bad = proof.clone();
        bad.rounds[1].push(f(0));
        assert!(matches!(
            verify(&point, &bad, streamed),
            Err(Rejection::WrongMessageLength {
                round: 2,
                expected: 2,
                got: 3
            })
        ));
        let mut bad = proof;
        bad.rounds.pop();
        assert!(matches!(
            verify(&point, &bad, streamed),
            Err(Rejection::MalformedAnswer { .. })
        ));
    }

    #[test]
    fn wrong_context_is_a_transcript_mismatch() {
        // Same proof bytes replayed under a different query context.
        let (point, proof, streamed) = fixture();
        let t = query_transcript::<Fp61>("other-proto", 2, None, &[], &point[..1]);
        assert!(matches!(
            verify_oneshot_grid(&point, 1, 2, streamed, t, &proof),
            Err(Rejection::TranscriptMismatch)
        ));
        let t = query_transcript::<Fp61>("test", 2, Some((0, 4)), &[], &point[..1]);
        assert!(matches!(
            verify_oneshot_grid(&point, 1, 2, streamed, t, &proof),
            Err(Rejection::TranscriptMismatch)
        ));
    }
}

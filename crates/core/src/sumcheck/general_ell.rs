//! SELF-JOIN SIZE over a general base `ℓ` — footnote 1's trade-off.
//!
//! The paper parameterises the sum-check by `(ℓ, d)` with `u = ℓ^d`:
//! verifier space `O(d + ℓ)`, communication `O(d·ℓ)` over `d` rounds.
//! `ℓ = 2` is "probably the most economical tradeoff"; footnote 1 notes
//! that e.g. `ℓ = logᵉ u` trades a bit more communication for a bit less
//! space, and the one-round baseline of \[6\] is the extreme `d = 2,
//! ℓ = √u`. This module implements the whole family for F₂ so the
//! `ell_tradeoff` bench can sweep it.
//!
//! Messages carry `2(ℓ−1)+1` evaluations; the verifier checks
//! `Σ_{x∈[ℓ]} g_j(x) = g_{j−1}(r_{j−1})` and finally
//! `g_d(r_d) = f_a(r)²`.

use rand::Rng;
use sip_field::lagrange::{chi_all, eval_from_grid_evals};
use sip_field::PrimeField;
use sip_lde::{LdeParams, StreamingLdeEvaluator};
use sip_streaming::{FrequencyVector, Update};

use crate::channel::CostReport;
use crate::engine::{Combine, FoldSource, ProverPool};
use crate::error::Rejection;
use crate::sumcheck::moments::VerifiedAggregate;
use crate::sumcheck::oneshot::{verify_oneshot_grid, OneShotProof};
use crate::sumcheck::RoundProver;
use crate::transcript::{query_transcript, Transcript};

/// Streaming verifier for F₂ over `[ℓ^d]`.
#[derive(Clone, Debug)]
pub struct GeneralF2Verifier<F: PrimeField> {
    lde: StreamingLdeEvaluator<F>,
}

impl<F: PrimeField> GeneralF2Verifier<F> {
    /// Draws the secret point over `[ℓ^d]`.
    pub fn new<R: Rng + ?Sized>(params: LdeParams, rng: &mut R) -> Self {
        GeneralF2Verifier {
            lde: StreamingLdeEvaluator::random(params, rng),
        }
    }

    /// The streaming digest (the verifier's entire protocol state) — what a
    /// checkpoint must capture.
    pub fn evaluator(&self) -> &StreamingLdeEvaluator<F> {
        &self.lde
    }

    /// Rebuilds the verifier around a restored digest (checkpoint resume);
    /// any base is legal here — that is this protocol's point.
    pub fn from_evaluator(lde: StreamingLdeEvaluator<F>) -> Self {
        GeneralF2Verifier { lde }
    }

    /// Processes one stream update (`O(d)` with cached χ tables).
    pub fn update(&mut self, up: Update) {
        self.lde.update(up);
    }

    /// Processes a whole stream.
    pub fn update_all(&mut self, stream: &[Update]) {
        self.lde.update_all(stream);
    }

    /// Processes a whole batch through the delayed-reduction,
    /// division-free ingest path (the [`sip_lde::DigitPlan`] also covers
    /// general bases); bit-identical to per-update [`Self::update`].
    pub fn update_batch(&mut self, batch: &[Update]) {
        self.lde.update_batch(batch);
    }

    /// Verifier space in words: point + accumulator + one message buffer of
    /// `2ℓ−1` evaluations (the paper's `O(d + ℓ)`).
    pub fn space_words(&self) -> usize {
        let params = self.lde.params();
        params.dimension() as usize + 1 + (2 * params.base() as usize - 1) + 3
    }

    /// Runs the verification conversation against an honest prover.
    pub fn verify(
        self,
        prover: &mut GeneralF2Prover<F>,
    ) -> Result<VerifiedAggregate<F>, Rejection> {
        let params = self.lde.params();
        let ell = params.base();
        let d = params.dimension() as usize;
        let degree = 2 * (ell as usize - 1);
        let point = self.lde.point().to_vec();
        let expected = self.lde.value() * self.lde.value();
        let space = self.space_words();

        let mut report = CostReport {
            verifier_space_words: space,
            ..CostReport::default()
        };
        let mut output = F::ZERO;
        let mut claim = F::ZERO;
        #[allow(clippy::needless_range_loop)]
        for j in 0..d {
            let msg = prover.message();
            report.rounds += 1;
            report.p_to_v_words += msg.len();
            if msg.len() != degree + 1 {
                return Err(Rejection::WrongMessageLength {
                    round: j + 1,
                    expected: degree + 1,
                    got: msg.len(),
                });
            }
            let grid_sum: F = msg[..ell as usize].iter().copied().sum();
            if j == 0 {
                output = grid_sum;
            } else if grid_sum != claim {
                return Err(Rejection::RoundSumMismatch { round: j + 1 });
            }
            claim = eval_from_grid_evals(&msg, point[j]);
            if j + 1 < d {
                report.v_to_p_words += 1;
                prover.bind(point[j]);
            }
        }
        if claim != expected {
            return Err(Rejection::FinalCheckFailed);
        }
        Ok(VerifiedAggregate {
            value: output,
            report,
        })
    }

    /// The revealed challenge prefix of a one-shot run: every coordinate
    /// of the secret point except the last.
    pub fn challenge_prefix(&self) -> &[F] {
        let point = self.lde.point();
        &point[..point.len() - 1]
    }

    /// The canonical transcript context for a one-shot general-`ℓ` run:
    /// protocol `"general-f2"` with the base as a parameter and the digit
    /// dimension `d` in the `log_u` slot.
    pub fn oneshot_transcript(&self) -> Transcript {
        let params = self.lde.params();
        query_transcript::<F>(
            "general-f2",
            params.dimension(),
            None,
            &[params.base()],
            self.challenge_prefix(),
        )
    }

    /// One-shot counterpart of [`Self::verify`]: the deferred transcript
    /// check of [`verify_oneshot_grid`] with grid width `ℓ` and per-round
    /// degree `2(ℓ−1)`. `transcript` must match
    /// [`Self::oneshot_transcript`] (the prover seals the same context).
    pub fn verify_oneshot(
        self,
        transcript: Transcript,
        proof: &OneShotProof<F>,
    ) -> Result<VerifiedAggregate<F>, Rejection> {
        let params = self.lde.params();
        let ell = params.base() as usize;
        let degree = 2 * (ell - 1);
        let space = self.space_words();
        let expected = self.lde.value() * self.lde.value();
        let value =
            verify_oneshot_grid(self.lde.point(), degree, ell, expected, transcript, proof)?;
        Ok(VerifiedAggregate {
            value,
            report: CostReport {
                rounds: 1,
                p_to_v_words: proof.words(),
                v_to_p_words: params.dimension() as usize - 1,
                verifier_space_words: space,
            },
        })
    }
}

/// The general-`ℓ` per-block rule: each width-`ℓ` block is interpolated at
/// every evaluation point by a χ-weighted dot product, then squared —
/// `g_j(c) = Σ_m (Σ_k χ_k(c)·A[ℓm+k])²`.
pub struct GeneralEllCombine<'a, F> {
    /// `χ_k(c)` for every evaluation point `c ∈ {0, …, 2(ℓ−1)}`, `k ∈ [ℓ]`.
    chi_at_points: &'a [Vec<F>],
}

impl<F: PrimeField> Combine<F> for GeneralEllCombine<'_, F> {
    fn slots(&self) -> usize {
        self.chi_at_points.len()
    }

    #[inline]
    fn accumulate(&self, _m: u64, block: &[F], _b: &[F], acc: &mut [F::DotAcc]) {
        for (slot, chis) in acc.iter_mut().zip(self.chi_at_points) {
            let v = F::dot(block, chis);
            F::acc_add_prod(slot, v, v);
        }
    }
}

/// Honest F₂ prover over base `ℓ`: folds `ℓ` children per step.
#[derive(Clone, Debug)]
pub struct GeneralF2Prover<F: PrimeField> {
    params: LdeParams,
    /// Dense fold table, length `ℓ^{d−j}`.
    table: Vec<F>,
    /// `χ_k(c)` for every evaluation point `c ∈ {0, …, 2(ℓ−1)}`, `k ∈ [ℓ]`.
    chi_at_points: Vec<Vec<F>>,
    pool: ProverPool,
}

impl<F: PrimeField> GeneralF2Prover<F> {
    /// Builds the prover from the materialised frequency vector (serial
    /// engine).
    pub fn new(fv: &FrequencyVector, params: LdeParams) -> Self {
        Self::with_pool(fv, params, ProverPool::SERIAL)
    }

    /// Like [`Self::new`] with an explicit round-message scheduling pool.
    pub fn with_pool(fv: &FrequencyVector, params: LdeParams, pool: ProverPool) -> Self {
        assert!(fv.universe() <= params.universe());
        let mut table = vec![F::ZERO; params.universe() as usize];
        for (i, f) in fv.nonzero() {
            table[i as usize] = F::from_i64(f);
        }
        let ell = params.base();
        let degree = 2 * (ell as usize - 1);
        let chi_at_points = (0..=degree as u64)
            .map(|c| chi_all(ell, F::from_u64(c)))
            .collect();
        GeneralF2Prover {
            params,
            table,
            chi_at_points,
            pool,
        }
    }

    /// The round polynomial: `g_j(c) = Σ_m (Σ_k χ_k(c)·A[ℓm+k])²` at
    /// `c = 0, …, 2(ℓ−1)`.
    pub fn message(&self) -> Vec<F> {
        self.pool.fold_message(
            FoldSource::Blocks {
                table: &self.table,
                width: self.params.base() as usize,
            },
            &GeneralEllCombine {
                chi_at_points: &self.chi_at_points,
            },
        )
    }

    /// Binds the lowest digit to challenge `r`.
    pub fn bind(&mut self, r: F) {
        let ell = self.params.base() as usize;
        let chis = chi_all(self.params.base(), r);
        let next: Vec<F> = self
            .table
            .chunks_exact(ell)
            .map(|block| F::dot(block, &chis))
            .collect();
        self.table = next;
    }
}

impl<F: PrimeField> RoundProver<F> for GeneralF2Prover<F> {
    fn degree(&self) -> usize {
        2 * (self.params.base() as usize - 1)
    }
    fn rounds(&self) -> usize {
        self.params.dimension() as usize
    }
    fn message(&mut self) -> Vec<F> {
        GeneralF2Prover::message(self)
    }
    fn bind(&mut self, r: F) {
        GeneralF2Prover::bind(self, r);
    }
}

/// Runs the complete honest general-`ℓ` F₂ protocol.
pub fn run_general_f2<F: PrimeField, R: Rng + ?Sized>(
    params: LdeParams,
    stream: &[Update],
    rng: &mut R,
) -> Result<VerifiedAggregate<F>, Rejection> {
    let mut verifier = GeneralF2Verifier::<F>::new(params, rng);
    verifier.update_all(stream);
    let fv = FrequencyVector::from_stream(params.universe(), stream);
    let mut prover = GeneralF2Prover::new(&fv, params);
    verifier.verify(&mut prover)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sip_field::Fp61;
    use sip_streaming::workloads;

    #[test]
    fn agrees_with_binary_f2_across_bases() {
        let mut rng = StdRng::seed_from_u64(1);
        let stream = workloads::paper_f2(1 << 12, 2);
        let fv = FrequencyVector::from_stream(1 << 12, &stream);
        let expect = Fp61::from_u128(fv.self_join_size() as u128);
        for &(ell, d) in &[(2u64, 12u32), (4, 6), (8, 4), (16, 3), (64, 2)] {
            let params = LdeParams::new(ell, d);
            let got = run_general_f2::<Fp61, _>(params, &stream, &mut rng).unwrap();
            assert_eq!(got.value, expect, "ell={ell}");
            // Cost shape: d rounds of 2ℓ−1 words.
            assert_eq!(got.report.rounds, d as usize);
            assert_eq!(got.report.p_to_v_words, d as usize * (2 * ell as usize - 1));
        }
    }

    #[test]
    fn ell2_matches_specialised_module() {
        let mut rng = StdRng::seed_from_u64(2);
        let stream = workloads::uniform(300, 1 << 8, 20, 3);
        let gen = run_general_f2::<Fp61, _>(LdeParams::binary(8), &stream, &mut rng).unwrap();
        let spec = crate::sumcheck::f2::run_f2::<Fp61, _>(8, &stream, &mut rng).unwrap();
        assert_eq!(gen.value, spec.value);
        assert_eq!(gen.report.p_to_v_words, spec.report.p_to_v_words);
    }

    #[test]
    fn nonbinary_base_with_padding() {
        // Universe 3^5 = 243 covers a stream over [200].
        let mut rng = StdRng::seed_from_u64(3);
        let params = LdeParams::new(3, 5);
        let stream = workloads::uniform(150, 200, 9, 4);
        let fv = FrequencyVector::from_stream(243, &stream);
        let got = run_general_f2::<Fp61, _>(params, &stream, &mut rng).unwrap();
        assert_eq!(got.value, Fp61::from_u128(fv.self_join_size() as u128));
    }

    #[test]
    fn oneshot_agrees_with_interactive_across_bases() {
        use crate::sumcheck::oneshot::{prove_oneshot, ProverWalk};
        let mut rng = StdRng::seed_from_u64(5);
        let stream = workloads::paper_f2(1 << 10, 8);
        let fv_truth = FrequencyVector::from_stream(1 << 10, &stream);
        let expect = Fp61::from_u128(fv_truth.self_join_size() as u128);
        for &(ell, d) in &[(2u64, 10u32), (4, 5), (32, 2)] {
            let params = LdeParams::new(ell, d);
            let mut verifier = GeneralF2Verifier::<Fp61>::new(params, &mut rng);
            verifier.update_all(&stream);
            let fv = FrequencyVector::from_stream(params.universe(), &stream);
            let mut prover = GeneralF2Prover::new(&fv, params);
            let prefix = verifier.challenge_prefix().to_vec();
            let proof = prove_oneshot(
                &mut ProverWalk(&mut prover),
                verifier.oneshot_transcript(),
                &prefix,
                ell as usize,
            )
            .unwrap();
            let t = verifier.oneshot_transcript();
            let got = verifier.verify_oneshot(t, &proof).unwrap();
            assert_eq!(got.value, expect, "ell={ell}");
            assert_eq!(got.report.rounds, 1, "one frame, ell={ell}");
        }
    }

    #[test]
    fn oneshot_dishonest_prover_rejected() {
        use crate::sumcheck::oneshot::{prove_oneshot, ProverWalk};
        let mut rng = StdRng::seed_from_u64(6);
        let params = LdeParams::new(4, 4);
        let stream = workloads::uniform(100, 200, 5, 7);
        let mut verifier = GeneralF2Verifier::<Fp61>::new(params, &mut rng);
        verifier.update_all(&stream);
        let mut wrong = stream.clone();
        wrong[0].delta += 1;
        let fv = FrequencyVector::from_stream(params.universe(), &wrong);
        let mut prover = GeneralF2Prover::new(&fv, params);
        let prefix = verifier.challenge_prefix().to_vec();
        let proof = prove_oneshot(
            &mut ProverWalk(&mut prover),
            verifier.oneshot_transcript(),
            &prefix,
            4,
        )
        .unwrap();
        let t = verifier.oneshot_transcript();
        let err = verifier.verify_oneshot(t, &proof).unwrap_err();
        // A consistently-sealed walk over wrong data dies on the algebra,
        // not the digest.
        assert_ne!(err, Rejection::TranscriptMismatch, "{err}");
    }

    #[test]
    fn dishonest_round_rejected() {
        // Tamper by binding the prover to a different stream.
        let mut rng = StdRng::seed_from_u64(4);
        let params = LdeParams::new(4, 4);
        let stream = workloads::uniform(100, 200, 5, 5);
        let mut verifier = GeneralF2Verifier::<Fp61>::new(params, &mut rng);
        verifier.update_all(&stream);
        let mut wrong = stream.clone();
        wrong[0].delta += 1;
        let fv = FrequencyVector::from_stream(params.universe(), &wrong);
        let mut prover = GeneralF2Prover::new(&fv, params);
        assert!(verifier.verify(&mut prover).is_err());
    }
}

//! RANGE-SUM (Section 3.2): the sum of all values whose keys fall in
//! `[q_L, q_R]`.
//!
//! A special case of INNER PRODUCT against the 0/1 indicator `b` of the
//! query range — with two twists that make it interesting:
//!
//! * the verifier never materialises `b`: it evaluates `f_b(r)` directly by
//!   the canonical-interval telescoping of
//!   [`sip_lde::range_indicator_lde`] (the paper's `O(log² u)` step; our
//!   single-pass variant is `O(log u)`);
//! * the honest prover never materialises `b` either: the fold table of the
//!   indicator is produced *lazily* per round by
//!   [`sip_lde::interval::block_range_weight`], so the prover touches only
//!   blocks where `a`'s fold is nonzero.
//!
//! The query arrives *after* the stream — this is the whole point: "in most
//! applications, the user forms queries in response to other information
//! that is only known after the data has arrived".

use rand::Rng;
use sip_field::PrimeField;
use sip_lde::interval::block_range_weight;
use sip_lde::{range_indicator_lde, LdeParams, StreamingLdeEvaluator};
use sip_streaming::{FrequencyVector, Update};

use crate::channel::CostReport;
use crate::engine::{Combine, FoldSource, ProverPool};
use crate::error::Rejection;
use crate::fold::FoldVector;

use super::moments::VerifiedAggregate;
use super::{drive_sumcheck, Adversary, RoundProver, SumCheckVerifierCore};

/// Streaming verifier for RANGE-SUM; the range is supplied at query time.
#[derive(Clone, Debug)]
pub struct RangeSumVerifier<F: PrimeField> {
    lde: StreamingLdeEvaluator<F>,
}

impl<F: PrimeField> RangeSumVerifier<F> {
    /// Draws the secret point and prepares to stream.
    pub fn new<R: Rng + ?Sized>(log_u: u32, rng: &mut R) -> Self {
        RangeSumVerifier {
            lde: StreamingLdeEvaluator::random(LdeParams::binary(log_u), rng),
        }
    }

    /// The streaming digest (the verifier's entire protocol state) — what a
    /// checkpoint must capture.
    pub fn evaluator(&self) -> &StreamingLdeEvaluator<F> {
        &self.lde
    }

    /// Rebuilds the verifier around a restored digest (checkpoint resume).
    ///
    /// # Panics
    /// Panics if the evaluator is not over the binary parameterisation
    /// this protocol runs on.
    pub fn from_evaluator(lde: StreamingLdeEvaluator<F>) -> Self {
        assert_eq!(lde.params().base(), 2, "RANGE-SUM runs over the binary LDE");
        RangeSumVerifier { lde }
    }

    /// Processes one stream update.
    pub fn update(&mut self, up: Update) {
        self.lde.update(up);
    }

    /// Processes a whole stream.
    pub fn update_all(&mut self, stream: &[Update]) {
        self.lde.update_all(stream);
    }

    /// Processes a whole batch through the delayed-reduction ingest path;
    /// the digest value is bit-identical to per-update [`Self::update`].
    pub fn update_batch(&mut self, batch: &[Update]) {
        self.lde.update_batch(batch);
    }

    /// Verifier space in words.
    pub fn space_words(&self) -> usize {
        self.lde.space_words() + 3
    }

    /// Ends streaming and fixes the query range `[q_l, q_r]`. The final
    /// check value is `f_a(r)·f_b(r)` with `f_b(r)` computed locally in
    /// `O(log u)` time.
    ///
    /// # Panics
    /// Panics if the range is empty or exceeds the universe.
    pub fn into_session(self, q_l: u64, q_r: u64) -> (SumCheckVerifierCore<F>, F) {
        let fb_r = range_indicator_lde(q_l, q_r, self.lde.point());
        let expected = self.lde.value() * fb_r;
        (
            SumCheckVerifierCore::new(self.lde.point().to_vec(), 2),
            expected,
        )
    }
}

/// The RANGE-SUM per-pair rule: the partner children are the query
/// indicator's fold values, produced *lazily* per pair by
/// [`block_range_weight`] — only pairs where `a` is nonzero are ever
/// touched, so the indicator is never materialised on any thread.
pub struct RangeSumCombine<'a, F> {
    q_l: u64,
    q_r: u64,
    challenges: &'a [F],
}

impl<F: PrimeField> Combine<F> for RangeSumCombine<'_, F> {
    fn slots(&self) -> usize {
        3
    }

    #[inline]
    fn accumulate(&self, m: u64, a: &[F], _b: &[F], acc: &mut [F::DotAcc]) {
        let (alo, ahi) = (a[0], a[1]);
        let j = self.challenges.len();
        let blo: F = block_range_weight(self.q_l, self.q_r, self.challenges, j, 2 * m);
        let bhi: F = block_range_weight(self.q_l, self.q_r, self.challenges, j, 2 * m + 1);
        F::acc_add_prod(&mut acc[0], alo, blo);
        F::acc_add_prod(&mut acc[1], ahi, bhi);
        let a2 = ahi + (ahi - alo);
        let b2 = bhi + (bhi - blo);
        F::acc_add_prod(&mut acc[2], a2, b2);
    }
}

/// Honest RANGE-SUM prover with the lazily computed indicator fold.
#[derive(Clone, Debug)]
pub struct RangeSumProver<F: PrimeField> {
    a: FoldVector<F>,
    q_l: u64,
    q_r: u64,
    /// Challenges received so far (`r_1, …, r_j`), which are exactly the
    /// keys the indicator fold needs.
    challenges: Vec<F>,
    rounds: usize,
    pool: ProverPool,
}

impl<F: PrimeField> RangeSumProver<F> {
    /// Builds the prover for range `[q_l, q_r]` over `[2^log_u]` (serial
    /// engine).
    pub fn new(fv: &FrequencyVector, log_u: u32, q_l: u64, q_r: u64) -> Self {
        Self::with_pool(fv, log_u, q_l, q_r, ProverPool::SERIAL)
    }

    /// Like [`Self::new`] with an explicit round-message scheduling pool.
    pub fn with_pool(
        fv: &FrequencyVector,
        log_u: u32,
        q_l: u64,
        q_r: u64,
        pool: ProverPool,
    ) -> Self {
        assert!(q_l <= q_r && q_r < (1u64 << log_u), "bad range");
        RangeSumProver {
            a: FoldVector::from_frequency(fv, log_u),
            q_l,
            q_r,
            challenges: Vec::new(),
            rounds: log_u as usize,
            pool,
        }
    }
}

impl<F: PrimeField> RoundProver<F> for RangeSumProver<F> {
    fn degree(&self) -> usize {
        2
    }

    fn rounds(&self) -> usize {
        self.rounds
    }

    fn message(&mut self) -> Vec<F> {
        self.pool.fold_message(
            FoldSource::Pairs(&self.a),
            &RangeSumCombine {
                q_l: self.q_l,
                q_r: self.q_r,
                challenges: &self.challenges,
            },
        )
    }

    fn bind(&mut self, r: F) {
        self.a.bind(r);
        self.challenges.push(r);
    }
}

/// Runs the complete honest RANGE-SUM protocol.
pub fn run_range_sum<F: PrimeField, R: Rng + ?Sized>(
    log_u: u32,
    stream: &[Update],
    q_l: u64,
    q_r: u64,
    rng: &mut R,
) -> Result<VerifiedAggregate<F>, Rejection> {
    run_range_sum_with_adversary(log_u, stream, q_l, q_r, rng, None)
}

/// Like [`run_range_sum`] with a message-corruption hook.
pub fn run_range_sum_with_adversary<F: PrimeField, R: Rng + ?Sized>(
    log_u: u32,
    stream: &[Update],
    q_l: u64,
    q_r: u64,
    rng: &mut R,
    adversary: Option<Adversary<'_, F>>,
) -> Result<VerifiedAggregate<F>, Rejection> {
    let mut verifier = RangeSumVerifier::<F>::new(log_u, rng);
    verifier.update_all(stream);
    let space = verifier.space_words();

    let fv = FrequencyVector::from_stream(1 << log_u, stream);
    let mut prover = RangeSumProver::new(&fv, log_u, q_l, q_r);

    let (mut core, expected) = verifier.into_session(q_l, q_r);
    let mut report = CostReport {
        verifier_space_words: space,
        // V announces the query range: 2 words.
        v_to_p_words: 2,
        ..CostReport::default()
    };
    let value = drive_sumcheck(&mut prover, &mut core, expected, &mut report, adversary)?;
    Ok(VerifiedAggregate { value, report })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};
    use sip_field::Fp61;
    use sip_streaming::workloads;

    #[test]
    fn completeness_kv_workload() {
        // The DICTIONARY-style input: distinct keys with values.
        let mut rng = StdRng::seed_from_u64(1);
        let log_u = 10;
        let stream = workloads::distinct_key_values(300, 1 << log_u, 1000, 2);
        let fv = FrequencyVector::from_stream(1 << log_u, &stream);
        for &(q_l, q_r) in &[(0u64, 1023u64), (100, 200), (512, 512), (0, 0)] {
            let got = run_range_sum::<Fp61, _>(log_u, &stream, q_l, q_r, &mut rng).unwrap();
            assert_eq!(
                got.value,
                Fp61::from_u128(fv.range_sum(q_l, q_r) as u128),
                "range [{q_l}, {q_r}]"
            );
        }
    }

    #[test]
    fn random_ranges_match_ground_truth() {
        let mut rng = StdRng::seed_from_u64(2);
        let log_u = 9;
        let u = 1u64 << log_u;
        let stream = workloads::uniform(500, u, 50, 3);
        let fv = FrequencyVector::from_stream(u, &stream);
        for _ in 0..20 {
            let a = rng.random_range(0..u);
            let b = rng.random_range(0..u);
            let (q_l, q_r) = (a.min(b), a.max(b));
            let got = run_range_sum::<Fp61, _>(log_u, &stream, q_l, q_r, &mut rng).unwrap();
            assert_eq!(got.value, Fp61::from_u128(fv.range_sum(q_l, q_r) as u128));
        }
    }

    #[test]
    fn full_range_equals_f1() {
        let mut rng = StdRng::seed_from_u64(3);
        let stream = workloads::uniform(200, 1 << 8, 20, 4);
        let fv = FrequencyVector::from_stream(1 << 8, &stream);
        let got = run_range_sum::<Fp61, _>(8, &stream, 0, 255, &mut rng).unwrap();
        assert_eq!(got.value, Fp61::from_u128(fv.total() as u128));
    }

    #[test]
    fn empty_intersection_is_zero() {
        let mut rng = StdRng::seed_from_u64(4);
        let stream = vec![Update::new(10, 5), Update::new(20, 7)];
        let got = run_range_sum::<Fp61, _>(6, &stream, 30, 40, &mut rng).unwrap();
        assert_eq!(got.value, Fp61::ZERO);
    }

    #[test]
    fn cost_shape() {
        let mut rng = StdRng::seed_from_u64(5);
        let log_u = 12;
        let stream = workloads::uniform(100, 1 << log_u, 5, 6);
        let got = run_range_sum::<Fp61, _>(log_u, &stream, 17, 3000, &mut rng).unwrap();
        let d = log_u as usize;
        assert_eq!(got.report.p_to_v_words, 3 * d);
        assert_eq!(got.report.v_to_p_words, 2 + d - 1); // query + challenges
    }

    #[test]
    fn tampering_rejected() {
        let mut rng = StdRng::seed_from_u64(6);
        let stream = workloads::uniform(100, 1 << 8, 9, 7);
        for round in [1usize, 5, 8] {
            let mut adv = |rd: usize, msg: &mut Vec<Fp61>| {
                if rd == round {
                    msg[2] += Fp61::from_u64(3);
                }
            };
            let res = run_range_sum_with_adversary::<Fp61, _>(
                8,
                &stream,
                50,
                150,
                &mut rng,
                Some(&mut adv),
            );
            assert!(res.is_err(), "round {round} accepted");
        }
    }

    #[test]
    fn prover_lying_about_range_rejected() {
        // Prover built for a *different* range than the verifier asked.
        let mut rng = StdRng::seed_from_u64(7);
        let log_u = 8;
        let stream = workloads::uniform(200, 1 << log_u, 9, 8);
        let fv = FrequencyVector::from_stream(1 << log_u, &stream);
        if fv.range_sum(0, 99) == fv.range_sum(0, 120) {
            // astronomically unlikely with this seed; guard anyway
            return;
        }
        let mut verifier = RangeSumVerifier::<Fp61>::new(log_u, &mut rng);
        verifier.update_all(&stream);
        let mut prover = RangeSumProver::new(&fv, log_u, 0, 120);
        let (mut core, expected) = verifier.into_session(0, 99);
        let mut report = CostReport::default();
        let res = drive_sumcheck(&mut prover, &mut core, expected, &mut report, None);
        assert!(res.is_err());
    }
}

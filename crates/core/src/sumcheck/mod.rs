//! The multi-round sum-check machinery of Section 3.
//!
//! All four aggregation protocols (SELF-JOIN SIZE, frequency moments,
//! INNER PRODUCT, RANGE-SUM) share the same skeleton, run over the
//! multilinear parameterisation `ℓ = 2`, `d = log₂ u`:
//!
//! 1. Before the stream, `V` draws a secret random point
//!    `r = (r_1, …, r_d) ∈ Z_p^d` and, while observing the stream, evaluates
//!    the LDE(s) `f(r)` incrementally (Theorem 1).
//! 2. After the stream, `P` sends a univariate polynomial `g_1` claimed to
//!    equal the sum of the target polynomial over all but the first
//!    variable. `V` learns the claimed answer `Σ_{x₁∈[2]} g_1(x₁)`.
//! 3. In round `j > 1`, `V` reveals `r_{j−1}`; `P` answers with `g_j`; `V`
//!    checks the *round-sum consistency* `Σ_{x∈[2]} g_j(x) = g_{j−1}(r_{j−1})`.
//! 4. After round `d`, `V` checks `g_d(r_d)` against its own streamed
//!    evaluation — `f_a(r)²` for F₂, `f_a(r)·f_b(r)` for inner product, etc.
//!    `r_d` is never revealed.
//!
//! [`SumCheckVerifierCore`] implements steps 2–4 generically;
//! [`RoundProver`] is the honest-prover interface (each protocol supplies
//! its own message rule over the shared [`crate::fold::FoldVector`]);
//! [`drive_sumcheck`] orchestrates an execution, counts costs, and hosts the
//! failure-injection hook used by the tamper suite.

pub mod aggregate;
pub mod f2;
pub mod general_ell;
pub mod inner_product;
pub mod moments;
pub mod oneshot;
pub mod range_sum;

pub use aggregate::{drive_sumcheck_sharded, AggregatingVerifier, ShardAdversary};
pub use oneshot::{prove_oneshot, verify_oneshot_grid, OneShotProof, OneShotWalk, ProverWalk};

use sip_field::lagrange::eval_from_grid_evals;
use sip_field::PrimeField;

use crate::channel::CostReport;
use crate::error::Rejection;

/// The verifier's round-by-round state for a `d`-round sum-check over
/// `ℓ = 2` with per-round degree bound `degree`.
#[derive(Clone, Debug)]
pub struct SumCheckVerifierCore<F: PrimeField> {
    point: Vec<F>,
    degree: usize,
    round: usize,
    output: F,
    claim: F,
}

impl<F: PrimeField> SumCheckVerifierCore<F> {
    /// Creates the state from the verifier's pre-drawn secret point and the
    /// per-round degree bound. Messages must carry exactly `degree + 1`
    /// evaluations (at `0, …, degree`).
    pub fn new(point: Vec<F>, degree: usize) -> Self {
        assert!(!point.is_empty());
        assert!(degree >= 1, "round polynomials must have positive degree");
        SumCheckVerifierCore {
            point,
            degree,
            round: 0,
            output: F::ZERO,
            claim: F::ZERO,
        }
    }

    /// Number of rounds `d`.
    pub fn rounds(&self) -> usize {
        self.point.len()
    }

    /// Rounds processed so far.
    pub fn rounds_done(&self) -> usize {
        self.round
    }

    /// The answer claimed by the prover's first message
    /// (`Σ_{x₁∈[2]} g_1(x₁)`); meaningful only after round 1 and *trusted*
    /// only after [`Self::finalize`] accepts.
    pub fn claimed_output(&self) -> F {
        self.output
    }

    /// Processes the round-`j` polynomial, sent as `degree + 1` evaluations
    /// at `0, …, degree`.
    ///
    /// Returns the challenge to forward to the prover, or `None` after the
    /// last round (`r_d` stays secret).
    pub fn receive(&mut self, evals: &[F]) -> Result<Option<F>, Rejection> {
        assert!(
            self.round < self.point.len(),
            "all rounds already processed"
        );
        let round = self.round + 1;
        if evals.len() != self.degree + 1 {
            return Err(Rejection::WrongMessageLength {
                round,
                expected: self.degree + 1,
                got: evals.len(),
            });
        }
        let grid_sum = evals[0] + evals[1]; // Σ_{x∈[2]} g_j(x)
        if self.round == 0 {
            self.output = grid_sum;
        } else if grid_sum != self.claim {
            return Err(Rejection::RoundSumMismatch { round });
        }
        self.claim = eval_from_grid_evals(evals, self.point[self.round]);
        self.round += 1;
        Ok(if self.round < self.point.len() {
            Some(self.point[self.round - 1])
        } else {
            None
        })
    }

    /// Final test: after all `d` rounds, `g_d(r_d)` must equal the
    /// verifier's independently streamed value. On success returns the now
    /// *verified* output.
    pub fn finalize(&self, streamed: F) -> Result<F, Rejection> {
        assert_eq!(
            self.round,
            self.point.len(),
            "finalize called before all rounds were processed"
        );
        if self.claim != streamed {
            return Err(Rejection::FinalCheckFailed);
        }
        Ok(self.output)
    }

    /// Words of working memory attributable to this session: the current
    /// claim, the output, and a round counter.
    pub fn space_words(&self) -> usize {
        3
    }

    /// The revealed challenge prefix `r_1, …, r_{d−1}` of a one-shot run:
    /// every coordinate of the secret point except the last, which the
    /// final check keeps secret.
    pub fn challenge_prefix(&self) -> &[F] {
        &self.point[..self.point.len() - 1]
    }

    /// Verifies a complete [`oneshot::OneShotProof`] against this core's
    /// secret point: transcript replay, digest comparison, then the
    /// deferred batched round checks (see [`oneshot::verify_oneshot_grid`]).
    /// `transcript` must be the same
    /// [`crate::transcript::query_transcript`] context the prover sealed.
    pub fn verify_oneshot(
        &self,
        streamed: F,
        transcript: crate::transcript::Transcript,
        proof: &oneshot::OneShotProof<F>,
    ) -> Result<F, Rejection> {
        oneshot::verify_oneshot_grid(&self.point, self.degree, 2, streamed, transcript, proof)
    }
}

/// An honest sum-check prover: produces the round polynomial, then binds
/// the revealed challenge.
pub trait RoundProver<F: PrimeField> {
    /// Per-round degree bound (messages carry `degree() + 1` evaluations).
    fn degree(&self) -> usize;
    /// Total number of rounds `d`.
    fn rounds(&self) -> usize;
    /// The polynomial for the current round, as evaluations at
    /// `0, …, degree()`.
    fn message(&mut self) -> Vec<F>;
    /// Binds the current variable to the revealed challenge `r_j`.
    fn bind(&mut self, r: F);
}

/// A hook mutating prover messages in flight; `round` is 1-based.
pub type Adversary<'a, F> = &'a mut dyn FnMut(usize, &mut Vec<F>);

/// Runs the interactive phase: prover messages through the verifier core,
/// challenges back, final check against `streamed`.
///
/// `report` accrues the communication; an optional [`Adversary`] corrupts
/// messages in flight (the honest run passes `None`). On acceptance returns
/// the verified output.
pub fn drive_sumcheck<F: PrimeField>(
    prover: &mut dyn RoundProver<F>,
    core: &mut SumCheckVerifierCore<F>,
    streamed: F,
    report: &mut CostReport,
    mut adversary: Option<Adversary<'_, F>>,
) -> Result<F, Rejection> {
    assert_eq!(
        prover.rounds(),
        core.rounds(),
        "prover/verifier disagree on d"
    );
    for round in 1..=core.rounds() {
        let mut msg = prover.message();
        if let Some(adv) = adversary.as_mut() {
            adv(round, &mut msg);
        }
        report.rounds += 1;
        report.p_to_v_words += msg.len();
        if let Some(challenge) = core.receive(&msg)? {
            report.v_to_p_words += 1;
            prover.bind(challenge);
        }
    }
    core.finalize(streamed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sip_field::Fp61;

    fn f(x: u64) -> Fp61 {
        Fp61::from_u64(x)
    }

    #[test]
    fn rejects_wrong_length() {
        let mut core = SumCheckVerifierCore::new(vec![f(5), f(9)], 2);
        let err = core.receive(&[f(1), f(2)]).unwrap_err();
        assert!(matches!(
            err,
            Rejection::WrongMessageLength {
                round: 1,
                expected: 3,
                got: 2
            }
        ));
    }

    #[test]
    fn first_round_sets_output_later_rounds_check() {
        // d = 2, degree 1 polynomials for simplicity of hand computation.
        let r1 = f(10);
        let mut core = SumCheckVerifierCore::new(vec![r1, f(3)], 1);
        // g1 evals (0,1) = (4, 6): output = 10, claim = g1(10) = 4 + 10·2 = 24.
        let ch = core.receive(&[f(4), f(6)]).unwrap();
        assert_eq!(ch, Some(r1));
        assert_eq!(core.claimed_output(), f(10));
        // round 2 must sum to 24.
        let err = core.clone().receive(&[f(1), f(2)]).unwrap_err();
        assert!(matches!(err, Rejection::RoundSumMismatch { round: 2 }));
        // consistent message: evals (11, 13): sum 24 ✓; claim = 11 + 3·2 = 17.
        let ch = core.receive(&[f(11), f(13)]).unwrap();
        assert_eq!(ch, None, "r_d must stay secret");
        assert_eq!(core.finalize(f(17)).unwrap(), f(10));
        assert!(matches!(
            core.finalize(f(18)),
            Err(Rejection::FinalCheckFailed)
        ));
    }

    #[test]
    #[should_panic(expected = "finalize called before")]
    fn premature_finalize_panics() {
        let core = SumCheckVerifierCore::<Fp61>::new(vec![f(1), f(2)], 2);
        let _ = core.finalize(f(0));
    }
}

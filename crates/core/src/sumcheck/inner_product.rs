//! INNER PRODUCT / join size `a·b = Σ_i a_i·b_i` (Section 3.2).
//!
//! "The above protocol for F₂ can be adapted to verify the inner product:
//! … we now have two LDEs f_a and f_b … The prover now provides polynomials
//! that are claimed to be sums of f_a·f_b." The verifier evaluates *both*
//! LDEs at the *same* secret point `r` while the two streams arrive
//! (interleaved or one after the other — linearity makes order irrelevant),
//! and the final check becomes `g_d(r_d) = f_a(r)·f_b(r)`.

use rand::Rng;
use sip_field::PrimeField;
use sip_lde::{LdeParams, StreamingLdeEvaluator};
use sip_streaming::{FrequencyVector, Update};

use crate::channel::CostReport;
use crate::engine::{Combine, FoldSource, ProverPool};
use crate::error::Rejection;
use crate::fold::FoldVector;

use super::moments::VerifiedAggregate;
use super::{drive_sumcheck, Adversary, RoundProver, SumCheckVerifierCore};

/// Streaming verifier for the inner product of two streams.
#[derive(Clone, Debug)]
pub struct InnerProductVerifier<F: PrimeField> {
    lde_a: StreamingLdeEvaluator<F>,
    lde_b: StreamingLdeEvaluator<F>,
}

impl<F: PrimeField> InnerProductVerifier<F> {
    /// Draws one secret point `r`, evaluated against both streams.
    pub fn new<R: Rng + ?Sized>(log_u: u32, rng: &mut R) -> Self {
        let lde_a = StreamingLdeEvaluator::random(LdeParams::binary(log_u), rng);
        let lde_b = StreamingLdeEvaluator::new(LdeParams::binary(log_u), lde_a.point().to_vec());
        InnerProductVerifier { lde_a, lde_b }
    }

    /// The stream-`A` digest (checkpoint state).
    pub fn evaluator_a(&self) -> &StreamingLdeEvaluator<F> {
        &self.lde_a
    }

    /// The stream-`B` digest (checkpoint state; same point as `A`).
    pub fn evaluator_b(&self) -> &StreamingLdeEvaluator<F> {
        &self.lde_b
    }

    /// Rebuilds the verifier around two restored digests (checkpoint
    /// resume).
    ///
    /// # Panics
    /// Panics unless both evaluators are binary and share one point.
    pub fn from_evaluators(
        lde_a: StreamingLdeEvaluator<F>,
        lde_b: StreamingLdeEvaluator<F>,
    ) -> Self {
        assert_eq!(lde_a.params().base(), 2, "INNER PRODUCT is binary");
        assert_eq!(
            lde_a.params(),
            lde_b.params(),
            "digests must agree on (ℓ, d)"
        );
        assert_eq!(lde_a.point(), lde_b.point(), "digests must share the point");
        InnerProductVerifier { lde_a, lde_b }
    }

    /// Processes an update to stream `A`.
    pub fn update_a(&mut self, up: Update) {
        self.lde_a.update(up);
    }

    /// Processes an update to stream `B`.
    pub fn update_b(&mut self, up: Update) {
        self.lde_b.update(up);
    }

    /// Processes a whole batch of stream-`A` updates (delayed-reduction
    /// path, bit-identical to per-update [`Self::update_a`]).
    pub fn update_a_batch(&mut self, batch: &[Update]) {
        self.lde_a.update_batch(batch);
    }

    /// Processes a whole batch of stream-`B` updates.
    pub fn update_b_batch(&mut self, batch: &[Update]) {
        self.lde_b.update_batch(batch);
    }

    /// Verifier space in words: the shared point plus two accumulators.
    pub fn space_words(&self) -> usize {
        self.lde_a.point().len() + 2 + 3
    }

    /// Ends streaming; final check value is `f_a(r)·f_b(r)`.
    pub fn into_session(self) -> (SumCheckVerifierCore<F>, F) {
        let expected = self.lde_a.value() * self.lde_b.value();
        (
            SumCheckVerifierCore::new(self.lde_a.point().to_vec(), 2),
            expected,
        )
    }
}

/// The inner-product per-pair rule:
/// `g_j(c) = Σ_m (a_lo + c·Δa)(b_lo + c·Δb)` at `c = 0, 1, 2`.
pub struct InnerProductCombine;

impl<F: PrimeField> Combine<F> for InnerProductCombine {
    fn slots(&self) -> usize {
        3
    }

    #[inline]
    fn accumulate(&self, _m: u64, a: &[F], b: &[F], acc: &mut [F::DotAcc]) {
        let (alo, ahi) = (a[0], a[1]);
        let (blo, bhi) = (b[0], b[1]);
        F::acc_add_prod(&mut acc[0], alo, blo);
        F::acc_add_prod(&mut acc[1], ahi, bhi);
        let a2 = ahi + (ahi - alo);
        let b2 = bhi + (bhi - blo);
        F::acc_add_prod(&mut acc[2], a2, b2);
    }
}

/// Honest inner-product prover: folds both vectors in lockstep.
#[derive(Clone, Debug)]
pub struct InnerProductProver<F: PrimeField> {
    a: FoldVector<F>,
    b: FoldVector<F>,
    pool: ProverPool,
}

impl<F: PrimeField> InnerProductProver<F> {
    /// Builds prover state from both materialised vectors (serial engine).
    pub fn new(a: &FrequencyVector, b: &FrequencyVector, log_u: u32) -> Self {
        Self::with_pool(a, b, log_u, ProverPool::SERIAL)
    }

    /// Like [`Self::new`] with an explicit round-message scheduling pool.
    pub fn with_pool(
        a: &FrequencyVector,
        b: &FrequencyVector,
        log_u: u32,
        pool: ProverPool,
    ) -> Self {
        InnerProductProver {
            a: FoldVector::from_frequency(a, log_u),
            b: FoldVector::from_frequency(b, log_u),
            pool,
        }
    }
}

impl<F: PrimeField> RoundProver<F> for InnerProductProver<F> {
    fn degree(&self) -> usize {
        2
    }

    fn rounds(&self) -> usize {
        self.a.bits() as usize
    }

    fn message(&mut self) -> Vec<F> {
        self.pool.fold_message(
            FoldSource::UnionPairs(&self.a, &self.b),
            &InnerProductCombine,
        )
    }

    fn bind(&mut self, r: F) {
        self.a.bind(r);
        self.b.bind(r);
    }
}

/// Runs the complete honest INNER PRODUCT protocol over two streams.
pub fn run_inner_product<F: PrimeField, R: Rng + ?Sized>(
    log_u: u32,
    stream_a: &[Update],
    stream_b: &[Update],
    rng: &mut R,
) -> Result<VerifiedAggregate<F>, Rejection> {
    run_inner_product_with_adversary(log_u, stream_a, stream_b, rng, None)
}

/// Like [`run_inner_product`] with a message-corruption hook.
pub fn run_inner_product_with_adversary<F: PrimeField, R: Rng + ?Sized>(
    log_u: u32,
    stream_a: &[Update],
    stream_b: &[Update],
    rng: &mut R,
    adversary: Option<Adversary<'_, F>>,
) -> Result<VerifiedAggregate<F>, Rejection> {
    let mut verifier = InnerProductVerifier::<F>::new(log_u, rng);
    for &up in stream_a {
        verifier.update_a(up);
    }
    for &up in stream_b {
        verifier.update_b(up);
    }
    let space = verifier.space_words();

    let fa = FrequencyVector::from_stream(1 << log_u, stream_a);
    let fb = FrequencyVector::from_stream(1 << log_u, stream_b);
    let mut prover = InnerProductProver::new(&fa, &fb, log_u);

    let (mut core, expected) = verifier.into_session();
    let mut report = CostReport {
        verifier_space_words: space,
        ..CostReport::default()
    };
    let value = drive_sumcheck(&mut prover, &mut core, expected, &mut report, adversary)?;
    Ok(VerifiedAggregate { value, report })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sip_field::Fp61;
    use sip_streaming::workloads;

    #[test]
    fn completeness_random_streams() {
        let mut rng = StdRng::seed_from_u64(1);
        let log_u = 9;
        let sa = workloads::uniform(400, 1 << log_u, 15, 2);
        let sb = workloads::uniform(300, 1 << log_u, 15, 3);
        let fa = FrequencyVector::from_stream(1 << log_u, &sa);
        let fb = FrequencyVector::from_stream(1 << log_u, &sb);
        let got = run_inner_product::<Fp61, _>(log_u, &sa, &sb, &mut rng).unwrap();
        assert_eq!(got.value, Fp61::from_u128(fa.inner_product(&fb) as u128));
    }

    #[test]
    fn self_inner_product_is_f2() {
        let mut rng = StdRng::seed_from_u64(2);
        let s = workloads::paper_f2(1 << 7, 4);
        let ip = run_inner_product::<Fp61, _>(7, &s, &s, &mut rng).unwrap();
        let f2 = super::super::f2::run_f2::<Fp61, _>(7, &s, &mut rng).unwrap();
        assert_eq!(ip.value, f2.value);
    }

    #[test]
    fn disjoint_supports_give_zero() {
        let mut rng = StdRng::seed_from_u64(3);
        let sa = vec![Update::new(1, 5), Update::new(3, 2)];
        let sb = vec![Update::new(0, 7), Update::new(2, 9)];
        let got = run_inner_product::<Fp61, _>(4, &sa, &sb, &mut rng).unwrap();
        assert_eq!(got.value, Fp61::ZERO);
    }

    #[test]
    fn identity_f2_sum_decomposition() {
        // F2(a + b) = F2(a) + F2(b) + 2·a·b — the paper's alternative route
        // to the inner product. Check the protocols agree with the algebra.
        let mut rng = StdRng::seed_from_u64(4);
        let log_u = 8;
        let sa = workloads::uniform(200, 1 << log_u, 10, 5);
        let sb = workloads::uniform(250, 1 << log_u, 10, 6);
        let mut sab = sa.clone();
        sab.extend_from_slice(&sb);
        let f2a = super::super::f2::run_f2::<Fp61, _>(log_u, &sa, &mut rng)
            .unwrap()
            .value;
        let f2b = super::super::f2::run_f2::<Fp61, _>(log_u, &sb, &mut rng)
            .unwrap()
            .value;
        let f2ab = super::super::f2::run_f2::<Fp61, _>(log_u, &sab, &mut rng)
            .unwrap()
            .value;
        let ip = run_inner_product::<Fp61, _>(log_u, &sa, &sb, &mut rng)
            .unwrap()
            .value;
        assert_eq!(f2ab, f2a + f2b + ip + ip);
    }

    #[test]
    fn tampering_rejected() {
        let mut rng = StdRng::seed_from_u64(5);
        let sa = workloads::uniform(100, 1 << 6, 5, 7);
        let sb = workloads::uniform(100, 1 << 6, 5, 8);
        let mut adv = |round: usize, msg: &mut Vec<Fp61>| {
            if round == 3 {
                msg[1] = msg[1] + msg[1]; // double one evaluation
            }
        };
        let res =
            run_inner_product_with_adversary::<Fp61, _>(6, &sa, &sb, &mut rng, Some(&mut adv));
        assert!(res.is_err());
    }
}

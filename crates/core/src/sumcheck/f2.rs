//! SELF-JOIN SIZE / `F₂` (Section 3.1) — the paper's flagship protocol.
//!
//! A `(log u, log u)`-protocol: the verifier streams `f_a(r)` (Theorem 1),
//! then over `d = log₂ u` rounds receives degree-2 polynomials
//!
//! ```text
//! g_j(x_j) = Σ_{x_{j+1..d} ∈ [2]^{d−j}} f_a²(r_1, …, r_{j−1}, x_j, …, x_d)
//! ```
//!
//! and accepts iff every consecutive pair is consistent and
//! `g_d(r_d) = f_a(r)²`. This module is the `k = 2` specialisation of
//! [`super::moments`] with a squared-fold prover fast path — the code the
//! Figure 2 benchmarks exercise.

use rand::Rng;
use sip_field::PrimeField;
use sip_lde::{LdeParams, StreamingLdeEvaluator};
use sip_streaming::{FrequencyVector, Update};

use crate::channel::CostReport;
use crate::engine::{Combine, FoldSource, ProverPool};
use crate::error::Rejection;
use crate::fold::FoldVector;

use super::moments::VerifiedAggregate;
use super::{drive_sumcheck, Adversary, RoundProver, SumCheckVerifierCore};

/// Streaming verifier for SELF-JOIN SIZE over `[2^log_u]`.
///
/// Space: `log u + 1` words of protocol state; time per update `O(log u)`.
#[derive(Clone, Debug)]
pub struct F2Verifier<F: PrimeField> {
    lde: StreamingLdeEvaluator<F>,
}

impl<F: PrimeField> F2Verifier<F> {
    /// Draws the secret point `r` and prepares to observe the stream.
    pub fn new<R: Rng + ?Sized>(log_u: u32, rng: &mut R) -> Self {
        F2Verifier {
            lde: StreamingLdeEvaluator::random(LdeParams::binary(log_u), rng),
        }
    }

    /// The streaming digest (the verifier's entire protocol state) — what a
    /// checkpoint must capture.
    pub fn evaluator(&self) -> &StreamingLdeEvaluator<F> {
        &self.lde
    }

    /// Rebuilds the verifier around a restored digest (checkpoint resume).
    ///
    /// # Panics
    /// Panics if the evaluator is not over the binary parameterisation
    /// this protocol runs on.
    pub fn from_evaluator(lde: StreamingLdeEvaluator<F>) -> Self {
        assert_eq!(lde.params().base(), 2, "F2 runs over the binary LDE");
        F2Verifier { lde }
    }

    /// Processes one stream update.
    pub fn update(&mut self, up: Update) {
        self.lde.update(up);
    }

    /// Processes a whole stream.
    pub fn update_all(&mut self, stream: &[Update]) {
        self.lde.update_all(stream);
    }

    /// Processes a whole batch through the delayed-reduction ingest path;
    /// the digest value is bit-identical to per-update [`Self::update`].
    pub fn update_batch(&mut self, batch: &[Update]) {
        self.lde.update_batch(batch);
    }

    /// Verifier space in words.
    pub fn space_words(&self) -> usize {
        self.lde.space_words() + 3
    }

    /// Ends streaming; returns the round-checking core and the final-check
    /// value `f_a(r)²`.
    pub fn into_session(self) -> (SumCheckVerifierCore<F>, F) {
        let fa_r = self.lde.value();
        (
            SumCheckVerifierCore::new(self.lde.point().to_vec(), 2),
            fa_r * fa_r,
        )
    }
}

/// The F₂ per-pair rule: `g_j(c) = Σ_m (lo + c·(hi − lo))²` at
/// `c = 0, 1, 2`.
pub struct F2Combine;

impl<F: PrimeField> Combine<F> for F2Combine {
    fn slots(&self) -> usize {
        3
    }

    #[inline]
    fn accumulate(&self, _m: u64, a: &[F], _b: &[F], acc: &mut [F::DotAcc]) {
        let (lo, hi) = (a[0], a[1]);
        F::acc_add_prod(&mut acc[0], lo, lo);
        F::acc_add_prod(&mut acc[1], hi, hi);
        let v2 = hi + (hi - lo);
        F::acc_add_prod(&mut acc[2], v2, v2);
    }
}

/// Honest `F₂` prover (Appendix B.1 fold with squared combine).
#[derive(Clone, Debug)]
pub struct F2Prover<F: PrimeField> {
    fold: FoldVector<F>,
    pool: ProverPool,
}

impl<F: PrimeField> F2Prover<F> {
    /// Builds prover state from the materialised frequency vector (serial
    /// engine).
    pub fn new(fv: &FrequencyVector, log_u: u32) -> Self {
        Self::with_pool(fv, log_u, ProverPool::SERIAL)
    }

    /// Like [`Self::new`] with an explicit round-message scheduling pool.
    pub fn with_pool(fv: &FrequencyVector, log_u: u32, pool: ProverPool) -> Self {
        F2Prover {
            fold: FoldVector::from_frequency(fv, log_u),
            pool,
        }
    }
}

impl<F: PrimeField> RoundProver<F> for F2Prover<F> {
    fn degree(&self) -> usize {
        2
    }

    fn rounds(&self) -> usize {
        self.fold.bits() as usize
    }

    fn message(&mut self) -> Vec<F> {
        self.pool
            .fold_message(FoldSource::Pairs(&self.fold), &F2Combine)
    }

    fn bind(&mut self, r: F) {
        self.fold.bind(r);
    }
}

/// Runs the complete honest SELF-JOIN SIZE protocol.
pub fn run_f2<F: PrimeField, R: Rng + ?Sized>(
    log_u: u32,
    stream: &[Update],
    rng: &mut R,
) -> Result<VerifiedAggregate<F>, Rejection> {
    run_f2_with_adversary(log_u, stream, rng, None)
}

/// Like [`run_f2`] with a message-corruption hook.
pub fn run_f2_with_adversary<F: PrimeField, R: Rng + ?Sized>(
    log_u: u32,
    stream: &[Update],
    rng: &mut R,
    adversary: Option<Adversary<'_, F>>,
) -> Result<VerifiedAggregate<F>, Rejection> {
    let mut verifier = F2Verifier::<F>::new(log_u, rng);
    verifier.update_all(stream);
    let space = verifier.space_words();

    let fv = FrequencyVector::from_stream(1 << log_u, stream);
    let mut prover = F2Prover::new(&fv, log_u);

    let (mut core, expected) = verifier.into_session();
    let mut report = CostReport {
        verifier_space_words: space,
        ..CostReport::default()
    };
    let value = drive_sumcheck(&mut prover, &mut core, expected, &mut report, adversary)?;
    Ok(VerifiedAggregate { value, report })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sip_field::Fp61;
    use sip_streaming::workloads;

    #[test]
    fn completeness_paper_workload() {
        let mut rng = StdRng::seed_from_u64(1);
        for log_u in [4u32, 8, 10] {
            let stream = workloads::paper_f2(1 << log_u, log_u as u64);
            let fv = FrequencyVector::from_stream(1 << log_u, &stream);
            let got = run_f2::<Fp61, _>(log_u, &stream, &mut rng).unwrap();
            assert_eq!(
                got.value,
                Fp61::from_u128(fv.self_join_size() as u128),
                "log_u={log_u}"
            );
        }
    }

    #[test]
    fn matches_general_moment_protocol() {
        let mut rng = StdRng::seed_from_u64(2);
        let stream = workloads::uniform(500, 1 << 9, 30, 11);
        let f2 = run_f2::<Fp61, _>(9, &stream, &mut rng).unwrap();
        let fk = super::super::moments::run_moment::<Fp61, _>(2, 9, &stream, &mut rng).unwrap();
        assert_eq!(f2.value, fk.value);
        // F2 fast path also saves communication: same shape as k = 2.
        assert_eq!(f2.report.p_to_v_words, fk.report.p_to_v_words);
    }

    #[test]
    fn cost_shape_is_logarithmic() {
        let mut rng = StdRng::seed_from_u64(3);
        for log_u in [6u32, 10, 14] {
            let stream = workloads::uniform(100, 1 << log_u, 5, 13);
            let got = run_f2::<Fp61, _>(log_u, &stream, &mut rng).unwrap();
            let d = log_u as usize;
            assert_eq!(got.report.rounds, d);
            assert_eq!(got.report.p_to_v_words, 3 * d);
            assert_eq!(got.report.v_to_p_words, d - 1);
            assert_eq!(got.report.verifier_space_words, d + 1 + 3);
        }
    }

    #[test]
    fn empty_stream_gives_zero() {
        let mut rng = StdRng::seed_from_u64(4);
        let got = run_f2::<Fp61, _>(6, &[], &mut rng).unwrap();
        assert_eq!(got.value, Fp61::ZERO);
    }

    #[test]
    fn singleton_stream() {
        let mut rng = StdRng::seed_from_u64(5);
        let stream = [Update::new(37, 5)];
        let got = run_f2::<Fp61, _>(6, &stream, &mut rng).unwrap();
        assert_eq!(got.value, Fp61::from_u64(25));
    }

    #[test]
    fn negative_frequencies_square_correctly() {
        // a = [−3, 2]: F2 = 9 + 4 = 13 over the field.
        let mut rng = StdRng::seed_from_u64(6);
        let stream = [Update::new(0, -3), Update::new(1, 2)];
        let got = run_f2::<Fp61, _>(1, &stream, &mut rng).unwrap();
        assert_eq!(got.value, Fp61::from_u64(13));
    }

    #[test]
    fn every_round_corruption_is_caught() {
        // Exhaustive single-position corruption across all rounds and all
        // three evaluation slots: the "we also tried modifying the prover's
        // messages … in all cases the protocols caught the error" study.
        let stream = workloads::paper_f2(1 << 6, 77);
        for round in 1..=6usize {
            for slot in 0..3usize {
                let mut rng = StdRng::seed_from_u64(1000 + (round * 3 + slot) as u64);
                let mut adv = |rd: usize, msg: &mut Vec<Fp61>| {
                    if rd == round {
                        msg[slot] += Fp61::from_u64(1);
                    }
                };
                let res = run_f2_with_adversary::<Fp61, _>(6, &stream, &mut rng, Some(&mut adv));
                assert!(res.is_err(), "round={round} slot={slot} accepted!");
            }
        }
    }

    #[test]
    fn prover_for_wrong_stream_is_rejected() {
        // Prover computes an honest proof — for slightly different data.
        let mut rng = StdRng::seed_from_u64(7);
        let log_u = 8;
        let stream = workloads::paper_f2(1 << log_u, 21);
        let mut wrong = stream.clone();
        wrong[17].delta += 1;

        let mut verifier = F2Verifier::<Fp61>::new(log_u, &mut rng);
        verifier.update_all(&stream);
        let fv = FrequencyVector::from_stream(1 << log_u, &wrong);
        let mut prover = F2Prover::new(&fv, log_u);
        let (mut core, expected) = verifier.into_session();
        let mut report = CostReport::default();
        let res = drive_sumcheck(&mut prover, &mut core, expected, &mut report, None);
        assert!(matches!(res, Err(Rejection::FinalCheckFailed)));
    }
}

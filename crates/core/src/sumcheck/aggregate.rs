//! The sum-check generalised to a fleet of `S` provers (sharded
//! delegation).
//!
//! Every sum-check target in this workspace is *linear in the data*: for a
//! stream partitioned by index range into `a = a_0 + … + a_{S−1}` with
//! disjoint supports,
//!
//! ```text
//! F₂(a)   = Σ_s F₂(a_s)          Fₖ(a)  = Σ_s Fₖ(a_s)
//! a·b     = Σ_s a_s·b_s          Σ_{[l,r]} a = Σ_s Σ_{[l,r]} a_s
//! ```
//!
//! so the verifier runs `S` sum-checks *in lockstep over one shared secret
//! point `r`*: every shard receives the same per-round randomness
//! (broadcast once), and the claimed aggregate is the sum of the per-shard
//! round-1 claims. Verifying the per-shard transcripts individually is
//! exactly as strong as verifying their sum (linearity of every check) —
//! and strictly more useful, because a failure is *attributable*: the
//! verifier keeps per-prover residual state (`S` claims instead of one) and
//! rejects with [`Rejection::Blame`] naming the guilty shard, at `S − 1`
//! extra words of space.
//!
//! The single-prover protocol is the `S = 1` special case and produces an
//! identical transcript — [`AggregatingVerifier`] wraps unchanged
//! [`SumCheckVerifierCore`]s sharing one evaluation point.

use sip_field::PrimeField;

use crate::channel::{ClusterCostReport, CostReport};
use crate::error::Rejection;
use crate::transcript::Transcript;

use super::oneshot::{prove_oneshot, OneShotProof};
use super::{RoundProver, SumCheckVerifierCore};

/// Round-by-round verifier state for `S` lockstep sum-checks over a shared
/// secret point.
///
/// Space: `S` cores of 3 words each plus the shared point — the paper's
/// `O(log u)` plus `O(S)` residuals.
#[derive(Clone, Debug)]
pub struct AggregatingVerifier<F: PrimeField> {
    cores: Vec<SumCheckVerifierCore<F>>,
}

impl<F: PrimeField> AggregatingVerifier<F> {
    /// Creates the state for `shards` provers answering over the shared
    /// secret `point` with per-round degree bound `degree`.
    ///
    /// # Panics
    /// Panics if `shards` is zero (a fleet needs at least one prover) or if
    /// the point/degree are invalid (see [`SumCheckVerifierCore::new`]).
    pub fn new(point: Vec<F>, degree: usize, shards: usize) -> Self {
        assert!(shards >= 1, "a fleet needs at least one prover");
        AggregatingVerifier {
            cores: vec![SumCheckVerifierCore::new(point, degree); shards],
        }
    }

    /// Number of provers `S`.
    pub fn shards(&self) -> usize {
        self.cores.len()
    }

    /// Number of rounds `d` (identical for every shard).
    pub fn rounds(&self) -> usize {
        self.cores[0].rounds()
    }

    /// Rounds processed so far.
    pub fn rounds_done(&self) -> usize {
        self.cores[0].rounds_done()
    }

    /// The aggregate answer claimed by the fleet's first messages
    /// (`Σ_s Σ_{x∈[2]} g₁⁽ˢ⁾(x)`); trusted only after [`Self::finalize`].
    pub fn claimed_output(&self) -> F {
        self.cores
            .iter()
            .fold(F::ZERO, |acc, c| acc + c.claimed_output())
    }

    /// Each shard's individually claimed output (same caveat).
    pub fn claimed_outputs(&self) -> Vec<F> {
        self.cores.iter().map(|c| c.claimed_output()).collect()
    }

    /// Processes round `j`: one polynomial per shard, in shard order.
    ///
    /// Each message is checked against *its own shard's* previous claim —
    /// per-prover residual checks, so an inconsistency names its shard.
    /// Returns the shared challenge to broadcast, or `None` after the last
    /// round (`r_d` stays secret).
    ///
    /// # Panics
    /// Panics if `polys.len() != self.shards()` or all rounds are done.
    pub fn receive_round(&mut self, polys: &[Vec<F>]) -> Result<Option<F>, Rejection> {
        assert_eq!(polys.len(), self.cores.len(), "one polynomial per shard");
        let mut challenge = None;
        for (s, (core, poly)) in self.cores.iter_mut().zip(polys).enumerate() {
            // All cores share the point, so every shard yields the same
            // challenge; keep the last (= any) one.
            challenge = core
                .receive(poly)
                .map_err(|e| Rejection::blame(s as u32, e))?;
        }
        Ok(challenge)
    }

    /// Final test: shard `s`'s last polynomial must match the verifier's
    /// own streamed evaluation for that shard's sub-vector (`streamed[s]`,
    /// e.g. `f_{a_s}(r)²` for F₂). On success returns the now *verified*
    /// aggregate `Σ_s output_s`.
    ///
    /// # Panics
    /// Panics if `streamed.len() != self.shards()` or rounds remain.
    pub fn finalize(&self, streamed: &[F]) -> Result<F, Rejection> {
        assert_eq!(
            streamed.len(),
            self.cores.len(),
            "one streamed value per shard"
        );
        let mut sum = F::ZERO;
        for (s, (core, &expected)) in self.cores.iter().zip(streamed).enumerate() {
            sum += core
                .finalize(expected)
                .map_err(|e| Rejection::blame(s as u32, e))?;
        }
        Ok(sum)
    }

    /// Words of aggregating-verifier working memory: per-shard residuals
    /// plus the shared point, counted once (each core's copy is derived
    /// data, not independent state).
    pub fn space_words(&self) -> usize {
        self.cores.len() * self.cores[0].space_words() + self.rounds()
    }

    /// The revealed challenge prefix `r_1, …, r_{d−1}` — shared by every
    /// shard, since all cores run over the same secret point.
    pub fn challenge_prefix(&self) -> &[F] {
        self.cores[0].challenge_prefix()
    }

    /// Verifies one [`OneShotProof`] per shard against the shared challenge
    /// chain: every shard's transcript was seeded with the *same* prefix
    /// (plus its own shard identity), so a shard answering a different
    /// chain dies on its digest check, and any algebraic lie dies on its
    /// own core's deferred checks — either way the rejection is
    /// [`Rejection::Blame`] naming exactly that shard. On acceptance
    /// returns the verified aggregate `Σ_s output_s`.
    ///
    /// # Panics
    /// Panics if `transcripts`, `proofs`, or `streamed` disagree with the
    /// shard count.
    pub fn verify_oneshot(
        &self,
        streamed: &[F],
        transcripts: Vec<Transcript>,
        proofs: &[OneShotProof<F>],
    ) -> Result<F, Rejection> {
        assert_eq!(streamed.len(), self.cores.len(), "one value per shard");
        assert_eq!(
            transcripts.len(),
            self.cores.len(),
            "one transcript per shard"
        );
        assert_eq!(proofs.len(), self.cores.len(), "one proof per shard");
        let mut sum = F::ZERO;
        for (s, ((core, t), proof)) in self.cores.iter().zip(transcripts).zip(proofs).enumerate() {
            sum += core
                .verify_oneshot(streamed[s], t, proof)
                .map_err(|e| Rejection::blame(s as u32, e))?;
        }
        Ok(sum)
    }

    /// Verifies a single shard's one-shot proof in isolation, returning
    /// that shard's verified contribution. This is the replica
    /// cross-examination primitive: honest replicas of a shard hold the
    /// same sub-vector and the same transcript context (shard identity
    /// binds `(index, count)`, *not* the replica), so each replica's proof
    /// can be checked independently against the same streamed digest — and
    /// when two replicas disagree, exactly one of them fails here.
    ///
    /// # Panics
    /// Panics if `shard >= self.shards()`.
    pub fn verify_oneshot_shard(
        &self,
        shard: usize,
        streamed: F,
        transcript: Transcript,
        proof: &OneShotProof<F>,
    ) -> Result<F, Rejection> {
        self.cores[shard]
            .verify_oneshot(streamed, transcript, proof)
            .map_err(|e| Rejection::blame(shard as u32, e))
    }
}

/// A hook mutating one shard's messages in flight; arguments are
/// `(shard, round, message)` with `round` 1-based.
pub type ShardAdversary<'a, F> = &'a mut dyn FnMut(usize, usize, &mut Vec<F>);

/// Runs the interactive phase against `S` in-process provers in lockstep:
/// per round, collect every shard's polynomial, check each, broadcast the
/// one shared challenge; finally check each shard against its own streamed
/// value.
///
/// `report` accrues per-shard communication (the broadcast challenge is
/// charged to every shard — it crosses each connection once); an optional
/// [`ShardAdversary`] corrupts messages in flight. On acceptance returns
/// the verified aggregate.
pub fn drive_sumcheck_sharded<F: PrimeField>(
    provers: &mut [&mut dyn RoundProver<F>],
    verifier: &mut AggregatingVerifier<F>,
    streamed: &[F],
    report: &mut ClusterCostReport,
    mut adversary: Option<ShardAdversary<'_, F>>,
) -> Result<F, Rejection> {
    assert_eq!(provers.len(), verifier.shards(), "one prover per shard");
    assert_eq!(report.shards(), verifier.shards(), "one report per shard");
    for p in provers.iter() {
        assert_eq!(p.rounds(), verifier.rounds(), "shards disagree on d");
    }
    for round in 1..=verifier.rounds() {
        let mut polys = Vec::with_capacity(provers.len());
        for (s, prover) in provers.iter_mut().enumerate() {
            let mut msg = prover.message();
            if let Some(adv) = adversary.as_mut() {
                adv(s, round, &mut msg);
            }
            report.absorb_shard(
                s,
                &CostReport {
                    rounds: 1,
                    p_to_v_words: msg.len(),
                    ..CostReport::default()
                },
            );
            polys.push(msg);
        }
        if let Some(challenge) = verifier.receive_round(&polys)? {
            for (s, prover) in provers.iter_mut().enumerate() {
                report.per_shard[s].v_to_p_words += 1;
                prover.bind(challenge);
            }
        }
    }
    verifier.finalize(streamed)
}

/// The one-shot counterpart of [`drive_sumcheck_sharded`]: every shard
/// walks all `d` rounds locally over the shared challenge prefix and seals
/// its own proof frame — no lockstep, no broadcast, one frame per shard.
///
/// `transcripts` are the per-shard contexts (same prefix, per-shard shard
/// identity); `report` accrues per-shard communication as a single round
/// (query + prefix out, proof back).
pub fn prove_oneshot_sharded<F: PrimeField>(
    provers: &mut [&mut dyn RoundProver<F>],
    transcripts: Vec<Transcript>,
    challenges: &[F],
    report: &mut ClusterCostReport,
) -> Result<Vec<OneShotProof<F>>, Rejection> {
    assert_eq!(provers.len(), transcripts.len(), "one transcript per shard");
    assert_eq!(report.shards(), provers.len(), "one report per shard");
    let mut proofs = Vec::with_capacity(provers.len());
    for (s, (prover, transcript)) in provers.iter_mut().zip(transcripts).enumerate() {
        assert_eq!(
            prover.rounds(),
            challenges.len() + 1,
            "shards disagree on d"
        );
        let proof = prove_oneshot(
            &mut super::oneshot::ProverWalk(&mut **prover),
            transcript,
            challenges,
            2,
        )
        .map_err(|e| Rejection::blame(s as u32, e))?;
        report.absorb_shard(
            s,
            &CostReport {
                rounds: 1,
                p_to_v_words: proof.words(),
                v_to_p_words: challenges.len(),
                ..CostReport::default()
            },
        );
        proofs.push(proof);
    }
    Ok(proofs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sumcheck::drive_sumcheck;
    use crate::sumcheck::f2::F2Prover;
    use crate::sumcheck::inner_product::InnerProductProver;
    use crate::sumcheck::moments::MomentProver;
    use crate::sumcheck::range_sum::RangeSumProver;
    use sip_field::Fp61;
    use sip_lde::range_indicator_lde;
    use sip_streaming::{workloads, FrequencyVector, ShardPlan, Update};

    const LOG_U: u32 = 8;

    /// Per-shard frequency vectors plus per-shard LDE accumulators at the
    /// shared point of `seed_core` — the digest a ShardRouter maintains.
    fn shard_fixture(
        shards: u32,
        stream: &[Update],
        point: &[Fp61],
    ) -> (ShardPlan, Vec<FrequencyVector>, Vec<Fp61>) {
        let plan = ShardPlan::new(LOG_U, shards);
        let parts = plan.split(stream);
        let fvs: Vec<FrequencyVector> = parts
            .iter()
            .map(|p| FrequencyVector::from_stream(1 << LOG_U, p))
            .collect();
        let ldes: Vec<Fp61> = parts
            .iter()
            .map(|p| {
                let mut e = sip_lde::StreamingLdeEvaluator::new(
                    sip_lde::LdeParams::binary(LOG_U),
                    point.to_vec(),
                );
                e.update_all(p);
                e.value()
            })
            .collect();
        (plan, fvs, ldes)
    }

    #[test]
    fn sharded_f2_equals_monolithic() {
        let stream = workloads::paper_f2(1 << LOG_U, 3);
        let truth = FrequencyVector::from_stream(1 << LOG_U, &stream).self_join_size();
        for shards in [1u32, 2, 3, 4, 8] {
            let point: Vec<Fp61> = (0..LOG_U as u64)
                .map(|i| Fp61::from_u64(1000 + 37 * i + shards as u64))
                .collect();
            let (_, fvs, ldes) = shard_fixture(shards, &stream, &point);
            let mut provers: Vec<F2Prover<Fp61>> =
                fvs.iter().map(|fv| F2Prover::new(fv, LOG_U)).collect();
            let mut dyns: Vec<&mut dyn RoundProver<Fp61>> = provers
                .iter_mut()
                .map(|p| p as &mut dyn RoundProver<Fp61>)
                .collect();
            let mut agg = AggregatingVerifier::new(point, 2, shards as usize);
            let expected: Vec<Fp61> = ldes.iter().map(|&v| v * v).collect();
            let mut report = ClusterCostReport::new(shards as usize);
            let got =
                drive_sumcheck_sharded(&mut dyns, &mut agg, &expected, &mut report, None).unwrap();
            assert_eq!(got, Fp61::from_u128(truth as u128), "S={shards}");
            // Per-shard accounting: every shard paid the full d rounds.
            for r in &report.per_shard {
                assert_eq!(r.rounds, LOG_U as usize);
                assert_eq!(r.p_to_v_words, 3 * LOG_U as usize);
                assert_eq!(r.v_to_p_words, LOG_U as usize - 1);
            }
            assert_eq!(
                report.total().p_to_v_words,
                shards as usize * 3 * LOG_U as usize
            );
        }
    }

    #[test]
    fn single_shard_matches_drive_sumcheck_transcript() {
        // S = 1 through the aggregate path must equal the classic path:
        // same value, same per-round messages, same costs.
        let stream = workloads::uniform(300, 1 << LOG_U, 20, 5);
        let fv = FrequencyVector::from_stream(1 << LOG_U, &stream);
        let point: Vec<Fp61> = (0..LOG_U as u64).map(|i| Fp61::from_u64(5 + i)).collect();
        let lde = {
            let mut e = sip_lde::StreamingLdeEvaluator::new(
                sip_lde::LdeParams::binary(LOG_U),
                point.clone(),
            );
            e.update_all(&stream);
            e.value()
        };

        let mut classic_prover = F2Prover::<Fp61>::new(&fv, LOG_U);
        let mut classic_core = SumCheckVerifierCore::new(point.clone(), 2);
        let mut classic_report = CostReport::default();
        let classic = drive_sumcheck(
            &mut classic_prover,
            &mut classic_core,
            lde * lde,
            &mut classic_report,
            None,
        )
        .unwrap();

        let mut prover = F2Prover::<Fp61>::new(&fv, LOG_U);
        let mut dyns: Vec<&mut dyn RoundProver<Fp61>> = vec![&mut prover];
        let mut agg = AggregatingVerifier::new(point, 2, 1);
        let mut report = ClusterCostReport::new(1);
        let sharded =
            drive_sumcheck_sharded(&mut dyns, &mut agg, &[lde * lde], &mut report, None).unwrap();
        assert_eq!(classic, sharded);
        assert_eq!(classic_report.rounds, report.per_shard[0].rounds);
        assert_eq!(
            classic_report.p_to_v_words,
            report.per_shard[0].p_to_v_words
        );
        assert_eq!(
            classic_report.v_to_p_words,
            report.per_shard[0].v_to_p_words
        );
    }

    #[test]
    fn sharded_range_sum_and_moments_and_inner_product() {
        let stream = workloads::distinct_key_values(150, 1 << LOG_U, 500, 7);
        let fv = FrequencyVector::from_stream(1 << LOG_U, &stream);
        let shards = 4u32;
        let point: Vec<Fp61> = (0..LOG_U as u64).map(|i| Fp61::from_u64(77 + i)).collect();
        let (_, fvs, ldes) = shard_fixture(shards, &stream, &point);

        // RANGE-SUM over [q_l, q_r]: per-shard final check f_{a_s}(r)·f_b(r).
        let (q_l, q_r) = (30u64, 200u64);
        let fb = range_indicator_lde(q_l, q_r, &point);
        let mut provers: Vec<RangeSumProver<Fp61>> = fvs
            .iter()
            .map(|fv| RangeSumProver::new(fv, LOG_U, q_l, q_r))
            .collect();
        let mut dyns: Vec<&mut dyn RoundProver<Fp61>> = provers
            .iter_mut()
            .map(|p| p as &mut dyn RoundProver<Fp61>)
            .collect();
        let mut agg = AggregatingVerifier::new(point.clone(), 2, shards as usize);
        let expected: Vec<Fp61> = ldes.iter().map(|&v| v * fb).collect();
        let mut report = ClusterCostReport::new(shards as usize);
        let got =
            drive_sumcheck_sharded(&mut dyns, &mut agg, &expected, &mut report, None).unwrap();
        assert_eq!(got, Fp61::from_i64(fv.range_sum(q_l, q_r) as i64));

        // F₃: per-shard final check f_{a_s}(r)³, degree-3 messages.
        let mut provers: Vec<MomentProver<Fp61>> = fvs
            .iter()
            .map(|fv| MomentProver::new(3, fv, LOG_U))
            .collect();
        let mut dyns: Vec<&mut dyn RoundProver<Fp61>> = provers
            .iter_mut()
            .map(|p| p as &mut dyn RoundProver<Fp61>)
            .collect();
        let mut agg = AggregatingVerifier::new(point.clone(), 3, shards as usize);
        let expected: Vec<Fp61> = ldes.iter().map(|&v| v * v * v).collect();
        let mut report = ClusterCostReport::new(shards as usize);
        let got =
            drive_sumcheck_sharded(&mut dyns, &mut agg, &expected, &mut report, None).unwrap();
        assert_eq!(got, Fp61::from_u128(fv.frequency_moment(3) as u128));

        // INNER PRODUCT a·b with both streams sharded by the same plan.
        let stream_b = workloads::uniform(200, 1 << LOG_U, 9, 8);
        let fv_b = FrequencyVector::from_stream(1 << LOG_U, &stream_b);
        let plan = ShardPlan::new(LOG_U, shards);
        let parts_b = plan.split(&stream_b);
        let fvs_b: Vec<FrequencyVector> = parts_b
            .iter()
            .map(|p| FrequencyVector::from_stream(1 << LOG_U, p))
            .collect();
        let ldes_b: Vec<Fp61> = parts_b
            .iter()
            .map(|p| {
                let mut e = sip_lde::StreamingLdeEvaluator::new(
                    sip_lde::LdeParams::binary(LOG_U),
                    point.clone(),
                );
                e.update_all(p);
                e.value()
            })
            .collect();
        let mut provers: Vec<InnerProductProver<Fp61>> = fvs
            .iter()
            .zip(&fvs_b)
            .map(|(a, b)| InnerProductProver::new(a, b, LOG_U))
            .collect();
        let mut dyns: Vec<&mut dyn RoundProver<Fp61>> = provers
            .iter_mut()
            .map(|p| p as &mut dyn RoundProver<Fp61>)
            .collect();
        let mut agg = AggregatingVerifier::new(point, 2, shards as usize);
        let expected: Vec<Fp61> = ldes.iter().zip(&ldes_b).map(|(&a, &b)| a * b).collect();
        let mut report = ClusterCostReport::new(shards as usize);
        let got =
            drive_sumcheck_sharded(&mut dyns, &mut agg, &expected, &mut report, None).unwrap();
        assert_eq!(got, Fp61::from_i64(fv.inner_product(&fv_b) as i64));
    }

    #[test]
    fn corrupted_shard_is_blamed_every_round_and_slot() {
        let stream = workloads::paper_f2(1 << 6, 11);
        let shards = 3u32;
        let point: Vec<Fp61> = (0..6u64).map(|i| Fp61::from_u64(400 + i)).collect();
        let plan = ShardPlan::new(6, shards);
        let parts = plan.split(&stream);
        for guilty in 0..shards as usize {
            for round in 1..=6usize {
                for slot in 0..3usize {
                    let fvs: Vec<FrequencyVector> = parts
                        .iter()
                        .map(|p| FrequencyVector::from_stream(1 << 6, p))
                        .collect();
                    let mut provers: Vec<F2Prover<Fp61>> =
                        fvs.iter().map(|fv| F2Prover::new(fv, 6)).collect();
                    let mut dyns: Vec<&mut dyn RoundProver<Fp61>> = provers
                        .iter_mut()
                        .map(|p| p as &mut dyn RoundProver<Fp61>)
                        .collect();
                    let expected: Vec<Fp61> = parts
                        .iter()
                        .map(|p| {
                            let mut e = sip_lde::StreamingLdeEvaluator::new(
                                sip_lde::LdeParams::binary(6),
                                point.clone(),
                            );
                            e.update_all(p);
                            e.value() * e.value()
                        })
                        .collect();
                    let mut agg = AggregatingVerifier::new(point.clone(), 2, shards as usize);
                    let mut report = ClusterCostReport::new(shards as usize);
                    let mut adv = |s: usize, rd: usize, msg: &mut Vec<Fp61>| {
                        if s == guilty && rd == round {
                            msg[slot] += Fp61::ONE;
                        }
                    };
                    let err = drive_sumcheck_sharded(
                        &mut dyns,
                        &mut agg,
                        &expected,
                        &mut report,
                        Some(&mut adv),
                    )
                    .unwrap_err();
                    assert_eq!(
                        err.blamed_shard(),
                        Some(guilty as u32),
                        "guilty={guilty} round={round} slot={slot}: {err}"
                    );
                }
            }
        }
    }

    #[test]
    fn shard_lying_about_its_subvector_is_blamed() {
        // Shard 1 proves honestly — over data it does not have.
        let stream = workloads::uniform(200, 1 << LOG_U, 15, 9);
        let shards = 4u32;
        let point: Vec<Fp61> = (0..LOG_U as u64).map(|i| Fp61::from_u64(900 + i)).collect();
        let (plan, fvs, ldes) = shard_fixture(shards, &stream, &point);
        let mut wrong = fvs;
        let (lo, _) = plan.range(1);
        wrong[1].apply(Update::new(lo, 1)); // one phantom insertion
        let mut provers: Vec<F2Prover<Fp61>> =
            wrong.iter().map(|fv| F2Prover::new(fv, LOG_U)).collect();
        let mut dyns: Vec<&mut dyn RoundProver<Fp61>> = provers
            .iter_mut()
            .map(|p| p as &mut dyn RoundProver<Fp61>)
            .collect();
        let mut agg = AggregatingVerifier::new(point, 2, shards as usize);
        let expected: Vec<Fp61> = ldes.iter().map(|&v| v * v).collect();
        let mut report = ClusterCostReport::new(shards as usize);
        let err =
            drive_sumcheck_sharded(&mut dyns, &mut agg, &expected, &mut report, None).unwrap_err();
        assert_eq!(err.blamed_shard(), Some(1), "{err}");
    }

    #[test]
    fn space_accounting_is_point_plus_residuals() {
        let point: Vec<Fp61> = (0..10u64).map(Fp61::from_u64).collect();
        let agg = AggregatingVerifier::new(point, 2, 4);
        assert_eq!(agg.space_words(), 4 * 3 + 10);
    }

    fn shard_transcripts(shards: u32, log_u: u32, prefix: &[Fp61]) -> Vec<Transcript> {
        (0..shards)
            .map(|s| {
                crate::transcript::query_transcript::<Fp61>(
                    "self-join",
                    log_u,
                    Some((s, shards)),
                    &[],
                    prefix,
                )
            })
            .collect()
    }

    #[test]
    fn oneshot_sharded_equals_interactive_and_bills_one_round() {
        let stream = workloads::paper_f2(1 << LOG_U, 3);
        let truth = FrequencyVector::from_stream(1 << LOG_U, &stream).self_join_size();
        for shards in [1u32, 3, 4] {
            let point: Vec<Fp61> = (0..LOG_U as u64)
                .map(|i| Fp61::from_u64(2000 + 13 * i + shards as u64))
                .collect();
            let (_, fvs, ldes) = shard_fixture(shards, &stream, &point);
            let mut provers: Vec<F2Prover<Fp61>> =
                fvs.iter().map(|fv| F2Prover::new(fv, LOG_U)).collect();
            let mut dyns: Vec<&mut dyn RoundProver<Fp61>> = provers
                .iter_mut()
                .map(|p| p as &mut dyn RoundProver<Fp61>)
                .collect();
            let agg = AggregatingVerifier::new(point, 2, shards as usize);
            let prefix = agg.challenge_prefix().to_vec();
            let mut report = ClusterCostReport::new(shards as usize);
            let proofs = prove_oneshot_sharded(
                &mut dyns,
                shard_transcripts(shards, LOG_U, &prefix),
                &prefix,
                &mut report,
            )
            .unwrap();
            let expected: Vec<Fp61> = ldes.iter().map(|&v| v * v).collect();
            let got = agg
                .verify_oneshot(
                    &expected,
                    shard_transcripts(shards, LOG_U, &prefix),
                    &proofs,
                )
                .unwrap();
            assert_eq!(got, Fp61::from_u128(truth as u128), "S={shards}");
            for r in &report.per_shard {
                assert_eq!(r.rounds, 1, "one-shot is one round trip per shard");
            }
            // Per-shard verification (the replica cross-examination
            // primitive) accepts each proof independently and sums to the
            // same verified aggregate.
            let ts = shard_transcripts(shards, LOG_U, &prefix);
            let mut per_shard_sum = Fp61::ZERO;
            for (s, t) in ts.into_iter().enumerate() {
                per_shard_sum += agg
                    .verify_oneshot_shard(s, expected[s], t, &proofs[s])
                    .unwrap();
            }
            assert_eq!(per_shard_sum, got);
        }
    }

    #[test]
    fn oneshot_corrupted_shard_is_blamed() {
        let stream = workloads::paper_f2(1 << 6, 11);
        let shards = 3u32;
        let point: Vec<Fp61> = (0..6u64).map(|i| Fp61::from_u64(500 + i)).collect();
        let plan = ShardPlan::new(6, shards);
        let parts = plan.split(&stream);
        let expected: Vec<Fp61> = parts
            .iter()
            .map(|p| {
                let mut e = sip_lde::StreamingLdeEvaluator::new(
                    sip_lde::LdeParams::binary(6),
                    point.clone(),
                );
                e.update_all(p);
                e.value() * e.value()
            })
            .collect();
        for guilty in 0..shards as usize {
            let fvs: Vec<FrequencyVector> = parts
                .iter()
                .map(|p| FrequencyVector::from_stream(1 << 6, p))
                .collect();
            let mut provers: Vec<F2Prover<Fp61>> =
                fvs.iter().map(|fv| F2Prover::new(fv, 6)).collect();
            let mut dyns: Vec<&mut dyn RoundProver<Fp61>> = provers
                .iter_mut()
                .map(|p| p as &mut dyn RoundProver<Fp61>)
                .collect();
            let agg = AggregatingVerifier::new(point.clone(), 2, shards as usize);
            let prefix = agg.challenge_prefix().to_vec();
            let mut report = ClusterCostReport::new(shards as usize);
            let mut proofs = prove_oneshot_sharded(
                &mut dyns,
                shard_transcripts(shards, 6, &prefix),
                &prefix,
                &mut report,
            )
            .unwrap();
            // Wire-style corruption of one shard's sealed frame.
            proofs[guilty].rounds[2][1] += Fp61::ONE;
            let err = agg
                .verify_oneshot(&expected, shard_transcripts(shards, 6, &prefix), &proofs)
                .unwrap_err();
            assert_eq!(err.blamed_shard(), Some(guilty as u32), "{err}");
            assert!(matches!(
                err,
                Rejection::Blame { ref cause, .. } if **cause == Rejection::TranscriptMismatch
            ));
        }
        // A shard lying about its data seals a *consistent* digest; the
        // deferred algebra still blames it.
        let mut wrong: Vec<FrequencyVector> = parts
            .iter()
            .map(|p| FrequencyVector::from_stream(1 << 6, p))
            .collect();
        let (lo, _) = plan.range(1);
        wrong[1].apply(Update::new(lo, 1));
        let mut provers: Vec<F2Prover<Fp61>> =
            wrong.iter().map(|fv| F2Prover::new(fv, 6)).collect();
        let mut dyns: Vec<&mut dyn RoundProver<Fp61>> = provers
            .iter_mut()
            .map(|p| p as &mut dyn RoundProver<Fp61>)
            .collect();
        let agg = AggregatingVerifier::new(point, 2, shards as usize);
        let prefix = agg.challenge_prefix().to_vec();
        let mut report = ClusterCostReport::new(shards as usize);
        let proofs = prove_oneshot_sharded(
            &mut dyns,
            shard_transcripts(shards, 6, &prefix),
            &prefix,
            &mut report,
        )
        .unwrap();
        let err = agg
            .verify_oneshot(&expected, shard_transcripts(shards, 6, &prefix), &proofs)
            .unwrap_err();
        assert_eq!(err.blamed_shard(), Some(1), "{err}");
        assert_ne!(
            err,
            Rejection::blame(1, Rejection::TranscriptMismatch),
            "a lying shard fails algebra, not the digest"
        );
    }
}

//! The SUB-VECTOR protocol (Section 4.1, Theorem 5).
//!
//! The workhorse behind every reporting query: given a range `[q_L, q_R]`
//! fixed *after* the stream, the prover reports the `k` nonzero entries of
//! `(a_{q_L}, …, a_{q_R})` and then proves them correct against a
//! linear "hash tree" whose root the verifier maintained over the stream in
//! `O(log u)` space. A `(log u, log u + k)`-protocol with failure
//! probability `O(log u / p)`.
//!
//! * [`tree`] — the level-keyed linear hash tree: streaming root
//!   computation (equation (8)) for `V`, sparse level-by-level construction
//!   for `P`;
//! * [`protocol`] — the `log u − 1`-round interactive reconstruction.

pub mod protocol;
pub mod tree;

pub use protocol::{
    run_subvector, run_subvector_with_adversary, RoundReply, RoundRequest, Step, SubVectorAnswer,
    SubVectorProver, SubVectorSession, SubVectorVerifier, Verified,
};
pub use tree::{HashKind, StreamingRootHasher};

//! The linear hash tree of Section 4.1.
//!
//! `V` conceptually builds a binary tree over the vector `a`; the `i`-th
//! leaf holds `a_i` and an internal node at level `j` holds
//!
//! ```text
//! v = v_L + r_j · v_R                      (equation (7), "affine")
//! ```
//!
//! for a per-level random key `r_j`. Because every node is a *linear*
//! function of the leaves, the root is
//!
//! ```text
//! t = Σ_i a_i · Π_{j=1..d} r_j^{bit_j(i)}  (equation (8))
//! ```
//!
//! and `V` can maintain it over the stream in `O(log u)` space and
//! `O(log u)` time per update — without ever materialising the tree.
//!
//! The paper remarks that replacing the combine by
//! `(1 − r_j)·v_L + r_j·v_R` makes the root *equal to the LDE* `f_a(r)`,
//! connecting Sections 3 and 4; [`HashKind::Multilinear`] implements that
//! variant (and a test in `sip-lde` consistency suite asserts the
//! equivalence).

use rand::Rng;
use sip_field::PrimeField;
use sip_streaming::Update;

/// Which per-level combine the tree uses.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum HashKind {
    /// `v = v_L + r_j·v_R` — the paper's equation (7).
    #[default]
    Affine,
    /// `v = (1−r_j)·v_L + r_j·v_R` — makes the root equal `f_a(r)`.
    Multilinear,
}

impl HashKind {
    /// The `(w0, w1)` fold weights for key `r`.
    #[inline]
    pub fn weights<F: PrimeField>(self, r: F) -> (F, F) {
        match self {
            HashKind::Affine => (F::ONE, r),
            HashKind::Multilinear => (F::ONE - r, r),
        }
    }
}

/// Streaming computation of the root hash `t` (verifier side).
#[derive(Clone, Debug)]
pub struct StreamingRootHasher<F: PrimeField> {
    /// `keys[j−1] = r_j`: the key combining level `j−1` children into a
    /// level-`j` node.
    keys: Vec<F>,
    kind: HashKind,
    root: F,
    /// Stream updates absorbed so far (checkpoint metadata).
    updates: u64,
}

impl<F: PrimeField> StreamingRootHasher<F> {
    /// Creates the hasher with explicit keys (`keys.len() = log₂ u`).
    pub fn new(keys: Vec<F>, kind: HashKind) -> Self {
        assert!(!keys.is_empty() && keys.len() <= 63);
        StreamingRootHasher {
            keys,
            kind,
            root: F::ZERO,
            updates: 0,
        }
    }

    /// Creates the hasher with fresh random keys over `[2^log_u]`.
    pub fn random<R: Rng + ?Sized>(log_u: u32, kind: HashKind, rng: &mut R) -> Self {
        let keys = (0..log_u).map(|_| F::random(rng)).collect();
        Self::new(keys, kind)
    }

    /// Rebuilds a hasher from checkpointed state: the level keys, the
    /// combine rule, the running root, and the update counter. A resumed
    /// hasher is field-for-field identical to one that never stopped.
    ///
    /// # Panics
    /// Panics if `keys` is empty or longer than 63.
    pub fn from_saved(keys: Vec<F>, kind: HashKind, root: F, updates: u64) -> Self {
        let mut hasher = Self::new(keys, kind);
        hasher.root = root;
        hasher.updates = updates;
        hasher
    }

    /// Tree depth `d = log₂ u`.
    pub fn depth(&self) -> u32 {
        self.keys.len() as u32
    }

    /// The level keys (secret until revealed round by round).
    pub fn keys(&self) -> &[F] {
        &self.keys
    }

    /// The combine rule in use.
    pub fn kind(&self) -> HashKind {
        self.kind
    }

    /// The weight leaf `i` carries in the root: `Π_j w_{bit_j(i)}(r_j)`.
    pub fn leaf_weight(&self, i: u64) -> F {
        debug_assert!(i < (1u64 << self.keys.len()));
        let mut w = F::ONE;
        for (j, &key) in self.keys.iter().enumerate() {
            let (w0, w1) = self.kind.weights(key);
            w *= if (i >> j) & 1 == 1 { w1 } else { w0 };
        }
        w
    }

    /// Processes one stream update: `t += δ·leaf_weight(i)` — `O(log u)`.
    pub fn update(&mut self, up: Update) {
        self.root += F::from_i64(up.delta) * self.leaf_weight(up.index);
        self.updates += 1;
    }

    /// Number of stream updates absorbed so far (checkpoint metadata).
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// Processes a whole stream.
    pub fn update_all(&mut self, stream: &[Update]) {
        for &up in stream {
            self.update(up);
        }
    }

    /// Processes a whole batch through one delayed-reduction accumulator
    /// (`t += Σ δ·leaf_weight(i)` with one reduction per accumulator
    /// flush); bit-identical to per-update [`Self::update`].
    pub fn update_batch(&mut self, batch: &[Update]) {
        let mut acc = F::DotAcc::default();
        for &up in batch {
            F::acc_add_prod(&mut acc, F::from_i64(up.delta), self.leaf_weight(up.index));
        }
        self.root += F::acc_finish(acc);
        self.updates += batch.len() as u64;
    }

    /// The current root hash `t`.
    pub fn root(&self) -> F {
        self.root
    }

    /// Verifier space in words: the keys plus the root.
    pub fn space_words(&self) -> usize {
        self.keys.len() + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sip_field::{Fp61, PrimeField};
    use sip_lde::{LdeParams, StreamingLdeEvaluator};
    use sip_streaming::{workloads, FrequencyVector};

    /// Builds the tree explicitly bottom-up and returns the root.
    fn explicit_root(fv: &FrequencyVector, keys: &[Fp61], kind: HashKind) -> Fp61 {
        let mut level: Vec<Fp61> = (0..fv.universe())
            .map(|i| Fp61::from_i64(fv.get(i)))
            .collect();
        for &key in keys {
            let (w0, w1) = kind.weights(key);
            level = level
                .chunks_exact(2)
                .map(|c| w0 * c[0] + w1 * c[1])
                .collect();
        }
        assert_eq!(level.len(), 1);
        level[0]
    }

    #[test]
    fn figure1_example() {
        // Figure 1: a = [2,3,8,1,7,6,4,3] with r = [1,1,1] gives root 34.
        let fv = FrequencyVector::from_stream(
            8,
            &[2i64, 3, 8, 1, 7, 6, 4, 3]
                .iter()
                .enumerate()
                .map(|(i, &v)| Update::new(i as u64, v))
                .collect::<Vec<_>>(),
        );
        let keys = vec![Fp61::ONE; 3];
        let mut hasher = StreamingRootHasher::new(keys.clone(), HashKind::Affine);
        for (i, f) in fv.nonzero() {
            hasher.update(Update::new(i, f));
        }
        assert_eq!(hasher.root(), Fp61::from_u64(34));
        assert_eq!(
            explicit_root(&fv, &keys, HashKind::Affine),
            Fp61::from_u64(34)
        );
    }

    #[test]
    fn streaming_matches_explicit_tree() {
        let mut rng = StdRng::seed_from_u64(1);
        for kind in [HashKind::Affine, HashKind::Multilinear] {
            let log_u = 8;
            let stream = workloads::uniform(300, 1 << log_u, 20, 5);
            let fv = FrequencyVector::from_stream(1 << log_u, &stream);
            let mut hasher = StreamingRootHasher::<Fp61>::random(log_u, kind, &mut rng);
            hasher.update_all(&stream);
            assert_eq!(
                hasher.root(),
                explicit_root(&fv, hasher.keys(), kind),
                "{kind:?}"
            );
        }
    }

    #[test]
    fn multilinear_root_equals_lde() {
        // The paper's closing remark of Appendix B.2: with the modified
        // hash, t = f_a(r).
        let mut rng = StdRng::seed_from_u64(2);
        let log_u = 10;
        let stream = workloads::uniform(500, 1 << log_u, 100, 6);
        let mut hasher =
            StreamingRootHasher::<Fp61>::random(log_u, HashKind::Multilinear, &mut rng);
        hasher.update_all(&stream);
        let mut lde = StreamingLdeEvaluator::new(LdeParams::binary(log_u), hasher.keys().to_vec());
        lde.update_all(&stream);
        assert_eq!(hasher.root(), lde.value());
    }

    #[test]
    fn root_is_linear_in_updates() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut h = StreamingRootHasher::<Fp61>::random(6, HashKind::Affine, &mut rng);
        h.update(Update::new(5, 3));
        let snapshot = h.root();
        h.update(Update::new(9, 4));
        h.update(Update::new(9, -4));
        assert_eq!(h.root(), snapshot);
    }

    #[test]
    fn space_is_logarithmic() {
        let mut rng = StdRng::seed_from_u64(4);
        let h = StreamingRootHasher::<Fp61>::random(20, HashKind::Affine, &mut rng);
        assert_eq!(h.space_words(), 21);
    }
}

//! The interactive SUB-VECTOR verification protocol (Section 4.1).
//!
//! After both parties observed the stream, the conversation is:
//!
//! 1. `V → P`: the query range `[q_L, q_R]`.
//! 2. `P → V`: the claimed nonzero entries of the *extended* range
//!    (`q_L` rounded down to even, `q_R` rounded up to odd — the paper's
//!    boundary-sibling rule).
//! 3. Rounds `j = 1 … log u − 1`: `V` reveals the level key `r_j` and asks
//!    for the (at most two) level-`j` sibling hashes its reconstruction
//!    frontier is missing; `P`, who can now build level `j` of the tree,
//!    replies.
//! 4. `V` compares the reconstructed root `t′` with the root `t` it
//!    computed over the stream, accepting iff they agree.
//!
//! The verifier's frontier is maintained as the *aligned decomposition* of
//! the currently covered interval — at most two nodes per level, so
//! `O(log u)` words — exactly the space-saving observation in the paper's
//! cost analysis ("the verifier can keep track of only O(log u) hash values
//! of internal nodes").

use rand::Rng;
use sip_field::PrimeField;
use sip_streaming::{FrequencyVector, Update};

use crate::channel::CostReport;
use crate::error::Rejection;
use crate::fold::FoldVector;

use super::tree::{HashKind, StreamingRootHasher};

/// Message 2: the claimed answer over the extended range, nonzero entries
/// only, in increasing index order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SubVectorAnswer<F> {
    /// `(index, claimed value)` pairs; indices strictly increasing, values
    /// nonzero, all within the extended range.
    pub entries: Vec<(u64, F)>,
}

/// A per-round request from `V`: the revealed key plus the sibling hashes
/// the frontier needs at this level.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RoundRequest<F> {
    /// Tree level whose siblings are requested (1-based).
    pub level: u32,
    /// The revealed key `r_level`.
    pub challenge: F,
    /// Index (at `level`) of a needed left-edge sibling.
    pub left: Option<u64>,
    /// Index (at `level`) of a needed right-edge sibling.
    pub right: Option<u64>,
}

/// The prover's reply: hashes for exactly the requested siblings.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RoundReply<F> {
    /// Hash of the requested left sibling.
    pub left: Option<F>,
    /// Hash of the requested right sibling.
    pub right: Option<F>,
}

/// What the verifier does next.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Step<F> {
    /// Send this request to the prover and await a [`RoundReply`].
    Request(RoundRequest<F>),
    /// Reconstruction finished and the root matched: the answer is genuine.
    Accept,
}

/// A node of the verifier's reconstruction frontier.
#[derive(Copy, Clone, Debug)]
struct Node<F> {
    level: u32,
    index: u64,
    hash: F,
}

/// The extended range: include the level-0 sibling of each endpoint when it
/// falls outside the query.
fn extend(q_l: u64, q_r: u64) -> (u64, u64) {
    (q_l & !1, q_r | 1)
}

/// Streaming verifier state for SUB-VECTOR (and all reporting queries).
#[derive(Clone, Debug)]
pub struct SubVectorVerifier<F: PrimeField> {
    hasher: StreamingRootHasher<F>,
}

impl<F: PrimeField> SubVectorVerifier<F> {
    /// Draws the level keys and prepares to stream over `[2^log_u]`.
    pub fn new<R: Rng + ?Sized>(log_u: u32, rng: &mut R) -> Self {
        SubVectorVerifier {
            hasher: StreamingRootHasher::random(log_u, HashKind::Affine, rng),
        }
    }

    /// The streaming root hasher (the verifier's entire protocol state) —
    /// what a checkpoint must capture.
    pub fn hasher(&self) -> &StreamingRootHasher<F> {
        &self.hasher
    }

    /// Rebuilds the verifier around a restored hasher (checkpoint resume).
    pub fn from_hasher(hasher: StreamingRootHasher<F>) -> Self {
        SubVectorVerifier { hasher }
    }

    /// Processes one stream update.
    pub fn update(&mut self, up: Update) {
        self.hasher.update(up);
    }

    /// Processes a whole stream.
    pub fn update_all(&mut self, stream: &[Update]) {
        self.hasher.update_all(stream);
    }

    /// Processes a whole batch (delayed-reduction root accumulation;
    /// bit-identical to per-update [`Self::update`]).
    pub fn update_batch(&mut self, batch: &[Update]) {
        self.hasher.update_batch(batch);
    }

    /// Streaming-phase space in words.
    pub fn space_words(&self) -> usize {
        self.hasher.space_words()
    }

    /// Fixes the query and starts the verification session.
    ///
    /// # Panics
    /// Panics if the range is empty or outside the universe.
    pub fn into_session(self, q_l: u64, q_r: u64) -> SubVectorSession<F> {
        let d = self.hasher.depth();
        assert!(q_l <= q_r && q_r < (1u64 << d), "bad range");
        let (e_l, e_r) = extend(q_l, q_r);
        SubVectorSession {
            keys: self.hasher.keys().to_vec(),
            kind: self.hasher.kind(),
            streamed_root: self.hasher.root(),
            d,
            q_l,
            q_r,
            e_l,
            e_r,
            frontier: Vec::new(),
            next_level: 1,
            answered: false,
            max_frontier: 0,
        }
    }
}

/// The verifier's interactive session.
#[derive(Clone, Debug)]
pub struct SubVectorSession<F: PrimeField> {
    keys: Vec<F>,
    kind: HashKind,
    streamed_root: F,
    d: u32,
    q_l: u64,
    q_r: u64,
    e_l: u64,
    e_r: u64,
    frontier: Vec<Node<F>>,
    next_level: u32,
    answered: bool,
    max_frontier: usize,
}

impl<F: PrimeField> SubVectorSession<F> {
    /// The extended range `[e_L, e_R]` the answer must cover.
    pub fn extended_range(&self) -> (u64, u64) {
        (self.e_l, self.e_r)
    }

    /// High-water mark of the frontier (for space accounting).
    pub fn max_frontier(&self) -> usize {
        self.max_frontier
    }

    /// Session space in words: keys, root, and two words per frontier node.
    pub fn space_words(&self) -> usize {
        self.keys.len() + 1 + 2 * self.max_frontier.max(self.frontier.len()) + 4
    }

    fn push_and_merge(&mut self, node: Node<F>) {
        self.frontier.push(node);
        while self.frontier.len() >= 2 {
            let b = self.frontier[self.frontier.len() - 1];
            let a = self.frontier[self.frontier.len() - 2];
            if a.level == b.level && a.index.is_multiple_of(2) && b.index == a.index + 1 {
                let key = self.keys[a.level as usize];
                let (w0, w1) = self.kind.weights(key);
                let merged = Node {
                    level: a.level + 1,
                    index: a.index >> 1,
                    hash: w0 * a.hash + w1 * b.hash,
                };
                self.frontier.truncate(self.frontier.len() - 2);
                self.frontier.push(merged);
            } else {
                break;
            }
        }
        self.max_frontier = self.max_frontier.max(self.frontier.len());
    }

    /// Pushes maximal aligned all-zero blocks covering `[from, to]`.
    fn push_zeros(&mut self, from: u64, to: u64) {
        let mut cur = from;
        while cur <= to {
            let align = if cur == 0 { 63 } else { cur.trailing_zeros() };
            let span = 63 - (to - cur + 1).leading_zeros(); // ⌊log₂(len)⌋
            let level = align.min(span).min(self.d);
            self.push_and_merge(Node {
                level,
                index: cur >> level,
                hash: F::ZERO,
            });
            cur += 1u64 << level;
        }
    }

    /// Processes the prover's claimed answer (message 2). `limit` bounds the
    /// number of entries `V` is willing to accept (the paper's remark about
    /// first verifying `k` with a RANGE-COUNT query); `None` allows the
    /// whole extended range.
    pub fn receive_answer(
        &mut self,
        answer: &SubVectorAnswer<F>,
        limit: Option<usize>,
    ) -> Result<Step<F>, Rejection> {
        assert!(!self.answered, "answer already received");
        self.answered = true;
        let budget = limit.unwrap_or((self.e_r - self.e_l + 1) as usize);
        if answer.entries.len() > budget {
            return Err(Rejection::AnswerTooLarge {
                limit: budget,
                got: answer.entries.len(),
            });
        }
        let mut next_expected = self.e_l;
        for &(i, v) in &answer.entries {
            if i < next_expected || i > self.e_r {
                return Err(Rejection::MalformedAnswer {
                    detail: format!(
                        "entry {i} out of order or outside extended range [{}, {}]",
                        self.e_l, self.e_r
                    ),
                });
            }
            if v.is_zero() {
                return Err(Rejection::MalformedAnswer {
                    detail: format!("entry {i} claims a zero value; zeros are implicit"),
                });
            }
            if i > next_expected {
                self.push_zeros(next_expected, i - 1);
            }
            self.push_and_merge(Node {
                level: 0,
                index: i,
                hash: v,
            });
            next_expected = i + 1;
        }
        if next_expected <= self.e_r {
            self.push_zeros(next_expected, self.e_r);
        }
        self.advance()
    }

    /// Processes the prover's sibling reply for the most recent request.
    pub fn receive_reply(
        &mut self,
        expected: &RoundRequest<F>,
        reply: &RoundReply<F>,
    ) -> Result<Step<F>, Rejection> {
        if expected.left.is_some() != reply.left.is_some()
            || expected.right.is_some() != reply.right.is_some()
        {
            return Err(Rejection::MalformedAnswer {
                detail: "sibling reply does not match request".to_string(),
            });
        }
        let level = expected.level;
        if let (Some(idx), Some(hash)) = (expected.left, reply.left) {
            let mut with_left = vec![Node {
                level,
                index: idx,
                hash,
            }];
            with_left.append(&mut self.frontier);
            self.frontier = Vec::new();
            for node in with_left {
                self.push_and_merge(node);
            }
        }
        if let (Some(idx), Some(hash)) = (expected.right, reply.right) {
            self.push_and_merge(Node {
                level,
                index: idx,
                hash,
            });
        }
        self.next_level = level + 1;
        self.advance()
    }

    /// Either produce the next request or finish with the root comparison.
    fn advance(&mut self) -> Result<Step<F>, Rejection> {
        if self.frontier.len() == 1 && self.frontier[0].level == self.d {
            return if self.frontier[0].hash == self.streamed_root {
                Ok(Step::Accept)
            } else {
                Err(Rejection::RootMismatch)
            };
        }
        let level = self.next_level;
        debug_assert!(
            level < self.d,
            "reconstruction stalled below the root: frontier {:?}",
            self.frontier.len()
        );
        let first = self.frontier.first().expect("frontier nonempty");
        let last = self.frontier.last().expect("frontier nonempty");
        let left =
            (!first.index.is_multiple_of(2) && first.level == level).then(|| first.index - 1);
        let right = (last.index.is_multiple_of(2) && last.level == level).then(|| last.index + 1);
        // The key r_level is revealed this round regardless — the prover
        // needs it for all higher-level hashes.
        Ok(Step::Request(RoundRequest {
            level,
            challenge: self.keys[(level - 1) as usize],
            left,
            right,
        }))
    }

    /// Filters the (now verified) answer down to the queried range.
    pub fn queried_entries(&self, answer: &SubVectorAnswer<F>) -> Vec<(u64, F)> {
        answer
            .entries
            .iter()
            .copied()
            .filter(|&(i, _)| i >= self.q_l && i <= self.q_r)
            .collect()
    }
}

/// The honest SUB-VECTOR prover: a sparse tree built level by level as keys
/// are revealed.
#[derive(Clone, Debug)]
pub struct SubVectorProver<F: PrimeField> {
    values: FoldVector<F>,
    level: u32,
    kind: HashKind,
}

impl<F: PrimeField> SubVectorProver<F> {
    /// Builds the prover from the materialised frequency vector.
    pub fn new(fv: &FrequencyVector, log_u: u32) -> Self {
        SubVectorProver {
            values: FoldVector::from_frequency(fv, log_u),
            level: 0,
            kind: HashKind::Affine,
        }
    }

    /// Message 2: the nonzero entries over the extended range.
    ///
    /// # Panics
    /// Panics if rounds already started (the leaf level is gone).
    pub fn answer(&self, q_l: u64, q_r: u64) -> SubVectorAnswer<F> {
        assert_eq!(self.level, 0, "answer must precede the rounds");
        let (e_l, e_r) = extend(q_l, q_r);
        SubVectorAnswer {
            entries: self.values.nonzero_in_range(e_l, e_r),
        }
    }

    /// Processes a round request: advances the tree one level with the
    /// revealed key and returns the requested sibling hashes.
    pub fn process_round(&mut self, req: &RoundRequest<F>) -> RoundReply<F> {
        assert_eq!(req.level, self.level + 1, "round out of order");
        let (w0, w1) = self.kind.weights(req.challenge);
        self.values.fold(w0, w1);
        self.level += 1;
        RoundReply {
            left: req.left.map(|i| self.values.get(i)),
            right: req.right.map(|i| self.values.get(i)),
        }
    }
}

/// A verified sub-vector answer plus cost accounting.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Verified<F: PrimeField> {
    /// The verified `(index, value)` pairs within `[q_L, q_R]`.
    pub entries: Vec<(u64, F)>,
    /// Cost accounting for the run.
    pub report: CostReport,
}

/// Runs the complete honest SUB-VECTOR protocol.
pub fn run_subvector<F: PrimeField, R: Rng + ?Sized>(
    log_u: u32,
    stream: &[Update],
    q_l: u64,
    q_r: u64,
    rng: &mut R,
) -> Result<Verified<F>, Rejection> {
    run_subvector_with_adversary(log_u, stream, q_l, q_r, rng, None, None)
}

/// Corruption hook for the initial answer message.
pub type AnswerAdversary<'a, F> = &'a mut dyn FnMut(&mut SubVectorAnswer<F>);
/// Corruption hook for per-round sibling replies (`level`, reply).
pub type ReplyAdversary<'a, F> = &'a mut dyn FnMut(u32, &mut RoundReply<F>);

/// Like [`run_subvector`] with hooks corrupting the answer and/or the
/// per-round sibling replies.
#[allow(clippy::too_many_arguments)]
pub fn run_subvector_with_adversary<F: PrimeField, R: Rng + ?Sized>(
    log_u: u32,
    stream: &[Update],
    q_l: u64,
    q_r: u64,
    rng: &mut R,
    tamper_answer: Option<AnswerAdversary<'_, F>>,
    tamper_reply: Option<ReplyAdversary<'_, F>>,
) -> Result<Verified<F>, Rejection> {
    let mut verifier = SubVectorVerifier::<F>::new(log_u, rng);
    verifier.update_all(stream);

    let fv = FrequencyVector::from_stream(1 << log_u, stream);
    let mut prover = SubVectorProver::new(&fv, log_u);

    let mut session = verifier.into_session(q_l, q_r);
    let mut report = CostReport {
        v_to_p_words: 2, // the query range
        ..CostReport::default()
    };

    let mut answer = prover.answer(q_l, q_r);
    if let Some(t) = tamper_answer {
        t(&mut answer);
    }
    report.rounds += 1;
    report.p_to_v_words += 2 * answer.entries.len();

    let mut step = session.receive_answer(&answer, None)?;
    let mut tamper_reply = tamper_reply;
    while let Step::Request(req) = step {
        report.rounds += 1;
        report.v_to_p_words += 1; // the revealed key (requests are implied)
        let mut reply = prover.process_round(&req);
        if let Some(t) = tamper_reply.as_mut() {
            t(req.level, &mut reply);
        }
        report.p_to_v_words += reply.left.is_some() as usize + reply.right.is_some() as usize;
        step = session.receive_reply(&req, &reply)?;
    }
    report.verifier_space_words = session.space_words();
    Ok(Verified {
        entries: session.queried_entries(&answer),
        report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};
    use sip_field::Fp61;
    use sip_streaming::workloads;

    fn expected_entries(fv: &FrequencyVector, q_l: u64, q_r: u64) -> Vec<(u64, Fp61)> {
        fv.range_report(q_l, q_r)
            .into_iter()
            .map(|(i, f)| (i, Fp61::from_i64(f)))
            .collect()
    }

    #[test]
    fn completeness_various_ranges() {
        let mut rng = StdRng::seed_from_u64(1);
        let log_u = 9;
        let u = 1u64 << log_u;
        let stream = workloads::uniform(200, u, 50, 2);
        let fv = FrequencyVector::from_stream(u, &stream);
        for &(q_l, q_r) in &[
            (0u64, u - 1),
            (0, 0),
            (u - 1, u - 1),
            (1, 1),
            (17, 300),
            (100, 101),
            (255, 256),
        ] {
            let got = run_subvector::<Fp61, _>(log_u, &stream, q_l, q_r, &mut rng).unwrap();
            assert_eq!(
                got.entries,
                expected_entries(&fv, q_l, q_r),
                "[{q_l},{q_r}]"
            );
        }
    }

    #[test]
    fn random_ranges() {
        let mut rng = StdRng::seed_from_u64(2);
        let log_u = 10;
        let u = 1u64 << log_u;
        let stream = workloads::with_deletions(2000, u, 0.3, 3);
        let fv = FrequencyVector::from_stream(u, &stream);
        for _ in 0..25 {
            let a = rng.random_range(0..u);
            let b = rng.random_range(0..u);
            let (q_l, q_r) = (a.min(b), a.max(b));
            let got = run_subvector::<Fp61, _>(log_u, &stream, q_l, q_r, &mut rng).unwrap();
            assert_eq!(got.entries, expected_entries(&fv, q_l, q_r));
        }
    }

    #[test]
    fn empty_vector_and_empty_answer() {
        let mut rng = StdRng::seed_from_u64(3);
        let got = run_subvector::<Fp61, _>(8, &[], 10, 200, &mut rng).unwrap();
        assert!(got.entries.is_empty());
    }

    #[test]
    fn tiny_universe() {
        let mut rng = StdRng::seed_from_u64(4);
        let stream = [Update::new(0, 7), Update::new(1, 9)];
        let got = run_subvector::<Fp61, _>(1, &stream, 0, 0, &mut rng).unwrap();
        assert_eq!(got.entries, vec![(0, Fp61::from_u64(7))]);
    }

    #[test]
    fn space_and_communication_are_logarithmic_plus_k() {
        let mut rng = StdRng::seed_from_u64(5);
        let log_u = 14;
        let u = 1u64 << log_u;
        let stream = workloads::distinct_key_values(4000, u, 500, 6);
        // range of length 1000, the paper's Figure 3 setting
        let got = run_subvector::<Fp61, _>(log_u, &stream, 5000, 5999, &mut rng).unwrap();
        let k = got.entries.len();
        let d = log_u as usize;
        // communication: answer (≤ 2(k+2) words) + ≤ 2 siblings/round + keys
        assert!(got.report.p_to_v_words <= 2 * (k + 2) + 2 * d);
        assert!(got.report.v_to_p_words <= d + 2);
        // verifier space: keys + root + O(log u) frontier
        assert!(
            got.report.verifier_space_words <= 3 * d + 10,
            "space {} too large",
            got.report.verifier_space_words
        );
    }

    #[test]
    fn tampered_answer_value_rejected() {
        let mut rng = StdRng::seed_from_u64(6);
        let stream = workloads::uniform(300, 1 << 8, 20, 7);
        let mut tamper = |ans: &mut SubVectorAnswer<Fp61>| {
            if let Some(e) = ans.entries.first_mut() {
                e.1 += Fp61::ONE;
            }
        };
        let res = run_subvector_with_adversary::<Fp61, _>(
            8,
            &stream,
            10,
            100,
            &mut rng,
            Some(&mut tamper),
            None,
        );
        assert!(matches!(res, Err(Rejection::RootMismatch)));
    }

    #[test]
    fn omitted_entry_rejected() {
        let mut rng = StdRng::seed_from_u64(7);
        let stream = workloads::uniform(300, 1 << 8, 20, 8);
        let fv = FrequencyVector::from_stream(1 << 8, &stream);
        // pick a range that certainly contains an entry
        let (i0, _) = fv.nonzero().next().unwrap();
        let q_l = i0.saturating_sub(5);
        let q_r = (i0 + 5).min((1 << 8) - 1);
        let mut tamper = |ans: &mut SubVectorAnswer<Fp61>| {
            ans.entries.retain(|&(i, _)| i != i0);
        };
        let res = run_subvector_with_adversary::<Fp61, _>(
            8,
            &stream,
            q_l,
            q_r,
            &mut rng,
            Some(&mut tamper),
            None,
        );
        assert!(matches!(res, Err(Rejection::RootMismatch)));
    }

    #[test]
    fn injected_phantom_entry_rejected() {
        let mut rng = StdRng::seed_from_u64(8);
        let stream = [Update::new(40, 5)];
        let mut tamper = |ans: &mut SubVectorAnswer<Fp61>| {
            ans.entries.push((41, Fp61::from_u64(3)));
            ans.entries.sort_by_key(|e| e.0);
        };
        let res = run_subvector_with_adversary::<Fp61, _>(
            8,
            &stream,
            30,
            50,
            &mut rng,
            Some(&mut tamper),
            None,
        );
        assert!(matches!(res, Err(Rejection::RootMismatch)));
    }

    #[test]
    fn tampered_sibling_rejected() {
        let mut rng = StdRng::seed_from_u64(9);
        let stream = workloads::uniform(300, 1 << 8, 20, 10);
        for bad_level in 1..=7u32 {
            let mut tamper = |level: u32, reply: &mut RoundReply<Fp61>| {
                if level == bad_level {
                    if let Some(h) = reply.left.as_mut() {
                        *h += Fp61::ONE;
                    } else if let Some(h) = reply.right.as_mut() {
                        *h += Fp61::ONE;
                    }
                }
            };
            let res = run_subvector_with_adversary::<Fp61, _>(
                8,
                &stream,
                100,
                120,
                &mut rng,
                None,
                Some(&mut tamper),
            );
            // levels without requests pass the tamper hook a no-op; only
            // assert rejection when a sibling actually existed to corrupt
            if let Err(e) = res {
                assert!(matches!(e, Rejection::RootMismatch), "level={bad_level}");
            }
        }
    }

    #[test]
    fn unsorted_answer_rejected_without_interaction() {
        let mut rng = StdRng::seed_from_u64(10);
        let stream = workloads::uniform(100, 1 << 6, 5, 11);
        let mut tamper = |ans: &mut SubVectorAnswer<Fp61>| {
            ans.entries.reverse();
        };
        let res = run_subvector_with_adversary::<Fp61, _>(
            6,
            &stream,
            0,
            63,
            &mut rng,
            Some(&mut tamper),
            None,
        );
        if let Err(e) = res {
            assert!(matches!(e, Rejection::MalformedAnswer { .. }));
        } else {
            // a single-entry answer reversed is unchanged; fine
        }
    }

    #[test]
    fn oversized_answer_rejected() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut verifier = SubVectorVerifier::<Fp61>::new(6, &mut rng);
        let stream = workloads::uniform(100, 1 << 6, 5, 12);
        verifier.update_all(&stream);
        let mut session = verifier.into_session(4, 9);
        let answer = SubVectorAnswer {
            entries: (4..=9).map(|i| (i, Fp61::ONE)).collect(),
        };
        let res = session.receive_answer(&answer, Some(3));
        assert!(matches!(
            res,
            Err(Rejection::AnswerTooLarge { limit: 3, got: 6 })
        ));
    }

    #[test]
    fn full_range_needs_no_sibling_requests() {
        // Querying [0, u−1] lets V merge straight to the root: the protocol
        // should accept without any sibling hashes crossing the wire.
        let mut rng = StdRng::seed_from_u64(12);
        let log_u = 6;
        let stream = workloads::uniform(100, 1 << log_u, 5, 13);
        let got = run_subvector::<Fp61, _>(log_u, &stream, 0, (1 << log_u) - 1, &mut rng).unwrap();
        // p_to_v beyond the answer itself is zero
        let fv = FrequencyVector::from_stream(1 << log_u, &stream);
        assert_eq!(got.report.p_to_v_words, 2 * fv.support_size() as usize);
    }
}

//! Typed snapshot failures.
//!
//! A snapshot file is untrusted input — it may be truncated by a crash,
//! corrupted by a disk, produced by a different build, or forged outright.
//! Every failure mode maps to one of these variants; **none** may panic
//! the decoder. The fixture suite flips every byte of every golden
//! snapshot and asserts exactly that.

use core::fmt;

use sip_wire::WireError;

/// Why a snapshot failed to decode (or to reach/leave disk).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SnapshotError {
    /// A filesystem operation failed (message carries the `std::io` detail
    /// and, when known, the path).
    Io {
        /// The offending path, when known.
        path: Option<String>,
        /// The `std::io::Error` rendering.
        detail: String,
    },
    /// The file does not start with the snapshot magic — not a snapshot.
    BadMagic,
    /// The snapshot was written by a different snapshot-format version.
    /// Reported before any layout-dependent diagnostics, like the wire
    /// handshake's version check.
    UnsupportedVersion {
        /// The version this build writes and reads.
        ours: u16,
        /// The version found in the file.
        theirs: u16,
    },
    /// The snapshot holds a different persisted type than the caller asked
    /// to restore.
    WrongKind {
        /// The kind tag the caller expected.
        expected: u16,
        /// The kind tag found in the envelope.
        found: u16,
    },
    /// The snapshot was taken over a different field than the caller's.
    FieldMismatch {
        /// The field id byte the caller expected.
        expected: u8,
        /// The field id byte found in the envelope.
        found: u8,
    },
    /// The envelope's declared payload length disagrees with the bytes
    /// actually present (crash-truncated file, or appended garbage).
    LengthMismatch {
        /// Total bytes the envelope implies.
        declared: usize,
        /// Bytes actually present.
        actual: usize,
    },
    /// The integrity checksum over header + payload does not match: at
    /// least one bit of the snapshot changed since it was written.
    ChecksumMismatch,
    /// The input exceeds the decoder's size cap (a snapshot is never this
    /// large; refuse before allocating).
    TooLarge {
        /// Bytes presented.
        bytes: u64,
        /// The cap.
        limit: u64,
    },
    /// The payload failed primitive decoding (truncated field, forged
    /// count, non-canonical residue, …).
    Codec(WireError),
    /// The payload decoded structurally but violates a semantic invariant
    /// of the persisted type (point/dimension mismatch, out-of-range
    /// index, non-canonical sparse form, …).
    Invalid(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io { path, detail } => match path {
                Some(p) => write!(f, "snapshot I/O failed for {p:?}: {detail}"),
                None => write!(f, "snapshot I/O failed: {detail}"),
            },
            SnapshotError::BadMagic => write!(f, "bad snapshot magic (not a sip-durable file)"),
            SnapshotError::UnsupportedVersion { ours, theirs } => write!(
                f,
                "snapshot format version mismatch: we speak {ours}, file is {theirs}"
            ),
            SnapshotError::WrongKind { expected, found } => write!(
                f,
                "snapshot holds kind {found}, caller asked to restore kind {expected}"
            ),
            SnapshotError::FieldMismatch { expected, found } => write!(
                f,
                "snapshot field mismatch: expected Fp{expected}, file is Fp{found}"
            ),
            SnapshotError::LengthMismatch { declared, actual } => write!(
                f,
                "snapshot length mismatch: envelope implies {declared} bytes, found {actual}"
            ),
            SnapshotError::ChecksumMismatch => {
                write!(f, "snapshot checksum mismatch (corrupted or tampered)")
            }
            SnapshotError::TooLarge { bytes, limit } => {
                write!(f, "snapshot of {bytes} bytes exceeds the {limit}-byte cap")
            }
            SnapshotError::Codec(e) => write!(f, "snapshot payload undecodable: {e}"),
            SnapshotError::Invalid(detail) => {
                write!(f, "snapshot payload invalid: {detail}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<WireError> for SnapshotError {
    fn from(e: WireError) -> Self {
        SnapshotError::Codec(e)
    }
}

/// Shorthand used by the `Persist` impls for semantic validation failures.
pub(crate) fn invalid(detail: impl Into<String>) -> SnapshotError {
    SnapshotError::Invalid(detail.into())
}

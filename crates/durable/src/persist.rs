//! [`Persist`] implementations for every verifier-side digest type.
//!
//! Payload encodings carry **parameters and protocol state only** — secret
//! points, accumulators, keys, counters. Derived state (χ tables, digit
//! plans, packed group tables) is reconstructed from the parameters on
//! restore, exactly as first construction builds it, so a restored digest
//! is field-for-field identical to one that never stopped.
//!
//! Decoding treats every payload as hostile: lengths are validated against
//! bytes actually present before allocating ([`Reader::count`]), field
//! elements reject non-canonical residues, and semantic invariants
//! (dimensions, key ranges, canonical sparse form) decode to
//! [`SnapshotError::Invalid`] — never a panic, never silently-wrong state.

use sip_core::heavy_hitters::CountTreeHasher;
use sip_core::subvector::{HashKind, StreamingRootHasher, SubVectorVerifier};
use sip_core::sumcheck::f2::F2Verifier;
use sip_core::sumcheck::general_ell::GeneralF2Verifier;
use sip_core::sumcheck::inner_product::InnerProductVerifier;
use sip_core::sumcheck::moments::MomentVerifier;
use sip_core::sumcheck::range_sum::RangeSumVerifier;
use sip_field::PrimeField;
use sip_kvstore::{Client, ShardedClient};
use sip_lde::{LdeParams, MultiLdeEvaluator, StreamingLdeEvaluator};
use sip_streaming::frequency::DENSE_LIMIT;
use sip_streaming::{FrequencyVector, ShardPlan};
use sip_wire::codec::{field_width, Writer};
use sip_wire::{FieldId, Reader};

use crate::error::{invalid, SnapshotError};
use crate::{Persist, SnapshotKind, FIELD_INDEPENDENT};

// ---------------------------------------------------------------------
// Shared payload pieces
// ---------------------------------------------------------------------

/// Encodes `(ℓ, d)`.
pub fn encode_params(params: LdeParams, w: &mut Writer) {
    w.u64(params.base()).u32(params.dimension());
}

/// Largest χ-table footprint (`d·ℓ` field elements) a decoded
/// parameterisation may imply. Restoring an evaluator *rebuilds* its
/// lookup tables from `(ℓ, d)`, so without this cap a ~40-byte forged
/// snapshot claiming `ℓ = 2^40` would pass the structural checks and then
/// demand a terabyte-scale allocation during reconstruction. The cap
/// (4M words = 32 MB at Fp61) comfortably covers every real shape — the
/// paper's sweet spot is `ℓ = 2`, and even the one-round baseline's
/// `ℓ = √u` at the server's `log u ≤ 40` limit needs only `2·2^20` words.
pub const MAX_CHI_TABLE_WORDS: u64 = 1 << 22;

/// Largest total derived-state rebuild (packed tables + points +
/// accumulators, in field words) a decoded [`MultiLdeEvaluator`] may
/// imply. Parallel repetition uses tens of points; 16M words (128 MB at
/// Fp61) is far beyond any legitimate configuration while keeping a
/// forged snapshot's memory amplification bounded.
pub const MAX_MULTI_TABLE_WORDS: u64 = 1 << 24;

/// Decodes and validates `(ℓ, d)` — overflowing or degenerate shapes, and
/// shapes whose derived tables would exceed [`MAX_CHI_TABLE_WORDS`], are
/// refused before any allocation sized by them.
pub fn decode_params(r: &mut Reader<'_>) -> Result<LdeParams, SnapshotError> {
    let ell = r.u64()?;
    let d = r.u32()?;
    let params = LdeParams::try_new(ell, d).ok_or_else(|| {
        invalid(format!(
            "LDE parameters ℓ = {ell}, d = {d} are not a universe"
        ))
    })?;
    if (d as u64).saturating_mul(ell) > MAX_CHI_TABLE_WORDS {
        return Err(invalid(format!(
            "LDE parameters ℓ = {ell}, d = {d} imply a {}-word χ table (cap {MAX_CHI_TABLE_WORDS})",
            (d as u64).saturating_mul(ell)
        )));
    }
    Ok(params)
}

/// Decodes exactly `n` field elements (the count is structural — implied
/// by already-validated parameters — so no length prefix is stored).
pub fn decode_point<F: PrimeField>(r: &mut Reader<'_>, n: usize) -> Result<Vec<F>, SnapshotError> {
    // `n` derives from validated params (d ≤ 63, shards ≤ 2^32); still
    // bound it by the bytes present so a forged dimension cannot reserve
    // memory.
    if n.saturating_mul(field_width::<F>()) > r.remaining() {
        return Err(invalid(format!(
            "{n} field elements exceed the {} payload bytes present",
            r.remaining()
        )));
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(r.field::<F>()?);
    }
    Ok(out)
}

/// The streaming-evaluator payload, reused verbatim by the wrapping
/// verifiers: params ‖ point ‖ accumulator ‖ update counter.
fn encode_lde<F: PrimeField>(e: &StreamingLdeEvaluator<F>, w: &mut Writer) {
    encode_params(e.params(), w);
    for &c in e.point() {
        w.field(c);
    }
    w.field(e.value()).u64(e.updates());
}

fn decode_lde<F: PrimeField>(
    r: &mut Reader<'_>,
) -> Result<StreamingLdeEvaluator<F>, SnapshotError> {
    let params = decode_params(r)?;
    let point = decode_point::<F>(r, params.dimension() as usize)?;
    let acc = r.field::<F>()?;
    let updates = r.u64()?;
    Ok(StreamingLdeEvaluator::from_saved(
        params, point, acc, updates,
    ))
}

/// Like [`decode_lde`], additionally requiring the binary base the
/// sum-check verifiers run on.
fn decode_binary_lde<F: PrimeField>(
    r: &mut Reader<'_>,
    protocol: &str,
) -> Result<StreamingLdeEvaluator<F>, SnapshotError> {
    let lde = decode_lde::<F>(r)?;
    if lde.params().base() != 2 {
        return Err(invalid(format!(
            "{protocol} digest must be binary, snapshot has ℓ = {}",
            lde.params().base()
        )));
    }
    Ok(lde)
}

fn field_id_of<F: PrimeField>() -> u8 {
    FieldId::of::<F>().to_byte()
}

// ---------------------------------------------------------------------
// LDE evaluators
// ---------------------------------------------------------------------

impl<F: PrimeField> Persist for StreamingLdeEvaluator<F> {
    const KIND: SnapshotKind = SnapshotKind::StreamingLde;

    fn field_id() -> u8 {
        field_id_of::<F>()
    }

    fn update_count(&self) -> u64 {
        self.updates()
    }

    fn encode_state(&self, w: &mut Writer) {
        encode_lde(self, w);
    }

    fn decode_state(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        decode_lde(r)
    }
}

impl<F: PrimeField> Persist for MultiLdeEvaluator<F> {
    const KIND: SnapshotKind = SnapshotKind::MultiLde;

    fn field_id() -> u8 {
        field_id_of::<F>()
    }

    fn update_count(&self) -> u64 {
        self.updates()
    }

    fn encode_state(&self, w: &mut Writer) {
        encode_params(self.params(), w);
        w.count(self.num_points());
        for p in 0..self.num_points() {
            for &c in self.point(p) {
                w.field(c);
            }
        }
        for v in self.values() {
            w.field(v);
        }
        w.u64(self.updates());
    }

    fn decode_state(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        let params = decode_params(r)?;
        let d = params.dimension() as usize;
        // Each point costs d coordinates plus one accumulator.
        let k = r.count((d + 1).saturating_mul(field_width::<F>()))?;
        // Rebuilding k points also rebuilds k packed group tables — a
        // ~100× amplification of the payload bytes. Bound the total
        // derived-state rebuild like decode_params bounds the χ table, so
        // a re-checksummed forged point count cannot demand gigabytes.
        let per_point = (sip_lde::packed_table_words(params) + d + 1) as u64;
        let total = (k as u64).saturating_mul(per_point);
        if total > MAX_MULTI_TABLE_WORDS {
            return Err(invalid(format!(
                "{k} points × {per_point} derived words = {total} exceeds the \
                 {MAX_MULTI_TABLE_WORDS}-word rebuild cap"
            )));
        }
        let mut points = Vec::with_capacity(k);
        for _ in 0..k {
            points.push(decode_point::<F>(r, d)?);
        }
        let accs = decode_point::<F>(r, k)?;
        let updates = r.u64()?;
        Ok(MultiLdeEvaluator::from_saved(params, points, accs, updates))
    }
}

// ---------------------------------------------------------------------
// Sum-check verifiers
// ---------------------------------------------------------------------

macro_rules! lde_wrapped_verifier {
    ($ty:ident, $kind:expr, $name:literal, $from:path) => {
        impl<F: PrimeField> Persist for $ty<F> {
            const KIND: SnapshotKind = $kind;

            fn field_id() -> u8 {
                field_id_of::<F>()
            }

            fn update_count(&self) -> u64 {
                self.evaluator().updates()
            }

            fn encode_state(&self, w: &mut Writer) {
                encode_lde(self.evaluator(), w);
            }

            fn decode_state(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
                Ok($from(decode_binary_lde::<F>(r, $name)?))
            }
        }
    };
}

lde_wrapped_verifier!(
    F2Verifier,
    SnapshotKind::F2Verifier,
    "F2",
    F2Verifier::from_evaluator
);
lde_wrapped_verifier!(
    RangeSumVerifier,
    SnapshotKind::RangeSumVerifier,
    "RANGE-SUM",
    RangeSumVerifier::from_evaluator
);

impl<F: PrimeField> Persist for MomentVerifier<F> {
    const KIND: SnapshotKind = SnapshotKind::MomentVerifier;

    fn field_id() -> u8 {
        field_id_of::<F>()
    }

    fn update_count(&self) -> u64 {
        self.evaluator().updates()
    }

    fn encode_state(&self, w: &mut Writer) {
        w.u32(self.k());
        encode_lde(self.evaluator(), w);
    }

    fn decode_state(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        let k = r.u32()?;
        if k == 0 {
            return Err(invalid("moment order k must be at least 1"));
        }
        let lde = decode_binary_lde::<F>(r, "F_k")?;
        Ok(MomentVerifier::from_parts(k, lde))
    }
}

impl<F: PrimeField> Persist for GeneralF2Verifier<F> {
    const KIND: SnapshotKind = SnapshotKind::GeneralF2Verifier;

    fn field_id() -> u8 {
        field_id_of::<F>()
    }

    fn update_count(&self) -> u64 {
        self.evaluator().updates()
    }

    fn encode_state(&self, w: &mut Writer) {
        encode_lde(self.evaluator(), w);
    }

    fn decode_state(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        // Any base ℓ ≥ 2 is legal here — that is this protocol's point.
        Ok(GeneralF2Verifier::from_evaluator(decode_lde::<F>(r)?))
    }
}

impl<F: PrimeField> Persist for InnerProductVerifier<F> {
    const KIND: SnapshotKind = SnapshotKind::InnerProductVerifier;

    fn field_id() -> u8 {
        field_id_of::<F>()
    }

    fn update_count(&self) -> u64 {
        self.evaluator_a().updates() + self.evaluator_b().updates()
    }

    fn encode_state(&self, w: &mut Writer) {
        // One point serves both digests; store it once.
        let a = self.evaluator_a();
        encode_params(a.params(), w);
        for &c in a.point() {
            w.field(c);
        }
        w.field(a.value()).u64(a.updates());
        let b = self.evaluator_b();
        w.field(b.value()).u64(b.updates());
    }

    fn decode_state(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        let params = decode_params(r)?;
        if params.base() != 2 {
            return Err(invalid("INNER PRODUCT digests must be binary"));
        }
        let point = decode_point::<F>(r, params.dimension() as usize)?;
        let acc_a = r.field::<F>()?;
        let updates_a = r.u64()?;
        let acc_b = r.field::<F>()?;
        let updates_b = r.u64()?;
        let lde_a = StreamingLdeEvaluator::from_saved(params, point.clone(), acc_a, updates_a);
        let lde_b = StreamingLdeEvaluator::from_saved(params, point, acc_b, updates_b);
        Ok(InnerProductVerifier::from_evaluators(lde_a, lde_b))
    }
}

// ---------------------------------------------------------------------
// Hash trees
// ---------------------------------------------------------------------

fn encode_hash_kind(kind: HashKind, w: &mut Writer) {
    w.u8(match kind {
        HashKind::Affine => 0,
        HashKind::Multilinear => 1,
    });
}

fn decode_hash_kind(r: &mut Reader<'_>) -> Result<HashKind, SnapshotError> {
    match r.u8()? {
        0 => Ok(HashKind::Affine),
        1 => Ok(HashKind::Multilinear),
        tag => Err(invalid(format!("unknown hash kind {tag}"))),
    }
}

fn decode_depth(r: &mut Reader<'_>) -> Result<usize, SnapshotError> {
    let depth = r.u32()? as usize;
    if !(1..=63).contains(&depth) {
        return Err(invalid(format!("tree depth {depth} outside [1, 63]")));
    }
    Ok(depth)
}

/// Encodes a root hasher's payload: combine rule, depth, level keys,
/// running root, update counter. Public for the `sip-cluster` book impls.
pub fn encode_root_hasher<F: PrimeField>(h: &StreamingRootHasher<F>, w: &mut Writer) {
    encode_hash_kind(h.kind(), w);
    w.u32(h.depth());
    for &k in h.keys() {
        w.field(k);
    }
    w.field(h.root()).u64(h.updates());
}

/// Decodes and validates one root-hasher payload (inverse of
/// [`encode_root_hasher`]).
pub fn decode_root_hasher<F: PrimeField>(
    r: &mut Reader<'_>,
) -> Result<StreamingRootHasher<F>, SnapshotError> {
    let kind = decode_hash_kind(r)?;
    let depth = decode_depth(r)?;
    let keys = decode_point::<F>(r, depth)?;
    let root = r.field::<F>()?;
    let updates = r.u64()?;
    Ok(StreamingRootHasher::from_saved(keys, kind, root, updates))
}

impl<F: PrimeField> Persist for StreamingRootHasher<F> {
    const KIND: SnapshotKind = SnapshotKind::RootHasher;

    fn field_id() -> u8 {
        field_id_of::<F>()
    }

    fn update_count(&self) -> u64 {
        self.updates()
    }

    fn encode_state(&self, w: &mut Writer) {
        encode_root_hasher(self, w);
    }

    fn decode_state(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        decode_root_hasher(r)
    }
}

impl<F: PrimeField> Persist for SubVectorVerifier<F> {
    const KIND: SnapshotKind = SnapshotKind::SubVectorVerifier;

    fn field_id() -> u8 {
        field_id_of::<F>()
    }

    fn update_count(&self) -> u64 {
        self.hasher().updates()
    }

    fn encode_state(&self, w: &mut Writer) {
        encode_root_hasher(self.hasher(), w);
    }

    fn decode_state(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        Ok(SubVectorVerifier::from_hasher(decode_root_hasher(r)?))
    }
}

fn encode_count_tree<F: PrimeField>(h: &CountTreeHasher<F>, w: &mut Writer) {
    w.u32(h.depth());
    for &k in h.keys() {
        w.field(k);
    }
    for &s in h.skeys() {
        w.field(s);
    }
    w.field(h.root()).u64(h.total());
}

fn decode_count_tree<F: PrimeField>(
    r: &mut Reader<'_>,
) -> Result<CountTreeHasher<F>, SnapshotError> {
    let depth = decode_depth(r)?;
    let keys = decode_point::<F>(r, depth)?;
    let skeys = decode_point::<F>(r, depth)?;
    let root = r.field::<F>()?;
    let n = r.u64()?;
    Ok(CountTreeHasher::from_saved(keys, skeys, root, n))
}

impl<F: PrimeField> Persist for CountTreeHasher<F> {
    const KIND: SnapshotKind = SnapshotKind::CountTreeHasher;

    fn field_id() -> u8 {
        field_id_of::<F>()
    }

    fn update_count(&self) -> u64 {
        self.total()
    }

    fn encode_state(&self, w: &mut Writer) {
        encode_count_tree(self, w);
    }

    fn decode_state(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        decode_count_tree(r)
    }
}

// ---------------------------------------------------------------------
// Frequency vectors (prover-side dataset state)
// ---------------------------------------------------------------------

fn encode_frequency(fv: &FrequencyVector, w: &mut Writer) {
    w.u64(fv.universe());
    match fv.dense_values() {
        Some(values) => {
            w.u8(0).count(values.len());
            for &v in values {
                w.i64(v);
            }
        }
        None => {
            w.u8(1).count(fv.support_size() as usize);
            for (i, f) in fv.nonzero() {
                w.u64(i).i64(f);
            }
        }
    }
}

fn decode_frequency(r: &mut Reader<'_>) -> Result<FrequencyVector, SnapshotError> {
    let u = r.u64()?;
    if u == 0 {
        return Err(invalid("frequency vector universe must be nonzero"));
    }
    match r.u8()? {
        0 => {
            if u > DENSE_LIMIT {
                return Err(invalid(format!(
                    "dense representation over {u} keys exceeds the {DENSE_LIMIT} dense limit"
                )));
            }
            let n = r.count(8)?;
            if n as u64 != u {
                return Err(invalid(format!(
                    "dense array of {n} entries does not cover universe {u}"
                )));
            }
            let mut values = Vec::with_capacity(n);
            for _ in 0..n {
                values.push(r.i64()?);
            }
            Ok(FrequencyVector::from_dense(u, values))
        }
        1 => {
            let n = r.count(16)?;
            let mut entries = Vec::with_capacity(n);
            let mut last: Option<u64> = None;
            for _ in 0..n {
                let i = r.u64()?;
                let f = r.i64()?;
                if i >= u {
                    return Err(invalid(format!("sparse index {i} outside universe {u}")));
                }
                if last.is_some_and(|p| p >= i) {
                    return Err(invalid("sparse entries must be strictly increasing"));
                }
                if f == 0 {
                    return Err(invalid("sparse entries must be nonzero"));
                }
                last = Some(i);
                entries.push((i, f));
            }
            Ok(FrequencyVector::from_sparse_entries(u, entries))
        }
        tag => Err(invalid(format!("unknown frequency representation {tag}"))),
    }
}

impl Persist for FrequencyVector {
    const KIND: SnapshotKind = SnapshotKind::FrequencyVector;

    fn field_id() -> u8 {
        FIELD_INDEPENDENT
    }

    fn update_count(&self) -> u64 {
        self.support_size()
    }

    fn encode_state(&self, w: &mut Writer) {
        encode_frequency(self, w);
    }

    fn decode_state(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        decode_frequency(r)
    }
}

impl<F: PrimeField> Persist for sip_kvstore::CloudStore<F> {
    const KIND: SnapshotKind = SnapshotKind::CloudStore;

    fn field_id() -> u8 {
        // The three vectors hold no field elements; the store is persisted
        // field-independently so a server restart may even change fields
        // (verifier digests, not prover data, pin the field).
        FIELD_INDEPENDENT
    }

    fn update_count(&self) -> u64 {
        self.encoded_vector().support_size()
    }

    fn encode_state(&self, w: &mut Writer) {
        w.u32(self.log_u());
        encode_frequency(self.encoded_vector(), w);
        encode_frequency(self.presence_vector(), w);
        encode_frequency(self.raw_vector(), w);
    }

    fn decode_state(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        let log_u = decode_log_u(r)?;
        let u = 1u64 << log_u;
        let encoded = decode_frequency(r)?;
        let presence = decode_frequency(r)?;
        let raw = decode_frequency(r)?;
        for (fv, name) in [
            (&encoded, "encoded"),
            (&presence, "presence"),
            (&raw, "raw"),
        ] {
            if fv.universe() != u {
                return Err(invalid(format!(
                    "{name} vector universe {} disagrees with log_u {log_u}",
                    fv.universe()
                )));
            }
        }
        Ok(sip_kvstore::CloudStore::from_vectors(
            log_u, encoded, presence, raw,
        ))
    }
}

// ---------------------------------------------------------------------
// Key-value clients
// ---------------------------------------------------------------------

/// Decodes a `log_u`, refusing values outside `[1, 63]`.
pub fn decode_log_u(r: &mut Reader<'_>) -> Result<u32, SnapshotError> {
    let log_u = r.u32()?;
    if !(1..=63).contains(&log_u) {
        return Err(invalid(format!("log_u {log_u} outside [1, 63]")));
    }
    Ok(log_u)
}

/// Decodes a counted vector of nested digest payloads, validating each
/// element's depth/dimension against the client's `log_u`.
fn decode_digest_vec<T>(
    r: &mut Reader<'_>,
    decode: impl Fn(&mut Reader<'_>) -> Result<T, SnapshotError>,
    depth_of: impl Fn(&T) -> u32,
    log_u: u32,
    family: &str,
) -> Result<Vec<T>, SnapshotError> {
    // A digest payload is at least a handful of bytes; 8 bounds the forged
    // count without ever rejecting a legitimate one.
    let n = r.count(8)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let d = decode(r)?;
        if depth_of(&d) != log_u {
            return Err(invalid(format!(
                "{family} digest depth {} disagrees with client log_u {log_u}",
                depth_of(&d)
            )));
        }
        out.push(d);
    }
    Ok(out)
}

fn encode_kv_client<F: PrimeField>(c: &Client<F>, w: &mut Writer) {
    w.u32(c.log_u());
    let (reporting, range_sums, range_counts, f2s, heavies) = c.digests();
    w.count(reporting.len());
    for d in reporting {
        encode_root_hasher(d.hasher(), w);
    }
    w.count(range_sums.len());
    for d in range_sums {
        encode_lde(d.evaluator(), w);
    }
    w.count(range_counts.len());
    for d in range_counts {
        encode_lde(d.evaluator(), w);
    }
    w.count(f2s.len());
    for d in f2s {
        encode_lde(d.evaluator(), w);
    }
    w.count(heavies.len());
    for d in heavies {
        encode_count_tree(d, w);
    }
    w.u64(c.puts());
}

fn decode_kv_client<F: PrimeField>(r: &mut Reader<'_>) -> Result<Client<F>, SnapshotError> {
    let log_u = decode_log_u(r)?;
    let reporting = decode_digest_vec(
        r,
        |r| decode_root_hasher::<F>(r).map(SubVectorVerifier::from_hasher),
        |d| d.hasher().depth(),
        log_u,
        "reporting",
    )?;
    let binary_digest = |r: &mut Reader<'_>| decode_binary_lde::<F>(r, "kv aggregate");
    let range_sums = decode_digest_vec(
        r,
        |r| binary_digest(r).map(RangeSumVerifier::from_evaluator),
        |d| d.evaluator().params().dimension(),
        log_u,
        "range-sum",
    )?;
    let range_counts = decode_digest_vec(
        r,
        |r| binary_digest(r).map(RangeSumVerifier::from_evaluator),
        |d| d.evaluator().params().dimension(),
        log_u,
        "range-count",
    )?;
    let f2s = decode_digest_vec(
        r,
        |r| binary_digest(r).map(F2Verifier::from_evaluator),
        |d| d.evaluator().params().dimension(),
        log_u,
        "f2",
    )?;
    let heavies = decode_digest_vec(r, decode_count_tree::<F>, |d| d.depth(), log_u, "heavy")?;
    let puts = r.u64()?;
    Ok(Client::from_digests(
        log_u,
        reporting,
        range_sums,
        range_counts,
        f2s,
        heavies,
        puts,
    ))
}

impl<F: PrimeField> Persist for Client<F> {
    const KIND: SnapshotKind = SnapshotKind::KvClient;

    fn field_id() -> u8 {
        field_id_of::<F>()
    }

    fn update_count(&self) -> u64 {
        self.puts()
    }

    fn encode_state(&self, w: &mut Writer) {
        encode_kv_client(self, w);
    }

    fn decode_state(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        decode_kv_client(r)
    }
}

/// Decodes and validates a `(log_u, shards)` fleet plan.
pub fn decode_plan(r: &mut Reader<'_>) -> Result<ShardPlan, SnapshotError> {
    let log_u = decode_log_u(r)?;
    let shards = r.u32()?;
    ShardPlan::validate(log_u, shards).map_err(invalid)
}

impl<F: PrimeField> Persist for ShardedClient<F> {
    const KIND: SnapshotKind = SnapshotKind::ShardedKvClient;

    fn field_id() -> u8 {
        field_id_of::<F>()
    }

    fn update_count(&self) -> u64 {
        self.shard_clients().iter().map(|c| c.puts()).sum()
    }

    fn encode_state(&self, w: &mut Writer) {
        let plan = self.plan();
        w.u32(plan.log_u()).u32(plan.shards());
        for c in self.shard_clients() {
            encode_kv_client(c, w);
        }
    }

    fn decode_state(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        let plan = decode_plan(r)?;
        let mut clients = Vec::with_capacity(plan.shards() as usize);
        for _ in 0..plan.shards() {
            let c = decode_kv_client::<F>(r)?;
            if c.log_u() != plan.log_u() {
                return Err(invalid(format!(
                    "shard client log_u {} disagrees with plan log_u {}",
                    c.log_u(),
                    plan.log_u()
                )));
            }
            clients.push(c);
        }
        Ok(ShardedClient::from_shard_clients(plan, clients))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{snapshot_from_bytes, snapshot_to_bytes};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sip_field::{Fp127, Fp61};
    use sip_streaming::{workloads, Update};

    fn stream(u: u64) -> Vec<Update> {
        workloads::with_deletions(300, u, 0.2, 7)
    }

    #[test]
    fn streaming_lde_roundtrips_bit_identically() {
        for &(ell, d) in &[(2u64, 10u32), (3, 5), (16, 3)] {
            let params = LdeParams::new(ell, d);
            let mut rng = StdRng::seed_from_u64(1);
            let mut e = StreamingLdeEvaluator::<Fp61>::random(params, &mut rng);
            e.update_batch(&stream(params.universe()));
            let bytes = snapshot_to_bytes(&e);
            let back: StreamingLdeEvaluator<Fp61> = snapshot_from_bytes(&bytes).unwrap();
            assert_eq!(back.params(), e.params());
            assert_eq!(back.point(), e.point());
            assert_eq!(back.value(), e.value());
            assert_eq!(back.updates(), e.updates());
            // The derived χ table is rebuilt: weights agree everywhere.
            for i in [0u64, 1, params.universe() - 1] {
                assert_eq!(back.weight(i), e.weight(i));
            }
        }
    }

    #[test]
    fn multi_lde_roundtrips() {
        let params = LdeParams::new(2, 8);
        let mut rng = StdRng::seed_from_u64(2);
        let mut e = MultiLdeEvaluator::<Fp127>::random(params, 4, &mut rng);
        e.update_batch(&stream(params.universe()));
        let back: MultiLdeEvaluator<Fp127> = snapshot_from_bytes(&snapshot_to_bytes(&e)).unwrap();
        assert_eq!(back.values(), e.values());
        assert_eq!(back.updates(), e.updates());
        for p in 0..4 {
            assert_eq!(back.point(p), e.point(p));
        }
    }

    #[test]
    fn wrong_kind_and_wrong_field_are_typed_errors() {
        let params = LdeParams::new(2, 6);
        let mut rng = StdRng::seed_from_u64(3);
        let e = StreamingLdeEvaluator::<Fp61>::random(params, &mut rng);
        let bytes = snapshot_to_bytes(&e);
        assert!(matches!(
            snapshot_from_bytes::<MultiLdeEvaluator<Fp61>>(&bytes).unwrap_err(),
            SnapshotError::WrongKind { .. }
        ));
        assert!(matches!(
            snapshot_from_bytes::<StreamingLdeEvaluator<Fp127>>(&bytes).unwrap_err(),
            SnapshotError::FieldMismatch {
                expected: 127,
                found: 61
            }
        ));
    }

    #[test]
    fn forged_giant_chi_table_params_are_refused_cheaply() {
        // A re-checksummed forgery claiming ℓ = 2^40, d = 1 is structurally
        // valid (2^40 fits u64) but reconstructing its χ table would be a
        // terabyte-scale allocation; the decoder must refuse on the
        // parameter check, before any allocation.
        let mut w = Writer::new();
        w.u64(1u64 << 40).u32(1); // params
        w.field(Fp61::from_u64(3)); // point (d = 1)
        w.field(Fp61::from_u64(0)); // acc
        w.u64(0); // updates
        let payload = w.into_bytes();
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&crate::SNAPSHOT_MAGIC);
        bytes.extend_from_slice(&crate::SNAPSHOT_VERSION.to_le_bytes());
        bytes.extend_from_slice(&(SnapshotKind::StreamingLde as u16).to_le_bytes());
        bytes.push(61);
        bytes.extend_from_slice(&0u64.to_le_bytes());
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&payload);
        let sum = crate::fnv1a64(&bytes);
        bytes.extend_from_slice(&sum.to_le_bytes());
        let err = snapshot_from_bytes::<StreamingLdeEvaluator<Fp61>>(&bytes).unwrap_err();
        assert!(
            matches!(&err, SnapshotError::Invalid(d) if d.contains("χ table")),
            "{err:?}"
        );
    }

    #[test]
    fn forged_multi_point_count_is_refused_before_table_rebuild() {
        // A small, correctly-checksummed multi-point snapshot whose k and
        // payload are honest but whose derived-table rebuild would exceed
        // the cap: the decoder must refuse before building any table.
        // (d = 20 binary ⇒ 2·2^10-word tables per point; 16k points ⇒
        // ~33M words > MAX_MULTI_TABLE_WORDS.)
        let params = LdeParams::binary(20);
        let per_point = sip_lde::packed_table_words(params) as u64 + 21;
        let k = (MAX_MULTI_TABLE_WORDS / per_point + 1) as usize;
        let mut w = Writer::new();
        w.u64(2).u32(20).count(k);
        for _ in 0..k {
            for j in 0..20u64 {
                w.field(Fp61::from_u64(j + 1));
            }
        }
        for _ in 0..k {
            w.field(Fp61::from_u64(0));
        }
        w.u64(0);
        let payload = w.into_bytes();
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&crate::SNAPSHOT_MAGIC);
        bytes.extend_from_slice(&crate::SNAPSHOT_VERSION.to_le_bytes());
        bytes.extend_from_slice(&(SnapshotKind::MultiLde as u16).to_le_bytes());
        bytes.push(61);
        bytes.extend_from_slice(&0u64.to_le_bytes());
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&payload);
        let sum = crate::fnv1a64(&bytes);
        bytes.extend_from_slice(&sum.to_le_bytes());
        let err = snapshot_from_bytes::<MultiLdeEvaluator<Fp61>>(&bytes).unwrap_err();
        assert!(
            matches!(&err, SnapshotError::Invalid(d) if d.contains("rebuild cap")),
            "{err:?}"
        );
    }

    #[test]
    fn frequency_vector_preserves_representation() {
        let dense = FrequencyVector::from_stream(64, &stream(64));
        assert!(dense.is_dense());
        let back: FrequencyVector = snapshot_from_bytes(&snapshot_to_bytes(&dense)).unwrap();
        assert!(back.is_dense());
        assert_eq!(
            back.nonzero().collect::<Vec<_>>(),
            dense.nonzero().collect::<Vec<_>>()
        );

        let mut sparse = FrequencyVector::new_sparse(1 << 40);
        sparse.apply(Update::new(77, -3));
        sparse.apply(Update::new(1 << 35, 9));
        let back: FrequencyVector = snapshot_from_bytes(&snapshot_to_bytes(&sparse)).unwrap();
        assert!(!back.is_dense());
        assert_eq!(
            back.nonzero().collect::<Vec<_>>(),
            sparse.nonzero().collect::<Vec<_>>()
        );
    }

    #[test]
    fn non_canonical_sparse_forms_are_refused() {
        // Hand-built payloads: out-of-order, out-of-universe, zero entry.
        fn forged(u: u64, entries: &[(u64, i64)]) -> Vec<u8> {
            let mut w = Writer::new();
            w.u64(u).u8(1).count(entries.len());
            for &(i, f) in entries {
                w.u64(i).i64(f);
            }
            let fv = FrequencyVector::new_sparse(1); // envelope donor
            let mut bytes = snapshot_to_bytes(&fv);
            // Rebuild envelope around the forged payload.
            let payload = w.into_bytes();
            bytes.truncate(4 + 2 + 2 + 1 + 8); // up to update-count
            let mut out = bytes;
            out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            out.extend_from_slice(&payload);
            let sum = crate::fnv1a64(&out);
            out.extend_from_slice(&sum.to_le_bytes());
            out
        }
        for (entries, what) in [
            (vec![(5u64, 1i64), (3, 1)], "out of order"),
            (vec![(3, 1), (3, 1)], "duplicate"),
            (vec![(200, 1)], "out of universe"),
            (vec![(3, 0)], "zero entry"),
        ] {
            let bytes = forged(100, &entries);
            let err = snapshot_from_bytes::<FrequencyVector>(&bytes);
            assert!(err.is_err(), "{what} decoded: {err:?}");
        }
    }

    #[test]
    fn kv_client_roundtrips_and_continues() {
        use sip_kvstore::{CloudStore, QueryBudget};
        let mut rng = StdRng::seed_from_u64(4);
        let mut client = Client::<Fp61>::new(8, QueryBudget::default(), &mut rng);
        let mut server = CloudStore::<Fp61>::new(8);
        client.put(3, 10, &mut server);
        client.put(200, 55, &mut server);
        let bytes = snapshot_to_bytes(&client);
        let mut back: Client<Fp61> = snapshot_from_bytes(&bytes).unwrap();
        assert_eq!(back.puts(), 2);
        assert_eq!(back.remaining_budget(), client.remaining_budget());
        // The restored client keeps verifying against the same server.
        back.put(40, 999, &mut server);
        assert_eq!(back.get(3, &server).unwrap().value, Some(10));
        assert_eq!(back.get(40, &server).unwrap().value, Some(999));
        assert_eq!(
            back.range_sum(0, 255, &server).unwrap().value,
            10 + 55 + 999
        );
    }
}
